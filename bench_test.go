// Benchmarks regenerating every table and figure in the paper's
// evaluation (one benchmark per artifact), plus ablation benches for
// the design knobs DESIGN.md calls out (wait threshold, reschedule
// overhead, utilization staleness, initial-scheduler flavor, restart vs
// migration) and micro-benchmarks of the simulator's hot path.
//
// Experiment benches run at 4% scale so a full -bench=. pass stays in
// the minutes range; they report the paper's key metrics via
// b.ReportMetric (avgWCT, avgCT of suspended jobs) so regressions in
// *result shape*, not just speed, are visible.
package netbatch

import (
	"fmt"
	"testing"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/experiments"
	"netbatch/internal/metrics"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// benchScale keeps a full benchmark pass fast while preserving shapes.
const benchScale = 0.04

func benchOpts() experiments.Options {
	return experiments.Options{Seed: 42, Scale: benchScale, Parallel: false}
}

// runExperimentBench runs one registered experiment b.N times and
// reports its headline metrics.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *experiments.Output
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err = e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out.Summaries) > 0 {
		last := out.Summaries[len(out.Summaries)-1]
		b.ReportMetric(last.AvgWCT, "avgWCT")
		b.ReportMetric(last.AvgCTSuspended, "avgCTsusp")
	}
}

func BenchmarkTable1NormalLoad(b *testing.B)      { runExperimentBench(b, "table1") }
func BenchmarkTable2HighLoad(b *testing.B)        { runExperimentBench(b, "table2") }
func BenchmarkTable3UtilInitial(b *testing.B)     { runExperimentBench(b, "table3") }
func BenchmarkTable4WaitResched(b *testing.B)     { runExperimentBench(b, "table4") }
func BenchmarkTable5WaitReschedUtil(b *testing.B) { runExperimentBench(b, "table5") }

func BenchmarkFig2SuspensionCDF(b *testing.B)   { runExperimentBench(b, "fig2") }
func BenchmarkFig3WasteComponents(b *testing.B) { runExperimentBench(b, "fig3") }
func BenchmarkFig4YearTimeline(b *testing.B)    { runExperimentBench(b, "fig4") }

func BenchmarkHighSuspensionScenario(b *testing.B) { runExperimentBench(b, "highsusp") }

// benchFixture builds a week trace and platform at bench scale.
func benchFixture(b *testing.B, capacity float64) (*trace.Trace, *cluster.Platform) {
	b.Helper()
	cfg := trace.WeekNormal(42)
	cfg.LowRate *= benchScale
	for i := range cfg.Bursts {
		cfg.Bursts[i].Rate *= benchScale
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		b.Fatal(err)
	}
	pc := cluster.DefaultNetBatchConfig()
	pc.Scale = benchScale
	plat, err := cluster.NewNetBatchPlatform(pc)
	if err != nil {
		b.Fatal(err)
	}
	if capacity != 1.0 {
		if plat, err = plat.ScaleCapacity(capacity); err != nil {
			b.Fatal(err)
		}
	}
	return tr, plat
}

// runSim executes one simulation and reports the waste metric.
func runSim(b *testing.B, tr *trace.Trace, plat *cluster.Platform, cfg sim.Config) {
	b.Helper()
	cfg.Platform = plat
	cfg.DisableSampling = cfg.UtilStaleness == 0
	var sum metrics.Summary
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(cfg, tr.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		if sum, err = metrics.Summarize(res.Jobs); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(sum.AvgWCT, "avgWCT")
	b.ReportMetric(sum.AvgCTSuspended, "avgCTsusp")
}

// BenchmarkAblationWaitThreshold sweeps the §3.3 waiting-time threshold
// around the paper's 30-minute choice.
func BenchmarkAblationWaitThreshold(b *testing.B) {
	tr, plat := benchFixture(b, 0.5)
	for _, th := range []float64{10, 30, 90, 240} {
		b.Run(fmt.Sprintf("threshold=%v", th), func(b *testing.B) {
			runSim(b, tr, plat, sim.Config{
				Initial: sched.NewRoundRobin(),
				Policy:  core.ResSusWaitUtil{Threshold: th},
			})
		})
	}
}

// BenchmarkAblationOverhead sweeps the reschedule transfer overhead the
// paper's §5 future work proposes to model ("network delays and other
// rescheduling associated overheads").
func BenchmarkAblationOverhead(b *testing.B) {
	tr, plat := benchFixture(b, 1.0)
	for _, ov := range []float64{0, 5, 20, 60} {
		b.Run(fmt.Sprintf("overhead=%v", ov), func(b *testing.B) {
			runSim(b, tr, plat, sim.Config{
				Initial:            sched.NewRoundRobin(),
				Policy:             core.NewResSusUtil(),
				RescheduleOverhead: ov,
			})
		})
	}
}

// BenchmarkAblationStaleness quantifies §3.2.2's practicality caveat:
// how much utilization-based initial scheduling degrades as its view of
// pool state lags.
func BenchmarkAblationStaleness(b *testing.B) {
	tr, plat := benchFixture(b, 0.5)
	for _, st := range []float64{1, 30, 120, 480} {
		b.Run(fmt.Sprintf("staleness=%v", st), func(b *testing.B) {
			runSim(b, tr, plat, sim.Config{
				Initial:       sched.NewUtilizationBased(),
				Policy:        core.NewResSusUtil(),
				UtilStaleness: st,
			})
		})
	}
}

// BenchmarkAblationInitial compares initial-scheduler flavors under the
// NoRes baseline (the §3.2.1 round-robin vs utilization comparison plus
// our extensions).
func BenchmarkAblationInitial(b *testing.B) {
	tr, plat := benchFixture(b, 1.0)
	initials := map[string]func() sched.InitialScheduler{
		"rr":       func() sched.InitialScheduler { return sched.NewRoundRobin() },
		"rr-pure":  func() sched.InitialScheduler { return sched.NewPureRoundRobin() },
		"rr-avail": func() sched.InitialScheduler { return &sched.RoundRobin{AvoidQueues: true} },
		"random":   func() sched.InitialScheduler { return sched.NewRandomInitial(42) },
	}
	for _, name := range []string{"rr", "rr-pure", "rr-avail", "random"} {
		mk := initials[name]
		b.Run(name, func(b *testing.B) {
			runSim(b, tr, plat, sim.Config{
				Initial: mk(),
				Policy:  core.NewNoRes(),
			})
		})
	}
}

// BenchmarkAblationMigration compares restart-based rescheduling with
// the Condor-style checkpoint migration the paper weighs against it
// (§2.3/§4) at several migration costs.
func BenchmarkAblationMigration(b *testing.B) {
	tr, plat := benchFixture(b, 0.5)
	cases := []struct {
		name   string
		policy core.Policy
	}{
		{"restart", core.NewResSusUtil()},
		{"migrate-5min", core.NewResSusMigrate(5)},
		{"migrate-30min", core.NewResSusMigrate(30)},
		{"migrate-120min", core.NewResSusMigrate(120)},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runSim(b, tr, plat, sim.Config{
				Initial: sched.NewRoundRobin(),
				Policy:  c.policy,
			})
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// engine on the busy-week workload.
func BenchmarkSimulatorThroughput(b *testing.B) {
	tr, plat := benchFixture(b, 1.0)
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform:        plat,
			Initial:         sched.NewRoundRobin(),
			Policy:          core.NewResSusWaitUtil(),
			DisableSampling: true,
		}, tr.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	b.ReportMetric(float64(len(tr.Jobs)), "jobs")
}

// BenchmarkTraceGeneration measures synthetic trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.WeekNormal(42)
	cfg.LowRate *= benchScale
	for i := range cfg.Bursts {
		cfg.Bursts[i].Rate *= benchScale
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}
