// Benchmarks regenerating every table and figure in the paper's
// evaluation (one benchmark per artifact), plus ablation benches for
// the design knobs DESIGN.md calls out (wait threshold, reschedule
// overhead, utilization staleness, initial-scheduler flavor, restart vs
// migration) and micro-benchmarks of the simulator's hot path.
//
// Experiment benches run at 4% scale so a full -bench=. pass stays in
// the minutes range; they report the paper's key metrics via
// b.ReportMetric (avgWCT, avgCT of suspended jobs) so regressions in
// *result shape*, not just speed, are visible. All simulation benches
// go through the shared matrix runner (experiments.RunCell) rather than
// hand-assembling sim.Config; the ablation benches pre-generate their
// trace and platform once so they time the engine, not trace synthesis.
package netbatch

import (
	"fmt"
	"testing"
	"time"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/experiments"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// benchScale keeps a full benchmark pass fast while preserving shapes.
const benchScale = 0.04

func benchOpts() experiments.Options {
	// One worker: benches measure single-simulation latency.
	return experiments.Options{Seed: 42, Scale: benchScale, Jobs: 1}
}

// runExperimentBench runs one registered experiment b.N times and
// reports its headline metrics.
func runExperimentBench(b *testing.B, id string) {
	b.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		b.Fatal(err)
	}
	var out *experiments.Output
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		out, err = e.Run(benchOpts())
		if err != nil {
			b.Fatal(err)
		}
	}
	if len(out.Summaries) > 0 {
		last := out.Summaries[len(out.Summaries)-1]
		b.ReportMetric(last.AvgWCT, "avgWCT")
		b.ReportMetric(last.AvgCTSuspended, "avgCTsusp")
	}
}

func BenchmarkTable1NormalLoad(b *testing.B)      { runExperimentBench(b, "table1") }
func BenchmarkTable2HighLoad(b *testing.B)        { runExperimentBench(b, "table2") }
func BenchmarkTable3UtilInitial(b *testing.B)     { runExperimentBench(b, "table3") }
func BenchmarkTable4WaitResched(b *testing.B)     { runExperimentBench(b, "table4") }
func BenchmarkTable5WaitReschedUtil(b *testing.B) { runExperimentBench(b, "table5") }

func BenchmarkFig2SuspensionCDF(b *testing.B)   { runExperimentBench(b, "fig2") }
func BenchmarkFig3WasteComponents(b *testing.B) { runExperimentBench(b, "fig3") }
func BenchmarkFig4YearTimeline(b *testing.B)    { runExperimentBench(b, "fig4") }

func BenchmarkHighSuspensionScenario(b *testing.B) { runExperimentBench(b, "highsusp") }

// prebuiltWeek returns the Tables 1–5 scenario at bench scale with its
// trace and platform synthesized once up front, so per-iteration cost
// is simulation only. Sampling is disabled unless a stale utilization
// view needs it (snapshots refresh on the sampling grid).
func prebuiltWeek(b *testing.B, capacity, staleness float64, newInitial func() sched.InitialScheduler) experiments.Scenario {
	b.Helper()
	sc := experiments.WeekScenario("bench", capacity, staleness, newInitial)
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	sc.Trace = func(uint64, float64) (*trace.Trace, error) { return tr, nil }
	sc.Platform = func(float64) (*cluster.Platform, error) { return plat, nil }
	if staleness == 0 {
		sc.Tune = func(cfg *sim.Config) { cfg.DisableSampling = true }
	}
	return sc
}

// runCellBench executes one (scenario, policy) cell b.N times through
// the shared runner and reports the waste metrics.
func runCellBench(b *testing.B, sc experiments.Scenario, pf experiments.PolicyFactory, opts experiments.Options) {
	b.Helper()
	var cell *experiments.CellResult
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		cell, err = experiments.RunCell(sc, pf, opts)
		if err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(cell.Summary.AvgWCT, "avgWCT")
	b.ReportMetric(cell.Summary.AvgCTSuspended, "avgCTsusp")
}

func rrInitial() sched.InitialScheduler { return sched.NewRoundRobin() }

// BenchmarkAblationWaitThreshold sweeps the §3.3 waiting-time threshold
// around the paper's 30-minute choice.
func BenchmarkAblationWaitThreshold(b *testing.B) {
	sc := prebuiltWeek(b, 0.5, 0, rrInitial)
	for _, th := range []float64{10, 30, 90, 240} {
		b.Run(fmt.Sprintf("threshold=%v", th), func(b *testing.B) {
			pf := experiments.PolicyFactory{
				Name: "ResSusWaitUtil",
				New:  func(uint64) core.Policy { return core.ResSusWaitUtil{Threshold: th} },
			}
			runCellBench(b, sc, pf, benchOpts())
		})
	}
}

// BenchmarkAblationOverhead sweeps the reschedule transfer overhead the
// paper's §5 future work proposes to model ("network delays and other
// rescheduling associated overheads").
func BenchmarkAblationOverhead(b *testing.B) {
	sc := prebuiltWeek(b, 1.0, 0, rrInitial)
	pf := experiments.PolicyFactory{
		Name: "ResSusUtil",
		New:  func(uint64) core.Policy { return core.NewResSusUtil() },
	}
	for _, ov := range []float64{0, 5, 20, 60} {
		b.Run(fmt.Sprintf("overhead=%v", ov), func(b *testing.B) {
			opts := benchOpts()
			opts.Overhead = ov
			runCellBench(b, sc, pf, opts)
		})
	}
}

// BenchmarkAblationStaleness quantifies §3.2.2's practicality caveat:
// how much utilization-based initial scheduling degrades as its view of
// pool state lags.
func BenchmarkAblationStaleness(b *testing.B) {
	pf := experiments.PolicyFactory{
		Name: "ResSusUtil",
		New:  func(uint64) core.Policy { return core.NewResSusUtil() },
	}
	for _, st := range []float64{1, 30, 120, 480} {
		sc := prebuiltWeek(b, 0.5, st, func() sched.InitialScheduler { return sched.NewUtilizationBased() })
		b.Run(fmt.Sprintf("staleness=%v", st), func(b *testing.B) {
			runCellBench(b, sc, pf, benchOpts())
		})
	}
}

// BenchmarkAblationInitial compares initial-scheduler flavors under the
// NoRes baseline (the §3.2.1 round-robin vs utilization comparison plus
// our extensions).
func BenchmarkAblationInitial(b *testing.B) {
	initials := map[string]func() sched.InitialScheduler{
		"rr":       rrInitial,
		"rr-pure":  func() sched.InitialScheduler { return sched.NewPureRoundRobin() },
		"rr-avail": func() sched.InitialScheduler { return &sched.RoundRobin{AvoidQueues: true} },
		"random":   func() sched.InitialScheduler { return sched.NewRandomInitial(42) },
	}
	pf := experiments.PolicyFactory{
		Name: "NoRes",
		New:  func(uint64) core.Policy { return core.NewNoRes() },
	}
	for _, name := range []string{"rr", "rr-pure", "rr-avail", "random"} {
		sc := prebuiltWeek(b, 1.0, 0, initials[name])
		b.Run(name, func(b *testing.B) {
			runCellBench(b, sc, pf, benchOpts())
		})
	}
}

// BenchmarkAblationMigration compares restart-based rescheduling with
// the Condor-style checkpoint migration the paper weighs against it
// (§2.3/§4) at several migration costs.
func BenchmarkAblationMigration(b *testing.B) {
	sc := prebuiltWeek(b, 0.5, 0, rrInitial)
	cases := []struct {
		name string
		mk   func(uint64) core.Policy
	}{
		{"restart", func(uint64) core.Policy { return core.NewResSusUtil() }},
		{"migrate-5min", func(uint64) core.Policy { return core.NewResSusMigrate(5) }},
		{"migrate-30min", func(uint64) core.Policy { return core.NewResSusMigrate(30) }},
		{"migrate-120min", func(uint64) core.Policy { return core.NewResSusMigrate(120) }},
	}
	for _, c := range cases {
		b.Run(c.name, func(b *testing.B) {
			runCellBench(b, sc, experiments.PolicyFactory{Name: c.name, New: c.mk}, benchOpts())
		})
	}
}

// BenchmarkMultiSiteWeek runs one 3-site federation cell (latency-
// penalized site selection over per-site round-robin, latency-aware
// combined rescheduling) at bench scale, once per engine: the serial
// reference kernel and the partitioned per-site engine (bit-identical
// results; wall-clock scales with cores on multi-core hardware, while
// a single-core box pays the synchronization overhead instead) and the
// optimistic speculative engine (same bit-identity contract, commits
// serialized at decisions instead of lookahead barriers). CI
// uploads both series in the bench artifact. Sampling stays enabled:
// the inter-site view ageing refreshes on the sample grid, so this
// bench also covers the per-site sampling and snapshot-chain overhead.
func BenchmarkMultiSiteWeek(b *testing.B) {
	sc := experiments.MultiSiteScenario("bench-multisite", 3, 0,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} })
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	sc.Trace = func(uint64, float64) (*trace.Trace, error) { return tr, nil }
	sc.Platform = func(float64) (*cluster.Platform, error) { return plat, nil }
	pf := experiments.PolicyFactory{
		Name: "ResSusWaitLatency",
		New:  func(uint64) core.Policy { return core.NewResSusWaitLatency() },
	}
	for _, engine := range []string{sim.EngineSerial, sim.EngineParallel, sim.EngineOptimistic} {
		b.Run("engine="+engine, func(b *testing.B) {
			opts := benchOpts()
			opts.Engine = engine
			runCellBench(b, sc, pf, opts)
		})
	}
}

// BenchmarkFaultsMultiSiteWeek runs one 3-site federation cell of the
// faulty busy week — machine crashes, staggered maintenance windows,
// kill-and-requeue victims — once per engine, mirroring
// BenchmarkMultiSiteWeek. It times the fault & maintenance subsystem's
// overhead on the hot path (kill sweeps, downtime spans, requeue
// cascades) and keeps the serial-vs-parallel pair in the CI bench
// artifact honest under faults.
func BenchmarkFaultsMultiSiteWeek(b *testing.B) {
	sc := experiments.FaultScenario("bench-faults", 3, sim.VictimRequeue)
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	sc.Trace = func(uint64, float64) (*trace.Trace, error) { return tr, nil }
	sc.Platform = func(float64) (*cluster.Platform, error) { return plat, nil }
	pf := experiments.PolicyFactory{
		Name: "ResSusWaitLatency",
		New:  func(uint64) core.Policy { return core.NewResSusWaitLatency() },
	}
	for _, engine := range []string{sim.EngineSerial, sim.EngineParallel, sim.EngineOptimistic} {
		b.Run("engine="+engine, func(b *testing.B) {
			opts := benchOpts()
			opts.Engine = engine
			runCellBench(b, sc, pf, opts)
		})
	}
}

// BenchmarkYear6 runs one simulated year on the 6-site federation
// (recurring auto bursts, metro RTT matrix, reduced scale — see
// experiments.MultiSiteYearScenario) once per engine. This is the
// ROADMAP north-star cell: at year scale the engines' serialization
// points — commit cycles, round barriers, alias promotion — dominate
// wall-clock, which week-scale cells amortize over too few decisions
// to show. Sampling is disabled by the scenario so the cell times the
// engine, not a year of per-minute series.
func BenchmarkYear6(b *testing.B) {
	sc := experiments.MultiSiteYearScenario("bench-year6", 6,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} })
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	sc.Trace = func(uint64, float64) (*trace.Trace, error) { return tr, nil }
	sc.Platform = func(float64) (*cluster.Platform, error) { return plat, nil }
	pf := experiments.PolicyFactory{
		Name: "ResSusWaitLatency",
		New:  func(uint64) core.Policy { return core.NewResSusWaitLatency() },
	}
	b.ReportMetric(float64(len(tr.Jobs)), "jobs")
	for _, engine := range []string{sim.EngineSerial, sim.EngineParallel, sim.EngineOptimistic} {
		b.Run("engine="+engine, func(b *testing.B) {
			opts := benchOpts()
			opts.Engine = engine
			runCellBench(b, sc, pf, opts)
		})
	}
}

// BenchmarkSimulatorThroughput measures raw event throughput of the
// engine on the busy-week workload. Unlike the other benches it calls
// sim.Run directly (no metrics.Summarize, no conservation checks): its
// job is to time the engine alone, and the matrix runner would fold
// per-job summarization into every iteration.
func BenchmarkSimulatorThroughput(b *testing.B) {
	sc := prebuiltWeek(b, 1.0, 0, rrInitial)
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	var events int64
	for i := 0; i < b.N; i++ {
		res, err := sim.Run(sim.Config{
			Platform:        plat,
			Initial:         sched.NewRoundRobin(),
			Policy:          core.NewResSusWaitUtil(),
			DisableSampling: true,
		}, tr.Jobs)
		if err != nil {
			b.Fatal(err)
		}
		events = res.Events
	}
	b.ReportMetric(float64(events)*float64(b.N)/b.Elapsed().Seconds()/1e6, "Mevents/s")
	b.ReportMetric(float64(len(tr.Jobs)), "jobs")
}

// BenchmarkTraceGeneration measures synthetic trace synthesis.
func BenchmarkTraceGeneration(b *testing.B) {
	cfg := trace.WeekNormal(42)
	cfg.LowRate *= benchScale
	for i := range cfg.Bursts {
		cfg.Bursts[i].Rate *= benchScale
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := trace.Generate(cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCheckpoint pins the cost of the checkpoint/restore subsystem
// on the multi-site busy week so snapshot cost shows up in the perf
// trajectory alongside the engine benches. Three series:
//
//   - baseline: the plain serial run (no checkpointing), the
//     denominator for the overhead target;
//   - capture: the same run emitting a full-state snapshot every
//     simulated day (the -checkpoint-every default). The satellite
//     target is per-checkpoint overhead under ~5% of run time —
//     reported as pctPerCkpt;
//   - capture_delta: the same cadence with CheckpointKeyframe=8, so
//     seven of every eight snapshots are binary deltas. Reports the
//     delta-file size as a percentage of the run's full-snapshot size
//     (pctOfFull — the perf program targets ≤25%);
//   - resume: restoring the run's mid-point snapshot and simulating to
//     completion (decode + state rebuild + the remaining half).
func BenchmarkCheckpoint(b *testing.B) {
	sc := experiments.MultiSiteScenario("bench-checkpoint", 3, 0,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} })
	tr, err := sc.Trace(42, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	plat, err := sc.Platform(benchScale)
	if err != nil {
		b.Fatal(err)
	}
	mkCfg := func() sim.Config {
		return sim.Config{
			Platform:          plat,
			Initial:           sc.NewInitial(),
			Policy:            core.NewResSusWaitLatency(),
			CheckConservation: true,
		}
	}
	const day = 1440.0

	var baseline float64 // ns/op of the plain run, for the overhead metric
	b.Run("baseline", func(b *testing.B) {
		b.ReportAllocs()
		start := time.Now()
		for i := 0; i < b.N; i++ {
			if _, err := sim.Run(mkCfg(), tr.Jobs); err != nil {
				b.Fatal(err)
			}
		}
		baseline = float64(time.Since(start).Nanoseconds()) / float64(b.N)
	})

	var mid sim.Checkpoint
	var fullBytesPerSnap float64
	b.Run("capture", func(b *testing.B) {
		b.ReportAllocs()
		var count, bytes int
		var cks []sim.Checkpoint
		start := time.Now()
		for i := 0; i < b.N; i++ {
			cks = cks[:0]
			cfg := mkCfg()
			cfg.CheckpointEvery = day
			cfg.CheckpointSink = func(c sim.Checkpoint) error {
				cks = append(cks, c)
				return nil
			}
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				b.Fatal(err)
			}
			count += len(cks)
			for _, c := range cks {
				bytes += len(c.Data)
			}
		}
		elapsed := float64(time.Since(start).Nanoseconds()) / float64(b.N)
		perRun := count / b.N
		mid = cks[len(cks)/2]
		fullBytesPerSnap = float64(bytes) / float64(count)
		b.ReportMetric(float64(perRun), "snapshots/run")
		b.ReportMetric(fullBytesPerSnap/1024, "KB/snapshot")
		if baseline > 0 && perRun > 0 {
			perCkpt := (elapsed - baseline) / float64(perRun)
			b.ReportMetric(100*perCkpt/baseline, "pctPerCkpt")
		}
	})

	b.Run("capture_delta", func(b *testing.B) {
		b.ReportAllocs()
		var deltaCount, deltaBytes int
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.CheckpointEvery = day
			cfg.CheckpointKeyframe = 8
			cfg.CheckpointSink = func(c sim.Checkpoint) error {
				if c.Delta {
					deltaCount++
					deltaBytes += len(c.Data)
				}
				return nil
			}
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				b.Fatal(err)
			}
		}
		if deltaCount > 0 {
			perDelta := float64(deltaBytes) / float64(deltaCount)
			b.ReportMetric(perDelta/1024, "KB/delta")
			if fullBytesPerSnap > 0 {
				b.ReportMetric(100*perDelta/fullBytesPerSnap, "pctOfFull")
			}
		}
	})

	b.Run("resume", func(b *testing.B) {
		if len(mid.Data) == 0 {
			b.Skip("no mid-run snapshot captured")
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.ResumeFrom = mid.Data
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
