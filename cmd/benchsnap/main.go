// Command benchsnap records the canonical bench cells to a
// schema-versioned JSON snapshot and/or gates the run against a
// committed baseline.
//
// Record the baseline (done once per perf-relevant PR, on the CI
// machine shape):
//
//	go run ./cmd/benchsnap -out BENCH_8.json
//
// Gate a candidate in CI (exits 1 on regression):
//
//	go run ./cmd/benchsnap -compare BENCH_8.json -out bench_candidate.json
//
// Allocations and bytes per op gate on every run (they are
// hardware-independent); ns/op gates only when the baseline was
// recorded on the same GOOS/GOARCH/CPU-count shape as the candidate.
//
// Print the per-cell trajectory across every committed baseline
// (BENCH_*.json in PR order) without running anything:
//
//	go run ./cmd/benchsnap -trend
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"netbatch/internal/benchsnap"
)

func main() {
	out := flag.String("out", "", "write the collected snapshot to this JSON file")
	compare := flag.String("compare", "", "baseline snapshot to gate against; exit 1 on regression")
	trend := flag.Bool("trend", false, "print per-cell trajectories across committed BENCH_*.json snapshots (positional args override the glob)")
	scale := flag.Float64("scale", 0, "bench scale (0 = canonical 0.04)")
	timeTol := flag.Float64("time-tol", 0.10, "allowed ns/op growth before failing (fraction)")
	allocTol := flag.Float64("alloc-tol", 0.05, "allowed allocs/op and bytes/op growth before failing (fraction)")
	flag.Parse()
	if *trend {
		if err := printTrend(flag.Args()); err != nil {
			fatal(err)
		}
		if *out == "" && *compare == "" {
			return
		}
	}
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: nothing to do; pass -out, -compare and/or -trend")
		flag.Usage()
		os.Exit(2)
	}

	cand, err := benchsnap.Collect(*scale)
	if err != nil {
		fatal(err)
	}
	for _, c := range cand.Cells {
		fmt.Printf("%-28s %12.0f ns/op %12d B/op %9d allocs/op", c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		for k, v := range c.Metrics {
			fmt.Printf("   %.4g %s", v, k)
		}
		fmt.Println()
	}

	if *out != "" {
		data, err := json.MarshalIndent(cand, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		var base benchsnap.Snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *compare, err))
		}
		regs, notes, err := benchsnap.Compare(base, cand, *timeTol, *allocTol)
		if err != nil {
			fatal(err)
		}
		for _, n := range notes {
			fmt.Println("note:", n)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: %d regression(s) vs %s:\n", len(regs), *compare)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (time tol %.0f%%, alloc tol %.0f%%)\n",
			*compare, 100**timeTol, 100**allocTol)
	}
}

// printTrend loads the given snapshot files (default: BENCH_*.json in
// the working directory), orders them by the numeric PR suffix, and
// prints each cell's metric trajectory — the whole committed perf
// history at a glance, no benchmarks run.
func printTrend(files []string) error {
	if len(files) == 0 {
		var err error
		files, err = filepath.Glob("BENCH_*.json")
		if err != nil {
			return err
		}
	}
	if len(files) == 0 {
		return fmt.Errorf("trend: no BENCH_*.json snapshots found")
	}
	sort.Slice(files, func(i, j int) bool {
		a, b := snapOrdinal(files[i]), snapOrdinal(files[j])
		if a != b {
			return a < b
		}
		return files[i] < files[j]
	})
	snaps := make([]benchsnap.Snapshot, len(files))
	for i, f := range files {
		data, err := os.ReadFile(f)
		if err != nil {
			return err
		}
		if err := json.Unmarshal(data, &snaps[i]); err != nil {
			return fmt.Errorf("parse %s: %w", f, err)
		}
	}
	// Cells in first-appearance order; the union tolerates cells that
	// were added or retired between baselines.
	var order []string
	idx := make([]map[string]benchsnap.Cell, len(snaps))
	for i, s := range snaps {
		idx[i] = make(map[string]benchsnap.Cell, len(s.Cells))
		for _, c := range s.Cells {
			if _, seen := idx[i][c.Name]; !seen {
				idx[i][c.Name] = c
			}
			if !contains(order, c.Name) {
				order = append(order, c.Name)
			}
		}
	}
	for _, name := range order {
		fmt.Printf("%s\n", name)
		var prev *benchsnap.Cell
		for i, f := range files {
			c, ok := idx[i][name]
			if !ok {
				// Render the gap instead of silently skipping the file:
				// a missing cell (added later, or dropped from an old
				// baseline) reads very differently from a flat metric.
				fmt.Printf("  %-18s %14s\n", f, "(cell absent)")
				continue
			}
			line := fmt.Sprintf("  %-18s %12.0f ns/op%s %12d B/op%s %9d allocs/op%s",
				f, c.NsPerOp, delta(float64(c.NsPerOp), prev, func(p *benchsnap.Cell) float64 { return p.NsPerOp }),
				c.BytesPerOp, delta(float64(c.BytesPerOp), prev, func(p *benchsnap.Cell) float64 { return float64(p.BytesPerOp) }),
				c.AllocsPerOp, delta(float64(c.AllocsPerOp), prev, func(p *benchsnap.Cell) float64 { return float64(p.AllocsPerOp) }))
			if snaps[i].GOOS != snaps[0].GOOS || snaps[i].GOARCH != snaps[0].GOARCH || snaps[i].CPUs != snaps[0].CPUs {
				line += "   [shape differs: ns/op not comparable]"
			}
			fmt.Println(line)
			cc := c
			prev = &cc
		}
	}
	return nil
}

// snapOrdinal extracts the trailing integer of a snapshot filename
// (BENCH_10.json → 10); unnumbered files sort last, lexicographically.
func snapOrdinal(path string) int {
	base := strings.TrimSuffix(filepath.Base(path), ".json")
	if i := strings.LastIndexByte(base, '_'); i >= 0 {
		if n, err := strconv.Atoi(base[i+1:]); err == nil {
			return n
		}
	}
	return int(^uint(0) >> 1)
}

func delta(cur float64, prev *benchsnap.Cell, get func(*benchsnap.Cell) float64) string {
	if prev == nil {
		return strings.Repeat(" ", 9)
	}
	p := get(prev)
	if p == 0 {
		return strings.Repeat(" ", 9)
	}
	return fmt.Sprintf(" (%+5.1f%%)", (cur-p)/p*100)
}

func contains(list []string, s string) bool {
	for _, v := range list {
		if v == s {
			return true
		}
	}
	return false
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
