// Command benchsnap records the canonical bench cells to a
// schema-versioned JSON snapshot and/or gates the run against a
// committed baseline.
//
// Record the baseline (done once per perf-relevant PR, on the CI
// machine shape):
//
//	go run ./cmd/benchsnap -out BENCH_7.json
//
// Gate a candidate in CI (exits 1 on regression):
//
//	go run ./cmd/benchsnap -compare BENCH_7.json -out bench_candidate.json
//
// Allocations and bytes per op gate on every run (they are
// hardware-independent); ns/op gates only when the baseline was
// recorded on the same GOOS/GOARCH/CPU-count shape as the candidate.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"netbatch/internal/benchsnap"
)

func main() {
	out := flag.String("out", "", "write the collected snapshot to this JSON file")
	compare := flag.String("compare", "", "baseline snapshot to gate against; exit 1 on regression")
	scale := flag.Float64("scale", 0, "bench scale (0 = canonical 0.04)")
	timeTol := flag.Float64("time-tol", 0.10, "allowed ns/op growth before failing (fraction)")
	allocTol := flag.Float64("alloc-tol", 0.05, "allowed allocs/op and bytes/op growth before failing (fraction)")
	flag.Parse()
	if *out == "" && *compare == "" {
		fmt.Fprintln(os.Stderr, "benchsnap: nothing to do; pass -out and/or -compare")
		flag.Usage()
		os.Exit(2)
	}

	cand, err := benchsnap.Collect(*scale)
	if err != nil {
		fatal(err)
	}
	for _, c := range cand.Cells {
		fmt.Printf("%-28s %12.0f ns/op %12d B/op %9d allocs/op", c.Name, c.NsPerOp, c.BytesPerOp, c.AllocsPerOp)
		for k, v := range c.Metrics {
			fmt.Printf("   %.4g %s", v, k)
		}
		fmt.Println()
	}

	if *out != "" {
		data, err := json.MarshalIndent(cand, "", "  ")
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*out, append(data, '\n'), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("wrote %s\n", *out)
	}

	if *compare != "" {
		data, err := os.ReadFile(*compare)
		if err != nil {
			fatal(err)
		}
		var base benchsnap.Snapshot
		if err := json.Unmarshal(data, &base); err != nil {
			fatal(fmt.Errorf("parse %s: %w", *compare, err))
		}
		regs, notes, err := benchsnap.Compare(base, cand, *timeTol, *allocTol)
		if err != nil {
			fatal(err)
		}
		for _, n := range notes {
			fmt.Println("note:", n)
		}
		if len(regs) > 0 {
			fmt.Fprintf(os.Stderr, "benchsnap: %d regression(s) vs %s:\n", len(regs), *compare)
			for _, r := range regs {
				fmt.Fprintln(os.Stderr, "  ", r)
			}
			os.Exit(1)
		}
		fmt.Printf("no regressions vs %s (time tol %.0f%%, alloc tol %.0f%%)\n",
			*compare, 100**timeTol, 100**allocTol)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchsnap:", err)
	os.Exit(1)
}
