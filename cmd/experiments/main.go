// Command experiments regenerates the paper's tables and figures
// through the declarative matrix runner.
//
// Usage:
//
//	experiments [-run table1,fig2,...] [-scale 1.0] [-seed 42]
//	            [-seeds N] [-jobs N] [-engine serial|parallel|optimistic]
//	            [-timeout 30m] [-out DIR] [-overhead MIN]
//	            [-timeline out.json] [-runlog run.jsonl] [-progress 1s]
//
// Without -run, every registered experiment executes. Each experiment
// is a (scenario × policy × seed) matrix executed on a bounded worker
// pool of -jobs goroutines (default: one per CPU); results are
// identical for every -jobs value. With -seeds N > 1, every cell is
// replicated across N derived seeds and tables report mean ± 95%
// confidence intervals instead of point values. -timeout bounds the
// whole run: on expiry (or Ctrl-C) in-flight simulations abort
// cooperatively. With -out, each experiment also writes its tables and
// series as CSV files into DIR for plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"runtime/pprof"
	"runtime/trace"
	"strconv"
	"strings"
	"time"

	"netbatch/internal/experiments"
	"netbatch/internal/obs"
	"netbatch/internal/report"
	"netbatch/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() (err error) {
	var (
		list     = flag.Bool("list", false, "list registered experiments and engines, then exit")
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scenario = flag.String("scenario", "", "alias for -run")
		scale    = flag.Float64("scale", 1.0, "platform+workload scale (1.0 = paper scale)")
		seed     = flag.Uint64("seed", 42, "base random seed for trace generation and policies")
		seeds    = flag.Int("seeds", 1, "seed replicates per cell; >1 reports mean ± 95% CI")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = one per CPU)")
		engine   = flag.String("engine", "serial", "simulation engine: serial, parallel or optimistic (per-site partitions; identical results)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
		outDir   = flag.String("out", "", "directory for CSV output (optional)")
		overhead = flag.Float64("overhead", 0, "reschedule transfer overhead in minutes")

		ckptDir      = flag.String("checkpoint-dir", "", "directory for per-cell engine checkpoints; enables checkpointing")
		ckptEvery    = flag.Float64("checkpoint-every", 0, "checkpoint cadence in simulated minutes (default: 1440 = one simulated day)")
		ckptKeyframe = flag.Int("checkpoint-keyframe", 0, "emit every Nth checkpoint full and the rest as binary deltas (.dckpt) against the previous one; 0 or 1 = all full")
		resume       = flag.Bool("resume", false, "resume each cell from its checkpoint in -checkpoint-dir (bit-identical results; incompatible checkpoints restart from t=0)")

		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile of the run to this file")
		memProfile = flag.String("memprofile", "", "write a heap profile at exit to this file")
		traceFile  = flag.String("trace", "", "write a runtime execution trace of the run to this file")

		timeline = flag.String("timeline", "", "write an engine timeline of every cell as Chrome trace_event JSON to this file (load in Perfetto / chrome://tracing)")
		runlog   = flag.String("runlog", "", "stream per-cell run telemetry as JSONL records to this file (\"-\" = stderr)")
		progress = flag.Duration("progress", 0, "per-cell progress cadence (0 = 1s when -runlog is set, else mirror nothing); also mirrors to stderr without -runlog")

		replayBisect = flag.String("replay-bisect", "", "two checkpoint files \"from.ckpt,to.ckpt\" of one recorded cell: replay the interval to localize the first diverging event of a determinism regression (requires -run and -bisect-cell)")
		bisectCell   = flag.String("bisect-cell", "", "cell coordinate \"scenario/policy/replicate\" for -replay-bisect (matches the snapshot's embedded label)")
	)
	flag.Parse()

	stopProf, err := startProfiling(*cpuProfile, *memProfile, *traceFile)
	if err != nil {
		return err
	}
	defer stopProf()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		return printRegistry(os.Stdout)
	}
	ids := experiments.IDs()
	if *scenario != "" {
		if *runIDs != "" {
			return fmt.Errorf("use either -run or -scenario, not both")
		}
		runIDs = scenario
	}
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	opts := experiments.Options{
		Seed:               *seed,
		Seeds:              *seeds,
		Scale:              *scale,
		Jobs:               *jobs,
		Engine:             *engine,
		Overhead:           *overhead,
		Context:            ctx,
		CheckpointDir:      *ckptDir,
		CheckpointEvery:    *ckptEvery,
		CheckpointKeyframe: *ckptKeyframe,
		Resume:             *resume,
		Logf: func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, format+"\n", args...)
		},
	}
	flush, err := armObservability(*timeline, *runlog, *progress, &opts)
	if err != nil {
		return err
	}
	// Flush telemetry on every exit path — a partial timeline of an
	// aborted run is exactly what the flags are for.
	defer func() {
		if ferr := flush(); ferr != nil && err == nil {
			err = ferr
		}
	}()
	if *replayBisect != "" {
		return runReplayBisect(*replayBisect, *bisectCell, ids, opts)
	}
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			return fmt.Errorf("%w\nrun with -list to see the registered scenarios and engines", err)
		}
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n", out.ID, time.Since(start).Seconds())
		for _, tbl := range out.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		if out.EngineCounters != nil {
			if err := out.EngineCounters.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, note := range out.Notes {
			fmt.Println("  note:", note)
		}
		if out.AmbiguousCells > 0 {
			fmt.Fprintf(os.Stderr,
				"experiments: warning: %s: %d cell(s) hit an ambiguous cross-partition event tie; serial/parallel bit-identity is not guaranteed for those replicates\n",
				out.ID, out.AmbiguousCells)
		}
		fmt.Println()
		if *outDir != "" {
			if err := writeCSV(*outDir, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// runReplayBisect replays the interval between two recorded cell
// checkpoints to localize the first diverging event of a determinism
// regression (see sim.ReplayBisect). The cell whose snapshots are being
// replayed is named by -run (one experiment ID) and -bisect-cell
// ("scenario/policy/replicate" — the label embedded in each snapshot).
func runReplayBisect(files, cell string, ids []string, opts experiments.Options) error {
	parts := strings.Split(files, ",")
	if len(parts) != 2 {
		return fmt.Errorf("-replay-bisect wants two files \"from.ckpt,to.ckpt\", got %q", files)
	}
	from, err := experiments.LoadCheckpoint(strings.TrimSpace(parts[0]))
	if err != nil {
		return err
	}
	to, err := experiments.LoadCheckpoint(strings.TrimSpace(parts[1]))
	if err != nil {
		return err
	}
	metaFrom, err := sim.ReadSnapshotMeta(from)
	if err != nil {
		return fmt.Errorf("%s: %w", parts[0], err)
	}
	metaTo, err := sim.ReadSnapshotMeta(to)
	if err != nil {
		return fmt.Errorf("%s: %w", parts[1], err)
	}
	if len(ids) != 1 {
		return fmt.Errorf("-replay-bisect needs exactly one experiment via -run (snapshot labels: %q, %q)",
			metaFrom.Label, metaTo.Label)
	}
	if cell == "" {
		return fmt.Errorf("-replay-bisect needs -bisect-cell scenario/policy/replicate (snapshot label suggests %q)",
			metaFrom.Label)
	}
	cparts := strings.Split(cell, "/")
	if len(cparts) != 3 {
		return fmt.Errorf("-bisect-cell wants \"scenario/policy/replicate\", got %q", cell)
	}
	rep, err := strconv.Atoi(cparts[2])
	if err != nil {
		return fmt.Errorf("-bisect-cell replicate %q: %w", cparts[2], err)
	}
	cfg, specs, err := experiments.CellSim(ids[0], cparts[0], cparts[1], rep, opts)
	if err != nil {
		return err
	}
	fmt.Printf("replay-bisect: cell %s of %s\n", cell, ids[0])
	fmt.Printf("  from: %s  t=%.1f  events=%d  (%s engine, label %q)\n",
		parts[0], metaFrom.Time, metaFrom.Events, metaFrom.Mode, metaFrom.Label)
	fmt.Printf("  to:   %s  t=%.1f  events=%d\n", parts[1], metaTo.Time, metaTo.Events)
	bisect, err := sim.ReplayBisect(cfg, specs, from, to)
	if err != nil {
		return err
	}
	fmt.Printf("  replayed %d events over (%.1f, %.1f]\n", bisect.ReplayedEvents, bisect.FromTime, bisect.ToTime)
	switch {
	case bisect.Clean():
		fmt.Println("  result: CLEAN — the interval replays deterministically and reproduces the recorded state bit-exactly")
	default:
		fmt.Printf("  result: DIVERGED — deterministic=%v matchesRecorded=%v\n",
			bisect.Deterministic, bisect.MatchesRecorded)
		fmt.Printf("  %s\n", bisect.FirstDivergence)
		return fmt.Errorf("determinism regression localized")
	}
	return nil
}

// armObservability wires the -timeline/-runlog/-progress flags into the
// matrix options: a shared metrics registry plus JSONL run log when
// -runlog is set, and a Chrome-trace timeline collector when -timeline
// is. The returned flush appends the final registry snapshot as a
// "metrics" record, writes the timeline JSON, and closes the run-log
// file; it is safe to call when no flag was set.
func armObservability(timeline, runlog string, progress time.Duration, opts *experiments.Options) (func() error, error) {
	var closeLog func() error
	if runlog != "" {
		w := io.Writer(os.Stderr)
		if runlog != "-" {
			f, err := os.Create(runlog)
			if err != nil {
				return nil, fmt.Errorf("runlog: %w", err)
			}
			w = f
			closeLog = f.Close
		}
		opts.RunLog = obs.NewRunLog(w)
		opts.Metrics = obs.NewRegistry()
	}
	if timeline != "" {
		opts.Trace = obs.NewTracer()
	}
	opts.ProgressEvery = progress
	flush := func() error {
		if opts.RunLog != nil {
			if err := opts.RunLog.Emit(obs.RunRecord{
				Type:    "metrics",
				Metrics: opts.Metrics.Snapshot(),
			}); err != nil {
				return fmt.Errorf("runlog: %w", err)
			}
		}
		if closeLog != nil {
			if err := closeLog(); err != nil {
				return fmt.Errorf("runlog: %w", err)
			}
		}
		if opts.Trace != nil {
			f, err := os.Create(timeline)
			if err != nil {
				return fmt.Errorf("timeline: %w", err)
			}
			if err := opts.Trace.WriteJSON(f); err != nil {
				f.Close()
				return fmt.Errorf("timeline: %w", err)
			}
			if err := f.Close(); err != nil {
				return fmt.Errorf("timeline: %w", err)
			}
		}
		return nil
	}
	return flush, nil
}

// printRegistry lists every registered experiment and the available
// simulation engines.
func printRegistry(w io.Writer) error {
	fmt.Fprintln(w, "registered experiments (-run/-scenario):")
	for _, id := range experiments.IDs() {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %s\n", id, e.Title)
	}
	fmt.Fprintln(w, "\nengines (-engine):")
	fmt.Fprintf(w, "  %-10s single-threaded reference kernel (default)\n", sim.EngineSerial)
	fmt.Fprintf(w, "  %-10s one goroutine per site, conservatively synchronized; bit-identical results\n", sim.EngineParallel)
	fmt.Fprintf(w, "  %-10s per-site speculation with snapshot rollback; bit-identical results\n", sim.EngineOptimistic)
	return nil
}

func writeCSV(dir string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for i, tbl := range out.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", out.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if out.EngineCounters != nil {
		path := filepath.Join(dir, fmt.Sprintf("%s_engine_counters.csv", out.ID))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := out.EngineCounters.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for name, pts := range out.Series {
		safe := strings.NewReplacer(":", "_", "/", "_").Replace(name)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", out.ID, safe))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := report.SeriesCSV(f, safe, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}

// startProfiling arms the requested pprof/trace outputs and returns the
// teardown that flushes them. Empty paths are skipped.
func startProfiling(cpu, mem, tr string) (func(), error) {
	var stops []func()
	if cpu != "" {
		f, err := os.Create(cpu)
		if err != nil {
			return nil, err
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			pprof.StopCPUProfile()
			f.Close()
		})
	}
	if tr != "" {
		f, err := os.Create(tr)
		if err != nil {
			return nil, err
		}
		if err := trace.Start(f); err != nil {
			f.Close()
			return nil, err
		}
		stops = append(stops, func() {
			trace.Stop()
			f.Close()
		})
	}
	stop := func() {
		for i := len(stops) - 1; i >= 0; i-- {
			stops[i]()
		}
		if mem != "" {
			f, err := os.Create(mem)
			if err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
				return
			}
			defer f.Close()
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "experiments: memprofile:", err)
			}
		}
	}
	return stop, nil
}
