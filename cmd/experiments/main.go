// Command experiments regenerates the paper's tables and figures
// through the declarative matrix runner.
//
// Usage:
//
//	experiments [-run table1,fig2,...] [-scale 1.0] [-seed 42]
//	            [-seeds N] [-jobs N] [-engine serial|parallel]
//	            [-timeout 30m] [-out DIR] [-overhead MIN]
//
// Without -run, every registered experiment executes. Each experiment
// is a (scenario × policy × seed) matrix executed on a bounded worker
// pool of -jobs goroutines (default: one per CPU); results are
// identical for every -jobs value. With -seeds N > 1, every cell is
// replicated across N derived seeds and tables report mean ± 95%
// confidence intervals instead of point values. -timeout bounds the
// whole run: on expiry (or Ctrl-C) in-flight simulations abort
// cooperatively. With -out, each experiment also writes its tables and
// series as CSV files into DIR for plotting.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"time"

	"netbatch/internal/experiments"
	"netbatch/internal/report"
	"netbatch/internal/sim"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		list     = flag.Bool("list", false, "list registered experiments and engines, then exit")
		runIDs   = flag.String("run", "", "comma-separated experiment IDs (default: all)")
		scenario = flag.String("scenario", "", "alias for -run")
		scale    = flag.Float64("scale", 1.0, "platform+workload scale (1.0 = paper scale)")
		seed     = flag.Uint64("seed", 42, "base random seed for trace generation and policies")
		seeds    = flag.Int("seeds", 1, "seed replicates per cell; >1 reports mean ± 95% CI")
		jobs     = flag.Int("jobs", 0, "max concurrent simulations (0 = one per CPU)")
		engine   = flag.String("engine", "serial", "simulation engine: serial or parallel (per-site partitions; identical results)")
		timeout  = flag.Duration("timeout", 0, "abort the whole run after this duration (0 = none)")
		outDir   = flag.String("out", "", "directory for CSV output (optional)")
		overhead = flag.Float64("overhead", 0, "reschedule transfer overhead in minutes")
	)
	flag.Parse()

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	if *timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, *timeout)
		defer cancel()
	}

	if *list {
		return printRegistry(os.Stdout)
	}
	ids := experiments.IDs()
	if *scenario != "" {
		if *runIDs != "" {
			return fmt.Errorf("use either -run or -scenario, not both")
		}
		runIDs = scenario
	}
	if *runIDs != "" {
		ids = strings.Split(*runIDs, ",")
	}
	opts := experiments.Options{
		Seed:     *seed,
		Seeds:    *seeds,
		Scale:    *scale,
		Jobs:     *jobs,
		Engine:   *engine,
		Overhead: *overhead,
		Context:  ctx,
	}
	for _, id := range ids {
		e, err := experiments.Get(strings.TrimSpace(id))
		if err != nil {
			return fmt.Errorf("%w\nrun with -list to see the registered scenarios and engines", err)
		}
		start := time.Now()
		out, err := e.Run(opts)
		if err != nil {
			return fmt.Errorf("%s: %w", e.ID, err)
		}
		fmt.Printf("=== %s (%.1fs) ===\n", out.ID, time.Since(start).Seconds())
		for _, tbl := range out.Tables {
			if err := tbl.Render(os.Stdout); err != nil {
				return err
			}
			fmt.Println()
		}
		for _, note := range out.Notes {
			fmt.Println("  note:", note)
		}
		fmt.Println()
		if *outDir != "" {
			if err := writeCSV(*outDir, out); err != nil {
				return err
			}
		}
	}
	return nil
}

// printRegistry lists every registered experiment and the available
// simulation engines.
func printRegistry(w io.Writer) error {
	fmt.Fprintln(w, "registered experiments (-run/-scenario):")
	for _, id := range experiments.IDs() {
		e, err := experiments.Get(id)
		if err != nil {
			return err
		}
		fmt.Fprintf(w, "  %-10s %s\n", id, e.Title)
	}
	fmt.Fprintln(w, "\nengines (-engine):")
	fmt.Fprintf(w, "  %-10s single-threaded reference kernel (default)\n", sim.EngineSerial)
	fmt.Fprintf(w, "  %-10s one goroutine per site, conservatively synchronized; bit-identical results\n", sim.EngineParallel)
	return nil
}

func writeCSV(dir string, out *experiments.Output) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("create output dir: %w", err)
	}
	for i, tbl := range out.Tables {
		path := filepath.Join(dir, fmt.Sprintf("%s_table%d.csv", out.ID, i))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := tbl.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	for name, pts := range out.Series {
		safe := strings.NewReplacer(":", "_", "/", "_").Replace(name)
		path := filepath.Join(dir, fmt.Sprintf("%s_%s.csv", out.ID, safe))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := report.SeriesCSV(f, safe, pts); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	return nil
}
