// Command netbatch-sim runs one NetBatch simulation: a trace (from a
// file or a generated preset) against the default 20-pool platform with
// a chosen initial scheduler and rescheduling strategy.
//
// Usage:
//
//	netbatch-sim [-trace FILE.jsonl | -preset week] [-policy ResSusUtil]
//	             [-initial rr] [-scale 1.0] [-capacity 1.0] [-seed 42]
//
// It prints the paper's metrics (§3.1) plus task-level and run
// statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "netbatch-sim:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		traceFile = flag.String("trace", "", "JSONL trace file (overrides -preset)")
		preset    = flag.String("preset", "week", "generated workload: week, highsusp, or year")
		policy    = flag.String("policy", "NoRes", "rescheduling strategy: NoRes, ResSusUtil, ResSusRand, ResSusWaitUtil, ResSusWaitRand, ResSusMigrate")
		initial   = flag.String("initial", "rr", "initial scheduler: rr, rr-pure, rr-avail, util, random")
		scale     = flag.Float64("scale", 1.0, "platform+workload scale")
		capacity  = flag.Float64("capacity", 1.0, "capacity factor (0.5 = paper's high-load scenario)")
		seed      = flag.Uint64("seed", 42, "random seed")
		overhead  = flag.Float64("overhead", 0, "reschedule transfer overhead, minutes")
		staleness = flag.Float64("staleness", 0, "utilization view staleness, minutes")
		migCost   = flag.Float64("migration-cost", 10, "per-move overhead for ResSusMigrate, minutes")
	)
	flag.Parse()

	tr, err := loadTrace(*traceFile, *preset, *seed, *scale)
	if err != nil {
		return err
	}
	platCfg := cluster.DefaultNetBatchConfig()
	platCfg.Scale = *scale
	plat, err := cluster.NewNetBatchPlatform(platCfg)
	if err != nil {
		return err
	}
	if *capacity != 1.0 {
		if plat, err = plat.ScaleCapacity(*capacity); err != nil {
			return err
		}
	}
	init, err := makeInitial(*initial, *seed)
	if err != nil {
		return err
	}
	pol, err := makePolicy(*policy, *seed, *migCost)
	if err != nil {
		return err
	}

	res, err := sim.Run(sim.Config{
		Platform:           plat,
		Initial:            init,
		Policy:             pol,
		RescheduleOverhead: *overhead,
		UtilStaleness:      *staleness,
		CheckConservation:  true,
	}, tr.Jobs)
	if err != nil {
		return err
	}
	sum, err := metrics.Summarize(res.Jobs)
	if err != nil {
		return err
	}

	tbl, err := report.PaperTable(
		fmt.Sprintf("%s on %s initial scheduling (%d jobs, %d cores)",
			pol.Name(), init.Name(), sum.Jobs, plat.TotalCores()),
		[]string{pol.Name()}, []metrics.Summary{sum})
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nwaste components: wait %.1f + suspend %.1f + resched %.1f = %.1f min/job\n",
		sum.WaitComp, sum.SuspendComp, sum.ReschedComp, sum.AvgWCT)
	fmt.Printf("median CT %.1f, p90 CT %.1f, makespan %.0f min\n", sum.MedianCT, sum.P90CT, res.Makespan)
	fmt.Printf("events %d, preemptions %d, restarts %d, migrations %d, wait moves %d\n",
		res.Events, res.Preemptions, res.Restarts, res.Migrations, res.WaitMoves)
	if ts := metrics.SummarizeTasks(res.Jobs); ts.Tasks > 0 {
		fmt.Printf("tasks: %d multi-job tasks, avg span %.0f min, avg straggler delay %.0f min, %.1f%% touched by suspension\n",
			ts.Tasks, ts.AvgSpan, ts.AvgStraggler, ts.TouchedBySuspension)
	}
	fmt.Printf("utilization: %s\n", report.Sparkline(res.Util.Points(), 72))
	fmt.Printf("suspended:   %s\n", report.Sparkline(res.Suspended.Points(), 72))
	return nil
}

func loadTrace(file, preset string, seed uint64, scale float64) (*trace.Trace, error) {
	if file != "" {
		f, err := os.Open(file)
		if err != nil {
			return nil, err
		}
		defer f.Close()
		return trace.ReadJSONL(f)
	}
	var cfg trace.GeneratorConfig
	switch preset {
	case "week":
		cfg = trace.WeekNormal(seed)
	case "highsusp":
		cfg = trace.HighSuspension(seed)
	case "year":
		return trace.Generate(trace.YearLong(seed, scale))
	default:
		return nil, fmt.Errorf("unknown preset %q", preset)
	}
	cfg.LowRate *= scale
	bursts := append([]trace.Burst(nil), cfg.Bursts...)
	for i := range bursts {
		bursts[i].Rate *= scale
	}
	cfg.Bursts = bursts
	return trace.Generate(cfg)
}

func makeInitial(name string, seed uint64) (sched.InitialScheduler, error) {
	switch name {
	case "rr":
		return sched.NewRoundRobin(), nil
	case "rr-pure":
		return sched.NewPureRoundRobin(), nil
	case "rr-avail":
		return &sched.RoundRobin{AvoidQueues: true}, nil
	case "util":
		return sched.NewUtilizationBased(), nil
	case "random":
		return sched.NewRandomInitial(seed), nil
	default:
		return nil, fmt.Errorf("unknown initial scheduler %q", name)
	}
}

func makePolicy(name string, seed uint64, migCost float64) (core.Policy, error) {
	switch name {
	case "NoRes":
		return core.NewNoRes(), nil
	case "ResSusUtil":
		return core.NewResSusUtil(), nil
	case "ResSusRand":
		return core.NewResSusRand(seed), nil
	case "ResSusWaitUtil":
		return core.NewResSusWaitUtil(), nil
	case "ResSusWaitRand":
		return core.NewResSusWaitRand(seed), nil
	case "ResSusMigrate":
		return core.NewResSusMigrate(migCost), nil
	default:
		return nil, fmt.Errorf("unknown policy %q", name)
	}
}
