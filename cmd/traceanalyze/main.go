// Command traceanalyze summarizes a JSONL job trace: counts, priority
// mix, service-demand distribution, arrival-rate timeline, and offered
// utilization against a platform size — the §2 trace-characterization
// workflow of the paper.
//
// Usage:
//
//	traceanalyze -trace trace.jsonl [-cores 19200] [-bin 100]
package main

import (
	"flag"
	"fmt"
	"os"

	"netbatch/internal/job"
	"netbatch/internal/report"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "traceanalyze:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		traceFile = flag.String("trace", "", "JSONL trace file (required)")
		cores     = flag.Int("cores", 19200, "platform core count for offered-utilization estimate")
		bin       = flag.Float64("bin", 100, "timeline bin width, minutes")
	)
	flag.Parse()
	if *traceFile == "" {
		return fmt.Errorf("-trace is required")
	}
	f, err := os.Open(*traceFile)
	if err != nil {
		return err
	}
	defer f.Close()
	tr, err := trace.ReadJSONL(f)
	if err != nil {
		return err
	}

	counts := tr.CountByPriority()
	fmt.Printf("jobs: %d (%d low, %d high) over %.0f minutes\n",
		len(tr.Jobs), counts[job.PriorityLow], counts[job.PriorityHigh], tr.Horizon())
	fmt.Printf("total work: %.0f core-minutes; offered utilization on %d cores: %.1f%%\n",
		tr.TotalWork(), *cores, tr.OfferedUtilization(*cores)*100)

	works := make([]float64, 0, len(tr.Jobs))
	var mem stats.Mean
	taskJobs := 0
	for i := range tr.Jobs {
		works = append(works, tr.Jobs[i].Work)
		mem.Add(float64(tr.Jobs[i].MemMB))
		if tr.Jobs[i].TaskID != 0 {
			taskJobs++
		}
	}
	cdf := stats.NewCDF(works)
	tbl := report.CDFTable("service demand distribution (minutes)", cdf)
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("mean memory requirement: %.0f MB; jobs in multi-job tasks: %d (%.1f%%)\n",
		mem.Mean(), taskJobs, float64(taskJobs)/float64(len(tr.Jobs))*100)

	lowTS := stats.NewTimeSeries(*bin)
	highTS := stats.NewTimeSeries(*bin)
	for i := range tr.Jobs {
		if tr.Jobs[i].Priority == job.PriorityHigh {
			highTS.Add(tr.Jobs[i].Submit, 1)
		} else {
			lowTS.Add(tr.Jobs[i].Submit, 1)
		}
	}
	fmt.Printf("low-priority arrivals:  %s\n", report.Sparkline(lowTS.Points(), 72))
	fmt.Printf("high-priority arrivals: %s\n", report.Sparkline(highTS.Points(), 72))
	return nil
}
