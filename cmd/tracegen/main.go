// Command tracegen emits synthetic NetBatch-shaped job traces.
//
// Usage:
//
//	tracegen -preset week|highsusp|year [-seed 42] [-scale 1.0]
//	         [-format jsonl|csv] [-o trace.jsonl]
//
// The presets are the calibrated workloads behind the paper's
// experiments (see internal/trace/presets.go and DESIGN.md).
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "tracegen:", err)
		os.Exit(1)
	}
}

func run() error {
	var (
		preset = flag.String("preset", "week", "workload preset: week, highsusp, or year")
		seed   = flag.Uint64("seed", 42, "random seed")
		scale  = flag.Float64("scale", 1.0, "arrival-rate scale (pair with an equally scaled platform)")
		format = flag.String("format", "jsonl", "output format: jsonl or csv")
		out    = flag.String("o", "", "output file (default: stdout)")
	)
	flag.Parse()

	var cfg trace.GeneratorConfig
	switch *preset {
	case "week":
		cfg = trace.WeekNormal(*seed)
		cfg = scaleRates(cfg, *scale)
	case "highsusp":
		cfg = trace.HighSuspension(*seed)
		cfg = scaleRates(cfg, *scale)
	case "year":
		cfg = trace.YearLong(*seed, *scale)
	default:
		return fmt.Errorf("unknown preset %q (want week, highsusp, or year)", *preset)
	}

	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	var w io.Writer = os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := f.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "tracegen: close:", cerr)
			}
		}()
		w = f
	}
	switch *format {
	case "jsonl":
		err = tr.WriteJSONL(w)
	case "csv":
		err = tr.WriteCSV(w)
	default:
		return fmt.Errorf("unknown format %q (want jsonl or csv)", *format)
	}
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "tracegen: %d jobs over %.0f minutes\n", len(tr.Jobs), tr.Horizon())
	return nil
}

func scaleRates(cfg trace.GeneratorConfig, s float64) trace.GeneratorConfig {
	if s == 1.0 {
		return cfg
	}
	cfg.LowRate *= s
	bursts := append([]trace.Burst(nil), cfg.Bursts...)
	for i := range bursts {
		bursts[i].Rate *= s
	}
	cfg.Bursts = bursts
	return cfg
}
