// Burst analysis: run a long trace with recurring high-priority bursts
// and reproduce the paper's §2 trace characterization — the suspension
// time CDF (Figure 2) and the utilization / suspended-jobs timeline
// (Figure 4) — at laptop scale.
//
// Run with:
//
//	go run ./examples/burst-analysis
package main

import (
	"fmt"
	"os"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "burst-analysis:", err)
		os.Exit(1)
	}
}

func run() error {
	// A sixth of a year at 2% platform scale keeps this example fast
	// while exercising several burst cycles.
	const scale = 0.02
	cfg := trace.YearLong(11, scale)
	cfg.Horizon = 90000
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}
	platCfg := cluster.DefaultNetBatchConfig()
	platCfg.Scale = scale
	plat, err := cluster.NewNetBatchPlatform(platCfg)
	if err != nil {
		return err
	}
	res, err := sim.Run(sim.Config{
		Platform:          plat,
		Initial:           sched.NewRoundRobin(),
		Policy:            core.NewNoRes(),
		CheckConservation: true,
	}, tr.Jobs)
	if err != nil {
		return err
	}
	sum, err := metrics.Summarize(res.Jobs)
	if err != nil {
		return err
	}

	fmt.Printf("%d jobs over %.0f minutes on %d cores; suspend rate %.2f%%\n\n",
		sum.Jobs, res.Makespan, plat.TotalCores(), sum.SuspendRate)

	cdf := metrics.SuspensionCDF(res.Jobs)
	tbl := report.CDFTable("suspension time CDF (Figure 2 shape)", cdf)
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}

	fmt.Println("\ntimeline (Figure 4 shape; 100-minute bins):")
	fmt.Printf("utilization %%: %s (mean %.1f%%)\n",
		report.Sparkline(res.Util.Points(), 72), res.Util.MeanOfBins())
	fmt.Printf("suspended:     %s\n", report.Sparkline(res.Suspended.Points(), 72))
	peakT, peakV := res.Suspended.MaxBin()
	fmt.Printf("largest suspension spike: %.0f jobs around minute %.0f\n", peakV, peakT)
	return nil
}
