// Capacity planning: sweep the platform's capacity factor (the paper's
// high-load scenario generalized) and observe how completion time and
// the value of dynamic rescheduling change with load. This reproduces
// the paper's normal-load vs high-load comparison (Tables 1 and 2) as a
// curve: the benefit of rescheduling grows as capacity shrinks.
//
// Run with:
//
//	go run ./examples/capacity-planning
package main

import (
	"fmt"
	"os"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "capacity-planning:", err)
		os.Exit(1)
	}
}

func run() error {
	const scale = 0.05
	base, err := cluster.NewNetBatchPlatform(func() cluster.NetBatchConfig {
		c := cluster.DefaultNetBatchConfig()
		c.Scale = scale
		return c
	}())
	if err != nil {
		return err
	}
	cfg := trace.WeekNormal(3)
	cfg.LowRate *= scale
	for i := range cfg.Bursts {
		cfg.Bursts[i].Rate *= scale
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	tbl := &report.Table{
		Title: "capacity sweep: same trace, shrinking platform",
		Columns: []string{
			"Capacity", "Cores", "NoRes AvgCT(all)", "NoRes AvgCT(susp)",
			"ResSusUtil AvgCT(susp)", "Reduction",
		},
	}
	for _, factor := range []float64{1.0, 0.8, 0.6, 0.5, 0.4} {
		plat, err := base.ScaleCapacity(factor)
		if err != nil {
			return err
		}
		var sums [2]metrics.Summary
		for i, pol := range []core.Policy{core.NewNoRes(), core.NewResSusUtil()} {
			res, err := sim.Run(sim.Config{
				Platform:          plat,
				Initial:           sched.NewRoundRobin(),
				Policy:            pol,
				CheckConservation: true,
				DisableSampling:   true,
			}, tr.Jobs)
			if err != nil {
				return fmt.Errorf("capacity %.1f: %w", factor, err)
			}
			if sums[i], err = metrics.Summarize(res.Jobs); err != nil {
				return err
			}
		}
		tbl.AddRow(
			fmt.Sprintf("%.0f%%", factor*100),
			fmt.Sprintf("%d", plat.TotalCores()),
			fmt.Sprintf("%.0f", sums[0].AvgCTAll),
			fmt.Sprintf("%.0f", sums[0].AvgCTSuspended),
			fmt.Sprintf("%.0f", sums[1].AvgCTSuspended),
			fmt.Sprintf("%.0f%%", (1-sums[1].AvgCTSuspended/sums[0].AvgCTSuspended)*100),
		)
	}
	return tbl.Render(os.Stdout)
}
