// Custom policy: the core.Policy interface makes rescheduling
// strategies pluggable. This example implements ResSusQueue — a
// strategy the paper suggests as future work ("the use of multiple
// metrics (e.g., utilization, queue lengths ...) in combination for
// making rescheduling decisions", §5) — which picks the alternate pool
// by a combined utilization + queue-backlog score, and compares it with
// the paper's strategies on the same trace.
//
// Run with:
//
//	go run ./examples/custom-policy
package main

import (
	"fmt"
	"os"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// ResSusQueue restarts suspended (and stalled waiting) jobs at the
// candidate pool minimizing utilization + queue backlog per core. The
// queue term avoids the trap ResSusUtil can fall into: a pool can be
// momentarily under-utilized yet have a deep backlog.
type ResSusQueue struct {
	// Threshold is the wait-queue stall threshold, minutes.
	Threshold float64
}

var _ core.Policy = ResSusQueue{}

// Name implements core.Policy.
func (ResSusQueue) Name() string { return "ResSusQueue" }

// score is the pool badness: utilization plus queued jobs per core.
func score(view sched.PoolView, pool int) float64 {
	return view.Utilization(pool) + float64(view.QueueLen(pool))/float64(view.PoolCores(pool))
}

// pick returns the best-scoring eligible alternate, if strictly better
// than the current pool.
func (ResSusQueue) pick(j *job.Job, view sched.PoolView) (int, bool) {
	best, bestScore := -1, 0.0
	for _, p := range j.Spec.Candidates {
		if p == j.Pool || !view.Eligible(p, &j.Spec) {
			continue
		}
		if s := score(view, p); best == -1 || s < bestScore {
			best, bestScore = p, s
		}
	}
	if best == -1 || (j.Pool >= 0 && bestScore >= score(view, j.Pool)) {
		return 0, false
	}
	return best, true
}

// OnSuspend implements core.Policy.
func (q ResSusQueue) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return q.pick(j, view)
}

// WaitThreshold implements core.Policy.
func (q ResSusQueue) WaitThreshold() float64 { return q.Threshold }

// OnWaitTimeout implements core.Policy.
func (q ResSusQueue) OnWaitTimeout(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return q.pick(j, view)
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "custom-policy:", err)
		os.Exit(1)
	}
}

func run() error {
	platCfg := cluster.DefaultNetBatchConfig()
	platCfg.Scale = 0.05
	plat, err := cluster.NewNetBatchPlatform(platCfg)
	if err != nil {
		return err
	}
	// The high-load variant stresses queues, where the combined metric
	// should shine.
	plat, err = plat.ScaleCapacity(0.5)
	if err != nil {
		return err
	}
	cfg := trace.WeekNormal(7)
	cfg.LowRate *= 0.05
	for i := range cfg.Bursts {
		cfg.Bursts[i].Rate *= 0.05
	}
	tr, err := trace.Generate(cfg)
	if err != nil {
		return err
	}

	policies := []core.Policy{
		core.NewNoRes(),
		core.NewResSusWaitUtil(),
		ResSusQueue{Threshold: core.DefaultWaitThreshold},
	}
	var names []string
	var sums []metrics.Summary
	for _, p := range policies {
		res, err := sim.Run(sim.Config{
			Platform:          plat,
			Initial:           sched.NewRoundRobin(),
			Policy:            p,
			CheckConservation: true,
		}, tr.Jobs)
		if err != nil {
			return err
		}
		sum, err := metrics.Summarize(res.Jobs)
		if err != nil {
			return err
		}
		names = append(names, p.Name())
		sums = append(sums, sum)
	}
	tbl, err := report.PaperTable("custom queue-aware policy vs paper strategies (high load)", names, sums)
	if err != nil {
		return err
	}
	return tbl.Render(os.Stdout)
}
