// Quickstart: build a small NetBatch-like platform, generate a bursty
// synthetic trace, and compare the NoRes baseline against ResSusUtil
// dynamic rescheduling — the paper's headline experiment in miniature.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"os"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "quickstart:", err)
		os.Exit(1)
	}
}

func run() error {
	// A scaled-down version of the paper's platform: 20 heterogeneous
	// pools at 5% size (~960 cores).
	platCfg := cluster.DefaultNetBatchConfig()
	platCfg.Scale = 0.05
	plat, err := cluster.NewNetBatchPlatform(platCfg)
	if err != nil {
		return err
	}

	// A one-week trace with a mid-week burst of pool-restricted
	// high-priority jobs, scaled to match the platform.
	traceCfg := trace.WeekNormal(1)
	traceCfg.LowRate *= 0.05
	for i := range traceCfg.Bursts {
		traceCfg.Bursts[i].Rate *= 0.05
	}
	tr, err := trace.Generate(traceCfg)
	if err != nil {
		return err
	}
	fmt.Printf("platform: %d pools, %d cores; trace: %d jobs, offered utilization %.0f%%\n\n",
		plat.NumPools(), plat.TotalCores(), len(tr.Jobs),
		tr.OfferedUtilization(plat.TotalCores())*100)

	// Simulate both strategies on the identical trace.
	var names []string
	var sums []metrics.Summary
	for _, policy := range []core.Policy{core.NewNoRes(), core.NewResSusUtil()} {
		res, err := sim.Run(sim.Config{
			Platform:          plat,
			Initial:           sched.NewRoundRobin(),
			Policy:            policy,
			CheckConservation: true,
		}, tr.Jobs)
		if err != nil {
			return err
		}
		sum, err := metrics.Summarize(res.Jobs)
		if err != nil {
			return err
		}
		names = append(names, policy.Name())
		sums = append(sums, sum)
	}

	tbl, err := report.PaperTable("NoRes vs ResSusUtil (minutes)", names, sums)
	if err != nil {
		return err
	}
	if err := tbl.Render(os.Stdout); err != nil {
		return err
	}
	fmt.Printf("\nAvgCT of suspended jobs cut by %.0f%%; system waste (AvgWCT) cut by %.0f%%\n",
		(1-sums[1].AvgCTSuspended/sums[0].AvgCTSuspended)*100,
		(1-sums[1].AvgWCT/sums[0].AvgWCT)*100)
	return nil
}
