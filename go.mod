module netbatch

go 1.24
