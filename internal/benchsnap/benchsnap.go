// Package benchsnap runs the repo's canonical performance cells and
// compares the result against a committed snapshot, so the bench
// trajectory is CI-tracked instead of anecdotal: every PR that moves a
// hot-path number beyond the noise band fails loudly with the cell and
// metric that moved.
//
// The cell set mirrors the headline benchmarks (multi-site busy week
// and the faulty week on all three engines, the 6-site metro week on
// both partitioned engines, and the checkpoint/restore set including
// delta capture) at the same 4% bench scale. Results serialize to a
// schema-versioned JSON snapshot (BENCH_8.json at the repo root is the
// committed baseline; earlier BENCH_*.json files stay committed as the
// trend history — see cmd/benchsnap).
//
// Comparison rules: allocations and bytes per op are
// hardware-independent and gate on every run; wall-clock gates only
// when the baseline was recorded on a matching machine shape (same
// GOOS/GOARCH/CPU count), because a 1-CPU container and a 4-vCPU CI
// runner measure different parallel engines.
package benchsnap

import (
	"fmt"
	"runtime"
	"sort"
	"testing"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/experiments"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// Schema versions the snapshot layout; bump on any breaking change to
// the JSON shape or the cell set semantics.
const Schema = 1

// Snapshot is one recorded bench pass.
type Snapshot struct {
	Schema int    `json:"schema"`
	GOOS   string `json:"goos"`
	GOARCH string `json:"goarch"`
	// CPUs is runtime.NumCPU at record time — the parallel cells'
	// wall-clock depends on it, so time comparison requires a match.
	CPUs  int     `json:"cpus"`
	Scale float64 `json:"scale"`
	Cells []Cell  `json:"cells"`
}

// Cell is one benchmark cell's measurement.
type Cell struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  int64   `json:"bytes_per_op"`
	AllocsPerOp int64   `json:"allocs_per_op"`
	// Metrics carries the cell's extra testing.B.ReportMetric values
	// (KB/snapshot, pctOfFull, ...). Informational — not gated.
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Collect runs every cell once through testing.Benchmark and returns
// the snapshot. scale <= 0 defaults to the canonical 4% bench scale.
func Collect(scale float64) (Snapshot, error) {
	if scale <= 0 {
		scale = 0.04
	}
	snap := Snapshot{
		Schema: Schema,
		GOOS:   runtime.GOOS,
		GOARCH: runtime.GOARCH,
		CPUs:   runtime.NumCPU(),
		Scale:  scale,
	}
	var firstErr error
	record := func(name string, fn func(b *testing.B) error) {
		if firstErr != nil {
			return
		}
		var innerErr error
		r := testing.Benchmark(func(b *testing.B) {
			b.ReportAllocs()
			if err := fn(b); err != nil {
				innerErr = err
				b.FailNow()
			}
		})
		if innerErr != nil {
			firstErr = fmt.Errorf("%s: %w", name, innerErr)
			return
		}
		cell := Cell{
			Name:        name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if len(r.Extra) > 0 {
			cell.Metrics = make(map[string]float64, len(r.Extra))
			for k, v := range r.Extra {
				cell.Metrics[k] = v
			}
		}
		snap.Cells = append(snap.Cells, cell)
	}

	multisite, err := prebuiltCell(experiments.MultiSiteScenario("bench-multisite", 3, 0,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} }), scale)
	if err != nil {
		return snap, err
	}
	faults, err := prebuiltCell(experiments.FaultScenario("bench-faults", 3, sim.VictimRequeue), scale)
	if err != nil {
		return snap, err
	}
	pf := experiments.PolicyFactory{
		Name: "ResSusWaitLatency",
		New:  func(uint64) core.Policy { return core.NewResSusWaitLatency() },
	}
	for _, engine := range []string{sim.EngineSerial, sim.EngineParallel, sim.EngineOptimistic} {
		engine := engine
		record("multisite_week/"+engine, func(b *testing.B) error {
			return runCell(b, multisite, pf, engine, scale)
		})
		record("faults_week/"+engine, func(b *testing.B) error {
			return runCell(b, faults, pf, engine, scale)
		})
	}
	// The 6-site metro federation is the optimistic engine's headline
	// cell: cross-site RTTs of 5–25 minutes keep the conservative
	// engine's LBTS lookahead short (thousands of barrier rounds per
	// simulated week), while the speculative engine only synchronizes at
	// decisions. The parallel twin is recorded alongside so the snapshot
	// itself documents the comparison.
	metro6, err := prebuiltCell(experiments.MultiSiteScenario("bench-metro6", 6, 0,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} }), scale)
	if err != nil {
		return snap, err
	}
	for _, engine := range []string{sim.EngineParallel, sim.EngineOptimistic} {
		engine := engine
		record("metro6_week/"+engine, func(b *testing.B) error {
			return runCell(b, metro6, pf, engine, scale)
		})
	}
	// The year6 family is the ROADMAP north-star cell: a simulated year
	// on the 6-site federation (at the reduced multiSiteYearScale so a
	// pass stays in seconds), all three engines. It is where commit
	// throughput and round-barrier costs dominate — a week-scale cell
	// amortizes the engines' serialization points over too few
	// decisions to see them move.
	year6, err := prebuiltCell(experiments.MultiSiteYearScenario("bench-year6", 6,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} }), scale)
	if err != nil {
		return snap, err
	}
	for _, engine := range []string{sim.EngineSerial, sim.EngineParallel, sim.EngineOptimistic} {
		engine := engine
		record("year6/"+engine, func(b *testing.B) error {
			return runCell(b, year6, pf, engine, scale)
		})
	}
	collectCheckpointCells(record, multisite, scale)
	return snap, firstErr
}

// prebuiltCell synthesizes a scenario's trace and platform once so the
// timed loop is simulation only (mirrors the bench_test harness).
func prebuiltCell(sc experiments.Scenario, scale float64) (experiments.Scenario, error) {
	tr, err := sc.Trace(42, scale)
	if err != nil {
		return sc, err
	}
	plat, err := sc.Platform(scale)
	if err != nil {
		return sc, err
	}
	sc.Trace = func(uint64, float64) (*trace.Trace, error) { return tr, nil }
	sc.Platform = func(float64) (*cluster.Platform, error) { return plat, nil }
	return sc, nil
}

func runCell(b *testing.B, sc experiments.Scenario, pf experiments.PolicyFactory, engine string, scale float64) error {
	opts := experiments.Options{Seed: 42, Scale: scale, Jobs: 1, Engine: engine}
	for i := 0; i < b.N; i++ {
		if _, err := experiments.RunCell(sc, pf, opts); err != nil {
			return err
		}
	}
	return nil
}

// collectCheckpointCells records the checkpoint set: a full-cadence
// capture run, the delta-keyframe capture run, and a resume from the
// mid-run snapshot. One simulated day cadence, like the experiments
// default.
func collectCheckpointCells(record func(string, func(b *testing.B) error), sc experiments.Scenario, scale float64) {
	const day = 1440.0
	tr, err := sc.Trace(42, scale)
	if err != nil {
		record("checkpoint/capture", func(*testing.B) error { return err })
		return
	}
	plat, err := sc.Platform(scale)
	if err != nil {
		record("checkpoint/capture", func(*testing.B) error { return err })
		return
	}
	mkCfg := func() sim.Config {
		return sim.Config{
			Platform: plat,
			Initial:  sc.NewInitial(),
			Policy:   core.NewResSusWaitLatency(),
		}
	}

	var mid sim.Checkpoint
	var fullBytesPerSnap float64
	record("checkpoint/capture", func(b *testing.B) error {
		var count, bytes int
		var cks []sim.Checkpoint
		for i := 0; i < b.N; i++ {
			cks = cks[:0]
			cfg := mkCfg()
			cfg.CheckpointEvery = day
			cfg.CheckpointSink = func(c sim.Checkpoint) error {
				cks = append(cks, c)
				return nil
			}
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				return err
			}
			count += len(cks)
			for _, c := range cks {
				bytes += len(c.Data)
			}
		}
		if count > 0 {
			mid = cks[len(cks)/2]
			fullBytesPerSnap = float64(bytes) / float64(count)
			b.ReportMetric(fullBytesPerSnap/1024, "KB/snapshot")
		}
		return nil
	})
	record("checkpoint/capture_delta", func(b *testing.B) error {
		var deltaCount, deltaBytes int
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.CheckpointEvery = day
			cfg.CheckpointKeyframe = 8
			cfg.CheckpointSink = func(c sim.Checkpoint) error {
				if c.Delta {
					deltaCount++
					deltaBytes += len(c.Data)
				}
				return nil
			}
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				return err
			}
		}
		if deltaCount > 0 {
			perDelta := float64(deltaBytes) / float64(deltaCount)
			b.ReportMetric(perDelta/1024, "KB/delta")
			if fullBytesPerSnap > 0 {
				b.ReportMetric(100*perDelta/fullBytesPerSnap, "pctOfFull")
			}
		}
		return nil
	})
	record("checkpoint/resume", func(b *testing.B) error {
		if len(mid.Data) == 0 {
			return fmt.Errorf("no mid-run snapshot captured")
		}
		for i := 0; i < b.N; i++ {
			cfg := mkCfg()
			cfg.ResumeFrom = mid.Data
			if _, err := sim.Run(cfg, tr.Jobs); err != nil {
				return err
			}
		}
		return nil
	})
}

// Regression is one gated metric that moved past its tolerance.
type Regression struct {
	Cell   string  `json:"cell"`
	Metric string  `json:"metric"`
	Base   float64 `json:"base"`
	Cand   float64 `json:"candidate"`
	// Ratio is candidate/base; the gate fires when it exceeds
	// 1 + tolerance.
	Ratio float64 `json:"ratio"`
}

func (r Regression) String() string {
	return fmt.Sprintf("%s %s: %.4g -> %.4g (%.1f%%)", r.Cell, r.Metric, r.Base, r.Cand, 100*(r.Ratio-1))
}

// Compare gates candidate against base: allocs/op and bytes/op always
// (within allocTol), ns/op only when the machine shapes match (within
// timeTol). Returned notes explain skipped gates and new/missing
// cells; regressions is empty on a pass.
func Compare(base, cand Snapshot, timeTol, allocTol float64) (regressions []Regression, notes []string, err error) {
	if base.Schema != cand.Schema {
		return nil, nil, fmt.Errorf("benchsnap: schema %d vs %d — re-record the baseline", base.Schema, cand.Schema)
	}
	if base.Scale != cand.Scale {
		return nil, nil, fmt.Errorf("benchsnap: bench scale %v vs %v — re-record the baseline", base.Scale, cand.Scale)
	}
	timeGate := base.GOOS == cand.GOOS && base.GOARCH == cand.GOARCH && base.CPUs == cand.CPUs
	if !timeGate {
		notes = append(notes, fmt.Sprintf(
			"time gate skipped: baseline recorded on %s/%s/%d-cpu, candidate on %s/%s/%d-cpu",
			base.GOOS, base.GOARCH, base.CPUs, cand.GOOS, cand.GOARCH, cand.CPUs))
	}
	candBy := make(map[string]Cell, len(cand.Cells))
	for _, c := range cand.Cells {
		candBy[c.Name] = c
	}
	gate := func(cell, metric string, b, c, tol float64) {
		if b <= 0 {
			return
		}
		if ratio := c / b; ratio > 1+tol {
			regressions = append(regressions, Regression{Cell: cell, Metric: metric, Base: b, Cand: c, Ratio: ratio})
		}
	}
	for _, bc := range base.Cells {
		cc, ok := candBy[bc.Name]
		if !ok {
			regressions = append(regressions, Regression{Cell: bc.Name, Metric: "missing", Ratio: 1})
			continue
		}
		delete(candBy, bc.Name)
		gate(bc.Name, "allocs/op", float64(bc.AllocsPerOp), float64(cc.AllocsPerOp), allocTol)
		gate(bc.Name, "bytes/op", float64(bc.BytesPerOp), float64(cc.BytesPerOp), allocTol)
		if timeGate {
			gate(bc.Name, "ns/op", bc.NsPerOp, cc.NsPerOp, timeTol)
		}
	}
	extra := make([]string, 0, len(candBy))
	for name := range candBy {
		extra = append(extra, name)
	}
	sort.Strings(extra)
	for _, name := range extra {
		notes = append(notes, "new cell not in baseline: "+name)
	}
	sort.Slice(regressions, func(i, j int) bool {
		if regressions[i].Cell != regressions[j].Cell {
			return regressions[i].Cell < regressions[j].Cell
		}
		return regressions[i].Metric < regressions[j].Metric
	})
	return regressions, notes, nil
}
