package benchsnap

import (
	"strings"
	"testing"
)

func snapWith(cpus int, cells ...Cell) Snapshot {
	return Snapshot{Schema: Schema, GOOS: "linux", GOARCH: "amd64", CPUs: cpus, Scale: 0.04, Cells: cells}
}

func TestCompareGates(t *testing.T) {
	base := snapWith(4,
		Cell{Name: "a", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 1000},
		Cell{Name: "b", NsPerOp: 2000, BytesPerOp: 2 << 20, AllocsPerOp: 2000},
	)

	t.Run("within tolerance passes", func(t *testing.T) {
		cand := snapWith(4,
			Cell{Name: "a", NsPerOp: 1090, BytesPerOp: 1<<20 + 1<<15, AllocsPerOp: 1040},
			Cell{Name: "b", NsPerOp: 1900, BytesPerOp: 2 << 20, AllocsPerOp: 2000},
		)
		regs, notes, err := Compare(base, cand, 0.10, 0.05)
		if err != nil || len(regs) != 0 || len(notes) != 0 {
			t.Fatalf("want clean pass, got regs=%v notes=%v err=%v", regs, notes, err)
		}
	})

	t.Run("alloc regression fails", func(t *testing.T) {
		cand := snapWith(4,
			Cell{Name: "a", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 1100},
			Cell{Name: "b", NsPerOp: 2000, BytesPerOp: 2 << 20, AllocsPerOp: 2000},
		)
		regs, _, err := Compare(base, cand, 0.10, 0.05)
		if err != nil || len(regs) != 1 || regs[0].Cell != "a" || regs[0].Metric != "allocs/op" {
			t.Fatalf("want one allocs/op regression on a, got %v err=%v", regs, err)
		}
	})

	t.Run("time regression fails on matching shape", func(t *testing.T) {
		cand := snapWith(4,
			Cell{Name: "a", NsPerOp: 1200, BytesPerOp: 1 << 20, AllocsPerOp: 1000},
			Cell{Name: "b", NsPerOp: 2000, BytesPerOp: 2 << 20, AllocsPerOp: 2000},
		)
		regs, _, err := Compare(base, cand, 0.10, 0.05)
		if err != nil || len(regs) != 1 || regs[0].Metric != "ns/op" {
			t.Fatalf("want one ns/op regression, got %v err=%v", regs, err)
		}
	})

	t.Run("time gate skipped on cpu mismatch", func(t *testing.T) {
		cand := snapWith(1,
			Cell{Name: "a", NsPerOp: 5000, BytesPerOp: 1 << 20, AllocsPerOp: 1000},
			Cell{Name: "b", NsPerOp: 9000, BytesPerOp: 2 << 20, AllocsPerOp: 2000},
		)
		regs, notes, err := Compare(base, cand, 0.10, 0.05)
		if err != nil || len(regs) != 0 {
			t.Fatalf("time must not gate across shapes, got %v err=%v", regs, err)
		}
		if len(notes) != 1 || !strings.Contains(notes[0], "time gate skipped") {
			t.Fatalf("want a skip note, got %v", notes)
		}
	})

	t.Run("missing and extra cells reported", func(t *testing.T) {
		cand := snapWith(4,
			Cell{Name: "a", NsPerOp: 1000, BytesPerOp: 1 << 20, AllocsPerOp: 1000},
			Cell{Name: "c", NsPerOp: 10, BytesPerOp: 10, AllocsPerOp: 10},
		)
		regs, notes, err := Compare(base, cand, 0.10, 0.05)
		if err != nil || len(regs) != 1 || regs[0].Cell != "b" || regs[0].Metric != "missing" {
			t.Fatalf("want missing-cell regression for b, got %v err=%v", regs, err)
		}
		if len(notes) != 1 || !strings.Contains(notes[0], "new cell not in baseline: c") {
			t.Fatalf("want new-cell note for c, got %v", notes)
		}
	})

	t.Run("schema and scale mismatches are errors", func(t *testing.T) {
		bad := snapWith(4)
		bad.Schema = Schema + 1
		if _, _, err := Compare(bad, snapWith(4), 0.10, 0.05); err == nil {
			t.Fatal("schema mismatch must error")
		}
		bad = snapWith(4)
		bad.Scale = 0.1
		if _, _, err := Compare(bad, snapWith(4), 0.10, 0.05); err == nil {
			t.Fatal("scale mismatch must error")
		}
	})
}
