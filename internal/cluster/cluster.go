// Package cluster models the static NetBatch platform: heterogeneous
// multi-core machines grouped into physical pools, grouped into sites.
// The paper's deployment is "hundreds of machine clusters called pools,
// distributed globally at dozens of data centers, utilizing tens of
// thousands of heterogeneous multi-core compute machines" (§1); its
// evaluation emulates one large site with 20 physical pools (§3.1).
//
// The package holds only static configuration. Dynamic state (which jobs
// run where, free cores, utilization) belongs to the simulator.
package cluster

import (
	"fmt"
	"math"

	"netbatch/internal/job"
)

// Machine is one compute host.
type Machine struct {
	// ID is the machine's global index within the platform.
	ID int `json:"id"`
	// Pool is the physical pool the machine belongs to.
	Pool int `json:"pool"`
	// Cores is the number of job slots.
	Cores int `json:"cores"`
	// MemMB is the machine's memory capacity in megabytes.
	MemMB int `json:"mem_mb"`
	// Speed is the relative execution speed (1.0 = reference). A job
	// with service demand W minutes finishes in W/Speed wall minutes.
	Speed float64 `json:"speed"`
	// OS is the machine's operating system label.
	OS string `json:"os"`
}

// Eligible reports whether the machine satisfies a job's static
// requirements (OS, memory capacity, core count). This mirrors the
// paper's "first eligible machine (i.e., which satisfies the job
// requirements)" test; availability is checked separately by the
// simulator.
func (m *Machine) Eligible(spec *job.Spec) bool {
	if spec.OS != "" && spec.OS != m.OS {
		return false
	}
	return m.MemMB >= spec.MemMB && m.Cores >= spec.Cores
}

// MachineClass describes a homogeneous group of machines inside a pool,
// used by pool builders.
type MachineClass struct {
	// Count is the number of machines of this class.
	Count int `json:"count"`
	// Cores per machine.
	Cores int `json:"cores"`
	// MemMB per machine.
	MemMB int `json:"mem_mb"`
	// Speed factor per machine.
	Speed float64 `json:"speed"`
	// OS label; defaults to "linux" if empty.
	OS string `json:"os,omitempty"`
}

// PoolConfig describes one physical pool to build.
type PoolConfig struct {
	// Name is a human-readable pool label.
	Name string `json:"name"`
	// Site is the data-center site the pool lives at.
	Site string `json:"site"`
	// Classes are the machine groups making up the pool.
	Classes []MachineClass `json:"classes"`
}

// Pool is one physical pool: a named set of machines at a site.
type Pool struct {
	// ID is the pool's index within the platform.
	ID int `json:"id"`
	// Name is the pool's label.
	Name string `json:"name"`
	// Site is the pool's data-center site.
	Site string `json:"site"`
	// Machines holds the global machine IDs belonging to this pool.
	Machines []int `json:"machines"`
	// Cores is the pool's total core count (cached).
	Cores int `json:"cores"`
}

// Site is one data-center site of the federation: the pools located
// there plus cached capacity. The paper's deployment spreads pools
// "globally at dozens of data centers" (§1); sites are derived from the
// PoolConfig.Site labels in order of first appearance.
type Site struct {
	// ID is the site's index within the platform.
	ID int `json:"id"`
	// Region is the site's label (the PoolConfig.Site string).
	Region string `json:"region"`
	// Pools holds the pool IDs located at this site.
	Pools []int `json:"pools"`
	// Cores is the site's total core count (cached).
	Cores int `json:"cores"`
}

// Platform is an immutable description of the whole deployment.
type Platform struct {
	pools    []Pool
	machines []Machine

	sites  []Site
	siteOf []int // pool ID -> site ID
	// rtt is the inter-site state-propagation delay matrix in simulated
	// minutes (nil = all zero). The simulator works in minutes, so the
	// matrix models the full cross-site visibility/transfer pipeline
	// delay (cf. the paper's 30-minute utilization staleness, §3.2.2),
	// not the millisecond wire RTT alone.
	rtt [][]float64
}

// Build constructs a platform from pool configurations. Pool IDs are
// assigned in order; machine IDs are assigned in pool order.
func Build(configs []PoolConfig) (*Platform, error) {
	if len(configs) == 0 {
		return nil, fmt.Errorf("cluster: no pools configured")
	}
	p := &Platform{}
	for poolID, cfg := range configs {
		pool := Pool{ID: poolID, Name: cfg.Name, Site: cfg.Site}
		if pool.Name == "" {
			pool.Name = fmt.Sprintf("pool-%02d", poolID)
		}
		if len(cfg.Classes) == 0 {
			return nil, fmt.Errorf("cluster: pool %q has no machine classes", pool.Name)
		}
		for ci, cls := range cfg.Classes {
			if cls.Count <= 0 {
				return nil, fmt.Errorf("cluster: pool %q class %d: non-positive count %d", pool.Name, ci, cls.Count)
			}
			if cls.Cores <= 0 {
				return nil, fmt.Errorf("cluster: pool %q class %d: non-positive cores %d", pool.Name, ci, cls.Cores)
			}
			if cls.MemMB <= 0 {
				return nil, fmt.Errorf("cluster: pool %q class %d: non-positive memory %d", pool.Name, ci, cls.MemMB)
			}
			if cls.Speed <= 0 {
				return nil, fmt.Errorf("cluster: pool %q class %d: non-positive speed %v", pool.Name, ci, cls.Speed)
			}
			osLabel := cls.OS
			if osLabel == "" {
				osLabel = "linux"
			}
			for i := 0; i < cls.Count; i++ {
				id := len(p.machines)
				p.machines = append(p.machines, Machine{
					ID:    id,
					Pool:  poolID,
					Cores: cls.Cores,
					MemMB: cls.MemMB,
					Speed: cls.Speed,
					OS:    osLabel,
				})
				pool.Machines = append(pool.Machines, id)
				pool.Cores += cls.Cores
			}
		}
		p.pools = append(p.pools, pool)
	}
	p.buildSites()
	return p, nil
}

// buildSites derives the site list from pool labels, in order of first
// appearance. An empty label is its own (default) site.
func (p *Platform) buildSites() {
	index := make(map[string]int)
	p.sites = nil
	p.siteOf = make([]int, len(p.pools))
	for i := range p.pools {
		pool := &p.pools[i]
		sid, ok := index[pool.Site]
		if !ok {
			sid = len(p.sites)
			index[pool.Site] = sid
			region := pool.Site
			if region == "" {
				region = "default"
			}
			p.sites = append(p.sites, Site{ID: sid, Region: region})
		}
		p.sites[sid].Pools = append(p.sites[sid].Pools, pool.ID)
		p.sites[sid].Cores += pool.Cores
		p.siteOf[pool.ID] = sid
	}
}

// WithRTT returns a platform sharing this one's pools and machines with
// the given inter-site delay matrix attached. The matrix must be
// NumSites×NumSites with a zero diagonal and non-negative entries;
// entry [a][b] is the one-way dispatch/visibility delay from site a to
// site b in simulated minutes.
func (p *Platform) WithRTT(rtt [][]float64) (*Platform, error) {
	if len(rtt) != len(p.sites) {
		return nil, fmt.Errorf("cluster: rtt matrix has %d rows for %d sites", len(rtt), len(p.sites))
	}
	for a, row := range rtt {
		if len(row) != len(p.sites) {
			return nil, fmt.Errorf("cluster: rtt row %d has %d entries for %d sites", a, len(row), len(p.sites))
		}
		for b, d := range row {
			if d < 0 {
				return nil, fmt.Errorf("cluster: negative rtt %v between sites %d and %d", d, a, b)
			}
			if a == b && d != 0 {
				return nil, fmt.Errorf("cluster: non-zero self-rtt %v at site %d", d, a)
			}
		}
	}
	out := *p
	out.rtt = rtt
	return &out, nil
}

// NumSites returns the number of data-center sites.
func (p *Platform) NumSites() int { return len(p.sites) }

// Site returns the site with the given ID. It panics on an out-of-range
// ID, which is a programmer error.
func (p *Platform) Site(id int) *Site { return &p.sites[id] }

// SiteOf returns the site ID of the given pool.
func (p *Platform) SiteOf(pool int) int { return p.siteOf[pool] }

// RTT returns the one-way inter-site delay from site a to site b in
// minutes (0 when no matrix is attached or a == b).
func (p *Platform) RTT(a, b int) float64 {
	if p.rtt == nil || a == b {
		return 0
	}
	return p.rtt[a][b]
}

// MaxRTT returns the largest inter-site delay, or 0.
func (p *Platform) MaxRTT() float64 {
	var m float64
	for _, row := range p.rtt {
		for _, d := range row {
			if d > m {
				m = d
			}
		}
	}
	return m
}

// MinCrossRTT returns the smallest delay between two distinct sites,
// or 0 on a single-site platform or when any cross-site delay is zero
// (no matrix attached included). A strictly positive result is the
// conservative lookahead available to a partitioned simulation: no
// site can influence another in less simulated time than this.
func (p *Platform) MinCrossRTT() float64 {
	if len(p.sites) < 2 {
		return 0
	}
	min := math.Inf(1)
	for a := range p.sites {
		for b := range p.sites {
			if a == b {
				continue
			}
			if d := p.RTT(a, b); d < min {
				min = d
			}
		}
	}
	return min
}

// NumPools returns the number of physical pools.
func (p *Platform) NumPools() int { return len(p.pools) }

// NumMachines returns the total machine count.
func (p *Platform) NumMachines() int { return len(p.machines) }

// Pool returns the pool with the given ID. It panics on an out-of-range
// ID, which is a programmer error.
func (p *Platform) Pool(id int) *Pool { return &p.pools[id] }

// Machine returns the machine with the given global ID. It panics on an
// out-of-range ID, which is a programmer error.
func (p *Platform) Machine(id int) *Machine { return &p.machines[id] }

// TotalCores returns the platform-wide core count.
func (p *Platform) TotalCores() int {
	total := 0
	for i := range p.pools {
		total += p.pools[i].Cores
	}
	return total
}

// PoolIDs returns all pool IDs in order.
func (p *Platform) PoolIDs() []int {
	ids := make([]int, len(p.pools))
	for i := range p.pools {
		ids[i] = i
	}
	return ids
}

// PoolCores returns the core count of pool id.
func (p *Platform) PoolCores(id int) int { return p.pools[id].Cores }
