package cluster

import (
	"math"
	"strings"
	"testing"

	"netbatch/internal/job"
)

func twoPoolConfig() []PoolConfig {
	return []PoolConfig{
		{
			Name: "alpha",
			Site: "site-A",
			Classes: []MachineClass{
				{Count: 2, Cores: 4, MemMB: 8192, Speed: 1.0},
				{Count: 1, Cores: 8, MemMB: 16384, Speed: 1.25, OS: "windows"},
			},
		},
		{
			Name: "beta",
			Site: "site-B",
			Classes: []MachineClass{
				{Count: 3, Cores: 2, MemMB: 4096, Speed: 0.8},
			},
		},
	}
}

func TestBuild(t *testing.T) {
	p, err := Build(twoPoolConfig())
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPools() != 2 {
		t.Fatalf("NumPools = %d", p.NumPools())
	}
	if p.NumMachines() != 6 {
		t.Fatalf("NumMachines = %d", p.NumMachines())
	}
	if got := p.TotalCores(); got != 2*4+8+3*2 {
		t.Fatalf("TotalCores = %d", got)
	}
	alpha := p.Pool(0)
	if alpha.Name != "alpha" || alpha.Cores != 16 || len(alpha.Machines) != 3 {
		t.Fatalf("alpha = %+v", alpha)
	}
	// Machine IDs are global and dense.
	for i := 0; i < p.NumMachines(); i++ {
		m := p.Machine(i)
		if m.ID != i {
			t.Fatalf("machine %d has ID %d", i, m.ID)
		}
	}
	// Pool membership is consistent.
	for _, pid := range p.PoolIDs() {
		for _, mid := range p.Pool(pid).Machines {
			if p.Machine(mid).Pool != pid {
				t.Fatalf("machine %d claims pool %d, listed under %d", mid, p.Machine(mid).Pool, pid)
			}
		}
	}
	if got := p.PoolCores(1); got != 6 {
		t.Fatalf("PoolCores(1) = %d", got)
	}
}

func TestBuildDefaultsOSAndName(t *testing.T) {
	p, err := Build([]PoolConfig{{Classes: []MachineClass{{Count: 1, Cores: 1, MemMB: 1, Speed: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Machine(0).OS; got != "linux" {
		t.Fatalf("default OS = %q", got)
	}
	if got := p.Pool(0).Name; !strings.HasPrefix(got, "pool-") {
		t.Fatalf("default name = %q", got)
	}
}

func TestBuildErrors(t *testing.T) {
	cases := []struct {
		name    string
		configs []PoolConfig
	}{
		{"empty", nil},
		{"noClasses", []PoolConfig{{Name: "x"}}},
		{"zeroCount", []PoolConfig{{Classes: []MachineClass{{Count: 0, Cores: 1, MemMB: 1, Speed: 1}}}}},
		{"zeroCores", []PoolConfig{{Classes: []MachineClass{{Count: 1, Cores: 0, MemMB: 1, Speed: 1}}}}},
		{"zeroMem", []PoolConfig{{Classes: []MachineClass{{Count: 1, Cores: 1, MemMB: 0, Speed: 1}}}}},
		{"zeroSpeed", []PoolConfig{{Classes: []MachineClass{{Count: 1, Cores: 1, MemMB: 1, Speed: 0}}}}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Build(c.configs); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestMachineEligible(t *testing.T) {
	m := Machine{Cores: 4, MemMB: 8192, OS: "linux"}
	cases := []struct {
		name string
		spec job.Spec
		want bool
	}{
		{"fits", job.Spec{Cores: 2, MemMB: 4096}, true},
		{"exactFit", job.Spec{Cores: 4, MemMB: 8192}, true},
		{"tooManyCores", job.Spec{Cores: 8, MemMB: 1}, false},
		{"tooMuchMem", job.Spec{Cores: 1, MemMB: 9000}, false},
		{"osMatch", job.Spec{Cores: 1, MemMB: 1, OS: "linux"}, true},
		{"osMismatch", job.Spec{Cores: 1, MemMB: 1, OS: "windows"}, false},
		{"osAny", job.Spec{Cores: 1, MemMB: 1, OS: ""}, true},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := m.Eligible(&c.spec); got != c.want {
				t.Fatalf("Eligible = %v, want %v", got, c.want)
			}
		})
	}
}

func TestNewNetBatchPlatformDefault(t *testing.T) {
	cfg := DefaultNetBatchConfig()
	p, err := NewNetBatchPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if p.NumPools() != 20 {
		t.Fatalf("NumPools = %d, want 20 (paper §3.1)", p.NumPools())
	}
	// 4*600 + 8*225 + 8*75 machines, 4 cores each.
	wantMachines := 4*600 + 8*225 + 8*75
	if got := p.NumMachines(); got != wantMachines {
		t.Fatalf("NumMachines = %d, want %d", got, wantMachines)
	}
	if got := p.TotalCores(); got != wantMachines*4 {
		t.Fatalf("TotalCores = %d", got)
	}
	// Big pools come first and are the largest.
	big := p.PoolCores(0)
	small := p.PoolCores(19)
	if big <= small {
		t.Fatalf("big pool (%d cores) not larger than small (%d)", big, small)
	}
	for _, id := range BigPoolIDs(cfg) {
		if !strings.HasPrefix(p.Pool(id).Name, "big-") {
			t.Fatalf("pool %d = %q, want big-*", id, p.Pool(id).Name)
		}
	}
	// Heterogeneity: all three speed classes present in pool 0.
	speeds := map[float64]bool{}
	for _, mid := range p.Pool(0).Machines {
		speeds[p.Machine(mid).Speed] = true
	}
	if len(speeds) != 3 {
		t.Fatalf("speed classes in pool 0 = %v, want 3", speeds)
	}
}

func TestNewNetBatchPlatformScaled(t *testing.T) {
	cfg := DefaultNetBatchConfig()
	cfg.Scale = 0.1
	p, err := NewNetBatchPlatform(cfg)
	if err != nil {
		t.Fatal(err)
	}
	full, err := NewNetBatchPlatform(DefaultNetBatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	ratio := float64(p.TotalCores()) / float64(full.TotalCores())
	if math.Abs(ratio-0.1) > 0.02 {
		t.Fatalf("scaled core ratio = %v, want ~0.1", ratio)
	}
	if p.NumPools() != 20 {
		t.Fatalf("scaling changed pool count: %d", p.NumPools())
	}
}

func TestNewNetBatchPlatformErrors(t *testing.T) {
	cfg := DefaultNetBatchConfig()
	cfg.Scale = 0
	if _, err := NewNetBatchPlatform(cfg); err == nil {
		t.Fatal("zero scale should fail")
	}
	cfg = NetBatchConfig{Scale: 1}
	if _, err := NewNetBatchPlatform(cfg); err == nil {
		t.Fatal("no pools should fail")
	}
}

func TestScaleCapacityHalf(t *testing.T) {
	p, err := NewNetBatchPlatform(DefaultNetBatchConfig())
	if err != nil {
		t.Fatal(err)
	}
	half, err := p.ScaleCapacity(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumPools() != p.NumPools() {
		t.Fatalf("pool count changed: %d", half.NumPools())
	}
	ratio := float64(half.TotalCores()) / float64(p.TotalCores())
	if math.Abs(ratio-0.5) > 0.01 {
		t.Fatalf("halved core ratio = %v", ratio)
	}
	// Machine IDs remain dense and pool-consistent.
	for i := 0; i < half.NumMachines(); i++ {
		if half.Machine(i).ID != i {
			t.Fatalf("machine %d has ID %d", i, half.Machine(i).ID)
		}
	}
	for _, pid := range half.PoolIDs() {
		for _, mid := range half.Pool(pid).Machines {
			if half.Machine(mid).Pool != pid {
				t.Fatal("pool membership broken after scaling")
			}
		}
	}
	// Class mix roughly preserved: pool 0 still has multiple speeds.
	speeds := map[float64]bool{}
	for _, mid := range half.Pool(0).Machines {
		speeds[half.Machine(mid).Speed] = true
	}
	if len(speeds) < 2 {
		t.Fatalf("scaling lost machine heterogeneity: %v", speeds)
	}
	// Original platform untouched.
	if p.NumMachines() != 4*600+8*225+8*75 {
		t.Fatal("ScaleCapacity mutated the source platform")
	}
}

func TestScaleCapacityFloors(t *testing.T) {
	p, err := Build([]PoolConfig{{Classes: []MachineClass{{Count: 2, Cores: 1, MemMB: 1, Speed: 1}}}})
	if err != nil {
		t.Fatal(err)
	}
	tiny, err := p.ScaleCapacity(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if got := len(tiny.Pool(0).Machines); got != 1 {
		t.Fatalf("pool machine count = %d, want floor of 1", got)
	}
	if _, err := p.ScaleCapacity(0); err == nil {
		t.Fatal("zero factor should fail")
	}
	// Factor > 1 clamps to the existing machine list.
	same, err := p.ScaleCapacity(2.0)
	if err != nil {
		t.Fatal(err)
	}
	if same.NumMachines() != p.NumMachines() {
		t.Fatalf("upscale should clamp: %d", same.NumMachines())
	}
}
