package cluster

import "fmt"

// This file builds multi-site federations: the production NetBatch
// deployment runs "hundreds of machine clusters called pools,
// distributed globally at dozens of data centers" (§1), while the
// paper's evaluation emulates a single large site (§3.1). A federation
// replicates a per-site pool layout across N regions and attaches an
// inter-site delay matrix used by the simulator for cross-site dispatch
// delay and utilization-view ageing.

// FederationConfig parameterizes a multi-site platform.
type FederationConfig struct {
	// Regions are the site labels, one per site.
	Regions []string `json:"regions"`
	// PerSite is the pool layout replicated at every site.
	PerSite NetBatchConfig `json:"per_site"`
	// RTT is the inter-site one-way delay matrix in simulated minutes
	// (len(Regions) square, zero diagonal). Nil means zero delays.
	RTT [][]float64 `json:"rtt,omitempty"`
}

// SiteNetBatchConfig returns the per-site pool layout used by the
// multi-site scenarios: 7 pools (1 big, 3 medium, 3 small), 1500
// machines, 6000 cores — so a 3-site federation is capacity-comparable
// to the paper's single 20-pool site (~19k cores).
func SiteNetBatchConfig() NetBatchConfig {
	return NetBatchConfig{
		BigPools:        1,
		MediumPools:     3,
		SmallPools:      3,
		BigMachines:     600,
		MediumMachines:  225,
		SmallMachines:   75,
		CoresPerMachine: 4,
		Scale:           1.0,
	}
}

// PoolsPerSite returns the pool count of one site built from cfg.
func (cfg NetBatchConfig) PoolsPerSite() int {
	return cfg.BigPools + cfg.MediumPools + cfg.SmallPools
}

// MetroRTT builds a distance-proportional delay matrix for n sites laid
// out on a line: rtt[a][b] = base + step*(|a-b|-1) for a != b. With
// base 2 and step 2 a 6-site federation spans 2–12 minutes of one-way
// delay, comparable to the paper's 30-minute staleness knob (§3.2.2).
func MetroRTT(n int, base, step float64) [][]float64 {
	m := make([][]float64, n)
	for a := range m {
		m[a] = make([]float64, n)
		for b := range m[a] {
			if a == b {
				continue
			}
			dist := a - b
			if dist < 0 {
				dist = -dist
			}
			m[a][b] = base + step*float64(dist-1)
		}
	}
	return m
}

// NewFederationPlatform replicates cfg.PerSite across cfg.Regions and
// attaches cfg.RTT. Pool IDs are site-major: site s owns pools
// [s*k, (s+1)*k) where k = cfg.PerSite.PoolsPerSite().
func NewFederationPlatform(cfg FederationConfig) (*Platform, error) {
	if len(cfg.Regions) == 0 {
		return nil, fmt.Errorf("cluster: federation has no regions")
	}
	seen := make(map[string]bool, len(cfg.Regions))
	var configs []PoolConfig
	for _, region := range cfg.Regions {
		if region == "" {
			return nil, fmt.Errorf("cluster: federation region label is empty")
		}
		if seen[region] {
			return nil, fmt.Errorf("cluster: duplicate federation region %q", region)
		}
		seen[region] = true
		site, err := sitePoolConfigs(cfg.PerSite, region)
		if err != nil {
			return nil, err
		}
		configs = append(configs, site...)
	}
	plat, err := Build(configs)
	if err != nil {
		return nil, err
	}
	if cfg.RTT == nil {
		return plat, nil
	}
	return plat.WithRTT(cfg.RTT)
}

// sitePoolConfigs lays out one site's pools with the standard three
// machine classes (30% slow/8GB, 50% reference/16GB, 20% fast/32GB),
// mirroring NewNetBatchPlatform.
func sitePoolConfigs(cfg NetBatchConfig, region string) ([]PoolConfig, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("cluster: non-positive scale %v", cfg.Scale)
	}
	if cfg.PoolsPerSite() <= 0 {
		return nil, fmt.Errorf("cluster: no pools in per-site config")
	}
	var out []PoolConfig
	add := func(count, machines int, label string) {
		for i := 0; i < count; i++ {
			out = append(out, PoolConfig{
				Name:    fmt.Sprintf("%s-%s-%02d", region, label, i),
				Site:    region,
				Classes: standardClasses(machines, cfg),
			})
		}
	}
	add(cfg.BigPools, cfg.BigMachines, "big")
	add(cfg.MediumPools, cfg.MediumMachines, "med")
	add(cfg.SmallPools, cfg.SmallMachines, "small")
	return out, nil
}
