package cluster

import (
	"testing"
)

func TestBuildDerivesSites(t *testing.T) {
	plat, err := Build([]PoolConfig{
		{Name: "a0", Site: "east", Classes: []MachineClass{{Count: 2, Cores: 4, MemMB: 1024, Speed: 1}}},
		{Name: "b0", Site: "west", Classes: []MachineClass{{Count: 1, Cores: 4, MemMB: 1024, Speed: 1}}},
		{Name: "a1", Site: "east", Classes: []MachineClass{{Count: 3, Cores: 2, MemMB: 1024, Speed: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plat.NumSites() != 2 {
		t.Fatalf("NumSites = %d, want 2", plat.NumSites())
	}
	east := plat.Site(0)
	if east.Region != "east" || len(east.Pools) != 2 || east.Cores != 2*4+3*2 {
		t.Fatalf("east site = %+v", east)
	}
	if plat.SiteOf(0) != 0 || plat.SiteOf(1) != 1 || plat.SiteOf(2) != 0 {
		t.Fatal("SiteOf mapping wrong")
	}
	if plat.RTT(0, 1) != 0 || plat.MaxRTT() != 0 {
		t.Fatal("unattached RTT should be zero")
	}
}

func TestWithRTTValidation(t *testing.T) {
	plat, err := Build([]PoolConfig{
		{Site: "a", Classes: []MachineClass{{Count: 1, Cores: 1, MemMB: 1, Speed: 1}}},
		{Site: "b", Classes: []MachineClass{{Count: 1, Cores: 1, MemMB: 1, Speed: 1}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, bad := range [][][]float64{
		{{0}},             // wrong size
		{{0, 1}, {1}},     // ragged
		{{0, -1}, {1, 0}}, // negative
		{{1, 2}, {2, 0}},  // non-zero diagonal
	} {
		if _, err := plat.WithRTT(bad); err == nil {
			t.Errorf("WithRTT(%v) accepted invalid matrix", bad)
		}
	}
	good, err := plat.WithRTT([][]float64{{0, 7}, {3, 0}})
	if err != nil {
		t.Fatal(err)
	}
	if good.RTT(0, 1) != 7 || good.RTT(1, 0) != 3 || good.RTT(0, 0) != 0 {
		t.Fatal("RTT lookup wrong")
	}
	if good.MaxRTT() != 7 {
		t.Fatalf("MaxRTT = %v, want 7", good.MaxRTT())
	}
}

func TestMetroRTT(t *testing.T) {
	m := MetroRTT(3, 5, 5)
	if m[0][0] != 0 || m[0][1] != 5 || m[0][2] != 10 || m[2][0] != 10 {
		t.Fatalf("MetroRTT = %v", m)
	}
}

func TestNewFederationPlatform(t *testing.T) {
	per := SiteNetBatchConfig()
	per.Scale = 0.02
	plat, err := NewFederationPlatform(FederationConfig{
		Regions: []string{"A", "B", "C"},
		PerSite: per,
		RTT:     MetroRTT(3, 5, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	if plat.NumSites() != 3 {
		t.Fatalf("NumSites = %d", plat.NumSites())
	}
	k := per.PoolsPerSite()
	if plat.NumPools() != 3*k {
		t.Fatalf("NumPools = %d, want %d", plat.NumPools(), 3*k)
	}
	// Site-major pool IDs.
	for p := 0; p < plat.NumPools(); p++ {
		if plat.SiteOf(p) != p/k {
			t.Fatalf("pool %d at site %d, want %d", p, plat.SiteOf(p), p/k)
		}
	}
	// All sites identical in capacity.
	if plat.Site(0).Cores != plat.Site(1).Cores || plat.Site(1).Cores != plat.Site(2).Cores {
		t.Fatal("sites should have equal capacity")
	}
	if plat.RTT(0, 2) != 10 {
		t.Fatalf("RTT(0,2) = %v", plat.RTT(0, 2))
	}

	// Error paths.
	if _, err := NewFederationPlatform(FederationConfig{PerSite: per}); err == nil {
		t.Error("no regions should error")
	}
	if _, err := NewFederationPlatform(FederationConfig{
		Regions: []string{"A", "A"}, PerSite: per,
	}); err == nil {
		t.Error("duplicate region should error")
	}
	if _, err := NewFederationPlatform(FederationConfig{
		Regions: []string{"A", "B"}, PerSite: per, RTT: MetroRTT(3, 1, 1),
	}); err == nil {
		t.Error("mismatched RTT should error")
	}
}

func TestScaleCapacityPreservesSites(t *testing.T) {
	per := SiteNetBatchConfig()
	per.Scale = 0.02
	plat, err := NewFederationPlatform(FederationConfig{
		Regions: []string{"A", "B"},
		PerSite: per,
		RTT:     MetroRTT(2, 5, 5),
	})
	if err != nil {
		t.Fatal(err)
	}
	half, err := plat.ScaleCapacity(0.5)
	if err != nil {
		t.Fatal(err)
	}
	if half.NumSites() != 2 {
		t.Fatalf("scaled NumSites = %d", half.NumSites())
	}
	if half.RTT(0, 1) != 5 {
		t.Fatalf("scaled RTT(0,1) = %v, want 5", half.RTT(0, 1))
	}
	for p := 0; p < half.NumPools(); p++ {
		if half.SiteOf(p) != plat.SiteOf(p) {
			t.Fatalf("pool %d changed site after scaling", p)
		}
	}
	if half.Site(0).Cores >= plat.Site(0).Cores {
		t.Fatal("scaling should shrink site capacity")
	}
}
