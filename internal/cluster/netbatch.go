package cluster

import (
	"fmt"
	"math"
)

// NetBatchConfig parameterizes the default 20-pool platform used
// throughout the reproduction. The paper configures its simulator "to
// emulate 20 physical pools, each of which contains hundreds to tens of
// thousands of machines with varying CPU speed and memory" (§3.1).
//
// Pool size heterogeneity is load-bearing: the Table 3 observation that
// utilization-based initial scheduling raises the suspend rate depends
// on large pools attracting work and then being hit by pool-restricted
// high-priority bursts.
type NetBatchConfig struct {
	// BigPools, MediumPools, SmallPools are the pool counts per size
	// class. Their sum is the platform's pool count.
	BigPools    int `json:"big_pools"`
	MediumPools int `json:"medium_pools"`
	SmallPools  int `json:"small_pools"`
	// BigMachines, MediumMachines, SmallMachines are machines per pool
	// in each class (split across heterogeneous machine classes).
	BigMachines    int `json:"big_machines"`
	MediumMachines int `json:"medium_machines"`
	SmallMachines  int `json:"small_machines"`
	// CoresPerMachine is the core count of every machine.
	CoresPerMachine int `json:"cores_per_machine"`
	// Scale multiplies every machine count (for the scaled-down
	// year-long figure runs). 1.0 = full size. The high-load scenario
	// instead uses ScaleCapacity on the built platform.
	Scale float64 `json:"scale"`
}

// DefaultNetBatchConfig returns the platform used by the paper-scale
// experiments: 20 pools (4 big, 8 medium, 8 small), ~19k cores.
func DefaultNetBatchConfig() NetBatchConfig {
	return NetBatchConfig{
		BigPools:        4,
		MediumPools:     8,
		SmallPools:      8,
		BigMachines:     600,
		MediumMachines:  225,
		SmallMachines:   75,
		CoresPerMachine: 4,
		Scale:           1.0,
	}
}

// NewNetBatchPlatform builds the default heterogeneous 20-pool platform.
// Each pool mixes three machine classes with different speeds and memory
// ("varying CPU speed and memory", §3.1): 30% slow/8GB, 50%
// reference/16GB, 20% fast/32GB.
func NewNetBatchPlatform(cfg NetBatchConfig) (*Platform, error) {
	if cfg.Scale <= 0 {
		return nil, fmt.Errorf("cluster: non-positive scale %v", cfg.Scale)
	}
	if cfg.BigPools+cfg.MediumPools+cfg.SmallPools <= 0 {
		return nil, fmt.Errorf("cluster: no pools in config")
	}
	var configs []PoolConfig
	add := func(count, machines int, label string) {
		for i := 0; i < count; i++ {
			configs = append(configs, PoolConfig{
				Name:    fmt.Sprintf("%s-%02d", label, i),
				Site:    "site-A",
				Classes: standardClasses(machines, cfg),
			})
		}
	}
	add(cfg.BigPools, cfg.BigMachines, "big")
	add(cfg.MediumPools, cfg.MediumMachines, "med")
	add(cfg.SmallPools, cfg.SmallMachines, "small")
	return Build(configs)
}

// standardClasses splits a pool's machine count into the standard
// heterogeneous mix: 30% slow/8GB, 50% reference/16GB, 20% fast/32GB
// ("varying CPU speed and memory", §3.1).
func standardClasses(machines int, cfg NetBatchConfig) []MachineClass {
	n := int(math.Round(float64(machines) * cfg.Scale))
	if n < 3 {
		n = 3 // keep all three machine classes present
	}
	slow := n * 30 / 100
	fast := n * 20 / 100
	ref := n - slow - fast
	return []MachineClass{
		{Count: max(slow, 1), Cores: cfg.CoresPerMachine, MemMB: 8 << 10, Speed: 0.8},
		{Count: max(ref, 1), Cores: cfg.CoresPerMachine, MemMB: 16 << 10, Speed: 1.0},
		{Count: max(fast, 1), Cores: cfg.CoresPerMachine, MemMB: 32 << 10, Speed: 1.25},
	}
}

// BigPoolIDs returns the IDs of the big pools in a platform built by
// NewNetBatchPlatform with the given config (they come first).
func BigPoolIDs(cfg NetBatchConfig) []int {
	ids := make([]int, cfg.BigPools)
	for i := range ids {
		ids[i] = i
	}
	return ids
}

// ScaleCapacity returns a new platform with every pool's machine count
// multiplied by factor (at least one machine per pool is kept). The
// paper's high-load scenario "reduce[s] the number of compute cores
// available to each pool by half while keeping the submitted job trace
// unchanged" (§3.2.1); ScaleCapacity(0.5) reproduces that.
func (p *Platform) ScaleCapacity(factor float64) (*Platform, error) {
	if factor <= 0 {
		return nil, fmt.Errorf("cluster: non-positive capacity factor %v", factor)
	}
	scaled := &Platform{}
	for _, pool := range p.pools {
		newPool := Pool{ID: pool.ID, Name: pool.Name, Site: pool.Site}
		// Scale each machine class separately, keeping at least one
		// machine per class so no capability (e.g. the only
		// high-memory machines) disappears from the pool.
		type classKey struct {
			cores int
			memMB int
			speed float64
			os    string
		}
		byClass := make(map[classKey][]int)
		var order []classKey
		for _, mid := range pool.Machines {
			m := p.machines[mid]
			key := classKey{m.Cores, m.MemMB, m.Speed, m.OS}
			if _, ok := byClass[key]; !ok {
				order = append(order, key)
			}
			byClass[key] = append(byClass[key], mid)
		}
		for _, key := range order {
			ids := byClass[key]
			keep := int(math.Round(float64(len(ids)) * factor))
			if keep < 1 {
				keep = 1
			}
			if keep > len(ids) {
				keep = len(ids)
			}
			for i := 0; i < keep; i++ {
				src := p.machines[ids[i]]
				id := len(scaled.machines)
				src.ID = id
				src.Pool = newPool.ID
				scaled.machines = append(scaled.machines, src)
				newPool.Machines = append(newPool.Machines, id)
				newPool.Cores += src.Cores
			}
		}
		scaled.pools = append(scaled.pools, newPool)
	}
	scaled.buildSites()
	scaled.rtt = p.rtt
	return scaled, nil
}
