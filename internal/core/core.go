// Package core implements the paper's primary contribution: dynamic
// rescheduling strategies that restart suspended jobs — and optionally
// jobs stalled in wait queues — at alternate physical pools (§3).
//
// Five strategies are evaluated in the paper:
//
//	NoRes           — the NetBatch baseline; never reschedules.
//	ResSusUtil      — on suspension, restart at the candidate pool with
//	                  the lowest utilization; stay if the current pool
//	                  is already the least utilized (§3.2).
//	ResSusRand      — on suspension, restart at a random candidate pool
//	                  (§3.2).
//	ResSusWaitUtil  — ResSusUtil plus: a job waiting longer than the
//	                  threshold moves to the lowest-utilization pool
//	                  (§3.3).
//	ResSusWaitRand  — random variant of the combined strategy; the paper
//	                  highlights that it needs no pool statistics at all
//	                  and can be driven by the job itself (§3.3.2).
//
// Two extension policies implement the alternatives the paper discusses
// qualitatively: ResSusMigrate (Condor-style checkpoint migration that
// preserves progress at a transfer cost, §2.3/§4) and the
// keep-suspended/restart trade-off knobs used by the ablation benches.
package core

import (
	"encoding/json"
	"fmt"

	"netbatch/internal/job"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
)

// exportRNG/importRNG serialize a policy's RNG stream position for
// checkpoint/restore (the sim.Stateful contract): a restored policy
// draws the exact stream a never-interrupted one would.
func exportRNG(rng *stats.RNG) ([]byte, error) {
	return json.Marshal(rng.ExportState())
}

func importRNG(rng *stats.RNG, data []byte) error {
	var st stats.RNGState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("core: policy RNG state: %w", err)
	}
	return rng.ImportState(st)
}

// DefaultWaitThreshold is the paper's waiting-time threshold: "30
// minutes, which is about twice the expected average waiting time in
// the original system" (§3.3).
const DefaultWaitThreshold = 30.0

// Policy decides when and where to reschedule jobs. Implementations
// must be deterministic given their construction-time seed.
type Policy interface {
	// Name identifies the policy in reports, matching the paper's
	// strategy names.
	Name() string
	// OnSuspend is consulted when a job has just been suspended.
	// Returning (pool, true) restarts the job from scratch at pool;
	// returning (_, false) leaves it suspended on its host.
	OnSuspend(now float64, j *job.Job, view sched.PoolView) (int, bool)
	// WaitThreshold returns the queue-stall threshold in minutes after
	// which OnWaitTimeout is consulted, or 0 if waiting jobs are never
	// rescheduled.
	WaitThreshold() float64
	// OnWaitTimeout is consulted when a job has waited longer than the
	// threshold in one pool's queue. Returning (pool, true) moves it to
	// pool's queue; returning (_, false) leaves it (the timer re-arms).
	OnWaitTimeout(now float64, j *job.Job, view sched.PoolView) (int, bool)
}

// Migrator is implemented by policies whose suspended-job moves carry
// execution progress to the alternate pool (checkpoint migration, as in
// Condor) instead of restarting from scratch. MigrationOverhead is the
// extra transfer delay in minutes charged per move.
type Migrator interface {
	MigrationOverhead() float64
}

// NoRes is the baseline: jobs stay where NetBatch put them.
type NoRes struct{}

var _ Policy = NoRes{}

// NewNoRes returns the no-rescheduling baseline.
func NewNoRes() NoRes { return NoRes{} }

// Name implements Policy.
func (NoRes) Name() string { return "NoRes" }

// OnSuspend implements Policy: never move.
func (NoRes) OnSuspend(float64, *job.Job, sched.PoolView) (int, bool) { return 0, false }

// WaitThreshold implements Policy: waiting jobs are never rescheduled.
func (NoRes) WaitThreshold() float64 { return 0 }

// OnWaitTimeout implements Policy.
func (NoRes) OnWaitTimeout(float64, *job.Job, sched.PoolView) (int, bool) { return 0, false }

// lowestUtilAlternate returns the statically eligible candidate pool
// with the lowest utilization, excluding the job's current pool.
// ok is false when there is no alternate or every alternate is at least
// as utilized as the current pool ("ResSusUtil will simply retain the
// suspended job in its current pool", §3.2.1).
func lowestUtilAlternate(j *job.Job, view sched.PoolView) (pool int, ok bool) {
	best, bestUtil := -1, 0.0
	for _, p := range j.Spec.Candidates {
		if p == j.Pool || !view.Eligible(p, &j.Spec) {
			continue
		}
		u := view.Utilization(p)
		if best == -1 || u < bestUtil {
			best, bestUtil = p, u
		}
	}
	if best == -1 {
		return 0, false
	}
	if j.Pool >= 0 && bestUtil >= view.Utilization(j.Pool) {
		return 0, false
	}
	return best, true
}

// randomCandidate returns a uniformly random statically eligible
// candidate pool — "a randomly selected pool among all candidate pools"
// (§3.2), which deliberately does NOT exclude the current pool or
// consider load; blind selection is exactly what the paper shows can
// backfire. ok is false when the job has no eligible candidate at all.
// A pick equal to the current pool still counts as a move for suspended
// jobs (the job restarts into its own pool's queue); the simulator
// treats it as a stay for waiting jobs (nothing would change).
func randomCandidate(rng *stats.RNG, j *job.Job, view sched.PoolView) (pool int, ok bool) {
	alts := make([]int, 0, len(j.Spec.Candidates))
	for _, p := range j.Spec.Candidates {
		if view.Eligible(p, &j.Spec) {
			alts = append(alts, p)
		}
	}
	if len(alts) == 0 {
		return 0, false
	}
	return alts[rng.IntN(len(alts))], true
}

// ResSusUtil restarts suspended jobs at the least-utilized candidate
// pool.
type ResSusUtil struct{}

var _ Policy = ResSusUtil{}

// NewResSusUtil returns the utilization-guided suspended-job policy.
func NewResSusUtil() ResSusUtil { return ResSusUtil{} }

// Name implements Policy.
func (ResSusUtil) Name() string { return "ResSusUtil" }

// OnSuspend implements Policy.
func (ResSusUtil) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return lowestUtilAlternate(j, view)
}

// WaitThreshold implements Policy.
func (ResSusUtil) WaitThreshold() float64 { return 0 }

// OnWaitTimeout implements Policy.
func (ResSusUtil) OnWaitTimeout(float64, *job.Job, sched.PoolView) (int, bool) {
	return 0, false
}

// ResSusRand restarts suspended jobs at a random alternate candidate
// pool, regardless of load — the paper's cautionary tale: "dynamic
// rescheduling may backfire if the alternate pool is randomly selected"
// (§3.2.1).
type ResSusRand struct {
	rng *stats.RNG
}

var _ Policy = (*ResSusRand)(nil)

// NewResSusRand returns the random suspended-job policy with its own
// deterministic stream.
func NewResSusRand(seed uint64) *ResSusRand {
	return &ResSusRand{rng: stats.NewRNG(seed)}
}

// Name implements Policy.
func (*ResSusRand) Name() string { return "ResSusRand" }

// OnSuspend implements Policy.
func (r *ResSusRand) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return randomCandidate(r.rng, j, view)
}

// WaitThreshold implements Policy.
func (*ResSusRand) WaitThreshold() float64 { return 0 }

// ExportState captures the policy's RNG stream position.
func (r *ResSusRand) ExportState() ([]byte, error) { return exportRNG(r.rng) }

// ImportState restores a previously exported stream position.
func (r *ResSusRand) ImportState(data []byte) error { return importRNG(r.rng, data) }

// OnWaitTimeout implements Policy.
func (*ResSusRand) OnWaitTimeout(float64, *job.Job, sched.PoolView) (int, bool) {
	return 0, false
}

// ResSusWaitUtil combines suspended-job and waiting-job rescheduling,
// both guided by utilization (§3.3): "Reschedule each waiting job that
// have passed the threshold at the pool with lowest utilization."
type ResSusWaitUtil struct {
	// Threshold is the queue-stall threshold in minutes.
	Threshold float64
}

var _ Policy = ResSusWaitUtil{}

// NewResSusWaitUtil returns the combined utilization-guided policy with
// the paper's 30-minute threshold.
func NewResSusWaitUtil() ResSusWaitUtil {
	return ResSusWaitUtil{Threshold: DefaultWaitThreshold}
}

// Name implements Policy.
func (ResSusWaitUtil) Name() string { return "ResSusWaitUtil" }

// OnSuspend implements Policy.
func (ResSusWaitUtil) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return lowestUtilAlternate(j, view)
}

// WaitThreshold implements Policy.
func (p ResSusWaitUtil) WaitThreshold() float64 { return p.Threshold }

// OnWaitTimeout implements Policy.
func (ResSusWaitUtil) OnWaitTimeout(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return lowestUtilAlternate(j, view)
}

// ResSusWaitRand combines suspended-job and waiting-job rescheduling
// with random pool selection. The paper's surprise result: thanks to
// "multiple second chances", it performs close to the utilization-based
// variant while needing no pool statistics at all — each waiting job
// could implement it alone with a timer (§3.3.2).
type ResSusWaitRand struct {
	// Threshold is the queue-stall threshold in minutes.
	Threshold float64

	rng *stats.RNG
}

var _ Policy = (*ResSusWaitRand)(nil)

// NewResSusWaitRand returns the combined random policy with the paper's
// 30-minute threshold.
func NewResSusWaitRand(seed uint64) *ResSusWaitRand {
	return &ResSusWaitRand{Threshold: DefaultWaitThreshold, rng: stats.NewRNG(seed)}
}

// Name implements Policy.
func (*ResSusWaitRand) Name() string { return "ResSusWaitRand" }

// OnSuspend implements Policy.
func (r *ResSusWaitRand) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return randomCandidate(r.rng, j, view)
}

// WaitThreshold implements Policy.
func (r *ResSusWaitRand) WaitThreshold() float64 { return r.Threshold }

// ExportState captures the policy's RNG stream position.
func (r *ResSusWaitRand) ExportState() ([]byte, error) { return exportRNG(r.rng) }

// ImportState restores a previously exported stream position.
func (r *ResSusWaitRand) ImportState(data []byte) error { return importRNG(r.rng, data) }

// OnWaitTimeout implements Policy.
func (r *ResSusWaitRand) OnWaitTimeout(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return randomCandidate(r.rng, j, view)
}

// ResSusMigrate is the checkpoint-migration alternative the paper
// weighs against restart-based rescheduling (§2.3, §4): the suspended
// job moves to the least-utilized pool like ResSusUtil, but keeps its
// execution progress and instead pays Overhead minutes of transfer
// delay per move (checkpoint + image transfer).
type ResSusMigrate struct {
	// Overhead is the per-migration transfer delay in minutes.
	Overhead float64
}

var (
	_ Policy   = ResSusMigrate{}
	_ Migrator = ResSusMigrate{}
)

// NewResSusMigrate returns the migration policy with the given
// per-move transfer overhead in minutes.
func NewResSusMigrate(overhead float64) ResSusMigrate {
	return ResSusMigrate{Overhead: overhead}
}

// Name implements Policy.
func (ResSusMigrate) Name() string { return "ResSusMigrate" }

// OnSuspend implements Policy.
func (ResSusMigrate) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return lowestUtilAlternate(j, view)
}

// WaitThreshold implements Policy.
func (ResSusMigrate) WaitThreshold() float64 { return 0 }

// OnWaitTimeout implements Policy.
func (ResSusMigrate) OnWaitTimeout(float64, *job.Job, sched.PoolView) (int, bool) {
	return 0, false
}

// MigrationOverhead implements Migrator.
func (m ResSusMigrate) MigrationOverhead() float64 { return m.Overhead }
