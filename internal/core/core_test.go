package core

import (
	"testing"

	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// fakeView is a controllable PoolView.
type fakeView struct {
	utils      []float64
	queues     []int
	ineligible map[int]bool
}

var _ sched.PoolView = (*fakeView)(nil)

func (f *fakeView) NumPools() int             { return len(f.utils) }
func (f *fakeView) Utilization(p int) float64 { return f.utils[p] }
func (f *fakeView) QueueLen(p int) int        { return f.queues[p] }
func (f *fakeView) PoolCores(p int) int       { return 100 }
func (f *fakeView) Eligible(p int, _ *job.Spec) bool {
	return !f.ineligible[p]
}

func newView(utils ...float64) *fakeView {
	return &fakeView{utils: utils, queues: make([]int, len(utils)), ineligible: map[int]bool{}}
}

// suspendedJob builds a job suspended at the given pool.
func suspendedJob(t *testing.T, pool int, candidates ...int) *job.Job {
	t.Helper()
	j := job.New(job.Spec{
		ID: 7, Submit: 0, Work: 100, Cores: 1, MemMB: 1024,
		Priority: job.PriorityLow, Candidates: candidates,
	})
	if err := j.Enqueue(0, pool); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(1, 3, 1.0); err != nil {
		t.Fatal(err)
	}
	if err := j.Suspend(10); err != nil {
		t.Fatal(err)
	}
	return j
}

// waitingJob builds a job waiting at the given pool.
func waitingJob(t *testing.T, pool int, candidates ...int) *job.Job {
	t.Helper()
	j := job.New(job.Spec{
		ID: 8, Submit: 0, Work: 100, Cores: 1, MemMB: 1024,
		Priority: job.PriorityLow, Candidates: candidates,
	})
	if err := j.Enqueue(0, pool); err != nil {
		t.Fatal(err)
	}
	return j
}

func TestNoRes(t *testing.T) {
	p := NewNoRes()
	if p.Name() != "NoRes" {
		t.Fatal("name")
	}
	if p.WaitThreshold() != 0 {
		t.Fatal("NoRes must not reschedule waiting jobs")
	}
	j := suspendedJob(t, 0, 0, 1)
	if _, move := p.OnSuspend(10, j, newView(0.9, 0.0)); move {
		t.Fatal("NoRes moved a job")
	}
	if _, move := p.OnWaitTimeout(10, j, newView(0.9, 0.0)); move {
		t.Fatal("NoRes moved a waiting job")
	}
}

func TestResSusUtilPicksLowestAlternate(t *testing.T) {
	p := NewResSusUtil()
	j := suspendedJob(t, 0, 0, 1, 2, 3)
	view := newView(0.9, 0.7, 0.2, 0.5)
	pool, move := p.OnSuspend(10, j, view)
	if !move || pool != 2 {
		t.Fatalf("OnSuspend = (%d, %v), want (2, true)", pool, move)
	}
}

func TestResSusUtilRetainsWhenCurrentLowest(t *testing.T) {
	// "if all alternate pools are even more utilized than the current
	// pool, ResSusUtil will simply retain the suspended job" (§3.2.1).
	p := NewResSusUtil()
	j := suspendedJob(t, 0, 0, 1, 2)
	view := newView(0.2, 0.7, 0.9)
	if _, move := p.OnSuspend(10, j, view); move {
		t.Fatal("moved despite current pool being least utilized")
	}
	// Equal utilization also retains (not strictly lower).
	view = newView(0.5, 0.5, 0.9)
	if _, move := p.OnSuspend(10, j, view); move {
		t.Fatal("moved to an equally utilized pool")
	}
}

func TestResSusUtilSkipsIneligible(t *testing.T) {
	p := NewResSusUtil()
	j := suspendedJob(t, 0, 0, 1, 2)
	view := newView(0.9, 0.1, 0.5)
	view.ineligible[1] = true
	pool, move := p.OnSuspend(10, j, view)
	if !move || pool != 2 {
		t.Fatalf("OnSuspend = (%d, %v), want (2, true)", pool, move)
	}
}

func TestResSusUtilNoAlternate(t *testing.T) {
	p := NewResSusUtil()
	j := suspendedJob(t, 0, 0) // only candidate is the current pool
	if _, move := p.OnSuspend(10, j, newView(0.9)); move {
		t.Fatal("moved with no alternate pool")
	}
}

func TestResSusUtilNeverMovesWaiting(t *testing.T) {
	p := NewResSusUtil()
	if p.WaitThreshold() != 0 {
		t.Fatal("ResSusUtil should not watch wait queues")
	}
}

func TestResSusRandPicksAnyCandidate(t *testing.T) {
	p := NewResSusRand(3)
	view := newView(0.1, 0.9, 0.9, 0.9)
	seen := map[int]int{}
	for i := 0; i < 400; i++ {
		j := suspendedJob(t, 1, 0, 1, 2, 3)
		pool, move := p.OnSuspend(10, j, view)
		if !move {
			t.Fatal("random policy should always move when candidates exist")
		}
		seen[pool]++
	}
	// Every candidate gets picked — INCLUDING the current pool 1 (the
	// paper's random selection is "among all candidate pools") — and
	// load is ignored by design.
	if len(seen) != 4 {
		t.Fatalf("candidate coverage = %v", seen)
	}
	if seen[1] == 0 {
		t.Fatal("current pool never picked; paper's random selection does not exclude it")
	}
}

func TestResSusRandDeterministic(t *testing.T) {
	view := newView(0.5, 0.5, 0.5)
	a, b := NewResSusRand(11), NewResSusRand(11)
	for i := 0; i < 50; i++ {
		j := suspendedJob(t, 0, 0, 1, 2)
		pa, _ := a.OnSuspend(10, j, view)
		pb, _ := b.OnSuspend(10, j, view)
		if pa != pb {
			t.Fatal("same seed diverged")
		}
	}
}

func TestResSusRandNoEligibleCandidate(t *testing.T) {
	p := NewResSusRand(1)
	j := suspendedJob(t, 0, 0, 1)
	view := newView(0.9, 0.9)
	view.ineligible[0] = true
	view.ineligible[1] = true
	if _, move := p.OnSuspend(10, j, view); move {
		t.Fatal("moved with no eligible candidate")
	}
	// With only the current pool eligible, the pick is the current pool
	// (a restart-in-place, which the paper's blind selection allows).
	view.ineligible[0] = false
	pool, move := p.OnSuspend(10, j, view)
	if !move || pool != 0 {
		t.Fatalf("pick = (%d, %v), want restart-in-place (0, true)", pool, move)
	}
}

func TestResSusWaitUtilThreshold(t *testing.T) {
	p := NewResSusWaitUtil()
	if got := p.WaitThreshold(); got != DefaultWaitThreshold {
		t.Fatalf("threshold = %v, want %v (paper §3.3)", got, DefaultWaitThreshold)
	}
	custom := ResSusWaitUtil{Threshold: 60}
	if custom.WaitThreshold() != 60 {
		t.Fatal("custom threshold ignored")
	}
}

func TestResSusWaitUtilMovesBoth(t *testing.T) {
	p := NewResSusWaitUtil()
	view := newView(0.9, 0.1)
	js := suspendedJob(t, 0, 0, 1)
	if pool, move := p.OnSuspend(10, js, view); !move || pool != 1 {
		t.Fatalf("suspend decision = (%d, %v)", pool, move)
	}
	jw := waitingJob(t, 0, 0, 1)
	if pool, move := p.OnWaitTimeout(40, jw, view); !move || pool != 1 {
		t.Fatalf("wait decision = (%d, %v)", pool, move)
	}
	// Stays when current pool is least utilized.
	view = newView(0.1, 0.9)
	if _, move := p.OnWaitTimeout(40, waitingJob(t, 0, 0, 1), view); move {
		t.Fatal("moved waiting job to busier pool")
	}
}

func TestResSusWaitRandMovesBoth(t *testing.T) {
	p := NewResSusWaitRand(5)
	if p.WaitThreshold() != DefaultWaitThreshold {
		t.Fatal("threshold")
	}
	view := newView(0.9, 0.9, 0.9) // load ignored by design
	js := suspendedJob(t, 0, 0, 1, 2)
	if _, move := p.OnSuspend(10, js, view); !move {
		t.Fatal("suspended job not moved")
	}
	jw := waitingJob(t, 1, 0, 1, 2)
	if _, move := p.OnWaitTimeout(40, jw, view); !move {
		t.Fatal("waiting job not moved")
	}
	// Picks cover all candidates over repeated timeouts (a pick equal to
	// the current pool is treated as a stay by the simulator, giving the
	// job another second chance at the next timeout).
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		pool, move := p.OnWaitTimeout(40, waitingJob(t, 1, 0, 1, 2), view)
		if !move {
			t.Fatal("random wait policy should always pick")
		}
		seen[pool] = true
	}
	if len(seen) != 3 {
		t.Fatalf("candidate coverage = %v", seen)
	}
}

func TestResSusMigrate(t *testing.T) {
	p := NewResSusMigrate(15)
	if p.Name() != "ResSusMigrate" {
		t.Fatal("name")
	}
	var m Migrator = p
	if m.MigrationOverhead() != 15 {
		t.Fatal("overhead")
	}
	j := suspendedJob(t, 0, 0, 1)
	view := newView(0.9, 0.1)
	if pool, move := p.OnSuspend(10, j, view); !move || pool != 1 {
		t.Fatalf("migrate decision = (%d, %v)", pool, move)
	}
	if p.WaitThreshold() != 0 {
		t.Fatal("migrate policy should not watch wait queues")
	}
}

func TestPolicyNames(t *testing.T) {
	names := map[string]Policy{
		"NoRes":          NewNoRes(),
		"ResSusUtil":     NewResSusUtil(),
		"ResSusRand":     NewResSusRand(1),
		"ResSusWaitUtil": NewResSusWaitUtil(),
		"ResSusWaitRand": NewResSusWaitRand(1),
		"ResSusMigrate":  NewResSusMigrate(1),
	}
	for want, p := range names {
		if got := p.Name(); got != want {
			t.Fatalf("Name() = %q, want %q", got, want)
		}
	}
}
