package core

import (
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// ResSusWaitLatency is the federation-aware combined rescheduling
// strategy: like ResSusWaitUtil it reschedules both suspended and
// long-waiting jobs toward cooler candidate pools, but when the view
// carries site topology (sched.SiteView) it scores each alternate by
//
//	aged utilization + LatencyPenalty × RTT(current site, pool's site)
//
// so a cross-site move must promise enough load relief to amortize the
// migration latency the simulator will charge for it. Without site
// information it degrades exactly to ResSusWaitUtil. This implements
// the cross-site rescheduling of long-waiting jobs with an explicit
// migration latency cost that the single-site paper leaves as future
// work (§5, "network delays and other rescheduling associated
// overheads").
type ResSusWaitLatency struct {
	// Threshold is the queue-stall threshold in minutes.
	Threshold float64
	// LatencyPenalty is the utilization-equivalent cost per minute of
	// inter-site delay; 0 means sched.DefaultLatencyPenalty.
	LatencyPenalty float64
}

var _ Policy = ResSusWaitLatency{}

// NewResSusWaitLatency returns the latency-aware combined policy with
// the paper's 30-minute threshold and the default latency penalty.
func NewResSusWaitLatency() ResSusWaitLatency {
	return ResSusWaitLatency{Threshold: DefaultWaitThreshold, LatencyPenalty: sched.DefaultLatencyPenalty}
}

// Name implements Policy.
func (ResSusWaitLatency) Name() string { return "ResSusWaitLatency" }

// OnSuspend implements Policy.
func (p ResSusWaitLatency) OnSuspend(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return p.latencyAlternate(j, view)
}

// WaitThreshold implements Policy.
func (p ResSusWaitLatency) WaitThreshold() float64 { return p.Threshold }

// OnWaitTimeout implements Policy.
func (p ResSusWaitLatency) OnWaitTimeout(_ float64, j *job.Job, view sched.PoolView) (int, bool) {
	return p.latencyAlternate(j, view)
}

// latencyAlternate returns the eligible alternate candidate pool with
// the lowest latency-penalized utilization score. ok is false when no
// alternate scores strictly below the current pool's (unpenalized)
// utilization — the retain rule of §3.2.1 with distance folded in.
func (p ResSusWaitLatency) latencyAlternate(j *job.Job, view sched.PoolView) (int, bool) {
	sv, ok := view.(sched.SiteView)
	if !ok || sv.NumSites() <= 1 {
		return lowestUtilAlternate(j, view)
	}
	penalty := p.LatencyPenalty
	if penalty == 0 {
		penalty = sched.DefaultLatencyPenalty
	}
	from := sv.SiteOf(j.Pool)
	best, bestScore := -1, 0.0
	for _, c := range j.Spec.Candidates {
		if c == j.Pool || !view.Eligible(c, &j.Spec) {
			continue
		}
		score := view.Utilization(c) + penalty*sv.RTT(from, sv.SiteOf(c))
		if best == -1 || score < bestScore {
			best, bestScore = c, score
		}
	}
	if best == -1 {
		return 0, false
	}
	if j.Pool >= 0 && bestScore >= view.Utilization(j.Pool) {
		return 0, false
	}
	return best, true
}
