// Package eventq implements the future event list that drives the
// discrete-event simulator: a pooled, flattened 4-ary heap of
// timestamped events with stable FIFO ordering among simultaneous
// events and O(1) cancellation.
//
// Stability matters for reproducibility: the simulator frequently
// schedules several events at the same simulated minute (e.g. a burst of
// job submissions), and the paper's metrics are sensitive to dispatch
// order. Events that compare equal in time fire in the order they were
// scheduled.
//
// Layout. Event records live in per-queue struct-of-arrays slot storage
// recycled through a free list, and the heap itself is a flat slice of
// slot indices — no per-event allocation, no container/heap interface
// dispatch, and no `any` boxing on the hot path: the payload of every
// high-volume kind is inlined into two scalar words (A, B), with a
// reference slot (Ref) only for the rare structured payloads. Handles
// are generation-counted: freeing a slot bumps its generation, so a
// stale handle to a recycled slot is detected (Cancel returns false)
// rather than corrupting an unrelated event.
//
// Cancellation is lazy: a canceled event stays in the heap as a
// tombstone until it surfaces or until tombstones outnumber live events,
// at which point the heap is compacted in place (O(n) Floyd rebuild).
package eventq

import "sort"

// Event is a scheduled occurrence, returned by value from Pop/Peek.
// The simulator defines the meaning of Kind and the payload words;
// eventq only orders and delivers them. A and B carry the two inline
// payload words (job/site/machine indices and the like); Ref carries a
// reference payload for the few kinds that need one, nil otherwise.
type Event struct {
	// Time is the simulated time (minutes) at which the event fires.
	Time float64
	// Kind discriminates the payload for the consumer.
	Kind int
	// A and B are the inline payload words.
	A, B int64
	// Ref carries a consumer-defined reference payload; nil for the
	// high-volume kinds, which keeps the hot path allocation-free.
	Ref any
}

// Handle identifies a scheduled event for cancellation. It is a value:
// a slot index plus the slot's generation at scheduling time. The zero
// Handle identifies nothing (generations start at 1).
type Handle struct {
	slot int32
	gen  uint32
}

// Tie-break class ranks: delivered (cross-partition) events order
// before locally scheduled ones within the same phase, reproducing
// creation order (the delivering decision ran before everything the
// receiving partition scheduled at that phase or later).
const (
	orderDelivered = 1
	orderLocal     = 2
)

// minCompact is the heap size below which tombstone compaction is not
// worth triggering.
const minCompact = 64

// Queue is a future event list. The zero value is NOT ready to use;
// construct with New.
type Queue struct {
	// Slot storage (struct-of-arrays, indexed by slot number). The
	// rank breaks ties among events with equal Time: lexicographic on
	// (phase, class, seq). Plain Schedule uses (0, orderLocal, n-th
	// schedule), i.e. pure scheduling order — the historical behavior.
	// Partitioned simulations use SchedulePhased / ScheduleDelivery to
	// reproduce the creation order a single global queue would have
	// assigned across partitions (see package sim).
	time     []float64
	rank     [][3]uint64
	kind     []int32
	a, b     []int64
	ref      []any
	gen      []uint32
	canceled []bool

	// free lists recycled slots; heap is the 4-ary implicit heap of
	// slot indices.
	free []int32
	heap []int32

	seq uint64
	// live counts scheduled, non-canceled events. Canceled events stay
	// in the heap as tombstones until popped or compacted away.
	live int

	// muts counts logical mutations — schedules, deliveries, restores,
	// pops, effective cancels, resets. It never decreases, so an equal
	// reading at two instants proves the pending set did not change in
	// between (tombstone sweeps and compaction keep the pending set
	// intact and are not counted). Observers use it to cache derived
	// views (the optimistic engine's fence caches) without subscribing
	// to every mutation path.
	muts uint64

	// dropRef, when set, observes the Ref payload of every canceled
	// event dropped without firing (see SetDropHook).
	dropRef func(kind int, ref any)
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{}
}

// Live returns the number of pending (non-canceled) events.
func (q *Queue) Live() int { return q.live }

// Len returns the physical heap size: pending events plus canceled
// tombstones not yet compacted away. Len()-Live() is the tombstone
// count; compaction keeps it at most Live() (above a small minimum).
func (q *Queue) Len() int { return len(q.heap) }

// Tombstones returns the number of canceled events still occupying
// heap slots (Len minus Live) — the lazy-deletion debt the compactor
// bounds. Exposed for observability gauges.
func (q *Queue) Tombstones() int { return len(q.heap) - q.live }

// SetDropHook installs fn, called once for each canceled event whose
// non-nil Ref payload is dropped without firing (during lazy-deletion
// sweeps or compaction), so consumers can recycle payload storage.
// Events that fire transfer Ref ownership to the returned Event
// instead.
func (q *Queue) SetDropHook(fn func(kind int, ref any)) { q.dropRef = fn }

// alloc takes a slot from the free list (or grows the storage) and
// fills it. The slot's generation is preserved across reuse and only
// bumped on free, so handles to prior tenants stay invalid.
func (q *Queue) alloc(t float64, kind int, a, b int64, ref any, rank [3]uint64) int32 {
	if n := len(q.free); n > 0 {
		s := q.free[n-1]
		q.free = q.free[:n-1]
		q.time[s] = t
		q.rank[s] = rank
		q.kind[s] = int32(kind)
		q.a[s] = a
		q.b[s] = b
		q.ref[s] = ref
		q.canceled[s] = false
		return s
	}
	s := int32(len(q.time))
	q.time = append(q.time, t)
	q.rank = append(q.rank, rank)
	q.kind = append(q.kind, int32(kind))
	q.a = append(q.a, a)
	q.b = append(q.b, b)
	q.ref = append(q.ref, ref)
	q.gen = append(q.gen, 1)
	q.canceled = append(q.canceled, false)
	return s
}

// freeSlot returns a slot to the free list, invalidating outstanding
// handles by bumping the generation (which skips 0, the nil-handle
// sentinel, on wraparound).
func (q *Queue) freeSlot(s int32) {
	g := q.gen[s] + 1
	if g == 0 {
		g = 1
	}
	q.gen[s] = g
	q.ref[s] = nil // release the reference payload
	q.free = append(q.free, s)
}

// dropCanceled frees a canceled slot, routing its reference payload
// through the drop hook.
func (q *Queue) dropCanceled(s int32) {
	if q.dropRef != nil && q.ref[s] != nil {
		q.dropRef(int(q.kind[s]), q.ref[s])
	}
	q.freeSlot(s)
}

// less orders slots by (time, rank): the FEL's total firing order.
func (q *Queue) less(x, y int32) bool {
	if q.time[x] != q.time[y] {
		return q.time[x] < q.time[y]
	}
	rx, ry := &q.rank[x], &q.rank[y]
	if rx[0] != ry[0] {
		return rx[0] < ry[0]
	}
	if rx[1] != ry[1] {
		return rx[1] < ry[1]
	}
	return rx[2] < ry[2]
}

// push appends a slot to the 4-ary heap and sifts it up.
func (q *Queue) push(s int32) {
	q.heap = append(q.heap, s)
	h := q.heap
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) >> 2
		if !q.less(s, h[p]) {
			break
		}
		h[i] = h[p]
		i = p
	}
	h[i] = s
}

// down sifts the slot at heap position i down to its place.
func (q *Queue) down(i int) {
	h := q.heap
	n := len(h)
	s := h[i]
	for {
		c := i<<2 + 1
		if c >= n {
			break
		}
		m := c
		end := c + 4
		if end > n {
			end = n
		}
		for j := c + 1; j < end; j++ {
			if q.less(h[j], h[m]) {
				m = j
			}
		}
		if !q.less(h[m], s) {
			break
		}
		h[i] = h[m]
		i = m
	}
	h[i] = s
}

// popTop removes and returns the heap's minimum slot.
func (q *Queue) popTop() int32 {
	h := q.heap
	s := h[0]
	n := len(h) - 1
	h[0] = h[n]
	q.heap = h[:n]
	if n > 0 {
		q.down(0)
	}
	return s
}

// compact filters every tombstone out of the heap, frees their slots,
// and rebuilds the heap property in O(n) (Floyd). Triggered by Cancel
// when tombstones outnumber live events.
func (q *Queue) compact() {
	h := q.heap
	w := 0
	for _, s := range h {
		if q.canceled[s] {
			q.dropCanceled(s)
			continue
		}
		h[w] = s
		w++
	}
	q.heap = h[:w]
	for i := (w - 2) >> 2; i >= 0; i-- {
		q.down(i)
	}
}

// Schedule adds an event at time t. It returns a handle that can cancel
// the event. Scheduling an event in the past relative to previously
// popped events is the caller's responsibility to avoid; the queue
// itself only orders what it holds.
func (q *Queue) Schedule(t float64, kind int, a, b int64, ref any) Handle {
	return q.SchedulePhased(t, kind, a, b, ref, 0)
}

// SchedulePhased adds an event whose tie rank is (phase, local,
// scheduling order). A partitioned simulation passes the global
// decision count at the creating event's claim as phase, so that
// same-time events created before and after a decision order the way
// one global queue would have ordered them.
func (q *Queue) SchedulePhased(t float64, kind int, a, b int64, ref any, phase uint64) Handle {
	q.muts++
	q.seq++
	s := q.alloc(t, kind, a, b, ref, [3]uint64{phase, orderLocal, q.seq})
	q.push(s)
	q.live++
	return Handle{slot: s, gen: q.gen[s]}
}

// ScheduleDelivery adds a cross-partition event delivered at a round
// barrier: its tie rank (g, delivered, idx) places it by its creating
// decision g and send index, before any event the receiving partition
// scheduled at phase g or later.
func (q *Queue) ScheduleDelivery(t float64, kind int, a, b int64, ref any, g, idx uint64) Handle {
	q.muts++
	s := q.alloc(t, kind, a, b, ref, [3]uint64{g, orderDelivered, idx})
	q.push(s)
	q.live++
	return Handle{slot: s, gen: q.gen[s]}
}

// Delivery is one element of a DeliverBatch call: the event plus its
// (creating decision, send index) tie rank.
type Delivery struct {
	Time   float64
	Kind   int
	A, B   int64
	Ref    any
	G, Idx uint64
}

// DeliverBatch schedules one round's cross-partition deliveries in a
// single call, equivalent to calling ScheduleDelivery for each element.
// Callers pre-sort the batch into firing order, which both makes the
// insertion order deterministic and keeps the sift-up work minimal
// (later elements land deeper in the heap).
func (q *Queue) DeliverBatch(batch []Delivery) {
	q.muts += uint64(len(batch))
	for i := range batch {
		d := &batch[i]
		s := q.alloc(d.Time, d.Kind, d.A, d.B, d.Ref, [3]uint64{d.G, orderDelivered, d.Idx})
		q.push(s)
	}
	q.live += len(batch)
}

// Cancel removes the event identified by h from the queue. Canceling an
// already-fired, already-canceled, or otherwise stale handle is a no-op
// returning false: the generation check detects handles whose slot has
// been freed (and possibly recycled) since they were issued.
func (q *Queue) Cancel(h Handle) bool {
	if h.gen == 0 || int(h.slot) >= len(q.gen) || q.gen[h.slot] != h.gen || q.canceled[h.slot] {
		return false
	}
	q.muts++
	q.canceled[h.slot] = true
	q.live--
	if tomb := len(q.heap) - q.live; tomb > q.live && len(q.heap) >= minCompact {
		q.compact()
	}
	return true
}

// Pop removes and returns the earliest pending event. ok is false when
// the queue is empty. Among events with equal time, the one scheduled
// first is returned first. The event's slot is recycled immediately;
// outstanding handles to it become stale.
func (q *Queue) Pop() (Event, bool) {
	for len(q.heap) > 0 {
		s := q.popTop()
		if q.canceled[s] {
			q.dropCanceled(s)
			continue
		}
		ev := Event{Time: q.time[s], Kind: int(q.kind[s]), A: q.a[s], B: q.b[s], Ref: q.ref[s]}
		q.muts++
		q.freeSlot(s)
		q.live--
		return ev, true
	}
	return Event{}, false
}

// Peek returns the earliest pending event without removing it. ok is
// false when the queue is empty.
func (q *Queue) Peek() (Event, bool) {
	for len(q.heap) > 0 {
		s := q.heap[0]
		if q.canceled[s] {
			q.popTop()
			q.dropCanceled(s)
			continue
		}
		return Event{Time: q.time[s], Kind: int(q.kind[s]), A: q.a[s], B: q.b[s], Ref: q.ref[s]}, true
	}
	return Event{}, false
}

// NextTime returns the timestamp of the earliest pending event. ok is
// false when the queue is empty. Partitioned simulations use it to
// publish per-partition lower bounds (lookahead fences) without
// exposing the event itself.
func (q *Queue) NextTime() (t float64, ok bool) {
	for len(q.heap) > 0 {
		s := q.heap[0]
		if q.canceled[s] {
			q.popTop()
			q.dropCanceled(s)
			continue
		}
		return q.time[s], true
	}
	return 0, false
}

// SavedEvent is a pending event exported for checkpointing: the
// schedulable payload plus the exact tie rank that positions the event
// among simultaneous ones. Restoring a SavedEvent reproduces the
// event's firing position bit-identically.
type SavedEvent struct {
	Time float64
	Kind int
	A, B int64
	Ref  any
	Rank [3]uint64
}

// Export returns every pending (non-canceled) event in firing order.
// The queue is not modified; canceled events are omitted (they would
// never fire).
func (q *Queue) Export() []SavedEvent {
	out := make([]SavedEvent, 0, q.live)
	for _, s := range q.heap {
		if q.canceled[s] {
			continue
		}
		out = append(out, SavedEvent{
			Time: q.time[s], Kind: int(q.kind[s]),
			A: q.a[s], B: q.b[s], Ref: q.ref[s],
			Rank: q.rank[s],
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		for k := 0; k < 2; k++ {
			if out[i].Rank[k] != out[j].Rank[k] {
				return out[i].Rank[k] < out[j].Rank[k]
			}
		}
		return out[i].Rank[2] < out[j].Rank[2]
	})
	return out
}

// Restore reinstates an exported event with its exact tie rank, so the
// restored queue fires it in the same position relative to both
// existing events and events scheduled later. Unlike Schedule it does
// not advance the scheduling-order counter; pair it with SetSeq when
// rebuilding a queue from a checkpoint.
func (q *Queue) Restore(sev SavedEvent) Handle {
	q.muts++
	s := q.alloc(sev.Time, sev.Kind, sev.A, sev.B, sev.Ref, sev.Rank)
	q.push(s)
	q.live++
	return Handle{slot: s, gen: q.gen[s]}
}

// Muts returns the logical-mutation counter (see the field comment):
// monotone, equal readings bracket an unchanged pending set.
func (q *Queue) Muts() uint64 { return q.muts }

// Seq returns the scheduling-order counter: the number of SchedulePhased
// calls so far. Checkpoints save it so a restored queue assigns future
// events the same tie ranks a never-interrupted queue would.
func (q *Queue) Seq() uint64 { return q.seq }

// SetSeq overwrites the scheduling-order counter (see Seq).
func (q *Queue) SetSeq(n uint64) { q.seq = n }

// Cap returns the allocated slot count — the high-water mark of
// concurrently pending events. Tests use it to assert that slot reuse
// keeps storage bounded under churn.
func (q *Queue) Cap() int { return len(q.time) }

// Reset empties the queue in place: every pending event — live or
// tombstoned — is dropped, with reference payloads routed through the
// drop hook exactly as cancellation does, so kind-level recyclers see
// them. All slots return to the free list with bumped generations, so
// every outstanding Handle goes stale. The scheduling-order counter is
// preserved; callers that rebuild the queue from a snapshot overwrite
// it with SetSeq.
//
// This is the undo primitive for speculative execution: rolling a
// shard back discards its future event list wholesale and re-creates
// it from saved state, which (together with the fact that only
// globally-serialized decisions send cross-shard) stands in for
// per-message anti-messages.
func (q *Queue) Reset() {
	q.muts++
	for _, s := range q.heap {
		q.dropCanceled(s)
	}
	q.heap = q.heap[:0]
	q.live = 0
}
