// Package eventq implements the future event list that drives the
// discrete-event simulator: a binary heap of timestamped events with
// stable FIFO ordering among simultaneous events and O(log n)
// cancellation.
//
// Stability matters for reproducibility: the simulator frequently
// schedules several events at the same simulated minute (e.g. a burst of
// job submissions), and the paper's metrics are sensitive to dispatch
// order. Events that compare equal in time fire in the order they were
// scheduled.
package eventq

import (
	"container/heap"
	"fmt"
)

// Event is a scheduled occurrence. The simulator defines the meaning of
// Kind and Payload; eventq only orders and delivers them.
type Event struct {
	// Time is the simulated time (minutes) at which the event fires.
	Time float64
	// Kind discriminates the payload for the consumer.
	Kind int
	// Payload carries consumer-defined data.
	Payload any

	seq      uint64
	index    int
	canceled bool
}

// Handle identifies a scheduled event for cancellation.
type Handle struct{ ev *Event }

// Queue is a future event list. The zero value is NOT ready to use;
// construct with New.
type Queue struct {
	h   eventHeap
	seq uint64
	// live counts scheduled, non-canceled events. Canceled events stay
	// in the heap until popped (lazy deletion keeps cancellation O(1)).
	live int
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{}
}

// Len returns the number of pending (non-canceled) events.
func (q *Queue) Len() int { return q.live }

// Schedule adds an event at time t. It returns a handle that can cancel
// the event. Scheduling an event in the past relative to previously
// popped events is the caller's responsibility to avoid; the queue
// itself only orders what it holds.
func (q *Queue) Schedule(t float64, kind int, payload any) Handle {
	q.seq++
	ev := &Event{Time: t, Kind: kind, Payload: payload, seq: q.seq}
	heap.Push(&q.h, ev)
	q.live++
	return Handle{ev: ev}
}

// Cancel removes the event identified by h from the queue. Canceling an
// already-fired or already-canceled event is a no-op returning false.
func (q *Queue) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.canceled || h.ev.index < 0 {
		return false
	}
	h.ev.canceled = true
	q.live--
	return true
}

// Pop removes and returns the earliest pending event. It returns nil
// when the queue is empty. Among events with equal time, the one
// scheduled first is returned first.
func (q *Queue) Pop() *Event {
	for q.h.Len() > 0 {
		ev, ok := heap.Pop(&q.h).(*Event)
		if !ok {
			panic(fmt.Sprintf("eventq: heap contained %T", ev))
		}
		if ev.canceled {
			continue
		}
		q.live--
		return ev
	}
	return nil
}

// Peek returns the earliest pending event without removing it, or nil if
// the queue is empty.
func (q *Queue) Peek() *Event {
	// Drop canceled events off the top so Peek is accurate.
	for q.h.Len() > 0 {
		if top := q.h[0]; top.canceled {
			heap.Pop(&q.h)
			continue
		}
		return q.h[0]
	}
	return nil
}

type eventHeap []*Event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	return h[i].seq < h[j].seq
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("eventq: pushed %T, want *Event", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil // avoid retaining the event
	ev.index = -1
	*h = old[:n-1]
	return ev
}
