// Package eventq implements the future event list that drives the
// discrete-event simulator: a binary heap of timestamped events with
// stable FIFO ordering among simultaneous events and O(log n)
// cancellation.
//
// Stability matters for reproducibility: the simulator frequently
// schedules several events at the same simulated minute (e.g. a burst of
// job submissions), and the paper's metrics are sensitive to dispatch
// order. Events that compare equal in time fire in the order they were
// scheduled.
package eventq

import (
	"container/heap"
	"fmt"
	"sort"
)

// Event is a scheduled occurrence. The simulator defines the meaning of
// Kind and Payload; eventq only orders and delivers them.
type Event struct {
	// Time is the simulated time (minutes) at which the event fires.
	Time float64
	// Kind discriminates the payload for the consumer.
	Kind int
	// Payload carries consumer-defined data.
	Payload any

	// rank breaks ties among events with equal Time: lexicographic on
	// (phase, class, seq). Plain Schedule uses (0, orderLocal, n-th
	// schedule), i.e. pure scheduling order — the historical behavior.
	// Partitioned simulations use SchedulePhased / ScheduleDelivery to
	// reproduce the creation order a single global queue would have
	// assigned across partitions (see package sim).
	rank     [3]uint64
	index    int
	canceled bool
}

// Handle identifies a scheduled event for cancellation.
type Handle struct{ ev *Event }

// Tie-break class ranks: delivered (cross-partition) events order
// before locally scheduled ones within the same phase, reproducing
// creation order (the delivering decision ran before everything the
// receiving partition scheduled at that phase or later).
const (
	orderDelivered = 1
	orderLocal     = 2
)

// Queue is a future event list. The zero value is NOT ready to use;
// construct with New.
type Queue struct {
	h   eventHeap
	seq uint64
	// live counts scheduled, non-canceled events. Canceled events stay
	// in the heap until popped (lazy deletion keeps cancellation O(1)).
	live int
}

// New returns an empty queue.
func New() *Queue {
	return &Queue{}
}

// Len returns the number of pending (non-canceled) events.
func (q *Queue) Len() int { return q.live }

// Schedule adds an event at time t. It returns a handle that can cancel
// the event. Scheduling an event in the past relative to previously
// popped events is the caller's responsibility to avoid; the queue
// itself only orders what it holds.
func (q *Queue) Schedule(t float64, kind int, payload any) Handle {
	return q.SchedulePhased(t, kind, payload, 0)
}

// SchedulePhased adds an event whose tie rank is (phase, local,
// scheduling order). A partitioned simulation passes the global
// decision count at the creating event's claim as phase, so that
// same-time events created before and after a decision order the way
// one global queue would have ordered them.
func (q *Queue) SchedulePhased(t float64, kind int, payload any, phase uint64) Handle {
	q.seq++
	ev := &Event{Time: t, Kind: kind, Payload: payload, rank: [3]uint64{phase, orderLocal, q.seq}}
	heap.Push(&q.h, ev)
	q.live++
	return Handle{ev: ev}
}

// ScheduleDelivery adds a cross-partition event delivered at a round
// barrier: its tie rank (g, delivered, idx) places it by its creating
// decision g and send index, before any event the receiving partition
// scheduled at phase g or later.
func (q *Queue) ScheduleDelivery(t float64, kind int, payload any, g, idx uint64) Handle {
	ev := &Event{Time: t, Kind: kind, Payload: payload, rank: [3]uint64{g, orderDelivered, idx}}
	heap.Push(&q.h, ev)
	q.live++
	return Handle{ev: ev}
}

// Cancel removes the event identified by h from the queue. Canceling an
// already-fired or already-canceled event is a no-op returning false.
func (q *Queue) Cancel(h Handle) bool {
	if h.ev == nil || h.ev.canceled || h.ev.index < 0 {
		return false
	}
	h.ev.canceled = true
	q.live--
	return true
}

// Pop removes and returns the earliest pending event. It returns nil
// when the queue is empty. Among events with equal time, the one
// scheduled first is returned first.
func (q *Queue) Pop() *Event {
	for q.h.Len() > 0 {
		ev, ok := heap.Pop(&q.h).(*Event)
		if !ok {
			panic(fmt.Sprintf("eventq: heap contained %T", ev))
		}
		if ev.canceled {
			continue
		}
		q.live--
		return ev
	}
	return nil
}

// SavedEvent is a pending event exported for checkpointing: the
// schedulable triple plus the exact tie rank that positions the event
// among simultaneous ones. Restoring a SavedEvent reproduces the
// event's firing position bit-identically.
type SavedEvent struct {
	Time    float64
	Kind    int
	Payload any
	Rank    [3]uint64
}

// Export returns every pending (non-canceled) event in firing order.
// The queue is not modified; canceled events are omitted (they would
// never fire).
func (q *Queue) Export() []SavedEvent {
	out := make([]SavedEvent, 0, q.live)
	for _, ev := range q.h {
		if ev.canceled {
			continue
		}
		out = append(out, SavedEvent{Time: ev.Time, Kind: ev.Kind, Payload: ev.Payload, Rank: ev.rank})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		for k := 0; k < 2; k++ {
			if out[i].Rank[k] != out[j].Rank[k] {
				return out[i].Rank[k] < out[j].Rank[k]
			}
		}
		return out[i].Rank[2] < out[j].Rank[2]
	})
	return out
}

// Restore reinstates an exported event with its exact tie rank, so the
// restored queue fires it in the same position relative to both
// existing events and events scheduled later. Unlike Schedule it does
// not advance the scheduling-order counter; pair it with SetSeq when
// rebuilding a queue from a checkpoint.
func (q *Queue) Restore(sev SavedEvent) Handle {
	ev := &Event{Time: sev.Time, Kind: sev.Kind, Payload: sev.Payload, rank: sev.Rank}
	heap.Push(&q.h, ev)
	q.live++
	return Handle{ev: ev}
}

// Seq returns the scheduling-order counter: the number of SchedulePhased
// calls so far. Checkpoints save it so a restored queue assigns future
// events the same tie ranks a never-interrupted queue would.
func (q *Queue) Seq() uint64 { return q.seq }

// SetSeq overwrites the scheduling-order counter (see Seq).
func (q *Queue) SetSeq(n uint64) { q.seq = n }

// NextTime returns the timestamp of the earliest pending event. ok is
// false when the queue is empty. Partitioned simulations use it to
// publish per-partition lower bounds (lookahead fences) without
// exposing the event itself.
func (q *Queue) NextTime() (t float64, ok bool) {
	ev := q.Peek()
	if ev == nil {
		return 0, false
	}
	return ev.Time, true
}

// Peek returns the earliest pending event without removing it, or nil if
// the queue is empty.
func (q *Queue) Peek() *Event {
	// Drop canceled events off the top so Peek is accurate.
	for q.h.Len() > 0 {
		if top := q.h[0]; top.canceled {
			heap.Pop(&q.h)
			continue
		}
		return q.h[0]
	}
	return nil
}

type eventHeap []*Event

var _ heap.Interface = (*eventHeap)(nil)

func (h eventHeap) Len() int { return len(h) }

func (h eventHeap) Less(i, j int) bool {
	if h[i].Time != h[j].Time {
		return h[i].Time < h[j].Time
	}
	for k := 0; k < 2; k++ {
		if h[i].rank[k] != h[j].rank[k] {
			return h[i].rank[k] < h[j].rank[k]
		}
	}
	return h[i].rank[2] < h[j].rank[2]
}

func (h eventHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *eventHeap) Push(x any) {
	ev, ok := x.(*Event)
	if !ok {
		panic(fmt.Sprintf("eventq: pushed %T, want *Event", x))
	}
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil // avoid retaining the event
	ev.index = -1
	*h = old[:n-1]
	return ev
}
