package eventq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should return nil")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should return nil")
	}
}

func TestTimeOrdering(t *testing.T) {
	q := New()
	q.Schedule(3, 1, "c")
	q.Schedule(1, 1, "a")
	q.Schedule(2, 1, "b")
	var got []string
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		got = append(got, ev.Payload.(string))
	}
	if want := "abc"; got[0]+got[1]+got[2] != want {
		t.Fatalf("order = %v", got)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Schedule(5, 0, i)
	}
	for i := 0; i < 100; i++ {
		ev := q.Pop()
		if ev == nil {
			t.Fatal("queue exhausted early")
		}
		if ev.Payload.(int) != i {
			t.Fatalf("equal-time events out of FIFO order: got %v at pos %d", ev.Payload, i)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	h1 := q.Schedule(1, 0, "a")
	q.Schedule(2, 0, "b")
	if !q.Cancel(h1) {
		t.Fatal("Cancel returned false for live event")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancel = %d", q.Len())
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel should return false")
	}
	ev := q.Pop()
	if ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Pop after cancel = %+v", ev)
	}
	if q.Pop() != nil {
		t.Fatal("canceled event leaked out")
	}
}

func TestCancelAfterPop(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, nil)
	if q.Pop() == nil {
		t.Fatal("expected event")
	}
	if q.Cancel(h) {
		t.Fatal("Cancel after Pop should return false")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestCancelZeroHandle(t *testing.T) {
	q := New()
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle should be a no-op")
	}
}

func TestPeekSkipsCanceled(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, "a")
	q.Schedule(2, 0, "b")
	q.Cancel(h)
	if ev := q.Peek(); ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Peek = %+v, want b", ev)
	}
	// Peek must not consume.
	if ev := q.Pop(); ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Pop after Peek = %+v, want b", ev)
	}
}

func TestKindAndTimePreserved(t *testing.T) {
	q := New()
	q.Schedule(7.25, 42, "x")
	ev := q.Pop()
	if ev.Time != 7.25 || ev.Kind != 42 {
		t.Fatalf("event fields = %+v", ev)
	}
}

func TestPopDrainsMonotonically(t *testing.T) {
	// Property: popping a randomly scheduled queue yields nondecreasing
	// times, and every live event is delivered exactly once.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed))
		n := int(nRaw)%200 + 1
		q := New()
		times := make([]float64, 0, n)
		handles := make([]Handle, 0, n)
		for i := 0; i < n; i++ {
			tm := r.Float64() * 1000
			handles = append(handles, q.Schedule(tm, 0, tm))
			times = append(times, tm)
		}
		// Cancel a random subset.
		kept := make([]float64, 0, n)
		for i, h := range handles {
			if r.Float64() < 0.3 {
				q.Cancel(h)
			} else {
				kept = append(kept, times[i])
			}
		}
		if q.Len() != len(kept) {
			return false
		}
		got := make([]float64, 0, len(kept))
		prev := -1.0
		for ev := q.Pop(); ev != nil; ev = q.Pop() {
			if ev.Time < prev {
				return false
			}
			prev = ev.Time
			got = append(got, ev.Payload.(float64))
		}
		if len(got) != len(kept) {
			return false
		}
		sort.Float64s(kept)
		for i := range kept {
			if got[i] != kept[i] {
				return false
			}
		}
		return q.Len() == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	q := New()
	q.Schedule(10, 0, 10.0)
	ev := q.Pop()
	if ev.Time != 10 {
		t.Fatal("wrong first event")
	}
	// Schedule later events after popping; simulator does this constantly.
	q.Schedule(20, 0, 20.0)
	q.Schedule(15, 0, 15.0)
	if got := q.Pop().Time; got != 15 {
		t.Fatalf("got %v, want 15", got)
	}
	if got := q.Pop().Time; got != 20 {
		t.Fatalf("got %v, want 20", got)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	q := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(r.Float64()*1e6, 0, nil)
		if q.Len() > 1024 {
			for j := 0; j < 512; j++ {
				q.Pop()
			}
		}
	}
}

func BenchmarkCancel(b *testing.B) {
	q := New()
	handles := make([]Handle, b.N)
	for i := 0; i < b.N; i++ {
		handles[i] = q.Schedule(float64(i), 0, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Cancel(handles[i])
	}
}
