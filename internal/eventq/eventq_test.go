package eventq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Live() != 0 || q.Len() != 0 {
		t.Fatalf("Live = %d, Len = %d", q.Live(), q.Len())
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("Pop on empty queue should return ok=false")
	}
	if _, ok := q.Peek(); ok {
		t.Fatal("Peek on empty queue should return ok=false")
	}
}

func TestTimeOrdering(t *testing.T) {
	q := New()
	q.Schedule(3, 1, 0, 0, "c")
	q.Schedule(1, 1, 0, 0, "a")
	q.Schedule(2, 1, 0, 0, "b")
	var got string
	for ev, ok := q.Pop(); ok; ev, ok = q.Pop() {
		got += ev.Ref.(string)
	}
	if got != "abc" {
		t.Fatalf("order = %q", got)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Schedule(5, 0, int64(i), 0, nil)
	}
	for i := 0; i < 100; i++ {
		ev, ok := q.Pop()
		if !ok {
			t.Fatal("queue exhausted early")
		}
		if ev.A != int64(i) {
			t.Fatalf("equal-time events out of FIFO order: got %v at pos %d", ev.A, i)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	h1 := q.Schedule(1, 0, 0, 0, "a")
	q.Schedule(2, 0, 0, 0, "b")
	if !q.Cancel(h1) {
		t.Fatal("Cancel returned false for live event")
	}
	if q.Live() != 1 {
		t.Fatalf("Live after cancel = %d", q.Live())
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel should return false")
	}
	ev, ok := q.Pop()
	if !ok || ev.Ref.(string) != "b" {
		t.Fatalf("Pop after cancel = %+v, %v", ev, ok)
	}
	if _, ok := q.Pop(); ok {
		t.Fatal("canceled event leaked out")
	}
}

func TestCancelAfterPop(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, 0, 0, nil)
	if _, ok := q.Pop(); !ok {
		t.Fatal("expected event")
	}
	if q.Cancel(h) {
		t.Fatal("Cancel after Pop should return false")
	}
	if q.Live() != 0 {
		t.Fatalf("Live = %d", q.Live())
	}
}

func TestCancelZeroHandle(t *testing.T) {
	q := New()
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle should be a no-op")
	}
}

func TestStaleHandleAfterSlotReuse(t *testing.T) {
	// A handle to a popped event must stay invalid even after its slot
	// is recycled for a new event: the generation check detects it.
	q := New()
	h := q.Schedule(1, 0, 0, 0, nil)
	if _, ok := q.Pop(); !ok {
		t.Fatal("expected event")
	}
	// The freed slot is recycled for the next schedule.
	h2 := q.Schedule(2, 0, 0, 0, nil)
	if q.Cap() != 1 {
		t.Fatalf("Cap = %d, want 1 (slot reuse)", q.Cap())
	}
	if q.Cancel(h) {
		t.Fatal("stale handle canceled the slot's new tenant")
	}
	if q.Live() != 1 {
		t.Fatalf("Live = %d after stale cancel", q.Live())
	}
	if !q.Cancel(h2) {
		t.Fatal("fresh handle to recycled slot should cancel")
	}
}

func TestPeekSkipsCanceled(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, 0, 0, "a")
	q.Schedule(2, 0, 0, 0, "b")
	q.Cancel(h)
	if ev, ok := q.Peek(); !ok || ev.Ref.(string) != "b" {
		t.Fatalf("Peek = %+v, %v, want b", ev, ok)
	}
	// Peek must not consume.
	if ev, ok := q.Pop(); !ok || ev.Ref.(string) != "b" {
		t.Fatalf("Pop after Peek = %+v, %v, want b", ev, ok)
	}
}

func TestKindAndTimePreserved(t *testing.T) {
	q := New()
	q.Schedule(7.25, 42, 3, 9, "x")
	ev, ok := q.Pop()
	if !ok || ev.Time != 7.25 || ev.Kind != 42 || ev.A != 3 || ev.B != 9 || ev.Ref.(string) != "x" {
		t.Fatalf("event fields = %+v, %v", ev, ok)
	}
}

func TestCompaction(t *testing.T) {
	// Canceling more than half the queue must shed the tombstones:
	// Len() (physical size) collapses toward Live().
	q := New()
	handles := make([]Handle, 0, 4*minCompact)
	for i := 0; i < 4*minCompact; i++ {
		handles = append(handles, q.Schedule(float64(i), 0, int64(i), 0, nil))
	}
	// Cancel even slots: tombstones never exceed live, no compaction yet.
	for i := 0; i < len(handles); i += 2 {
		q.Cancel(handles[i])
	}
	live := len(handles) / 2
	if q.Live() != live {
		t.Fatalf("Live = %d, want %d", q.Live(), live)
	}
	// One more cancel tips tombstones over live and triggers compaction.
	q.Cancel(handles[1])
	if q.Len() != q.Live() {
		t.Fatalf("after compaction Len = %d, want Live = %d", q.Len(), q.Live())
	}
	// Order is preserved: remaining odd slots (except 1) pop in order.
	prev := -1.0
	n := 0
	for ev, ok := q.Pop(); ok; ev, ok = q.Pop() {
		if ev.Time <= prev {
			t.Fatalf("pop order broken after compaction: %v after %v", ev.Time, prev)
		}
		prev = ev.Time
		n++
	}
	if n != live-1 {
		t.Fatalf("drained %d events, want %d", n, live-1)
	}
}

func TestDropHookFiresOnDroppedRefs(t *testing.T) {
	q := New()
	var dropped []any
	q.SetDropHook(func(kind int, ref any) { dropped = append(dropped, ref) })
	h1 := q.Schedule(1, 7, 0, 0, "dropme")
	h2 := q.Schedule(2, 7, 0, 0, "fired")
	q.Schedule(3, 7, 0, 0, nil)
	q.Cancel(h1)
	_ = h2
	// Draining sweeps the canceled event: hook sees its ref; the fired
	// ones transfer ownership to the popped Event.
	for _, ok := q.Pop(); ok; _, ok = q.Pop() {
	}
	if len(dropped) != 1 || dropped[0].(string) != "dropme" {
		t.Fatalf("drop hook saw %v, want [dropme]", dropped)
	}
}

func TestPopDrainsMonotonically(t *testing.T) {
	// Property: popping a randomly scheduled queue yields nondecreasing
	// times, and every live event is delivered exactly once.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed))
		n := int(nRaw)%200 + 1
		q := New()
		times := make([]float64, 0, n)
		handles := make([]Handle, 0, n)
		for i := 0; i < n; i++ {
			tm := r.Float64() * 1000
			handles = append(handles, q.Schedule(tm, 0, int64(i), 0, tm))
			times = append(times, tm)
		}
		// Cancel a random subset.
		kept := make([]float64, 0, n)
		for i, h := range handles {
			if r.Float64() < 0.3 {
				q.Cancel(h)
			} else {
				kept = append(kept, times[i])
			}
		}
		if q.Live() != len(kept) {
			return false
		}
		got := make([]float64, 0, len(kept))
		prev := -1.0
		for ev, ok := q.Pop(); ok; ev, ok = q.Pop() {
			if ev.Time < prev {
				return false
			}
			prev = ev.Time
			got = append(got, ev.Ref.(float64))
		}
		if len(got) != len(kept) {
			return false
		}
		sort.Float64s(kept)
		for i := range kept {
			if got[i] != kept[i] {
				return false
			}
		}
		return q.Live() == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	q := New()
	q.Schedule(10, 0, 0, 0, nil)
	ev, _ := q.Pop()
	if ev.Time != 10 {
		t.Fatal("wrong first event")
	}
	// Schedule later events after popping; simulator does this constantly.
	q.Schedule(20, 0, 0, 0, nil)
	q.Schedule(15, 0, 0, 0, nil)
	if ev, _ := q.Pop(); ev.Time != 15 {
		t.Fatalf("got %v, want 15", ev.Time)
	}
	if ev, _ := q.Pop(); ev.Time != 20 {
		t.Fatalf("got %v, want 20", ev.Time)
	}
}

// TestPoolReuseStress storms the queue with randomized schedule /
// cancel / pop bursts and asserts the generation contract throughout:
// a handle cancels successfully exactly once, handles of popped or
// canceled events stay dead forever (even after their slot is recycled
// by later traffic), and the live count matches an exact model. Run
// under -race in CI; the point here is the slot-recycling invariants.
func TestPoolReuseStress(t *testing.T) {
	r := rand.New(rand.NewPCG(0xfeed, 0xbeef))
	q := New()
	type tracked struct {
		h    Handle
		dead bool // popped or canceled
	}
	var evs []tracked
	byA := make(map[int64]int) // event A-word -> index in evs
	live := 0
	next := int64(0)
	for round := 0; round < 2000; round++ {
		switch r.IntN(3) {
		case 0: // schedule burst
			for n := r.IntN(8); n >= 0; n-- {
				h := q.Schedule(float64(r.IntN(64)), 1, next, 0, nil)
				byA[next] = len(evs)
				evs = append(evs, tracked{h: h})
				next++
				live++
			}
		case 1: // cancel storm, including repeats and stale handles
			for n := r.IntN(8); n >= 0 && len(evs) > 0; n-- {
				i := r.IntN(len(evs))
				want := !evs[i].dead
				if got := q.Cancel(evs[i].h); got != want {
					t.Fatalf("round %d: Cancel(#%d) = %v, want %v", round, i, got, want)
				}
				if want {
					evs[i].dead = true
					live--
				}
			}
		case 2: // pop burst
			for n := r.IntN(8); n >= 0; n-- {
				ev, ok := q.Pop()
				if !ok {
					if live != 0 {
						t.Fatalf("round %d: Pop empty with %d live", round, live)
					}
					break
				}
				i := byA[ev.A]
				if evs[i].dead {
					t.Fatalf("round %d: popped dead event %d", round, ev.A)
				}
				evs[i].dead = true
				live--
				if q.Cancel(evs[i].h) {
					t.Fatalf("round %d: canceled already-popped event %d", round, ev.A)
				}
			}
		}
		if q.Live() != live {
			t.Fatalf("round %d: Live = %d, want %d", round, q.Live(), live)
		}
		if q.Len() > 2*q.Live()+minCompact {
			t.Fatalf("round %d: tombstones unbounded: Len = %d, Live = %d", round, q.Len(), q.Live())
		}
	}
	// Slot storage is bounded by peak concurrency, not total traffic.
	if q.Cap() >= int(next) {
		t.Fatalf("no slot reuse: Cap = %d after %d events", q.Cap(), next)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	q := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(r.Float64()*1e6, 0, 0, 0, nil)
		if q.Live() > 1024 {
			for j := 0; j < 512; j++ {
				q.Pop()
			}
		}
	}
}

func BenchmarkCancel(b *testing.B) {
	q := New()
	handles := make([]Handle, b.N)
	for i := 0; i < b.N; i++ {
		handles[i] = q.Schedule(float64(i), 0, 0, 0, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Cancel(handles[i])
	}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	a, b := New(), New()
	var cancelA, cancelB []Handle
	for i := 0; i < 200; i++ {
		tm := float64(r.IntN(20)) // force plenty of ties
		ha := a.Schedule(tm, i%5, int64(i), 0, nil)
		hb := b.Schedule(tm, i%5, int64(i), 0, nil)
		if i%7 == 0 {
			cancelA = append(cancelA, ha)
			cancelB = append(cancelB, hb)
		}
	}
	for i := range cancelA {
		a.Cancel(cancelA[i])
		b.Cancel(cancelB[i])
	}
	// Rebuild a fresh queue from a's export; b is the straight control.
	saved := a.Export()
	q := New()
	for _, sev := range saved {
		q.Restore(sev)
	}
	q.SetSeq(a.Seq())
	if q.Live() != b.Live() {
		t.Fatalf("restored Live %d != straight %d", q.Live(), b.Live())
	}
	// Future scheduling must interleave with restored events exactly as
	// it would have with the originals.
	for i := 0; i < 50; i++ {
		tm := float64(r.IntN(20))
		q.Schedule(tm, 9, int64(1000+i), 0, nil)
		b.Schedule(tm, 9, int64(1000+i), 0, nil)
	}
	for {
		x, okx := q.Pop()
		y, oky := b.Pop()
		if !okx || !oky {
			if okx != oky {
				t.Fatal("queues drained at different lengths")
			}
			break
		}
		if x.Time != y.Time || x.Kind != y.Kind || x.A != y.A {
			t.Fatalf("restored pop (%v,%d,%v) != straight (%v,%d,%v)",
				x.Time, x.Kind, x.A, y.Time, y.Kind, y.A)
		}
	}
}

func TestExportIsSortedAndPure(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Schedule(float64(100-i%10), 0, int64(i), 0, nil)
	}
	before := q.Live()
	saved := q.Export()
	if q.Live() != before {
		t.Fatal("Export modified the queue")
	}
	if len(saved) != before {
		t.Fatalf("Export returned %d events for %d pending", len(saved), before)
	}
	for i := 1; i < len(saved); i++ {
		if saved[i].Time < saved[i-1].Time {
			t.Fatal("Export not in firing order")
		}
	}
}

func TestDeliverBatchMatchesScheduleDelivery(t *testing.T) {
	// A pre-sorted batch delivery must be indistinguishable from the
	// equivalent ScheduleDelivery sequence.
	a, b := New(), New()
	for i := 0; i < 10; i++ {
		a.Schedule(float64(i), 1, int64(i), 0, nil)
		b.Schedule(float64(i), 1, int64(i), 0, nil)
	}
	batch := []Delivery{
		{Time: 2.5, Kind: 2, A: 100, B: 7, G: 3, Idx: 1},
		{Time: 2.5, Kind: 2, A: 101, B: 7, G: 3, Idx: 2},
		{Time: 4, Kind: 2, A: 102, B: 8, G: 5, Idx: 1},
	}
	a.DeliverBatch(batch)
	for _, d := range batch {
		b.ScheduleDelivery(d.Time, d.Kind, d.A, d.B, d.Ref, d.G, d.Idx)
	}
	if a.Live() != b.Live() {
		t.Fatalf("Live %d != %d", a.Live(), b.Live())
	}
	for {
		x, okx := a.Pop()
		y, oky := b.Pop()
		if okx != oky {
			t.Fatal("queues drained at different lengths")
		}
		if !okx {
			break
		}
		if x != y {
			t.Fatalf("batch pop %+v != sequential pop %+v", x, y)
		}
	}
}
