package eventq

import (
	"math/rand/v2"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmptyQueue(t *testing.T) {
	q := New()
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
	if q.Pop() != nil {
		t.Fatal("Pop on empty queue should return nil")
	}
	if q.Peek() != nil {
		t.Fatal("Peek on empty queue should return nil")
	}
}

func TestTimeOrdering(t *testing.T) {
	q := New()
	q.Schedule(3, 1, "c")
	q.Schedule(1, 1, "a")
	q.Schedule(2, 1, "b")
	var got []string
	for ev := q.Pop(); ev != nil; ev = q.Pop() {
		got = append(got, ev.Payload.(string))
	}
	if want := "abc"; got[0]+got[1]+got[2] != want {
		t.Fatalf("order = %v", got)
	}
}

func TestFIFOAmongEqualTimes(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Schedule(5, 0, i)
	}
	for i := 0; i < 100; i++ {
		ev := q.Pop()
		if ev == nil {
			t.Fatal("queue exhausted early")
		}
		if ev.Payload.(int) != i {
			t.Fatalf("equal-time events out of FIFO order: got %v at pos %d", ev.Payload, i)
		}
	}
}

func TestCancel(t *testing.T) {
	q := New()
	h1 := q.Schedule(1, 0, "a")
	q.Schedule(2, 0, "b")
	if !q.Cancel(h1) {
		t.Fatal("Cancel returned false for live event")
	}
	if q.Len() != 1 {
		t.Fatalf("Len after cancel = %d", q.Len())
	}
	if q.Cancel(h1) {
		t.Fatal("double Cancel should return false")
	}
	ev := q.Pop()
	if ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Pop after cancel = %+v", ev)
	}
	if q.Pop() != nil {
		t.Fatal("canceled event leaked out")
	}
}

func TestCancelAfterPop(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, nil)
	if q.Pop() == nil {
		t.Fatal("expected event")
	}
	if q.Cancel(h) {
		t.Fatal("Cancel after Pop should return false")
	}
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestCancelZeroHandle(t *testing.T) {
	q := New()
	if q.Cancel(Handle{}) {
		t.Fatal("Cancel of zero handle should be a no-op")
	}
}

func TestPeekSkipsCanceled(t *testing.T) {
	q := New()
	h := q.Schedule(1, 0, "a")
	q.Schedule(2, 0, "b")
	q.Cancel(h)
	if ev := q.Peek(); ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Peek = %+v, want b", ev)
	}
	// Peek must not consume.
	if ev := q.Pop(); ev == nil || ev.Payload.(string) != "b" {
		t.Fatalf("Pop after Peek = %+v, want b", ev)
	}
}

func TestKindAndTimePreserved(t *testing.T) {
	q := New()
	q.Schedule(7.25, 42, "x")
	ev := q.Pop()
	if ev.Time != 7.25 || ev.Kind != 42 {
		t.Fatalf("event fields = %+v", ev)
	}
}

func TestPopDrainsMonotonically(t *testing.T) {
	// Property: popping a randomly scheduled queue yields nondecreasing
	// times, and every live event is delivered exactly once.
	err := quick.Check(func(seed uint64, nRaw uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed))
		n := int(nRaw)%200 + 1
		q := New()
		times := make([]float64, 0, n)
		handles := make([]Handle, 0, n)
		for i := 0; i < n; i++ {
			tm := r.Float64() * 1000
			handles = append(handles, q.Schedule(tm, 0, tm))
			times = append(times, tm)
		}
		// Cancel a random subset.
		kept := make([]float64, 0, n)
		for i, h := range handles {
			if r.Float64() < 0.3 {
				q.Cancel(h)
			} else {
				kept = append(kept, times[i])
			}
		}
		if q.Len() != len(kept) {
			return false
		}
		got := make([]float64, 0, len(kept))
		prev := -1.0
		for ev := q.Pop(); ev != nil; ev = q.Pop() {
			if ev.Time < prev {
				return false
			}
			prev = ev.Time
			got = append(got, ev.Payload.(float64))
		}
		if len(got) != len(kept) {
			return false
		}
		sort.Float64s(kept)
		for i := range kept {
			if got[i] != kept[i] {
				return false
			}
		}
		return q.Len() == 0
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestInterleavedScheduleAndPop(t *testing.T) {
	q := New()
	q.Schedule(10, 0, 10.0)
	ev := q.Pop()
	if ev.Time != 10 {
		t.Fatal("wrong first event")
	}
	// Schedule later events after popping; simulator does this constantly.
	q.Schedule(20, 0, 20.0)
	q.Schedule(15, 0, 15.0)
	if got := q.Pop().Time; got != 15 {
		t.Fatalf("got %v, want 15", got)
	}
	if got := q.Pop().Time; got != 20 {
		t.Fatalf("got %v, want 20", got)
	}
}

func BenchmarkScheduleAndPop(b *testing.B) {
	r := rand.New(rand.NewPCG(1, 2))
	q := New()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Schedule(r.Float64()*1e6, 0, nil)
		if q.Len() > 1024 {
			for j := 0; j < 512; j++ {
				q.Pop()
			}
		}
	}
}

func BenchmarkCancel(b *testing.B) {
	q := New()
	handles := make([]Handle, b.N)
	for i := 0; i < b.N; i++ {
		handles[i] = q.Schedule(float64(i), 0, nil)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		q.Cancel(handles[i])
	}
}

func TestExportRestoreRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	a, b := New(), New()
	var cancelA, cancelB []Handle
	for i := 0; i < 200; i++ {
		tm := float64(r.IntN(20)) // force plenty of ties
		ha := a.Schedule(tm, i%5, i)
		hb := b.Schedule(tm, i%5, i)
		if i%7 == 0 {
			cancelA = append(cancelA, ha)
			cancelB = append(cancelB, hb)
		}
	}
	for i := range cancelA {
		a.Cancel(cancelA[i])
		b.Cancel(cancelB[i])
	}
	// Rebuild a fresh queue from a's export; b is the straight control.
	saved := a.Export()
	q := New()
	for _, sev := range saved {
		q.Restore(sev)
	}
	q.SetSeq(a.Seq())
	if q.Len() != b.Len() {
		t.Fatalf("restored Len %d != straight %d", q.Len(), b.Len())
	}
	// Future scheduling must interleave with restored events exactly as
	// it would have with the originals.
	for i := 0; i < 50; i++ {
		tm := float64(r.IntN(20))
		q.Schedule(tm, 9, 1000+i)
		b.Schedule(tm, 9, 1000+i)
	}
	for {
		x, y := q.Pop(), b.Pop()
		if x == nil || y == nil {
			if x != y && (x != nil || y != nil) {
				t.Fatal("queues drained at different lengths")
			}
			break
		}
		if x.Time != y.Time || x.Kind != y.Kind || x.Payload != y.Payload {
			t.Fatalf("restored pop (%v,%d,%v) != straight (%v,%d,%v)",
				x.Time, x.Kind, x.Payload, y.Time, y.Kind, y.Payload)
		}
	}
}

func TestExportIsSortedAndPure(t *testing.T) {
	q := New()
	for i := 0; i < 100; i++ {
		q.Schedule(float64(100-i%10), 0, i)
	}
	before := q.Len()
	saved := q.Export()
	if q.Len() != before {
		t.Fatal("Export modified the queue")
	}
	if len(saved) != before {
		t.Fatalf("Export returned %d events for %d pending", len(saved), before)
	}
	for i := 1; i < len(saved); i++ {
		if saved[i].Time < saved[i-1].Time {
			t.Fatal("Export not in firing order")
		}
	}
}
