package eventq

import (
	"testing"
)

// FuzzQueueOps model-checks the future event list against a naive
// reference implementation. The input bytes encode an op stream —
// schedule (with a small time domain to force plenty of simultaneous
// events), cancel, pop — and after replaying it the queue is drained.
// Checked invariants:
//
//   - Pop returns exactly the live event with the least (time, schedule
//     order): earliest-first, FIFO among ties (the determinism contract
//     the simulator's reproducibility rests on).
//   - Cancel reports true exactly once per scheduled event and popped
//     events can no longer be canceled.
//   - Len always equals the number of scheduled-not-canceled-not-popped
//     events.
func FuzzQueueOps(f *testing.F) {
	// Seed corpus: schedule bursts with ties, interleaved cancels and
	// pops, duplicate cancels, pop-from-empty.
	f.Add([]byte{0, 5, 0, 5, 0, 5, 2, 0, 2, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 10, 0, 3, 1, 0, 2, 0, 0, 3, 1, 1, 1, 1, 2, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 255, 0, 128, 1, 2, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		type modelEv struct {
			time     float64
			seq      int
			canceled bool
			popped   bool
		}
		q := New()
		var model []modelEv
		var handles []Handle

		expectedNext := func() int {
			best := -1
			for i := range model {
				if model[i].canceled || model[i].popped {
					continue
				}
				if best == -1 || model[i].time < model[best].time {
					best = i // earlier seq wins ties because we scan in order
				}
			}
			return best
		}
		liveCount := func() int {
			n := 0
			for i := range model {
				if !model[i].canceled && !model[i].popped {
					n++
				}
			}
			return n
		}
		pop := func() {
			want := expectedNext()
			ev := q.Pop()
			if want == -1 {
				if ev != nil {
					t.Fatalf("Pop returned %+v from an empty queue", ev)
				}
				return
			}
			if ev == nil {
				t.Fatalf("Pop returned nil with %d live events", liveCount())
			}
			if ev.Kind != model[want].seq || ev.Time != model[want].time {
				t.Fatalf("Pop returned (t=%v, seq=%d), want (t=%v, seq=%d)",
					ev.Time, ev.Kind, model[want].time, model[want].seq)
			}
			model[want].popped = true
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 3 {
			case 0:
				// Schedule; time domain 0..15 forces simultaneous events.
				tm := float64(arg % 16)
				seq := len(model)
				handles = append(handles, q.Schedule(tm, seq, nil))
				model = append(model, modelEv{time: tm, seq: seq})
			case 1:
				if len(handles) == 0 {
					continue
				}
				k := int(arg) % len(handles)
				got := q.Cancel(handles[k])
				want := !model[k].canceled && !model[k].popped
				if got != want {
					t.Fatalf("Cancel(%d) = %v, want %v", k, got, want)
				}
				if want {
					model[k].canceled = true
				}
			case 2:
				pop()
			}
			if q.Len() != liveCount() {
				t.Fatalf("Len = %d, want %d", q.Len(), liveCount())
			}
		}
		// Drain: the remaining events must come out in (time, seq) order.
		for liveCount() > 0 {
			pop()
		}
		if ev := q.Pop(); ev != nil {
			t.Fatalf("drained queue popped %+v", ev)
		}
		if q.Len() != 0 {
			t.Fatalf("drained queue Len = %d", q.Len())
		}
	})
}
