package eventq

import (
	"testing"
)

// FuzzQueueOps model-checks the future event list against a naive
// reference implementation. The input bytes encode an op stream —
// schedule (with a small time domain to force plenty of simultaneous
// events), cancel, pop — and after replaying it the queue is drained.
// Checked invariants:
//
//   - Pop returns exactly the live event with the least (time, schedule
//     order): earliest-first, FIFO among ties (the determinism contract
//     the simulator's reproducibility rests on).
//   - Cancel reports true exactly once per scheduled event and popped
//     events can no longer be canceled — including when the pooled
//     queue has recycled the event's slot (generation check).
//   - Live always equals the number of scheduled-not-canceled-not-popped
//     events, and tombstone compaction keeps Len bounded.
func FuzzQueueOps(f *testing.F) {
	// Seed corpus: schedule bursts with ties, interleaved cancels and
	// pops, duplicate cancels, pop-from-empty.
	f.Add([]byte{0, 5, 0, 5, 0, 5, 2, 0, 2, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 10, 0, 3, 1, 0, 2, 0, 0, 3, 1, 1, 1, 1, 2, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 255, 0, 128, 1, 2, 2, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		type modelEv struct {
			time     float64
			seq      int
			canceled bool
			popped   bool
		}
		q := New()
		var model []modelEv
		var handles []Handle

		expectedNext := func() int {
			best := -1
			for i := range model {
				if model[i].canceled || model[i].popped {
					continue
				}
				if best == -1 || model[i].time < model[best].time {
					best = i // earlier seq wins ties because we scan in order
				}
			}
			return best
		}
		liveCount := func() int {
			n := 0
			for i := range model {
				if !model[i].canceled && !model[i].popped {
					n++
				}
			}
			return n
		}
		pop := func() {
			want := expectedNext()
			ev, ok := q.Pop()
			if want == -1 {
				if ok {
					t.Fatalf("Pop returned %+v from an empty queue", ev)
				}
				return
			}
			if !ok {
				t.Fatalf("Pop returned nothing with %d live events", liveCount())
			}
			if ev.Kind != model[want].seq || ev.Time != model[want].time {
				t.Fatalf("Pop returned (t=%v, seq=%d), want (t=%v, seq=%d)",
					ev.Time, ev.Kind, model[want].time, model[want].seq)
			}
			model[want].popped = true
		}

		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 3 {
			case 0:
				// Schedule; time domain 0..15 forces simultaneous events.
				tm := float64(arg % 16)
				seq := len(model)
				handles = append(handles, q.Schedule(tm, seq, 0, 0, nil))
				model = append(model, modelEv{time: tm, seq: seq})
			case 1:
				if len(handles) == 0 {
					continue
				}
				k := int(arg) % len(handles)
				got := q.Cancel(handles[k])
				want := !model[k].canceled && !model[k].popped
				if got != want {
					t.Fatalf("Cancel(%d) = %v, want %v", k, got, want)
				}
				if want {
					model[k].canceled = true
				}
			case 2:
				pop()
			}
			if q.Live() != liveCount() {
				t.Fatalf("Live = %d, want %d", q.Live(), liveCount())
			}
			if q.Len() < q.Live() {
				t.Fatalf("Len = %d < Live = %d", q.Len(), q.Live())
			}
		}
		// Drain: the remaining events must come out in (time, seq) order.
		for liveCount() > 0 {
			pop()
		}
		if ev, ok := q.Pop(); ok {
			t.Fatalf("drained queue popped %+v", ev)
		}
		if q.Live() != 0 {
			t.Fatalf("drained queue Live = %d", q.Live())
		}
	})
}

// FuzzQueueDiff differentially fuzzes the pooled 4-ary queue against
// the retired container/heap implementation (legacy_test.go) on the
// same op-stream encoding as FuzzQueueOps, extended with phased and
// delivery scheduling. Every observable — pop stream, cancel results,
// live counts, export contents — must match exactly.
func FuzzQueueDiff(f *testing.F) {
	f.Add([]byte{0, 5, 0, 5, 0, 5, 2, 0, 2, 0, 2, 0, 2, 0})
	f.Add([]byte{0, 10, 0, 3, 1, 0, 2, 0, 0, 3, 1, 1, 1, 1, 2, 0})
	f.Add([]byte{2, 0, 0, 0, 0, 255, 0, 128, 1, 2, 2, 0, 2, 0})
	f.Add([]byte{3, 9, 3, 9, 4, 9, 0, 9, 2, 0, 2, 0, 1, 0, 2, 0})
	f.Fuzz(func(t *testing.T, data []byte) {
		q := New()
		lq := newLegacyQueue()
		var handles []Handle
		var lhandles []legacyHandle
		seq := int64(0)
		g := uint64(0)
		for i := 0; i+1 < len(data); i += 2 {
			op, arg := data[i], data[i+1]
			switch op % 5 {
			case 0: // plain schedule
				tm := float64(arg % 16)
				handles = append(handles, q.Schedule(tm, 1, seq, 0, nil))
				lhandles = append(lhandles, lq.Schedule(tm, 1, seq, 0, nil))
				seq++
			case 1: // cancel
				if len(handles) == 0 {
					continue
				}
				k := int(arg) % len(handles)
				got, want := q.Cancel(handles[k]), lq.Cancel(lhandles[k])
				if got != want {
					t.Fatalf("Cancel(%d): pooled %v, legacy %v", k, got, want)
				}
			case 2: // pop
				ev, ok := q.Pop()
				lev, lok := lq.Pop()
				if ok != lok || ev != lev {
					t.Fatalf("Pop: pooled (%+v,%v), legacy (%+v,%v)", ev, ok, lev, lok)
				}
			case 3: // phased schedule
				tm := float64(arg % 16)
				phase := uint64(arg % 4)
				handles = append(handles, q.SchedulePhased(tm, 2, seq, 0, nil, phase))
				lhandles = append(lhandles, lq.SchedulePhased(tm, 2, seq, 0, nil, phase))
				seq++
			case 4: // cross-partition delivery
				tm := float64(arg % 16)
				g++
				handles = append(handles, q.ScheduleDelivery(tm, 3, seq, int64(arg), nil, g, 1))
				lhandles = append(lhandles, lq.ScheduleDelivery(tm, 3, seq, int64(arg), nil, g, 1))
				seq++
			}
			if q.Live() != lq.Live() {
				t.Fatalf("Live: pooled %d, legacy %d", q.Live(), lq.Live())
			}
		}
		// Exports must agree exactly (same events, same firing order).
		ex, lex := q.Export(), lq.Export()
		if len(ex) != len(lex) {
			t.Fatalf("Export length: pooled %d, legacy %d", len(ex), len(lex))
		}
		for i := range ex {
			if ex[i] != lex[i] {
				t.Fatalf("Export[%d]: pooled %+v, legacy %+v", i, ex[i], lex[i])
			}
		}
		// Drain both to the end.
		for {
			ev, ok := q.Pop()
			lev, lok := lq.Pop()
			if ok != lok || ev != lev {
				t.Fatalf("drain: pooled (%+v,%v), legacy (%+v,%v)", ev, ok, lev, lok)
			}
			if !ok {
				break
			}
		}
	})
}
