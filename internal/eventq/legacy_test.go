package eventq

// This file preserves the pre-pooling future event list — the
// container/heap binary heap of *Event records with any-boxed payload
// delivery — as a test-only reference implementation. Its sole consumer
// is the differential fuzz target (FuzzQueueDiff), which replays op
// streams against both implementations and demands identical observable
// behavior. Once the pooled queue has survived in the field for a
// while, this shim and its fuzz target can be deleted together.

import (
	"container/heap"
	"sort"
)

type legacyEvent struct {
	time     float64
	kind     int
	a, b     int64
	ref      any
	rank     [3]uint64
	index    int
	canceled bool
}

type legacyHandle struct{ ev *legacyEvent }

type legacyQueue struct {
	h    legacyHeap
	seq  uint64
	live int
}

func newLegacyQueue() *legacyQueue { return &legacyQueue{} }

func (q *legacyQueue) Live() int { return q.live }

func (q *legacyQueue) Schedule(t float64, kind int, a, b int64, ref any) legacyHandle {
	return q.SchedulePhased(t, kind, a, b, ref, 0)
}

func (q *legacyQueue) SchedulePhased(t float64, kind int, a, b int64, ref any, phase uint64) legacyHandle {
	q.seq++
	ev := &legacyEvent{time: t, kind: kind, a: a, b: b, ref: ref, rank: [3]uint64{phase, orderLocal, q.seq}}
	heap.Push(&q.h, ev)
	q.live++
	return legacyHandle{ev: ev}
}

func (q *legacyQueue) ScheduleDelivery(t float64, kind int, a, b int64, ref any, g, idx uint64) legacyHandle {
	ev := &legacyEvent{time: t, kind: kind, a: a, b: b, ref: ref, rank: [3]uint64{g, orderDelivered, idx}}
	heap.Push(&q.h, ev)
	q.live++
	return legacyHandle{ev: ev}
}

func (q *legacyQueue) Cancel(h legacyHandle) bool {
	if h.ev == nil || h.ev.canceled || h.ev.index < 0 {
		return false
	}
	h.ev.canceled = true
	q.live--
	return true
}

func (q *legacyQueue) Pop() (Event, bool) {
	for q.h.Len() > 0 {
		ev := heap.Pop(&q.h).(*legacyEvent)
		if ev.canceled {
			continue
		}
		q.live--
		return Event{Time: ev.time, Kind: ev.kind, A: ev.a, B: ev.b, Ref: ev.ref}, true
	}
	return Event{}, false
}

func (q *legacyQueue) Peek() (Event, bool) {
	for q.h.Len() > 0 {
		if top := q.h[0]; top.canceled {
			heap.Pop(&q.h)
			continue
		}
		ev := q.h[0]
		return Event{Time: ev.time, Kind: ev.kind, A: ev.a, B: ev.b, Ref: ev.ref}, true
	}
	return Event{}, false
}

func (q *legacyQueue) Export() []SavedEvent {
	out := make([]SavedEvent, 0, q.live)
	for _, ev := range q.h {
		if ev.canceled {
			continue
		}
		out = append(out, SavedEvent{Time: ev.time, Kind: ev.kind, A: ev.a, B: ev.b, Ref: ev.ref, Rank: ev.rank})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		for k := 0; k < 2; k++ {
			if out[i].Rank[k] != out[j].Rank[k] {
				return out[i].Rank[k] < out[j].Rank[k]
			}
		}
		return out[i].Rank[2] < out[j].Rank[2]
	})
	return out
}

type legacyHeap []*legacyEvent

var _ heap.Interface = (*legacyHeap)(nil)

func (h legacyHeap) Len() int { return len(h) }

func (h legacyHeap) Less(i, j int) bool {
	if h[i].time != h[j].time {
		return h[i].time < h[j].time
	}
	for k := 0; k < 2; k++ {
		if h[i].rank[k] != h[j].rank[k] {
			return h[i].rank[k] < h[j].rank[k]
		}
	}
	return h[i].rank[2] < h[j].rank[2]
}

func (h legacyHeap) Swap(i, j int) {
	h[i], h[j] = h[j], h[i]
	h[i].index = i
	h[j].index = j
}

func (h *legacyHeap) Push(x any) {
	ev := x.(*legacyEvent)
	ev.index = len(*h)
	*h = append(*h, ev)
}

func (h *legacyHeap) Pop() any {
	old := *h
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*h = old[:n-1]
	return ev
}
