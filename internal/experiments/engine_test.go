package experiments

// Engine determinism at the experiment level: the serial and parallel
// simulation engines must produce byte-identical rendered reports and
// hex-float-identical series for the multisite experiment (single-site
// baseline, 3-site federations, 6-site federation) and for the
// single-site paper experiments (where the parallel engine falls back
// to the serial kernel). CI runs this under -race.

import (
	"fmt"
	"sort"
	"strings"
	"testing"

	"netbatch/internal/sim"
)

// engineOpts pins every knob that affects output except the engine.
func engineOpts(engine string) Options {
	return Options{Seed: 42, Seeds: 1, Scale: 0.03, Engine: engine}
}

// seriesFingerprint renders every series point in hex so comparison is
// bit-exact.
func seriesFingerprint(t *testing.T, out *Output) string {
	t.Helper()
	names := make([]string, 0, len(out.Series))
	for name := range out.Series {
		names = append(names, name)
	}
	sort.Strings(names)
	var sb strings.Builder
	for _, name := range names {
		fmt.Fprintf(&sb, "%s:", name)
		for _, p := range out.Series[name] {
			fmt.Fprintf(&sb, " %x/%x", p.X, p.Y)
		}
		sb.WriteString("\n")
	}
	return sb.String()
}

func runEngine(t *testing.T, id, engine string) (rendered, series string) {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(engineOpts(engine))
	if err != nil {
		t.Fatalf("%s engine %s: %v", id, engine, err)
	}
	return renderOutput(t, out), seriesFingerprint(t, out)
}

// TestMultiSiteEnginesBitIdentical is the determinism contract of the
// partitioned engine on the experiment that exercises it: fed1 (serial
// fallback), the three 3-site federations, and the 6-site federation,
// across all three rescheduling policies.
func TestMultiSiteEnginesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	serialOut, serialSeries := runEngine(t, "multisite", sim.EngineSerial)
	parOut, parSeries := runEngine(t, "multisite", sim.EngineParallel)
	if serialOut != parOut {
		t.Errorf("multisite rendered reports differ between engines:\n%s",
			diffHead(serialOut, parOut))
	}
	if serialSeries != parSeries {
		t.Errorf("multisite series differ between engines:\n%s",
			diffHead(serialSeries, parSeries))
	}
}

// TestSingleSiteEnginesBitIdentical pins the fallback contract on every
// registered single-site experiment: Engine=parallel must change
// nothing at all.
func TestSingleSiteEnginesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment runs")
	}
	for _, id := range IDs() {
		if id == "multisite" || id == "faults" {
			continue // covered above / below, with real partitions
		}
		id := id
		t.Run(id, func(t *testing.T) {
			serialOut, serialSeries := runEngine(t, id, sim.EngineSerial)
			parOut, parSeries := runEngine(t, id, sim.EngineParallel)
			if serialOut != parOut {
				t.Errorf("rendered reports differ between engines:\n%s",
					diffHead(serialOut, parOut))
			}
			if serialSeries != parSeries {
				t.Errorf("series differ between engines:\n%s",
					diffHead(serialSeries, parSeries))
			}
		})
	}
}

// TestFaultsEnginesBitIdentical extends the determinism contract to
// the fault & maintenance subsystem: the faults experiment — crashes,
// maintenance windows, kill/requeue and drain cells on 1/3/6-site
// federations — must render byte-identically under both engines.
func TestFaultsEnginesBitIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	serialOut, serialSeries := runEngine(t, "faults", sim.EngineSerial)
	parOut, parSeries := runEngine(t, "faults", sim.EngineParallel)
	if serialOut != parOut {
		t.Errorf("faults rendered reports differ between engines:\n%s",
			diffHead(serialOut, parOut))
	}
	if serialSeries != parSeries {
		t.Errorf("faults series differ between engines:\n%s",
			diffHead(serialSeries, parSeries))
	}
}

// diffHead shows the first few differing lines of two renderings.
func diffHead(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	var sb strings.Builder
	shown := 0
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x == y {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  serial:   %.160s\n  parallel: %.160s\n", i+1, x, y)
		if shown++; shown >= 4 {
			sb.WriteString("  ...\n")
			break
		}
	}
	return sb.String()
}
