// Package experiments defines one runnable experiment per table and
// figure in the paper's evaluation (§3), plus the high-suspension
// text-only scenario. Each experiment generates its synthetic trace,
// builds the platform, runs the simulator once per strategy, and
// renders results in the paper's layout. DESIGN.md carries the
// experiment index; EXPERIMENTS.md records paper-vs-measured values.
package experiments

import (
	"fmt"
	"sort"
	"sync"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives trace generation and all policy randomness.
	Seed uint64
	// Scale shrinks the platform and the arrival rates together
	// (per-pool load is preserved). 1.0 is paper scale; tests and
	// benchmarks use ~0.1. Values <= 0 default to 1.0.
	Scale float64
	// Parallel runs the per-strategy simulations concurrently.
	Parallel bool
	// Overhead is the reschedule transfer overhead in minutes (the §5
	// future-work knob; 0 matches the paper's evaluation).
	Overhead float64
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	return o
}

// Output is a completed experiment.
type Output struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Names are the strategy names, in run order.
	Names []string
	// Summaries are the per-strategy metric sets, aligned with Names.
	Summaries []metrics.Summary
	// Tables are the rendered result tables (paper layout).
	Tables []*report.Table
	// Series holds named time series / distributions for the figures.
	Series map[string][]stats.Point
	// Notes carries free-form observations (e.g. measured quantiles).
	Notes []string
}

// Experiment is a registered, reproducible paper artifact.
type Experiment struct {
	// ID is the registry key (e.g. "table1", "fig2").
	ID string
	// Title describes the paper artifact.
	Title string
	// Run executes the experiment.
	Run func(Options) (*Output, error)
}

// registry holds all experiments, keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// PolicyFactory names and constructs a rescheduling strategy.
type PolicyFactory struct {
	// Name is the paper's strategy name.
	Name string
	// New builds the policy; seed feeds its randomness.
	New func(seed uint64) core.Policy
}

// Standard policy sets used by the tables.
func susPolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
		{Name: "ResSusUtil", New: func(uint64) core.Policy { return core.NewResSusUtil() }},
		{Name: "ResSusRand", New: func(s uint64) core.Policy { return core.NewResSusRand(s) }},
	}
}

func waitPolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
		{Name: "ResSusWaitUtil", New: func(uint64) core.Policy { return core.NewResSusWaitUtil() }},
		{Name: "ResSusWaitRand", New: func(s uint64) core.Policy { return core.NewResSusWaitRand(s) }},
	}
}

// scaleTraceCfg shrinks arrival rates to pair with an equally scaled
// platform, preserving per-pool load.
func scaleTraceCfg(cfg trace.GeneratorConfig, s float64) trace.GeneratorConfig {
	if s == 1.0 {
		return cfg
	}
	cfg.LowRate *= s
	bursts := append([]trace.Burst(nil), cfg.Bursts...)
	for i := range bursts {
		bursts[i].Rate *= s
	}
	cfg.Bursts = bursts
	if cfg.Auto != nil {
		a := *cfg.Auto
		a.Rate *= s
		cfg.Auto = &a
	}
	return cfg
}

// buildPlatform creates the default NetBatch platform at the given
// scale, optionally halved for the high-load scenario.
func buildPlatform(scale, capacityFactor float64) (*cluster.Platform, error) {
	cfg := cluster.DefaultNetBatchConfig()
	cfg.Scale = scale
	plat, err := cluster.NewNetBatchPlatform(cfg)
	if err != nil {
		return nil, err
	}
	if capacityFactor != 1.0 {
		plat, err = plat.ScaleCapacity(capacityFactor)
		if err != nil {
			return nil, err
		}
	}
	return plat, nil
}

// strategyRun is one (policy, simulation) execution.
type strategyRun struct {
	name    string
	summary metrics.Summary
	result  *sim.Result
}

// runStrategies simulates the trace once per policy on the platform.
func runStrategies(
	tr *trace.Trace,
	plat *cluster.Platform,
	newInitial func() sched.InitialScheduler,
	policies []PolicyFactory,
	opts Options,
	staleness float64,
) ([]strategyRun, error) {
	runs := make([]strategyRun, len(policies))
	runOne := func(i int) error {
		cfg := sim.Config{
			Platform:           plat,
			Initial:            newInitial(),
			Policy:             policies[i].New(opts.Seed + uint64(i)*7919),
			RescheduleOverhead: opts.Overhead,
			UtilStaleness:      staleness,
			CheckConservation:  true,
		}
		res, err := sim.Run(cfg, tr.Jobs)
		if err != nil {
			return fmt.Errorf("experiments: strategy %s: %w", policies[i].Name, err)
		}
		sum, err := metrics.Summarize(res.Jobs)
		if err != nil {
			return fmt.Errorf("experiments: strategy %s: %w", policies[i].Name, err)
		}
		runs[i] = strategyRun{name: policies[i].Name, summary: sum, result: res}
		return nil
	}
	if !opts.Parallel {
		for i := range policies {
			if err := runOne(i); err != nil {
				return nil, err
			}
		}
		return runs, nil
	}
	var wg sync.WaitGroup
	errs := make([]error, len(policies))
	for i := range policies {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = runOne(i)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return runs, nil
}

// tableExperiment builds a standard tables-1-through-5 experiment.
// staleness is the utilization-view propagation delay in minutes; the
// utilization-based initial-scheduler experiments use a 30-minute-stale
// view, reflecting the paper's observation that exact pool utilization
// "can be impractical in reality given the unavoidable propagation
// latency between different pools" (§3.2.2).
func tableExperiment(
	id, title string,
	capacityFactor float64,
	staleness float64,
	newInitial func() sched.InitialScheduler,
	policies func() []PolicyFactory,
) Experiment {
	return Experiment{
		ID:    id,
		Title: title,
		Run: func(opts Options) (*Output, error) {
			opts = opts.withDefaults()
			tr, err := trace.Generate(scaleTraceCfg(trace.WeekNormal(opts.Seed), opts.Scale))
			if err != nil {
				return nil, err
			}
			plat, err := buildPlatform(opts.Scale, capacityFactor)
			if err != nil {
				return nil, err
			}
			runs, err := runStrategies(tr, plat, newInitial, policies(), opts, staleness)
			if err != nil {
				return nil, err
			}
			return tableOutput(id, title, runs)
		},
	}
}

// tableOutput assembles the standard per-strategy output.
func tableOutput(id, title string, runs []strategyRun) (*Output, error) {
	out := &Output{ID: id, Title: title, Series: map[string][]stats.Point{}}
	for _, r := range runs {
		out.Names = append(out.Names, r.name)
		out.Summaries = append(out.Summaries, r.summary)
		out.Series["util:"+r.name] = r.result.Util.Points()
		out.Series["suspended:"+r.name] = r.result.Suspended.Points()
	}
	tbl, err := report.PaperTable(title, out.Names, out.Summaries)
	if err != nil {
		return nil, err
	}
	waste, err := report.WasteTable(title+" — wasted-time components", out.Names, out.Summaries)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, tbl, waste)
	return out, nil
}
