// Package experiments defines one runnable experiment per table and
// figure in the paper's evaluation (§3), plus the high-suspension
// text-only scenario. Each experiment is a declarative (scenario ×
// policy × seed) matrix executed by a bounded worker pool: the runner
// generates each replicate's synthetic trace, simulates every strategy,
// and renders results in the paper's layout — as point values for a
// single seed, or as mean ± 95% CI across seed replicates. DESIGN.md
// carries the experiment index; EXPERIMENTS.md records paper-vs-measured
// values.
package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/metrics"
	"netbatch/internal/obs"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

// Options tunes an experiment run.
type Options struct {
	// Seed drives trace generation and all policy randomness for the
	// first replicate; replicate r > 0 forks its seed from Seed with
	// keyed, order-independent derivation (stats.ForkSeed).
	Seed uint64
	// Seeds is the replication count per (scenario, policy) cell.
	// With Seeds > 1, tables report mean ± 95% CI across replicates.
	// Values < 1 default to 1.
	Seeds int
	// Scale shrinks the platform and the arrival rates together
	// (per-pool load is preserved). 1.0 is paper scale; tests and
	// benchmarks use ~0.1. Values <= 0 default to 1.0.
	Scale float64
	// Jobs bounds the matrix runner's worker pool. Values <= 0 default
	// to runtime.NumCPU(). Results are identical for every value.
	Jobs int
	// Overhead is the reschedule transfer overhead in minutes (the §5
	// future-work knob; 0 matches the paper's evaluation).
	Overhead float64
	// Engine selects the simulation engine for every cell:
	// sim.EngineSerial (default, also ""), sim.EngineParallel or
	// sim.EngineOptimistic. The engines produce bit-identical results;
	// both partitioned engines execute multi-site cells with one
	// goroutine per site (conservatively synchronized vs speculative
	// with snapshot rollback).
	Engine string
	// Context cancels in-flight simulations cooperatively. Nil defaults
	// to context.Background().
	Context context.Context

	// CheckpointDir enables per-cell checkpoint/restore: every cell
	// periodically writes its engine snapshot to
	// <dir>/<scenario>_p<policy>_r<replicate>_t<time>.ckpt (atomically,
	// zero-padded time so names sort chronologically). The history is
	// kept — any two of a cell's files feed replay-bisect; Resume picks
	// the newest. Empty disables checkpointing.
	CheckpointDir string
	// CheckpointEvery is the snapshot cadence in simulated minutes.
	// Values <= 0 default to one simulated day (1440) when
	// CheckpointDir is set.
	CheckpointEvery float64
	// CheckpointKeyframe delta-encodes the checkpoint stream: every Nth
	// snapshot of a cell is a full keyframe (.ckpt file), the ones
	// between are binary deltas against the previous snapshot (.dckpt
	// files, typically a small fraction of the full size). Resume and
	// replay-bisect reconstruct delta files transparently from their
	// keyframe chain. 0 or 1 writes only full snapshots.
	CheckpointKeyframe int
	// Resume makes each cell continue from its checkpoint file when a
	// compatible one exists in CheckpointDir, so an interrupted matrix
	// run re-executes only the tail of each cell. Incompatible or
	// corrupted checkpoints fall back to a fresh run (reported through
	// Logf). Results are bit-identical either way.
	Resume bool
	// Logf, when set, receives progress and fallback warnings (e.g. a
	// checkpoint that could not be resumed). Nil discards them.
	Logf func(format string, args ...any)

	// Metrics, when set, is the shared registry every cell's engine
	// records execution counters into (see internal/obs and the
	// sim.Config.Metrics names). Nil disables metric recording at the
	// engines' nil-sink fast path.
	Metrics *obs.Registry
	// Trace, when set, collects a Chrome trace_event timeline: each
	// cell becomes one process group ("cell <scenario>/<policy>/r<n>")
	// holding that run's engine tracks. Write it out with
	// Trace.WriteJSON after Run returns.
	Trace *obs.Tracer
	// RunLog, when set, receives streaming JSONL telemetry: one
	// cell_start/cell_done record per cell plus periodic progress
	// records (simulated-time frontier, events/sec, crude ETA,
	// rollback count) every ProgressEvery of wall time.
	RunLog *obs.RunLog
	// ProgressEvery throttles per-cell progress records, and — when
	// RunLog is nil but Logf is set — mirrors them to Logf instead.
	// Values <= 0 default to 1s when RunLog is set, else disable
	// progress reporting.
	ProgressEvery time.Duration
}

func (o Options) withDefaults() Options {
	if o.Scale <= 0 {
		o.Scale = 1.0
	}
	if o.Seed == 0 {
		o.Seed = 42
	}
	if o.Seeds < 1 {
		o.Seeds = 1
	}
	if o.Jobs <= 0 {
		o.Jobs = runtime.NumCPU()
	}
	if o.Context == nil {
		o.Context = context.Background()
	}
	if o.RunLog != nil && o.ProgressEvery <= 0 {
		o.ProgressEvery = time.Second
	}
	return o
}

// Output is a completed experiment.
type Output struct {
	// ID and Title identify the experiment.
	ID, Title string
	// Names are the strategy names, in run order.
	Names []string
	// Summaries are the per-strategy metric sets of the first seed
	// replicate, aligned with Names. They reproduce the historical
	// single-run results regardless of the replication count.
	Summaries []metrics.Summary
	// Replicates are the per-strategy, per-seed metric sets
	// ([strategy][replicate], aligned with Names).
	Replicates [][]metrics.Summary
	// Tables are the rendered result tables (paper layout; mean ± 95%
	// CI columns when more than one replicate ran).
	Tables []*report.Table
	// EngineCounters is the per-strategy engine execution table
	// (sub-shard steals, alias retirements, rollbacks, group-commit
	// drains), set only when a non-serial engine ran the cells. It is
	// deliberately NOT part of Tables: the paper tables must render
	// byte-identically across engines (pinned by goldens and the
	// engine-parity tests), while these counters describe execution
	// mechanics that legitimately differ per engine.
	EngineCounters *report.Table
	// Series holds named time series / distributions for the figures
	// (first replicate).
	Series map[string][]stats.Point
	// Notes carries free-form observations (e.g. measured quantiles).
	Notes []string
	// AmbiguousCells counts matrix cells whose parallel run flagged an
	// ambiguous cross-partition timestamp tie (sim.Result.AmbiguousTies):
	// for those cells the serial/parallel bit-identity guarantee is
	// void. Always 0 under the serial engine.
	AmbiguousCells int
}

// Experiment is a registered, reproducible paper artifact.
type Experiment struct {
	// ID is the registry key (e.g. "table1", "fig2").
	ID string
	// Title describes the paper artifact.
	Title string
	// Plan declares the experiment's (scenario × policy × seed) matrix
	// without running it. Checkpoint tooling (replay-bisect) uses it to
	// rebuild individual cells.
	Plan func(Options) Matrix
	// Run executes the experiment.
	Run func(Options) (*Output, error)
}

// registry holds all experiments, keyed by ID.
var registry = map[string]Experiment{}

func register(e Experiment) {
	registry[e.ID] = e
}

// Get returns the experiment with the given ID.
func Get(id string) (Experiment, error) {
	e, ok := registry[id]
	if !ok {
		return Experiment{}, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return e, nil
}

// IDs lists registered experiment IDs in stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// CellSim rebuilds the simulation inputs of one cell of a registered
// experiment — the exact sim.Config (fresh scheduler/policy instances,
// coordinate-derived seeds) and workload that the matrix runner would
// execute for it. The replay-bisect tooling uses it to resume and
// replay a cell's recorded snapshots; the rebuilt config hash-matches
// them because buildCellConfig is the single assembly point.
func CellSim(expID, scenarioID, policyName string, rep int, opts Options) (sim.Config, []job.Spec, error) {
	var zero sim.Config
	e, err := Get(expID)
	if err != nil {
		return zero, nil, err
	}
	if e.Plan == nil {
		return zero, nil, fmt.Errorf("experiments: %s does not declare a matrix plan", expID)
	}
	opts = opts.withDefaults()
	m := e.Plan(opts)
	sIdx, pIdx := -1, -1
	var haveS, haveP []string
	for i := range m.Scenarios {
		haveS = append(haveS, m.Scenarios[i].ID)
		if m.Scenarios[i].ID == scenarioID {
			sIdx = i
		}
	}
	for i := range m.Policies {
		haveP = append(haveP, m.Policies[i].Name)
		if m.Policies[i].Name == policyName {
			pIdx = i
		}
	}
	if sIdx < 0 {
		return zero, nil, fmt.Errorf("experiments: %s has no scenario %q (have %v)", expID, scenarioID, haveS)
	}
	if pIdx < 0 {
		return zero, nil, fmt.Errorf("experiments: %s has no policy %q (have %v)", expID, policyName, haveP)
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = ReplicateSeeds(opts.Seed, opts.Seeds)
	}
	if rep < 0 || rep >= len(seeds) {
		return zero, nil, fmt.Errorf("experiments: replicate %d outside [0, %d)", rep, len(seeds))
	}
	sc := &m.Scenarios[sIdx]
	plat, err := sc.Platform(opts.Scale)
	if err != nil {
		return zero, nil, fmt.Errorf("experiments: scenario %s: platform: %w", scenarioID, err)
	}
	tr, err := sc.Trace(seeds[rep], opts.Scale)
	if err != nil {
		return zero, nil, fmt.Errorf("experiments: scenario %s seed %d: trace: %w", scenarioID, seeds[rep], err)
	}
	return buildCellConfig(sc, m.Policies[pIdx], pIdx, seeds[rep], plat, opts), tr.Jobs, nil
}

// PolicyFactory names and constructs a rescheduling strategy.
type PolicyFactory struct {
	// Name is the paper's strategy name.
	Name string
	// New builds the policy; seed feeds its randomness.
	New func(seed uint64) core.Policy
}

// Standard policy sets used by the tables.
func susPolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
		{Name: "ResSusUtil", New: func(uint64) core.Policy { return core.NewResSusUtil() }},
		{Name: "ResSusRand", New: func(s uint64) core.Policy { return core.NewResSusRand(s) }},
	}
}

func waitPolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
		{Name: "ResSusWaitUtil", New: func(uint64) core.Policy { return core.NewResSusWaitUtil() }},
		{Name: "ResSusWaitRand", New: func(s uint64) core.Policy { return core.NewResSusWaitRand(s) }},
	}
}

// scaleTraceCfg shrinks arrival rates to pair with an equally scaled
// platform, preserving per-pool load.
func scaleTraceCfg(cfg trace.GeneratorConfig, s float64) trace.GeneratorConfig {
	if s == 1.0 {
		return cfg
	}
	cfg.LowRate *= s
	bursts := append([]trace.Burst(nil), cfg.Bursts...)
	for i := range bursts {
		bursts[i].Rate *= s
	}
	cfg.Bursts = bursts
	if cfg.Auto != nil {
		a := *cfg.Auto
		a.Rate *= s
		cfg.Auto = &a
	}
	return cfg
}

// buildPlatform creates the default NetBatch platform at the given
// scale, optionally halved for the high-load scenario.
func buildPlatform(scale, capacityFactor float64) (*cluster.Platform, error) {
	cfg := cluster.DefaultNetBatchConfig()
	cfg.Scale = scale
	plat, err := cluster.NewNetBatchPlatform(cfg)
	if err != nil {
		return nil, err
	}
	if capacityFactor != 1.0 {
		plat, err = plat.ScaleCapacity(capacityFactor)
		if err != nil {
			return nil, err
		}
	}
	return plat, nil
}

// tableExperiment builds a standard tables-1-through-5 experiment on a
// one-scenario matrix. staleness is the utilization-view propagation
// delay in minutes; the utilization-based initial-scheduler experiments
// use a 30-minute-stale view, reflecting the paper's observation that
// exact pool utilization "can be impractical in reality given the
// unavoidable propagation latency between different pools" (§3.2.2).
func tableExperiment(
	id, title string,
	capacityFactor float64,
	staleness float64,
	newInitial func() sched.InitialScheduler,
	policies func() []PolicyFactory,
) Experiment {
	plan := func(Options) Matrix {
		return Matrix{
			Scenarios: []Scenario{WeekScenario(id, capacityFactor, staleness, newInitial)},
			Policies:  policies(),
		}
	}
	return Experiment{
		ID:    id,
		Title: title,
		Plan:  plan,
		Run: func(opts Options) (*Output, error) {
			mr, err := plan(opts).Run(opts)
			if err != nil {
				return nil, err
			}
			return tableOutput(id, title, mr)
		},
	}
}

// newOutput assembles the per-strategy skeleton (names, first-replicate
// summaries, all replicates) from scenario 0 of a completed matrix.
// Series starts empty; each experiment fills in what its figure needs.
func newOutput(id, title string, mr *MatrixResult) *Output {
	out := &Output{ID: id, Title: title, Series: map[string][]stats.Point{}}
	for p, name := range mr.PolicyNames {
		reps := mr.Replicates(0, p)
		out.Names = append(out.Names, name)
		out.Summaries = append(out.Summaries, reps[0])
		out.Replicates = append(out.Replicates, reps)
	}
	annotateAmbiguity(out, mr)
	return out
}

// annotateEngine fills Output.EngineCounters with the per-strategy
// engine execution counters (sub-shard steals, alias retirements,
// rollbacks, group-commit drains) when a non-serial engine ran the
// cells. Serial runs skip it: the counters describe parallel execution
// mechanics, and the serial goldens pin the report byte-for-byte.
func annotateEngine(out *Output, mr *MatrixResult) {
	if mr.Engine == "" || mr.Engine == sim.EngineSerial {
		return
	}
	nScen := len(mr.cells) / (mr.nPol * mr.nRep)
	rows := make([]report.EngineStats, mr.nPol)
	for p, name := range mr.PolicyNames {
		rows[p].Strategy = name
		for s := 0; s < nScen; s++ {
			for rep := 0; rep < mr.nRep; rep++ {
				r := mr.At(s, p, rep).Result
				if r == nil {
					continue
				}
				rows[p].Events += r.Events
				rows[p].SubShardSteals += r.SubShardSteals
				rows[p].AliasRetirements += r.AliasRetirements
				rows[p].Rollbacks += r.Rollbacks
				for i, n := range r.GroupCommitSize {
					for len(rows[p].GroupCommits) <= i {
						rows[p].GroupCommits = append(rows[p].GroupCommits, 0)
					}
					rows[p].GroupCommits[i] += n
				}
			}
		}
	}
	out.EngineCounters = report.EngineTable(
		fmt.Sprintf("engine execution counters (%s)", mr.Engine), rows)
}

// annotateAmbiguity surfaces ambiguous cross-partition timestamp ties:
// formerly a silently-dropped engine-internal flag, now a counted field
// plus a report footnote whenever any replicate raised it.
func annotateAmbiguity(out *Output, mr *MatrixResult) {
	out.AmbiguousCells = mr.AmbiguousCells()
	if out.AmbiguousCells > 0 {
		out.Notes = append(out.Notes, fmt.Sprintf(
			"caveat: %d cell(s) hit an ambiguous cross-partition event tie under the parallel engine; serial/parallel bit-identity is not guaranteed for those replicates",
			out.AmbiguousCells))
	}
}

// tableOutput renders the standard per-strategy tables — point values
// for one replicate, mean ± 95% CI across several — plus the
// first-replicate utilization/suspension series.
func tableOutput(id, title string, mr *MatrixResult) (*Output, error) {
	out := newOutput(id, title, mr)
	for p, name := range mr.PolicyNames {
		r0 := mr.At(0, p, 0).Result
		out.Series["util:"+name] = r0.Util.Points()
		out.Series["suspended:"+name] = r0.Suspended.Points()
	}
	tbl, err := report.PaperTableCI(title, out.Names, out.Replicates)
	if err != nil {
		return nil, err
	}
	waste, err := report.WasteTableCI(title+" — wasted-time components", out.Names, out.Replicates)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, tbl, waste)
	annotateEngine(out, mr)
	return out, nil
}
