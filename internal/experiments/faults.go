package experiments

import (
	"fmt"

	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// The faults experiment stresses the rescheduling strategies on
// federations whose machines fail and go down for maintenance — the
// operating regime the ILDG middleware status report highlights
// (running across unreliable sites) and the biggest scenario gap
// between the paper's single-healthy-site evaluation and a production
// federation. Every cell replays the multi-site busy week under the
// default fault regime (trace.DefaultFaultRegime): per-site machine
// crashes, staggered maintenance windows, kill-and-requeue victims by
// default, plus one 3-site cell set with the drain policy for the
// victim-policy comparison. Fault streams fork per cell from the
// replicate seed, and serial and parallel engines stay bit-identical
// (asserted by the golden test and the engine-identity suite).

// simFaultConfig maps a trace-level fault regime onto the engine's
// fault subsystem configuration.
func simFaultConfig(r trace.FaultRegime, seed uint64) sim.FaultConfig {
	return sim.FaultConfig{
		MTBF:          r.MTBF,
		MTTR:          r.MTTR,
		MaintPeriod:   r.MaintPeriod,
		MaintDuration: r.MaintDuration,
		MaintFraction: r.MaintFraction,
		Victim:        r.Victim,
		Seed:          seed,
	}
}

// FaultScenario is an n-site federation running the faulty busy week:
// the MultiSiteScenario environment plus the trace preset's fault
// regime with the given victim policy.
func FaultScenario(id string, nSites int, victim string) Scenario {
	sc := MultiSiteScenario(id, nSites, 0,
		func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} })
	sc.Trace = func(seed uint64, scale float64) (*trace.Trace, error) {
		return trace.Generate(scaleTraceCfg(trace.FaultyMultiSiteWeek(seed, nSites), scale))
	}
	regime := trace.DefaultFaultRegime()
	regime.Victim = victim
	sc.Faults = &regime
	return sc
}

// faultCells enumerates the fault experiment's federation axis: 1, 3
// and 6 sites under kill-and-requeue, plus the 3-site federation under
// drain for the victim-policy comparison.
func faultCells() []Scenario {
	return []Scenario{
		FaultScenario("fed1-faults", 1, sim.VictimRequeue),
		FaultScenario("fed3-faults", 3, sim.VictimRequeue),
		FaultScenario("fed6-faults", 6, sim.VictimRequeue),
		FaultScenario("fed3-drain", 3, sim.VictimDrain),
	}
}

func init() {
	register(Experiment{
		ID:    "faults",
		Title: "Fault & maintenance: 1/3/6-site federations under crashes and maintenance windows",
		Plan:  faultsPlan,
		Run:   runFaults,
	})
}

func faultsPlan(Options) Matrix {
	return Matrix{Scenarios: faultCells(), Policies: multiSitePolicies()}
}

func runFaults(opts Options) (*Output, error) {
	scenarios := faultCells()
	policies := multiSitePolicies()
	mr, err := faultsPlan(opts).Run(opts)
	if err != nil {
		return nil, err
	}

	out := &Output{
		ID:    "faults",
		Title: "Fault & maintenance: 1/3/6-site federations under crashes and maintenance windows",
	}
	var faultSums []metrics.FaultSummary
	for s, sc := range scenarios {
		plat, err := sc.Platform(opts.withDefaults().Scale)
		if err != nil {
			return nil, err
		}
		for p := range policies {
			reps := mr.Replicates(s, p)
			out.Names = append(out.Names, sc.ID+"/"+mr.PolicyNames[p])
			out.Summaries = append(out.Summaries, reps[0])
			out.Replicates = append(out.Replicates, reps)

			r0 := mr.At(s, p, 0).Result
			fs, err := metrics.SummarizeFaults(r0.Jobs, metrics.FaultStats{
				Crashes:         r0.Crashes,
				MaintWindows:    r0.MaintWindows,
				Kills:           r0.Kills,
				Requeues:        r0.Requeues,
				WorkLost:        r0.WorkLost,
				DownCoreMinutes: r0.DownCoreMinutes,
				CoreMinutes:     float64(plat.TotalCores()) * r0.Makespan,
			})
			if err != nil {
				return nil, err
			}
			faultSums = append(faultSums, fs)
			out.Notes = append(out.Notes, fmt.Sprintf(
				"%s/%s: availability %.2f%%, goodput %.2f%%, crashes %d, windows %d, kills %d, requeues %d",
				sc.ID, mr.PolicyNames[p],
				fs.AvailabilityPct, fs.GoodputPct, fs.Crashes, fs.MaintWindows, fs.Kills, fs.Requeues))
		}
	}
	annotateAmbiguity(out, mr)
	tbl, err := report.PaperTableCI(out.Title, out.Names, out.Replicates)
	if err != nil {
		return nil, err
	}
	ftbl, err := report.FaultTable(
		"Fault & maintenance — availability, goodput and churn (first replicate)",
		out.Names, faultSums)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, tbl, ftbl)
	annotateEngine(out, mr)
	return out, nil
}
