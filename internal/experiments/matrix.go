package experiments

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"netbatch/internal/cluster"
	"netbatch/internal/job"
	"netbatch/internal/metrics"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

// Scenario declaratively describes one simulated environment: how to
// synthesize its workload, build its platform, and configure the
// engine. Scenarios are pure descriptions — the matrix runner decides
// when (and on which worker) each one executes, and memoizes the
// expensive trace/platform construction across cells.
type Scenario struct {
	// ID labels the scenario in results and errors.
	ID string
	// Trace synthesizes the workload for one replication seed at the
	// given scale. Must be deterministic in (seed, scale).
	Trace func(seed uint64, scale float64) (*trace.Trace, error)
	// Platform builds the machine/pool model at the given scale. Must
	// be deterministic in scale; the built platform is read-only and is
	// shared by every cell of the scenario.
	Platform func(scale float64) (*cluster.Platform, error)
	// NewInitial constructs the virtual pool manager's initial
	// scheduler. Called once per cell: schedulers are stateful.
	NewInitial func() sched.InitialScheduler
	// Staleness is the §3.2.2 utilization-view propagation delay in
	// minutes (0 = live view).
	Staleness float64
	// Faults optionally enables the engine's fault & maintenance
	// subsystem under the given regime for every cell. The per-cell
	// fault stream seed forks from the replicate seed with a fixed
	// key, so replicates see independent fault sequences and results
	// stay coordinate-deterministic.
	Faults *trace.FaultRegime
	// Tune optionally adjusts the final engine config (ablation knobs
	// such as DisableSampling or QueueBeatsResume).
	Tune func(*sim.Config)
}

// faultSeedKey derives a cell's fault stream from its replicate seed
// without overlapping the trace or policy derivations.
const faultSeedKey = 0xFA017

// Matrix is a declarative (scenario × policy × seed) experiment plan.
// Run executes every cell on a bounded worker pool; results are
// identical regardless of worker count or scheduling order because each
// cell's randomness derives purely from its coordinates.
type Matrix struct {
	Scenarios []Scenario
	Policies  []PolicyFactory
	// Seeds are the per-replicate trace seeds. Leave empty to derive
	// them from Options.Seed/Options.Seeds via ReplicateSeeds.
	Seeds []uint64
}

// Cell names one matrix coordinate.
type Cell struct {
	// Scenario, Policy and Rep index into the matrix axes.
	Scenario, Policy, Rep int
	// Seed is the replicate's trace seed.
	Seed uint64
}

// CellResult is one completed cell.
type CellResult struct {
	Cell    Cell
	Summary metrics.Summary
	Result  *sim.Result
}

// MatrixResult holds every cell of a completed matrix in deterministic
// axis order (scenario-major, then policy, then replicate). Every
// cell's full *sim.Result (job records + series) stays live until the
// MatrixResult is dropped — the figure experiments need per-replicate
// Results — so very large seed counts at paper scale trade memory for
// replication; reduce per-cell data promptly if that becomes a limit.
type MatrixResult struct {
	// PolicyNames are the policy axis labels, in run order.
	PolicyNames []string
	// Seeds are the replicate seeds actually used.
	Seeds []uint64
	// Engine records which sim engine ran the cells ("" = serial
	// default). Reports use it to decide whether engine execution
	// counters are worth a table.
	Engine string

	nPol, nRep int
	cells      []CellResult
}

// At returns the cell at (scenario, policy, replicate).
func (r *MatrixResult) At(s, p, rep int) *CellResult {
	return &r.cells[(s*r.nPol+p)*r.nRep+rep]
}

// Replicates returns the per-seed summaries of one (scenario, policy)
// pair, in replicate order.
func (r *MatrixResult) Replicates(s, p int) []metrics.Summary {
	out := make([]metrics.Summary, r.nRep)
	for rep := 0; rep < r.nRep; rep++ {
		out[rep] = r.At(s, p, rep).Summary
	}
	return out
}

// AmbiguousCells counts cells whose run flagged an ambiguous
// cross-partition timestamp tie (see sim.Result.AmbiguousTies).
func (r *MatrixResult) AmbiguousCells() int {
	n := 0
	for i := range r.cells {
		if res := r.cells[i].Result; res != nil && res.AmbiguousTies() {
			n++
		}
	}
	return n
}

// ReplicateSeeds expands a base seed into n replication seeds. The
// first replicate keeps the base seed itself, so single-seed matrix
// runs reproduce the historical per-table results exactly; later
// replicates fork with keyed, order-independent derivation
// (stats.ForkSeed), so a replicate's stream never depends on how many
// cells ran before it or on which worker.
func ReplicateSeeds(base uint64, n int) []uint64 {
	if n < 1 {
		n = 1
	}
	seeds := make([]uint64, n)
	seeds[0] = base
	for r := 1; r < n; r++ {
		seeds[r] = stats.ForkSeed(base, uint64(r))
	}
	return seeds
}

// policySeed derives the policy RNG seed for a cell. The formula for
// policy index p matches the historical runStrategies derivation so
// seed-42 single-replicate results are unchanged.
func policySeed(seed uint64, p int) uint64 {
	return seed + uint64(p)*7919
}

// memo is a concurrency-safe build-once-per-key cache. Every caller of
// get blocks until the single builder for its key completes, so shared
// traces and platforms are constructed exactly once per matrix run.
type memo[K comparable, V any] struct {
	mu      sync.Mutex
	entries map[K]*memoEntry[V]
}

type memoEntry[V any] struct {
	once sync.Once
	val  V
	err  error
}

func (c *memo[K, V]) get(k K, build func() (V, error)) (V, error) {
	c.mu.Lock()
	if c.entries == nil {
		c.entries = make(map[K]*memoEntry[V])
	}
	e, ok := c.entries[k]
	if !ok {
		e = &memoEntry[V]{}
		c.entries[k] = e
	}
	c.mu.Unlock()
	e.once.Do(func() { e.val, e.err = build() })
	return e.val, e.err
}

// traceKey identifies a memoized trace: scenario × replicate.
type traceKey struct{ s, rep int }

// Run executes every cell of the matrix on a bounded worker pool of
// opts.Jobs goroutines (default runtime.NumCPU()). Execution order is
// unspecified, but the result is byte-identical to a serial run: trace
// generation and policy randomness are pure functions of the cell
// coordinates, and results land at fixed positions. Cancellation of
// opts.Context aborts queued cells immediately and in-flight
// simulations at their next cooperative poll.
func (m Matrix) Run(opts Options) (*MatrixResult, error) {
	opts = opts.withDefaults()
	if len(m.Scenarios) == 0 {
		return nil, fmt.Errorf("experiments: matrix has no scenarios")
	}
	if len(m.Policies) == 0 {
		return nil, fmt.Errorf("experiments: matrix has no policies")
	}
	seeds := m.Seeds
	if len(seeds) == 0 {
		seeds = ReplicateSeeds(opts.Seed, opts.Seeds)
	}
	res := &MatrixResult{
		Seeds:  seeds,
		Engine: opts.Engine,
		nPol:   len(m.Policies),
		nRep:   len(seeds),
	}
	for _, p := range m.Policies {
		res.PolicyNames = append(res.PolicyNames, p.Name)
	}
	n := len(m.Scenarios) * len(m.Policies) * len(seeds)
	res.cells = make([]CellResult, n)

	ctx := opts.Context
	var (
		plats  memo[int, *cluster.Platform]
		traces memo[traceKey, *trace.Trace]
	)
	runCell := func(i int) error {
		rep := i % res.nRep
		p := (i / res.nRep) % res.nPol
		s := i / (res.nRep * res.nPol)
		sc := &m.Scenarios[s]
		seed := seeds[rep]

		plat, err := plats.get(s, func() (*cluster.Platform, error) {
			return sc.Platform(opts.Scale)
		})
		if err != nil {
			return fmt.Errorf("experiments: scenario %s: platform: %w", sc.ID, err)
		}
		tr, err := traces.get(traceKey{s, rep}, func() (*trace.Trace, error) {
			return sc.Trace(seed, opts.Scale)
		})
		if err != nil {
			return fmt.Errorf("experiments: scenario %s seed %d: trace: %w", sc.ID, seed, err)
		}
		cfg := buildCellConfig(sc, m.Policies[p], p, seed, plat, opts)
		r, err := runCellSim(cfg, tr.Jobs, sc.ID, m.Policies[p].Name, p, rep, opts)
		if err != nil {
			return fmt.Errorf("experiments: scenario %s strategy %s seed %d: %w",
				sc.ID, m.Policies[p].Name, seed, err)
		}
		sum, err := metrics.Summarize(r.Jobs)
		if err != nil {
			return fmt.Errorf("experiments: scenario %s strategy %s seed %d: %w",
				sc.ID, m.Policies[p].Name, seed, err)
		}
		res.cells[i] = CellResult{
			Cell:    Cell{Scenario: s, Policy: p, Rep: rep, Seed: seed},
			Summary: sum,
			Result:  r,
		}
		return nil
	}

	workers := opts.Jobs
	if workers > n {
		workers = n
	}
	errs := make([]error, n)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				errs[i] = runCell(i)
			}
		}()
	}
feed:
	for i := 0; i < n; i++ {
		select {
		case idx <- i:
		case <-ctx.Done():
			break feed
		}
	}
	close(idx)
	wg.Wait()
	// Report the first failure in deterministic cell order so the error
	// surfaced does not depend on worker scheduling.
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("experiments: matrix canceled: %w", err)
	}
	return res, nil
}

// buildCellConfig assembles one cell's engine configuration from its
// coordinates: fresh scheduler/policy instances (both are stateful),
// coordinate-derived policy and fault seeds, scenario knobs. It is the
// single config assembly point shared by the matrix runner and the
// replay-bisect tooling (CellSim), so a rebuilt cell is guaranteed to
// hash-match the snapshots the original run emitted.
func buildCellConfig(sc *Scenario, pf PolicyFactory, p int, seed uint64, plat *cluster.Platform, opts Options) sim.Config {
	cfg := sim.Config{
		Platform:           plat,
		Initial:            sc.NewInitial(),
		Policy:             pf.New(policySeed(seed, p)),
		Engine:             opts.Engine,
		RescheduleOverhead: opts.Overhead,
		UtilStaleness:      sc.Staleness,
		CheckConservation:  true,
		Context:            opts.Context,
		Metrics:            opts.Metrics,
	}
	if sc.Faults != nil {
		cfg.Faults = simFaultConfig(*sc.Faults, stats.ForkSeed(seed, faultSeedKey))
	}
	if sc.Tune != nil {
		sc.Tune(&cfg)
	}
	return cfg
}

// cellCheckpointPrefix names a cell's checkpoint files inside the
// checkpoint directory; each emitted snapshot appends its zero-padded
// simulated time, so filenames sort chronologically and any two of one
// cell's files feed replay-bisect directly.
func cellCheckpointPrefix(dir, scenarioID string, p, rep int) string {
	safe := strings.NewReplacer("/", "_", string(filepath.Separator), "_", ":", "_").Replace(scenarioID)
	return filepath.Join(dir, fmt.Sprintf("%s_p%d_r%d", safe, p, rep))
}

// cellCheckpointFiles lists a cell's checkpoint files — full (.ckpt)
// and delta (.dckpt) — sorted chronologically. The zero-padded time in
// the name sorts lexically, and each emitted time appears exactly once,
// so mixing the two extensions cannot reorder the chain.
func cellCheckpointFiles(prefix string) []string {
	full, _ := filepath.Glob(prefix + "_t*.ckpt")
	delta, _ := filepath.Glob(prefix + "_t*.dckpt")
	files := append(full, delta...)
	sort.Strings(files)
	return files
}

// latestCheckpoint returns the newest checkpoint file of a cell, or ""
// when none exists.
func latestCheckpoint(prefix string) string {
	files := cellCheckpointFiles(prefix)
	if len(files) == 0 {
		return ""
	}
	return files[len(files)-1]
}

// LoadCheckpoint reads one checkpoint file and returns full snapshot
// bytes ready for sim resume or replay-bisect. A delta file (.dckpt)
// is reconstructed from its keyframe chain: the loader walks the
// cell's sibling files back to the nearest full snapshot and applies
// every delta in emission order, with each step's base CRC guarding
// against gaps or cross-run mixing. Failures along the chain wrap
// sim.ErrSnapshotMismatch.
func LoadCheckpoint(path string) ([]byte, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	if !sim.IsDeltaSnapshot(data) {
		return data, nil
	}
	cut := strings.LastIndex(path, "_t")
	if cut < 0 {
		return nil, fmt.Errorf("%w: delta snapshot %s has no _t<time> chain name", sim.ErrSnapshotMismatch, path)
	}
	prefix := path[:cut]
	files := cellCheckpointFiles(prefix)
	at := sort.SearchStrings(files, path)
	if at == len(files) || files[at] != path {
		return nil, fmt.Errorf("%w: delta snapshot %s not found among its cell's files", sim.ErrSnapshotMismatch, path)
	}
	// Walk back to the nearest full snapshot, then replay the deltas
	// forward from it.
	key := -1
	for i := at - 1; i >= 0; i-- {
		if strings.HasSuffix(files[i], ".ckpt") && !strings.HasSuffix(files[i], ".dckpt") {
			key = i
			break
		}
	}
	if key < 0 {
		return nil, fmt.Errorf("%w: delta snapshot %s has no preceding keyframe", sim.ErrSnapshotMismatch, path)
	}
	base, err := os.ReadFile(files[key])
	if err != nil {
		return nil, err
	}
	for i := key + 1; i <= at; i++ {
		delta, err := os.ReadFile(files[i])
		if err != nil {
			return nil, err
		}
		if base, err = sim.ApplySnapshotDelta(base, delta); err != nil {
			return nil, fmt.Errorf("%s: %w", files[i], err)
		}
	}
	return base, nil
}

// runCellSim executes one cell's simulation, wiring in per-cell
// checkpoint emission and resume when Options.CheckpointDir is set.
// Snapshots land atomically as <cell>_t<time>.ckpt — the history is
// kept, both for replay-bisect (which needs two boundaries of one
// recorded run) and resumable interrupted runs. With Options.Resume the
// cell continues from its newest checkpoint and re-simulates only the
// tail. A checkpoint that cannot be resumed (corrupted, or from a
// different build, configuration or engine) falls back to a fresh run
// with a Logf warning — never to a wrong result, since resume
// bit-identity is the engine's contract and mismatches are rejected up
// front.
func runCellSim(cfg sim.Config, specs []job.Spec, scenarioID, policyName string, p, rep int, opts Options) (*sim.Result, error) {
	done := cellTelemetry(&cfg, specs, scenarioID, policyName, rep, opts)
	r, err := runCellSimCheckpointed(cfg, specs, scenarioID, policyName, p, rep, opts)
	done(r, err)
	return r, err
}

// runCellSimCheckpointed is runCellSim's checkpoint-handling core; the
// wrapper above brackets it with telemetry so every exit path — fresh
// run, resume, or fallback — emits exactly one cell_done record.
func runCellSimCheckpointed(cfg sim.Config, specs []job.Spec, scenarioID, policyName string, p, rep int, opts Options) (*sim.Result, error) {
	logf := opts.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if opts.CheckpointDir == "" {
		return sim.Run(cfg, specs)
	}
	if err := os.MkdirAll(opts.CheckpointDir, 0o755); err != nil {
		return nil, fmt.Errorf("checkpoint dir: %w", err)
	}
	prefix := cellCheckpointPrefix(opts.CheckpointDir, scenarioID, p, rep)
	every := opts.CheckpointEvery
	if every <= 0 {
		every = 1440 // one simulated day
	}
	cfg.CheckpointEvery = every
	cfg.CheckpointKeyframe = opts.CheckpointKeyframe
	cfg.CheckpointLabel = fmt.Sprintf("%s/%s/%d", scenarioID, policyName, rep)
	cfg.CheckpointSink = func(ck sim.Checkpoint) error {
		ext := ".ckpt"
		if ck.Delta {
			ext = ".dckpt"
		}
		path := fmt.Sprintf("%s_t%014.1f%s", prefix, ck.Time, ext)
		tmp := path + ".tmp"
		if err := os.WriteFile(tmp, ck.Data, 0o644); err != nil {
			return err
		}
		return os.Rename(tmp, path)
	}
	if opts.Resume {
		if path := latestCheckpoint(prefix); path != "" {
			r, err := resumeCell(cfg, specs, path)
			if err == nil {
				return r, nil
			}
			if !errors.Is(err, sim.ErrSnapshotMismatch) {
				return nil, err
			}
			logf("experiments: cell %s: checkpoint %s not resumable (%v); restarting from t=0", cfg.CheckpointLabel, path, err)
			cfg.ResumeFrom = nil
		}
	}
	return sim.Run(cfg, specs)
}

// resumeCell loads one checkpoint file — reconstructing a delta chain
// when needed — and resumes the cell from it.
func resumeCell(cfg sim.Config, specs []job.Spec, path string) (*sim.Result, error) {
	data, err := LoadCheckpoint(path)
	if err != nil {
		return nil, err
	}
	cfg.ResumeFrom = data
	return sim.Run(cfg, specs)
}

// RunCell executes a single (scenario, policy) cell at replicate 0
// through the shared matrix runner. Benchmarks and one-off probes use
// it instead of hand-assembling sim.Config.
func RunCell(sc Scenario, pf PolicyFactory, opts Options) (*CellResult, error) {
	mr, err := Matrix{Scenarios: []Scenario{sc}, Policies: []PolicyFactory{pf}}.Run(opts)
	if err != nil {
		return nil, err
	}
	return mr.At(0, 0, 0), nil
}
