package experiments

// Matrix-runner contract tests: parallel execution must be
// byte-identical to serial execution (per-cell RNG streams are pure
// functions of the cell coordinates, never of worker scheduling),
// replication seeds must be stable, and cancellation must abort
// promptly. Run under -race these also prove the worker pool and the
// trace/platform memoization are data-race free.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netbatch/internal/sched"
)

// matrixOpts shrinks the workload so a full matrix runs in well under a
// second per cell.
func matrixOpts(jobs int) Options {
	return Options{Seed: 42, Scale: 0.05, Jobs: jobs}
}

// testMatrix covers both axes that could leak scheduling order: a
// stale-view scenario (snapshot events) and randomized policies.
func testMatrix() Matrix {
	return Matrix{
		Scenarios: []Scenario{
			WeekScenario("normal", 1.0, 0, func() sched.InitialScheduler { return sched.NewRoundRobin() }),
			WeekScenario("stale", 0.5, 30, func() sched.InitialScheduler { return sched.NewUtilizationBased() }),
		},
		Policies: susPolicies(),
	}
}

// fingerprint serializes everything observable about a matrix result.
func fingerprint(t *testing.T, mr *MatrixResult) []byte {
	t.Helper()
	var buf bytes.Buffer
	enc := json.NewEncoder(&buf)
	if err := enc.Encode(mr.PolicyNames); err != nil {
		t.Fatal(err)
	}
	if err := enc.Encode(mr.Seeds); err != nil {
		t.Fatal(err)
	}
	for i := range mr.cells {
		c := &mr.cells[i]
		if err := enc.Encode(c.Cell); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(c.Summary); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(c.Result.Util.Points()); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(c.Result.Suspended.Points()); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode(c.Result.Waiting.Points()); err != nil {
			t.Fatal(err)
		}
		if err := enc.Encode([]int64{c.Result.Preemptions, c.Result.Restarts,
			c.Result.Migrations, c.Result.WaitMoves}); err != nil {
			t.Fatal(err)
		}
	}
	return buf.Bytes()
}

func TestMatrixParallelIdenticalToSerial(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix run")
	}
	m := testMatrix()
	serialOpts := matrixOpts(1)
	serialOpts.Seeds = 2
	serial, err := m.Run(serialOpts)
	if err != nil {
		t.Fatal(err)
	}
	parallelOpts := matrixOpts(8)
	parallelOpts.Seeds = 2
	parallel, err := m.Run(parallelOpts)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(fingerprint(t, serial), fingerprint(t, parallel)) {
		t.Fatal("parallel matrix output differs from serial")
	}
}

func TestMatrixSeedStreamsIndependentOfScheduling(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix run")
	}
	// Running a replicate alone must give the same result as running it
	// inside a larger replicated matrix: per-seed streams cannot depend
	// on which cells ran before them.
	m := Matrix{
		Scenarios: []Scenario{WeekScenario("normal", 1.0, 0,
			func() sched.InitialScheduler { return sched.NewRoundRobin() })},
		Policies: susPolicies(),
	}
	multiOpts := matrixOpts(4)
	multiOpts.Seeds = 3
	multi, err := m.Run(multiOpts)
	if err != nil {
		t.Fatal(err)
	}
	for rep := 0; rep < 3; rep++ {
		alone := m
		alone.Seeds = []uint64{multi.Seeds[rep]}
		single, err := alone.Run(matrixOpts(2))
		if err != nil {
			t.Fatal(err)
		}
		for p := range m.Policies {
			if single.At(0, p, 0).Summary != multi.At(0, p, rep).Summary {
				t.Fatalf("replicate %d policy %d differs when run alone", rep, p)
			}
		}
	}
}

func TestReplicateSeeds(t *testing.T) {
	seeds := ReplicateSeeds(42, 4)
	if seeds[0] != 42 {
		t.Fatalf("first replicate seed = %d, want the base seed", seeds[0])
	}
	seen := map[uint64]bool{}
	for _, s := range seeds {
		if seen[s] {
			t.Fatalf("duplicate replicate seed %d", s)
		}
		seen[s] = true
	}
	again := ReplicateSeeds(42, 4)
	for i := range seeds {
		if seeds[i] != again[i] {
			t.Fatal("ReplicateSeeds not deterministic")
		}
	}
	if got := ReplicateSeeds(42, 0); len(got) != 1 {
		t.Fatalf("n=0 should clamp to one seed, got %d", len(got))
	}
}

func TestMatrixCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	opts := matrixOpts(2)
	opts.Context = ctx
	_, err := testMatrix().Run(opts)
	if err == nil {
		t.Fatal("canceled matrix run should fail")
	}
	if !strings.Contains(err.Error(), "cancel") {
		t.Fatalf("err = %v, want cancellation", err)
	}
}

func TestMatrixValidation(t *testing.T) {
	if _, err := (Matrix{Policies: susPolicies()}).Run(matrixOpts(1)); err == nil {
		t.Fatal("matrix without scenarios should fail")
	}
	m := Matrix{Scenarios: []Scenario{WeekScenario("x", 1.0, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() })}}
	if _, err := m.Run(matrixOpts(1)); err == nil {
		t.Fatal("matrix without policies should fail")
	}
}

func TestMultiSeedTableReportsCI(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	e, err := Get("table1")
	if err != nil {
		t.Fatal(err)
	}
	opts := matrixOpts(0)
	opts.Seeds = 3
	out, err := e.Run(opts)
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Replicates) != len(out.Names) {
		t.Fatalf("replicate sets = %d, want %d", len(out.Replicates), len(out.Names))
	}
	for i, reps := range out.Replicates {
		if len(reps) != 3 {
			t.Fatalf("strategy %s has %d replicates, want 3", out.Names[i], len(reps))
		}
		if out.Summaries[i] != reps[0] {
			t.Fatalf("strategy %s Summaries[%d] is not replicate 0", out.Names[i], i)
		}
	}
	var sb strings.Builder
	if err := out.Tables[0].Render(&sb); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(sb.String(), "±") {
		t.Fatalf("multi-seed table lacks ± CI cells:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "over 3 seeds") {
		t.Fatalf("multi-seed table lacks replication note:\n%s", sb.String())
	}
}

func TestRunCellMatchesMatrix(t *testing.T) {
	if testing.Short() {
		t.Skip("full matrix run")
	}
	sc := WeekScenario("normal", 1.0, 0, func() sched.InitialScheduler { return sched.NewRoundRobin() })
	pols := susPolicies()
	mr, err := Matrix{Scenarios: []Scenario{sc}, Policies: pols}.Run(matrixOpts(4))
	if err != nil {
		t.Fatal(err)
	}
	cell, err := RunCell(sc, pols[0], matrixOpts(1))
	if err != nil {
		t.Fatal(err)
	}
	if cell.Summary != mr.At(0, 0, 0).Summary {
		t.Fatal("RunCell result differs from the same cell in a full matrix")
	}
}

// TestMatrixCheckpointResume pins the per-cell checkpoint/resume
// plumbing: a checkpointed run writes one snapshot file per cell, a
// resumed run continues from those files, and both produce results
// byte-identical to a run that never checkpointed. A corrupted
// checkpoint must fall back to a fresh run (with a warning), not to a
// wrong result.
func TestMatrixCheckpointResume(t *testing.T) {
	m := testMatrix()
	plain, err := m.Run(matrixOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, plain)

	dir := t.TempDir()
	ckOpts := matrixOpts(2)
	ckOpts.CheckpointDir = dir
	ckOpts.CheckpointEvery = 500 // well under the busy week's makespan
	ck, err := m.Run(ckOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, ck); !bytes.Equal(got, want) {
		t.Fatal("checkpointing perturbed matrix results")
	}
	// Every cell keeps a chronological checkpoint history (any two of a
	// cell's files feed replay-bisect).
	for s := range m.Scenarios {
		for p := range m.Policies {
			prefix := cellCheckpointPrefix(dir, m.Scenarios[s].ID, p, 0)
			got, err := filepath.Glob(prefix + "_t*.ckpt")
			if err != nil {
				t.Fatal(err)
			}
			if len(got) == 0 {
				t.Fatalf("cell %s/p%d has no checkpoint files", m.Scenarios[s].ID, p)
			}
		}
	}

	var warnings []string
	resOpts := ckOpts
	resOpts.Resume = true
	resOpts.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	resumed, err := m.Run(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resumed matrix results differ from straight run")
	}
	if len(warnings) != 0 {
		t.Fatalf("clean resume produced warnings: %v", warnings)
	}

	// Corrupt one cell's newest checkpoint (the one resume picks): the
	// run must fall back to a fresh simulation for that cell, warn, and
	// still match.
	victim := latestCheckpoint(cellCheckpointPrefix(dir, m.Scenarios[0].ID, 0, 0))
	if victim == "" {
		t.Fatal("no checkpoint to corrupt")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x55
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	warnings = nil
	fell, err := m.Run(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, fell); !bytes.Equal(got, want) {
		t.Fatal("fallback-after-corruption results differ from straight run")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "not resumable") {
		t.Fatalf("expected one fallback warning, got %v", warnings)
	}
}

// TestMatrixCheckpointKeyframes pins the delta-checkpoint file plumbing:
// with CheckpointKeyframe set, cells write mixed .ckpt/.dckpt streams,
// LoadCheckpoint reconstructs any member from its keyframe chain, and a
// resume whose newest file is a delta still reproduces the straight run
// byte-identically. A corrupted delta falls back to a fresh run.
func TestMatrixCheckpointKeyframes(t *testing.T) {
	m := testMatrix()
	plain, err := m.Run(matrixOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, plain)

	dir := t.TempDir()
	ckOpts := matrixOpts(2)
	ckOpts.CheckpointDir = dir
	ckOpts.CheckpointEvery = 400 // several marks per cell
	ckOpts.CheckpointKeyframe = 3
	ck, err := m.Run(ckOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, ck); !bytes.Equal(got, want) {
		t.Fatal("keyframed checkpointing perturbed matrix results")
	}
	deltas := 0
	for s := range m.Scenarios {
		for p := range m.Policies {
			prefix := cellCheckpointPrefix(dir, m.Scenarios[s].ID, p, 0)
			files := cellCheckpointFiles(prefix)
			if len(files) == 0 {
				t.Fatalf("cell %s/p%d has no checkpoint files", m.Scenarios[s].ID, p)
			}
			if strings.HasSuffix(files[0], ".dckpt") {
				t.Fatalf("cell %s/p%d starts with a delta: %s", m.Scenarios[s].ID, p, files[0])
			}
			for _, f := range files {
				if !strings.HasSuffix(f, ".dckpt") {
					continue
				}
				deltas++
				// Every delta file must reconstruct through its chain.
				if _, err := LoadCheckpoint(f); err != nil {
					t.Fatalf("LoadCheckpoint(%s): %v", f, err)
				}
			}
		}
	}
	if deltas == 0 {
		t.Fatal("keyframed matrix run wrote no .dckpt files; lower the cadence")
	}

	var warnings []string
	resOpts := ckOpts
	resOpts.Resume = true
	resOpts.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	resumed, err := m.Run(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resume through delta chains differs from straight run")
	}
	if len(warnings) != 0 {
		t.Fatalf("clean keyframed resume produced warnings: %v", warnings)
	}

	// Corrupt the newest file of a cell that ends on a delta: resume
	// must fall back, warn, and still match.
	victim := ""
	for s := range m.Scenarios {
		for p := range m.Policies {
			newest := latestCheckpoint(cellCheckpointPrefix(dir, m.Scenarios[s].ID, p, 0))
			if strings.HasSuffix(newest, ".dckpt") {
				victim = newest
			}
		}
	}
	if victim == "" {
		t.Skip("no cell's newest checkpoint is a delta at this cadence")
	}
	data, err := os.ReadFile(victim)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0x55
	if err := os.WriteFile(victim, data, 0o644); err != nil {
		t.Fatal(err)
	}
	warnings = nil
	fell, err := m.Run(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, fell); !bytes.Equal(got, want) {
		t.Fatal("fallback after delta corruption differs from straight run")
	}
	if len(warnings) != 1 || !strings.Contains(warnings[0], "not resumable") {
		t.Fatalf("expected one fallback warning, got %v", warnings)
	}
}

// TestMatrixCheckpointKeyframeCadenceChange pins delta-chain resume
// across a keyframe-cadence change: a run checkpointed with one
// cadence is interrupted (its newer marks dropped), then resumed with
// a different cadence. The loader must reconstruct the pre-change
// chain for the resume point, the resumed run must open its own chain
// with a fresh keyframe (its deltas must never chain across the
// cadence boundary into the old run's emissions), and the final
// results must be byte-identical to the straight run — a broken chain
// may only ever mean a warned fallback, never an error or a silently
// wrong result.
func TestMatrixCheckpointKeyframeCadenceChange(t *testing.T) {
	m := testMatrix()
	plain, err := m.Run(matrixOpts(2))
	if err != nil {
		t.Fatal(err)
	}
	want := fingerprint(t, plain)

	dir := t.TempDir()
	ckOpts := matrixOpts(2)
	ckOpts.CheckpointDir = dir
	ckOpts.CheckpointEvery = 400 // several marks per cell
	ckOpts.CheckpointKeyframe = 3
	if _, err := m.Run(ckOpts); err != nil {
		t.Fatal(err)
	}

	// Interrupt: keep only the first two marks of every cell, so the
	// resume point sits mid-run (and, with keyframe 3, is usually a
	// delta that must reconstruct through the old chain).
	kept := 0
	for s := range m.Scenarios {
		for p := range m.Policies {
			files := cellCheckpointFiles(cellCheckpointPrefix(dir, m.Scenarios[s].ID, p, 0))
			if len(files) < 3 {
				t.Fatalf("cell %s/p%d wrote %d marks; need at least 3 to interrupt mid-run",
					m.Scenarios[s].ID, p, len(files))
			}
			for _, f := range files[2:] {
				if err := os.Remove(f); err != nil {
					t.Fatal(err)
				}
			}
			kept += 2
		}
	}

	var warnings []string
	resOpts := ckOpts
	resOpts.Resume = true
	resOpts.CheckpointKeyframe = 5 // cadence change across the resume
	resOpts.Logf = func(format string, args ...any) {
		warnings = append(warnings, fmt.Sprintf(format, args...))
	}
	resumed, err := m.Run(resOpts)
	if err != nil {
		t.Fatal(err)
	}
	if got := fingerprint(t, resumed); !bytes.Equal(got, want) {
		t.Fatal("resume across keyframe-cadence change differs from straight run")
	}
	if len(warnings) != 0 {
		t.Fatalf("clean cadence-change resume produced warnings: %v", warnings)
	}

	// The mixed directory — old cadence-3 prefix, new cadence-5 tail —
	// must stay fully loadable file by file, and the resumed tail must
	// actually have re-emitted marks, opening with a full keyframe.
	total, firstNew := 0, 0
	for s := range m.Scenarios {
		for p := range m.Policies {
			files := cellCheckpointFiles(cellCheckpointPrefix(dir, m.Scenarios[s].ID, p, 0))
			if len(files) <= 2 {
				t.Fatalf("cell %s/p%d re-emitted no marks after the interrupt", m.Scenarios[s].ID, p)
			}
			if strings.HasSuffix(files[2], ".dckpt") {
				t.Fatalf("cell %s/p%d opened its post-resume chain with a delta: %s",
					m.Scenarios[s].ID, p, files[2])
			}
			firstNew++
			for _, f := range files {
				if _, err := LoadCheckpoint(f); err != nil {
					t.Fatalf("LoadCheckpoint(%s): %v", f, err)
				}
				total++
			}
		}
	}
	if total <= kept || firstNew == 0 {
		t.Fatalf("cadence-change resume exercised nothing: %d files total, %d kept", total, kept)
	}
}
