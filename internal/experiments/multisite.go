package experiments

import (
	"fmt"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/sim"
	"netbatch/internal/trace"
)

// Multi-site federation scenarios: the production NetBatch runs pools
// "distributed globally at dozens of data centers" (§1) while the
// paper's evaluation emulates one site (§3.1). These cells scale the
// busy-week environment out to N-site federations with inter-site
// delay, comparing site-selector policies and rescheduling strategies
// under the generalized staleness constraint (§3.2.2): a remote site's
// utilization is only visible RTT minutes late, and sending a job (or
// a rescheduled restart) across sites pays that delay for real.

// multiSiteRTT builds the federation's delay matrix: 5 minutes to a
// neighboring site, +5 per additional hop (cluster.MetroRTT), so a
// 6-site federation spans 5–25 minutes — the same order as the paper's
// 30-minute staleness knob, enough for the latency/load trade-off to
// bind.
func multiSiteRTT(nSites int) [][]float64 {
	return cluster.MetroRTT(nSites, 5, 5)
}

// multiSiteRegions names the federation's sites.
func multiSiteRegions(nSites int) []string {
	out := make([]string, nSites)
	for i := range out {
		out[i] = fmt.Sprintf("site-%c", 'A'+i)
	}
	return out
}

// MultiSiteScenario is an n-site federation running the multi-site
// busy week: per-site 7-pool platforms (cluster.SiteNetBatchConfig)
// joined by a metro delay matrix, scheduled by the two-level federated
// scheduler — the given site selector over per-site round-robin, the
// production default within a site.
func MultiSiteScenario(id string, nSites int, staleness float64, newSelector func() sched.SiteSelector) Scenario {
	return Scenario{
		ID: id,
		Trace: func(seed uint64, scale float64) (*trace.Trace, error) {
			return trace.Generate(scaleTraceCfg(trace.MultiSiteWeek(seed, nSites), scale))
		},
		Platform: func(scale float64) (*cluster.Platform, error) {
			perSite := cluster.SiteNetBatchConfig()
			perSite.Scale = scale
			return cluster.NewFederationPlatform(cluster.FederationConfig{
				Regions: multiSiteRegions(nSites),
				PerSite: perSite,
				RTT:     multiSiteRTT(nSites),
			})
		},
		NewInitial: func() sched.InitialScheduler {
			return sched.NewFederated(newSelector(), func() sched.InitialScheduler {
				return sched.NewRoundRobin()
			})
		},
		Staleness: staleness,
	}
}

// multiSiteYearScale shrinks the year6 bench family on top of the
// requested scale: a simulated year on the full 6-site federation is
// ~12M jobs, and the ROADMAP's single-digit-second target is chased
// at a reduced scale that keeps per-pool load — and thus decision
// density per simulated minute — unchanged.
const multiSiteYearScale = 0.25

// MultiSiteYearScenario is the year-scale federation environment: the
// MultiSiteYear trace (recurring auto bursts over a 500,000-minute
// horizon) on the same per-site platforms and metro delay matrix as
// MultiSiteScenario, shrunk by multiSiteYearScale on top of the
// requested scale. Sampling runs on an hourly grid instead of the
// per-minute default: inter-site view ageing requires sampling, but
// this family exists to measure engine throughput over a simulated
// year, and half a million per-minute ticks would time the sampler
// instead of the engine.
func MultiSiteYearScenario(id string, nSites int, newSelector func() sched.SiteSelector) Scenario {
	return Scenario{
		ID: id,
		Trace: func(seed uint64, scale float64) (*trace.Trace, error) {
			return trace.Generate(scaleTraceCfg(trace.MultiSiteYear(seed, nSites), scale*multiSiteYearScale))
		},
		Platform: func(scale float64) (*cluster.Platform, error) {
			perSite := cluster.SiteNetBatchConfig()
			perSite.Scale = scale * multiSiteYearScale
			return cluster.NewFederationPlatform(cluster.FederationConfig{
				Regions: multiSiteRegions(nSites),
				PerSite: perSite,
				RTT:     multiSiteRTT(nSites),
			})
		},
		NewInitial: func() sched.InitialScheduler {
			return sched.NewFederated(newSelector(), func() sched.InitialScheduler {
				return sched.NewRoundRobin()
			})
		},
		Tune: func(cfg *sim.Config) { cfg.SampleEvery = 60 },
	}
}

// multiSiteCells enumerates the federation axis: the single-site
// baseline, the three site selectors on a 3-site federation, and the
// latency-penalized selector stretched to 6 sites.
func multiSiteCells() []struct {
	scenario Scenario
	nSites   int
} {
	locality := func() sched.SiteSelector { return sched.LocalityFirst{} }
	leastUtil := func() sched.SiteSelector { return sched.LeastUtilizedSite{} }
	latency := func() sched.SiteSelector { return sched.LatencyPenalizedUtil{} }
	return []struct {
		scenario Scenario
		nSites   int
	}{
		{MultiSiteScenario("fed1", 1, 0, locality), 1},
		{MultiSiteScenario("fed3-locality", 3, 0, locality), 3},
		{MultiSiteScenario("fed3-least-util", 3, 0, leastUtil), 3},
		{MultiSiteScenario("fed3-latency", 3, 0, latency), 3},
		{MultiSiteScenario("fed6-latency", 6, 0, latency), 6},
	}
}

func multiSitePolicies() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
		{Name: "ResSusWaitUtil", New: func(uint64) core.Policy { return core.NewResSusWaitUtil() }},
		{Name: "ResSusWaitLatency", New: func(uint64) core.Policy { return core.NewResSusWaitLatency() }},
	}
}

func init() {
	register(Experiment{
		ID:    "multisite",
		Title: "Multi-site federation: single-site vs 3-site vs 6-site under latency-aware scheduling",
		Plan:  multiSitePlan,
		Run:   runMultiSite,
	})
}

func multiSitePlan(Options) Matrix {
	cells := multiSiteCells()
	scenarios := make([]Scenario, len(cells))
	for i, c := range cells {
		scenarios[i] = c.scenario
	}
	return Matrix{Scenarios: scenarios, Policies: multiSitePolicies()}
}

func runMultiSite(opts Options) (*Output, error) {
	cells := multiSiteCells()
	policies := multiSitePolicies()
	mr, err := multiSitePlan(opts).Run(opts)
	if err != nil {
		return nil, err
	}

	// Flatten the (federation × policy) matrix into one row per cell.
	out := &Output{
		ID:    "multisite",
		Title: "Multi-site federation: single-site vs 3-site vs 6-site under latency-aware scheduling",
	}
	for s, c := range cells {
		for p := range policies {
			reps := mr.Replicates(s, p)
			out.Names = append(out.Names, c.scenario.ID+"/"+mr.PolicyNames[p])
			out.Summaries = append(out.Summaries, reps[0])
			out.Replicates = append(out.Replicates, reps)
		}
	}
	annotateAmbiguity(out, mr)
	tbl, err := report.PaperTableCI(out.Title, out.Names, out.Replicates)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, tbl)

	// Per-site breakdowns for the multi-site federations, first
	// replicate (the site axis is deterministic per seed).
	for s, c := range cells {
		if c.nSites <= 1 {
			continue
		}
		plat, err := c.scenario.Platform(opts.withDefaults().Scale)
		if err != nil {
			return nil, err
		}
		perStrategy := make([][]metrics.SiteSummary, len(policies))
		for p := range policies {
			cell := mr.At(s, p, 0)
			sums, err := metrics.SummarizeSites(cell.Result.Jobs, plat.SiteOf, plat.NumSites())
			if err != nil {
				return nil, err
			}
			perStrategy[p] = sums
			out.Notes = append(out.Notes, fmt.Sprintf(
				"%s/%s: cross-site submits %d, cross-site moves %d, wait moves %d",
				c.scenario.ID, mr.PolicyNames[p],
				cell.Result.CrossSiteSubmits, cell.Result.CrossSiteMoves, cell.Result.WaitMoves))
		}
		st, err := report.SiteTable(
			fmt.Sprintf("%s — per-site breakdown", c.scenario.ID),
			mr.PolicyNames, multiSiteRegions(c.nSites), perStrategy)
		if err != nil {
			return nil, err
		}
		out.Tables = append(out.Tables, st)
	}
	annotateEngine(out, mr)
	return out, nil
}
