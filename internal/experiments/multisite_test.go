package experiments

import (
	"strings"
	"testing"

	"netbatch/internal/cluster"
	"netbatch/internal/trace"
)

// renderOutput flattens an experiment's tables and notes into one
// string, mirroring cmd/experiments rendering.
func renderOutput(t *testing.T, out *Output) string {
	t.Helper()
	var sb strings.Builder
	for _, tbl := range out.Tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		sb.WriteString("\n")
	}
	for _, note := range out.Notes {
		sb.WriteString("note: " + note + "\n")
	}
	return sb.String()
}

// TestMultiSitePresetMatchesPlatform pins the cross-package contract
// between trace.MultiSiteWeek's hard-coded site layout and the
// platform cluster.SiteNetBatchConfig actually builds: pool count and
// core count per site must agree, or MultiSiteScenario's job site
// tags silently mis-align with the platform's site boundaries.
func TestMultiSitePresetMatchesPlatform(t *testing.T) {
	per := cluster.SiteNetBatchConfig()
	if got := per.PoolsPerSite(); got != trace.PoolsPerSite {
		t.Fatalf("cluster.SiteNetBatchConfig has %d pools/site, trace.PoolsPerSite = %d",
			got, trace.PoolsPerSite)
	}
	plat, err := cluster.NewFederationPlatform(cluster.FederationConfig{
		Regions: []string{"A"},
		PerSite: per,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := plat.Site(0).Cores; got != trace.SitePoolCores {
		t.Fatalf("built site has %d cores, trace.SitePoolCores = %d", got, trace.SitePoolCores)
	}
	// And the preset's pool universe must match an n-site federation.
	cfg := trace.MultiSiteWeek(42, 3)
	if cfg.NumPools != 3*per.PoolsPerSite() {
		t.Fatalf("MultiSiteWeek(3) spans %d pools, platform has %d",
			cfg.NumPools, 3*per.PoolsPerSite())
	}
}

func TestMultiSiteShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	e, err := Get("multisite")
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(Options{Seed: 42, Scale: 0.05})
	if err != nil {
		t.Fatal(err)
	}
	// 5 federations × 3 policies.
	if len(out.Names) != 15 || len(out.Summaries) != 15 {
		t.Fatalf("got %d cells, want 15", len(out.Names))
	}
	for i, s := range out.Summaries {
		if err := s.CheckComponents(); err != nil {
			t.Errorf("%s: %v", out.Names[i], err)
		}
	}
	// One comparison table plus one per-site breakdown per multi-site
	// federation (fed3 ×3 selectors + fed6).
	if len(out.Tables) != 5 {
		t.Fatalf("got %d tables, want 5", len(out.Tables))
	}
	rendered := renderOutput(t, out)
	// The single-site baseline never crosses sites; the federations do.
	if !strings.Contains(rendered, "fed3-locality/NoRes: cross-site submits") {
		t.Error("missing cross-site counters in notes")
	}
	for _, note := range out.Notes {
		if strings.HasPrefix(note, "fed1/") {
			t.Errorf("single-site federation should emit no site notes: %q", note)
		}
	}
	// Rescheduling strategies must beat NoRes on suspended-job
	// completion time in every federation (the paper's core result
	// carries over to the multi-site setting).
	idx := byName(t, out)
	for _, fed := range []string{"fed1", "fed3-locality", "fed3-least-util", "fed3-latency", "fed6-latency"} {
		noRes := out.Summaries[idx[fed+"/NoRes"]]
		waitUtil := out.Summaries[idx[fed+"/ResSusWaitUtil"]]
		if waitUtil.AvgCTSuspended >= noRes.AvgCTSuspended {
			t.Errorf("%s: ResSusWaitUtil AvgCT(susp) %.0f >= NoRes %.0f",
				fed, waitUtil.AvgCTSuspended, noRes.AvgCTSuspended)
		}
	}
}

func TestMultiSiteDeterministicSerialVsParallel(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	e, err := Get("multisite")
	if err != nil {
		t.Fatal(err)
	}
	serial, err := e.Run(Options{Seed: 42, Scale: 0.03, Jobs: 1})
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := e.Run(Options{Seed: 42, Scale: 0.03, Jobs: 8})
	if err != nil {
		t.Fatal(err)
	}
	a, b := renderOutput(t, serial), renderOutput(t, parallel)
	if a != b {
		t.Fatal("serial and parallel multisite renderings differ")
	}
}
