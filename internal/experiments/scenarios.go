package experiments

import (
	"fmt"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

// yearScale shrinks the year-long figure runs relative to the requested
// scale: a year of trace at full platform size is ~12M jobs, far beyond
// what the figures need to show their shape.
const yearScale = 0.2

// WeekScenario is the Tables 1–5 environment: the busy-week trace on
// the default NetBatch platform, capacity optionally scaled (0.5 is the
// paper's high-load variant), with the given initial scheduler and
// utilization-view staleness.
func WeekScenario(id string, capacityFactor, staleness float64, newInitial func() sched.InitialScheduler) Scenario {
	return Scenario{
		ID: id,
		Trace: func(seed uint64, scale float64) (*trace.Trace, error) {
			return trace.Generate(scaleTraceCfg(trace.WeekNormal(seed), scale))
		},
		Platform: func(scale float64) (*cluster.Platform, error) {
			return buildPlatform(scale, capacityFactor)
		},
		NewInitial: newInitial,
		Staleness:  staleness,
	}
}

// YearScenario is the Figures 2/4 environment: the year-long trace with
// round-robin initial scheduling, shrunk by yearScale on top of the
// requested scale.
func YearScenario(id string) Scenario {
	return Scenario{
		ID: id,
		Trace: func(seed uint64, scale float64) (*trace.Trace, error) {
			return trace.Generate(trace.YearLong(seed, scale*yearScale))
		},
		Platform: func(scale float64) (*cluster.Platform, error) {
			return buildPlatform(scale*yearScale, 1.0)
		},
		NewInitial: func() sched.InitialScheduler { return sched.NewRoundRobin() },
	}
}

// HighSuspScenario is the §3.2.1 high-suspension environment: a trace
// engineered for a ~14% suspend rate on the full-capacity platform.
func HighSuspScenario(id string) Scenario {
	return Scenario{
		ID: id,
		Trace: func(seed uint64, scale float64) (*trace.Trace, error) {
			return trace.Generate(scaleTraceCfg(trace.HighSuspension(seed), scale))
		},
		Platform: func(scale float64) (*cluster.Platform, error) {
			return buildPlatform(scale, 1.0)
		},
		NewInitial: func() sched.InitialScheduler { return sched.NewRoundRobin() },
	}
}

func noResOnly() []PolicyFactory {
	return []PolicyFactory{
		{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
	}
}

func init() {
	register(tableExperiment(
		"table1",
		"Table 1: Performance under normal load scenario (round-robin initial scheduler)",
		1.0, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		susPolicies,
	))
	register(tableExperiment(
		"table2",
		"Table 2: Performance under high load scenario (round-robin initial scheduler, cores halved)",
		0.5, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		susPolicies,
	))
	register(tableExperiment(
		"table3",
		"Table 3: Performance with utilization-based initial scheduling (high load)",
		0.5, 30,
		func() sched.InitialScheduler { return sched.NewUtilizationBased() },
		susPolicies,
	))
	register(tableExperiment(
		"table4",
		"Table 4: Suspended+waiting rescheduling with round robin initial scheduling (high load)",
		0.5, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		waitPolicies,
	))
	register(tableExperiment(
		"table5",
		"Table 5: Suspended+waiting rescheduling with utilization-based initial scheduling (high load)",
		0.5, 30,
		func() sched.InitialScheduler { return sched.NewUtilizationBased() },
		waitPolicies,
	))
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: CDF of job suspension time (year-long trace, NoRes)",
		Plan:  yearPlan,
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: Average wasted completion time components under normal load",
		Plan:  fig3Plan,
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: Suspension (# jobs) and utilization (%) over a one year period",
		Plan:  yearPlan,
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "highsusp",
		Title: "High Suspension Scenario (§3.2.1): 14% suspend-rate trace",
		Plan:  highSuspPlan,
		Run:   runHighSusp,
	})
}

// yearPlan declares the year-long NoRes matrix shared by Figures 2
// and 4.
func yearPlan(Options) Matrix {
	return Matrix{
		Scenarios: []Scenario{YearScenario("year")},
		Policies:  noResOnly(),
	}
}

// yearMatrix simulates the year-long trace under NoRes with round-robin
// initial scheduling, shared by Figures 2 and 4.
func yearMatrix(opts Options) (*MatrixResult, error) {
	return yearPlan(opts).Run(opts)
}

func fig3Plan(Options) Matrix {
	return Matrix{
		Scenarios: []Scenario{WeekScenario("fig3", 1.0, 0,
			func() sched.InitialScheduler { return sched.NewRoundRobin() })},
		Policies: susPolicies(),
	}
}

func highSuspPlan(Options) Matrix {
	return Matrix{
		Scenarios: []Scenario{HighSuspScenario("highsusp")},
		Policies: []PolicyFactory{
			{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
			{Name: "ResSusUtil", New: func(uint64) core.Policy { return core.NewResSusUtil() }},
		},
	}
}

func runFig2(opts Options) (*Output, error) {
	mr, err := yearMatrix(opts)
	if err != nil {
		return nil, err
	}
	out := newOutput("fig2", "Figure 2: CDF of job suspension time", mr)
	cdf := metrics.SuspensionCDF(mr.At(0, 0, 0).Result.Jobs)
	out.Series["suspension_cdf"] = cdf.Points(200)
	out.Tables = append(out.Tables, report.CDFTable(out.Title, cdf))
	annotateEngine(out, mr)
	out.Notes = append(out.Notes,
		"paper: median 437 min, mean 905 min, 20% of suspended jobs > 1100 min",
		fmt.Sprintf("measured: median %.0f min, mean %.0f min, p80 %.0f min",
			cdf.Quantile(0.5), cdf.Mean(), cdf.Quantile(0.8)))
	if len(mr.Seeds) > 1 {
		var med, mean stats.Mean
		for rep := range mr.Seeds {
			c := metrics.SuspensionCDF(mr.At(0, 0, rep).Result.Jobs)
			med.Add(c.Quantile(0.5))
			mean.Add(c.Mean())
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"across %d seeds (mean ± 95%% CI): median %.0f ± %.0f min, mean %.0f ± %.0f min",
			len(mr.Seeds), med.Mean(), med.CI95(), mean.Mean(), mean.CI95()))
	}
	return out, nil
}

func runFig3(opts Options) (*Output, error) {
	mr, err := fig3Plan(opts).Run(opts)
	if err != nil {
		return nil, err
	}
	out := newOutput("fig3", "Figure 3: Average wasted completion time (minutes) under normal load", mr)
	waste, err := report.WasteTableCI(out.Title, out.Names, out.Replicates)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, waste)
	annotateEngine(out, mr)
	return out, nil
}

func runFig4(opts Options) (*Output, error) {
	mr, err := yearMatrix(opts)
	if err != nil {
		return nil, err
	}
	out := newOutput("fig4",
		"Figure 4: Suspension (# jobs) and utilization (%) over one year (100-minute bins)", mr)
	r0 := mr.At(0, 0, 0).Result
	utilPts := r0.Util.Points()
	suspPts := r0.Suspended.Points()
	out.Series = map[string][]stats.Point{
		"utilization_pct": utilPts,
		"suspended_jobs":  suspPts,
	}
	meanUtil := r0.Util.MeanOfBins()
	_, peakSusp := r0.Suspended.MaxBin()
	out.Notes = append(out.Notes,
		"paper: overall utilization averages ~40% (typically 20-60%); suspension spikes with bursts",
		fmt.Sprintf("measured: mean utilization %.1f%%, peak suspended jobs per bin %.0f", meanUtil, peakSusp),
		"utilization: "+report.Sparkline(utilPts, 80),
		"suspended:   "+report.Sparkline(suspPts, 80))
	if len(mr.Seeds) > 1 {
		var util stats.Mean
		for rep := range mr.Seeds {
			util.Add(mr.At(0, 0, rep).Result.Util.MeanOfBins())
		}
		out.Notes = append(out.Notes, fmt.Sprintf(
			"across %d seeds: mean utilization %.1f ± %.1f%% (95%% CI)",
			len(mr.Seeds), util.Mean(), util.CI95()))
	}
	annotateEngine(out, mr)
	return out, nil
}

func runHighSusp(opts Options) (*Output, error) {
	mr, err := highSuspPlan(opts).Run(opts)
	if err != nil {
		return nil, err
	}
	out, err := tableOutput("highsusp", "High Suspension Scenario (§3.2.1)", mr)
	if err != nil {
		return nil, err
	}
	noRes, util := out.Summaries[0], out.Summaries[1]
	out.Notes = append(out.Notes,
		"paper: ~14% suspend rate; rescheduling cuts AvgCT(all) by ~7% and AvgCT(suspended) by ~44%",
		fmt.Sprintf("measured: suspend rate %.1f%%; AvgCT(all) reduction %.1f%%; AvgCT(suspended) reduction %.1f%%",
			noRes.SuspendRate,
			(1-util.AvgCTAll/noRes.AvgCTAll)*100,
			(1-util.AvgCTSuspended/noRes.AvgCTSuspended)*100))
	return out, nil
}
