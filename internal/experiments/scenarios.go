package experiments

import (
	"fmt"

	"netbatch/internal/core"
	"netbatch/internal/metrics"
	"netbatch/internal/report"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
	"netbatch/internal/trace"
)

// yearScale shrinks the year-long figure runs relative to the requested
// scale: a year of trace at full platform size is ~12M jobs, far beyond
// what the figures need to show their shape.
const yearScale = 0.2

func init() {
	register(tableExperiment(
		"table1",
		"Table 1: Performance under normal load scenario (round-robin initial scheduler)",
		1.0, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		susPolicies,
	))
	register(tableExperiment(
		"table2",
		"Table 2: Performance under high load scenario (round-robin initial scheduler, cores halved)",
		0.5, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		susPolicies,
	))
	register(tableExperiment(
		"table3",
		"Table 3: Performance with utilization-based initial scheduling (high load)",
		0.5, 30,
		func() sched.InitialScheduler { return sched.NewUtilizationBased() },
		susPolicies,
	))
	register(tableExperiment(
		"table4",
		"Table 4: Suspended+waiting rescheduling with round robin initial scheduling (high load)",
		0.5, 0,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		waitPolicies,
	))
	register(tableExperiment(
		"table5",
		"Table 5: Suspended+waiting rescheduling with utilization-based initial scheduling (high load)",
		0.5, 30,
		func() sched.InitialScheduler { return sched.NewUtilizationBased() },
		waitPolicies,
	))
	register(Experiment{
		ID:    "fig2",
		Title: "Figure 2: CDF of job suspension time (year-long trace, NoRes)",
		Run:   runFig2,
	})
	register(Experiment{
		ID:    "fig3",
		Title: "Figure 3: Average wasted completion time components under normal load",
		Run:   runFig3,
	})
	register(Experiment{
		ID:    "fig4",
		Title: "Figure 4: Suspension (# jobs) and utilization (%) over a one year period",
		Run:   runFig4,
	})
	register(Experiment{
		ID:    "highsusp",
		Title: "High Suspension Scenario (§3.2.1): 14% suspend-rate trace",
		Run:   runHighSusp,
	})
}

// yearRun simulates the year-long trace under NoRes with round-robin
// initial scheduling, shared by Figures 2 and 4.
func yearRun(opts Options) ([]strategyRun, error) {
	opts = opts.withDefaults()
	scale := opts.Scale * yearScale
	tr, err := trace.Generate(trace.YearLong(opts.Seed, scale))
	if err != nil {
		return nil, err
	}
	plat, err := buildPlatform(scale, 1.0)
	if err != nil {
		return nil, err
	}
	return runStrategies(tr, plat,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		[]PolicyFactory{{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }}},
		opts, 0)
}

func runFig2(opts Options) (*Output, error) {
	runs, err := yearRun(opts)
	if err != nil {
		return nil, err
	}
	r := runs[0]
	cdf := metrics.SuspensionCDF(r.result.Jobs)
	out := &Output{
		ID:        "fig2",
		Title:     "Figure 2: CDF of job suspension time",
		Names:     []string{r.name},
		Summaries: []metrics.Summary{r.summary},
		Series:    map[string][]stats.Point{"suspension_cdf": cdf.Points(200)},
	}
	out.Tables = append(out.Tables, report.CDFTable(out.Title, cdf))
	out.Notes = append(out.Notes,
		fmt.Sprintf("paper: median 437 min, mean 905 min, 20%% of suspended jobs > 1100 min"),
		fmt.Sprintf("measured: median %.0f min, mean %.0f min, p80 %.0f min",
			cdf.Quantile(0.5), cdf.Mean(), cdf.Quantile(0.8)))
	return out, nil
}

func runFig3(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	tr, err := trace.Generate(scaleTraceCfg(trace.WeekNormal(opts.Seed), opts.Scale))
	if err != nil {
		return nil, err
	}
	plat, err := buildPlatform(opts.Scale, 1.0)
	if err != nil {
		return nil, err
	}
	runs, err := runStrategies(tr, plat,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		susPolicies(), opts, 0)
	if err != nil {
		return nil, err
	}
	out := &Output{
		ID:     "fig3",
		Title:  "Figure 3: Average wasted completion time (minutes) under normal load",
		Series: map[string][]stats.Point{},
	}
	for _, r := range runs {
		out.Names = append(out.Names, r.name)
		out.Summaries = append(out.Summaries, r.summary)
	}
	waste, err := report.WasteTable(out.Title, out.Names, out.Summaries)
	if err != nil {
		return nil, err
	}
	out.Tables = append(out.Tables, waste)
	return out, nil
}

func runFig4(opts Options) (*Output, error) {
	runs, err := yearRun(opts)
	if err != nil {
		return nil, err
	}
	r := runs[0]
	utilPts := r.result.Util.Points()
	suspPts := r.result.Suspended.Points()
	out := &Output{
		ID:        "fig4",
		Title:     "Figure 4: Suspension (# jobs) and utilization (%) over one year (100-minute bins)",
		Names:     []string{r.name},
		Summaries: []metrics.Summary{r.summary},
		Series: map[string][]stats.Point{
			"utilization_pct": utilPts,
			"suspended_jobs":  suspPts,
		},
	}
	meanUtil := r.result.Util.MeanOfBins()
	_, peakSusp := r.result.Suspended.MaxBin()
	out.Notes = append(out.Notes,
		"paper: overall utilization averages ~40% (typically 20-60%); suspension spikes with bursts",
		fmt.Sprintf("measured: mean utilization %.1f%%, peak suspended jobs per bin %.0f", meanUtil, peakSusp),
		"utilization: "+report.Sparkline(utilPts, 80),
		"suspended:   "+report.Sparkline(suspPts, 80))
	return out, nil
}

func runHighSusp(opts Options) (*Output, error) {
	opts = opts.withDefaults()
	tr, err := trace.Generate(scaleTraceCfg(trace.HighSuspension(opts.Seed), opts.Scale))
	if err != nil {
		return nil, err
	}
	plat, err := buildPlatform(opts.Scale, 1.0)
	if err != nil {
		return nil, err
	}
	runs, err := runStrategies(tr, plat,
		func() sched.InitialScheduler { return sched.NewRoundRobin() },
		[]PolicyFactory{
			{Name: "NoRes", New: func(uint64) core.Policy { return core.NewNoRes() }},
			{Name: "ResSusUtil", New: func(uint64) core.Policy { return core.NewResSusUtil() }},
		}, opts, 0)
	if err != nil {
		return nil, err
	}
	out, err := tableOutput("highsusp", "High Suspension Scenario (§3.2.1)", runs)
	if err != nil {
		return nil, err
	}
	noRes, util := runs[0].summary, runs[1].summary
	out.Notes = append(out.Notes,
		"paper: ~14% suspend rate; rescheduling cuts AvgCT(all) by ~7% and AvgCT(suspended) by ~44%",
		fmt.Sprintf("measured: suspend rate %.1f%%; AvgCT(all) reduction %.1f%%; AvgCT(suspended) reduction %.1f%%",
			noRes.SuspendRate,
			(1-util.AvgCTAll/noRes.AvgCTAll)*100,
			(1-util.AvgCTSuspended/noRes.AvgCTSuspended)*100))
	return out, nil
}
