package experiments

// Integration tests: run every experiment at reduced scale and assert
// the paper's qualitative result shapes (who wins, roughly by what
// factor). Absolute values differ from the paper — the trace is
// synthetic — but these orderings are the reproduction's contract; see
// EXPERIMENTS.md for the paper-vs-measured table.

import (
	"testing"
)

// testOpts shrinks everything ~10x; shapes were calibrated at this
// scale against the full-scale runs.
func testOpts() Options {
	return Options{Seed: 42, Scale: 0.1}
}

// runExperiment executes one registered experiment.
func runExperiment(t *testing.T, id string) *Output {
	t.Helper()
	e, err := Get(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(testOpts())
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Names) != len(out.Summaries) {
		t.Fatal("names/summaries misaligned")
	}
	for i, s := range out.Summaries {
		if err := s.CheckComponents(); err != nil {
			t.Fatalf("strategy %s: %v", out.Names[i], err)
		}
	}
	return out
}

// byName indexes summaries by strategy name.
func byName(t *testing.T, out *Output) map[string]int {
	t.Helper()
	m := make(map[string]int, len(out.Names))
	for i, n := range out.Names {
		m[n] = i
	}
	return m
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"faults", "fig2", "fig3", "fig4", "highsusp", "multisite", "table1", "table2", "table3", "table4", "table5"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("IDs = %v", got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("IDs = %v, want %v", got, want)
		}
	}
	if _, err := Get("nope"); err == nil {
		t.Fatal("unknown id should error")
	}
}

func TestTable1NormalLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	out := runExperiment(t, "table1")
	idx := byName(t, out)
	noRes := out.Summaries[idx["NoRes"]]
	util := out.Summaries[idx["ResSusUtil"]]
	rand := out.Summaries[idx["ResSusRand"]]

	// The trace-level statistics the paper documents (§2.2/§3.2.1).
	if noRes.SuspendRate < 0.5 || noRes.SuspendRate > 3.5 {
		t.Errorf("NoRes suspend rate = %.2f%%, want ~1%% (paper 1.14%%)", noRes.SuspendRate)
	}
	if noRes.AvgST < 400 || noRes.AvgST > 2500 {
		t.Errorf("NoRes AvgST = %.0f, want hundreds-to-thousands of minutes (paper 1189)", noRes.AvgST)
	}

	// Headline result: ResSusUtil cuts AvgCT of suspended jobs by ~50%
	// (paper: 2498.7 -> 1265.4).
	if util.AvgCTSuspended > 0.70*noRes.AvgCTSuspended {
		t.Errorf("ResSusUtil AvgCT(susp) = %.0f vs NoRes %.0f; want >=30%% reduction",
			util.AvgCTSuspended, noRes.AvgCTSuspended)
	}
	// System waste: AvgWCT reduced by ~33% (paper: 31.0 -> 20.8).
	if util.AvgWCT > 0.85*noRes.AvgWCT {
		t.Errorf("ResSusUtil AvgWCT = %.1f vs NoRes %.1f; want >=15%% reduction",
			util.AvgWCT, noRes.AvgWCT)
	}
	// Suspend time nearly eliminated (paper AvgST: 1189.1 -> 82.2).
	if util.AvgST > 0.2*noRes.AvgST {
		t.Errorf("ResSusUtil AvgST = %.1f vs NoRes %.1f; want >=80%% reduction",
			util.AvgST, noRes.AvgST)
	}
	// Blind random selection backfires relative to the informed choice
	// (paper: ResSusRand worse on every aggregate).
	if rand.AvgWCT <= util.AvgWCT {
		t.Errorf("ResSusRand AvgWCT = %.1f <= ResSusUtil %.1f; random should waste more",
			rand.AvgWCT, util.AvgWCT)
	}
	if rand.AvgCTSuspended <= util.AvgCTSuspended {
		t.Errorf("ResSusRand AvgCT(susp) = %.0f <= ResSusUtil %.0f",
			rand.AvgCTSuspended, util.AvgCTSuspended)
	}
	// Rescheduling slightly raises the suspend rate ("a more aggressive
	// use of system resources", §3.2.1).
	if util.SuspendRate < noRes.SuspendRate {
		t.Errorf("ResSusUtil suspend rate %.2f%% < NoRes %.2f%%; rescheduling should raise it",
			util.SuspendRate, noRes.SuspendRate)
	}
}

func TestTable2HighLoadShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	normal := runExperiment(t, "table1")
	high := runExperiment(t, "table2")
	ni, hi := byName(t, normal), byName(t, high)
	noResN := normal.Summaries[ni["NoRes"]]
	noResH := high.Summaries[hi["NoRes"]]
	utilN := normal.Summaries[ni["ResSusUtil"]]
	utilH := high.Summaries[hi["ResSusUtil"]]

	// Halving cores inflates completion time substantially (paper:
	// AvgCT(all) 569.8 -> 988.7, "almost doubled").
	if noResH.AvgCTAll < 1.5*noResN.AvgCTAll {
		t.Errorf("high-load AvgCT(all) = %.0f vs normal %.0f; want >=1.5x",
			noResH.AvgCTAll, noResN.AvgCTAll)
	}
	// The benefit of rescheduling is "further enhanced under the high
	// load situation" (paper: 50% -> 75% reduction).
	cutN := 1 - utilN.AvgCTSuspended/noResN.AvgCTSuspended
	cutH := 1 - utilH.AvgCTSuspended/noResH.AvgCTSuspended
	if cutH <= cutN {
		t.Errorf("AvgCT(susp) reduction high %.0f%% <= normal %.0f%%; high load should amplify",
			cutH*100, cutN*100)
	}
	if cutH < 0.5 {
		t.Errorf("high-load AvgCT(susp) reduction = %.0f%%, want >=50%% (paper 75%%)", cutH*100)
	}
}

func TestTable3UtilInitialShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	out := runExperiment(t, "table3")
	idx := byName(t, out)
	noRes := out.Summaries[idx["NoRes"]]
	util := out.Summaries[idx["ResSusUtil"]]
	// "Dynamic rescheduling ResSusUtil still works with the
	// utilization-based initial scheduler" (paper: 75% AvgCT(susp)
	// reduction, 11% AvgWCT reduction).
	if util.AvgCTSuspended > 0.8*noRes.AvgCTSuspended {
		t.Errorf("util-initial: ResSusUtil AvgCT(susp) = %.0f vs NoRes %.0f; want >=20%% cut",
			util.AvgCTSuspended, noRes.AvgCTSuspended)
	}
	// NOTE: the paper also reports a higher NoRes suspend rate under
	// utilization-based initial scheduling than under round-robin
	// (1.50% vs 1.26%). Our reproduction diverges there (the live/30min
	// -stale utilization view dodges burst pools more effectively than
	// the paper's scheduler apparently did); see EXPERIMENTS.md.
}

func TestTable4WaitReschedulingShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	table2 := runExperiment(t, "table2")
	table4 := runExperiment(t, "table4")
	i2, i4 := byName(t, table2), byName(t, table4)
	noRes := table4.Summaries[i4["NoRes"]]
	susUtil := table2.Summaries[i2["ResSusUtil"]]
	waitUtil := table4.Summaries[i4["ResSusWaitUtil"]]
	waitRand := table4.Summaries[i4["ResSusWaitRand"]]

	// Combined rescheduling improves on suspended-only rescheduling
	// (paper: 1475.1 -> 1224.3 AvgCT(susp)).
	if waitUtil.AvgCTSuspended >= susUtil.AvgCTSuspended {
		t.Errorf("ResSusWaitUtil AvgCT(susp) = %.0f >= ResSusUtil %.0f; wait rescheduling should help",
			waitUtil.AvgCTSuspended, susUtil.AvgCTSuspended)
	}
	// And reduces system-wide waste vs NoRes (paper: 450.1 -> 414.2).
	if waitUtil.AvgWCT >= noRes.AvgWCT {
		t.Errorf("ResSusWaitUtil AvgWCT = %.0f >= NoRes %.0f", waitUtil.AvgWCT, noRes.AvgWCT)
	}
	// The random variant "performs almost as well as a utilization-based
	// approach" thanks to repeated second chances (paper: 1417 vs 1224).
	if waitRand.AvgCTSuspended > 1.8*waitUtil.AvgCTSuspended {
		t.Errorf("ResSusWaitRand AvgCT(susp) = %.0f vs ResSusWaitUtil %.0f; want within 1.8x",
			waitRand.AvgCTSuspended, waitUtil.AvgCTSuspended)
	}
	if waitRand.AvgWCT >= noRes.AvgWCT {
		t.Errorf("ResSusWaitRand AvgWCT = %.0f >= NoRes %.0f", waitRand.AvgWCT, noRes.AvgWCT)
	}
	// Wait rescheduling costs far more restart operations (§3.3.2's
	// design-simplicity-vs-restart-frequency trade-off).
	if waitRand.WaitReschedules == 0 || waitUtil.WaitReschedules == 0 {
		t.Error("wait rescheduling never fired")
	}
}

func TestTable5WaitUtilInitialShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	out := runExperiment(t, "table5")
	idx := byName(t, out)
	noRes := out.Summaries[idx["NoRes"]]
	waitUtil := out.Summaries[idx["ResSusWaitUtil"]]
	waitRand := out.Summaries[idx["ResSusWaitRand"]]
	// The random strategy again lands close to the utilization-based
	// one (paper: 1603.1 vs 1467.2) and both beat NoRes.
	if waitUtil.AvgCTSuspended >= noRes.AvgCTSuspended ||
		waitRand.AvgCTSuspended >= noRes.AvgCTSuspended {
		t.Errorf("combined rescheduling failed to beat NoRes: %0.f/%0.f vs %0.f",
			waitUtil.AvgCTSuspended, waitRand.AvgCTSuspended, noRes.AvgCTSuspended)
	}
	if waitRand.AvgCTSuspended > 1.8*waitUtil.AvgCTSuspended {
		t.Errorf("ResSusWaitRand = %.0f not close to ResSusWaitUtil %.0f",
			waitRand.AvgCTSuspended, waitUtil.AvgCTSuspended)
	}
}

func TestFig2SuspensionCDFShape(t *testing.T) {
	if testing.Short() {
		t.Skip("year-long run")
	}
	out := runExperiment(t, "fig2")
	pts := out.Series["suspension_cdf"]
	if len(pts) == 0 {
		t.Fatal("no CDF points")
	}
	// Long-tailed distribution: the paper reports median 437 min, mean
	// 905 min — the mean far above the median — and a tail beyond 100k
	// minutes. Locate the median and p90 from the CDF points.
	var median, p90 float64
	for _, p := range pts {
		if median == 0 && p.Y >= 0.5 {
			median = p.X
		}
		if p90 == 0 && p.Y >= 0.9 {
			p90 = p.X
		}
	}
	if median < 100 || median > 2500 {
		t.Errorf("suspension median = %.0f min, want hundreds (paper 437)", median)
	}
	if p90 < 2*median {
		t.Errorf("p90 %.0f < 2x median %.0f; distribution should be long-tailed", p90, median)
	}
	// CDF monotone.
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y || pts[i].X < pts[i-1].X {
			t.Fatal("CDF not monotone")
		}
	}
}

func TestFig3WasteComponentsShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	out := runExperiment(t, "fig3")
	idx := byName(t, out)
	noRes := out.Summaries[idx["NoRes"]]
	util := out.Summaries[idx["ResSusUtil"]]
	rand := out.Summaries[idx["ResSusRand"]]
	// NoRes has no rescheduling waste but carries all the suspend time.
	if noRes.ReschedComp != 0 {
		t.Errorf("NoRes rescheduling waste = %v, want 0", noRes.ReschedComp)
	}
	if noRes.SuspendComp <= util.SuspendComp {
		t.Error("rescheduling should eliminate most suspend-time waste")
	}
	// Rescheduling strategies trade suspend time for a small
	// rescheduling-waste component.
	if util.ReschedComp <= 0 || rand.ReschedComp <= 0 {
		t.Error("rescheduling strategies should pay some rescheduling waste")
	}
	if util.ReschedComp > noRes.SuspendComp {
		t.Error("rescheduling waste should be far smaller than the suspend time it removes")
	}
}

func TestFig4YearTimelineShape(t *testing.T) {
	if testing.Short() {
		t.Skip("year-long run")
	}
	out := runExperiment(t, "fig4")
	utilPts := out.Series["utilization_pct"]
	suspPts := out.Series["suspended_jobs"]
	if len(utilPts) < 100 || len(suspPts) < 100 {
		t.Fatalf("series too short: %d, %d bins", len(utilPts), len(suspPts))
	}
	// Paper: "overall system utilization averages around 40%, and is
	// typically in the range of 20%-60%".
	var sum float64
	var n int
	for _, p := range utilPts {
		if p.Y > 0 {
			sum += p.Y
			n++
		}
	}
	mean := sum / float64(n)
	if mean < 25 || mean > 60 {
		t.Errorf("mean utilization = %.1f%%, want ~40%%", mean)
	}
	// Suspension spikes: peak far above typical level.
	var peak, total float64
	for _, p := range suspPts {
		if p.Y > peak {
			peak = p.Y
		}
		total += p.Y
	}
	avg := total / float64(len(suspPts))
	if peak < 5*avg {
		t.Errorf("suspension peak %.0f not spiky vs average %.1f (paper: sudden spikes)", peak, avg)
	}
}

func TestHighSuspensionShape(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	table1 := runExperiment(t, "table1")
	out := runExperiment(t, "highsusp")
	i1, ih := byName(t, table1), byName(t, out)
	base := table1.Summaries[i1["NoRes"]]
	noRes := out.Summaries[ih["NoRes"]]
	util := out.Summaries[ih["ResSusUtil"]]
	// Engineered trace suspends a much larger fraction of jobs.
	if noRes.SuspendRate < 2*base.SuspendRate {
		t.Errorf("high-suspension rate = %.1f%% vs base %.1f%%; want >=2x", noRes.SuspendRate, base.SuspendRate)
	}
	// "A higher fraction of suspended jobs naturally leads to a larger
	// impact on the average completion time of all jobs" (§3.2.1).
	if util.AvgCTAll >= noRes.AvgCTAll {
		t.Error("rescheduling should reduce AvgCT(all) under high suspension")
	}
	if util.AvgCTSuspended > 0.7*noRes.AvgCTSuspended {
		t.Errorf("AvgCT(susp) cut = %.0f vs %.0f; want >=30%% (paper 44%%)",
			util.AvgCTSuspended, noRes.AvgCTSuspended)
	}
}

func TestExperimentsDeterministic(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	a := runExperiment(t, "table1")
	b := runExperiment(t, "table1")
	for i := range a.Summaries {
		if a.Summaries[i] != b.Summaries[i] {
			t.Fatalf("strategy %s differs across identical runs", a.Names[i])
		}
	}
}

func TestOptionsDefaults(t *testing.T) {
	o := Options{}.withDefaults()
	if o.Scale != 1.0 || o.Seed == 0 {
		t.Fatalf("defaults = %+v", o)
	}
}
