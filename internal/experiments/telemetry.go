package experiments

import (
	"fmt"
	"time"

	"netbatch/internal/job"
	"netbatch/internal/obs"
	"netbatch/internal/sim"
)

// cellTelemetry wires one cell's engine config into the run-level
// observability sinks (Options.Trace / RunLog / Logf) and brackets the
// run with cell_start / cell_done records. The returned finish func
// must be called exactly once with the run's outcome.
//
// The ETA estimate is deliberately crude: it extrapolates the wall-time
// cost of the remaining simulated horizon from the rate observed so
// far, with the horizon approximated by the last job submission time.
// Runs drain past the last submission, so the estimate is a floor — but
// it converges as the frontier advances and is good enough to answer
// "minutes or hours?" for a year-scale cell.
func cellTelemetry(cfg *sim.Config, specs []job.Spec, scenarioID, policyName string, rep int, opts Options) func(*sim.Result, error) {
	if opts.Trace == nil && opts.RunLog == nil && (opts.Logf == nil || opts.ProgressEvery <= 0) {
		// Telemetry disabled: not even the cell label is formatted —
		// the disabled path must not allocate (the bench gate budgets
		// the whole matrix hot path).
		return func(*sim.Result, error) {}
	}
	label := cellLabel(scenarioID, policyName, rep)
	if opts.Trace != nil {
		cfg.Trace = opts.Trace.Process("cell " + label)
	}
	horizon := 0.0
	for i := range specs {
		if specs[i].Submit > horizon {
			horizon = specs[i].Submit
		}
	}
	start := time.Now()
	emit := func(rec obs.RunRecord) {
		rec.Cell = label
		rec.WallMS = float64(time.Since(start).Microseconds()) / 1e3
		if opts.RunLog != nil {
			if err := opts.RunLog.Emit(rec); err != nil && opts.Logf != nil {
				opts.Logf("experiments: cell %s: runlog: %v", label, err)
			}
			return
		}
		if opts.Logf != nil && rec.Type == "progress" {
			opts.Logf("experiments: cell %s: t=%.0f events=%d (%.0f ev/s) eta=%.0fs rollbacks=%d",
				label, rec.SimTime, rec.Events, rec.EventsPerSec, rec.ETASec, rec.Rollbacks)
		}
	}
	if opts.ProgressEvery > 0 && (opts.RunLog != nil || opts.Logf != nil) {
		cfg.ProgressEvery = opts.ProgressEvery
		cfg.Progress = func(p obs.Progress) {
			rec := obs.RunRecord{
				Type:      "progress",
				SimTime:   p.SimTime,
				Events:    p.Events,
				Rollbacks: p.Rollbacks,
			}
			if wall := time.Since(start).Seconds(); wall > 0 {
				rec.EventsPerSec = float64(p.Events) / wall
				if p.SimTime > 0 && p.SimTime < horizon {
					rec.ETASec = wall * (horizon - p.SimTime) / p.SimTime
				}
			}
			emit(rec)
		}
	}
	if opts.RunLog != nil {
		emit(obs.RunRecord{Type: "cell_start"})
	}
	return func(res *sim.Result, err error) {
		if opts.RunLog == nil {
			return
		}
		rec := obs.RunRecord{Type: "cell_done"}
		if err != nil {
			rec.Err = err.Error()
		} else if res != nil {
			rec.SimTime = res.Makespan
			rec.Events = res.Events
			rec.Rollbacks = res.Rollbacks
			if wall := time.Since(start).Seconds(); wall > 0 {
				rec.EventsPerSec = float64(res.Events) / wall
			}
		}
		emit(rec)
	}
}

// cellLabel names one cell in timelines and run logs.
func cellLabel(scenarioID, policyName string, rep int) string {
	return fmt.Sprintf("%s/%s/r%d", scenarioID, policyName, rep)
}
