package job

import (
	"fmt"
	"math"
)

// Job is a live job instance: its spec plus mutable lifecycle state and
// time accounting. Job is not safe for concurrent use; the simulator is
// single-threaded.
type Job struct {
	Spec Spec

	state State
	// stateSince is the simulated time of the last state transition.
	stateSince float64

	// Pool is the physical pool the job currently belongs to, or -1.
	Pool int
	// Machine is the machine the job is running or suspended on, or -1.
	Machine int

	// speed is the speed factor of the machine of the current attempt.
	speed float64
	// progress is the executed work (speed-adjusted, in Work units) of
	// the current attempt.
	progress float64
	// attemptExecWall is the wall-clock minutes spent executing in the
	// current attempt; destroyed and moved to wastedExec on restart.
	attemptExecWall float64

	acct Accounting

	// FirstStart is the time the job first began executing, or NaN.
	FirstStart float64
	// Completed is the completion time, or NaN while unfinished.
	Completed float64
}

// Accounting is the per-job time decomposition of §3.1.
type Accounting struct {
	// Wait is c1: minutes queued at virtual or physical pool level.
	Wait float64 `json:"wait"`
	// Suspend is c2: minutes in suspended queues.
	Suspend float64 `json:"suspend"`
	// WastedExec is execution wall-clock destroyed by restarts
	// (part of c3).
	WastedExec float64 `json:"wasted_exec"`
	// RescheduleOverhead is transfer/restart overhead paid in
	// StateTransit (the rest of c3).
	RescheduleOverhead float64 `json:"reschedule_overhead"`
	// Exec is total wall-clock minutes spent executing, including the
	// aborted attempts counted in WastedExec.
	Exec float64 `json:"exec"`

	// Suspensions counts preemption events.
	Suspensions int `json:"suspensions"`
	// Restarts counts rescheduling restarts (losing progress).
	Restarts int `json:"restarts"`
	// WaitReschedules counts wait-queue reschedules (no progress lost).
	WaitReschedules int `json:"wait_reschedules"`
	// Kills counts fault-induced aborts (machine crash or maintenance
	// window), each destroying the attempt's progress like a restart.
	Kills int `json:"kills,omitempty"`
}

// Wasted returns the paper's per-job wasted completion time: wait +
// suspend + wasted execution + reschedule overhead.
func (a *Accounting) Wasted() float64 {
	return a.Wait + a.Suspend + a.WastedExec + a.RescheduleOverhead
}

// New instantiates a job from its spec in StateCreated.
func New(spec Spec) *Job {
	return &Job{
		Spec:       spec,
		state:      StateCreated,
		stateSince: spec.Submit,
		Pool:       -1,
		Machine:    -1,
		FirstStart: math.NaN(),
		Completed:  math.NaN(),
	}
}

// State returns the current lifecycle state.
func (j *Job) State() State { return j.state }

// Acct returns a copy of the job's accounting so far. For a completed
// job this is the final record.
func (j *Job) Acct() Accounting { return j.acct }

// EverSuspended reports whether the job was preempted at least once —
// the membership test for the paper's "suspended jobs" metrics.
func (j *Job) EverSuspended() bool { return j.acct.Suspensions > 0 }

// CompletionTime returns completion − submission, or NaN if unfinished.
func (j *Job) CompletionTime() float64 {
	return j.Completed - j.Spec.Submit
}

// Progress returns the executed work (in Work units) of the current
// attempt.
func (j *Job) Progress() float64 { return j.progress }

// RemainingAt returns the wall-clock minutes of execution left assuming
// the job keeps running at its current machine's speed, measured at
// time now. It is only meaningful in StateRunning.
func (j *Job) RemainingAt(now float64) float64 {
	run := now - j.stateSince
	done := j.progress + run*j.speed
	return (j.Spec.Work - done) / j.speed
}

// transition validates and applies a state change at time now,
// accruing the elapsed interval into the bucket of the outgoing state.
func (j *Job) transition(now float64, to State) error {
	if now < j.stateSince {
		return fmt.Errorf("job %d: time went backwards: %v -> %v in %v",
			j.Spec.ID, j.stateSince, now, j.state)
	}
	elapsed := now - j.stateSince
	switch j.state {
	case StateCreated:
		// NetBatch queues jobs immediately on submission (§2.1), so any
		// interval between submission and the first enqueue is wait.
		j.acct.Wait += elapsed
	case StateWaiting:
		j.acct.Wait += elapsed
	case StateRunning:
		j.acct.Exec += elapsed
		j.attemptExecWall += elapsed
		j.progress += elapsed * j.speed
	case StateSuspended:
		j.acct.Suspend += elapsed
	case StateTransit:
		j.acct.RescheduleOverhead += elapsed
	case StateCompleted:
		return fmt.Errorf("job %d: transition out of completed state", j.Spec.ID)
	default:
		return fmt.Errorf("job %d: unknown state %v", j.Spec.ID, j.state)
	}
	j.state = to
	j.stateSince = now
	return nil
}

// Enqueue moves the job into a wait queue (VPM or physical pool) at
// time now. pool is the pool whose queue it joined, or -1 for the
// virtual pool manager's queue.
func (j *Job) Enqueue(now float64, pool int) error {
	switch j.state {
	case StateCreated, StateWaiting, StateTransit:
		// Legal: initial submission, pool-to-pool bounce, or arrival
		// after a reschedule transfer.
	default:
		return fmt.Errorf("job %d: enqueue from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateWaiting); err != nil {
		return err
	}
	j.Pool = pool
	j.Machine = -1
	return nil
}

// Start begins (or resumes after a restart from queue) execution on
// machine with the given speed factor at time now.
func (j *Job) Start(now float64, machine int, speed float64) error {
	if j.state != StateWaiting {
		return fmt.Errorf("job %d: start from state %v", j.Spec.ID, j.state)
	}
	if speed <= 0 {
		return fmt.Errorf("job %d: non-positive machine speed %v", j.Spec.ID, speed)
	}
	if err := j.transition(now, StateRunning); err != nil {
		return err
	}
	j.Machine = machine
	j.speed = speed
	if math.IsNaN(j.FirstStart) {
		j.FirstStart = now
	}
	return nil
}

// Suspend parks the job in its host's suspended queue at time now
// (a higher-priority job preempted it). Progress is preserved.
func (j *Job) Suspend(now float64) error {
	if j.state != StateRunning {
		return fmt.Errorf("job %d: suspend from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateSuspended); err != nil {
		return err
	}
	j.acct.Suspensions++
	return nil
}

// Resume continues execution on the same machine at time now, keeping
// accumulated progress (NetBatch host-level suspend/resume).
func (j *Job) Resume(now float64) error {
	if j.state != StateSuspended {
		return fmt.Errorf("job %d: resume from state %v", j.Spec.ID, j.state)
	}
	return j.transition(now, StateRunning)
}

// RestartFrom aborts the current attempt at time now, destroying all
// progress (NetBatch rescheduling restarts jobs from the beginning,
// §2.3). The job leaves its machine and enters StateTransit; any time
// spent there before the next Enqueue (the simulator's reschedule
// transfer overhead) accrues as reschedule overhead. Legal from
// StateSuspended (rescheduling a suspended job) and StateRunning (used
// by the duplication extension).
func (j *Job) RestartFrom(now float64) error {
	switch j.state {
	case StateSuspended, StateRunning:
	default:
		return fmt.Errorf("job %d: restart from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateTransit); err != nil {
		return err
	}
	j.acct.WastedExec += j.attemptExecWall
	j.attemptExecWall = 0
	j.progress = 0
	j.acct.Restarts++
	j.Machine = -1
	return nil
}

// Kill aborts the job at time now after its host machine failed or
// entered a maintenance window, destroying the current attempt's
// progress (NetBatch restarts killed jobs from the beginning, like any
// restart). Legal from StateRunning and StateSuspended; the job enters
// StateTransit until the platform requeues it, and any interval spent
// there accrues as reschedule overhead.
func (j *Job) Kill(now float64) error {
	switch j.state {
	case StateRunning, StateSuspended:
	default:
		return fmt.Errorf("job %d: kill from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateTransit); err != nil {
		return err
	}
	j.acct.WastedExec += j.attemptExecWall
	j.attemptExecWall = 0
	j.progress = 0
	j.acct.Kills++
	j.Machine = -1
	return nil
}

// MigrateFrom moves the suspended job toward another pool at time now
// while KEEPING its execution progress — the Condor-style checkpoint
// migration the paper contrasts with restart-based rescheduling (§2.3).
// The job enters StateTransit; the transfer overhead accrues as
// reschedule overhead until the next Enqueue.
func (j *Job) MigrateFrom(now float64) error {
	if j.state != StateSuspended {
		return fmt.Errorf("job %d: migrate from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateTransit); err != nil {
		return err
	}
	// Progress and attempt wall-clock are preserved: the destination
	// resumes from the checkpoint.
	j.Machine = -1
	return nil
}

// RescheduleWait records a wait-queue reschedule at time now: the job
// leaves its pool queue for another pool, without ever having run
// there, entering StateTransit until it is enqueued at the destination.
// No progress is lost (it had none).
func (j *Job) RescheduleWait(now float64) error {
	if j.state != StateWaiting {
		return fmt.Errorf("job %d: wait-reschedule from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateTransit); err != nil {
		return err
	}
	j.acct.WaitReschedules++
	return nil
}

// Complete finishes the job at time now. It verifies that the job has
// actually executed its full service demand (within a float tolerance)
// and freezes accounting.
func (j *Job) Complete(now float64) error {
	if j.state != StateRunning {
		return fmt.Errorf("job %d: complete from state %v", j.Spec.ID, j.state)
	}
	if err := j.transition(now, StateCompleted); err != nil {
		return err
	}
	const tol = 1e-6
	if j.progress < j.Spec.Work*(1-tol)-tol {
		return fmt.Errorf("job %d: completed with progress %v of work %v",
			j.Spec.ID, j.progress, j.Spec.Work)
	}
	j.Completed = now
	j.Machine = -1
	return nil
}

// CheckConservation verifies the fundamental accounting invariant for a
// completed job: the wall-clock interval from submission to completion
// is fully explained by wait + suspend + exec + reschedule overhead.
func (j *Job) CheckConservation() error {
	if j.state != StateCompleted {
		return fmt.Errorf("job %d: conservation check before completion", j.Spec.ID)
	}
	lhs := j.Completed - j.Spec.Submit
	rhs := j.acct.Wait + j.acct.Suspend + j.acct.Exec + j.acct.RescheduleOverhead
	if math.Abs(lhs-rhs) > 1e-6*(1+math.Abs(lhs)) {
		return fmt.Errorf("job %d: conservation violated: completion span %v != accounted %v",
			j.Spec.ID, lhs, rhs)
	}
	return nil
}
