// Package job models NetBatch jobs: their immutable trace-derived
// specification, their lifecycle state machine, and the per-job time
// accounting that the paper's metrics are computed from.
//
// The accounting follows §3.1 of the paper. A job's completion time
// decomposes into productive execution plus three waste components:
//
//	c1 Wait Time      — queued at the virtual or physical pool level
//	c2 Suspend Time   — sitting in a host's suspended queue
//	c3 Wasted Time by Rescheduling — execution progress destroyed by a
//	   restart, plus any transfer overhead a reschedule incurs
//
// The package enforces the conservation invariant
//
//	completion − submission = wait + suspend + exec + overhead
//
// where exec includes both the productive final run and the aborted
// partial runs counted in c3.
package job

import (
	"fmt"
)

// ID identifies a job within one trace/simulation.
type ID int64

// Priority is a job's scheduling priority. Higher values preempt lower
// ones. The paper's NetBatch analysis uses two classes (owners' high
// priority vs. opportunistic low priority); the model supports any
// number of levels.
type Priority int

// Priority levels. Start at one so the zero value is invalid and
// accidental zero-initialization is caught.
const (
	PriorityLow  Priority = 1
	PriorityHigh Priority = 2
)

// String returns a short human-readable label.
func (p Priority) String() string {
	switch p {
	case PriorityLow:
		return "low"
	case PriorityHigh:
		return "high"
	default:
		return fmt.Sprintf("prio(%d)", int(p))
	}
}

// State is a job lifecycle state.
type State int

// Lifecycle states. A job is created in StateCreated and must reach
// StateCompleted for its accounting to be final.
const (
	// StateCreated: instantiated from the trace, not yet submitted.
	StateCreated State = iota + 1
	// StateWaiting: queued at the virtual pool manager or in a physical
	// pool's wait queue. Time here accrues to c1 Wait Time.
	StateWaiting
	// StateRunning: executing on a machine. Time here accrues to
	// execution (productive, unless later destroyed by a restart).
	StateRunning
	// StateSuspended: preempted by a higher-priority job, parked in the
	// host's suspended queue. Time here accrues to c2 Suspend Time.
	StateSuspended
	// StateTransit: paying a reschedule transfer overhead on the way to
	// an alternate pool. Time here accrues to c3.
	StateTransit
	// StateCompleted: finished; accounting frozen.
	StateCompleted
)

// String returns the state's name.
func (s State) String() string {
	switch s {
	case StateCreated:
		return "created"
	case StateWaiting:
		return "waiting"
	case StateRunning:
		return "running"
	case StateSuspended:
		return "suspended"
	case StateTransit:
		return "transit"
	case StateCompleted:
		return "completed"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// Spec is the immutable, trace-derived description of a job.
type Spec struct {
	// ID is unique within a trace.
	ID ID `json:"id"`
	// Submit is the submission time in minutes from trace start.
	Submit float64 `json:"submit"`
	// Work is the job's service demand in minutes on a speed-1.0
	// machine. On a machine with speed s it executes in Work/s minutes.
	Work float64 `json:"work"`
	// Cores is the number of cores the job occupies (≥1).
	Cores int `json:"cores"`
	// MemMB is the job's memory requirement in megabytes.
	MemMB int `json:"mem_mb"`
	// OS is the required machine operating system; empty means any.
	// Together with memory this forms the paper's machine-eligibility
	// requirement ("the job requirements (e.g., OS and memory)", §2.1).
	OS string `json:"os,omitempty"`
	// Priority is the job's preemption priority.
	Priority Priority `json:"priority"`
	// Candidates lists the physical pool IDs the job is allowed to run
	// in, in the virtual pool manager's configured order. High-priority
	// latency-sensitive jobs are typically restricted to the pools
	// their business group owns (§2.3).
	Candidates []int `json:"candidates"`
	// Site is the data-center site the job is submitted from (its data
	// and owner live there). Dispatching it to a pool at another site
	// costs the inter-site delay; 0 is the single-site default.
	Site int `json:"site,omitempty"`
	// TaskID groups jobs into the paper's §2.2 "tasks" (a set of jobs
	// whose combined result is only useful once all complete). Zero
	// means the job belongs to no task.
	TaskID int64 `json:"task_id,omitempty"`
}

// Validate reports whether the spec is internally consistent.
func (s *Spec) Validate() error {
	switch {
	case s.Submit < 0:
		return fmt.Errorf("job %d: negative submit time %v", s.ID, s.Submit)
	case s.Work <= 0:
		return fmt.Errorf("job %d: non-positive work %v", s.ID, s.Work)
	case s.Cores <= 0:
		return fmt.Errorf("job %d: non-positive cores %d", s.ID, s.Cores)
	case s.MemMB < 0:
		return fmt.Errorf("job %d: negative memory %d", s.ID, s.MemMB)
	case s.Priority <= 0:
		return fmt.Errorf("job %d: invalid priority %d", s.ID, s.Priority)
	case len(s.Candidates) == 0:
		return fmt.Errorf("job %d: no candidate pools", s.ID)
	case s.Site < 0:
		return fmt.Errorf("job %d: negative site %d", s.ID, s.Site)
	}
	seen := make(map[int]bool, len(s.Candidates))
	for _, p := range s.Candidates {
		if p < 0 {
			return fmt.Errorf("job %d: negative candidate pool %d", s.ID, p)
		}
		if seen[p] {
			return fmt.Errorf("job %d: duplicate candidate pool %d", s.ID, p)
		}
		seen[p] = true
	}
	return nil
}

// EligibleFor reports whether pool is among the job's candidates.
func (s *Spec) EligibleFor(pool int) bool {
	for _, p := range s.Candidates {
		if p == pool {
			return true
		}
	}
	return false
}
