package job

import (
	"math"
	"strings"
	"testing"
)

func spec0() Spec {
	s := validSpec()
	s.Submit = 0
	return s
}

func validSpec() Spec {
	return Spec{
		ID:         1,
		Submit:     10,
		Work:       100,
		Cores:      1,
		MemMB:      2048,
		Priority:   PriorityLow,
		Candidates: []int{0, 1, 2},
	}
}

func TestSpecValidateOK(t *testing.T) {
	s := validSpec()
	if err := s.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}

func TestSpecValidateErrors(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*Spec)
		want   string
	}{
		{"negativeSubmit", func(s *Spec) { s.Submit = -1 }, "negative submit"},
		{"zeroWork", func(s *Spec) { s.Work = 0 }, "non-positive work"},
		{"zeroCores", func(s *Spec) { s.Cores = 0 }, "non-positive cores"},
		{"negativeMem", func(s *Spec) { s.MemMB = -1 }, "negative memory"},
		{"zeroPriority", func(s *Spec) { s.Priority = 0 }, "invalid priority"},
		{"noCandidates", func(s *Spec) { s.Candidates = nil }, "no candidate pools"},
		{"dupCandidates", func(s *Spec) { s.Candidates = []int{1, 1} }, "duplicate candidate"},
		{"negCandidate", func(s *Spec) { s.Candidates = []int{-3} }, "negative candidate"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := validSpec()
			c.mutate(&s)
			err := s.Validate()
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Fatalf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestEligibleFor(t *testing.T) {
	s := validSpec()
	if !s.EligibleFor(1) {
		t.Fatal("pool 1 should be eligible")
	}
	if s.EligibleFor(7) {
		t.Fatal("pool 7 should not be eligible")
	}
}

func TestPriorityString(t *testing.T) {
	if PriorityLow.String() != "low" || PriorityHigh.String() != "high" {
		t.Fatal("priority labels wrong")
	}
	if got := Priority(9).String(); !strings.Contains(got, "9") {
		t.Fatalf("unknown priority label = %q", got)
	}
}

func TestStateString(t *testing.T) {
	states := map[State]string{
		StateCreated:   "created",
		StateWaiting:   "waiting",
		StateRunning:   "running",
		StateSuspended: "suspended",
		StateTransit:   "transit",
		StateCompleted: "completed",
	}
	for s, want := range states {
		if got := s.String(); got != want {
			t.Fatalf("State(%d).String() = %q, want %q", s, got, want)
		}
	}
	if got := State(99).String(); !strings.Contains(got, "99") {
		t.Fatalf("unknown state label = %q", got)
	}
}

func TestSimpleLifecycle(t *testing.T) {
	j := New(validSpec())
	if j.State() != StateCreated {
		t.Fatalf("initial state %v", j.State())
	}
	mustDo(t, j.Enqueue(10, 0))
	mustDo(t, j.Start(25, 3, 1.0))
	mustDo(t, j.Complete(125))

	a := j.Acct()
	if a.Wait != 15 {
		t.Fatalf("Wait = %v, want 15", a.Wait)
	}
	if a.Exec != 100 {
		t.Fatalf("Exec = %v, want 100", a.Exec)
	}
	if a.Suspend != 0 || a.WastedExec != 0 || a.RescheduleOverhead != 0 {
		t.Fatalf("unexpected waste: %+v", a)
	}
	if got := j.CompletionTime(); got != 115 {
		t.Fatalf("CompletionTime = %v, want 115", got)
	}
	if j.FirstStart != 25 {
		t.Fatalf("FirstStart = %v", j.FirstStart)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSpeedScaling(t *testing.T) {
	j := New(validSpec()) // Work = 100
	mustDo(t, j.Enqueue(10, 0))
	mustDo(t, j.Start(10, 0, 2.0)) // runs 2x: needs 50 wall minutes
	if got := j.RemainingAt(10); math.Abs(got-50) > 1e-9 {
		t.Fatalf("RemainingAt(start) = %v, want 50", got)
	}
	if got := j.RemainingAt(30); math.Abs(got-30) > 1e-9 {
		t.Fatalf("RemainingAt(+20) = %v, want 30", got)
	}
	mustDo(t, j.Complete(60))
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestSuspendResumeAccounting(t *testing.T) {
	j := New(validSpec())
	mustDo(t, j.Enqueue(10, 0))
	mustDo(t, j.Start(20, 0, 1.0))
	mustDo(t, j.Suspend(50)) // ran 30 of 100
	if !j.EverSuspended() {
		t.Fatal("EverSuspended should be true")
	}
	if got := j.Progress(); math.Abs(got-30) > 1e-9 {
		t.Fatalf("Progress = %v, want 30", got)
	}
	mustDo(t, j.Resume(500)) // suspended 450
	mustDo(t, j.Complete(570))

	a := j.Acct()
	if math.Abs(a.Suspend-450) > 1e-9 {
		t.Fatalf("Suspend = %v, want 450", a.Suspend)
	}
	if math.Abs(a.Exec-100) > 1e-9 {
		t.Fatalf("Exec = %v, want 100", a.Exec)
	}
	if a.Suspensions != 1 {
		t.Fatalf("Suspensions = %d", a.Suspensions)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	if got, want := a.Wasted(), 10.0+450; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Wasted = %v, want %v", got, want)
	}
}

func TestMultipleSuspensions(t *testing.T) {
	j := New(validSpec())
	mustDo(t, j.Enqueue(10, 0))
	mustDo(t, j.Start(10, 0, 1.0))
	mustDo(t, j.Suspend(30))
	mustDo(t, j.Resume(40))
	mustDo(t, j.Suspend(60))
	mustDo(t, j.Resume(100))
	mustDo(t, j.Complete(160)) // 20 + 20 + 60 = 100 executed
	a := j.Acct()
	if a.Suspensions != 2 {
		t.Fatalf("Suspensions = %d, want 2", a.Suspensions)
	}
	if math.Abs(a.Suspend-50) > 1e-9 {
		t.Fatalf("Suspend = %v, want 50", a.Suspend)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestRestartDestroysProgress(t *testing.T) {
	j := New(spec0())
	mustDo(t, j.Enqueue(0, 0))
	mustDo(t, j.Start(0, 0, 1.0))
	mustDo(t, j.Suspend(40))     // 40 executed
	mustDo(t, j.RestartFrom(55)) // rescheduled after 15 suspended
	if got := j.Progress(); got != 0 {
		t.Fatalf("progress after restart = %v", got)
	}
	mustDo(t, j.Enqueue(55, 2))
	mustDo(t, j.Start(60, 9, 1.0))
	mustDo(t, j.Complete(160)) // full 100 re-executed

	a := j.Acct()
	if math.Abs(a.WastedExec-40) > 1e-9 {
		t.Fatalf("WastedExec = %v, want 40", a.WastedExec)
	}
	if math.Abs(a.Exec-140) > 1e-9 {
		t.Fatalf("Exec = %v, want 140 (40 wasted + 100 productive)", a.Exec)
	}
	if a.Restarts != 1 {
		t.Fatalf("Restarts = %d", a.Restarts)
	}
	if math.Abs(a.Suspend-15) > 1e-9 {
		t.Fatalf("Suspend = %v, want 15", a.Suspend)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
	// Wasted = wait(5) + suspend(15) + wastedExec(40) + overhead(0).
	if got, want := a.Wasted(), 60.0; math.Abs(got-want) > 1e-9 {
		t.Fatalf("Wasted = %v, want %v", got, want)
	}
}

func TestRestartWithOverhead(t *testing.T) {
	j := New(spec0())
	mustDo(t, j.Enqueue(0, 0))
	mustDo(t, j.Start(0, 0, 1.0))
	mustDo(t, j.Suspend(20))
	mustDo(t, j.RestartFrom(30)) // transfer takes until t=42
	mustDo(t, j.Enqueue(42, 1))  // arrives after overhead
	mustDo(t, j.Start(42, 5, 1.0))
	mustDo(t, j.Complete(142))
	a := j.Acct()
	if math.Abs(a.RescheduleOverhead-12) > 1e-9 {
		t.Fatalf("RescheduleOverhead = %v, want 12", a.RescheduleOverhead)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestWaitReschedule(t *testing.T) {
	j := New(spec0())
	mustDo(t, j.Enqueue(0, 0))
	mustDo(t, j.RescheduleWait(35)) // stalled 35 min, bounce pools
	mustDo(t, j.Enqueue(35, 1))
	mustDo(t, j.Start(40, 0, 1.0))
	mustDo(t, j.Complete(140))
	a := j.Acct()
	if a.WaitReschedules != 1 {
		t.Fatalf("WaitReschedules = %d", a.WaitReschedules)
	}
	if math.Abs(a.Wait-40) > 1e-9 {
		t.Fatalf("Wait = %v, want 40", a.Wait)
	}
	if a.Restarts != 0 || a.WastedExec != 0 {
		t.Fatalf("wait reschedule should lose no progress: %+v", a)
	}
	if err := j.CheckConservation(); err != nil {
		t.Fatal(err)
	}
}

func TestIllegalTransitions(t *testing.T) {
	cases := []struct {
		name string
		run  func(j *Job) error
	}{
		{"startFromCreated", func(j *Job) error { return j.Start(0, 0, 1.0) }},
		{"suspendFromCreated", func(j *Job) error { return j.Suspend(0) }},
		{"resumeFromCreated", func(j *Job) error { return j.Resume(0) }},
		{"completeFromCreated", func(j *Job) error { return j.Complete(0) }},
		{"restartFromCreated", func(j *Job) error { return j.RestartFrom(0) }},
		{"waitRescheduleFromCreated", func(j *Job) error { return j.RescheduleWait(0) }},
		{"migrateFromCreated", func(j *Job) error { return j.MigrateFrom(0) }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			j := New(validSpec())
			if err := c.run(j); err == nil {
				t.Fatal("want error for illegal transition")
			}
		})
	}
}

func TestIllegalAfterCompleted(t *testing.T) {
	j := New(spec0())
	mustDo(t, j.Enqueue(0, 0))
	mustDo(t, j.Start(0, 0, 1.0))
	mustDo(t, j.Complete(100))
	if err := j.Enqueue(200, 0); err == nil {
		t.Fatal("enqueue after completion should fail")
	}
	if err := j.Suspend(200); err == nil {
		t.Fatal("suspend after completion should fail")
	}
}

func TestTimeGoingBackwards(t *testing.T) {
	j := New(validSpec())
	mustDo(t, j.Enqueue(50, 0))
	if err := j.Start(40, 0, 1.0); err == nil {
		t.Fatal("time going backwards should fail")
	}
}

func TestCompleteTooEarly(t *testing.T) {
	j := New(spec0()) // Work = 100
	mustDo(t, j.Enqueue(0, 0))
	mustDo(t, j.Start(0, 0, 1.0))
	if err := j.Complete(50); err == nil {
		t.Fatal("completing with half the work done should fail")
	}
}

func TestStartBadSpeed(t *testing.T) {
	j := New(spec0())
	mustDo(t, j.Enqueue(0, 0))
	if err := j.Start(0, 0, 0); err == nil {
		t.Fatal("zero speed should fail")
	}
}

func TestConservationBeforeCompletion(t *testing.T) {
	j := New(validSpec())
	if err := j.CheckConservation(); err == nil {
		t.Fatal("conservation check should fail before completion")
	}
}

func TestCompletionTimeNaNWhileUnfinished(t *testing.T) {
	j := New(validSpec())
	if !math.IsNaN(j.CompletionTime()) {
		t.Fatal("CompletionTime should be NaN before completion")
	}
}

func TestPoolMachineTracking(t *testing.T) {
	j := New(validSpec())
	if j.Pool != -1 || j.Machine != -1 {
		t.Fatal("fresh job should have no pool/machine")
	}
	mustDo(t, j.Enqueue(10, 2))
	if j.Pool != 2 || j.Machine != -1 {
		t.Fatalf("after enqueue: pool=%d machine=%d", j.Pool, j.Machine)
	}
	mustDo(t, j.Start(12, 7, 1.0))
	if j.Machine != 7 {
		t.Fatalf("after start: machine=%d", j.Machine)
	}
	mustDo(t, j.Suspend(20))
	if j.Machine != 7 {
		t.Fatal("suspended job should stay bound to its machine")
	}
	mustDo(t, j.RestartFrom(25))
	if j.Machine != -1 {
		t.Fatal("restarted job should leave its machine")
	}
}

func mustDo(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
