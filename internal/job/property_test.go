package job

import (
	"math/rand/v2"
	"testing"
	"testing/quick"
)

// TestConservationUnderRandomLifecycles drives jobs through random legal
// lifecycle sequences (queueing, starting, suspension ping-pong,
// restarts, wait reschedules) and checks the accounting conservation
// invariant at completion. This is the invariant the whole metrics layer
// rests on.
func TestConservationUnderRandomLifecycles(t *testing.T) {
	cfg := &quick.Config{MaxCount: 300}
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xabcdef))
		spec := Spec{
			ID:         ID(seed % 1000),
			Submit:     r.Float64() * 100,
			Work:       10 + r.Float64()*500,
			Cores:      1 + r.IntN(4),
			MemMB:      1024,
			Priority:   PriorityLow,
			Candidates: []int{0, 1, 2, 3},
		}
		j := New(spec)
		now := spec.Submit
		adv := func() float64 {
			now += r.Float64() * 50
			return now
		}
		if j.Enqueue(adv(), r.IntN(4)) != nil {
			return false
		}
		// Random walk until completed; cap steps to guarantee progress.
		for steps := 0; steps < 200; steps++ {
			switch j.State() {
			case StateWaiting:
				switch r.IntN(4) {
				case 0: // bounce to another pool queue
					if j.RescheduleWait(adv()) != nil {
						return false
					}
				default:
					speed := 0.5 + r.Float64()*1.5
					if j.Start(adv(), r.IntN(100), speed) != nil {
						return false
					}
				}
			case StateTransit:
				if j.Enqueue(adv(), r.IntN(4)) != nil {
					return false
				}
			case StateRunning:
				rem := j.RemainingAt(now)
				if r.IntN(3) == 0 || rem < 1e-9 {
					// Run to completion.
					now += rem
					if j.Complete(now) != nil {
						return false
					}
				} else {
					// Suspend strictly before the job would finish; the
					// simulator cancels the completion event on suspend,
					// so overshoot cannot happen there either.
					now += r.Float64() * rem * 0.9
					if j.Suspend(now) != nil {
						return false
					}
				}
			case StateSuspended:
				switch r.IntN(3) {
				case 0:
					if j.RestartFrom(adv()) != nil {
						return false
					}
				default:
					if j.Resume(adv()) != nil {
						return false
					}
				}
			case StateCompleted:
				return j.CheckConservation() == nil
			default:
				return false
			}
		}
		// If we ran out of steps, force completion and check anyway.
		for j.State() != StateCompleted {
			switch j.State() {
			case StateWaiting:
				if j.Start(adv(), 0, 1.0) != nil {
					return false
				}
			case StateTransit:
				if j.Enqueue(adv(), 0) != nil {
					return false
				}
			case StateSuspended:
				if j.Resume(adv()) != nil {
					return false
				}
			case StateRunning:
				now += j.RemainingAt(now)
				if j.Complete(now) != nil {
					return false
				}
			}
		}
		return j.CheckConservation() == nil
	}, cfg)
	if err != nil {
		t.Fatal(err)
	}
}

// TestWastedNeverNegative checks that every accounting bucket stays
// nonnegative under random lifecycles.
func TestWastedNeverNegative(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := rand.New(rand.NewPCG(seed, 77))
		j := New(Spec{
			ID: 1, Submit: 0, Work: 100, Cores: 1, MemMB: 1,
			Priority: PriorityHigh, Candidates: []int{0},
		})
		now := 0.0
		adv := func() float64 { now += r.Float64() * 20; return now }
		if j.Enqueue(adv(), 0) != nil {
			return false
		}
		if j.Start(adv(), 0, 1.0) != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			if j.Suspend(adv()) != nil {
				return false
			}
			if r.IntN(2) == 0 {
				if j.RestartFrom(adv()) != nil {
					return false
				}
				if j.Enqueue(adv(), 0) != nil {
					return false
				}
				if j.Start(adv(), 0, 1.0) != nil {
					return false
				}
			} else if j.Resume(adv()) != nil {
				return false
			}
		}
		a := j.Acct()
		return a.Wait >= 0 && a.Suspend >= 0 && a.WastedExec >= 0 &&
			a.RescheduleOverhead >= 0 && a.Exec >= 0 && a.Wasted() >= 0
	}, &quick.Config{MaxCount: 200})
	if err != nil {
		t.Fatal(err)
	}
}
