package job

// JobState is the complete mutable state of a live Job, exported for
// checkpointing. Together with the immutable Spec it fully determines
// the job's future behavior: restoring it mid-run and continuing
// produces accounting bit-identical to a never-interrupted run.
type JobState struct {
	State           State
	StateSince      float64
	Pool            int
	Machine         int
	Speed           float64
	Progress        float64
	AttemptExecWall float64
	Acct            Accounting
	FirstStart      float64
	Completed       float64
}

// ExportState snapshots the job's mutable state. It is a pure read.
func (j *Job) ExportState() JobState {
	return JobState{
		State:           j.state,
		StateSince:      j.stateSince,
		Pool:            j.Pool,
		Machine:         j.Machine,
		Speed:           j.speed,
		Progress:        j.progress,
		AttemptExecWall: j.attemptExecWall,
		Acct:            j.acct,
		FirstStart:      j.FirstStart,
		Completed:       j.Completed,
	}
}

// RestoreState overwrites the job's mutable state with a previously
// exported snapshot.
func (j *Job) RestoreState(st JobState) {
	j.state = st.State
	j.stateSince = st.StateSince
	j.Pool = st.Pool
	j.Machine = st.Machine
	j.speed = st.Speed
	j.progress = st.Progress
	j.attemptExecWall = st.AttemptExecWall
	j.acct = st.Acct
	j.FirstStart = st.FirstStart
	j.Completed = st.Completed
}
