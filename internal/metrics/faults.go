package metrics

import (
	"fmt"

	"netbatch/internal/job"
)

// FaultStats is the raw fault-counter slice of a completed run. It
// mirrors the engine's fault counters so this package does not import
// the simulator; the experiment layer copies them over.
type FaultStats struct {
	// Crashes counts machine-crash events; MaintWindows counts
	// maintenance-window openings.
	Crashes      int64 `json:"crashes"`
	MaintWindows int64 `json:"maint_windows"`
	// Kills counts jobs killed by crashes or maintenance; Requeues
	// counts their kill-and-requeue dispatches.
	Kills    int64 `json:"kills"`
	Requeues int64 `json:"requeues"`
	// WorkLost is the execution wall-clock destroyed by kills, minutes.
	WorkLost float64 `json:"work_lost"`
	// DownCoreMinutes is the capacity lost to downtime (integral of
	// down cores over the run), and CoreMinutes the run's total
	// capacity (platform cores × makespan).
	DownCoreMinutes float64 `json:"down_core_minutes"`
	CoreMinutes     float64 `json:"core_minutes"`
}

// FaultSummary is the run-level fault & maintenance metric set: the
// raw counters plus availability (capacity-weighted uptime) and
// goodput (the share of executed wall-clock that survived to
// completion rather than being destroyed by a kill).
type FaultSummary struct {
	FaultStats

	// AvailabilityPct is 100 × (1 − DownCoreMinutes / CoreMinutes).
	AvailabilityPct float64 `json:"availability_pct"`
	// GoodputPct is 100 × (total exec − WorkLost) / total exec.
	GoodputPct float64 `json:"goodput_pct"`
	// TotalExec is the executed wall-clock over all jobs, minutes
	// (the goodput denominator).
	TotalExec float64 `json:"total_exec"`
}

// SummarizeFaults computes the fault metric set over completed jobs
// and the engine's fault counters. With zero counters (faults
// disabled) availability and goodput are both 100%.
func SummarizeFaults(jobs []*job.Job, fs FaultStats) (FaultSummary, error) {
	out := FaultSummary{FaultStats: fs, AvailabilityPct: 100, GoodputPct: 100}
	for _, j := range jobs {
		if j.State() != job.StateCompleted {
			return out, fmt.Errorf("metrics: job %d incomplete (%v)", j.Spec.ID, j.State())
		}
		out.TotalExec += j.Acct().Exec
	}
	if fs.CoreMinutes > 0 {
		out.AvailabilityPct = 100 * (1 - fs.DownCoreMinutes/fs.CoreMinutes)
	}
	if out.TotalExec > 0 {
		out.GoodputPct = 100 * (out.TotalExec - fs.WorkLost) / out.TotalExec
	}
	return out, nil
}
