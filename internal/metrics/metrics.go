// Package metrics computes the paper's evaluation metrics (§3.1) from
// completed simulation runs:
//
//   - Suspend Rate — fraction of all submitted jobs suspended at least
//     once during their lifetime.
//   - AvgCT — average completion time, over all jobs and over the
//     suspended-only subset.
//   - AvgST — average total suspend time of suspended jobs.
//   - AvgWCT — average wasted completion time over all jobs, decomposed
//     into (c1) wait time, (c2) suspend time, and (c3) wasted time by
//     rescheduling (destroyed progress plus transfer overhead).
//
// It also produces the suspension-time sample behind Figure 2's CDF and
// task-level summaries for the §2.2 task productivity discussion.
package metrics

import (
	"fmt"
	"math"

	"netbatch/internal/job"
	"netbatch/internal/stats"
)

// Summary is the per-run metric set; one Summary corresponds to one row
// of the paper's Tables 1–5.
type Summary struct {
	// Jobs is the number of completed jobs.
	Jobs int `json:"jobs"`
	// SuspendedJobs is the number suspended at least once.
	SuspendedJobs int `json:"suspended_jobs"`
	// SuspendRate is SuspendedJobs/Jobs in percent.
	SuspendRate float64 `json:"suspend_rate_pct"`

	// AvgCTSuspended is the mean completion time of suspended jobs.
	AvgCTSuspended float64 `json:"avg_ct_suspended"`
	// AvgCTAll is the mean completion time of all jobs.
	AvgCTAll float64 `json:"avg_ct_all"`
	// AvgST is the mean total suspend time of suspended jobs.
	AvgST float64 `json:"avg_st"`
	// AvgWCT is the mean wasted completion time of all jobs.
	AvgWCT float64 `json:"avg_wct"`

	// Waste components, averaged over all jobs (Figure 3):
	// AvgWCT = WaitComp + SuspendComp + ReschedComp.
	WaitComp    float64 `json:"wait_comp"`
	SuspendComp float64 `json:"suspend_comp"`
	ReschedComp float64 `json:"resched_comp"`

	// MedianCT and P90CT are completion-time quantiles over all jobs.
	MedianCT float64 `json:"median_ct"`
	P90CT    float64 `json:"p90_ct"`
	// AvgWait is the mean wait time over all jobs.
	AvgWait float64 `json:"avg_wait"`

	// Restarts and WaitReschedules total the rescheduling activity.
	Restarts        int `json:"restarts"`
	WaitReschedules int `json:"wait_reschedules"`
	// Suspensions totals preemption events (≥ SuspendedJobs; jobs can
	// be suspended repeatedly, §2.2).
	Suspensions int `json:"suspensions"`
	// Kills totals fault-induced aborts (machine crashes, maintenance
	// windows); zero on fault-free runs.
	Kills int `json:"kills,omitempty"`
}

// Summarize computes the Summary over completed jobs. It returns an
// error if any job is incomplete, since partial accounting would skew
// every average.
func Summarize(jobs []*job.Job) (Summary, error) {
	var s Summary
	if len(jobs) == 0 {
		return s, fmt.Errorf("metrics: no jobs to summarize")
	}
	cts := make([]float64, 0, len(jobs))
	var ctAll, ctSusp, st, wct, wait, susp, resched stats.Mean
	for _, j := range jobs {
		if j.State() != job.StateCompleted {
			return s, fmt.Errorf("metrics: job %d incomplete (%v)", j.Spec.ID, j.State())
		}
		a := j.Acct()
		ct := j.CompletionTime()
		cts = append(cts, ct)
		ctAll.Add(ct)
		wct.Add(a.Wasted())
		wait.Add(a.Wait)
		susp.Add(a.Suspend)
		resched.Add(a.WastedExec + a.RescheduleOverhead)
		s.Restarts += a.Restarts
		s.WaitReschedules += a.WaitReschedules
		s.Suspensions += a.Suspensions
		s.Kills += a.Kills
		if j.EverSuspended() {
			s.SuspendedJobs++
			ctSusp.Add(ct)
			st.Add(a.Suspend)
		}
	}
	s.Jobs = len(jobs)
	s.SuspendRate = float64(s.SuspendedJobs) / float64(s.Jobs) * 100
	s.AvgCTSuspended = ctSusp.Mean()
	s.AvgCTAll = ctAll.Mean()
	s.AvgST = st.Mean()
	s.AvgWCT = wct.Mean()
	s.WaitComp = wait.Mean()
	s.SuspendComp = susp.Mean()
	s.ReschedComp = resched.Mean()
	s.AvgWait = wait.Mean()
	var err error
	if s.MedianCT, err = stats.Quantile(cts, 0.5); err != nil {
		return s, err
	}
	if s.P90CT, err = stats.Quantile(cts, 0.9); err != nil {
		return s, err
	}
	return s, nil
}

// CheckComponents verifies AvgWCT decomposes exactly into its three
// components (the Figure 3 identity).
func (s *Summary) CheckComponents() error {
	sum := s.WaitComp + s.SuspendComp + s.ReschedComp
	if math.Abs(sum-s.AvgWCT) > 1e-6*(1+math.Abs(s.AvgWCT)) {
		return fmt.Errorf("metrics: waste components %v do not sum to AvgWCT %v", sum, s.AvgWCT)
	}
	return nil
}

// SuspensionTimes returns the total suspend time of every job suspended
// at least once — the sample behind Figure 2's CDF.
func SuspensionTimes(jobs []*job.Job) []float64 {
	var out []float64
	for _, j := range jobs {
		if j.EverSuspended() {
			out = append(out, j.Acct().Suspend)
		}
	}
	return out
}

// SuspensionCDF builds the Figure 2 CDF from completed jobs.
func SuspensionCDF(jobs []*job.Job) *stats.CDF {
	return stats.NewCDF(SuspensionTimes(jobs))
}

// TaskSummary aggregates the §2.2 task view: a task (set of jobs) is
// complete only when its last member finishes, so one straggler delays
// the whole task's result.
type TaskSummary struct {
	// Tasks is the number of multi-job tasks observed.
	Tasks int `json:"tasks"`
	// AvgSpan is the mean of (last member completion − first member
	// submission) across tasks.
	AvgSpan float64 `json:"avg_span"`
	// AvgStraggler is the mean of (last completion − mean member
	// completion), the straggler-induced delay.
	AvgStraggler float64 `json:"avg_straggler"`
	// TouchedBySuspension is the fraction of tasks with at least one
	// suspended member, in percent.
	TouchedBySuspension float64 `json:"touched_by_suspension_pct"`
}

// SummarizeTasks computes task-level metrics over completed jobs.
// Jobs with TaskID zero are ignored.
func SummarizeTasks(jobs []*job.Job) TaskSummary {
	type acc struct {
		firstSubmit  float64
		lastComplete float64
		sumComplete  float64
		n            int
		suspended    bool
	}
	tasks := make(map[int64]*acc)
	for _, j := range jobs {
		id := j.Spec.TaskID
		if id == 0 || j.State() != job.StateCompleted {
			continue
		}
		a, ok := tasks[id]
		if !ok {
			a = &acc{firstSubmit: j.Spec.Submit, lastComplete: j.Completed}
			tasks[id] = a
		}
		if j.Spec.Submit < a.firstSubmit {
			a.firstSubmit = j.Spec.Submit
		}
		if j.Completed > a.lastComplete {
			a.lastComplete = j.Completed
		}
		a.sumComplete += j.Completed
		a.n++
		if j.EverSuspended() {
			a.suspended = true
		}
	}
	var out TaskSummary
	var span, strag stats.Mean
	suspended := 0
	for _, a := range tasks {
		if a.n < 2 {
			continue
		}
		out.Tasks++
		span.Add(a.lastComplete - a.firstSubmit)
		strag.Add(a.lastComplete - a.sumComplete/float64(a.n))
		if a.suspended {
			suspended++
		}
	}
	out.AvgSpan = span.Mean()
	out.AvgStraggler = strag.Mean()
	if out.Tasks > 0 {
		out.TouchedBySuspension = float64(suspended) / float64(out.Tasks) * 100
	}
	return out
}
