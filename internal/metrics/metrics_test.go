package metrics

import (
	"math"
	"testing"

	"netbatch/internal/job"
)

// completedJob builds a completed job with a scripted lifecycle.
// Timeline: submit -> wait w -> run r1 -> [suspend s -> resume] ->
// complete. If restart is true the job instead restarts after the
// suspension and reruns from scratch.
func completedJob(t *testing.T, id job.ID, submit, wait, work, suspend float64, restart bool) *job.Job {
	t.Helper()
	j := job.New(job.Spec{
		ID: id, Submit: submit, Work: work, Cores: 1, MemMB: 1,
		Priority: job.PriorityLow, Candidates: []int{0, 1},
	})
	now := submit
	must := func(err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	must(j.Enqueue(now, 0))
	now += wait
	must(j.Start(now, 0, 1.0))
	if suspend > 0 {
		now += work / 2
		must(j.Suspend(now))
		now += suspend
		if restart {
			must(j.RestartFrom(now))
			must(j.Enqueue(now, 1))
			must(j.Start(now, 1, 1.0))
			now += work
		} else {
			must(j.Resume(now))
			now += work / 2
		}
	} else {
		now += work
	}
	must(j.Complete(now))
	return j
}

func TestSummarizeBasics(t *testing.T) {
	jobs := []*job.Job{
		completedJob(t, 1, 0, 10, 100, 0, false), // CT 110, waste 10
		completedJob(t, 2, 5, 0, 100, 40, false), // CT 140, waste 40, suspended
		completedJob(t, 3, 9, 20, 100, 0, false), // CT 120, waste 20
		completedJob(t, 4, 2, 0, 100, 30, true),  // CT 180, waste 30+50, suspended+restarted
	}
	s, err := Summarize(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if s.Jobs != 4 || s.SuspendedJobs != 2 {
		t.Fatalf("counts = %+v", s)
	}
	if math.Abs(s.SuspendRate-50) > 1e-9 {
		t.Fatalf("suspend rate = %v", s.SuspendRate)
	}
	if math.Abs(s.AvgCTAll-(110+140+120+180)/4.0) > 1e-9 {
		t.Fatalf("AvgCTAll = %v", s.AvgCTAll)
	}
	if math.Abs(s.AvgCTSuspended-(140+180)/2.0) > 1e-9 {
		t.Fatalf("AvgCTSuspended = %v", s.AvgCTSuspended)
	}
	if math.Abs(s.AvgST-(40+30)/2.0) > 1e-9 {
		t.Fatalf("AvgST = %v", s.AvgST)
	}
	// Waste: job1 10, job2 40, job3 20, job4 30 suspend + 50 wasted exec.
	if math.Abs(s.AvgWCT-(10+40+20+80)/4.0) > 1e-9 {
		t.Fatalf("AvgWCT = %v", s.AvgWCT)
	}
	if err := s.CheckComponents(); err != nil {
		t.Fatal(err)
	}
	if s.Restarts != 1 || s.Suspensions != 2 {
		t.Fatalf("restarts=%d suspensions=%d", s.Restarts, s.Suspensions)
	}
	if s.MedianCT <= 0 || s.P90CT < s.MedianCT {
		t.Fatalf("quantiles: median=%v p90=%v", s.MedianCT, s.P90CT)
	}
}

func TestSummarizeComponentsIdentity(t *testing.T) {
	jobs := []*job.Job{
		completedJob(t, 1, 0, 12, 60, 25, false),
		completedJob(t, 2, 0, 0, 60, 33, true),
		completedJob(t, 3, 0, 7, 60, 0, false),
	}
	s, err := Summarize(jobs)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.CheckComponents(); err != nil {
		t.Fatal(err)
	}
	if s.WaitComp != s.AvgWait {
		t.Fatal("AvgWait should equal the wait component")
	}
}

func TestSummarizeErrors(t *testing.T) {
	if _, err := Summarize(nil); err == nil {
		t.Fatal("empty input should error")
	}
	incomplete := job.New(job.Spec{
		ID: 1, Work: 10, Cores: 1, MemMB: 1,
		Priority: job.PriorityLow, Candidates: []int{0},
	})
	if _, err := Summarize([]*job.Job{incomplete}); err == nil {
		t.Fatal("incomplete job should error")
	}
}

func TestSuspensionTimesAndCDF(t *testing.T) {
	jobs := []*job.Job{
		completedJob(t, 1, 0, 0, 100, 0, false),
		completedJob(t, 2, 0, 0, 100, 40, false),
		completedJob(t, 3, 0, 0, 100, 80, false),
	}
	ts := SuspensionTimes(jobs)
	if len(ts) != 2 {
		t.Fatalf("suspension sample size = %d", len(ts))
	}
	cdf := SuspensionCDF(jobs)
	if cdf.N() != 2 {
		t.Fatalf("CDF N = %d", cdf.N())
	}
	if got := cdf.At(40); math.Abs(got-0.5) > 1e-9 {
		t.Fatalf("CDF(40) = %v", got)
	}
}

func TestSummarizeTasks(t *testing.T) {
	mk := func(id job.ID, taskID int64, submit, wait, work, suspend float64) *job.Job {
		j := completedJob(t, id, submit, wait, work, suspend, false)
		j.Spec.TaskID = taskID
		return j
	}
	jobs := []*job.Job{
		// Task 1: two members, one suspended straggler.
		mk(1, 1, 0, 0, 100, 0),  // completes 100
		mk(2, 1, 0, 0, 100, 60), // completes 160
		// Task 2: two clean members.
		mk(3, 2, 10, 0, 50, 0), // completes 60
		mk(4, 2, 10, 0, 50, 0), // completes 60
		// Singleton task is ignored (n < 2).
		mk(5, 3, 0, 0, 10, 0),
		// Untasked job ignored.
		mk(6, 0, 0, 0, 10, 0),
	}
	ts := SummarizeTasks(jobs)
	if ts.Tasks != 2 {
		t.Fatalf("tasks = %d", ts.Tasks)
	}
	// Task 1 span 160, task 2 span 50.
	if math.Abs(ts.AvgSpan-105) > 1e-9 {
		t.Fatalf("AvgSpan = %v", ts.AvgSpan)
	}
	// Task 1 straggler delay 160-130=30; task 2: 0.
	if math.Abs(ts.AvgStraggler-15) > 1e-9 {
		t.Fatalf("AvgStraggler = %v", ts.AvgStraggler)
	}
	if math.Abs(ts.TouchedBySuspension-50) > 1e-9 {
		t.Fatalf("TouchedBySuspension = %v", ts.TouchedBySuspension)
	}
}

func TestSummarizeTasksEmpty(t *testing.T) {
	ts := SummarizeTasks(nil)
	if ts.Tasks != 0 || ts.AvgSpan != 0 || ts.TouchedBySuspension != 0 {
		t.Fatalf("empty task summary = %+v", ts)
	}
}
