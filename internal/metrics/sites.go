package metrics

import (
	"fmt"

	"netbatch/internal/job"
	"netbatch/internal/stats"
)

// SiteSummary is the per-site slice of a multi-site run: how many jobs
// finished at the site, how they fared, and how much of its work was
// imported from other sites.
type SiteSummary struct {
	// Site is the site ID.
	Site int `json:"site"`
	// Jobs is the number of jobs that completed at the site.
	Jobs int `json:"jobs"`
	// SuspendRate is the percentage of the site's jobs suspended at
	// least once.
	SuspendRate float64 `json:"suspend_rate_pct"`
	// AvgCT is the mean completion time of the site's jobs.
	AvgCT float64 `json:"avg_ct"`
	// AvgWait is the mean wait time of the site's jobs.
	AvgWait float64 `json:"avg_wait"`
	// RemotePct is the percentage of the site's jobs that originated at
	// another site (imported work).
	RemotePct float64 `json:"remote_pct"`
}

// SummarizeSites aggregates completed jobs by the site of the pool they
// finished in. siteOf maps pool IDs to site IDs (cluster.Platform.SiteOf).
// Sites with no completed jobs report zero metrics.
func SummarizeSites(jobs []*job.Job, siteOf func(pool int) int, nSites int) ([]SiteSummary, error) {
	if nSites < 1 {
		return nil, fmt.Errorf("metrics: non-positive site count %d", nSites)
	}
	out := make([]SiteSummary, nSites)
	ct := make([]stats.Mean, nSites)
	wait := make([]stats.Mean, nSites)
	suspended := make([]int, nSites)
	remote := make([]int, nSites)
	for _, j := range jobs {
		if j.State() != job.StateCompleted {
			return nil, fmt.Errorf("metrics: job %d incomplete (%v)", j.Spec.ID, j.State())
		}
		s := siteOf(j.Pool)
		if s < 0 || s >= nSites {
			return nil, fmt.Errorf("metrics: job %d finished at pool %d mapping to site %d of %d",
				j.Spec.ID, j.Pool, s, nSites)
		}
		out[s].Jobs++
		ct[s].Add(j.CompletionTime())
		wait[s].Add(j.Acct().Wait)
		if j.EverSuspended() {
			suspended[s]++
		}
		if j.Spec.Site != s {
			remote[s]++
		}
	}
	for s := range out {
		out[s].Site = s
		if out[s].Jobs == 0 {
			continue
		}
		n := float64(out[s].Jobs)
		out[s].SuspendRate = float64(suspended[s]) / n * 100
		out[s].AvgCT = ct[s].Mean()
		out[s].AvgWait = wait[s].Mean()
		out[s].RemotePct = float64(remote[s]) / n * 100
	}
	return out, nil
}
