// Package obs is the engine observability layer: a metrics registry
// (counters, gauges, log2 histograms), a Chrome trace_event timeline
// tracer, and a JSONL run log for streaming telemetry.
//
// The whole package is built around a nil-sink fast path. Every
// handle type (*Counter, *Gauge, *Histogram, *Tracer, *Process,
// *Track, *RunLog) treats a nil receiver as "observability disabled"
// and returns immediately, so instrumented code records
// unconditionally — no flags, no double bookkeeping — and a disabled
// run pays a single predicted branch per record site, zero
// allocations. Engines resolve handles once per run (a nil *Registry
// hands out nil handles), keeping name lookups off hot paths.
//
// Nothing in this package may influence simulation behavior: metrics
// and timelines attribute wall-clock execution, not simulated time,
// and are explicitly excluded from the engines' bit-identity
// contract.
package obs

import (
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
)

// A Counter is a monotonically increasing sum, safe for concurrent
// use. The nil Counter discards all updates.
type Counter struct{ v atomic.Int64 }

// Add adds n to the counter. No-op on a nil receiver.
func (c *Counter) Add(n int64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current sum; 0 on a nil receiver.
func (c *Counter) Value() int64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// A Gauge records a level, safe for concurrent use. The nil Gauge
// discards all updates.
type Gauge struct{ v atomic.Int64 }

// Set overwrites the gauge. No-op on a nil receiver.
func (g *Gauge) Set(n int64) {
	if g == nil {
		return
	}
	g.v.Store(n)
}

// Max raises the gauge to n if n exceeds the current value — the
// high-water-mark update used for queue depths. No-op on nil.
func (g *Gauge) Max(n int64) {
	if g == nil {
		return
	}
	for {
		cur := g.v.Load()
		if n <= cur || g.v.CompareAndSwap(cur, n) {
			return
		}
	}
}

// Value returns the current level; 0 on a nil receiver.
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// A Histogram buckets observations by log2: bucket i counts values in
// [2^i, 2^(i+1)), with values ≤ 1 in bucket 0 — the same bucketing
// the optimistic engine uses for group-commit run lengths. Safe for
// concurrent use; the nil Histogram discards all observations.
type Histogram struct {
	count atomic.Int64
	sum   atomic.Int64
	bkt   [64]atomic.Int64
}

// Observe records one value. No-op on a nil receiver.
func (h *Histogram) Observe(n int64) {
	if h == nil {
		return
	}
	h.count.Add(1)
	h.sum.Add(n)
	i := 0
	if n > 1 {
		i = bits.Len64(uint64(n)) - 1
	}
	h.bkt[i].Add(1)
}

// Count returns the number of observations; 0 on a nil receiver.
func (h *Histogram) Count() int64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the exact sum of observed values (log2 buckets alone
// cannot reconstruct it); 0 on a nil receiver.
func (h *Histogram) Sum() int64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Buckets returns the per-log2-bucket counts, trimmed to the highest
// non-empty bucket; nil on a nil receiver or when empty.
func (h *Histogram) Buckets() []int64 {
	if h == nil {
		return nil
	}
	hi := -1
	var out [64]int64
	for i := range h.bkt {
		out[i] = h.bkt[i].Load()
		if out[i] != 0 {
			hi = i
		}
	}
	if hi < 0 {
		return nil
	}
	return append([]int64(nil), out[:hi+1]...)
}

// A Registry names and owns metrics. The zero value is unusable; use
// NewRegistry. A nil *Registry is the disabled sink: every getter
// returns a nil handle, so resolution and recording both no-op.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: make(map[string]*Counter),
		gauges:   make(map[string]*Gauge),
		hists:    make(map[string]*Histogram),
	}
}

// Counter returns the named counter, creating it on first use; nil on
// a nil receiver.
func (r *Registry) Counter(name string) *Counter {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counters[name]
	if c == nil {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use; nil on a
// nil receiver.
func (r *Registry) Gauge(name string) *Gauge {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram, creating it on first use;
// nil on a nil receiver.
func (r *Registry) Histogram(name string) *Histogram {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &Histogram{}
		r.hists[name] = h
	}
	return h
}

// A Metric is one registry entry at snapshot time. For histograms,
// Value is the observation count and Sum/Buckets carry the rest.
type Metric struct {
	Name    string  `json:"name"`
	Kind    string  `json:"kind"` // "counter" | "gauge" | "histogram"
	Value   int64   `json:"value"`
	Sum     int64   `json:"sum,omitempty"`
	Buckets []int64 `json:"buckets,omitempty"`
}

// Snapshot returns every metric sorted by name — a deterministic
// ordering so snapshots diff cleanly. Nil on a nil receiver.
// Concurrent recorders may still be running; each value is an
// independently atomic read.
func (r *Registry) Snapshot() []Metric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]Metric, 0, len(r.counters)+len(r.gauges)+len(r.hists))
	for name, c := range r.counters {
		out = append(out, Metric{Name: name, Kind: "counter", Value: c.Value()})
	}
	for name, g := range r.gauges {
		out = append(out, Metric{Name: name, Kind: "gauge", Value: g.Value()})
	}
	for name, h := range r.hists {
		out = append(out, Metric{Name: name, Kind: "histogram", Value: h.Count(), Sum: h.Sum(), Buckets: h.Buckets()})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
