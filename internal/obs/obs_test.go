package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"sync"
	"testing"
)

// Every handle type must no-op on nil receivers — the disabled fast
// path instrumented code relies on.
func TestNilSafety(t *testing.T) {
	var r *Registry
	c, g, h := r.Counter("c"), r.Gauge("g"), r.Histogram("h")
	if c != nil || g != nil || h != nil {
		t.Fatal("nil registry handed out non-nil handles")
	}
	c.Add(1)
	if c.Value() != 0 {
		t.Error("nil counter recorded")
	}
	g.Set(5)
	g.Max(9)
	if g.Value() != 0 {
		t.Error("nil gauge recorded")
	}
	h.Observe(3)
	if h.Count() != 0 || h.Sum() != 0 || h.Buckets() != nil {
		t.Error("nil histogram recorded")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot non-nil")
	}

	var tr *Tracer
	p := tr.Process("cell")
	if p != nil {
		t.Fatal("nil tracer handed out a process")
	}
	tk := p.Track("shard")
	if tk != nil {
		t.Fatal("nil process handed out a track")
	}
	tk.Span("x", tk.Now(), Arg{"n", 1})
	tk.Instant("y")
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatalf("nil tracer WriteJSON: %v", err)
	}
	var out struct {
		TraceEvents []json.RawMessage `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("nil tracer emitted invalid JSON: %v", err)
	}
	if len(out.TraceEvents) != 0 {
		t.Errorf("nil tracer emitted %d events", len(out.TraceEvents))
	}

	var l *RunLog
	if err := l.Emit(RunRecord{Type: "progress"}); err != nil {
		t.Errorf("nil runlog Emit: %v", err)
	}
}

func TestHistogramBuckets(t *testing.T) {
	h := NewRegistry().Histogram("h")
	// bucket 0: n ≤ 1; bucket i: [2^i, 2^(i+1))
	for _, n := range []int64{-3, 0, 1} {
		h.Observe(n)
	}
	for _, n := range []int64{2, 3} {
		h.Observe(n)
	}
	for _, n := range []int64{4, 5, 7} {
		h.Observe(n)
	}
	h.Observe(1024)
	got := h.Buckets()
	want := make([]int64, 11)
	want[0], want[1], want[2], want[10] = 3, 2, 3, 1
	if len(got) != len(want) {
		t.Fatalf("bucket count: got %d want %d (%v)", len(got), len(want), got)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("bucket %d: got %d want %d", i, got[i], want[i])
		}
	}
	if h.Count() != 9 {
		t.Errorf("count: got %d want 9", h.Count())
	}
	if h.Sum() != -3+0+1+2+3+4+5+7+1024 {
		t.Errorf("sum: got %d", h.Sum())
	}
}

func TestGaugeMax(t *testing.T) {
	g := NewRegistry().Gauge("g")
	g.Max(7)
	g.Max(3)
	if g.Value() != 7 {
		t.Errorf("high-water: got %d want 7", g.Value())
	}
	g.Set(2)
	if g.Value() != 2 {
		t.Errorf("set: got %d want 2", g.Value())
	}
}

// Many goroutines hammering the same names must neither race (run
// with -race) nor lose updates.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	const workers, per = 8, 10_000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			c := r.Counter("shared.counter")
			g := r.Gauge("shared.gauge")
			h := r.Histogram("shared.hist")
			for i := 0; i < per; i++ {
				c.Add(1)
				g.Max(int64(i))
				h.Observe(int64(i % 37))
			}
		}()
	}
	wg.Wait()
	if got := r.Counter("shared.counter").Value(); got != workers*per {
		t.Errorf("counter lost updates: got %d want %d", got, workers*per)
	}
	if got := r.Gauge("shared.gauge").Value(); got != per-1 {
		t.Errorf("gauge high-water: got %d want %d", got, per-1)
	}
	if got := r.Histogram("shared.hist").Count(); got != workers*per {
		t.Errorf("histogram lost observations: got %d want %d", got, workers*per)
	}
}

func TestSnapshotDeterministic(t *testing.T) {
	r := NewRegistry()
	r.Counter("z.last").Add(3)
	r.Gauge("a.first").Set(1)
	r.Histogram("m.middle").Observe(4)
	snap := r.Snapshot()
	names := make([]string, len(snap))
	for i, m := range snap {
		names[i] = m.Name
	}
	if strings.Join(names, ",") != "a.first,m.middle,z.last" {
		t.Errorf("snapshot not name-sorted: %v", names)
	}
	if snap[1].Kind != "histogram" || snap[1].Value != 1 || snap[1].Sum != 4 {
		t.Errorf("histogram metric malformed: %+v", snap[1])
	}
}

// The emitted timeline must be valid Chrome trace_event JSON: an
// object with a traceEvents array where every event carries
// name/ph/ts/pid/tid, complete events carry dur, and every lane is
// labeled by metadata events.
func TestTracerChromeFormat(t *testing.T) {
	tr := NewTracer()
	p1 := tr.Process("cell multisite/norm/r0")
	cd := p1.Track("coordinator")
	sh := p1.Track("shard 00")
	t0 := cd.Now()
	cd.Span("round", t0, Arg{"horizon_min", 30})
	sh.Span("burst", sh.Now(), Arg{"events", 12}, Arg{"steals", 1})
	sh.Instant("snapshot")
	cd.Instant("rollback", Arg{"undone", 5})
	p2 := tr.Process("cell multisite/norm/r1")
	p2.Track("serial").Span("checkpoint", 0, Arg{"bytes", 4096})

	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var out struct {
		TraceEvents []map[string]any `json:"traceEvents"`
		Unit        string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &out); err != nil {
		t.Fatalf("timeline is not valid JSON: %v\n%s", err, buf.String())
	}
	if out.Unit != "ms" {
		t.Errorf("displayTimeUnit: got %q want ms", out.Unit)
	}
	metaNames := map[string]bool{}
	evNames := map[string]bool{}
	for _, ev := range out.TraceEvents {
		ph, _ := ev["ph"].(string)
		name, _ := ev["name"].(string)
		if name == "" {
			t.Fatalf("event without name: %v", ev)
		}
		if _, ok := ev["pid"].(float64); !ok {
			t.Fatalf("event without pid: %v", ev)
		}
		if _, ok := ev["tid"].(float64); !ok {
			t.Fatalf("event without tid: %v", ev)
		}
		switch ph {
		case "M":
			args, _ := ev["args"].(map[string]any)
			label, _ := args["name"].(string)
			metaNames[label] = true
		case "X":
			if ts, ok := ev["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("complete event bad ts: %v", ev)
			}
			if dur, ok := ev["dur"].(float64); !ok || dur < 0 {
				t.Fatalf("complete event bad dur: %v", ev)
			}
			evNames[name] = true
		case "i":
			if _, ok := ev["ts"].(float64); !ok {
				t.Fatalf("instant without ts: %v", ev)
			}
			evNames[name] = true
		default:
			t.Fatalf("unexpected ph %q: %v", ph, ev)
		}
	}
	for _, want := range []string{"cell multisite/norm/r0", "cell multisite/norm/r1", "coordinator", "shard 00", "serial"} {
		if !metaNames[want] {
			t.Errorf("missing metadata label %q (have %v)", want, metaNames)
		}
	}
	for _, want := range []string{"round", "burst", "snapshot", "rollback", "checkpoint"} {
		if !evNames[want] {
			t.Errorf("missing event %q", want)
		}
	}
}

func TestRunLogJSONL(t *testing.T) {
	var buf bytes.Buffer
	l := NewRunLog(&buf)
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 50; j++ {
				l.Emit(RunRecord{Type: "progress", Cell: "c", Events: int64(j)})
			}
		}()
	}
	wg.Wait()
	l.Emit(RunRecord{Type: "metrics", Metrics: []Metric{{Name: "sim.events", Kind: "counter", Value: 9}}})
	lines := strings.Split(strings.TrimSuffix(buf.String(), "\n"), "\n")
	if len(lines) != 201 {
		t.Fatalf("line count: got %d want 201", len(lines))
	}
	for _, line := range lines {
		var rec RunRecord
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("bad JSONL line %q: %v", line, err)
		}
		if rec.Type == "" {
			t.Fatalf("record without type: %q", line)
		}
	}
}
