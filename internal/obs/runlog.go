package obs

import (
	"encoding/json"
	"io"
	"sync"
)

// A Progress report is emitted by an engine from its cheap sync
// points (the serial ctx-poll stride, round barriers, commit passes)
// while a run is in flight. Fields describe the execution so far, not
// the final result.
type Progress struct {
	SimTime   float64 // simulated-time frontier, minutes
	Events    int64   // events dispatched so far
	Rollbacks int64   // optimistic rollbacks so far (0 elsewhere)
}

// A RunRecord is one line of the JSONL run log. Type is "cell_start",
// "progress", "cell_done", or "metrics"; the other fields are
// populated as applicable.
type RunRecord struct {
	Type         string   `json:"type"`
	Cell         string   `json:"cell,omitempty"`    // scenario/policy/replicate label
	WallMS       float64  `json:"wall_ms,omitempty"` // wall time since cell start
	SimTime      float64  `json:"t_sim,omitempty"`   // simulated-time frontier, minutes
	Events       int64    `json:"events,omitempty"`
	EventsPerSec float64  `json:"events_per_sec,omitempty"`
	ETASec       float64  `json:"eta_s,omitempty"` // crude horizon-proportional estimate
	Rollbacks    int64    `json:"rollbacks,omitempty"`
	Err          string   `json:"err,omitempty"`
	Metrics      []Metric `json:"metrics,omitempty"` // registry snapshot ("metrics" records)
}

// A RunLog serializes records as JSON lines to a writer, safe for
// concurrent emitters (experiment cells run on a worker pool). The
// nil RunLog discards everything.
type RunLog struct {
	mu sync.Mutex
	w  io.Writer
}

// NewRunLog returns a run log writing to w.
func NewRunLog(w io.Writer) *RunLog {
	return &RunLog{w: w}
}

// Emit marshals rec and appends it as one line. No-op on a nil
// receiver; marshal or write errors are returned but safe to ignore
// (telemetry must never fail a run).
func (l *RunLog) Emit(rec RunRecord) error {
	if l == nil {
		return nil
	}
	b, err := json.Marshal(rec)
	if err != nil {
		return err
	}
	b = append(b, '\n')
	l.mu.Lock()
	defer l.mu.Unlock()
	_, err = l.w.Write(b)
	return err
}
