package obs

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"sync"
	"time"
)

// A Tracer accumulates a Chrome trace_event timeline (the JSON format
// Perfetto and chrome://tracing load). Timestamps are wall-clock
// microseconds since the tracer was created: the timeline attributes
// real execution time, not simulated time.
//
// Structure mirrors the trace viewer's model: a Tracer holds
// Processes (one per experiment cell, or one per run), a Process
// holds Tracks (one per shard or coordinator), and a Track holds
// events. Track event buffers are single-writer by contract — each
// engine goroutine appends only to its own track — so recording takes
// no locks; Process/Track creation is rare and mutex-guarded.
//
// A nil Tracer/Process/Track no-ops on every method, so callers
// record unconditionally.
type Tracer struct {
	start time.Time
	mu    sync.Mutex
	procs []*Process
}

// NewTracer returns a tracer whose clock starts now.
func NewTracer() *Tracer {
	return &Tracer{start: time.Now()}
}

// A Process is one top-level group of tracks in the trace viewer.
type Process struct {
	t      *Tracer
	name   string
	pid    int
	mu     sync.Mutex
	tracks []*Track
}

// Process creates a named process group; nil on a nil receiver.
func (t *Tracer) Process(name string) *Process {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	p := &Process{t: t, name: name, pid: len(t.procs) + 1}
	t.procs = append(t.procs, p)
	return p
}

// A Track is one horizontal lane of events. All appends must come
// from a single goroutine (the lane's owner); reads happen only in
// WriteJSON after the run has quiesced.
type Track struct {
	p      *Process
	name   string
	tid    int
	events []traceEvent
}

// Track creates a named lane in creation order; nil on a nil
// receiver.
func (p *Process) Track(name string) *Track {
	if p == nil {
		return nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	tk := &Track{p: p, name: name, tid: len(p.tracks) + 1}
	p.tracks = append(p.tracks, tk)
	return tk
}

// An Arg is an optional integer annotation on a span or instant.
type Arg struct {
	Key string
	Val int64
}

type traceEvent struct {
	name string
	ph   byte // 'X' complete, 'i' instant
	ts   int64
	dur  int64
	args []Arg
}

// Now returns the current trace timestamp (µs since tracer start);
// 0 on a nil receiver. Capture it before an operation and pass it to
// Span after.
func (tk *Track) Now() int64 {
	if tk == nil {
		return 0
	}
	return int64(time.Since(tk.p.t.start) / time.Microsecond)
}

// Span records a complete event ("ph":"X") from start (a Now value)
// to the current time. No-op on a nil receiver.
func (tk *Track) Span(name string, start int64, args ...Arg) {
	if tk == nil {
		return
	}
	now := tk.Now()
	if now < start {
		now = start
	}
	tk.events = append(tk.events, traceEvent{name: name, ph: 'X', ts: start, dur: now - start, args: args})
}

// Instant records a point event ("ph":"i") at the current time.
// No-op on a nil receiver.
func (tk *Track) Instant(name string, args ...Arg) {
	if tk == nil {
		return
	}
	tk.events = append(tk.events, traceEvent{name: name, ph: 'i', ts: tk.Now(), args: args})
}

// WriteJSON emits the accumulated timeline as a Chrome trace_event
// JSON object: {"traceEvents":[...],"displayTimeUnit":"ms"}, with
// process_name/thread_name metadata so viewers label every lane.
// Call only after all recording goroutines have finished. A nil
// tracer writes an empty (but valid) trace.
func (t *Tracer) WriteJSON(w io.Writer) error {
	bw := bufio.NewWriter(w)
	bw.WriteString("{\"traceEvents\":[")
	first := true
	emit := func(s string) {
		if !first {
			bw.WriteString(",\n")
		}
		first = false
		bw.WriteString(s)
	}
	if t != nil {
		t.mu.Lock()
		procs := append([]*Process(nil), t.procs...)
		t.mu.Unlock()
		for _, p := range procs {
			emit(fmt.Sprintf("{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":0,\"args\":{\"name\":%s}}",
				p.pid, strconv.Quote(p.name)))
			p.mu.Lock()
			tracks := append([]*Track(nil), p.tracks...)
			p.mu.Unlock()
			for _, tk := range tracks {
				emit(fmt.Sprintf("{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":%d,\"tid\":%d,\"args\":{\"name\":%s}}",
					p.pid, tk.tid, strconv.Quote(tk.name)))
				for _, ev := range tk.events {
					emit(renderEvent(p.pid, tk.tid, ev))
				}
			}
		}
	}
	bw.WriteString("],\"displayTimeUnit\":\"ms\"}\n")
	return bw.Flush()
}

func renderEvent(pid, tid int, ev traceEvent) string {
	var args string
	if len(ev.args) > 0 {
		args = ",\"args\":{"
		for i, a := range ev.args {
			if i > 0 {
				args += ","
			}
			args += fmt.Sprintf("%s:%d", strconv.Quote(a.Key), a.Val)
		}
		args += "}"
	}
	switch ev.ph {
	case 'X':
		return fmt.Sprintf("{\"name\":%s,\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":%d,\"tid\":%d%s}",
			strconv.Quote(ev.name), ev.ts, ev.dur, pid, tid, args)
	default: // 'i'
		return fmt.Sprintf("{\"name\":%s,\"ph\":\"i\",\"ts\":%d,\"s\":\"t\",\"pid\":%d,\"tid\":%d%s}",
			strconv.Quote(ev.name), ev.ts, pid, tid, args)
	}
}
