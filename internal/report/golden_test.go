// Golden-file regression tests for rendered report output: a
// fixed-seed busy-week scenario and a multi-site federation scenario
// are run at small scale and their full rendered output (tables plus
// notes, exactly as cmd/experiments prints them) is compared byte for
// byte against committed golden files. The shape tests in
// internal/experiments bound qualitative orderings; these catch any
// numeric drift at all — an accidental change to trace streams, engine
// semantics or table formatting shows up as a golden diff.
//
// Regenerate after an intentional change with:
//
//	go test ./internal/report -run Golden -update
package report_test

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"netbatch/internal/experiments"
)

var update = flag.Bool("update", false, "regenerate golden files")

// goldenOpts pins every knob that affects output.
func goldenOpts(jobs int) experiments.Options {
	return experiments.Options{Seed: 42, Seeds: 1, Scale: 0.05, Jobs: jobs}
}

// renderExperiment renders an experiment the way cmd/experiments does.
func renderExperiment(t *testing.T, id string, jobs int) string {
	t.Helper()
	e, err := experiments.Get(id)
	if err != nil {
		t.Fatal(err)
	}
	out, err := e.Run(goldenOpts(jobs))
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== %s ===\n", out.ID)
	for _, tbl := range out.Tables {
		if err := tbl.Render(&sb); err != nil {
			t.Fatal(err)
		}
		sb.WriteString("\n")
	}
	for _, note := range out.Notes {
		sb.WriteString("note: " + note + "\n")
	}
	return sb.String()
}

// checkGolden compares got against testdata/<name>.golden, rewriting
// the file under -update.
func checkGolden(t *testing.T, name, got string) {
	t.Helper()
	path := filepath.Join("testdata", name+".golden")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("%s drifted from golden file.\nIf the change is intentional, regenerate with:\n  go test ./internal/report -run Golden -update\ndiff preview:\n%s",
			name, diffPreview(string(want), got))
	}
}

// diffPreview shows the first few differing lines.
func diffPreview(want, got string) string {
	w, g := strings.Split(want, "\n"), strings.Split(got, "\n")
	var sb strings.Builder
	shown := 0
	for i := 0; i < len(w) || i < len(g); i++ {
		var a, b string
		if i < len(w) {
			a = w[i]
		}
		if i < len(g) {
			b = g[i]
		}
		if a == b {
			continue
		}
		fmt.Fprintf(&sb, "line %d:\n  want: %s\n  got:  %s\n", i+1, a, b)
		if shown++; shown >= 5 {
			sb.WriteString("  ...\n")
			break
		}
	}
	return sb.String()
}

func TestGoldenWeekScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	checkGolden(t, "week", renderExperiment(t, "table1", 0))
}

func TestGoldenFaultsScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	got := renderExperiment(t, "faults", 0)
	checkGolden(t, "faults", got)
	// Same bar as the multisite golden: cell-level parallelism must not
	// change a byte of the rendered fault report.
	if serial := renderExperiment(t, "faults", 1); serial != got {
		t.Error("serial run renders differently from parallel run")
	}
}

func TestGoldenMultiSiteScenario(t *testing.T) {
	if testing.Short() {
		t.Skip("full experiment run")
	}
	got := renderExperiment(t, "multisite", 0)
	checkGolden(t, "multisite", got)
	// The acceptance bar for the federation work: a fixed seed renders
	// byte-identically whether cells run serially or in parallel.
	if serial := renderExperiment(t, "multisite", 1); serial != got {
		t.Error("serial run renders differently from parallel run")
	}
}
