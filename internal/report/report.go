// Package report renders experiment results as ASCII tables in the
// paper's layout, as CSV for downstream plotting, and as compact text
// figures (CDF quantile tables and time-series sparklines).
package report

import (
	"encoding/csv"
	"fmt"
	"io"
	"strings"

	"netbatch/internal/metrics"
	"netbatch/internal/stats"
)

// Table is a titled grid of cells.
type Table struct {
	// Title is printed above the table.
	Title string
	// Columns are the header labels.
	Columns []string
	// Rows are the data cells; each row must match len(Columns).
	Rows [][]string
}

// AddRow appends a row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// Render writes the table as aligned ASCII.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		if len(row) != len(t.Columns) {
			return fmt.Errorf("report: row has %d cells, want %d", len(row), len(t.Columns))
		}
		for i, cell := range row {
			if len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&sb, "%s\n", t.Title)
	}
	writeRow := func(cells []string) {
		for i, cell := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], cell)
		}
		sb.WriteString("\n")
	}
	writeRow(t.Columns)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	sb.WriteString(strings.Repeat("-", total-2) + "\n")
	for _, row := range t.Rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, sb.String())
	return err
}

// WriteCSV writes the table (header plus rows) as CSV.
func (t *Table) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(t.Columns); err != nil {
		return fmt.Errorf("report: csv header: %w", err)
	}
	for _, row := range t.Rows {
		if err := cw.Write(row); err != nil {
			return fmt.Errorf("report: csv row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: csv flush: %w", err)
	}
	return nil
}

// summaryCol describes one metric column of a per-strategy table: its
// header, how to read it from a Summary, and the point-value format.
type summaryCol struct {
	name string
	get  func(metrics.Summary) float64
	// format renders a point value; ciFormat renders (mean, ci-half).
	format   string
	ciFormat string
}

// paperCols is the column layout of the paper's Tables 1–5.
var paperCols = []summaryCol{
	{"Suspend rate", func(s metrics.Summary) float64 { return s.SuspendRate }, "%.2f%%", "%.2f ± %.2f%%"},
	{"AvgCT Suspend", func(s metrics.Summary) float64 { return s.AvgCTSuspended }, "%.1f", "%.1f ± %.1f"},
	{"AvgCT All", func(s metrics.Summary) float64 { return s.AvgCTAll }, "%.1f", "%.1f ± %.1f"},
	{"AvgST", func(s metrics.Summary) float64 { return s.AvgST }, "%.1f", "%.1f ± %.1f"},
	{"AvgWCT", func(s metrics.Summary) float64 { return s.AvgWCT }, "%.1f", "%.1f ± %.1f"},
}

// wasteCols is the Figure 3 decomposition layout: the three components
// of average wasted completion time plus their total.
var wasteCols = []summaryCol{
	{"Wait Time", func(s metrics.Summary) float64 { return s.WaitComp }, "%.1f", "%.1f ± %.1f"},
	{"Suspend Time", func(s metrics.Summary) float64 { return s.SuspendComp }, "%.1f", "%.1f ± %.1f"},
	{"Wasted by Resched", func(s metrics.Summary) float64 { return s.ReschedComp }, "%.1f", "%.1f ± %.1f"},
	{"Total AvgWCT", func(s metrics.Summary) float64 { return s.AvgWCT }, "%.1f", "%.1f ± %.1f"},
}

// summaryTable renders one row per strategy with the given columns.
func summaryTable(title string, cols []summaryCol, names []string, sums []metrics.Summary) (*Table, error) {
	if len(names) != len(sums) {
		return nil, fmt.Errorf("report: %d names for %d summaries", len(names), len(sums))
	}
	t := &Table{Title: title, Columns: []string{"Strategy"}}
	for _, c := range cols {
		t.Columns = append(t.Columns, c.name)
	}
	for i, s := range sums {
		row := []string{names[i]}
		for _, c := range cols {
			row = append(row, fmt.Sprintf(c.format, c.get(s)))
		}
		t.AddRow(row...)
	}
	return t, nil
}

// summaryTableCI renders one row per strategy with each column shown as
// mean ± 95% CI (Student t) across that strategy's seed replicates.
func summaryTableCI(title string, cols []summaryCol, names []string, reps [][]metrics.Summary) (*Table, error) {
	if len(names) != len(reps) {
		return nil, fmt.Errorf("report: %d names for %d replicate sets", len(names), len(reps))
	}
	n := 0
	t := &Table{Title: title, Columns: []string{"Strategy"}}
	for _, c := range cols {
		t.Columns = append(t.Columns, c.name)
	}
	for i, sums := range reps {
		if len(sums) == 0 {
			return nil, fmt.Errorf("report: strategy %s has no replicates", names[i])
		}
		n = len(sums)
		row := []string{names[i]}
		for _, c := range cols {
			var m stats.Mean
			for _, s := range sums {
				m.Add(c.get(s))
			}
			row = append(row, fmt.Sprintf(c.ciFormat, m.Mean(), m.CI95()))
		}
		t.AddRow(row...)
	}
	t.Title = fmt.Sprintf("%s (mean ± 95%% CI over %d seeds)", title, n)
	return t, nil
}

// PaperTable renders per-strategy summaries in the layout of the
// paper's Tables 1–5.
func PaperTable(title string, names []string, sums []metrics.Summary) (*Table, error) {
	return summaryTable(title, paperCols, names, sums)
}

// PaperTableCI renders the paper-table layout across seed replicates:
// with a single replicate per strategy it is identical to PaperTable;
// with several, every metric cell reads mean ± 95% CI.
func PaperTableCI(title string, names []string, reps [][]metrics.Summary) (*Table, error) {
	if single, ok := singleReplicate(reps); ok {
		return summaryTable(title, paperCols, names, single)
	}
	return summaryTableCI(title, paperCols, names, reps)
}

// WasteTable renders the Figure 3 decomposition: the three components
// of average wasted completion time per strategy.
func WasteTable(title string, names []string, sums []metrics.Summary) (*Table, error) {
	return summaryTable(title, wasteCols, names, sums)
}

// WasteTableCI is WasteTable across seed replicates (see PaperTableCI).
func WasteTableCI(title string, names []string, reps [][]metrics.Summary) (*Table, error) {
	if single, ok := singleReplicate(reps); ok {
		return summaryTable(title, wasteCols, names, single)
	}
	return summaryTableCI(title, wasteCols, names, reps)
}

// singleReplicate flattens a replicate matrix when every strategy ran
// exactly once.
func singleReplicate(reps [][]metrics.Summary) ([]metrics.Summary, bool) {
	out := make([]metrics.Summary, len(reps))
	for i, r := range reps {
		if len(r) != 1 {
			return nil, false
		}
		out[i] = r[0]
	}
	return out, true
}

// SiteTable renders the per-site slice of multi-site runs: one row per
// (strategy, site) with the site-tagged metrics. regions labels the
// sites; perStrategy holds each strategy's site summaries aligned with
// names.
func SiteTable(title string, names []string, regions []string, perStrategy [][]metrics.SiteSummary) (*Table, error) {
	if len(names) != len(perStrategy) {
		return nil, fmt.Errorf("report: %d names for %d site-summary sets", len(names), len(perStrategy))
	}
	t := &Table{
		Title:   title,
		Columns: []string{"Strategy", "Site", "Jobs", "Remote", "Suspend rate", "AvgCT", "AvgWait"},
	}
	for i, sums := range perStrategy {
		for _, s := range sums {
			region := fmt.Sprintf("site-%d", s.Site)
			if s.Site < len(regions) {
				region = regions[s.Site]
			}
			t.AddRow(
				names[i],
				region,
				fmt.Sprintf("%d", s.Jobs),
				fmt.Sprintf("%.1f%%", s.RemotePct),
				fmt.Sprintf("%.2f%%", s.SuspendRate),
				fmt.Sprintf("%.1f", s.AvgCT),
				fmt.Sprintf("%.1f", s.AvgWait),
			)
		}
	}
	return t, nil
}

// FaultTable renders the fault & maintenance slice of a run set: one
// row per strategy/cell with availability, goodput and the raw fault
// counters.
func FaultTable(title string, names []string, sums []metrics.FaultSummary) (*Table, error) {
	if len(names) != len(sums) {
		return nil, fmt.Errorf("report: %d names for %d fault summaries", len(names), len(sums))
	}
	t := &Table{
		Title: title,
		Columns: []string{"Strategy", "Availability", "Goodput",
			"Crashes", "Windows", "Kills", "Requeues", "Work lost"},
	}
	for i, s := range sums {
		t.AddRow(
			names[i],
			fmt.Sprintf("%.2f%%", s.AvailabilityPct),
			fmt.Sprintf("%.2f%%", s.GoodputPct),
			fmt.Sprintf("%d", s.Crashes),
			fmt.Sprintf("%d", s.MaintWindows),
			fmt.Sprintf("%d", s.Kills),
			fmt.Sprintf("%d", s.Requeues),
			fmt.Sprintf("%.0f", s.WorkLost),
		)
	}
	return t, nil
}

// EngineStats is one strategy's execution-describing counter slice,
// summed over its cells: how the engine ran, not what it computed.
// The fields mirror sim.Result's engine counters (report does not
// import sim, so the caller copies them across).
type EngineStats struct {
	Strategy string
	// Events is the total dispatched event count.
	Events int64
	// SubShardSteals counts events executed by non-primary sub-shards
	// under skew-split sharding.
	SubShardSteals int64
	// AliasRetirements counts cross-partition alias flags retired.
	AliasRetirements int64
	// Rollbacks counts optimistic speculation rollbacks.
	Rollbacks int64
	// GroupCommits is the optimistic group-commit histogram: bucket i
	// counts commit drains whose run length was in [2^i, 2^(i+1)).
	GroupCommits []int64
}

// EngineTable renders per-strategy engine execution counters: one row
// per strategy with event totals, sub-shard steals, alias retirements,
// rollbacks, and the group-commit drain count with its largest
// run-length bucket. These describe how the run executed — they are
// deliberately absent from the paper tables, whose numbers must not
// depend on the engine.
func EngineTable(title string, rows []EngineStats) *Table {
	t := &Table{
		Title: title,
		Columns: []string{"Strategy", "Events", "Steals",
			"Alias retire", "Rollbacks", "Commit drains", "Max run"},
	}
	for _, r := range rows {
		drains := int64(0)
		maxRun := "-"
		for i, n := range r.GroupCommits {
			drains += n
			if n > 0 {
				maxRun = fmt.Sprintf("2^%d", i)
			}
		}
		t.AddRow(
			r.Strategy,
			fmt.Sprintf("%d", r.Events),
			fmt.Sprintf("%d", r.SubShardSteals),
			fmt.Sprintf("%d", r.AliasRetirements),
			fmt.Sprintf("%d", r.Rollbacks),
			fmt.Sprintf("%d", drains),
			maxRun,
		)
	}
	return t
}

// CDFTable renders a distribution as quantile rows (the text rendering
// of Figure 2).
func CDFTable(title string, cdf *stats.CDF) *Table {
	t := &Table{Title: title, Columns: []string{"Percentile", "Minutes"}}
	for _, q := range []float64{0.10, 0.25, 0.50, 0.75, 0.80, 0.90, 0.95, 0.99} {
		t.AddRow(fmt.Sprintf("p%02.0f", q*100), fmt.Sprintf("%.1f", cdf.Quantile(q)))
	}
	t.AddRow("mean", fmt.Sprintf("%.1f", cdf.Mean()))
	t.AddRow("n", fmt.Sprintf("%d", cdf.N()))
	return t
}

// sparkLevels are the glyphs used by Sparkline, lowest to highest.
var sparkLevels = []rune("▁▂▃▄▅▆▇█")

// Sparkline renders a series as a unicode sparkline of at most width
// characters (the text rendering of Figure 4's curves).
func Sparkline(pts []stats.Point, width int) string {
	if len(pts) == 0 || width <= 0 {
		return ""
	}
	if width > len(pts) {
		width = len(pts)
	}
	// Downsample by averaging consecutive chunks.
	vals := make([]float64, width)
	for i := 0; i < width; i++ {
		lo := i * len(pts) / width
		hi := (i + 1) * len(pts) / width
		if hi == lo {
			hi = lo + 1
		}
		var sum float64
		for _, p := range pts[lo:hi] {
			sum += p.Y
		}
		vals[i] = sum / float64(hi-lo)
	}
	minV, maxV := vals[0], vals[0]
	for _, v := range vals {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	var sb strings.Builder
	for _, v := range vals {
		idx := 0
		if maxV > minV {
			idx = int((v - minV) / (maxV - minV) * float64(len(sparkLevels)-1))
		}
		sb.WriteRune(sparkLevels[idx])
	}
	return sb.String()
}

// SeriesCSV writes a time series as (t, value) CSV rows.
func SeriesCSV(w io.Writer, header string, pts []stats.Point) error {
	cw := csv.NewWriter(w)
	if err := cw.Write([]string{"t_minutes", header}); err != nil {
		return fmt.Errorf("report: series header: %w", err)
	}
	for _, p := range pts {
		if err := cw.Write([]string{
			fmt.Sprintf("%.1f", p.X), fmt.Sprintf("%.4f", p.Y),
		}); err != nil {
			return fmt.Errorf("report: series row: %w", err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("report: series flush: %w", err)
	}
	return nil
}
