package report

import (
	"bytes"
	"strings"
	"testing"

	"netbatch/internal/metrics"
	"netbatch/internal/stats"
)

func TestTableRender(t *testing.T) {
	tbl := &Table{
		Title:   "Demo",
		Columns: []string{"a", "bee", "c"},
	}
	tbl.AddRow("1", "2", "3")
	tbl.AddRow("long-cell", "x", "y")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "Demo") {
		t.Fatal("missing title")
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 5 { // title, header, separator, two rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	// Header and rows align: all data lines have same prefix widths.
	if !strings.HasPrefix(lines[4], "long-cell") {
		t.Fatalf("row misrendered: %q", lines[4])
	}
}

func TestTableRenderMismatchedRow(t *testing.T) {
	tbl := &Table{Columns: []string{"a", "b"}}
	tbl.AddRow("only-one")
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err == nil {
		t.Fatal("want error for mismatched row")
	}
}

func TestTableCSV(t *testing.T) {
	tbl := &Table{Columns: []string{"x", "y"}}
	tbl.AddRow("1", "a,b") // comma must be quoted
	var buf bytes.Buffer
	if err := tbl.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `"a,b"`) {
		t.Fatalf("csv quoting broken: %q", out)
	}
	if !strings.HasPrefix(out, "x,y\n") {
		t.Fatalf("csv header: %q", out)
	}
}

func sampleSummaries() ([]string, []metrics.Summary) {
	return []string{"NoRes", "ResSusUtil"}, []metrics.Summary{
		{
			Jobs: 100, SuspendedJobs: 2, SuspendRate: 2,
			AvgCTSuspended: 2498.7, AvgCTAll: 569.8, AvgST: 1189.1, AvgWCT: 31.0,
			WaitComp: 15, SuspendComp: 14, ReschedComp: 2,
		},
		{
			Jobs: 100, SuspendedJobs: 3, SuspendRate: 3,
			AvgCTSuspended: 1265.4, AvgCTAll: 560.0, AvgST: 82.2, AvgWCT: 20.8,
			WaitComp: 15, SuspendComp: 3, ReschedComp: 2.8,
		},
	}
}

func TestPaperTable(t *testing.T) {
	names, sums := sampleSummaries()
	tbl, err := PaperTable("Table 1", names, sums)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Table 1", "NoRes", "ResSusUtil", "2498.7", "2.00%", "AvgWCT"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestPaperTableMismatch(t *testing.T) {
	if _, err := PaperTable("x", []string{"a"}, nil); err == nil {
		t.Fatal("want error")
	}
}

func TestWasteTable(t *testing.T) {
	names, sums := sampleSummaries()
	tbl, err := WasteTable("Figure 3", names, sums)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"Wait Time", "Suspend Time", "Wasted by Resched", "14.0"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
	if _, err := WasteTable("x", []string{"a"}, nil); err == nil {
		t.Fatal("want mismatch error")
	}
}

func TestCDFTable(t *testing.T) {
	cdf := stats.NewCDF([]float64{10, 20, 30, 40, 50, 60, 70, 80, 90, 100})
	tbl := CDFTable("Figure 2", cdf)
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"p50", "p90", "mean", "n"} {
		if !strings.Contains(out, want) {
			t.Fatalf("missing %q in:\n%s", want, out)
		}
	}
}

func TestSparkline(t *testing.T) {
	pts := make([]stats.Point, 100)
	for i := range pts {
		pts[i] = stats.Point{X: float64(i), Y: float64(i)}
	}
	s := Sparkline(pts, 10)
	if got := len([]rune(s)); got != 10 {
		t.Fatalf("width = %d", got)
	}
	runes := []rune(s)
	if runes[0] != '▁' || runes[9] != '█' {
		t.Fatalf("monotone ramp misrendered: %q", s)
	}
	if Sparkline(nil, 10) != "" {
		t.Fatal("empty series should render empty")
	}
	if Sparkline(pts, 0) != "" {
		t.Fatal("zero width should render empty")
	}
	// Flat series renders lowest glyph everywhere.
	flat := []stats.Point{{Y: 5}, {Y: 5}, {Y: 5}}
	if got := Sparkline(flat, 3); got != "▁▁▁" {
		t.Fatalf("flat = %q", got)
	}
}

func TestSparklineWiderThanData(t *testing.T) {
	pts := []stats.Point{{Y: 1}, {Y: 2}}
	if got := len([]rune(Sparkline(pts, 50))); got != 2 {
		t.Fatalf("width clamped = %d, want 2", got)
	}
}

func TestSeriesCSV(t *testing.T) {
	var buf bytes.Buffer
	pts := []stats.Point{{X: 50, Y: 40.5}, {X: 150, Y: 42.25}}
	if err := SeriesCSV(&buf, "util_pct", pts); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.HasPrefix(out, "t_minutes,util_pct\n") {
		t.Fatalf("header: %q", out)
	}
	if !strings.Contains(out, "50.0,40.5000") {
		t.Fatalf("row: %q", out)
	}
}

func TestPaperTableCISingleReplicateMatchesPlain(t *testing.T) {
	names, sums := sampleSummaries()
	reps := [][]metrics.Summary{{sums[0]}, {sums[1]}}
	plain, err := PaperTable("Table 1", names, sums)
	if err != nil {
		t.Fatal(err)
	}
	ci, err := PaperTableCI("Table 1", names, reps)
	if err != nil {
		t.Fatal(err)
	}
	var a, b bytes.Buffer
	if err := plain.Render(&a); err != nil {
		t.Fatal(err)
	}
	if err := ci.Render(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("single-replicate CI table differs from plain:\n%s\nvs\n%s", a.String(), b.String())
	}
}

func TestPaperTableCI(t *testing.T) {
	_, sums := sampleSummaries()
	a, b := sums[0], sums[0]
	// Two replicates of one strategy: AvgCTAll 500 and 600 -> 550.0 ± CI,
	// where CI = 12.706 * stddev/sqrt(2) = 12.706 * 50 = 635.3.
	a.AvgCTAll, b.AvgCTAll = 500, 600
	tbl, err := PaperTableCI("Table X", []string{"NoRes"}, [][]metrics.Summary{{a, b}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"550.0 ± 635.3", "2.00 ± 0.00%", "mean ± 95% CI over 2 seeds"} {
		if !strings.Contains(out, want) {
			t.Fatalf("output missing %q:\n%s", want, out)
		}
	}
}

func TestWasteTableCI(t *testing.T) {
	_, sums := sampleSummaries()
	tbl, err := WasteTableCI("Waste", []string{"NoRes", "ResSusUtil"},
		[][]metrics.Summary{{sums[0], sums[0]}, {sums[1], sums[1]}})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := tbl.Render(&buf); err != nil {
		t.Fatal(err)
	}
	// Identical replicates: zero-width intervals.
	if !strings.Contains(buf.String(), "31.0 ± 0.0") {
		t.Fatalf("output missing zero-CI cell:\n%s", buf.String())
	}
}

func TestSummaryTableCIErrors(t *testing.T) {
	if _, err := PaperTableCI("x", []string{"a"}, nil); err == nil {
		t.Fatal("mismatched names/replicates should error")
	}
	if _, err := PaperTableCI("x", []string{"a"}, [][]metrics.Summary{{}}); err == nil {
		t.Fatal("empty replicate set should error")
	}
}
