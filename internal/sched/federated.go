package sched

import (
	"encoding/json"
	"fmt"
	"strconv"

	"netbatch/internal/job"
)

// SiteView extends PoolView with the federation topology: which site
// each pool lives at and the inter-site delay matrix. Utilization reads
// through a SiteView are aged per observer: a pool at a remote site is
// seen as of (staleness + RTT) minutes ago, which is the §3.2.2
// propagation caveat generalized to a multi-site federation. The
// simulator sets the observer to the deciding job's site before each
// scheduling or rescheduling callback.
type SiteView interface {
	PoolView
	// NumSites returns the number of data-center sites.
	NumSites() int
	// SiteOf returns the site the pool lives at.
	SiteOf(pool int) int
	// SitePools returns the pool IDs of one site, in pool-ID order.
	SitePools(site int) []int
	// SiteUtilization returns the site's core-weighted mean pool
	// utilization in [0, 1], aged like the per-pool reads.
	SiteUtilization(site int) float64
	// RTT returns the one-way inter-site delay from site a to site b in
	// minutes (0 when a == b).
	RTT(a, b int) float64
}

// SiteSelector is the upper level of the two-level federated scheduler:
// it picks the target site for a newly submitted job; the per-site
// initial scheduler then picks the pool within it. Implementations must
// only return sites holding at least one eligible candidate pool.
type SiteSelector interface {
	// Name identifies the selector in reports.
	Name() string
	// SelectSite returns the chosen site, or an error when no site has
	// an eligible candidate pool.
	SelectSite(now float64, spec *job.Spec, view SiteView) (int, error)
}

// siteEligible reports whether site holds at least one statically
// eligible candidate pool for spec.
func siteEligible(view SiteView, site int, spec *job.Spec) bool {
	for _, p := range spec.Candidates {
		if view.SiteOf(p) == site && view.Eligible(p, spec) {
			return true
		}
	}
	return false
}

// eachEligibleSite calls fn for every site with at least one eligible
// candidate pool, in ascending site order.
func eachEligibleSite(view SiteView, spec *job.Spec, fn func(site int)) {
	// Realistic federations have a handful of sites; keep the dedup
	// mask on the stack for those and preserve the ascending-site
	// visit order either way (selectors tie-break on iteration order).
	var seenBuf [64]bool
	var seen []bool
	if n := view.NumSites(); n <= len(seenBuf) {
		seen = seenBuf[:n]
	} else {
		seen = make([]bool, n)
	}
	for _, p := range spec.Candidates {
		if !seen[view.SiteOf(p)] && view.Eligible(p, spec) {
			seen[view.SiteOf(p)] = true
		}
	}
	for s, ok := range seen {
		if ok {
			fn(s)
		}
	}
}

// errNoEligibleSite builds the common selector error.
func errNoEligibleSite(spec *job.Spec) error {
	return fmt.Errorf("sched: job %d has no site with an eligible candidate pool %v",
		spec.ID, spec.Candidates)
}

// LocalityFirst keeps jobs at their submission site whenever it has an
// eligible candidate pool — data and owner are local, cross-site
// dispatch delay is zero — and falls back to the least-utilized
// eligible site otherwise.
type LocalityFirst struct{}

var _ SiteSelector = LocalityFirst{}

// Name implements SiteSelector.
func (LocalityFirst) Name() string { return "locality" }

// SelectSite implements SiteSelector.
func (LocalityFirst) SelectSite(_ float64, spec *job.Spec, view SiteView) (int, error) {
	if spec.Site < view.NumSites() && siteEligible(view, spec.Site, spec) {
		return spec.Site, nil
	}
	return leastUtilizedSite(spec, view)
}

// LeastUtilizedSite sends every job to the eligible site with the
// lowest aggregate utilization, ignoring distance — the site-level
// analogue of the paper's utilization-based initial scheduler (§3.2.2).
// Ties break toward the lower site ID for determinism.
type LeastUtilizedSite struct{}

var _ SiteSelector = LeastUtilizedSite{}

// Name implements SiteSelector.
func (LeastUtilizedSite) Name() string { return "least-util" }

// SelectSite implements SiteSelector.
func (LeastUtilizedSite) SelectSite(_ float64, spec *job.Spec, view SiteView) (int, error) {
	return leastUtilizedSite(spec, view)
}

func leastUtilizedSite(spec *job.Spec, view SiteView) (int, error) {
	best, bestUtil := -1, 0.0
	eachEligibleSite(view, spec, func(s int) {
		u := view.SiteUtilization(s)
		if best == -1 || u < bestUtil {
			best, bestUtil = s, u
		}
	})
	if best == -1 {
		return 0, errNoEligibleSite(spec)
	}
	return best, nil
}

// DefaultLatencyPenalty converts one minute of inter-site delay into
// utilization-fraction units for LatencyPenalizedUtil: 0.005/min means
// a 20-minute-distant site must be 10 utilization points cooler than a
// local one to win.
const DefaultLatencyPenalty = 0.005

// LatencyPenalizedUtil balances load against distance: it picks the
// eligible site minimizing utilization + Penalty·RTT(origin, site).
// The remote utilization it reads is itself aged by that RTT, so the
// selector is honest about both costs of going far.
type LatencyPenalizedUtil struct {
	// Penalty is the utilization-equivalent cost per minute of
	// inter-site delay; 0 means DefaultLatencyPenalty.
	Penalty float64
}

var _ SiteSelector = LatencyPenalizedUtil{}

// Name implements SiteSelector.
func (LatencyPenalizedUtil) Name() string { return "latency-util" }

// SelectSite implements SiteSelector.
func (l LatencyPenalizedUtil) SelectSite(_ float64, spec *job.Spec, view SiteView) (int, error) {
	penalty := l.Penalty
	if penalty == 0 {
		penalty = DefaultLatencyPenalty
	}
	origin := spec.Site
	best, bestScore := -1, 0.0
	eachEligibleSite(view, spec, func(s int) {
		score := view.SiteUtilization(s) + penalty*view.RTT(origin, s)
		if best == -1 || score < bestScore {
			best, bestScore = s, score
		}
	})
	if best == -1 {
		return 0, errNoEligibleSite(spec)
	}
	return best, nil
}

// Federated is the two-level initial scheduler: a SiteSelector picks
// the target site, then a per-site instance of the inner initial
// scheduler picks the pool among the job's candidates at that site.
// Per-site inner instances keep independent state (e.g. round-robin
// rotations), matching one virtual pool manager per site. On a
// single-site platform (or a plain PoolView) it degrades to one inner
// scheduler over all candidates, so federated round-robin on one site
// is exactly the paper's round-robin.
type Federated struct {
	// Selector is the site-level policy.
	Selector SiteSelector
	// NewPerSite constructs one inner scheduler per site.
	NewPerSite func() InitialScheduler

	name        string
	perSite     map[int]InitialScheduler
	fallback    InitialScheduler
	candScratch []int    // site-filtered Candidates reuse; never retained
	localSpec   job.Spec // site-narrowed spec copy reuse; never retained
}

var _ InitialScheduler = (*Federated)(nil)

// NewFederated composes a site selector with a per-site inner
// scheduler factory.
func NewFederated(selector SiteSelector, newPerSite func() InitialScheduler) *Federated {
	f := &Federated{Selector: selector, NewPerSite: newPerSite}
	f.name = fmt.Sprintf("fed(%s+%s)", selector.Name(), newPerSite().Name())
	return f
}

// Name implements InitialScheduler.
func (f *Federated) Name() string {
	if f.name == "" {
		f.name = fmt.Sprintf("fed(%s+%s)", f.Selector.Name(), f.NewPerSite().Name())
	}
	return f.name
}

// SelectPool implements InitialScheduler.
func (f *Federated) SelectPool(now float64, spec *job.Spec, view PoolView) (int, error) {
	sv, ok := view.(SiteView)
	if !ok || sv.NumSites() <= 1 {
		if f.fallback == nil {
			f.fallback = f.NewPerSite()
		}
		return f.fallback.SelectPool(now, spec, view)
	}
	site, err := f.Selector.SelectSite(now, spec, sv)
	if err != nil {
		return 0, err
	}
	// Scratch reuse: the per-site inner schedulers read the narrowed
	// spec during this call and never retain it (rotation state copies),
	// so both the Candidates slice and the spec copy itself live on the
	// scheduler. The copy would otherwise escape through the interface
	// call below — one heap spec per decision.
	cand := f.candScratch[:0]
	for _, p := range spec.Candidates {
		if sv.SiteOf(p) == site {
			cand = append(cand, p)
		}
	}
	f.candScratch = cand
	if len(cand) == 0 {
		return 0, fmt.Errorf("sched: selector %s picked site %d with no candidates for job %d",
			f.Selector.Name(), site, spec.ID)
	}
	f.localSpec = *spec
	f.localSpec.Candidates = cand
	if f.perSite == nil {
		f.perSite = make(map[int]InitialScheduler)
	}
	inner, ok := f.perSite[site]
	if !ok {
		inner = f.NewPerSite()
		f.perSite[site] = inner
	}
	return inner.SelectPool(now, &f.localSpec, view)
}

// stateful is the duck-typed state contract stateful schedulers and
// policies satisfy (see sim.Stateful); Federated uses it to recurse
// into its per-site inner instances.
type stateful interface {
	ExportState() ([]byte, error)
	ImportState([]byte) error
}

// fedState is Federated's serializable state: the states of the lazily
// created per-site inner schedulers (JSON map keys are site IDs as
// strings; encoding/json sorts them, keeping the encoding
// deterministic) plus the single-site fallback instance's state.
// Stateless inner schedulers contribute empty entries, recording which
// instances exist.
type fedState struct {
	PerSite  map[string][]byte `json:"per_site,omitempty"`
	Fallback []byte            `json:"fallback,omitempty"`
	HasFall  bool              `json:"has_fallback,omitempty"`
}

// ExportState captures the two-level scheduler's mutable state: which
// per-site inner instances exist and, for stateful inners (round-robin
// rotations, RNG streams), their exported states.
func (f *Federated) ExportState() ([]byte, error) {
	st := fedState{}
	if len(f.perSite) > 0 {
		st.PerSite = make(map[string][]byte, len(f.perSite))
		for site, inner := range f.perSite {
			var blob []byte
			if s, ok := inner.(stateful); ok {
				var err error
				if blob, err = s.ExportState(); err != nil {
					return nil, fmt.Errorf("sched: federated site %d: %w", site, err)
				}
			}
			st.PerSite[strconv.Itoa(site)] = blob
		}
	}
	if f.fallback != nil {
		st.HasFall = true
		if s, ok := f.fallback.(stateful); ok {
			var err error
			if st.Fallback, err = s.ExportState(); err != nil {
				return nil, fmt.Errorf("sched: federated fallback: %w", err)
			}
		}
	}
	return json.Marshal(st)
}

// ImportState rebuilds the per-site inner schedulers from an exported
// state, creating each instance through NewPerSite and restoring its
// internal state when it is stateful.
func (f *Federated) ImportState(data []byte) error {
	var st fedState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sched: federated state: %w", err)
	}
	f.perSite = nil
	f.fallback = nil
	if len(st.PerSite) > 0 {
		f.perSite = make(map[int]InitialScheduler, len(st.PerSite))
		for key, blob := range st.PerSite {
			site, err := strconv.Atoi(key)
			if err != nil {
				return fmt.Errorf("sched: federated state site key %q: %w", key, err)
			}
			inner := f.NewPerSite()
			if s, ok := inner.(stateful); ok && len(blob) > 0 {
				if err := s.ImportState(blob); err != nil {
					return fmt.Errorf("sched: federated site %d: %w", site, err)
				}
			}
			f.perSite[site] = inner
		}
	}
	if st.HasFall {
		f.fallback = f.NewPerSite()
		if s, ok := f.fallback.(stateful); ok && len(st.Fallback) > 0 {
			if err := s.ImportState(st.Fallback); err != nil {
				return fmt.Errorf("sched: federated fallback: %w", err)
			}
		}
	}
	return nil
}
