package sched

import (
	"testing"

	"netbatch/internal/job"
)

// fakeSiteView is a hand-wired SiteView: pools are assigned to sites
// round-trip via siteOf, with per-pool utilization and a delay matrix.
type fakeSiteView struct {
	siteOf []int
	util   []float64
	cores  []int
	rtt    [][]float64
	nSites int
}

func (v *fakeSiteView) NumPools() int                { return len(v.siteOf) }
func (v *fakeSiteView) Utilization(p int) float64    { return v.util[p] }
func (v *fakeSiteView) QueueLen(int) int             { return 0 }
func (v *fakeSiteView) PoolCores(p int) int          { return v.cores[p] }
func (v *fakeSiteView) Eligible(int, *job.Spec) bool { return true }
func (v *fakeSiteView) NumSites() int                { return v.nSites }
func (v *fakeSiteView) SiteOf(p int) int             { return v.siteOf[p] }
func (v *fakeSiteView) SitePools(site int) []int {
	var out []int
	for p, s := range v.siteOf {
		if s == site {
			out = append(out, p)
		}
	}
	return out
}
func (v *fakeSiteView) SiteUtilization(site int) float64 {
	var busy, cores float64
	for p, s := range v.siteOf {
		if s == site {
			busy += v.util[p] * float64(v.cores[p])
			cores += float64(v.cores[p])
		}
	}
	if cores == 0 {
		return 0
	}
	return busy / cores
}
func (v *fakeSiteView) RTT(a, b int) float64 {
	if v.rtt == nil || a == b {
		return 0
	}
	return v.rtt[a][b]
}

// twoSiteView: site 0 holds pools 0,1 (hot), site 1 holds pools 2,3
// (cool), 10 minutes apart.
func twoSiteView() *fakeSiteView {
	return &fakeSiteView{
		siteOf: []int{0, 0, 1, 1},
		util:   []float64{0.9, 0.8, 0.1, 0.2},
		cores:  []int{100, 100, 100, 100},
		rtt:    [][]float64{{0, 10}, {10, 0}},
		nSites: 2,
	}
}

func spec(site int, cands ...int) *job.Spec {
	return &job.Spec{ID: 1, Work: 1, Cores: 1, Priority: job.PriorityLow, Candidates: cands, Site: site}
}

func TestLocalityFirst(t *testing.T) {
	v := twoSiteView()
	// Origin site 0 has an eligible candidate: stay local despite load.
	s, err := LocalityFirst{}.SelectSite(0, spec(0, 0, 1, 2, 3), v)
	if err != nil || s != 0 {
		t.Fatalf("SelectSite = %d, %v; want 0", s, err)
	}
	// No candidate at the origin site: fall back to least utilized.
	s, err = LocalityFirst{}.SelectSite(0, spec(0, 2, 3), v)
	if err != nil || s != 1 {
		t.Fatalf("fallback SelectSite = %d, %v; want 1", s, err)
	}
}

func TestLeastUtilizedSite(t *testing.T) {
	v := twoSiteView()
	s, err := LeastUtilizedSite{}.SelectSite(0, spec(0, 0, 1, 2, 3), v)
	if err != nil || s != 1 {
		t.Fatalf("SelectSite = %d, %v; want cool site 1", s, err)
	}
}

func TestLatencyPenalizedUtil(t *testing.T) {
	v := twoSiteView()
	// Default penalty (0.005/min): 10 min away costs 0.05, far less
	// than the 0.70 utilization gap — go remote.
	s, err := LatencyPenalizedUtil{}.SelectSite(0, spec(0, 0, 1, 2, 3), v)
	if err != nil || s != 1 {
		t.Fatalf("SelectSite = %d, %v; want 1", s, err)
	}
	// A punitive penalty keeps the job home.
	s, err = LatencyPenalizedUtil{Penalty: 0.1}.SelectSite(0, spec(0, 0, 1, 2, 3), v)
	if err != nil || s != 0 {
		t.Fatalf("penalized SelectSite = %d, %v; want 0", s, err)
	}
}

func TestFederatedFiltersCandidatesToSite(t *testing.T) {
	v := twoSiteView()
	f := NewFederated(LeastUtilizedSite{}, func() InitialScheduler { return NewUtilizationBased() })
	p, err := f.SelectPool(0, spec(0, 0, 1, 2, 3), v)
	if err != nil {
		t.Fatal(err)
	}
	if v.SiteOf(p) != 1 {
		t.Fatalf("pool %d not at selected site 1", p)
	}
	if p != 2 {
		t.Fatalf("pool = %d, want 2 (lowest util at site 1)", p)
	}
}

func TestFederatedSingleSiteFallback(t *testing.T) {
	v := &fakeSiteView{
		siteOf: []int{0, 0},
		util:   []float64{0.5, 0.1},
		cores:  []int{10, 10},
		nSites: 1,
	}
	f := NewFederated(LeastUtilizedSite{}, func() InitialScheduler { return NewUtilizationBased() })
	p, err := f.SelectPool(0, spec(0, 0, 1), v)
	if err != nil || p != 1 {
		t.Fatalf("fallback pool = %d, %v; want 1", p, err)
	}
	if got := f.Name(); got != "fed(least-util+util)" {
		t.Fatalf("Name = %q", got)
	}
}

func TestSelectorsErrorWithoutEligibleSite(t *testing.T) {
	v := twoSiteView()
	empty := &job.Spec{ID: 9, Work: 1, Cores: 1, Priority: job.PriorityLow, Candidates: []int{}}
	if _, err := (LeastUtilizedSite{}).SelectSite(0, empty, v); err == nil {
		t.Fatal("want error for no candidates")
	}
	if _, err := (LocalityFirst{}).SelectSite(0, empty, v); err == nil {
		t.Fatal("want error for no candidates")
	}
	if _, err := (LatencyPenalizedUtil{}).SelectSite(0, empty, v); err == nil {
		t.Fatal("want error for no candidates")
	}
}
