// Package sched implements NetBatch's virtual-pool-manager initial
// schedulers: the policies that pick which physical pool a newly
// submitted job is sent to.
//
// The paper evaluates two (§3.2.1): the production round-robin scheduler
// and a utilization-based scheduler that sends each job to the pool with
// the lowest current utilization. Rescheduling policies (what happens
// after suspension or a stalled wait) live in package core; they
// complement whichever initial scheduler is in use.
package sched

import (
	"encoding/json"
	"fmt"
	"strconv"

	"netbatch/internal/job"
	"netbatch/internal/stats"
)

// PoolView is the read-only view of pool state that scheduling and
// rescheduling policies may consult. The simulator provides it. Views
// may be deliberately stale (see the staleness knob in the simulator):
// the paper notes that exact utilization-based scheduling "can be
// impractical in reality given the unavoidable propagation latency
// between different pools" (§3.2.2).
type PoolView interface {
	// NumPools returns the number of physical pools.
	NumPools() int
	// Utilization returns pool's busy-core fraction in [0, 1].
	Utilization(pool int) float64
	// QueueLen returns the number of jobs waiting in pool's queue.
	QueueLen(pool int) int
	// PoolCores returns pool's total core count.
	PoolCores(pool int) int
	// Eligible reports whether pool contains at least one machine that
	// satisfies the job's static requirements (OS, memory, cores).
	Eligible(pool int, spec *job.Spec) bool
}

// InitialScheduler selects the physical pool for a newly submitted job.
type InitialScheduler interface {
	// Name identifies the scheduler in reports.
	Name() string
	// SelectPool returns the chosen pool from spec.Candidates. It must
	// only return statically eligible pools; it returns an error when
	// no candidate pool can ever run the job.
	SelectPool(now float64, spec *job.Spec, view PoolView) (int, error)
}

// errNoEligiblePool builds the common error.
func errNoEligiblePool(spec *job.Spec) error {
	return fmt.Errorf("sched: job %d has no eligible candidate pool %v", spec.ID, spec.Candidates)
}

// RoundRobin is NetBatch's default initial scheduler: "the default
// scheduling follows a round-robin fashion" (§2.1), distributing
// "according to resource availability and NetBatch configurations".
// Three behaviors compose:
//
//   - Weighted turns (default): pools rotate in proportion to their
//     core capacity, so a 2400-core pool takes eight turns for every
//     turn of a 300-core pool.
//   - Load-oblivious (default): the rotation ignores queue lengths,
//     which is what lets jobs pile up behind bursts in heavily utilized
//     pools ("particularly exacerbated by NetBatch's use of the round
//     robin scheduler", §3.3).
//   - AvoidQueues (extension): skip pools with a non-empty wait queue
//     while some candidate pool has an empty one — an availability-
//     aware refinement used by the ablation benches.
//   - Pure: strictly equal turns regardless of size; with
//     heterogeneous pools this drowns small pools (ablation).
//
// Round-robin state is kept per distinct candidate set, since different
// job classes rotate over different pool sets.
type RoundRobin struct {
	// Pure selects strictly-equal turns instead of capacity-weighted.
	Pure bool
	// AvoidQueues enables the queue-availability filter.
	AvoidQueues bool

	cursors map[string]int
	wrr     map[string]*wrrState
	scratch []int // eligibleCandidates reuse; never retained
}

var _ InitialScheduler = (*RoundRobin)(nil)

// NewRoundRobin returns the capacity-weighted round-robin scheduler.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// NewPureRoundRobin returns the strictly-equal-turns variant.
func NewPureRoundRobin() *RoundRobin { return &RoundRobin{Pure: true} }

// Name implements InitialScheduler.
func (r *RoundRobin) Name() string {
	switch {
	case r.Pure:
		return "rr-pure"
	case r.AvoidQueues:
		return "rr-avail"
	default:
		return "rr"
	}
}

// SelectPool implements InitialScheduler.
func (r *RoundRobin) SelectPool(_ float64, spec *job.Spec, view PoolView) (int, error) {
	eligible := eligibleCandidates(spec, view, r.scratch)
	r.scratch = eligible
	if len(eligible) == 0 {
		return 0, errNoEligiblePool(spec)
	}
	key := candidateKey(eligible)
	if r.Pure {
		if r.cursors == nil {
			r.cursors = make(map[string]int)
		}
		idx := r.cursors[key]
		r.cursors[key] = idx + 1
		return eligible[idx%len(eligible)], nil
	}
	if r.wrr == nil {
		r.wrr = make(map[string]*wrrState)
	}
	st, ok := r.wrr[key]
	if !ok {
		st = newWRRState(eligible, view)
		r.wrr[key] = st
	}
	if !r.AvoidQueues {
		return st.next(), nil
	}
	// Availability filter: rotate until a pool with an empty wait queue
	// turns up; if every candidate is backlogged, take the one with the
	// shortest queue among a full rotation (the pool is overloaded
	// either way, §3.3's stalled-jobs discussion).
	best, bestQ := -1, 0
	for range eligible {
		p := st.next()
		q := view.QueueLen(p)
		if q == 0 {
			return p, nil
		}
		if best == -1 || q < bestQ {
			best, bestQ = p, q
		}
	}
	return best, nil
}

// rrState is RoundRobin's serializable mutable state. JSON keeps the
// encoding deterministic: encoding/json sorts map keys, so identical
// rotation states always encode to identical bytes.
type rrState struct {
	Cursors map[string]int      `json:"cursors,omitempty"`
	WRR     map[string]*wrrDump `json:"wrr,omitempty"`
}

type wrrDump struct {
	Pools   []int `json:"pools"`
	Weights []int `json:"weights"`
	Current []int `json:"current"`
	Total   int   `json:"total"`
}

// ExportState captures the scheduler's rotation state (per candidate
// set) so a checkpointed simulation can resume with identical turns.
func (r *RoundRobin) ExportState() ([]byte, error) {
	st := rrState{}
	if len(r.cursors) > 0 {
		st.Cursors = r.cursors
	}
	if len(r.wrr) > 0 {
		st.WRR = make(map[string]*wrrDump, len(r.wrr))
		for k, w := range r.wrr {
			st.WRR[k] = &wrrDump{Pools: w.pools, Weights: w.weights, Current: w.current, Total: w.total}
		}
	}
	return json.Marshal(st)
}

// ImportState restores a previously exported rotation state.
func (r *RoundRobin) ImportState(data []byte) error {
	var st rrState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sched: round-robin state: %w", err)
	}
	r.cursors = st.Cursors
	r.wrr = nil
	if len(st.WRR) > 0 {
		r.wrr = make(map[string]*wrrState, len(st.WRR))
		for k, w := range st.WRR {
			r.wrr[k] = &wrrState{pools: w.Pools, weights: w.Weights, current: w.Current, total: w.Total}
		}
	}
	return nil
}

// wrrState implements smooth weighted round-robin (the nginx algorithm):
// each turn, every pool's current weight grows by its capacity; the
// largest current weight wins and is decremented by the total. The
// resulting sequence interleaves pools proportionally to capacity.
type wrrState struct {
	pools   []int
	weights []int
	current []int
	total   int
}

func newWRRState(pools []int, view PoolView) *wrrState {
	st := &wrrState{
		pools:   append([]int(nil), pools...),
		weights: make([]int, len(pools)),
		current: make([]int, len(pools)),
	}
	for i, p := range pools {
		w := view.PoolCores(p)
		if w < 1 {
			w = 1
		}
		st.weights[i] = w
		st.total += w
	}
	return st
}

func (st *wrrState) next() int {
	best := 0
	for i := range st.pools {
		st.current[i] += st.weights[i]
		if st.current[i] > st.current[best] {
			best = i
		}
	}
	st.current[best] -= st.total
	return st.pools[best]
}

// UtilizationBased sends each job to the statically eligible candidate
// pool with the lowest current utilization (§3.2.2). Ties break toward
// the lower pool ID for determinism.
type UtilizationBased struct{}

var _ InitialScheduler = (*UtilizationBased)(nil)

// NewUtilizationBased returns the utilization-based initial scheduler.
func NewUtilizationBased() *UtilizationBased { return &UtilizationBased{} }

// Name implements InitialScheduler.
func (u *UtilizationBased) Name() string { return "util" }

// SelectPool implements InitialScheduler.
func (u *UtilizationBased) SelectPool(_ float64, spec *job.Spec, view PoolView) (int, error) {
	best, bestUtil := -1, 0.0
	for _, p := range spec.Candidates {
		if !view.Eligible(p, spec) {
			continue
		}
		util := view.Utilization(p)
		if best == -1 || util < bestUtil {
			best, bestUtil = p, util
		}
	}
	if best == -1 {
		return 0, errNoEligiblePool(spec)
	}
	return best, nil
}

// RandomInitial sends each job to a uniformly random eligible candidate
// pool. It is not one of the paper's initial schedulers but serves as an
// ablation baseline between round-robin and utilization-based.
type RandomInitial struct {
	rng     *stats.RNG
	scratch []int // eligibleCandidates reuse; never retained
}

var _ InitialScheduler = (*RandomInitial)(nil)

// NewRandomInitial returns a random initial scheduler with its own
// deterministic stream.
func NewRandomInitial(seed uint64) *RandomInitial {
	return &RandomInitial{rng: stats.NewRNG(seed)}
}

// Name implements InitialScheduler.
func (r *RandomInitial) Name() string { return "random" }

// SelectPool implements InitialScheduler.
func (r *RandomInitial) SelectPool(_ float64, spec *job.Spec, view PoolView) (int, error) {
	eligible := eligibleCandidates(spec, view, r.scratch)
	r.scratch = eligible
	if len(eligible) == 0 {
		return 0, errNoEligiblePool(spec)
	}
	return eligible[r.rng.IntN(len(eligible))], nil
}

// ExportState captures the scheduler's RNG stream position.
func (r *RandomInitial) ExportState() ([]byte, error) {
	return json.Marshal(r.rng.ExportState())
}

// ImportState restores a previously exported stream position.
func (r *RandomInitial) ImportState(data []byte) error {
	var st stats.RNGState
	if err := json.Unmarshal(data, &st); err != nil {
		return fmt.Errorf("sched: random-initial state: %w", err)
	}
	return r.rng.ImportState(st)
}

// eligibleCandidates filters spec.Candidates through the view's static
// eligibility check, preserving order. The result reuses buf's storage
// (callers pass a per-scheduler scratch slice; scheduler calls are
// serialized by the engines' decision ordering, like the rotation maps
// they already mutate), so consumers that retain it must copy.
func eligibleCandidates(spec *job.Spec, view PoolView, buf []int) []int {
	out := buf[:0]
	for _, p := range spec.Candidates {
		if view.Eligible(p, spec) {
			out = append(out, p)
		}
	}
	return out
}

// candidateKey builds a map key identifying a candidate set. The
// encoding ("%d," per pool) is also the per-candidate-set map key in
// exported scheduler state, so it must stay stable across versions.
func candidateKey(pools []int) string {
	var buf [64]byte
	b := buf[:0]
	for _, p := range pools {
		b = strconv.AppendInt(b, int64(p), 10)
		b = append(b, ',')
	}
	return string(b)
}
