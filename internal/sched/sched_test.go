package sched

import (
	"math"
	"testing"

	"netbatch/internal/job"
)

// fakeView is a controllable PoolView for scheduler tests.
type fakeView struct {
	cores      []int
	utils      []float64
	queues     []int
	ineligible map[int]bool
}

var _ PoolView = (*fakeView)(nil)

func (f *fakeView) NumPools() int             { return len(f.cores) }
func (f *fakeView) Utilization(p int) float64 { return f.utils[p] }
func (f *fakeView) QueueLen(p int) int        { return f.queues[p] }
func (f *fakeView) PoolCores(p int) int       { return f.cores[p] }
func (f *fakeView) Eligible(p int, _ *job.Spec) bool {
	return !f.ineligible[p]
}

func newFakeView(cores ...int) *fakeView {
	return &fakeView{
		cores:      cores,
		utils:      make([]float64, len(cores)),
		queues:     make([]int, len(cores)),
		ineligible: map[int]bool{},
	}
}

func specWithCandidates(cands ...int) *job.Spec {
	return &job.Spec{
		ID: 1, Work: 10, Cores: 1, MemMB: 1024,
		Priority: job.PriorityLow, Candidates: cands,
	}
}

func TestPureRoundRobinCycles(t *testing.T) {
	view := newFakeView(100, 100, 100)
	rr := NewPureRoundRobin()
	spec := specWithCandidates(0, 1, 2)
	var got []int
	for i := 0; i < 6; i++ {
		p, err := rr.SelectPool(0, spec, view)
		if err != nil {
			t.Fatal(err)
		}
		got = append(got, p)
	}
	want := []int{0, 1, 2, 0, 1, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("sequence = %v, want %v", got, want)
		}
	}
}

func TestPureRoundRobinPerCandidateSet(t *testing.T) {
	view := newFakeView(10, 10, 10, 10)
	rr := NewPureRoundRobin()
	all := specWithCandidates(0, 1, 2, 3)
	owned := specWithCandidates(0, 1)
	if p, _ := rr.SelectPool(0, all, view); p != 0 {
		t.Fatalf("first all = %d", p)
	}
	// The owned set rotates independently of the all set.
	if p, _ := rr.SelectPool(0, owned, view); p != 0 {
		t.Fatalf("first owned = %d", p)
	}
	if p, _ := rr.SelectPool(0, all, view); p != 1 {
		t.Fatalf("second all = %d", p)
	}
	if p, _ := rr.SelectPool(0, owned, view); p != 1 {
		t.Fatalf("second owned = %d", p)
	}
}

func TestWeightedRoundRobinProportions(t *testing.T) {
	view := newFakeView(300, 100, 100) // pool 0 has 60% of capacity
	rr := NewRoundRobin()
	spec := specWithCandidates(0, 1, 2)
	counts := make([]int, 3)
	const n = 5000
	for i := 0; i < n; i++ {
		p, err := rr.SelectPool(0, spec, view)
		if err != nil {
			t.Fatal(err)
		}
		counts[p]++
	}
	frac0 := float64(counts[0]) / n
	if math.Abs(frac0-0.6) > 0.01 {
		t.Fatalf("big pool share = %v, want ~0.6 (counts %v)", frac0, counts)
	}
	if counts[1] == 0 || counts[2] == 0 {
		t.Fatalf("small pools starved: %v", counts)
	}
}

func TestWeightedRoundRobinInterleaves(t *testing.T) {
	// Smooth WRR must interleave, not batch: with weights 2:1 the
	// heavy pool must never take 3 consecutive turns.
	view := newFakeView(200, 100)
	rr := NewRoundRobin()
	spec := specWithCandidates(0, 1)
	consecutive := 0
	for i := 0; i < 300; i++ {
		p, _ := rr.SelectPool(0, spec, view)
		if p == 0 {
			consecutive++
			if consecutive >= 3 {
				t.Fatal("weighted RR batched 3 consecutive picks of the heavy pool")
			}
		} else {
			consecutive = 0
		}
	}
}

func TestRoundRobinSkipsIneligible(t *testing.T) {
	view := newFakeView(10, 10, 10)
	view.ineligible[1] = true
	rr := NewPureRoundRobin()
	spec := specWithCandidates(0, 1, 2)
	for i := 0; i < 10; i++ {
		p, err := rr.SelectPool(0, spec, view)
		if err != nil {
			t.Fatal(err)
		}
		if p == 1 {
			t.Fatal("selected statically ineligible pool")
		}
	}
}

func TestRoundRobinNoEligible(t *testing.T) {
	view := newFakeView(10)
	view.ineligible[0] = true
	rr := NewRoundRobin()
	if _, err := rr.SelectPool(0, specWithCandidates(0), view); err == nil {
		t.Fatal("want error when no pool is eligible")
	}
}

func TestUtilizationBasedPicksLowest(t *testing.T) {
	view := newFakeView(10, 10, 10)
	view.utils = []float64{0.9, 0.2, 0.5}
	u := NewUtilizationBased()
	p, err := u.SelectPool(0, specWithCandidates(0, 1, 2), view)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("picked pool %d, want 1", p)
	}
}

func TestUtilizationBasedTieBreaksLowID(t *testing.T) {
	view := newFakeView(10, 10, 10)
	view.utils = []float64{0.5, 0.5, 0.5}
	u := NewUtilizationBased()
	p, err := u.SelectPool(0, specWithCandidates(2, 1, 0), view)
	if err != nil {
		t.Fatal(err)
	}
	// Candidate order is (2,1,0); strict < keeps the first minimum: 2.
	if p != 2 {
		t.Fatalf("picked pool %d, want first-listed minimum 2", p)
	}
}

func TestUtilizationBasedRespectsCandidates(t *testing.T) {
	view := newFakeView(10, 10, 10)
	view.utils = []float64{0.0, 0.9, 0.9}
	u := NewUtilizationBased()
	// Pool 0 is idle but not a candidate.
	p, err := u.SelectPool(0, specWithCandidates(1, 2), view)
	if err != nil {
		t.Fatal(err)
	}
	if p == 0 {
		t.Fatal("selected non-candidate pool")
	}
}

func TestUtilizationBasedSkipsIneligible(t *testing.T) {
	view := newFakeView(10, 10)
	view.utils = []float64{0.1, 0.9}
	view.ineligible[0] = true
	u := NewUtilizationBased()
	p, err := u.SelectPool(0, specWithCandidates(0, 1), view)
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("picked %d, want 1", p)
	}
	view.ineligible[1] = true
	if _, err := u.SelectPool(0, specWithCandidates(0, 1), view); err == nil {
		t.Fatal("want error when all candidates ineligible")
	}
}

func TestRandomInitialCoversCandidates(t *testing.T) {
	view := newFakeView(10, 10, 10, 10)
	r := NewRandomInitial(99)
	spec := specWithCandidates(1, 3)
	seen := map[int]int{}
	for i := 0; i < 1000; i++ {
		p, err := r.SelectPool(0, spec, view)
		if err != nil {
			t.Fatal(err)
		}
		seen[p]++
	}
	if len(seen) != 2 || seen[1] == 0 || seen[3] == 0 {
		t.Fatalf("coverage = %v", seen)
	}
	if seen[0] != 0 || seen[2] != 0 {
		t.Fatalf("picked non-candidates: %v", seen)
	}
}

func TestRandomInitialDeterministicSeed(t *testing.T) {
	view := newFakeView(10, 10, 10)
	spec := specWithCandidates(0, 1, 2)
	a := NewRandomInitial(5)
	b := NewRandomInitial(5)
	for i := 0; i < 100; i++ {
		pa, _ := a.SelectPool(0, spec, view)
		pb, _ := b.SelectPool(0, spec, view)
		if pa != pb {
			t.Fatal("same seed diverged")
		}
	}
}

func TestSchedulerNames(t *testing.T) {
	if NewRoundRobin().Name() != "rr" {
		t.Fatal("rr name")
	}
	if NewPureRoundRobin().Name() != "rr-pure" {
		t.Fatal("rr-pure name")
	}
	if NewUtilizationBased().Name() != "util" {
		t.Fatal("util name")
	}
	if NewRandomInitial(1).Name() != "random" {
		t.Fatal("random name")
	}
}
