package sim

import (
	"netbatch/internal/stats"
)

// accounting is the series-accounting subsystem: the incremental
// replacement for ASCA's per-minute state scan (§3.1). Instead of
// queueing one sample event per simulated minute, the shard integrates
// its piecewise-constant utilization/suspension/wait signals whenever
// its simulated time advances past pending sample ticks. next marches
// by repeated addition of SampleEvery from the run's first submission,
// exactly like the historical event chain, so tick times (and hence
// bin boundaries) are float-identical to ASCA's every-minute scan.
//
// A tick that coincides exactly with an event timestamp reads the
// state after every event at that instant — a deterministic rule,
// where the event-driven sampler resolved such (measure-zero for the
// float-valued synthetic traces) ties by heap insertion order.
//
// The subsystem runs in one of two modes:
//
//   - serial: ticks are folded straight into the binned TimeSeries
//     (global utilization, suspended, waiting, plus per-site
//     utilization on multi-site platforms), reproducing the
//     monolithic engine's output bit for bit.
//   - raw (parallel): ticks are logged as raw integer counters per
//     shard. The merge step recombines the per-site logs into the
//     global series with exactly the serial mode's float operations,
//     truncating at the final completion the way the serial loop's
//     death does — see mergeSeries in parallel.go.
type accounting struct {
	sh *shard

	on    bool
	next  float64
	every float64

	// Serial sinks.
	utilTS, suspTS, waitTS *stats.TimeSeries
	siteTS                 []*stats.TimeSeries

	// Raw per-tick logs (parallel shards). Values are scope totals —
	// with one site per shard, the site's totals.
	raw     bool
	rawBusy []int32
	rawSusp []int32
	rawWait []int32
}

func newAccounting(sh *shard, raw bool) *accounting {
	a := &accounting{sh: sh, raw: raw, every: sh.w.cfg.SampleEvery}
	if !raw {
		// The serial result always carries (possibly empty) series,
		// even when sampling is disabled.
		a.utilTS = stats.NewTimeSeries(sh.w.cfg.SeriesBin)
		a.suspTS = stats.NewTimeSeries(sh.w.cfg.SeriesBin)
		a.waitTS = stats.NewTimeSeries(sh.w.cfg.SeriesBin)
	}
	if sh.w.cfg.DisableSampling || len(sh.w.specs) == 0 {
		return a
	}
	a.on = true
	a.next = sh.w.start
	if !raw && sh.w.nSites > 1 {
		a.siteTS = make([]*stats.TimeSeries, sh.w.nSites)
		for s := range a.siteTS {
			a.siteTS[s] = stats.NewTimeSeries(sh.w.cfg.SeriesBin)
		}
	}
	return a
}

// register installs the accounting state codec: the next-tick cursor
// plus the accumulated sinks — binned TimeSeries state in serial mode,
// the raw per-tick counter logs in parallel mode. Restoring them lets
// the integrator continue mid-signal with float operations identical
// to a never-interrupted run.
func (a *accounting) register(k *kernel) {
	k.registerState("accounting", func(e *snapEncoder) {
		e.F64(a.next)
		if a.sh.opt != nil {
			// Light mode (optimistic rollback snapshots): the raw logs
			// are append-only and rollback replay re-appends identical
			// values, so undoing speculation only needs the length to
			// truncate to. All three logs grow in lockstep.
			e.Int(len(a.rawBusy))
			return
		}
		e.Bool(a.raw)
		if a.raw {
			e.I32s(a.rawBusy)
			e.I32s(a.rawSusp)
			e.I32s(a.rawWait)
			return
		}
		encodeTS(e, a.utilTS)
		encodeTS(e, a.suspTS)
		encodeTS(e, a.waitTS)
		e.Int(len(a.siteTS))
		for _, ts := range a.siteTS {
			encodeTS(e, ts)
		}
	}, func(d *snapDecoder) error {
		a.next = d.F64()
		if a.sh.opt != nil {
			n := d.Int()
			if d.err != nil || n < 0 || n > len(a.rawBusy) {
				d.fail()
				return d.err
			}
			a.rawBusy = a.rawBusy[:n]
			a.rawSusp = a.rawSusp[:n]
			a.rawWait = a.rawWait[:n]
			return d.err
		}
		if raw := d.Bool(); d.err == nil && raw != a.raw {
			d.fail()
			return d.err
		}
		if a.raw {
			a.rawBusy = d.I32sN(-1)
			a.rawSusp = d.I32sN(-1)
			a.rawWait = d.I32sN(-1)
			return d.err
		}
		bin := a.sh.w.cfg.SeriesBin
		a.utilTS = decodeTS(d, bin)
		a.suspTS = decodeTS(d, bin)
		a.waitTS = decodeTS(d, bin)
		n := d.Int()
		if d.err != nil {
			return d.err
		}
		if n != len(a.siteTS) {
			d.fail()
			return d.err
		}
		for s := range a.siteTS {
			a.siteTS[s] = decodeTS(d, bin)
		}
		return d.err
	})
}

// encodeTS/decodeTS serialize one TimeSeries accumulator (nil-aware:
// serial shards always carry the three global sinks, but site series
// exist only on multi-site platforms).
func encodeTS(e *snapEncoder, ts *stats.TimeSeries) {
	if ts == nil {
		e.Bool(false)
		return
	}
	e.Bool(true)
	sums, counts := ts.Dump()
	e.F64s(sums)
	e.I64s(counts)
}

func decodeTS(d *snapDecoder, bin float64) *stats.TimeSeries {
	if !d.Bool() {
		return nil
	}
	sums := d.F64sN(-1)
	counts := d.I64sN(-1)
	if d.err != nil || len(sums) != len(counts) {
		d.fail()
		return nil
	}
	return stats.RestoreTimeSeries(bin, sums, counts)
}

// advanceTo records every pending sample tick with time strictly
// before now. The observed signals are piecewise-constant between the
// shard's events, so the current counters are exactly what an
// event-driven sampler would have read at each of those ticks.
func (a *accounting) advanceTo(now float64) {
	if !a.on {
		return
	}
	for a.next < now {
		a.tick()
	}
}

// flushTo records pending ticks up to (but excluding) limit. Parallel
// shards call it at each round barrier with the round horizon: no
// event below the horizon can ever arrive afterwards, so the shard's
// counters at those ticks are final.
func (a *accounting) flushTo(limit float64) {
	a.advanceTo(limit)
}

func (a *accounting) tick() {
	sh := a.sh
	if a.raw {
		a.rawBusy = append(a.rawBusy, int32(sh.scopeBusy))
		a.rawSusp = append(a.rawSusp, int32(sh.scopeSuspended))
		a.rawWait = append(a.rawWait, int32(sh.scopeWaiting))
		a.next += a.every
		return
	}
	// The serial shard spans the whole platform, so the scope counters
	// are the global ones; the denominator is the platform's machine
	// core total, exactly as the monolithic sampler computed it.
	util := 0.0
	if sh.w.totalCores > 0 {
		util = float64(sh.scopeBusy) / float64(sh.w.totalCores) * 100
	}
	a.utilTS.Add(a.next, util)
	a.suspTS.Add(a.next, float64(sh.scopeSuspended))
	a.waitTS.Add(a.next, float64(sh.scopeWaiting))
	for s, ts := range a.siteTS {
		su := 0.0
		if sh.w.siteCores[s] > 0 {
			su = float64(sh.w.siteBusy[s]) / float64(sh.w.siteCores[s]) * 100
		}
		ts.Add(a.next, su)
	}
	a.next += a.every
}
