package sim

// Checkpoint/restore: serialize the complete state of a running
// simulation at a clean boundary and resume it later, bit-identically.
//
// The state contract is the kernel's state registry (see stateCodec in
// kernel.go): every stateful subsystem registers a codec that can dump
// and restore its portion of shard state, so the snapshot machinery —
// like the dispatch loop — never needs to know which mechanisms are
// loaded. A snapshot is taken only at boundaries where every piece of
// state is explicit: between events in the serial engine, and at round
// barriers (all shards quiescent, outboxes delivered) in the parallel
// engine. The invariant that makes this safe, asserted by the
// checkpoint property tests, is bit-identity: a run resumed from any
// checkpoint produces exactly the jobs, series, counters and event
// counts of a never-interrupted run.
//
// The encoding is deterministic — fixed-width little-endian primitives,
// floats as IEEE-754 bits, registry-ordered sections, sorted map keys —
// so equal states always encode to equal bytes, which is what lets
// replay-bisect (replay.go) compare snapshots bytewise. Three guards
// protect against mismatched resumes: a format version, a hash of the
// event-kind table (the registry the pending events reference), and a
// hash of the full run configuration (platform topology, workload
// specs, scheduler/policy identity, engine knobs). Any mismatch — or a
// truncated or corrupted snapshot — fails with ErrSnapshotMismatch
// before any state is touched.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"hash/fnv"
	"math"

	"netbatch/internal/eventq"
	"netbatch/internal/obs"
)

// snapshotMagic and snapshotVersion head every encoded snapshot.
// Version 2 dropped the persisted cross-alias flag: the alias-risk
// ledger (world.aliasLive, jobRT.aliased) is a pure function of
// restored job/machine state and is rederived on restore.
const (
	snapshotMagic   = uint32(0x4e425350) // "NBSP"
	snapshotVersion = uint32(2)
)

// ErrSnapshotMismatch wraps every resume failure caused by the snapshot
// itself: version skew, a different configuration or kind table,
// truncation, or corruption. Callers can match it to fall back to a
// fresh run.
var ErrSnapshotMismatch = errors.New("sim: snapshot incompatible with this run")

// Checkpoint is one snapshot emitted through Config.CheckpointSink.
type Checkpoint struct {
	// Time is the simulated minute of the state boundary the snapshot
	// captures (serial: the clock after the event that crossed the
	// checkpoint mark; parallel: the round horizon).
	Time float64
	// Events is the number of events processed before the boundary.
	Events int64
	// Data is the encoded snapshot; pass it to Config.ResumeFrom.
	// With Delta set it is a delta against the previously emitted
	// snapshot instead — reconstruct with ApplySnapshotDelta before
	// resuming (see Config.CheckpointKeyframe).
	Data []byte
	// Delta marks Data as delta-encoded.
	Delta bool
}

// Stateful is the state contract for user-supplied schedulers and
// policies: implementations with internal mutable state (round-robin
// rotations, RNG streams) expose it so checkpoints capture it and
// resumes restore it. All stateful built-ins (sched.RoundRobin,
// sched.Federated, sched.RandomInitial, core.ResSusRand,
// core.ResSusWaitRand) implement it; stateless components need nothing.
// A custom component that mutates state without implementing Stateful
// breaks the resume bit-identity contract silently — implement it.
type Stateful interface {
	// ExportState returns a serialized snapshot of the component's
	// mutable state. It must not perturb the state.
	ExportState() ([]byte, error)
	// ImportState restores a previously exported state.
	ImportState(data []byte) error
}

// ---------------------------------------------------------------------
// Deterministic binary encoding primitives.

// snapEncoder appends fixed-width little-endian primitives to a buffer.
type snapEncoder struct {
	buf []byte
}

func (e *snapEncoder) U64(v uint64) { e.buf = binary.LittleEndian.AppendUint64(e.buf, v) }
func (e *snapEncoder) I64(v int64)  { e.U64(uint64(v)) }
func (e *snapEncoder) Int(v int)    { e.I64(int64(v)) }
func (e *snapEncoder) F64(v float64) {
	e.U64(math.Float64bits(v))
}
func (e *snapEncoder) Bool(v bool) {
	b := byte(0)
	if v {
		b = 1
	}
	e.buf = append(e.buf, b)
}
func (e *snapEncoder) Bytes(v []byte) {
	e.U64(uint64(len(v)))
	e.buf = append(e.buf, v...)
}
func (e *snapEncoder) Str(v string) { e.Bytes([]byte(v)) }
func (e *snapEncoder) Ints(v []int) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(int64(x))
	}
}
func (e *snapEncoder) F64s(v []float64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.F64(x)
	}
}
func (e *snapEncoder) I64s(v []int64) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.I64(x)
	}
}
func (e *snapEncoder) I32s(v []int32) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.buf = binary.LittleEndian.AppendUint32(e.buf, uint32(x))
	}
}
func (e *snapEncoder) Bools(v []bool) {
	e.U64(uint64(len(v)))
	for _, x := range v {
		e.Bool(x)
	}
}

// snapDecoder reads the encoder's stream back with a sticky error, so
// codec load functions can decode unconditionally and check once.
type snapDecoder struct {
	data []byte
	off  int
	err  error
}

func (d *snapDecoder) fail() {
	if d.err == nil {
		d.err = fmt.Errorf("%w: truncated snapshot", ErrSnapshotMismatch)
	}
}

func (d *snapDecoder) U64() uint64 {
	if d.err != nil || d.off+8 > len(d.data) {
		d.fail()
		return 0
	}
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return v
}
func (d *snapDecoder) I64() int64   { return int64(d.U64()) }
func (d *snapDecoder) Int() int     { return int(d.I64()) }
func (d *snapDecoder) F64() float64 { return math.Float64frombits(d.U64()) }
func (d *snapDecoder) Bool() bool {
	if d.err != nil || d.off+1 > len(d.data) {
		d.fail()
		return false
	}
	v := d.data[d.off]
	d.off++
	return v != 0
}
func (d *snapDecoder) Bytes() []byte {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off) < n {
		d.fail()
		return nil
	}
	v := d.data[d.off : d.off+int(n) : d.off+int(n)]
	d.off += int(n)
	return v
}
func (d *snapDecoder) Str() string { return string(d.Bytes()) }
func (d *snapDecoder) IntsN(max int) []int {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off)/8 < n || (max >= 0 && n > uint64(max)) {
		d.fail()
		return nil
	}
	v := make([]int, n)
	for i := range v {
		v[i] = d.Int()
	}
	return v
}
func (d *snapDecoder) F64sN(max int) []float64 {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off)/8 < n || (max >= 0 && n > uint64(max)) {
		d.fail()
		return nil
	}
	v := make([]float64, n)
	for i := range v {
		v[i] = d.F64()
	}
	return v
}
func (d *snapDecoder) I64sN(max int) []int64 {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off)/8 < n || (max >= 0 && n > uint64(max)) {
		d.fail()
		return nil
	}
	v := make([]int64, n)
	for i := range v {
		v[i] = d.I64()
	}
	return v
}
func (d *snapDecoder) BoolsN(max int) []bool {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off) < n || (max >= 0 && n > uint64(max)) {
		d.fail()
		return nil
	}
	v := make([]bool, n)
	for i := range v {
		v[i] = d.Bool()
	}
	return v
}
func (d *snapDecoder) I32sN(max int) []int32 {
	n := d.U64()
	if d.err != nil || uint64(len(d.data)-d.off)/4 < n || (max >= 0 && n > uint64(max)) {
		d.fail()
		return nil
	}
	v := make([]int32, n)
	for i := range v {
		v[i] = int32(binary.LittleEndian.Uint32(d.data[d.off:]))
		d.off += 4
	}
	return v
}

// ---------------------------------------------------------------------
// Guard hashes.

// kindTableHash fingerprints the kernel's event-kind registry: pending
// events in a snapshot reference kinds by number, so a resume is only
// meaningful against the identical table.
func kindTableHash(k *kernel) uint64 {
	h := fnv.New64a()
	for _, info := range k.kinds[1:] {
		fmt.Fprintf(h, "%s|%t|%t;", info.name, info.deciding, info.handoff)
	}
	return h.Sum64()
}

// configHash fingerprints everything that determines a run's behavior:
// the engine knobs, the fault regime, scheduler and policy identity,
// the platform topology, and the full workload. It deliberately
// excludes checkpoint cadence, context and engine selection (the mode
// is recorded separately — accounting state differs by engine).
// Opaque scheduler/policy internals beyond Name and thresholds cannot
// be hashed; the state blobs still restore them, and the property
// tests cover every built-in.
func configHash(w *world) uint64 {
	cfg := &w.cfg
	var e snapEncoder
	e.F64(cfg.SampleEvery)
	e.F64(cfg.SeriesBin)
	e.F64(cfg.RescheduleOverhead)
	e.Bool(cfg.SuspendHoldsMemory)
	e.F64(cfg.UtilStaleness)
	e.F64(cfg.DecisionDelay)
	e.Bool(cfg.QueueBeatsResume)
	e.F64(cfg.MaxTime)
	e.Bool(cfg.CheckConservation)
	e.Bool(cfg.DisableSampling)
	e.F64(cfg.Faults.MTBF)
	e.F64(cfg.Faults.MTTR)
	e.F64(cfg.Faults.MaintPeriod)
	e.F64(cfg.Faults.MaintDuration)
	e.F64(cfg.Faults.MaintFraction)
	e.Str(cfg.Faults.Victim)
	e.U64(cfg.Faults.Seed)
	e.Str(cfg.Initial.Name())
	e.Str(cfg.Policy.Name())
	e.F64(cfg.Policy.WaitThreshold())
	if mig, ok := cfg.Policy.(interface{ MigrationOverhead() float64 }); ok {
		e.F64(mig.MigrationOverhead())
	}
	plat := w.plat
	e.Int(plat.NumSites())
	e.Int(plat.NumPools())
	for p := 0; p < plat.NumPools(); p++ {
		e.Int(plat.SiteOf(p))
		e.Int(plat.Pool(p).Cores)
		e.Ints(plat.Pool(p).Machines)
	}
	e.Int(plat.NumMachines())
	for i := 0; i < plat.NumMachines(); i++ {
		m := plat.Machine(i)
		e.Int(m.Pool)
		e.Int(m.Cores)
		e.Int(m.MemMB)
		e.F64(m.Speed)
		e.Str(m.OS)
	}
	for a := 0; a < plat.NumSites(); a++ {
		for b := 0; b < plat.NumSites(); b++ {
			e.F64(plat.RTT(a, b))
		}
	}
	e.Int(len(w.specs))
	for i := range w.specs {
		s := &w.specs[i]
		e.I64(int64(s.ID))
		e.F64(s.Submit)
		e.F64(s.Work)
		e.Int(s.Cores)
		e.Int(s.MemMB)
		e.Str(s.OS)
		e.Int(int(s.Priority))
		e.Ints(s.Candidates)
		e.Int(s.Site)
		e.I64(s.TaskID)
	}
	h := fnv.New64a()
	h.Write(e.buf)
	return h.Sum64()
}

// ---------------------------------------------------------------------
// Snapshot encode/decode.

// snapshot is a decoded-but-not-yet-applied checkpoint: the verified
// header plus the raw per-shard codec sections, applied to freshly
// built shards by restoreRun.
type snapshot struct {
	label      string
	mode       string
	every      float64
	configHash uint64
	kindHash   uint64
	time       float64
	events     int64

	// comparable is the suffix of the encoding that identifies the
	// captured state (time, events, world, shards): everything after
	// the label. Replay-bisect compares snapshots on it, so differing
	// labels or cadences never mask (or fake) a state difference.
	comparable []byte

	hasInitState bool
	initState    []byte
	hasPolState  bool
	polState     []byte

	// shards[i] holds shard i's codec sections in registry order.
	shards [][]snapSection

	// Parallel coordinator state (mode == EngineParallel only).
	gseq uint64
	ties bool
}

type snapSection struct {
	name string
	data []byte
}

// snapParams carries the header inputs of one snapshot. Periodic
// checkpointing caches the two guard hashes and a buffer size hint
// here — recomputing the configuration hash walks the whole workload,
// which at a one-simulated-day cadence would dominate snapshot cost.
type snapParams struct {
	mode, label string
	every       float64
	cfgHash     uint64
	kindHash    uint64
	sizeHint    int
}

func newSnapParams(w *world, shards []*shard, mode string, every float64) snapParams {
	return snapParams{
		mode:     mode,
		label:    w.cfg.CheckpointLabel,
		every:    every,
		cfgHash:  configHash(w),
		kindHash: kindTableHash(shards[0].k),
	}
}

// takeSnapshot serializes the complete state of a quiescent run. The
// caller guarantees the boundary: the serial loop calls it between
// events, the parallel engine at a round barrier with every worker
// parked and all cross-shard messages delivered.
func takeSnapshot(w *world, shards []*shard, p snapParams, now float64, events int64, gseq uint64, ties bool) ([]byte, error) {
	e := snapEncoder{buf: make([]byte, 0, p.sizeHint+4096)}
	e.U64(uint64(snapshotMagic))
	e.U64(uint64(snapshotVersion))
	e.U64(p.cfgHash)
	e.U64(p.kindHash)
	e.Str(p.mode)
	e.F64(p.every)
	e.Str(p.label)
	e.F64(now)
	e.I64(events)

	if err := encodeComponentState(&e, w.cfg.Initial); err != nil {
		return nil, fmt.Errorf("sim: checkpoint initial scheduler: %w", err)
	}
	if err := encodeComponentState(&e, w.cfg.Policy); err != nil {
		return nil, fmt.Errorf("sim: checkpoint policy: %w", err)
	}

	e.Int(len(shards))
	for _, sh := range shards {
		e.Int(len(sh.k.codecs))
		for _, c := range sh.k.codecs {
			e.Str(c.name)
			// Reserve the section length slot, save in place, then
			// backpatch — avoids a second buffer and its copy per
			// section.
			e.U64(0)
			lenAt := len(e.buf) - 8
			c.save(&e)
			binary.LittleEndian.PutUint64(e.buf[lenAt:], uint64(len(e.buf)-lenAt-8))
		}
	}
	if p.mode == EngineParallel {
		e.U64(gseq)
		e.Bool(ties)
	}
	// Integrity trailer: a CRC-32C checksum of everything above, so a
	// flipped bit anywhere in a stored snapshot is rejected instead of
	// silently restoring a perturbed state. Castagnoli is hardware-
	// accelerated; a byte-at-a-time hash here would cost more than the
	// entire state walk. (Stored widened to 8 bytes for alignment.)
	e.U64(uint64(crc32.Checksum(e.buf, castagnoli)))
	return e.buf, nil
}

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// encodeComponentState writes a Stateful component's exported state (or
// an absence marker for stateless components).
func encodeComponentState(e *snapEncoder, comp any) error {
	s, ok := comp.(Stateful)
	if !ok {
		e.Bool(false)
		return nil
	}
	data, err := s.ExportState()
	if err != nil {
		return err
	}
	e.Bool(true)
	e.Bytes(data)
	return nil
}

// decodeSnapshot parses and structurally validates an encoded snapshot.
func decodeSnapshot(data []byte) (*snapshot, error) {
	if len(data) < 8 {
		return nil, fmt.Errorf("%w: truncated snapshot", ErrSnapshotMismatch)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if uint64(crc32.Checksum(body, castagnoli)) != sum {
		return nil, fmt.Errorf("%w: checksum mismatch (snapshot corrupted)", ErrSnapshotMismatch)
	}
	data = body
	d := &snapDecoder{data: data}
	if magic := d.U64(); d.err == nil && uint32(magic) != snapshotMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrSnapshotMismatch, magic)
	}
	sn := &snapshot{}
	if version := d.U64(); d.err == nil && uint32(version) != snapshotVersion {
		return nil, fmt.Errorf("%w: snapshot format version %d, this build reads %d",
			ErrSnapshotMismatch, version, snapshotVersion)
	}
	sn.configHash = d.U64()
	sn.kindHash = d.U64()
	sn.mode = d.Str()
	sn.every = d.F64()
	sn.label = d.Str()
	if d.err == nil {
		sn.comparable = data[d.off:]
	}
	sn.time = d.F64()
	sn.events = d.I64()

	sn.hasInitState = d.Bool()
	if sn.hasInitState {
		sn.initState = d.Bytes()
	}
	sn.hasPolState = d.Bool()
	if sn.hasPolState {
		sn.polState = d.Bytes()
	}

	nShards := d.Int()
	if d.err == nil && (nShards < 1 || nShards > 1<<20) {
		return nil, fmt.Errorf("%w: implausible shard count %d", ErrSnapshotMismatch, nShards)
	}
	for i := 0; i < nShards && d.err == nil; i++ {
		nCodecs := d.Int()
		if d.err == nil && (nCodecs < 0 || nCodecs > 1<<10) {
			return nil, fmt.Errorf("%w: implausible codec count %d", ErrSnapshotMismatch, nCodecs)
		}
		var secs []snapSection
		for c := 0; c < nCodecs && d.err == nil; c++ {
			secs = append(secs, snapSection{name: d.Str(), data: d.Bytes()})
		}
		sn.shards = append(sn.shards, secs)
	}
	if sn.mode == EngineParallel {
		sn.gseq = d.U64()
		sn.ties = d.Bool()
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotMismatch, len(data)-d.off)
	}
	switch sn.mode {
	case EngineSerial, EngineParallel:
	default:
		return nil, fmt.Errorf("%w: unknown engine mode %q", ErrSnapshotMismatch, sn.mode)
	}
	return sn, nil
}

// SnapshotMeta is the human-facing header of an encoded snapshot.
type SnapshotMeta struct {
	// Label is the creator-supplied Config.CheckpointLabel (e.g. the
	// experiment cell, "fed3-faults/p1/r0").
	Label string
	// Mode is the engine that produced the snapshot.
	Mode string
	// Every is the checkpoint cadence (simulated minutes) of the run
	// that emitted the snapshot; 0 for one-off captures.
	Every float64
	// Time and Events locate the captured boundary.
	Time   float64
	Events int64
}

// ReadSnapshotMeta decodes just the metadata of an encoded snapshot
// (validating integrity and format version), for tooling that inspects
// checkpoints without resuming them.
func ReadSnapshotMeta(data []byte) (SnapshotMeta, error) {
	sn, err := decodeSnapshot(data)
	if err != nil {
		return SnapshotMeta{}, err
	}
	return SnapshotMeta{Label: sn.label, Mode: sn.mode, Every: sn.every, Time: sn.time, Events: sn.events}, nil
}

// verify checks a decoded snapshot against the run it is about to be
// restored into: same engine mode (after the parallelizability
// fallback), same configuration fingerprint, matching shard count.
func (sn *snapshot) verify(w *world, mode string) error {
	if sn.mode != mode {
		return fmt.Errorf("%w: snapshot from %q engine, resuming with %q",
			ErrSnapshotMismatch, sn.mode, mode)
	}
	if h := configHash(w); sn.configHash != h {
		return fmt.Errorf("%w: configuration hash %#x, snapshot has %#x (different platform, workload, policy or knobs)",
			ErrSnapshotMismatch, h, sn.configHash)
	}
	wantShards := 1
	if mode == EngineParallel {
		wantShards = w.nSites
	}
	if len(sn.shards) != wantShards {
		return fmt.Errorf("%w: snapshot has %d shards, run needs %d",
			ErrSnapshotMismatch, len(sn.shards), wantShards)
	}
	return nil
}

// restoreRun applies a verified snapshot to freshly built shards (and,
// for parallel runs, the coordinator). Shards must be newly constructed
// — subsystems registered, nothing seeded.
func restoreRun(sn *snapshot, w *world, shards []*shard, c *coordinator) error {
	if h := kindTableHash(shards[0].k); sn.kindHash != h {
		return fmt.Errorf("%w: event-kind table hash %#x, snapshot has %#x",
			ErrSnapshotMismatch, h, sn.kindHash)
	}
	if err := restoreComponentState(w.cfg.Initial, "initial scheduler", sn.hasInitState, sn.initState); err != nil {
		return err
	}
	if err := restoreComponentState(w.cfg.Policy, "policy", sn.hasPolState, sn.polState); err != nil {
		return err
	}
	for i, sh := range shards {
		secs := sn.shards[i]
		if len(secs) != len(sh.k.codecs) {
			return fmt.Errorf("%w: shard %d has %d state codecs, snapshot has %d",
				ErrSnapshotMismatch, i, len(sh.k.codecs), len(secs))
		}
		for ci, codec := range sh.k.codecs {
			if secs[ci].name != codec.name {
				return fmt.Errorf("%w: shard %d codec %d is %q, snapshot has %q",
					ErrSnapshotMismatch, i, ci, codec.name, secs[ci].name)
			}
			d := &snapDecoder{data: secs[ci].data}
			if err := codec.load(d); err != nil {
				return fmt.Errorf("sim: restore %s state: %w", codec.name, err)
			}
			if d.err != nil {
				return fmt.Errorf("sim: restore %s state: %w", codec.name, d.err)
			}
			if d.off != len(d.data) {
				return fmt.Errorf("%w: %s section has %d trailing bytes",
					ErrSnapshotMismatch, codec.name, len(d.data)-d.off)
			}
		}
	}
	for _, sh := range shards {
		sh.rebuildAliasRisk()
	}
	rebuildAliasLive(w)
	if c != nil {
		c.gseq = sn.gseq
		c.ties = sn.ties
	}
	return nil
}

// restoreComponentState applies a saved scheduler/policy state blob,
// failing loudly when the snapshot and the configured component
// disagree about statefulness.
func restoreComponentState(comp any, what string, has bool, data []byte) error {
	s, ok := comp.(Stateful)
	switch {
	case has && !ok:
		return fmt.Errorf("%w: snapshot carries %s state but the configured %s is not Stateful",
			ErrSnapshotMismatch, what, what)
	case !has && ok:
		return fmt.Errorf("%w: configured %s is Stateful but the snapshot carries no state for it",
			ErrSnapshotMismatch, what)
	case has:
		if err := s.ImportState(data); err != nil {
			return fmt.Errorf("sim: restore %s state: %w", what, err)
		}
	}
	return nil
}

// ---------------------------------------------------------------------
// The checkpointer: cadence bookkeeping shared by both engines.

// checkpointer drives periodic snapshots onto Config.CheckpointSink.
// Marks sit on a grid anchored at the run's first submission with step
// CheckpointEvery; a snapshot is taken at the first clean boundary at
// or past each mark, and a resumed run skips the marks its snapshot
// already passed — so straight and resumed runs emit checkpoints at
// identical boundaries.
type checkpointer struct {
	w      *world
	shards []*shard
	params snapParams
	every  float64
	next   float64

	// Delta emission (Config.CheckpointKeyframe > 1): lastFull holds
	// the full encoding of the previously emitted snapshot — the diff
	// base — and lastTime/lastEvents its boundary; emitted counts
	// snapshots since the run (or resume) started, so emitted%keyframe
	// == 0 forces a full keyframe. The first snapshot after a resume is
	// always full (lastFull nil), so no delta ever chains across runs.
	keyframe   int
	emitted    int
	lastFull   []byte
	lastTime   float64
	lastEvents int64

	// Observability (see observe.go): capture counters/bytes and a
	// wall-clock span per take on the driving engine's timeline track.
	// Both nil-safe; set by the engine via observe.
	met   *simMetrics
	trace *obs.Track
}

// observe attaches the run's metric handles and the driving engine's
// timeline track to the checkpointer. Nil-safe on a nil checkpointer
// (checkpointing disabled).
func (ck *checkpointer) observe(met *simMetrics, tk *obs.Track) {
	if ck == nil {
		return
	}
	ck.met = met
	ck.trace = tk
}

// newCheckpointer returns nil when checkpointing is disabled.
func newCheckpointer(w *world, shards []*shard, mode string, resumed *snapshot) *checkpointer {
	if w.cfg.CheckpointEvery <= 0 {
		return nil
	}
	ck := &checkpointer{
		w:        w,
		shards:   shards,
		params:   newSnapParams(w, shards, mode, w.cfg.CheckpointEvery),
		every:    w.cfg.CheckpointEvery,
		next:     w.start + w.cfg.CheckpointEvery,
		keyframe: w.cfg.CheckpointKeyframe,
	}
	if resumed != nil {
		for ck.next <= resumed.time {
			ck.next += ck.every
		}
	}
	return ck
}

// due reports whether the boundary at time t has crossed the next mark.
func (ck *checkpointer) due(t float64) bool { return ck != nil && t >= ck.next }

// take snapshots the run at boundary time t and hands the encoding to
// the sink, then advances past every mark the boundary crossed. In
// keyframe mode the non-keyframe snapshots are emitted as deltas
// against the previous emission, unless the delta fails to shrink (a
// delta at least as large as its full encoding carries no value and
// would still force chain reconstruction on resume).
func (ck *checkpointer) take(t float64, events int64, gseq uint64, ties bool) error {
	t0 := ck.trace.Now()
	data, err := takeSnapshot(ck.w, ck.shards, ck.params, t, events, gseq, ties)
	if err != nil {
		return err
	}
	ck.params.sizeHint = len(data)
	for ck.next <= t {
		ck.next += ck.every
	}
	out, isDelta := data, false
	if ck.keyframe > 1 && ck.lastFull != nil && ck.emitted%ck.keyframe != 0 {
		delta := encodeSnapshotDelta(ck.lastFull, data, ck.lastTime, t, ck.lastEvents, events)
		if len(delta) < len(data) {
			out, isDelta = delta, true
		}
	}
	ck.emitted++
	if ck.keyframe > 1 {
		ck.lastFull, ck.lastTime, ck.lastEvents = data, t, events
	}
	if ck.met != nil {
		ck.met.ckpts.Add(1)
		ck.met.ckptBytes.Add(int64(len(out)))
	}
	ck.trace.Span("checkpoint", t0, obs.Arg{Key: "bytes", Val: int64(len(out))})
	if err := ck.w.cfg.CheckpointSink(Checkpoint{Time: t, Events: events, Data: out, Delta: isDelta}); err != nil {
		return fmt.Errorf("sim: checkpoint sink at t=%v: %w", t, err)
	}
	return nil
}

// rebuildAliasRisk reconstructs the derived alias-risk counters of a
// restored parallel shard: slotCount from the un-compacted FIFO slots
// of the shard's pools, riskCounted/aliasRisk from slotCount × away.
// (away itself is saved state — whether a job departed cannot be
// derived locally.) Serial shards have no alias tracking; no-op.
func (sh *shard) rebuildAliasRisk() {
	if sh.slotCount == nil {
		return
	}
	for i := range sh.slotCount {
		sh.slotCount[i] = 0
		sh.riskCounted[i] = false
	}
	sh.aliasRisk = 0
	for _, s := range sh.sites {
		for _, p := range sh.w.plat.Site(s).Pools {
			wq := sh.w.pools[p].waitQ
			for _, prio := range wq.prios {
				f := wq.classes[prio]
				for i := f.head; i < len(f.items); i++ {
					if f.items[i] != nil {
						sh.slotCount[f.items[i].idx]++
					}
				}
			}
		}
	}
	for i := range sh.slotCount {
		sh.recountRisk(i)
	}
}

// restoreQueue reloads a saved pending-event list into the kernel and
// rewires the cancellation handles job records hold into it (the
// pending completion of every running job, the pending wait timer of
// every queued one).
func (sh *shard) restoreQueue(d *snapDecoder) error {
	k := sh.k
	k.q.SetSeq(d.U64())
	n := d.Int()
	if d.err != nil || n < 0 {
		d.fail()
		return d.err
	}
	for i := 0; i < n; i++ {
		t := d.F64()
		kd := d.Int()
		var rank [3]uint64
		rank[0], rank[1], rank[2] = d.U64(), d.U64(), d.U64()
		if d.err != nil {
			return d.err
		}
		if kd <= 0 || kd >= len(k.kinds) {
			return fmt.Errorf("%w: pending event references unknown kind %d", ErrSnapshotMismatch, kd)
		}
		a, b, pref := k.kinds[kd].decPayload(d)
		if d.err != nil {
			return d.err
		}
		ref := k.restoreEvent(eventq.SavedEvent{Time: t, Kind: kd, A: a, B: b, Ref: pref, Rank: rank})
		switch kind(kd) {
		case sh.place.finish:
			sh.w.jobs[int(a)].finish = ref
		case sh.dyn.waitTimeout:
			sh.w.jobs[int(a)].waitTO = ref
		}
	}
	return nil
}

// saveQueue exports the kernel's pending events (exact tie ranks and
// scheduling-order counter included) through the per-kind payload
// codecs.
func (sh *shard) saveQueue(e *snapEncoder) {
	k := sh.k
	e.U64(k.q.Seq())
	events := k.q.Export()
	if sh.opt != nil {
		// Stash the jobs with a pending arrive event for the placement
		// codec's light-mode scope (the core codec saves first, so the
		// stash is fresh when placement consults it).
		sh.opt.inTransit = sh.opt.inTransit[:0]
		for _, sev := range events {
			if kind(sev.Kind) == sh.place.arrive {
				sh.opt.inTransit = append(sh.opt.inTransit, int(sev.A))
			}
		}
	}
	e.Int(len(events))
	for _, sev := range events {
		e.F64(sev.Time)
		e.Int(sev.Kind)
		e.U64(sev.Rank[0])
		e.U64(sev.Rank[1])
		e.U64(sev.Rank[2])
		k.kinds[sev.Kind].encPayload(e, sev.A, sev.B, sev.Ref)
	}
}
