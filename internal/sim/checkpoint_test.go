package sim

// Checkpoint/restore contract tests. The load-bearing invariant is
// bit-identity: a run resumed from a checkpoint taken at any mid-run
// boundary must produce exactly the observables of a never-interrupted
// run — hex-float-exact job records, series, counters and event counts
// — across random federations, both engines, and zero and nonzero
// fault regimes. Checkpointing itself must be a pure read: a run that
// emits checkpoints must match a run that doesn't. Mismatched or
// corrupted snapshots must be rejected before any state is touched.

import (
	"errors"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// checkpointWorkload builds a random federation plus a run config for
// one property-test coordinate, mirroring the fuzz harness's coordinate
// scheme (policy × selector × staleness × fault regime).
func checkpointWorkload(t *testing.T, seed uint64, polPick, selPick, staleness, faultPick, victimPick byte) (Config, []job.Spec, bool) {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed^0xc0ffee))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Logf("workload: %v", err)
		return Config{}, nil, false
	}
	cfg := Config{
		Platform:          plat,
		Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
		Policy:            multiSitePolicyForIndex(int(polPick), seed),
		UtilStaleness:     float64(staleness % 40),
		Faults:            fuzzFaults(seed, faultPick, victimPick),
		CheckConservation: true,
		MaxTime:           50000,
	}
	return cfg, specs, true
}

// freshComponents re-instantiates the stateful scheduler/policy for a
// new run of the same coordinate (per-run state, like the engine
// identity tests do).
func freshComponents(cfg *Config, seed uint64, polPick, selPick byte) {
	cfg.Initial = federatedInitial(siteSelectorForIndex(int(selPick)))
	cfg.Policy = multiSitePolicyForIndex(int(polPick), seed)
}

func collectCheckpoints(cfg Config, every float64) (*Config, *[]Checkpoint) {
	cks := &[]Checkpoint{}
	cfg.CheckpointEvery = every
	cfg.CheckpointSink = func(c Checkpoint) error {
		*cks = append(*cks, c)
		return nil
	}
	return &cfg, cks
}

func TestCheckpointResumeBitIdentical(t *testing.T) {
	maxCount := 24
	if testing.Short() {
		maxCount = 8
	}
	cfgQuick := &quick.Config{MaxCount: maxCount}
	err := quick.Check(func(seed uint64, engPick, polPick, selPick, staleness, faultPick, victimPick byte) bool {
		base, specs, ok := checkpointWorkload(t, seed, polPick, selPick, staleness, faultPick, victimPick)
		if !ok {
			return true
		}
		if engPick%2 == 1 {
			base.Engine = EngineParallel
		}

		// Reference: the straight run with no checkpointing at all.
		plain := base
		plainRes, err := Run(plain, specs)
		if err != nil {
			t.Logf("straight run: %v", err)
			return false
		}
		fpPlain := fingerprint(plainRes)

		// Emitting checkpoints must not perturb the run.
		every := 40 + float64(seed%7)*35
		ckCfg, cks := collectCheckpoints(base, every)
		freshComponents(ckCfg, seed, polPick, selPick)
		ckRes, err := Run(*ckCfg, specs)
		if err != nil {
			t.Logf("checkpointed run: %v", err)
			return false
		}
		if fp := fingerprint(ckRes); fp != fpPlain {
			t.Logf("seed %d: checkpointing perturbed the run:\n%s", seed, firstDiff(fpPlain, fp))
			return false
		}
		if len(*cks) == 0 {
			return true // run shorter than one cadence interval
		}

		// Resume from every emitted checkpoint: first (most state still
		// ahead), middle, and last (most state behind) all must converge
		// to the identical final result.
		picks := map[int]bool{0: true, len(*cks) / 2: true, len(*cks) - 1: true}
		for idx := range picks {
			ck := (*cks)[idx]
			resumed := base
			freshComponents(&resumed, seed, polPick, selPick)
			resumed.ResumeFrom = ck.Data
			res, err := Run(resumed, specs)
			if err != nil {
				t.Logf("seed %d: resume from checkpoint %d (t=%v): %v", seed, idx, ck.Time, err)
				return false
			}
			if fp := fingerprint(res); fp != fpPlain {
				t.Logf("seed %d engine %s: resume from checkpoint %d (t=%v) diverged:\n%s",
					seed, resumed.Engine, idx, ck.Time, firstDiff(fpPlain, fp))
				return false
			}
			if res.ambiguousTies != plainRes.ambiguousTies {
				t.Logf("seed %d: ambiguous-tie flag diverged on resume", seed)
				return false
			}
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
}

// checkpointFixture runs one deterministic multi-site workload with
// checkpointing and returns the config, specs and emitted checkpoints.
func checkpointFixture(t *testing.T, parallel bool) (Config, []job.Spec, []Checkpoint) {
	t.Helper()
	r := rand.New(rand.NewPCG(404, 405))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Platform:          plat,
		Initial:           federatedInitial(sched.LatencyPenalizedUtil{}),
		Policy:            core.NewResSusWaitRand(99),
		CheckConservation: true,
	}
	if parallel {
		base.Engine = EngineParallel
	}
	ckCfg, cks := collectCheckpoints(base, 60)
	if _, err := Run(*ckCfg, specs); err != nil {
		t.Fatal(err)
	}
	if len(*cks) == 0 {
		t.Fatal("fixture produced no checkpoints; lower the cadence")
	}
	return base, specs, *cks
}

func TestSnapshotRejectsCorruptionAndMismatch(t *testing.T) {
	base, specs, cks := checkpointFixture(t, false)
	data := cks[len(cks)/2].Data

	resume := func(cfg Config, data []byte) error {
		cfg.ResumeFrom = data
		cfg.Initial = federatedInitial(sched.LatencyPenalizedUtil{})
		cfg.Policy = core.NewResSusWaitRand(99)
		_, err := Run(cfg, specs)
		return err
	}

	// The untouched snapshot must resume cleanly.
	if err := resume(base, data); err != nil {
		t.Fatalf("clean resume failed: %v", err)
	}

	// Corruption anywhere must be rejected, never silently absorbed.
	for _, off := range []int{0, 9, len(data) / 3, len(data) / 2, len(data) - 1} {
		bad := append([]byte(nil), data...)
		bad[off] ^= 0x41
		if err := resume(base, bad); err == nil {
			t.Errorf("resume accepted snapshot with byte %d corrupted", off)
		}
	}

	// Truncation must be rejected.
	if err := resume(base, data[:len(data)/2]); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("truncated snapshot: got %v, want ErrSnapshotMismatch", err)
	}

	// A different policy is a different run: config hash mismatch.
	diffPolicy := base
	diffPolicy.Policy = core.NewNoRes()
	diffPolicy.ResumeFrom = data
	diffPolicy.Initial = federatedInitial(sched.LatencyPenalizedUtil{})
	if _, err := Run(diffPolicy, specs); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("policy mismatch: got %v, want ErrSnapshotMismatch", err)
	}

	// A different workload is a different run too.
	if err := resume(base, data); err != nil {
		t.Fatalf("sanity re-resume failed: %v", err)
	}
	shorter := specs[:len(specs)-1]
	resumeShort := base
	resumeShort.ResumeFrom = data
	resumeShort.Initial = federatedInitial(sched.LatencyPenalizedUtil{})
	resumeShort.Policy = core.NewResSusWaitRand(99)
	if _, err := Run(resumeShort, shorter); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("workload mismatch: got %v, want ErrSnapshotMismatch", err)
	}

	// A serial snapshot must not resume under the parallel engine.
	wrongEngine := base
	wrongEngine.Engine = EngineParallel
	if err := resume(wrongEngine, data); !errors.Is(err, ErrSnapshotMismatch) {
		t.Errorf("engine-mode mismatch: got %v, want ErrSnapshotMismatch", err)
	}
}

func TestReplayBisectCleanInterval(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		base, specs, cks := checkpointFixture(t, parallel)
		if len(cks) < 2 {
			t.Fatalf("parallel=%v: need two checkpoints, got %d", parallel, len(cks))
		}
		from, to := cks[0], cks[len(cks)-1]
		cfg := base
		cfg.Initial = federatedInitial(sched.LatencyPenalizedUtil{})
		cfg.Policy = core.NewResSusWaitRand(99)
		rep, err := ReplayBisect(cfg, specs, from.Data, to.Data)
		if err != nil {
			t.Fatalf("parallel=%v: %v", parallel, err)
		}
		if !rep.Clean() {
			t.Fatalf("parallel=%v: healthy interval reported dirty: deterministic=%v matchesRecorded=%v: %s",
				parallel, rep.Deterministic, rep.MatchesRecorded, rep.FirstDivergence)
		}
		if rep.ReplayedEvents != to.Events-from.Events {
			t.Fatalf("parallel=%v: replayed %d events, interval spans %d",
				parallel, rep.ReplayedEvents, to.Events-from.Events)
		}
	}
}

func TestReplayBisectRejectsCrossConfigSnapshots(t *testing.T) {
	baseA, specsA, cksA := checkpointFixture(t, false)
	_, _, cksB := func() (Config, []job.Spec, []Checkpoint) {
		r := rand.New(rand.NewPCG(505, 506))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{
			Platform:          plat,
			Initial:           federatedInitial(sched.LocalityFirst{}),
			Policy:            core.NewNoRes(),
			CheckConservation: true,
		}
		ckCfg, cks := collectCheckpoints(base, 60)
		if _, err := Run(*ckCfg, specs); err != nil {
			t.Fatal(err)
		}
		return base, specs, *cks
	}()
	if len(cksB) == 0 {
		t.Skip("second fixture produced no checkpoints")
	}
	if _, err := ReplayBisect(baseA, specsA, cksA[0].Data, cksB[0].Data); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("cross-config bisect: got %v, want ErrSnapshotMismatch", err)
	}
}
