package sim

// Delta-encoded snapshots: a periodic checkpoint stream mostly re-states
// the previous snapshot — the platform rarely changes shape between
// marks and most job records are stable — so the checkpointer can emit
// the difference instead of the whole state. The encoding is a
// content-defined binary diff (rsync-style): the base snapshot is
// indexed in fixed-size blocks by a rolling checksum, the new snapshot
// is scanned with the same rolling window, and every verified block
// match extends forward as far as the bytes agree, producing a COPY op;
// bytes between matches become LITERAL ops. Content addressing makes
// the diff robust to insertions and deletions (a grown wait queue or
// fault log shifts everything after it; aligned diffs would degenerate
// to literals there).
//
// A delta is framed independently of the full-snapshot format: its own
// magic, version, op stream, and three integrity anchors — a CRC of the
// base it chains from (so applying against the wrong base fails before
// any bytes are produced), a CRC of the reconstruction (so a corrupt op
// stream cannot yield a plausible-but-wrong snapshot; the full format's
// own trailer CRC is checked again on resume), and a trailer CRC of the
// delta bytes themselves. Every failure is ErrSnapshotMismatch, the
// same contract as full-snapshot corruption.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
)

const (
	deltaMagic   = uint32(0x4e425344) // "NBSD"
	deltaVersion = uint32(1)
	// deltaBlock is the rolling-hash window: matches shorter than this
	// are not worth a COPY op (24 bytes) and stay literal.
	deltaBlock = 64
)

// IsDeltaSnapshot reports whether data is a delta-encoded snapshot
// (Checkpoint.Delta set) rather than a full one. It inspects only the
// magic; validation happens in ApplySnapshotDelta.
func IsDeltaSnapshot(data []byte) bool {
	return len(data) >= 8 && uint32(binary.LittleEndian.Uint64(data)) == deltaMagic
}

// DeltaMeta is the human-facing header of a delta snapshot.
type DeltaMeta struct {
	// BaseTime/BaseEvents locate the snapshot this delta chains from;
	// Time/Events locate the snapshot it reconstructs.
	BaseTime   float64
	BaseEvents int64
	Time       float64
	Events     int64
}

// ReadDeltaMeta decodes just the metadata of a delta snapshot,
// validating framing and integrity of the delta bytes (not the chain).
func ReadDeltaMeta(data []byte) (DeltaMeta, error) {
	d, err := openDelta(data)
	if err != nil {
		return DeltaMeta{}, err
	}
	m := DeltaMeta{}
	_ = d.U64() // baseCRC
	m.BaseTime = d.F64()
	m.BaseEvents = d.I64()
	m.Time = d.F64()
	m.Events = d.I64()
	if d.err != nil {
		return DeltaMeta{}, d.err
	}
	return m, nil
}

// openDelta verifies the trailer CRC, magic and version, returning a
// decoder positioned after the version word.
func openDelta(data []byte) (*snapDecoder, error) {
	if len(data) < 24 {
		return nil, fmt.Errorf("%w: truncated delta snapshot", ErrSnapshotMismatch)
	}
	body, sum := data[:len(data)-8], binary.LittleEndian.Uint64(data[len(data)-8:])
	if uint64(crc32.Checksum(body, castagnoli)) != sum {
		return nil, fmt.Errorf("%w: delta checksum mismatch (snapshot corrupted)", ErrSnapshotMismatch)
	}
	d := &snapDecoder{data: body}
	if magic := d.U64(); d.err == nil && uint32(magic) != deltaMagic {
		return nil, fmt.Errorf("%w: bad delta magic %#x", ErrSnapshotMismatch, magic)
	}
	if version := d.U64(); d.err == nil && uint32(version) != deltaVersion {
		return nil, fmt.Errorf("%w: delta format version %d, this build reads %d",
			ErrSnapshotMismatch, version, deltaVersion)
	}
	if d.err != nil {
		return nil, d.err
	}
	return d, nil
}

// rollHash is a byte-sum pair checksum (Adler-style) over a deltaBlock
// window, rollable in O(1): a is the byte sum, b the position-weighted
// sum.
type rollHash struct{ a, b uint32 }

func rollInit(p []byte) rollHash {
	var h rollHash
	for i, c := range p {
		h.a += uint32(c)
		h.b += uint32(len(p)-i) * uint32(c)
	}
	return h
}

// roll slides the window one byte: out leaves, in enters.
func (h *rollHash) roll(out, in byte) {
	h.a += uint32(in) - uint32(out)
	h.b += h.a - deltaBlock*uint32(out)
}

// sum combines the pair into one index key, Fletcher-style: a in the
// low half, b in the high. a is at most deltaBlock*255 so it fits the
// low 16 bits; b only enters once, so two windows collide on the key
// only when both components collide.
func (h rollHash) sum() uint32 { return h.a&0xffff | h.b<<16 }

// encodeSnapshotDelta diffs full against base and frames the result.
// It never fails: in the worst case (nothing matches) the op stream is
// one literal the size of full, and the checkpointer falls back to the
// full encoding by size comparison.
func encodeSnapshotDelta(base, full []byte, baseTime, newTime float64, baseEvents, newEvents int64) []byte {
	return encodeSnapshotDeltaInto(nil, nil, base, full, baseTime, newTime, baseEvents, newEvents)
}

// encodeSnapshotDeltaInto is encodeSnapshotDelta with caller-owned
// scratch: the op stream is appended to out (which may be nil, or a
// recycled buffer with its capacity intact), and idxp, when non-nil,
// names a block-index map to reuse across calls instead of allocating
// one per diff. The optimistic engine diffs once per rollback snapshot,
// so both pieces of scratch turn into steady-state reuse there.
func encodeSnapshotDeltaInto(out []byte, idxp *map[uint32]int32, base, full []byte, baseTime, newTime float64, baseEvents, newEvents int64) []byte {
	// Index base in non-overlapping blocks. Last partial block is not
	// indexed; the forward extension of earlier matches covers most of
	// the tail anyway.
	var idx map[uint32]int32
	if idxp != nil && *idxp != nil {
		idx = *idxp
		clear(idx)
	} else {
		idx = make(map[uint32]int32, len(base)/deltaBlock+1)
		if idxp != nil {
			*idxp = idx
		}
	}
	for off := 0; off+deltaBlock <= len(base); off += deltaBlock {
		// First writer wins: keeping the lowest offset makes the op
		// stream deterministic regardless of map iteration.
		h := rollInit(base[off : off+deltaBlock]).sum()
		if _, ok := idx[h]; !ok {
			idx[h] = int32(off)
		}
	}

	if cap(out) == 0 {
		out = make([]byte, 0, len(full)/8+256)
	}
	e := snapEncoder{buf: out[:0]}
	e.U64(uint64(deltaMagic))
	e.U64(uint64(deltaVersion))
	e.U64(uint64(crc32.Checksum(base, castagnoli)))
	e.F64(baseTime)
	e.I64(baseEvents)
	e.F64(newTime)
	e.I64(newEvents)
	e.U64(uint64(len(full)))
	// Op count is backpatched once the scan knows it.
	e.U64(0)
	opsAt := len(e.buf) - 8

	ops := uint64(0)
	litStart := 0 // start of the pending literal run
	flushLit := func(end int) {
		if end > litStart {
			e.Bool(false)
			e.Bytes(full[litStart:end])
			ops++
		}
	}
	if len(full) >= deltaBlock && len(idx) > 0 {
		i := 0
		h := rollInit(full[:deltaBlock])
		for {
			if off, ok := idx[h.sum()]; ok && bytes.Equal(base[off:int(off)+deltaBlock], full[i:i+deltaBlock]) {
				flushLit(i)
				// Extend the verified block forward while bytes agree.
				n := deltaBlock
				for int(off)+n < len(base) && i+n < len(full) && base[int(off)+n] == full[i+n] {
					n++
				}
				e.Bool(true)
				e.U64(uint64(off))
				e.U64(uint64(n))
				ops++
				i += n
				litStart = i
				if i+deltaBlock > len(full) {
					break
				}
				h = rollInit(full[i : i+deltaBlock])
				continue
			}
			if i+deltaBlock >= len(full) {
				break
			}
			h.roll(full[i], full[i+deltaBlock])
			i++
		}
	}
	flushLit(len(full))
	binary.LittleEndian.PutUint64(e.buf[opsAt:], ops)
	e.U64(uint64(crc32.Checksum(full, castagnoli)))
	e.U64(uint64(crc32.Checksum(e.buf, castagnoli)))
	return e.buf
}

// ApplySnapshotDelta reconstructs the full snapshot a delta encodes,
// given the exact snapshot bytes it was diffed against (the previous
// snapshot in the emission order — itself possibly reconstructed from
// an earlier delta). Any mismatch — corrupted delta, wrong base,
// out-of-range op — fails with ErrSnapshotMismatch and produces
// nothing.
func ApplySnapshotDelta(base, delta []byte) ([]byte, error) {
	d, err := openDelta(delta)
	if err != nil {
		return nil, err
	}
	baseCRC := d.U64()
	_ = d.F64() // baseTime
	_ = d.I64() // baseEvents
	_ = d.F64() // newTime
	_ = d.I64() // newEvents
	outLen := d.U64()
	ops := d.U64()
	if d.err != nil {
		return nil, d.err
	}
	if uint64(crc32.Checksum(base, castagnoli)) != baseCRC {
		return nil, fmt.Errorf("%w: delta does not chain from this base snapshot", ErrSnapshotMismatch)
	}
	if outLen > uint64(len(base))+uint64(len(delta))*8+(1<<20) {
		return nil, fmt.Errorf("%w: implausible delta output length %d", ErrSnapshotMismatch, outLen)
	}
	out := make([]byte, 0, outLen)
	for op := uint64(0); op < ops; op++ {
		if d.Bool() {
			off, n := d.U64(), d.U64()
			if d.err != nil {
				return nil, d.err
			}
			if off > uint64(len(base)) || n > uint64(len(base))-off {
				return nil, fmt.Errorf("%w: delta copy op outside base bounds", ErrSnapshotMismatch)
			}
			out = append(out, base[off:off+n]...)
		} else {
			out = append(out, d.Bytes()...)
		}
		if d.err != nil {
			return nil, d.err
		}
		if uint64(len(out)) > outLen {
			return nil, fmt.Errorf("%w: delta reconstruction overruns declared length", ErrSnapshotMismatch)
		}
	}
	wantCRC := d.U64()
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes in delta", ErrSnapshotMismatch, len(d.data)-d.off)
	}
	if uint64(len(out)) != outLen {
		return nil, fmt.Errorf("%w: delta reconstructed %d bytes, declared %d",
			ErrSnapshotMismatch, len(out), outLen)
	}
	if uint64(crc32.Checksum(out, castagnoli)) != wantCRC {
		return nil, fmt.Errorf("%w: delta reconstruction checksum mismatch", ErrSnapshotMismatch)
	}
	return out, nil
}
