package sim

// Delta-snapshot contract tests: the codec round-trips arbitrary edits,
// a keyframed checkpoint stream reconstructs and resumes bit-identically
// from full and delta members alike, and every corruption or mis-chain
// is rejected with ErrSnapshotMismatch.

import (
	"bytes"
	"errors"
	"math/rand/v2"
	"testing"

	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// TestDeltaCodecRoundTrip drives encodeSnapshotDelta/ApplySnapshotDelta
// over synthetic base/full pairs covering in-place mutation, insertion,
// deletion, growth and shrinkage — the shapes a snapshot stream
// actually produces.
func TestDeltaCodecRoundTrip(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	randBytes := func(n int) []byte {
		b := make([]byte, n)
		for i := range b {
			b[i] = byte(r.UintN(256))
		}
		return b
	}
	base := randBytes(8192)
	cases := map[string]func() []byte{
		"identical": func() []byte { return append([]byte(nil), base...) },
		"mutated": func() []byte {
			f := append([]byte(nil), base...)
			for i := 0; i < 20; i++ {
				f[r.IntN(len(f))] ^= 0x5a
			}
			return f
		},
		"inserted": func() []byte {
			at := r.IntN(len(base))
			return append(append(append([]byte(nil), base[:at]...), randBytes(300)...), base[at:]...)
		},
		"deleted": func() []byte {
			at := r.IntN(len(base) - 500)
			return append(append([]byte(nil), base[:at]...), base[at+500:]...)
		},
		"appended":  func() []byte { return append(append([]byte(nil), base...), randBytes(700)...) },
		"unrelated": func() []byte { return randBytes(4096) },
		"tiny":      func() []byte { return randBytes(16) },
		"empty":     func() []byte { return nil },
	}
	for name, gen := range cases {
		full := gen()
		delta := encodeSnapshotDelta(base, full, 1, 2, 10, 20)
		got, err := ApplySnapshotDelta(base, delta)
		if err != nil {
			t.Fatalf("%s: apply: %v", name, err)
		}
		if !bytes.Equal(got, full) {
			t.Fatalf("%s: reconstruction differs (%d vs %d bytes)", name, len(got), len(full))
		}
		meta, err := ReadDeltaMeta(delta)
		if err != nil {
			t.Fatalf("%s: meta: %v", name, err)
		}
		if meta.BaseTime != 1 || meta.Time != 2 || meta.BaseEvents != 10 || meta.Events != 20 {
			t.Fatalf("%s: meta round-trip: %+v", name, meta)
		}
		if !IsDeltaSnapshot(delta) || IsDeltaSnapshot(full) && len(full) > 0 {
			t.Fatalf("%s: magic classification wrong", name)
		}
	}
	// Near-identical inputs must compress hard: this is the payoff the
	// checkpointer's keyframe mode banks on.
	full := append([]byte(nil), base...)
	full[100] ^= 1
	if delta := encodeSnapshotDelta(base, full, 0, 0, 0, 0); len(delta) > len(full)/4 {
		t.Fatalf("single-byte edit delta is %d bytes of %d full", len(delta), len(full))
	}
}

// deltaFixture runs one deterministic multi-site workload with a
// keyframed checkpoint stream and returns the base config, specs, the
// emitted checkpoints, and the straight-run fingerprint.
func deltaFixture(t *testing.T, parallel bool) (Config, []job.Spec, []Checkpoint, string) {
	t.Helper()
	r := rand.New(rand.NewPCG(404, 405))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{
		Platform:          plat,
		Initial:           federatedInitial(sched.LatencyPenalizedUtil{}),
		Policy:            core.NewResSusWaitRand(99),
		CheckConservation: true,
	}
	if parallel {
		base.Engine = EngineParallel
	}
	plain := base
	plain.Policy = core.NewResSusWaitRand(99)
	plainRes, err := Run(plain, specs)
	if err != nil {
		t.Fatal(err)
	}
	ckCfg, cks := collectCheckpoints(base, 60)
	ckCfg.CheckpointKeyframe = 4
	ckCfg.Policy = core.NewResSusWaitRand(99)
	if _, err := Run(*ckCfg, specs); err != nil {
		t.Fatal(err)
	}
	if len(*cks) < 6 {
		t.Fatalf("fixture emitted only %d checkpoints; need a keyframe cycle plus deltas", len(*cks))
	}
	return base, specs, *cks, fingerprint(plainRes)
}

// reconstructChain resolves every checkpoint of a keyframed stream to
// full snapshot bytes, mirroring what the experiments runner does with
// .ckpt/.dckpt files.
func reconstructChain(t *testing.T, cks []Checkpoint) [][]byte {
	t.Helper()
	fulls := make([][]byte, len(cks))
	for i, ck := range cks {
		if !ck.Delta {
			if IsDeltaSnapshot(ck.Data) {
				t.Fatalf("checkpoint %d: Delta flag false but bytes are a delta", i)
			}
			fulls[i] = ck.Data
			continue
		}
		if i == 0 {
			t.Fatal("first emitted checkpoint is a delta; every chain must start at a keyframe")
		}
		full, err := ApplySnapshotDelta(fulls[i-1], ck.Data)
		if err != nil {
			t.Fatalf("checkpoint %d: apply delta: %v", i, err)
		}
		fulls[i] = full
	}
	return fulls
}

// TestDeltaSnapshotChain checks the keyframed stream end to end on both
// engines: the emission pattern honors the keyframe cadence, deltas
// shrink the stream, and resuming from a keyframe, from a
// mid-chain delta, from the delta straight after a keyframe boundary,
// and from the last checkpoint all reproduce the straight run
// bit-identically.
func TestDeltaSnapshotChain(t *testing.T) {
	for _, parallel := range []bool{false, true} {
		name := "serial"
		if parallel {
			name = "parallel"
		}
		t.Run(name, func(t *testing.T) {
			base, specs, cks, fpPlain := deltaFixture(t, parallel)
			deltas := 0
			for i, ck := range cks {
				wantFull := i%4 == 0
				if wantFull && ck.Delta {
					t.Fatalf("checkpoint %d: keyframe slot emitted a delta", i)
				}
				if ck.Delta {
					deltas++
				}
			}
			if deltas == 0 {
				t.Fatal("keyframed stream emitted no deltas (every delta fell back to full?)")
			}
			fulls := reconstructChain(t, cks)

			// A raw delta must be rejected as ResumeFrom before any state
			// is touched.
			for i, ck := range cks {
				if !ck.Delta {
					continue
				}
				bad := base
				bad.ResumeFrom = ck.Data
				if _, err := Run(bad, specs); !errors.Is(err, ErrSnapshotMismatch) {
					t.Fatalf("checkpoint %d: raw delta resume: want ErrSnapshotMismatch, got %v", i, err)
				}
				break
			}

			picks := map[string]int{
				"keyframe":       4,            // a keyframe boundary
				"after-keyframe": 5,            // first delta of a cycle
				"mid-chain":      6,            // delta chaining through another delta
				"last":           len(cks) - 1, // whatever the stream ends on
			}
			for what, idx := range picks {
				resumed := base
				resumed.Policy = core.NewResSusWaitRand(99)
				resumed.ResumeFrom = fulls[idx]
				res, err := Run(resumed, specs)
				if err != nil {
					t.Fatalf("resume from %s (checkpoint %d, t=%v): %v", what, idx, cks[idx].Time, err)
				}
				if fp := fingerprint(res); fp != fpPlain {
					t.Fatalf("resume from %s (checkpoint %d, t=%v) diverged:\n%s",
						what, idx, cks[idx].Time, firstDiff(fpPlain, fp))
				}
			}
		})
	}
}

// TestDeltaCorruptionRejected flips bytes in a real delta and chains it
// against the wrong base: every failure mode must be
// ErrSnapshotMismatch and never a wrong reconstruction.
func TestDeltaCorruptionRejected(t *testing.T) {
	_, _, cks, _ := deltaFixture(t, false)
	di := -1
	for i, ck := range cks {
		if ck.Delta {
			di = i
			break
		}
	}
	if di <= 0 {
		t.Fatal("fixture emitted no delta")
	}
	fulls := reconstructChain(t, cks)
	base, delta := fulls[di-1], cks[di].Data

	for _, at := range []int{0, 8, len(delta) / 2, len(delta) - 9, len(delta) - 1} {
		bad := append([]byte(nil), delta...)
		bad[at] ^= 0x40
		if _, err := ApplySnapshotDelta(base, bad); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("flip at %d: want ErrSnapshotMismatch, got %v", at, err)
		}
	}
	if _, err := ApplySnapshotDelta(delta, delta); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("delta applied to itself as base: want ErrSnapshotMismatch, got %v", err)
	}
	if di+1 < len(cks) && cks[di+1].Delta {
		// Skipping a link: the next delta must refuse the earlier base.
		if _, err := ApplySnapshotDelta(base, cks[di+1].Data); !errors.Is(err, ErrSnapshotMismatch) {
			t.Fatalf("delta applied across a gap: want ErrSnapshotMismatch, got %v", err)
		}
	}
	if _, err := ApplySnapshotDelta(nil, delta[:16]); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("truncated delta: want ErrSnapshotMismatch, got %v", err)
	}
	if _, err := ApplySnapshotDelta(nil, fulls[0]); !errors.Is(err, ErrSnapshotMismatch) {
		t.Fatalf("full snapshot as delta: want ErrSnapshotMismatch, got %v", err)
	}
}

// TestDeltaRollingHashKeyRegression pins the rollHash.sum key layout.
// The original formula (a ^ b<<16 ^ b>>16) folded b's high bits into
// the same low half as a, so two windows whose byte sums differed
// could still collide in the block index — and with first-writer-wins
// indexing the second block was silently never indexed, turning its
// every occurrence in the new snapshot into literal bytes. The fix
// keeps a and b in disjoint halves (a is at most deltaBlock*255, well
// under 16 bits). This test hand-builds such a pair and checks both
// the key property and the observable consequence: the match rate on
// a snapshot that merely reorders the colliding content.
func TestDeltaRollingHashKeyRegression(t *testing.T) {
	// blockA: uniform 128s. a = 64*128 = 8192, b = 128*Σ(1..64) =
	// 266240 = 4<<16 | 0x1000.
	blockA := bytes.Repeat([]byte{128}, deltaBlock)
	// blockB: uniform 128s reshaped by weight-preserving edits so that
	// a = 8193 and b = 331776 = 5<<16 | 0x1000 — same low half of b,
	// b>>16 bumped by one, a bumped by one to cancel it in the old
	// key's xor. Weights are 64-i for position i.
	blockB := bytes.Repeat([]byte{128}, deltaBlock)
	for i := 0; i < 9; i++ {
		blockB[i] += 127    // weights 64..56: +127 each
		blockB[63-i] -= 127 // weights 1..9:   -127 each
	}
	blockB[9] += 58  // weight 55
	blockB[54] -= 58 // weight 10
	blockB[14] += 2  // weight 50
	blockB[44] -= 2  // weight 20
	blockB[63] += 1  // weight 1: the +1 on a

	hA, hB := rollInit(blockA), rollInit(blockB)
	if hA.a != 8192 || hA.b != 266240 || hB.a != 8193 || hB.b != 331776 {
		t.Fatalf("fixture drifted: got (%d,%d) and (%d,%d)", hA.a, hA.b, hB.a, hB.b)
	}
	oldSum := func(h rollHash) uint32 { return h.a ^ h.b<<16 ^ h.b>>16 }
	if oldSum(hA) != oldSum(hB) {
		t.Fatalf("fixture no longer collides under the historical key: %#x vs %#x",
			oldSum(hA), oldSum(hB))
	}
	if hA.sum() == hB.sum() {
		t.Fatalf("distinct windows share an index key: %#x (a differs: %d vs %d)",
			hA.sum(), hA.a, hB.a)
	}

	// Observable half: a base of A-runs then B-runs, and a new snapshot
	// with the halves swapped. Every byte of full exists verbatim in
	// base, so the delta should be a couple of long COPY ops. Under the
	// colliding key, blockB never made it into the index and its whole
	// half degenerated to literals — thousands of bytes instead of
	// hundreds.
	base := append(bytes.Repeat(blockA, 32), bytes.Repeat(blockB, 32)...)
	full := append(bytes.Repeat(blockB, 32), bytes.Repeat(blockA, 32)...)
	delta := encodeSnapshotDelta(base, full, 1, 2, 10, 20)
	got, err := ApplySnapshotDelta(base, delta)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, full) {
		t.Fatal("reordered snapshot did not reconstruct")
	}
	if len(delta) > len(full)/8 {
		t.Fatalf("reordered content matched poorly: delta %d bytes of %d full (index collision?)",
			len(delta), len(full))
	}
}
