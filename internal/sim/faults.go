package sim

import (
	"fmt"
	"math"

	"netbatch/internal/stats"
)

// faultSys is the fault & maintenance subsystem: deterministic machine
// crashes (exponential inter-crash and repair times per site) and
// scheduled maintenance windows (fixed cadence, rotating machine
// blocks). It is the first mechanism registered purely through the
// kernel's open event-kind registry — neither the kernel nor the
// engines know it exists.
//
// All four kinds are capacity handoffs: their handlers touch only the
// owning site's machines, pools and resident jobs — plus the site's
// private fault stream and downtime log — except that redistributing
// capacity (a repair, a window end, or the requeue cascade of a kill)
// scans wait queues, whose revived slots can reach jobs resident at
// other sites. The alias-risk promotion that already protects finishes
// and arrivals therefore covers faults with no new machinery, and the
// serial ≡ parallel bit-identity contract extends to fault runs.
//
// Determinism: each site's stream is forked from FaultConfig.Seed with
// stats.SplitKey, so it is independent of site count, engine, and
// every other site's draws; all fault events of a site execute in that
// site's local time order in both engines. With the zero FaultConfig
// the subsystem is not registered at all — no events, no RNG
// construction, outputs byte-identical to pre-fault builds.

// Victim-job policies for machines taken down by maintenance windows.
// Crashes are unplanned and always kill-and-requeue.
const (
	// VictimRequeue kills every job running or suspended on the
	// machine and requeues it through the existing wait-queue path of
	// its pool (progress destroyed, like any NetBatch restart).
	VictimRequeue = "requeue"
	// VictimDrain lets running jobs finish on the machine while it
	// accepts no new placements, preemptions or resumes; suspended
	// jobs stay parked until the window ends, unless a pending
	// rescheduling sweep (§3.2) moves one to another pool meanwhile —
	// the dynamic-rescheduling mechanism keeps working during windows.
	VictimDrain = "drain"
)

// FaultConfig parameterizes the fault & maintenance subsystem. The
// zero value disables it entirely: no fault events are scheduled, no
// RNG state is created, and every output is byte-identical to a run
// without the subsystem.
type FaultConfig struct {
	// MTBF is the mean time between machine crashes per site, in
	// minutes (exponential gaps). 0 disables crashes.
	MTBF float64
	// MTTR is the mean repair time in minutes (exponential). Required
	// when MTBF > 0.
	MTTR float64
	// MaintPeriod is the cadence of scheduled per-site maintenance
	// windows in minutes. 0 disables windows. First windows are
	// staggered across sites.
	MaintPeriod float64
	// MaintDuration is each window's length in minutes. Must be
	// positive and below MaintPeriod when windows are enabled.
	MaintDuration float64
	// MaintFraction is the fraction of a site's machines taken down
	// per window (a rotating contiguous block, at least one machine).
	// Defaults to 0.25 when windows are enabled.
	MaintFraction float64
	// Victim selects the maintenance victim-job policy: VictimRequeue
	// (default) or VictimDrain.
	Victim string
	// Seed drives the per-site fault streams (crash gaps, victim
	// machines, repair durations), forked per site with stats.SplitKey.
	Seed uint64
}

// enabled reports whether any fault mechanism is configured.
func (f *FaultConfig) enabled() bool { return f.MTBF > 0 || f.MaintPeriod > 0 }

// validate normalizes defaults and reports configuration errors.
// Called from Config.withDefaults; a disabled config is left untouched.
func (f *FaultConfig) validate() error {
	if f.MTBF < 0 || f.MTTR < 0 || f.MaintPeriod < 0 || f.MaintDuration < 0 {
		return fmt.Errorf("sim: negative fault parameter %+v", *f)
	}
	if !f.enabled() {
		return nil
	}
	if f.MTBF > 0 && f.MTTR <= 0 {
		return fmt.Errorf("sim: crashes need a positive MTTR (got %v)", f.MTTR)
	}
	if f.MaintPeriod > 0 {
		if f.MaintDuration <= 0 || f.MaintDuration >= f.MaintPeriod {
			return fmt.Errorf("sim: maintenance duration %v outside (0, period %v)",
				f.MaintDuration, f.MaintPeriod)
		}
		if f.MaintFraction < 0 || f.MaintFraction > 1 {
			return fmt.Errorf("sim: maintenance fraction %v outside [0,1]", f.MaintFraction)
		}
		if f.MaintFraction == 0 {
			f.MaintFraction = 0.25
		}
	}
	switch f.Victim {
	case "":
		f.Victim = VictimRequeue
	case VictimRequeue, VictimDrain:
	default:
		return fmt.Errorf("sim: unknown victim policy %q (want %q or %q)",
			f.Victim, VictimRequeue, VictimDrain)
	}
	return nil
}

// Downtime span categories.
const (
	spanCrash = int8(iota)
	spanMaint
)

// downSpan is one machine's downtime interval in a site's fault log;
// to stays +inf while the machine is down. Result counters derive from
// the logs clamped to the makespan, so both engines compute identical
// values even though the parallel engine's final round may process
// repair events the serial loop never pops.
type downSpan struct {
	from, to float64
	cores    int
	kind     int8
}

// siteFaults is one site's fault state, owned by the site's shard.
type siteFaults struct {
	rng *stats.RNG
	// spans logs every downtime interval of the site's machines.
	spans []downSpan
	// windowStarts logs maintenance window start times.
	windowStarts []float64
	// workLost accumulates execution wall-clock destroyed by the
	// site's kills. Kept per site — not per shard — because float
	// addition does not commute: both engines add a site's losses in
	// the same local order and finalizeFaults sums sites in index
	// order, keeping the total bit-identical.
	workLost float64
	// maintNext is the next window start; maintIdx rotates the window's
	// machine block through the site.
	maintNext float64
	maintIdx  int
}

type faultSys struct {
	sh *shard

	// Allocated event kinds, all capacity handoffs.
	crash, repair, maintStart, maintEnd kind

	// takenPool recycles the machine-block slices carried by maintEnd
	// events: the kernel's payload-release hook returns each slice here
	// after its event dispatches (or is dropped), and handleMaintStart
	// draws from the pool before allocating. Purely an allocation cache;
	// never saved.
	takenPool [][]int
}

func (s *faultSys) register(k *kernel) {
	s.crash = k.registerHandoffKind("fault.crash", func(a, _ int64, _ any) error { return s.handleCrash(int(a)) })
	s.repair = k.registerHandoffKind("fault.repair", func(a, _ int64, _ any) error { return s.handleRepair(int(a)) })
	s.maintStart = k.registerHandoffKind("fault.maintStart", func(a, _ int64, _ any) error { return s.handleMaintStart(int(a)) })
	s.maintEnd = k.registerHandoffKind("fault.maintEnd", func(_, _ int64, ref any) error { return s.handleMaintEnd(ref.([]int)) })
	// maintEnd carries the site in a and the taken-machine block as a
	// boxed slice; the encoding is byte-identical to the historical
	// struct codec.
	k.setPayloadCodec(s.maintEnd,
		func(e *snapEncoder, a, _ int64, ref any) {
			e.I64(a)
			e.Ints(ref.([]int))
		},
		func(d *snapDecoder) (int64, int64, any) { return d.I64(), 0, d.IntsN(-1) },
		func(a, _ int64, _ any) int64 { return a })
	k.setPayloadRelease(s.maintEnd, func(ref any) {
		s.takenPool = append(s.takenPool, ref.([]int)[:0])
	})
	k.registerState("faults", s.save, s.load)
}

// save dumps each in-scope site's fault-process state: the position of
// its private RNG stream (so resumed crash gaps, victim draws and
// repair times continue the exact sequence), the downtime span log and
// window-start log the Result counters derive from, the accumulated
// work-lost float, and the maintenance rotation.
func (s *faultSys) save(e *snapEncoder) {
	sh := s.sh
	for _, site := range sh.sites {
		f := &sh.w.faults[site]
		st := f.rng.ExportState()
		e.U64(st.Seed)
		e.Bytes(st.PCG)
		e.Int(len(f.spans))
		for _, sp := range f.spans {
			e.F64(sp.from)
			e.F64(sp.to)
			e.Int(sp.cores)
			e.Int(int(sp.kind))
		}
		e.F64s(f.windowStarts)
		e.F64(f.workLost)
		e.F64(f.maintNext)
		e.Int(f.maintIdx)
	}
}

func (s *faultSys) load(d *snapDecoder) error {
	sh := s.sh
	for _, site := range sh.sites {
		f := &sh.w.faults[site]
		st := stats.RNGState{Seed: d.U64(), PCG: d.Bytes()}
		if d.err != nil {
			return d.err
		}
		if err := f.rng.ImportState(st); err != nil {
			return fmt.Errorf("site %d fault stream: %w", site, err)
		}
		n := d.Int()
		if d.err != nil || n < 0 || n > 1<<30 {
			d.fail()
			return d.err
		}
		f.spans = make([]downSpan, n)
		for i := range f.spans {
			f.spans[i] = downSpan{
				from: d.F64(), to: d.F64(), cores: d.Int(), kind: int8(d.Int()),
			}
		}
		f.windowStarts = d.F64sN(-1)
		f.workLost = d.F64()
		f.maintNext = d.F64()
		f.maintIdx = d.Int()
	}
	return d.err
}

// seed schedules each in-scope site's first crash and first
// maintenance window. Both chains start strictly after the trace start
// and re-arm themselves from their handlers, like the submission chain.
func (s *faultSys) seed() {
	sh := s.sh
	cfg := &sh.w.cfg.Faults
	for _, site := range sh.sites {
		f := &sh.w.faults[site]
		if cfg.MTBF > 0 {
			sh.k.schedule(sh.w.start+f.rng.Exp(cfg.MTBF), s.crash, int64(site), 0)
		}
		if cfg.MaintPeriod > 0 {
			sh.k.schedule(f.maintNext, s.maintStart, int64(site), 0)
		}
	}
}

// handleCrash fails one machine at the site: a uniformly drawn victim
// among the machines currently up loses all its jobs (killed and
// requeued through the pool's wait-queue path) and stays down for an
// exponential repair time. The next crash is chained first so the
// site's stream order is (gap, victim, repair) per crash.
func (s *faultSys) handleCrash(site int) error {
	sh := s.sh
	cfg := &sh.w.cfg.Faults
	f := &sh.w.faults[site]
	sh.k.schedule(sh.k.now+f.rng.Exp(cfg.MTBF), s.crash, int64(site), 0)

	ups := make([]int, 0, len(sh.w.machBySite[site]))
	for _, mid := range sh.w.machBySite[site] {
		if !sh.w.machines[mid].down {
			ups = append(ups, mid)
		}
	}
	if len(ups) == 0 {
		return nil // whole site already down; the crash is absorbed
	}
	mid := ups[f.rng.IntN(len(ups))]
	s.takeDown(site, mid, spanCrash)
	if err := sh.killMachineJobs(mid); err != nil {
		return err
	}
	sh.k.schedule(sh.k.now+f.rng.Exp(cfg.MTTR), s.repair, int64(mid), 0)
	return nil
}

// handleRepair brings a crashed machine back and redistributes its
// capacity through the standard handoff path.
func (s *faultSys) handleRepair(mid int) error {
	s.bringUp(mid)
	return s.sh.onFree(mid)
}

// handleMaintStart opens a maintenance window at the site: a rotating
// contiguous block of MaintFraction of its machines goes down for
// MaintDuration minutes, with victims handled per the configured
// policy. Machines already down (crashed) are skipped — their repair
// owns their recovery. The next window is chained immediately.
func (s *faultSys) handleMaintStart(site int) error {
	sh := s.sh
	cfg := &sh.w.cfg.Faults
	f := &sh.w.faults[site]
	f.windowStarts = append(f.windowStarts, sh.k.now)
	sh.k.schedule(sh.k.now+cfg.MaintPeriod, s.maintStart, int64(site), 0)

	machines := sh.w.machBySite[site]
	count := int(math.Round(cfg.MaintFraction * float64(len(machines))))
	if count < 1 {
		count = 1
	}
	if count > len(machines) {
		count = len(machines)
	}
	start := f.maintIdx % len(machines)
	f.maintIdx += count
	// The window is atomic: every machine in the block goes down before
	// any victim is handled, so a kill-and-requeue cannot land a victim
	// on a machine the same window is about to take away.
	var taken []int
	if n := len(s.takenPool); n > 0 {
		taken, s.takenPool = s.takenPool[n-1], s.takenPool[:n-1]
	}
	for i := 0; i < count; i++ {
		mid := machines[(start+i)%len(machines)]
		if sh.w.machines[mid].down {
			continue
		}
		s.takeDown(site, mid, spanMaint)
		taken = append(taken, mid)
	}
	if cfg.Victim == VictimRequeue {
		for _, mid := range taken {
			if err := sh.killMachineJobs(mid); err != nil {
				return err
			}
		}
	}
	if len(taken) > 0 {
		sh.k.scheduleRef(sh.k.now+cfg.MaintDuration, s.maintEnd, int64(site), 0, taken)
	}
	return nil
}

// handleMaintEnd closes a window: every machine it took down comes
// back and hands its capacity off (resuming drained suspended jobs
// first, then serving the wait queue, like any freed capacity).
func (s *faultSys) handleMaintEnd(taken []int) error {
	for _, mid := range taken {
		s.bringUp(mid)
		if err := s.sh.onFree(mid); err != nil {
			return err
		}
	}
	return nil
}

// takeDown marks the machine down and opens its downtime span.
func (s *faultSys) takeDown(site, mid int, spanKind int8) {
	f := &s.sh.w.faults[site]
	mach := &s.sh.w.machines[mid]
	mach.down = true
	mach.spanIdx = len(f.spans)
	f.spans = append(f.spans, downSpan{from: s.sh.k.now, to: inf, cores: mach.m.Cores, kind: spanKind})
}

// bringUp clears the down mark and closes the machine's span.
func (s *faultSys) bringUp(mid int) {
	mach := &s.sh.w.machines[mid]
	site := s.sh.w.siteOf[mach.m.Pool]
	s.sh.w.faults[site].spans[mach.spanIdx].to = s.sh.k.now
	mach.down = false
}

// killMachineJobs kills every job running or suspended on mid —
// running jobs in start order, then suspended jobs in suspension
// order — and requeues each through the existing wait-queue path of
// its current pool. The machine must already be marked down, so the
// requeue cascade can never place a job back onto it.
func (sh *shard) killMachineJobs(mid int) error {
	mach := &sh.w.machines[mid]
	p := sh.w.pools[mach.m.Pool]
	site := sh.siteOfPool(mach.m.Pool)
	for len(mach.running) > 0 {
		rt := mach.running[0]
		mach.running = mach.running[1:]
		sh.noteDetach(rt)
		sh.k.cancel(rt.finish)
		mach.freeCores += rt.spec.Cores
		mach.freeMemMB += rt.spec.MemMB
		p.busyCores -= rt.spec.Cores
		sh.addBusy(mach.m.Pool, -rt.spec.Cores)
		if err := sh.killAndRequeue(rt, mach.m.Pool, site); err != nil {
			return err
		}
	}
	for len(mach.suspended) > 0 {
		rt := mach.suspended[0]
		mach.suspended = mach.suspended[1:]
		sh.noteDetach(rt)
		p.suspendedCnt--
		sh.scopeSuspended--
		if sh.w.cfg.SuspendHoldsMemory {
			mach.freeMemMB += rt.spec.MemMB
		}
		if err := sh.killAndRequeue(rt, mach.m.Pool, site); err != nil {
			return err
		}
	}
	return nil
}

// killAndRequeue destroys rt's progress and lands it back at pool as a
// fresh arrival (start elsewhere, preempt, or queue — §2.1 rules).
func (sh *shard) killAndRequeue(rt *jobRT, pool, site int) error {
	before := rt.j.Acct().WastedExec
	if err := rt.j.Kill(sh.k.now); err != nil {
		return err
	}
	sh.w.faults[site].workLost += rt.j.Acct().WastedExec - before
	sh.res.Kills++
	sh.res.Requeues++
	return sh.arrival(rt.idx, pool)
}

// finalizeFaults derives the engine-independent fault counters from
// the per-site downtime logs, clamped to the makespan: the serial loop
// dies at the final completion leaving open spans behind, while the
// parallel engine's last round may process repairs past it — clamping
// makes both read identically. Crash/window events at or after the
// makespan never count (the serial loop never popped them).
func finalizeFaults(w *world, res *Result) {
	if w.faults == nil {
		return
	}
	for s := range w.faults {
		f := &w.faults[s]
		res.WorkLost += f.workLost
		for _, span := range f.spans {
			if span.from >= res.Makespan {
				continue
			}
			to := math.Min(span.to, res.Makespan)
			res.DownCoreMinutes += float64(span.cores) * (to - span.from)
			if span.kind == spanCrash {
				res.Crashes++
			}
		}
		for _, t := range f.windowStarts {
			if t < res.Makespan {
				res.MaintWindows++
			}
		}
	}
}
