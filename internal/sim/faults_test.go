package sim

// Unit and property tests for the fault & maintenance subsystem:
// deterministic maintenance-window semantics under both victim
// policies, crash kill/requeue mechanics, zero-config byte identity,
// and the serial ≡ parallel bit-identity contract extended to runs
// with faults enabled.

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netbatch/internal/job"
)

// maintOnly returns a FaultConfig with deterministic maintenance
// windows and no crashes. On a single-site platform the first window
// opens at start + period/2.
func maintOnly(period, duration, fraction float64, victim string) FaultConfig {
	return FaultConfig{
		MaintPeriod:   period,
		MaintDuration: duration,
		MaintFraction: fraction,
		Victim:        victim,
	}
}

func TestMaintenanceDrainLetsRunningJobsFinish(t *testing.T) {
	p := miniPlatform(t, 2) // one pool, two 1-core machines
	// Windows every 100 min, 40 long, all machines: down over [50,90],
	// [150,190], ... Job 1 runs straight through under drain; job 2
	// arrives mid-window and must wait for the window end.
	cfg := baseConfig(p)
	cfg.Faults = maintOnly(100, 40, 1.0, VictimDrain)
	specs := []job.Spec{
		lowJob(1, 0, 200, 0),
		lowJob(2, 60, 10, 0),
	}
	res := run(t, cfg, specs)
	if got := res.Jobs[0].Completed; got != 200 {
		t.Errorf("drained job completed at %v, want 200", got)
	}
	if got := res.Jobs[1].Completed; got != 100 {
		t.Errorf("window-blocked job completed at %v, want 100 (start at window end 90)", got)
	}
	if res.Kills != 0 || res.Requeues != 0 || res.WorkLost != 0 {
		t.Errorf("drain killed jobs: kills=%d requeues=%d workLost=%v",
			res.Kills, res.Requeues, res.WorkLost)
	}
	if res.MaintWindows != 2 {
		t.Errorf("MaintWindows = %d, want 2 (starts 50 and 150, makespan 200)", res.MaintWindows)
	}
	// Two machines down for two full 40-minute windows.
	if res.DownCoreMinutes != 160 {
		t.Errorf("DownCoreMinutes = %v, want 160", res.DownCoreMinutes)
	}
	if res.Crashes != 0 {
		t.Errorf("Crashes = %d, want 0", res.Crashes)
	}
}

func TestMaintenanceRequeueKillsAndRestarts(t *testing.T) {
	p := miniPlatform(t, 2)
	cfg := baseConfig(p)
	cfg.Faults = maintOnly(100, 40, 1.0, VictimRequeue)
	// Job 1 anchors the window grid at t=0 (windows over [50,90],
	// [150,190], ...) and finishes before the first window. Job 2 starts
	// at 40, is killed by the window at 50 (10 minutes of progress
	// lost), requeues against a fully-down pool, restarts at the window
	// end 90 and finishes at 120.
	specs := []job.Spec{
		lowJob(1, 0, 5, 0),
		lowJob(2, 40, 30, 0),
	}
	res := run(t, cfg, specs)
	j := res.Jobs[1]
	if j.Completed != 120 {
		t.Fatalf("killed job completed at %v, want 120", j.Completed)
	}
	a := j.Acct()
	if a.Kills != 1 || a.WastedExec != 10 || a.Wait != 40 || a.Exec != 40 {
		t.Errorf("accounting = %+v, want kills=1 wastedExec=10 wait=40 exec=40", a)
	}
	if res.Kills != 1 || res.Requeues != 1 || res.WorkLost != 10 {
		t.Errorf("counters: kills=%d requeues=%d workLost=%v, want 1/1/10",
			res.Kills, res.Requeues, res.WorkLost)
	}
}

func TestCrashKillsRequeuesAndRepairs(t *testing.T) {
	// A single 1-core machine with an aggressive crash rate: the
	// 100-minute job is all but guaranteed to be killed at least once,
	// requeued on the same (only) machine after each repair, and must
	// still complete with conservation intact.
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.Faults = FaultConfig{MTBF: 40, MTTR: 10, Seed: 7}
	cfg.MaxTime = 100000
	res := run(t, cfg, []job.Spec{lowJob(1, 0, 100, 0)})
	if res.Crashes == 0 {
		t.Fatal("expected at least one crash before the makespan")
	}
	if res.Kills == 0 || res.Requeues != res.Kills {
		t.Errorf("kills=%d requeues=%d, want kills>0 and equal", res.Kills, res.Requeues)
	}
	a := res.Jobs[0].Acct()
	if a.Kills != int(res.Kills) {
		t.Errorf("job kills %d != result kills %d", a.Kills, res.Kills)
	}
	if res.WorkLost <= 0 || res.DownCoreMinutes <= 0 {
		t.Errorf("workLost=%v downCoreMinutes=%v, want both positive", res.WorkLost, res.DownCoreMinutes)
	}
}

func TestFaultsZeroConfigByteIdentical(t *testing.T) {
	// A zero FaultConfig must not change anything: no subsystem
	// registration, no RNG, identical fingerprints.
	r := rand.New(rand.NewPCG(11, 13))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	mk := func(f FaultConfig) Config {
		return Config{
			Platform:          plat,
			Initial:           federatedInitial(siteSelectorForIndex(1)),
			Policy:            multiSitePolicyForIndex(1, 3),
			CheckConservation: true,
			Faults:            f,
		}
	}
	base, err := Run(mk(FaultConfig{}), specs)
	if err != nil {
		t.Fatal(err)
	}
	// Seed and victim alone do not enable the subsystem.
	inert, err := Run(mk(FaultConfig{Seed: 99, Victim: VictimDrain}), specs)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(base) != fingerprint(inert) {
		t.Fatal("inert fault config changed the run")
	}
	if base.Crashes != 0 || base.Kills != 0 || base.DownCoreMinutes != 0 {
		t.Fatalf("fault counters nonzero on fault-free run: %+v", base)
	}
}

func TestFaultConfigValidation(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{lowJob(1, 0, 10, 0)}
	bad := []FaultConfig{
		{MTBF: 100},                            // crashes need MTTR
		{MTBF: -1, MTTR: 5},                    // negative
		{MaintPeriod: 100},                     // windows need duration
		{MaintPeriod: 100, MaintDuration: 100}, // duration >= period
		{MaintPeriod: 100, MaintDuration: 10, Victim: "x"}, // unknown victim
		{MaintPeriod: 100, MaintDuration: 10, MaintFraction: 1.5},
	}
	for i, f := range bad {
		cfg := baseConfig(p)
		cfg.Faults = f
		if _, err := Run(cfg, specs); err == nil {
			t.Errorf("config %d (%+v) accepted, want error", i, f)
		}
	}
}

// randomFaults draws a fault regime scaled to the short random
// federations: frequent enough that crashes and windows actually fire
// within a few-hundred-minute trace.
func randomFaults(r *rand.Rand, seed uint64) FaultConfig {
	f := FaultConfig{
		MTBF: 60 + r.Float64()*400,
		MTTR: 10 + r.Float64()*80,
		Seed: seed ^ 0xFA17,
	}
	if r.IntN(4) > 0 { // most runs also get maintenance windows
		f.MaintPeriod = 150 + r.Float64()*500
		f.MaintDuration = 20 + r.Float64()*80
		f.MaintFraction = 0.2 + r.Float64()*0.6
	}
	if r.IntN(2) == 0 {
		f.Victim = VictimDrain
	}
	return f
}

// TestParallelMatchesSerialRandomFederationsWithFaults is the
// engine-identity property test with the fault subsystem enabled:
// random federations, random fault regimes, every policy and site
// selector — job records, counters (including the fault set) and
// series must match bit for bit.
func TestParallelMatchesSerialRandomFederationsWithFaults(t *testing.T) {
	engines := []string{EngineParallel, EngineOptimistic}
	runs, skips := make(map[string]int), make(map[string]int)
	cfgQuick := &quick.Config{MaxCount: 24}
	err := quick.Check(func(seed uint64, polPick, selPick uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xFA5EED))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		faults := randomFaults(r, seed)
		mk := func() Config {
			return Config{
				Platform:          plat,
				Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
				Policy:            multiSitePolicyForIndex(int(polPick), seed),
				Faults:            faults,
				CheckConservation: true,
				MaxTime:           200000,
			}
		}
		serialRes, err := Run(mk(), specs)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}
		for _, engine := range engines {
			par := mk()
			par.Engine = engine
			parRes, err := Run(par, specs)
			if err != nil {
				t.Logf("%s: %v", engine, err)
				return false
			}
			runs[engine]++
			if parRes.ambiguousTies {
				// Measure-zero for the float-valued traces, so a skip
				// here and there is fine — but the counters below catch
				// the failure mode where every seed skips and the
				// property silently stops testing anything.
				skips[engine]++
				t.Logf("seed %d (%s): ambiguous tie observed, skipping comparison", seed, engine)
				continue
			}
			a, b := fingerprint(serialRes), fingerprint(parRes)
			if a != b {
				t.Logf("seed %d sel %d pol %d (%s): engines diverge under faults:\n%s",
					seed, selPick%3, polPick%4, engine, firstDiff(a, b))
				return false
			}
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
	for _, engine := range engines {
		if runs[engine] > 0 && skips[engine] == runs[engine] {
			t.Errorf("%s: all %d runs skipped as ambiguous ties: bit-identity was never actually compared",
				engine, runs[engine])
		}
	}
}
