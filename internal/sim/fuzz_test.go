package sim

// FuzzParallelOrdering model-checks the partitioned engine's
// cross-partition event ordering against the serial kernel: a fuzzed
// (seed, policy, site selector, staleness, fault regime) coordinate
// synthesizes a random multi-site federation and workload, both
// engines simulate the same trace, and every observable — job records,
// counters (including the fault set), series — must match bit for bit.
// faultPick == 0 reproduces the historical fault-free corpus; any other
// value enables machine crashes (and, depending on its low bits,
// maintenance windows under either victim policy). Runs where the
// parallel engine reports an ambiguous cross-partition timestamp tie
// (possible with fuzzed integer delays; the serial scheduling-order
// tie-break is not reconstructible) skip the comparison but still
// require both engines to complete cleanly. The committed corpus pins
// the coordinates that found real ordering bugs during development: a
// cross-site alias dispatch, an arrival/refresh tie on the sample
// grid, a stale decision fence ahead of an unclaimed spawning event,
// and a machine crash whose kill-requeue races a cross-site arrival
// (the coordinate class that exposed the cross-alias victim hazard —
// see the alias-risk ledger promotion in shard.go).

import (
	"math/rand/v2"
	"sync"
	"testing"
)

// fuzzCmp tallies, per engine, how many corpus inputs actually reached
// the bit-identity comparison versus skipping it on an ambiguous tie.
// A skip is legitimate for one coordinate, but if every input skips the
// fuzz target has silently stopped checking anything — the coverage
// test after the fuzz target turns that into a failure.
var fuzzCmp = struct {
	sync.Mutex
	runs  int
	skips map[string]int
}{skips: make(map[string]int)}

// fuzzFaults derives a fault regime from one fuzz byte pair: zero
// disables the subsystem entirely (historical behavior); otherwise
// crashes are always on and the low bits of faultPick select window
// cadence and victim policy.
func fuzzFaults(seed uint64, faultPick, victimPick byte) FaultConfig {
	if faultPick == 0 {
		return FaultConfig{}
	}
	f := FaultConfig{
		MTBF: 40 + float64(faultPick)*3,
		MTTR: 15 + float64(victimPick%16)*5,
		Seed: seed ^ 0xFA17,
	}
	if faultPick%4 != 0 {
		f.MaintPeriod = 150 + float64(faultPick%4)*150
		f.MaintDuration = 40
		f.MaintFraction = 0.3
	}
	if victimPick%2 == 1 {
		f.Victim = VictimDrain
	}
	return f
}

func FuzzParallelOrdering(f *testing.F) {
	f.Add(uint64(0x64ccd4a6193fcb8f), byte(0xcb), byte(0x38), byte(0x3e), byte(0), byte(0))
	f.Add(uint64(0xaeb86490e1d38afc), byte(0xaa), byte(0x67), byte(0x8d), byte(0), byte(0))
	f.Add(uint64(0xcd3965e7d3eebe1f), byte(0x65), byte(0x8b), byte(0xda), byte(0), byte(0))
	f.Add(uint64(0x770d30828739e4ab), byte(0x0b), byte(0x97), byte(0xac), byte(0), byte(0))
	f.Add(uint64(42), byte(0), byte(0), byte(0), byte(0), byte(0))
	f.Add(uint64(7), byte(1), byte(2), byte(20), byte(0), byte(0))
	f.Add(uint64(11), byte(3), byte(2), byte(5), byte(9), byte(1))
	f.Fuzz(func(t *testing.T, seed uint64, polPick, selPick, staleness, faultPick, victimPick byte) {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Skip()
		}
		// Bound per-input cost: truncate the workload and cap simulated
		// time. Runs that exceed the cap must fail identically in both
		// engines, which is itself part of the contract.
		if len(specs) > 80 {
			specs = specs[:80]
		}
		mk := func() Config {
			return Config{
				Platform:          plat,
				Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
				Policy:            multiSitePolicyForIndex(int(polPick), seed),
				UtilStaleness:     float64(staleness % 40),
				Faults:            fuzzFaults(seed, faultPick, victimPick),
				CheckConservation: true,
				MaxTime:           20000,
			}
		}
		serialRes, serialErr := Run(mk(), specs)
		skipped := false
		for _, engine := range []string{EngineParallel, EngineOptimistic} {
			par := mk()
			par.Engine = engine
			parRes, parErr := Run(par, specs)
			if (serialErr == nil) != (parErr == nil) {
				t.Fatalf("engines disagree on failure: serial=%v %s=%v", serialErr, engine, parErr)
			}
			if serialErr != nil {
				continue
			}
			if parRes.ambiguousTies {
				fuzzCmp.Lock()
				fuzzCmp.skips[engine]++
				fuzzCmp.Unlock()
				skipped = true
				continue
			}
			if a, b := fingerprint(serialRes), fingerprint(parRes); a != b {
				t.Fatalf("serial and %s results diverge:\n%s", engine, firstDiff(a, b))
			}
		}
		if serialErr != nil {
			return
		}
		fuzzCmp.Lock()
		fuzzCmp.runs++
		fuzzCmp.Unlock()
		if skipped {
			t.Skip("ambiguous cross-partition tie: serial order not reconstructible")
		}
	})
}

// TestFuzzCorpusComparisonCoverage runs after the fuzz target's seed
// corpus (in-file declaration order) and fails if some engine skipped
// the bit-identity comparison on every single input. Guarded on
// runs > 0 so -run filters and -shuffle cannot produce a vacuous
// failure or a false pass being load-bearing.
func TestFuzzCorpusComparisonCoverage(t *testing.T) {
	fuzzCmp.Lock()
	defer fuzzCmp.Unlock()
	for engine, skips := range fuzzCmp.skips {
		if fuzzCmp.runs > 0 && skips >= fuzzCmp.runs {
			t.Errorf("%s: all %d fuzz corpus inputs skipped the comparison as ambiguous ties", engine, fuzzCmp.runs)
		}
	}
}
