package sim

// FuzzParallelOrdering model-checks the partitioned engine's
// cross-partition event ordering against the serial kernel: a fuzzed
// (seed, policy, site selector, staleness) coordinate synthesizes a
// random multi-site federation and workload, both engines simulate the
// same trace, and every observable — job records, counters, series —
// must match bit for bit. Runs where the parallel engine reports an
// ambiguous cross-partition timestamp tie (possible with fuzzed
// integer delays; the serial scheduling-order tie-break is not
// reconstructible) skip the comparison but still require both engines
// to complete cleanly. The committed corpus pins the coordinates that
// found real ordering bugs during development: a cross-site alias
// dispatch, an arrival/refresh tie on the sample grid, and a stale
// decision fence ahead of an unclaimed spawning event.

import (
	"math/rand/v2"
	"testing"
)

func FuzzParallelOrdering(f *testing.F) {
	f.Add(uint64(0x64ccd4a6193fcb8f), byte(0xcb), byte(0x38), byte(0x3e))
	f.Add(uint64(0xaeb86490e1d38afc), byte(0xaa), byte(0x67), byte(0x8d))
	f.Add(uint64(0xcd3965e7d3eebe1f), byte(0x65), byte(0x8b), byte(0xda))
	f.Add(uint64(0x770d30828739e4ab), byte(0x0b), byte(0x97), byte(0xac))
	f.Add(uint64(42), byte(0), byte(0), byte(0))
	f.Add(uint64(7), byte(1), byte(2), byte(20))
	f.Fuzz(func(t *testing.T, seed uint64, polPick, selPick, staleness byte) {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Skip()
		}
		// Bound per-input cost: truncate the workload and cap simulated
		// time. Runs that exceed the cap must fail identically in both
		// engines, which is itself part of the contract.
		if len(specs) > 80 {
			specs = specs[:80]
		}
		mk := func() Config {
			return Config{
				Platform:          plat,
				Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
				Policy:            multiSitePolicyForIndex(int(polPick), seed),
				UtilStaleness:     float64(staleness % 40),
				CheckConservation: true,
				MaxTime:           20000,
			}
		}
		serialRes, serialErr := Run(mk(), specs)
		par := mk()
		par.Engine = EngineParallel
		parRes, parErr := Run(par, specs)
		if (serialErr == nil) != (parErr == nil) {
			t.Fatalf("engines disagree on failure: serial=%v parallel=%v", serialErr, parErr)
		}
		if serialErr != nil {
			return
		}
		if parRes.ambiguousTies {
			t.Skip("ambiguous cross-partition tie: serial order not reconstructible")
		}
		if a, b := fingerprint(serialRes), fingerprint(parRes); a != b {
			t.Fatalf("serial and parallel results diverge:\n%s", firstDiff(a, b))
		}
	})
}
