package sim

import (
	"fmt"

	"netbatch/internal/eventq"
)

// This file is the simulation kernel: a policy-free event loop that
// owns the clock and the future event list and dispatches typed events
// to registered subsystems. Everything that gives events meaning —
// placement and preemption, rescheduling decisions, stale-view
// snapshots, series accounting — lives in subsystem types (see
// placement.go, resched.go, snapshot.go, accounting.go) that register
// their handlers with the kernel at shard construction. The kernel
// itself never inspects payloads and never touches platform state,
// which is what lets the serial engine (serial.go) and the partitioned
// parallel engine (parallel.go) drive identical mechanism code.

// Event kinds. The zero value is reserved so an unregistered kind is
// caught at dispatch.
const (
	evSubmit = iota + 1
	evFinish
	evWaitTimeout
	evArrive
	evSnapshot
	evSusDecide
	numEventKinds
)

// handlerFunc applies one event's payload to shard state.
type handlerFunc func(payload any) error

// subsystem is a pluggable simulator mechanism: it wires the event
// kinds it owns into the kernel's dispatch table. Handlers for kinds
// registered as deciding consult scheduling or rescheduling policy —
// shared, order-sensitive state — and the parallel engine serializes
// them globally in timestamp order; all other handlers touch only
// their own partition's state.
type subsystem interface {
	register(k *kernel)
}

// evRef identifies a scheduled event for cancellation. It records the
// owning queues: an alias dispatch may cancel a wait timer that a
// different shard's kernel scheduled, and cancellation must decrement
// that queue's live count, not the canceling shard's. For kinds the
// parallel engine fence-publishes (deciding kinds, and the
// capacity-handoff kinds that alias risk can promote to deciding) it
// carries a second handle into the corresponding shadow queue.
type evRef struct {
	main    eventq.Handle
	mainQ   *eventq.Queue
	shadow  eventq.Handle
	shadowQ *eventq.Queue
}

// kernel is one partition's event loop core: clock, queue, dispatch
// table, and processed-event count.
type kernel struct {
	q   *eventq.Queue
	now float64

	// phase is the tie-rank phase stamped on every locally scheduled
	// event: the global decision count at the creating event's claim.
	// Always 0 in the serial engine (pure scheduling order); the
	// parallel coordinator updates it at each claim so that same-time
	// events reproduce the creation order of a single global queue.
	phase uint64

	// events counts dispatched events (serial engine; the parallel
	// engine counts through per-round logs so it can truncate at the
	// final completion exactly like the serial loop does).
	events int64

	handlers [numEventKinds]handlerFunc
	deciding [numEventKinds]bool

	// decideQ shadows pending deciding events and handoffQ shadows
	// pending capacity-handoff events (finishes and arrivals), so the
	// partition can publish the timestamp of its next decision — and,
	// under alias risk, its next promoted handoff — in O(1). Both are
	// nil in the serial engine, which needs no fences.
	decideQ  *eventq.Queue
	handoffQ *eventq.Queue
}

func newKernel(trackDecides bool) *kernel {
	k := &kernel{q: eventq.New()}
	if trackDecides {
		k.decideQ = eventq.New()
		k.handoffQ = eventq.New()
	}
	return k
}

// handle registers a handler for one event kind. Registering a kind
// twice is a programmer error.
func (k *kernel) handle(kind int, deciding bool, h handlerFunc) {
	if k.handlers[kind] != nil {
		panic(fmt.Sprintf("sim: event kind %d registered twice", kind))
	}
	k.handlers[kind] = h
	k.deciding[kind] = deciding
}

// schedule adds an event at time t, shadowing fence-published kinds.
func (k *kernel) schedule(t float64, kind int, payload any) evRef {
	ref := evRef{main: k.q.SchedulePhased(t, kind, payload, k.phase), mainQ: k.q}
	switch {
	case k.decideQ != nil && k.deciding[kind]:
		ref.shadowQ = k.decideQ
	case k.handoffQ != nil && (kind == evFinish || kind == evArrive):
		ref.shadowQ = k.handoffQ
	}
	if ref.shadowQ != nil {
		ref.shadow = ref.shadowQ.SchedulePhased(t, kind, nil, k.phase)
	}
	return ref
}

// deliver adds a cross-partition event at a round barrier, ranked by
// its creating decision (g) and send index so same-time ties resolve
// exactly as the serial engine's creation order would.
func (k *kernel) deliver(t float64, kind int, payload any, g, idx uint64) {
	k.q.ScheduleDelivery(t, kind, payload, g, idx)
	if k.handoffQ != nil && (kind == evFinish || kind == evArrive) {
		k.handoffQ.ScheduleDelivery(t, kind, nil, g, idx)
	}
}

// cancel removes a scheduled event (and its shadow) from the queues
// that own them, which are not necessarily this kernel's.
func (k *kernel) cancel(ref evRef) {
	if ref.mainQ != nil {
		ref.mainQ.Cancel(ref.main)
	}
	if ref.shadowQ != nil {
		ref.shadowQ.Cancel(ref.shadow)
	}
}

// nextDecide returns the timestamp of the earliest pending deciding
// event, or +inf when none is queued.
func (k *kernel) nextDecide() float64 {
	return shadowNext(k.decideQ)
}

// nextHandoff returns the timestamp of the earliest pending finish or
// arrival, or +inf when none is queued.
func (k *kernel) nextHandoff() float64 {
	return shadowNext(k.handoffQ)
}

func shadowNext(q *eventq.Queue) float64 {
	if q == nil {
		return inf
	}
	if t, ok := q.NextTime(); ok {
		return t
	}
	return inf
}

// dispatch applies one popped event through the registered handler.
func (k *kernel) dispatch(ev *eventq.Event) error {
	if ev.Kind <= 0 || ev.Kind >= numEventKinds || k.handlers[ev.Kind] == nil {
		return fmt.Errorf("sim: unknown event kind %d", ev.Kind)
	}
	return k.handlers[ev.Kind](ev.Payload)
}
