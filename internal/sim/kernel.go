package sim

import (
	"fmt"

	"netbatch/internal/eventq"
)

// This file is the simulation kernel: a policy-free event loop that
// owns the clock and the future event list and dispatches typed events
// to registered subsystems. Everything that gives events meaning —
// placement and preemption, rescheduling decisions, stale-view
// snapshots, machine faults, series accounting — lives in subsystem
// types (see placement.go, resched.go, snapshot.go, faults.go,
// accounting.go) that register their handlers with the kernel at shard
// construction. The kernel itself never inspects payloads and never
// touches platform state, which is what lets the serial engine
// (serial.go) and the partitioned parallel engine (parallel.go) drive
// identical mechanism code.
//
// Event kinds are an open registry, not a closed enum: a subsystem
// allocates each kind it owns with registerKind/registerHandoffKind
// and receives an opaque handle back, so new mechanisms plug in
// without touching the kernel or the engines. Kind numbering follows
// registration order; because every shard registers the same
// subsystem list in the same order, the numbering is identical across
// the partitions of one run (runParallel verifies this), which is what
// lets cross-shard deliveries carry kind values between kernels. Kind
// numbers never influence event ordering — the queue orders purely on
// (time, tie rank) — so the numbering is free to change as subsystems
// come and go.

// kind is an opaque handle for a registered event kind. The zero value
// is reserved so an unregistered kind is caught at dispatch.
type kind int

// handlerFunc applies one event's payload to shard state. The payload
// arrives as the event's two inline words (a, b) plus the reference
// slot (ref, nil for the high-volume kinds) — see eventq.Event. Keeping
// payloads out of `any` for the hot kinds is what makes the event loop
// allocation-free.
type handlerFunc func(a, b int64, ref any) error

// kindInfo is one registry entry: the kind's diagnostic name, its
// synchronization class, its handler, and its payload codec (how the
// checkpoint subsystem serializes the kind's pending events).
type kindInfo struct {
	name    string
	handler handlerFunc

	// deciding kinds consult scheduling or rescheduling policy —
	// shared, order-sensitive state — and the parallel engine
	// serializes them globally in timestamp order.
	deciding bool
	// handoff kinds redistribute machine capacity (completions,
	// arrivals, fault repairs): their wait-queue scans touch only
	// shard-local state unless the shard has live alias risk, in which
	// case the parallel engine promotes them to deciding (see
	// shard.aliasRisk).
	handoff bool

	// encPayload/decPayload serialize the kind's event payload for
	// checkpointing. registerKind installs the one-word codec (most
	// kinds carry a job, site or machine index in a); kinds with wider
	// payloads override via setPayloadCodec. The encodings are
	// byte-identical to the pre-pooling any-boxed codecs, so snapshot
	// compatibility is preserved.
	encPayload func(e *snapEncoder, a, b int64, ref any)
	decPayload func(d *snapDecoder) (a, b int64, ref any)
	// argOf projects a payload onto the integer argument shown in
	// replay-bisect event records.
	argOf func(a, b int64, ref any) int64
	// release, when set, recycles the kind's reference payloads: the
	// queue's drop hook routes every canceled-and-dropped Ref here, and
	// handlers may call it themselves once a fired payload is consumed.
	release func(ref any)
}

// stateCodec is one entry of the kernel's state registry — the
// checkpoint mirror of the event-kind registry. Each subsystem
// registers a codec that can dump and restore its portion of shard
// state; the snapshot machinery drives the codecs in registration
// order, which is identical across shards and runs for the same reason
// kind numbering is.
type stateCodec struct {
	name string
	save func(e *snapEncoder)
	load func(d *snapDecoder) error
}

// subsystem is a pluggable simulator mechanism: it allocates the event
// kinds it owns from the kernel's registry and wires in its handlers.
type subsystem interface {
	register(k *kernel)
}

// evRef identifies a scheduled event for cancellation. It records the
// owning queues: an alias dispatch may cancel a wait timer that a
// different shard's kernel scheduled, and cancellation must decrement
// that queue's live count, not the canceling shard's. For kinds the
// parallel engine fence-publishes (deciding kinds, and the handoff
// kinds that alias risk can promote to deciding) it carries a second
// handle into the corresponding shadow queue.
type evRef struct {
	main    eventq.Handle
	mainQ   *eventq.Queue
	shadow  eventq.Handle
	shadowQ *eventq.Queue
}

// kernel is one partition's event loop core: clock, queue, kind
// registry, and processed-event count.
type kernel struct {
	q   *eventq.Queue
	now float64

	// phase is the tie-rank phase stamped on every locally scheduled
	// event: the global decision count at the creating event's claim.
	// Always 0 in the serial engine (pure scheduling order); the
	// parallel coordinator updates it at each claim so that same-time
	// events reproduce the creation order of a single global queue.
	phase uint64

	// events counts dispatched events (serial engine; the parallel
	// engine counts through per-round logs so it can truncate at the
	// final completion exactly like the serial loop does).
	events int64

	// kinds is the event-kind registry. Index 0 is reserved so the
	// zero kind is caught at dispatch.
	kinds []kindInfo

	// codecs is the state registry: one StateCodec per subsystem, in
	// registration order (see stateCodec).
	codecs []stateCodec

	// decideQ shadows pending deciding events and handoffQ shadows
	// pending capacity-handoff events, so the partition can publish
	// the timestamp of its next decision — and, under alias risk, its
	// next promoted handoff — in O(1). Both are nil in the serial
	// engine, which needs no fences.
	decideQ  *eventq.Queue
	handoffQ *eventq.Queue
}

func newKernel(trackDecides bool) *kernel {
	k := &kernel{q: eventq.New(), kinds: make([]kindInfo, 1)}
	// Route reference payloads of canceled-and-dropped events to their
	// kind's recycler, if it registered one.
	k.q.SetDropHook(func(kd int, ref any) {
		if kd > 0 && kd < len(k.kinds) && k.kinds[kd].release != nil {
			k.kinds[kd].release(ref)
		}
	})
	if trackDecides {
		k.decideQ = eventq.New()
		k.handoffQ = eventq.New()
	}
	return k
}

// registerKind allocates a new event kind owned by the calling
// subsystem and installs its handler. deciding marks kinds whose
// handlers consult shared scheduler/policy state and must execute in
// global timestamp order under the parallel engine.
func (k *kernel) registerKind(name string, deciding bool, h handlerFunc) kind {
	if h == nil {
		panic(fmt.Sprintf("sim: event kind %q registered with nil handler", name))
	}
	for _, info := range k.kinds[1:] {
		if info.name == name {
			panic(fmt.Sprintf("sim: event kind %q registered twice", name))
		}
	}
	k.kinds = append(k.kinds, kindInfo{
		name: name, deciding: deciding, handler: h,
		encPayload: func(e *snapEncoder, a, _ int64, _ any) { e.I64(a) },
		decPayload: func(d *snapDecoder) (int64, int64, any) { return d.I64(), 0, nil },
		argOf:      func(a, _ int64, _ any) int64 { return a },
	})
	return kind(len(k.kinds) - 1)
}

// setPayloadCodec overrides the payload codec of a kind whose events
// carry more than the single inline word a.
func (k *kernel) setPayloadCodec(kd kind,
	enc func(*snapEncoder, int64, int64, any), dec func(*snapDecoder) (int64, int64, any),
	argOf func(int64, int64, any) int64) {
	k.kinds[kd].encPayload = enc
	k.kinds[kd].decPayload = dec
	k.kinds[kd].argOf = argOf
}

// setPayloadRelease installs a recycler for a kind's reference
// payloads (see kindInfo.release).
func (k *kernel) setPayloadRelease(kd kind, release func(ref any)) {
	k.kinds[kd].release = release
}

// registerState adds a subsystem's state codec to the kernel's state
// registry. Like event kinds, codec order follows registration order
// and must be identical across the shards of one run; the snapshot
// format records the codec names so a mismatched restore is caught.
func (k *kernel) registerState(name string, save func(*snapEncoder), load func(*snapDecoder) error) {
	for _, c := range k.codecs {
		if c.name == name {
			panic(fmt.Sprintf("sim: state codec %q registered twice", name))
		}
	}
	k.codecs = append(k.codecs, stateCodec{name: name, save: save, load: load})
}

// registerHandoffKind allocates a capacity-handoff kind: non-deciding
// in the serial order, but promoted to deciding by the parallel engine
// while the owning shard has live alias risk, because redistributing
// capacity scans wait queues whose revived slots can reach jobs
// resident at other sites.
func (k *kernel) registerHandoffKind(name string, h handlerFunc) kind {
	id := k.registerKind(name, false, h)
	k.kinds[id].handoff = true
	return id
}

// decides reports whether the kind is statically deciding. The
// argument is an int because it usually arrives from an eventq.Event.
func (k *kernel) decides(kd int) bool { return k.kinds[kd].deciding }

// isHandoff reports whether the kind is a capacity handoff.
func (k *kernel) isHandoff(kd int) bool { return k.kinds[kd].handoff }

// schedule adds an event at time t, shadowing fence-published kinds.
// The payload is the inline word pair (a, b); the rare reference
// payloads go through scheduleRef.
func (k *kernel) schedule(t float64, kd kind, a, b int64) evRef {
	return k.scheduleRef(t, kd, a, b, nil)
}

// scheduleRef is schedule for kinds that carry a reference payload.
func (k *kernel) scheduleRef(t float64, kd kind, a, b int64, payload any) evRef {
	ref := evRef{main: k.q.SchedulePhased(t, int(kd), a, b, payload, k.phase), mainQ: k.q}
	info := &k.kinds[kd]
	switch {
	case k.decideQ != nil && info.deciding:
		ref.shadowQ = k.decideQ
	case k.handoffQ != nil && info.handoff:
		ref.shadowQ = k.handoffQ
	}
	if ref.shadowQ != nil {
		ref.shadow = ref.shadowQ.SchedulePhased(t, int(kd), 0, 0, nil, k.phase)
	}
	return ref
}

// deliver adds a cross-partition event at a round barrier, ranked by
// its creating decision (g) and send index so same-time ties resolve
// exactly as the serial engine's creation order would.
func (k *kernel) deliver(t float64, kd kind, a, b int64, g, idx uint64) {
	k.q.ScheduleDelivery(t, int(kd), a, b, nil, g, idx)
	if k.handoffQ != nil && k.kinds[kd].handoff {
		k.handoffQ.ScheduleDelivery(t, int(kd), 0, 0, nil, g, idx)
	}
}

// deliverBatch bulk-schedules one round's pre-sorted cross-partition
// deliveries, equivalent to calling deliver once per element. The main
// queue takes the whole batch in one call; fence shadows for handoff
// kinds are added in the same pass.
func (k *kernel) deliverBatch(batch []eventq.Delivery) {
	k.q.DeliverBatch(batch)
	if k.handoffQ == nil {
		return
	}
	for i := range batch {
		d := &batch[i]
		if k.kinds[d.Kind].handoff {
			k.handoffQ.ScheduleDelivery(d.Time, d.Kind, 0, 0, nil, d.G, d.Idx)
		}
	}
}

// restoreEvent reinstates a checkpointed pending event with its exact
// tie rank, recreating the fence shadow for published kinds. The rank
// is reused for the shadow entry: shadow queues only publish their
// minimum pending time and pop in lockstep with claims of their kinds,
// so any ordering consistent with the main queue's is correct — and the
// saved rank is exactly that.
func (k *kernel) restoreEvent(sev eventq.SavedEvent) evRef {
	ref := evRef{main: k.q.Restore(sev), mainQ: k.q}
	info := &k.kinds[sev.Kind]
	switch {
	case k.decideQ != nil && info.deciding:
		ref.shadowQ = k.decideQ
	case k.handoffQ != nil && info.handoff:
		ref.shadowQ = k.handoffQ
	}
	if ref.shadowQ != nil {
		ref.shadow = ref.shadowQ.Restore(eventq.SavedEvent{Time: sev.Time, Kind: sev.Kind, Rank: sev.Rank})
	}
	return ref
}

// releaseRef recycles a fired event's reference payload through its
// kind's recycler, if any. Engines call it after the handler (and any
// replay recording) has consumed the payload.
func (k *kernel) releaseRef(ev eventq.Event) {
	if ev.Ref == nil {
		return
	}
	if rel := k.kinds[ev.Kind].release; rel != nil {
		rel(ev.Ref)
	}
}

// cancel removes a scheduled event (and its shadow) from the queues
// that own them, which are not necessarily this kernel's.
func (k *kernel) cancel(ref evRef) {
	if ref.mainQ != nil {
		ref.mainQ.Cancel(ref.main)
	}
	if ref.shadowQ != nil {
		ref.shadowQ.Cancel(ref.shadow)
	}
}

// nextDecide returns the timestamp of the earliest pending deciding
// event, or +inf when none is queued.
func (k *kernel) nextDecide() float64 {
	return shadowNext(k.decideQ)
}

// nextHandoff returns the timestamp of the earliest pending capacity
// handoff, or +inf when none is queued.
func (k *kernel) nextHandoff() float64 {
	return shadowNext(k.handoffQ)
}

func shadowNext(q *eventq.Queue) float64 {
	if q == nil {
		return inf
	}
	if t, ok := q.NextTime(); ok {
		return t
	}
	return inf
}

// sameKinds reports whether two kernels allocated identical kind
// tables — the cross-partition consistency the parallel engine relies
// on to ship kind values between shards.
func sameKinds(a, b *kernel) bool {
	if len(a.kinds) != len(b.kinds) {
		return false
	}
	for i := 1; i < len(a.kinds); i++ {
		if a.kinds[i].name != b.kinds[i].name ||
			a.kinds[i].deciding != b.kinds[i].deciding ||
			a.kinds[i].handoff != b.kinds[i].handoff {
			return false
		}
	}
	return true
}

// dispatch applies one popped event through the registered handler.
func (k *kernel) dispatch(ev eventq.Event) error {
	if ev.Kind <= 0 || ev.Kind >= len(k.kinds) {
		return fmt.Errorf("sim: unknown event kind %d", ev.Kind)
	}
	return k.kinds[ev.Kind].handler(ev.A, ev.B, ev.Ref)
}
