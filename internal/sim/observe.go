package sim

import (
	"time"

	"netbatch/internal/obs"
)

// simMetrics holds the per-run pre-resolved metric handles. The zero
// value (all nil) is the disabled fast path: every record method on a
// nil handle returns immediately, so instrumented sites cost one
// predicted branch and zero allocations when Config.Metrics is unset.
// Name lookups happen exactly once per run, in newSimMetrics.
type simMetrics struct {
	events     *obs.Counter   // events dispatched by this run's engine loops
	rounds     *obs.Counter   // conservative closed rounds driven
	fenceWaits *obs.Counter   // decision-fence wait episodes across shard workers
	steals     *obs.Counter   // sub-shard steals (promoted Result.SubShardSteals)
	bursts     *obs.Counter   // optimistic speculative bursts
	snapshots  *obs.Counter   // optimistic incremental snapshots pushed
	rollbacks  *obs.Counter   // optimistic rollbacks
	undone     *obs.Counter   // events undone by rollbacks (wasted speculation)
	drains     *obs.Counter   // optimistic group-commit drains
	groupSize  *obs.Histogram // committed-run length per drain (promoted GroupCommitSize)
	aliasRet   *obs.Counter   // alias retirements (promoted Result.AliasRetirements)
	ckpts      *obs.Counter   // checkpoint snapshots captured
	ckptBytes  *obs.Counter   // encoded checkpoint bytes emitted
	qDepth     *obs.Gauge     // event-queue live-depth high-water across shards
	qTombs     *obs.Gauge     // event-queue tombstone high-water across shards
}

func newSimMetrics(r *obs.Registry) simMetrics {
	if r == nil {
		return simMetrics{}
	}
	return simMetrics{
		events:     r.Counter("sim.events"),
		rounds:     r.Counter("sim.par.rounds"),
		fenceWaits: r.Counter("sim.par.fence_waits"),
		steals:     r.Counter("sim.par.subshard_steals"),
		bursts:     r.Counter("sim.opt.bursts"),
		snapshots:  r.Counter("sim.opt.snapshots"),
		rollbacks:  r.Counter("sim.opt.rollbacks"),
		undone:     r.Counter("sim.opt.undone_events"),
		drains:     r.Counter("sim.opt.commit_drains"),
		groupSize:  r.Histogram("sim.opt.group_commit_size"),
		aliasRet:   r.Counter("sim.alias_retirements"),
		ckpts:      r.Counter("sim.checkpoint.captures"),
		ckptBytes:  r.Counter("sim.checkpoint.bytes"),
		qDepth:     r.Gauge("sim.queue.depth_max"),
		qTombs:     r.Gauge("sim.queue.tombstones_max"),
	}
}

// sampleQueues records event-queue depth/tombstone high-water marks
// across the given shards. Called only from points where shard kernels
// are quiescent for the caller (the serial loop itself, round
// barriers, commit passes), never per event.
func (m *simMetrics) sampleQueues(shards []*shard) {
	if m.qDepth == nil {
		return
	}
	var live, tombs int64
	for _, sh := range shards {
		live += int64(sh.k.q.Live())
		tombs += int64(sh.k.q.Tombstones())
	}
	m.qDepth.Max(live)
	m.qTombs.Max(tombs)
}

// progressMeter throttles Config.Progress callbacks to wall-clock
// intervals. A nil meter (Progress unset) no-ops; engines call maybe
// from exactly one goroutine per run (the serial loop or the
// coordinator), always at a point where shard event counts are stable.
type progressMeter struct {
	fn    func(obs.Progress)
	every time.Duration
	next  time.Time
}

func newProgressMeter(cfg *Config) *progressMeter {
	if cfg.Progress == nil {
		return nil
	}
	every := cfg.ProgressEvery
	if every <= 0 {
		every = 500 * time.Millisecond
	}
	return &progressMeter{fn: cfg.Progress, every: every, next: time.Now().Add(every)}
}

func (p *progressMeter) maybe(simT float64, events, rollbacks int64) {
	if p == nil {
		return
	}
	now := time.Now()
	if now.Before(p.next) {
		return
	}
	p.next = now.Add(p.every)
	p.fn(obs.Progress{SimTime: simT, Events: events, Rollbacks: rollbacks})
}
