package sim

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand/v2"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/obs"
	"netbatch/internal/sched"
)

var updateObsGolden = flag.Bool("update-obs", false, "regenerate observability golden files")

// obsFederation builds a deterministic small multi-site workload for
// the observability tests (fixed seed into the shared random-federation
// generator).
func obsFederation(t *testing.T, seed uint64) (Config, []job.Spec) {
	t.Helper()
	r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Platform:          plat,
		Initial:           federatedInitial(sched.LocalityFirst{}),
		Policy:            core.NewResSusWaitUtil(),
		CheckConservation: true,
	}, specs
}

// TestObservabilitySharedRegistry runs all three engines concurrently
// against ONE shared registry and tracer — the cmd/experiments wiring —
// while progress callbacks fire at every poll. Under -race this is the
// concurrency proof for the obs hot path; the counter reconciliation
// below is the correctness proof (every engine reports its event count
// through the same atomic counter, none lost).
func TestObservabilitySharedRegistry(t *testing.T) {
	reg := obs.NewRegistry()
	tr := obs.NewTracer()
	var wantEvents, progressCalls atomic.Int64
	var wg sync.WaitGroup
	var mu sync.Mutex
	var firstErr error
	run := 0
	for _, engine := range []string{EngineSerial, EngineParallel, EngineOptimistic} {
		for _, seed := range []uint64{11, 23} {
			cfg, specs := obsFederation(t, seed)
			cfg.Engine = engine
			cfg.Metrics = reg
			cfg.Trace = tr.Process(fmt.Sprintf("run %02d %s", run, engine))
			cfg.ProgressEvery = time.Nanosecond
			cfg.Progress = func(p obs.Progress) {
				if p.SimTime < 0 || p.Events < 0 || p.Rollbacks < 0 {
					t.Errorf("progress with negative fields: %+v", p)
				}
				progressCalls.Add(1)
			}
			run++
			wg.Add(1)
			go func() {
				defer wg.Done()
				res, err := Run(cfg, specs)
				if err != nil {
					mu.Lock()
					if firstErr == nil {
						firstErr = err
					}
					mu.Unlock()
					return
				}
				wantEvents.Add(res.Events)
			}()
		}
	}
	wg.Wait()
	if firstErr != nil {
		t.Fatal(firstErr)
	}
	if got, want := reg.Counter("sim.events").Value(), wantEvents.Load(); got != want {
		t.Errorf("shared registry sim.events = %d, want %d (sum of per-run Result.Events)", got, want)
	}
	if progressCalls.Load() == 0 {
		t.Error("no progress callbacks fired despite ProgressEvery=1ns")
	}
	// The tracer must have collected real spans from the concurrent runs.
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	validateChromeTrace(t, buf.Bytes())
}

// TestObservabilityDoesNotPerturbResults pins the instrument-nothing
// contract: a fully instrumented run (registry + timeline + progress)
// must be bit-identical to a bare run of the same configuration, on
// every engine.
func TestObservabilityDoesNotPerturbResults(t *testing.T) {
	for _, engine := range []string{EngineSerial, EngineParallel, EngineOptimistic} {
		bare, specs := obsFederation(t, 37)
		bare.Engine = engine
		bareRes, err := Run(bare, specs)
		if err != nil {
			t.Fatalf("%s bare: %v", engine, err)
		}
		inst, specs2 := obsFederation(t, 37)
		inst.Engine = engine
		inst.Metrics = obs.NewRegistry()
		inst.Trace = obs.NewTracer().Process("cell probe")
		inst.ProgressEvery = time.Nanosecond
		inst.Progress = func(obs.Progress) {}
		instRes, err := Run(inst, specs2)
		if err != nil {
			t.Fatalf("%s instrumented: %v", engine, err)
		}
		if fingerprint(bareRes) != fingerprint(instRes) {
			t.Errorf("%s: instrumented run differs from bare run:\n%s",
				engine, firstDiff(fingerprint(bareRes), fingerprint(instRes)))
		}
	}
}

// TestTimelineTracksGolden runs a fixed workload under the parallel and
// optimistic engines and pins the emitted timeline's track structure —
// process and thread names — against a golden file. Shard planning is
// deterministic (per-site, never GOMAXPROCS-dependent), so the track
// list is machine-stable even though span timings are not.
func TestTimelineTracksGolden(t *testing.T) {
	tr := obs.NewTracer()
	for _, engine := range []string{EngineParallel, EngineOptimistic} {
		cfg, specs := obsFederation(t, 7)
		cfg.Engine = engine
		cfg.Trace = tr.Process("cell golden/" + engine)
		if _, err := Run(cfg, specs); err != nil {
			t.Fatalf("%s: %v", engine, err)
		}
	}
	var buf bytes.Buffer
	if err := tr.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	events := validateChromeTrace(t, buf.Bytes())

	// Rebuild "process / track" names from the metadata events alone.
	procs := map[float64]string{}
	type key struct{ pid, tid float64 }
	tracks := map[key]string{}
	for _, e := range events {
		args, _ := e["args"].(map[string]any)
		name, _ := args["name"].(string)
		pid, _ := e["pid"].(float64)
		tid, _ := e["tid"].(float64)
		switch e["name"] {
		case "process_name":
			procs[pid] = name
		case "thread_name":
			tracks[key{pid, tid}] = name
		}
	}
	var lines []string
	for k, track := range tracks {
		lines = append(lines, procs[k.pid]+" / "+track)
	}
	sort.Strings(lines)
	got := strings.Join(lines, "\n") + "\n"

	path := filepath.Join("testdata", "timeline_tracks.golden")
	if *updateObsGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", path)
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update-obs to create): %v", err)
	}
	if got != string(want) {
		t.Errorf("timeline track structure drifted from golden file.\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// validateChromeTrace asserts the bytes are a well-formed Chrome
// trace_event JSON envelope and returns the decoded events.
func validateChromeTrace(t *testing.T, data []byte) []map[string]any {
	t.Helper()
	var env struct {
		TraceEvents     []map[string]any `json:"traceEvents"`
		DisplayTimeUnit string           `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(data, &env); err != nil {
		t.Fatalf("timeline is not valid JSON: %v", err)
	}
	if env.DisplayTimeUnit == "" {
		t.Error("timeline envelope missing displayTimeUnit")
	}
	if len(env.TraceEvents) == 0 {
		t.Fatal("timeline has no events")
	}
	for i, e := range env.TraceEvents {
		ph, _ := e["ph"].(string)
		switch ph {
		case "X":
			if d, ok := e["dur"].(float64); !ok || d < 0 {
				t.Fatalf("event %d: complete event with bad dur: %v", i, e)
			}
		case "i", "M":
		default:
			t.Fatalf("event %d: unexpected phase %q: %v", i, ph, e)
		}
		if name, _ := e["name"].(string); name == "" {
			t.Fatalf("event %d: missing name: %v", i, e)
		}
		if pid, ok := e["pid"].(float64); !ok || pid <= 0 {
			t.Fatalf("event %d: bad pid: %v", i, e)
		}
		if ph != "M" {
			if ts, ok := e["ts"].(float64); !ok || ts < 0 {
				t.Fatalf("event %d: bad ts: %v", i, e)
			}
		}
	}
	return env.TraceEvents
}
