package sim

import (
	"fmt"
	"math"
	"math/bits"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"netbatch/internal/eventq"
	"netbatch/internal/obs"
)

// This file is the optimistic (Time Warp) engine: the third execution
// mode next to the serial loop and the conservative round engine in
// parallel.go. The conservative engine advances all shards in lockstep
// rounds of width MinCrossRTT; when that lookahead is small (metro
// federations) the round barriers dominate the runtime even though
// decisions — the only events that actually need global order — are
// far sparser than rounds. The optimistic engine inverts the bet:
//
//   - Non-deciding events are shard-local by construction (the same
//     property the conservative engine exploits to dispatch them
//     outside the mutex), so shards run them speculatively, far past
//     each other's clocks, with no synchronization at all.
//   - Deciding events (and alias-promoted handoffs) still execute one
//     at a time under global quiescence, in timestamp order, exactly
//     like a conservative claim. Before each commit every shard that
//     sped past the decision time is rolled back to just below it, so
//     the decision observes precisely the state a serial run would.
//
// Rollback rides the checkpoint contract from PR 5 and the delta
// encoder from PR 6: each shard keeps a small stack of incremental
// snapshots (the registered state codecs, concatenated; older stack
// entries are reverse-delta-compressed against their newer neighbor),
// taken every snapEvery events while speculating. Undo is: reset the
// event queues, decode the codec sections positionally, truncate the
// per-event logs, then re-execute the restored queue up to the commit
// time. Speculative events never send cross-shard messages — sends
// originate only from deciding dispatches, which never speculate — so
// queue restoration is the entire anti-message machinery: there is
// nothing in flight to cancel.
//
// Two horizons bound each speculation burst, both computed at
// quiescence from the same fences the conservative engine publishes:
//
//	safe_i = min over peers j != i of publishedFence(j)
//	cap    = min(min fence + window, td)
//
// safe_i deliberately excludes shard i's own fence: a shard parks at
// its own deciding heads, and decisions it arms dynamically enter its
// own queue ahead of it in time order, so the only commits that can
// ever roll shard i back belong to its peers — each bounded below by
// that peer's fence at every earlier instant. Events below safe_i are
// therefore commit-certain and need no snapshots; events in
// [safe_i, cap) are speculative and snapshot-protected. The cap never
// crosses td, the earliest known decision time: a quiescent commit at
// td undoes every shard that reached it and spawns follow-up decisions
// only at or after it, so speculation past td is guaranteed waste.
// Rollbacks are thereby confined to decisions that did not exist when
// the burst launched — suspension decisions and wait timeouts armed
// inside the minDyn window by a peer's own speculation. The adaptive
// window on top of the fences halves when a commit had to undo work
// and doubles after a run of clean commits.
//
// On a single P (GOMAXPROCS=1) speculation cannot overlap with any
// other work, so its insurance cost — a snapshot before every at-risk
// event — buys nothing. The coordinator then runs bursts inline and
// clamps each shard to its certain region: cap_i = safe_i, no
// snapshots, no rollbacks, ever. Progress still holds: if no shard can
// drain, the lowest queue head is blocked by a peer's decideFence or
// promoted handoff (the minDyn fence terms sit strictly above the
// lowest head), which makes td committable, and the loop commits
// instead of bursting.
//
// The global virtual time of classic Time Warp is simply the last
// commit time: snapshot stacks never span a commit (every deciding
// commit clears them — its message deliveries and its gseq increment
// both invalidate older queue captures), so all retained state is
// newer than GVT by construction and no separate GVT pass is needed.
//
// Determinism: commits replay the conservative engine's claim
// discipline — same gseq increments, same phase stamping, same
// (Time, G, Idx)-sorted barrier deliveries, same ambiguous-tie flags —
// so the merged result is bit-identical to the serial engine whenever
// the conservative engine's is, and the same measure-zero tie cases
// are flagged instead of silently ordered.
//
// While a cross-site aliased job is machine-attached (w.aliasLive > 0)
// handoffs everywhere become deciding and may mutate remote machine
// state, so speculation pauses: cap collapses to safe and every stack
// is cleared. Progress then degrades to fence-bounded bursts plus
// serialized commits, which is still exact — and once the last aliased
// job detaches (the ledger retires the risk, see world.aliasLive),
// handoffs demote back to shard-local events and speculation resumes.

// optEntry is one incremental rollback snapshot: the shard's codec
// sections at a moment where sh.k.now == clock and the head of its
// queue was about to execute. Entries older than the newest are
// stored as reverse deltas against their next-newer neighbor.
type optEntry struct {
	clock    float64
	roundLen int // len(par.roundTimes) at capture, for log truncation
	data     []byte
	isDelta  bool
}

// optShard is the optimistic engine's per-shard bookkeeping. Its
// presence (shard.opt != nil) also switches the accounting and
// placement codecs into light mode: append-only logs shrink to a
// truncation length and the job loop narrows to the records this
// shard's speculation can actually mutate.
type optShard struct {
	// capT/safeT are published by the coordinator at quiescence and
	// copied by the worker before each burst: events at or above capT
	// wait for the next commit; events below safeT are commit-certain
	// and execute without snapshot protection.
	capT, safeT float64

	stack     []optEntry
	sinceSnap int // events executed since the newest stack entry

	// finMax is the latest completion time this shard has logged (and
	// not rolled back): the incremental form of scanning roundFin for
	// the run's last finish. Rollback truncation rescans the surviving
	// log prefix when the truncated suffix could have held the maximum.
	finMax float64

	encBuf []byte // snapshot encoder scratch, reused across captures

	// bufPool recycles stack-entry buffers (raw captures and delta op
	// streams alike) between bursts: every deciding commit clears all
	// stacks, so without reuse each speculative burst re-allocates its
	// whole snapshot footprint. deltaIdx is the delta encoder's block
	// index, reused the same way.
	bufPool  [][]byte
	deltaIdx map[uint32]int32

	// inTransit is stashed by the core codec's queue save (which runs
	// first) for the placement codec's capture scope: jobs with a
	// pending arrive event are mutated by speculative arrival even
	// though no pool structure holds them yet.
	inTransit []int
	// scopeIdx/scopeSeen are the placement codec's capture-scope
	// scratch (see placementSys.jobScope).
	scopeIdx  []int
	scopeSeen []bool
}

// optCoord drives the engine: persistent per-shard burst workers on
// one condvar, and a serial coordinator that alternates between
// resuming bursts and committing decisions under quiescence.
type optCoord struct {
	w      *world
	shards []*shard

	mu      sync.Mutex
	cond    *sync.Cond
	gen     int // burst generation; workers run one burst per increment
	running int
	stop    bool
	aborted bool
	err     error

	// Serial-side state (coordinator goroutine only, or quiescent).
	ties      bool
	gseq      uint64
	kSubmit   int
	kSnapshot int
	batch     []eventq.Delivery

	// Adaptive speculation: window is the time width shards may run
	// past the fence-safe horizon, snapEvery the event cadence of
	// rollback snapshots inside that window. Both halve when a commit
	// undid speculative work and grow back after clean commits.
	delta     float64
	window    float64
	snapEvery int
	clean     int
	wasted    int // speculative events undone since the last deciding commit

	// groupHist accumulates Result.GroupCommitSize: log2-bucketed run
	// lengths of the quiescent commit drain.
	groupHist []int64

	// rolls counts this run's rollbacks for Result.Rollbacks; plain
	// int because rollbacks happen only under global quiescence on the
	// coordinator goroutine. tk is the coordinator timeline lane (nil
	// when tracing is off) — rollbacks and commit drains render there
	// because they, too, run only at quiescence.
	rolls int64
	tk    *obs.Track

	// Per-shard fence caches for the commit drain, refilled by each
	// quiescent pass and thereafter recomputed only for shards whose
	// queues a commit actually changed: most retired heads touch the
	// decider's queues alone, so re-peeking every peer per commit is
	// pure waste. Staleness detection is by the queues' monotone
	// mutation counters, which a commit cannot bypass — even the
	// cross-shard paths (outbox deliveries, a deciding dispatch
	// canceling a peer's pending event through its evRef) go through
	// counted queue operations. Cross-shard alias-risk side effects
	// (noteAway on a peer) change only the aliasRisk gate, which the
	// drain reads live, never a cached value.
	qMuts  []uint64
	qNext  []float64 // main-queue head time (or +inf)
	dFence []float64 // decideFence(): shadow decide head / chain submit
	hoff   []float64 // nextHandoff(): shadow handoff head (or +inf)
}

// shardMuts sums shard i's queue mutation counters: an unchanged sum
// between two quiescent instants proves all three pending sets — and
// hence every cached fence value — are unchanged. (nextChainSubmit is
// covered too: it only advances when the shard dispatches a submit,
// which pops the main queue.)
func (c *optCoord) shardMuts(i int) uint64 {
	k := c.shards[i].k
	m := k.q.Muts()
	if k.decideQ != nil {
		m += k.decideQ.Muts()
	}
	if k.handoffQ != nil {
		m += k.handoffQ.Muts()
	}
	return m
}

// refreshFenceCache recomputes shard i's cached queue heads.
func (c *optCoord) refreshFenceCache(i int) {
	sh := c.shards[i]
	t, ok := sh.k.q.NextTime()
	if !ok {
		t = inf
	}
	c.qNext[i] = t
	c.dFence[i] = sh.decideFence()
	c.hoff[i] = sh.k.nextHandoff()
	c.qMuts[i] = c.shardMuts(i)
}

// cachedFence is publishedFence computed from the caches: exact (not
// just conservative) whenever shard i's mutation counters still match
// c.qMuts[i], since every fence source is cached and the alias gate is
// read live.
func (c *optCoord) cachedFence(i int) float64 {
	sh := c.shards[i]
	f := c.dFence[i]
	if sh.aliasRisk > 0 || sh.w.aliasLive > 0 {
		if h := c.hoff[i]; h < f {
			f = h
		}
	}
	if t := c.qNext[i] + sh.w.minDyn; t < f {
		f = t
	}
	return f
}

// optSnapshots and optRollbacks count snapshot pushes and rollbacks
// across every optimistic run in the process. They exist for tests,
// which assert that the Time Warp machinery genuinely engages when
// speculation is forced on; both atomic adds sit on paths that copy or
// decode whole codec sections, so their cost is noise.
var (
	optSnapshots atomic.Int64
	optRollbacks atomic.Int64
)

// optUncapped removes the speculation cap at the earliest known
// decision time td. Production never wants that — a quiescent commit
// at td undoes every shard that ran to or past it, so uncapped bursts
// buy nothing but rollbacks — which is exactly why tests set it (with
// the worker path forced): it drives systematic rollbacks through the
// full snapshot/restore/replay cycle on ordinary workloads.
var optUncapped = false

func (c *optCoord) fail(err error) {
	c.mu.Lock()
	if !c.aborted {
		c.aborted, c.err = true, err
	}
	c.mu.Unlock()
}

// runBurst speculatively drains one shard: non-deciding events below
// capT execute lock-free (they touch only this shard's state), with a
// rollback snapshot pushed before the first event at or above safeT
// and then every snapEvery events. The burst parks at the cap, at a
// deciding-classified head, or past MaxTime; the coordinator decides
// what happens next.
func (c *optCoord) runBurst(sh *shard, capT, safeT float64) {
	o := sh.opt
	k := sh.k
	w := c.w
	ctx := w.cfg.Context
	w.met.bursts.Add(1)
	if tk := sh.trace; tk != nil {
		bt0 := tk.Now()
		ev0 := len(sh.par.roundTimes)
		defer func() {
			// Parked bursts (head already at the cap) stay off the
			// timeline; only bursts that executed something render.
			if n := len(sh.par.roundTimes) - ev0; n > 0 {
				tk.Span("burst", bt0, obs.Arg{Key: "events", Val: int64(n)})
			}
		}()
	}
	for {
		ev, ok := k.q.Peek()
		if !ok || ev.Time >= capT || ev.Time > w.cfg.MaxTime {
			return
		}
		t := ev.Time
		if t < k.now {
			c.fail(fmt.Errorf("sim: event time went backwards: %v -> %v", k.now, t))
			return
		}
		if k.decides(ev.Kind) || ((sh.aliasRisk > 0 || w.aliasLive > 0) && k.isHandoff(ev.Kind)) {
			return
		}
		if t >= safeT && (len(o.stack) == 0 || o.sinceSnap >= c.snapEvery) {
			c.pushSnapshot(sh)
		}
		ev, _ = k.q.Pop()
		if k.isHandoff(ev.Kind) {
			k.handoffQ.Pop()
		}
		k.now = t
		sh.acct.advanceTo(t)
		err := k.dispatch(ev)
		fin := int32(-1)
		if ev.Kind == int(sh.place.finish) {
			fin = int32(ev.A)
		}
		k.releaseRef(ev)
		sh.par.roundTimes = append(sh.par.roundTimes, t)
		sh.par.roundFin = append(sh.par.roundFin, fin)
		if fin >= 0 && t > o.finMax {
			o.finMax = t
		}
		o.sinceSnap++
		if err != nil {
			c.fail(fmt.Errorf("sim: t=%v: %w", t, err))
			return
		}
		if sh.par.polls++; ctx != nil && sh.par.polls&63 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				c.fail(fmt.Errorf("sim: canceled at t=%v: %w", t, cerr))
				return
			}
		}
	}
}

// pushSnapshot captures the shard's codec sections onto its rollback
// stack. The previously-newest entry is reverse-delta-compressed
// against the fresh capture when that wins: restores walk the stack
// newest-to-target applying deltas, so only the newest entry must
// stay raw.
func (c *optCoord) pushSnapshot(sh *shard) {
	o := sh.opt
	e := snapEncoder{buf: o.encBuf[:0]}
	for _, cd := range sh.k.codecs {
		cd.save(&e)
	}
	o.encBuf = e.buf
	data := append(o.getBuf(), e.buf...)
	if n := len(o.stack); n > 0 {
		prev := &o.stack[n-1]
		if !prev.isDelta {
			dl := encodeSnapshotDeltaInto(o.getBuf(), &o.deltaIdx, data, prev.data, sh.k.now, prev.clock, 0, 0)
			if len(dl) < len(prev.data) {
				o.putBuf(prev.data)
				prev.data, prev.isDelta = dl, true
			} else {
				o.putBuf(dl)
			}
		}
	}
	optSnapshots.Add(1)
	c.w.met.snapshots.Add(1)
	sh.trace.Instant("snapshot")
	o.stack = append(o.stack, optEntry{
		clock:    sh.k.now,
		roundLen: len(sh.par.roundTimes),
		data:     data,
	})
	o.sinceSnap = 0
}

// getBuf takes a recycled buffer (length 0, capacity warm) off the
// shard's pool, or returns nil — append semantics make the two
// interchangeable.
func (o *optShard) getBuf() []byte {
	if n := len(o.bufPool); n > 0 {
		b := o.bufPool[n-1][:0]
		o.bufPool[n-1] = nil
		o.bufPool = o.bufPool[:n-1]
		return b
	}
	return nil
}

// putBuf returns a stack-entry buffer to the pool. The cap bounds the
// retained footprint to roughly one burst's snapshot stack.
func (o *optShard) putBuf(b []byte) {
	if cap(b) == 0 || len(o.bufPool) >= 16 {
		return
	}
	o.bufPool = append(o.bufPool, b)
}

func (c *optCoord) clearStack(sh *shard) {
	o := sh.opt
	for i := range o.stack {
		o.putBuf(o.stack[i].data)
		o.stack[i].data = nil
	}
	o.stack = o.stack[:0]
	o.sinceSnap = 0
}

// rollback undoes a shard's speculation past a commit at td: restore
// the newest stack entry strictly below td (the oldest entry, always
// commit-clean, catches the boundary case clock == td), then re-run
// the restored queue up to — but excluding — td. Replay re-executes
// events with their original phase (restored by the core codec) and
// the original queue sequence numbers, so every re-derived rank is
// bit-identical to the first execution.
func (c *optCoord) rollback(sh *shard, td float64) error {
	o := sh.opt
	k := sh.k
	rt0 := c.tk.Now()
	if len(o.stack) == 0 {
		// Legal only for a shard whose clock is exactly td with nothing
		// speculated since: the decider of an earlier commit at the
		// same timestamp. Anything else lost its undo anchor.
		if k.now > td {
			return fmt.Errorf("sim: internal: shard %d at t=%v beyond commit t=%v with no rollback snapshot",
				sh.index, k.now, td)
		}
		return nil
	}
	ti := -1
	for i := len(o.stack) - 1; i >= 0; i-- {
		if o.stack[i].clock < td {
			ti = i
			break
		}
	}
	if ti < 0 {
		// The oldest entry is the burst anchor: everything it captured
		// was committed, so clock == td means "state right after an
		// earlier same-time commit" and is exact, not speculative.
		ti = 0
		if o.stack[0].clock > td {
			return fmt.Errorf("sim: internal: shard %d oldest snapshot at t=%v beyond commit t=%v",
				sh.index, o.stack[0].clock, td)
		}
	}
	data := o.stack[len(o.stack)-1].data
	for i := len(o.stack) - 2; i >= ti; i-- {
		if o.stack[i].isDelta {
			var err error
			if data, err = ApplySnapshotDelta(data, o.stack[i].data); err != nil {
				return fmt.Errorf("sim: rollback snapshot chain (shard %d): %w", sh.index, err)
			}
		} else {
			data = o.stack[i].data
		}
	}
	undone := len(sh.par.roundTimes) - o.stack[ti].roundLen

	k.q.Reset()
	k.decideQ.Reset()
	k.handoffQ.Reset()
	d := &snapDecoder{data: data}
	for _, cd := range k.codecs {
		if err := cd.load(d); err != nil {
			return fmt.Errorf("sim: rollback restore (shard %d, %s): %w", sh.index, cd.name, err)
		}
	}
	if d.off != len(data) {
		return fmt.Errorf("sim: rollback restore (shard %d): %d trailing bytes", sh.index, len(data)-d.off)
	}
	ent := &o.stack[ti]
	sh.par.roundTimes = sh.par.roundTimes[:ent.roundLen]
	sh.par.roundFin = sh.par.roundFin[:ent.roundLen]
	if o.finMax >= ent.clock {
		// The truncated suffix (all events at or above the snapshot
		// clock) could have held the latest completion; rescan the
		// surviving prefix.
		o.finMax = math.Inf(-1)
		for pos, fin := range sh.par.roundFin {
			if fin >= 0 && sh.par.roundTimes[pos] > o.finMax {
				o.finMax = sh.par.roundTimes[pos]
			}
		}
	}
	sh.rebuildAliasRisk()
	o.stack = o.stack[:ti+1]
	o.stack[ti].data, o.stack[ti].isDelta = data, false
	o.sinceSnap = 0

	// Replay the commit-certain prefix. The fences guarantee no
	// deciding-classified event below td, and nothing here needs
	// snapshot protection: it can never be undone again.
	for {
		ev, ok := k.q.Peek()
		if !ok || ev.Time >= td {
			break
		}
		if k.decides(ev.Kind) || ((sh.aliasRisk > 0 || c.w.aliasLive > 0) && k.isHandoff(ev.Kind)) {
			return fmt.Errorf("sim: internal: deciding event at t=%v below commit t=%v during replay",
				ev.Time, td)
		}
		ev, _ = k.q.Pop()
		if k.isHandoff(ev.Kind) {
			k.handoffQ.Pop()
		}
		k.now = ev.Time
		sh.acct.advanceTo(ev.Time)
		err := k.dispatch(ev)
		fin := int32(-1)
		if ev.Kind == int(sh.place.finish) {
			fin = int32(ev.A)
		}
		k.releaseRef(ev)
		sh.par.roundTimes = append(sh.par.roundTimes, ev.Time)
		sh.par.roundFin = append(sh.par.roundFin, fin)
		if fin >= 0 && ev.Time > o.finMax {
			o.finMax = ev.Time
		}
		o.sinceSnap++
		undone--
		if err != nil {
			return fmt.Errorf("sim: t=%v: %w", ev.Time, err)
		}
	}
	if undone > 0 {
		c.wasted += undone
	}
	optRollbacks.Add(1)
	c.rolls++
	c.w.met.rollbacks.Add(1)
	if undone > 0 {
		c.w.met.undone.Add(int64(undone))
	}
	if c.tk != nil {
		wasted := int64(0)
		if undone > 0 {
			wasted = int64(undone)
		}
		c.tk.Span("rollback", rt0,
			obs.Arg{Key: "shard", Val: int64(sh.index)},
			obs.Arg{Key: "undone", Val: wasted})
	}
	return nil
}

// commit executes exactly one event at td on the decider shard under
// global quiescence, after rolling every shard that speculated to or
// past td back below it. The head is usually the deciding event that
// defined td, but can be a same-time local ranked before it; either
// way the conservative engine's claim discipline is replayed: gseq
// and phase stamping, the ambiguous-tie flags of canDecide/canLocal,
// and (Time, G, Idx)-sorted barrier delivery of the decision's sends.
func (c *optCoord) commit(td float64, decider int) error {
	w := c.w
	for i, sh := range c.shards {
		if sh.k.now >= td {
			if err := c.rollback(sh, td); err != nil {
				return err
			}
			// Keep the fence caches fresh through the tie scan below:
			// the rollback rebuilt this shard's queues.
			c.refreshFenceCache(i)
		}
	}
	dsh := c.shards[decider]
	ev, ok := dsh.k.q.Peek()
	if !ok || ev.Time != td {
		return fmt.Errorf("sim: internal: shard %d commit head at t=%v, want t=%v",
			decider, ev.Time, td)
	}
	kd := ev.Kind
	deciding := dsh.k.decides(kd) || ((dsh.aliasRisk > 0 || w.aliasLive > 0) && dsh.k.isHandoff(kd))

	// Ambiguous-tie scan, mirroring the conservative claim checks: a
	// deciding commit flags any peer holding an event or a fence at
	// exactly td (canDecide's second pass, with its structural
	// start-tie exemption for the snapshot chains every shard seeds at
	// the trace start); a local commit flags only tied fences
	// (canLocal — same-time locals in different shards commute).
	for qi, sh := range c.shards {
		if qi == decider {
			continue
		}
		// Every call site reaches here with shard qi's fence caches
		// fresh (the quiescent pass or the drain rescan refilled them,
		// and the rollback loop above re-refreshed any shard it undid),
		// so the common no-tie case decides on cached values alone.
		if c.qNext[qi] > td && c.cachedFence(qi) > td {
			continue
		}
		qn, nextKind := inf, 0
		if pe, pok := sh.k.q.Peek(); pok {
			qn, nextKind = pe.Time, pe.Kind
		}
		fence := sh.publishedFence()
		switch {
		case deciding && (qn == td || fence == td):
			structural := td == w.start && kd == c.kSubmit &&
				nextKind == c.kSnapshot && fence > td
			if !structural {
				c.ties = true
			}
		case !deciding && fence == td:
			c.ties = true
		}
	}

	if deciding {
		c.gseq++
	}
	dsh.k.phase = c.gseq
	ev, _ = dsh.k.q.Pop()
	if dsh.k.decides(ev.Kind) {
		dsh.k.decideQ.Pop()
	} else if dsh.k.isHandoff(ev.Kind) {
		dsh.k.handoffQ.Pop()
	}
	dsh.k.now = td
	dsh.acct.advanceTo(td)
	err := dsh.k.dispatch(ev)
	fin := int32(-1)
	if ev.Kind == int(dsh.place.finish) {
		fin = int32(ev.A)
	}
	dsh.k.releaseRef(ev)
	sh := dsh
	sh.par.roundTimes = append(sh.par.roundTimes, td)
	sh.par.roundFin = append(sh.par.roundFin, fin)
	if fin >= 0 && td > sh.opt.finMax {
		sh.opt.finMax = td
	}
	if err != nil {
		return fmt.Errorf("sim: t=%v: %w", td, err)
	}

	if deciding {
		if err := c.deliverOutbox(dsh); err != nil {
			return err
		}
		// A committed decision invalidates every retained snapshot: its
		// deliveries are missing from older queue captures and its gseq
		// increment from older phase captures. Clearing all stacks here
		// is what pins GVT to the last commit.
		for _, sh := range c.shards {
			c.clearStack(sh)
		}
		c.adapt()
	} else {
		// A committed local invalidates only its own shard's captures.
		c.clearStack(dsh)
	}
	return nil
}

// deliverOutbox flushes the decider's cross-shard sends exactly like
// the conservative round barrier: one batched delivery per
// destination, pre-sorted into (Time, G, Idx) firing order. Every
// other outbox must be empty — speculative events are shard-local and
// never send — and a message there means the engine's safety argument
// is broken, so it is checked, not assumed.
func (c *optCoord) deliverOutbox(src *shard) error {
	for _, sh := range c.shards {
		if sh == src {
			continue
		}
		if sh.par.outboxN != 0 {
			return fmt.Errorf("sim: internal: shard %d buffered a cross-shard send outside a commit", sh.index)
		}
	}
	if src.par.outboxN == 0 {
		// The common case for a deciding commit that stayed local: the
		// drain loop retires long runs of these, so the flush must cost
		// nothing when there is nothing to flush.
		return nil
	}
	src.par.outboxN = 0
	for d := range c.shards {
		msgs := src.par.outbox[d]
		if len(msgs) == 0 {
			continue
		}
		batch := c.batch[:0]
		for _, m := range msgs {
			batch = append(batch, eventq.Delivery{
				Time: m.t, Kind: int(m.kind), A: m.a, B: m.b, G: m.g, Idx: m.idx,
			})
		}
		src.par.outbox[d] = src.par.outbox[d][:0]
		if len(batch) > 1 {
			sort.Slice(batch, func(i, j int) bool {
				if batch[i].Time != batch[j].Time {
					return batch[i].Time < batch[j].Time
				}
				if batch[i].G != batch[j].G {
					return batch[i].G < batch[j].G
				}
				return batch[i].Idx < batch[j].Idx
			})
		}
		c.shards[d].k.deliverBatch(batch)
		c.batch = batch[:0]
	}
	return nil
}

// noteGroupCommit buckets one quiescent drain of n consecutive commits
// into the log2 histogram behind Result.GroupCommitSize.
func (c *optCoord) noteGroupCommit(n int64) {
	b := bits.Len64(uint64(n)) - 1
	for len(c.groupHist) <= b {
		c.groupHist = append(c.groupHist, 0)
	}
	c.groupHist[b]++
}

// adapt retunes the speculation window after a deciding commit: undone
// work means the window outran the decision density, so both the
// window and the snapshot cadence tighten; a run of clean commits
// relaxes them again.
func (c *optCoord) adapt() {
	if c.wasted > 0 {
		c.wasted = 0
		c.clean = 0
		c.window = math.Max(c.window/2, c.delta)
		c.snapEvery = max(c.snapEvery/2, 16)
		return
	}
	if c.clean++; c.clean >= 4 {
		c.clean = 0
		c.window = math.Min(c.window*2, 1024*c.delta)
		c.snapEvery = min(c.snapEvery*2, 512)
	}
}

// runOptimistic is the engine entry point. The structure is: resume
// all shards for one speculative burst; at quiescence either commit
// the earliest possible decision (rolling back overshoot first) or,
// when none is pending, just widen the horizons and burst again. The
// run ends when every job is complete and no pending event could
// still precede the final completion.
func runOptimistic(w *world) (*Result, error) {
	delta := w.plat.MinCrossRTT()
	if delta <= 0 {
		// parallelizable() already demands positive cross-site RTTs;
		// this guards the engine's own invariant independently.
		return nil, fmt.Errorf("sim: optimistic engine requires positive cross-site lookahead, got %v", delta)
	}
	shards := make([]*shard, w.nSites)
	for s := range shards {
		shards[s] = newShard(w, s, []int{s}, true)
	}
	// Unlike the conservative engine, whose per-round logs truncate at
	// every barrier and append into warm storage, the optimistic logs
	// span the whole run (the merge and rollback truncation need them).
	// Go's large-slice append grows by ~1.25x, so growing a year-scale
	// log from nothing churns several times its final size; presizing
	// from the job count removes that churn for the typical event/job
	// ratio and degrades to plain growth beyond it.
	estLog := 8*len(w.specs)/len(shards) + 256
	for _, sh := range shards {
		sh.peers = shards
		if !sameKinds(shards[0].k, sh.k) {
			return nil, fmt.Errorf("sim: shard %d allocated a different event-kind table", sh.index)
		}
		sh.opt = &optShard{
			scopeSeen: make([]bool, len(w.jobs)),
			finMax:    math.Inf(-1),
		}
		sh.par.roundTimes = make([]float64, 0, estLog)
		sh.par.roundFin = make([]int32, 0, estLog)
	}
	c := &optCoord{
		w:         w,
		shards:    shards,
		kSubmit:   int(shards[0].place.submit),
		kSnapshot: int(shards[0].snaps.snapshot),
		delta:     delta,
		window:    8 * delta,
		snapEvery: 64,
	}
	c.cond = sync.NewCond(&c.mu)
	c.qMuts = make([]uint64, len(shards))
	c.qNext = make([]float64, len(shards))
	c.dFence = make([]float64, len(shards))
	c.hoff = make([]float64, len(shards))
	// Timeline lanes in deterministic order (coordinator first, shards
	// by index); all nil no-ops when tracing is off.
	c.tk = w.cfg.Trace.Track("coordinator")
	for _, sh := range shards {
		sh.trace = w.cfg.Trace.Track(fmt.Sprintf("shard %02d (site %d)", sh.index, sh.sites[0]))
	}
	pm := newProgressMeter(&w.cfg)
	for _, sh := range shards {
		sh.seed()
	}

	inline := runtime.GOMAXPROCS(0) == 1 || len(shards) == 1
	if !inline {
		var wg sync.WaitGroup
		for _, sh := range shards {
			wg.Add(1)
			go func(sh *shard) {
				defer wg.Done()
				last := 0
				for {
					c.mu.Lock()
					for !c.stop && c.gen == last {
						c.cond.Wait()
					}
					if c.stop {
						c.mu.Unlock()
						return
					}
					last = c.gen
					capT, safeT := sh.opt.capT, sh.opt.safeT
					c.mu.Unlock()
					c.runBurst(sh, capT, safeT)
					c.mu.Lock()
					if c.running--; c.running == 0 {
						c.cond.Broadcast()
					}
					c.mu.Unlock()
				}
			}(sh)
		}
		defer func() {
			c.mu.Lock()
			c.stop = true
			c.cond.Broadcast()
			c.mu.Unlock()
			wg.Wait()
		}()
	}

	total := len(w.specs)
	ctx := w.cfg.Context
	lastFin := inf
	for {
		// Quiescent: every worker parked, all shard state visible.
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at t=%v: %w", maxNow(shards), err)
			}
		}
		completed := 0
		for _, sh := range shards {
			completed += sh.completed
		}
		minNext := inf
		for i := range shards {
			c.refreshFenceCache(i)
			if c.qNext[i] < minNext {
				minNext = c.qNext[i]
			}
		}
		if pm != nil {
			var evs int64
			for _, sh := range shards {
				evs += int64(len(sh.par.roundTimes))
			}
			pm.maybe(maxNow(shards), evs, c.rolls)
		}
		w.met.sampleQueues(shards)
		if completed >= total {
			// Recomputed each pass from the per-shard incremental maxima
			// (rollback truncation keeps them honest): a rollback can
			// undo a speculative completion, so neither the count nor the
			// makespan is monotone until the run actually ends.
			lastFin = math.Inf(-1)
			for _, sh := range shards {
				if sh.opt.finMax > lastFin {
					lastFin = sh.opt.finMax
				}
			}
			if minNext > lastFin {
				// Mirrors the conservative final round: events at
				// exactly the makespan still execute (and feed the
				// owner/tie accounting in mergeParallel); everything
				// strictly beyond it is inert by the same argument that
				// lets the round engine drain past the cap.
				break
			}
		} else {
			if math.IsInf(minNext, 1) {
				return nil, fmt.Errorf("sim: deadlock at t=%v: %d of %d jobs completed and no pending events",
					maxNow(shards), completed, total)
			}
			if minNext > w.cfg.MaxTime {
				return nil, fmt.Errorf("sim: exceeded MaxTime %v with %d of %d jobs incomplete",
					w.cfg.MaxTime, total-completed, total)
			}
		}

		// The earliest event the global order must serialize: pending
		// deciding events (decideFence covers queued decisions and the
		// chain submits that are not queued yet but have exact times),
		// plus promoted handoffs under alias risk. Unlike the published
		// fence there is no minDyn term — a commit target must be an
		// event that exists.
		td := inf
		decider := -1
		for i, sh := range shards {
			cand := c.dFence[i]
			if sh.aliasRisk > 0 || w.aliasLive > 0 {
				if h := c.hoff[i]; h < cand {
					cand = h
				}
			}
			if cand < td {
				td, decider = cand, i
			}
		}
		if decider >= 0 && minNext >= td {
			// Every event below td has executed, so the decision
			// observes exactly the serial prefix. Group-commit drain:
			// instead of paying a full quiescence pass per retired head,
			// keep committing while the next global head is itself a
			// committable decision. The run is sound on committed state
			// throughout: the first commit rolled back every shard at or
			// past td, each successive target satisfies td' >= td with
			// minNext >= td', and no shard runs between commits, so no
			// speculative state at or past a commit target can exist —
			// every later commit in the run observes exactly the serial
			// prefix with no further rollbacks. Each dispatch can still
			// cancel the decision that defined td, spawn a new earlier
			// one, or complete the run; the re-scan below catches all
			// three and ends the run when the head stops being
			// committable.
			gt0 := c.tk.Now()
			run := int64(0)
			for {
				if err := c.commit(td, decider); err != nil {
					return nil, err
				}
				if run++; run&63 == 0 && ctx != nil {
					if err := ctx.Err(); err != nil {
						return nil, fmt.Errorf("sim: canceled at t=%v: %w", maxNow(shards), err)
					}
				}
				completed = 0
				for _, sh := range shards {
					completed += sh.completed
				}
				if completed >= total {
					break
				}
				// Incremental rescan: the commit changed at most a few
				// shards' queues (typically just the decider's); every
				// shard whose mutation counters are unchanged still has
				// exact cached heads.
				for i := range shards {
					if c.shardMuts(i) != c.qMuts[i] {
						c.refreshFenceCache(i)
					}
				}
				minNext = inf
				for i := range shards {
					if c.qNext[i] < minNext {
						minNext = c.qNext[i]
					}
				}
				if minNext > w.cfg.MaxTime {
					// Deadlock and MaxTime overruns report through the
					// quiescent pass, with its exact error wording.
					break
				}
				td, decider = inf, -1
				for i, sh := range shards {
					cand := c.dFence[i]
					if sh.aliasRisk > 0 || w.aliasLive > 0 {
						if h := c.hoff[i]; h < cand {
							cand = h
						}
					}
					if cand < td {
						td, decider = cand, i
					}
				}
				if decider < 0 || minNext < td {
					break
				}
			}
			c.noteGroupCommit(run)
			w.met.drains.Add(1)
			w.met.groupSize.Observe(run)
			if c.tk != nil {
				c.tk.Span("group-commit", gt0, obs.Arg{Key: "commits", Val: run})
			}
			continue
		}

		// No committable decision: burst. safe is the fence-safe bound
		// (nothing below it can ever be rolled back); the adaptive
		// window on top is pure speculation — but never past td. A
		// quiescent commit at td rolls back every shard that reached it,
		// and decisions spawned by the commit land at or after td, so
		// running past the earliest known decision is guaranteed waste.
		// Parking the burst there confines rollbacks to decisions that
		// do not exist yet (armed inside the minDyn window during this
		// very burst).
		// safe is per shard, and deliberately excludes the shard's own
		// fence: a shard parks at its own deciding heads (and its own
		// dynamically-armed decisions enter its own queue ahead of it,
		// in time order), so the only commits that can ever roll shard
		// i back are decisions owned or armed by its peers — each of
		// which is bounded below by that peer's published fence at any
		// earlier instant. min/second-min over the fences gives every
		// shard its exclusive-of-self bound in one pass.
		min1, min2, minIdx := inf, inf, -1
		for i := range shards {
			// The caches are exactly the quiescent pass's refresh above;
			// nothing between there and here touches a queue.
			f := c.cachedFence(i)
			if f < min1 {
				min1, min2, minIdx = f, min1, i
			} else if f < min2 {
				min2 = f
			}
		}
		specW := c.window
		if w.aliasLive > 0 {
			specW = 0
		}
		capAll := min1 + specW
		if td < capAll && !optUncapped {
			capAll = td
		}
		for i, sh := range shards {
			safeT := min1
			if i == minIdx {
				safeT = min2
			}
			capT := capAll
			if inline {
				// On a single P speculation cannot overlap with any
				// other work, so its insurance — the snapshot before
				// every at-risk event — is pure cost. Advance certain
				// work only: nothing below safeT can ever be rolled
				// back, so no shard ever pushes a snapshot. Progress
				// still holds without speculating: if no shard can
				// drain (every queue head at or past its bound), the
				// lowest head qm is blocked by some peer's fence, and a
				// fence at or below qm can only come from that peer's
				// decideFence or promoted handoff (the minDyn terms all
				// sit strictly above qm) — both of which feed td, so
				// td <= minNext and the next pass commits instead of
				// bursting.
				capT = safeT
			}
			sh.opt.safeT = safeT
			sh.opt.capT = capT
			sh.k.phase = c.gseq
		}
		if inline {
			// Single-P (or single-shard) runs gain nothing from the
			// worker pool, and the condvar round-trip per burst would
			// dominate the events themselves. The coordinator owns all
			// shard state at quiescence, so it runs the bursts itself,
			// back to back.
			for _, sh := range shards {
				c.runBurst(sh, sh.opt.capT, sh.opt.safeT)
			}
			if c.aborted {
				return nil, c.err
			}
			continue
		}
		c.mu.Lock()
		c.running = len(shards)
		c.gen++
		c.cond.Broadcast()
		for c.running > 0 {
			c.cond.Wait()
		}
		aborted, err := c.aborted, c.err
		c.mu.Unlock()
		if aborted {
			return nil, err
		}
	}

	// Every sample tick strictly below the makespan is final; the
	// merge truncates there exactly like the serial sampler's death.
	for _, sh := range shards {
		sh.acct.flushTo(lastFin)
	}
	res, err := mergeParallel(w, shards, 0, &coordinator{ties: c.ties})
	if err != nil {
		return nil, err
	}
	res.GroupCommitSize = c.groupHist
	res.Rollbacks = c.rolls
	w.met.events.Add(res.Events)
	return res, nil
}
