package sim

// Optimistic-engine determinism and robustness: Time Warp execution
// must be bit-identical to the serial reference wherever the
// conservative engine is (random federations, faults, cancellation,
// MaxTime parity), and its speculation machinery — rollback, commit
// fences, adaptive windows — must actually engage on workloads with
// cross-site traffic rather than degenerating to lockstep.

import (
	"context"
	"math/rand/v2"
	"runtime"
	"testing"
	"testing/quick"
	"time"

	"netbatch/internal/cluster"
	"netbatch/internal/job"
)

func TestOptimisticMatchesSerialRandomFederations(t *testing.T) {
	runs, skips := 0, 0
	cfgQuick := &quick.Config{MaxCount: 24}
	err := quick.Check(func(seed uint64, polPick, selPick uint8, staleness uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		base := Config{
			Platform:          plat,
			Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
			Policy:            multiSitePolicyForIndex(int(polPick), seed),
			UtilStaleness:     float64(staleness % 40),
			CheckConservation: true,
		}
		serialRes, err := Run(base, specs)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}
		opt := base
		opt.Engine = EngineOptimistic
		opt.Initial = federatedInitial(siteSelectorForIndex(int(selPick)))
		opt.Policy = multiSitePolicyForIndex(int(polPick), seed)
		optRes, err := Run(opt, specs)
		if err != nil {
			t.Logf("optimistic: %v", err)
			return false
		}
		runs++
		if optRes.ambiguousTies {
			skips++
			t.Logf("seed %d: ambiguous tie observed, skipping comparison", seed)
			return true
		}
		a, b := fingerprint(serialRes), fingerprint(optRes)
		if a != b {
			t.Logf("seed %d sel %d pol %d: serial and optimistic results differ:\n%s",
				seed, selPick%3, polPick%4, firstDiff(a, b))
			return false
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
	if runs > 0 && skips == runs {
		t.Errorf("all %d runs skipped as ambiguous ties: bit-identity was never actually compared", runs)
	}
}

// TestEngineFallbackDegeneratePlatforms pins the Δ=0 edge for both
// partitioned engines: a single-site platform, a federation with one
// zero-RTT cross-site pair, and a decision delay exceeding the
// lookahead all make parallelizable() false, and Run must route them
// to the serial kernel — producing bit-identical results, never
// spinning a zero-width round loop or rejecting the config.
func TestEngineFallbackDegeneratePlatforms(t *testing.T) {
	sites := func(rtt [][]float64) *cluster.Platform {
		configs := make([]cluster.PoolConfig, len(rtt))
		for s := range configs {
			configs[s] = cluster.PoolConfig{
				Site:    string(rune('A' + s)),
				Classes: []cluster.MachineClass{{Count: 2, Cores: 1, MemMB: 8192, Speed: 1.0}},
			}
		}
		p, err := cluster.Build(configs)
		if err != nil {
			t.Fatal(err)
		}
		if p, err = p.WithRTT(rtt); err != nil {
			t.Fatal(err)
		}
		return p
	}
	cases := []struct {
		name string
		cfg  func() Config
	}{
		{"single-site", func() Config { return baseConfig(miniPlatform(t, 2, 2)) }},
		{"zero-rtt-pair", func() Config {
			// Sites A, B, C with the A<->B delay degenerate at zero:
			// one bad edge is enough to void the whole lookahead.
			cfg := baseConfig(sites([][]float64{
				{0, 0, 5},
				{0, 0, 5},
				{5, 5, 0},
			}))
			cfg.Initial = federatedInitial(siteSelectorForIndex(0))
			return cfg
		}},
		{"decision-delay-exceeds-lookahead", func() Config {
			cfg := baseConfig(sites([][]float64{
				{0, 5},
				{5, 0},
			}))
			cfg.Initial = federatedInitial(siteSelectorForIndex(0))
			cfg.DecisionDelay = 10
			return cfg
		}},
	}
	specs := []job.Spec{
		lowJob(1, 0, 100, 0, 1),
		lowJob(2, 1.5, 80, 0, 1),
		highJob(3, 2.5, 50, 0),
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			serialRes, err := Run(tc.cfg(), specs)
			if err != nil {
				t.Fatal(err)
			}
			for _, engine := range []string{EngineParallel, EngineOptimistic} {
				cfg := tc.cfg()
				cfg.Engine = engine
				res, err := Run(cfg, specs)
				if err != nil {
					t.Fatalf("%s: %v", engine, err)
				}
				if fingerprint(serialRes) != fingerprint(res) {
					t.Fatalf("%s fallback differs from serial", engine)
				}
			}
		})
	}
}

// TestOptimisticRollbackMachinery drives the full Time Warp cycle —
// snapshot push, restore through the reverse-delta chain, replay —
// hard, and proves it invisible. In production the burst cap at the
// earliest known decision time makes rollbacks rare (only decisions
// armed mid-burst trigger them), and single-P runs avoid speculation
// entirely; this test forces the worker path and removes the cap, so
// every deciding commit rolls overshooting shards back, on workloads
// whose serial fingerprints are known. Identical results plus nonzero
// rollback counters mean the machinery both engaged and healed.
func TestOptimisticRollbackMachinery(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	optUncapped = true
	defer func() { optUncapped = false }()
	snaps0, rolls0 := optSnapshots.Load(), optRollbacks.Load()

	compared := 0
	for seed := uint64(1); seed <= 6; seed++ {
		r := rand.New(rand.NewPCG(seed, seed*0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Fatalf("seed %d: workload: %v", seed, err)
		}
		base := Config{
			Platform:          plat,
			Initial:           federatedInitial(siteSelectorForIndex(int(seed % 3))),
			Policy:            multiSitePolicyForIndex(int(seed%4), seed),
			UtilStaleness:     float64(seed * 5 % 40),
			CheckConservation: true,
		}
		serialRes, err := Run(base, specs)
		if err != nil {
			t.Fatalf("seed %d: serial: %v", seed, err)
		}
		opt := base
		opt.Engine = EngineOptimistic
		opt.Initial = federatedInitial(siteSelectorForIndex(int(seed % 3)))
		opt.Policy = multiSitePolicyForIndex(int(seed%4), seed)
		optRes, err := Run(opt, specs)
		if err != nil {
			t.Fatalf("seed %d: optimistic: %v", seed, err)
		}
		if optRes.ambiguousTies {
			t.Logf("seed %d: ambiguous tie observed, skipping comparison", seed)
			continue
		}
		compared++
		if a, b := fingerprint(serialRes), fingerprint(optRes); a != b {
			t.Fatalf("seed %d: uncapped speculation diverged from serial:\n%s", seed, firstDiff(a, b))
		}
	}
	if compared == 0 {
		t.Fatal("every workload skipped as ambiguous: rollback bit-identity was never compared")
	}
	if snaps := optSnapshots.Load() - snaps0; snaps == 0 {
		t.Error("no rollback snapshots were pushed: speculation never left the certain region")
	}
	if rolls := optRollbacks.Load() - rolls0; rolls == 0 {
		t.Error("no rollbacks occurred: the uncapped window never overshot a commit")
	}
}

// TestOptimisticCancelNoLeak pins prompt cancellation return and
// goroutine hygiene for the speculative workers, mirroring the
// conservative engine's test.
func TestOptimisticCancelNoLeak(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err = Run(Config{
		Platform: plat,
		Initial:  federatedInitial(siteSelectorForIndex(0)),
		Policy:   multiSitePolicyForIndex(1, 7),
		Engine:   EngineOptimistic,
		Context:  ctx,
	}, specs)
	if err == nil {
		t.Fatal("expected cancellation error")
	}
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before && time.Now().Before(deadline) {
		time.Sleep(10 * time.Millisecond)
	}
	if g := runtime.NumGoroutine(); g > before {
		t.Fatalf("goroutines leaked: %d before, %d after", before, g)
	}
}
