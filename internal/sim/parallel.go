package sim

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"netbatch/internal/eventq"
	"netbatch/internal/obs"
	"netbatch/internal/stats"
)

// This file is the partitioned engine: a conservative parallel
// discrete-event simulation that runs one shard (kernel + subsystem
// state) per site on its own goroutine and produces results
// bit-identical to the serial reference loop.
//
// Two mechanisms compose (see docs/ARCHITECTURE.md for the full
// argument):
//
//  1. Closed rounds with lookahead. Every cross-site event — a
//     cross-site submit dispatch, a cross-site reschedule arrival —
//     carries at least the inter-site RTT of delay, so with
//     Δ = min cross-site RTT, a round that starts at the global
//     minimum next-event time N can let every shard process all its
//     events in [N, N+Δ) knowing no message generated inside the
//     round can land inside it. Cross-shard messages accumulate in
//     per-shard outboxes and are delivered at the round barrier.
//
//  2. Decision fences inside a round. Deciding events (submission,
//     suspension decisions, wait-timeout reschedules) consult shared
//     scheduler/policy state (round-robin rotations, policy RNG
//     streams) and may read any site's live pool state through the
//     view, so they must execute in global timestamp order with every
//     other shard quiescent at a later time. Each shard publishes the
//     timestamp of its earliest pending (or future chained) deciding
//     event; a shard may process a non-deciding event at t only while
//     t is strictly below every other shard's fence, and may process a
//     deciding event at t only when every other shard is idle with no
//     pending event before t. Non-deciding events of different shards
//     touch disjoint state and run concurrently between fences.
//
// Exact cross-shard timestamp ties cannot be ordered the way the
// serial loop's scheduling-order tie-break does; they are resolved
// deterministically (decider first, then lower shard index) and
// flagged in Result.ambiguousTies. Such ties are measure-zero for the
// float-valued synthetic traces; the one structural tie — the first
// submission and the initial snapshot refreshes share the trace's
// start time — is provably ordered (the serial engine schedules the
// submission first) and is not flagged.

// outMsg is one cross-shard event awaiting barrier delivery: the inline
// payload words plus the (creating decision g, send index idx) pair for
// tie ranking. The destination shard is encoded by which per-dest
// buffer holds the message (parShard.outbox).
type outMsg struct {
	t    float64
	kind kind
	a, b int64
	g    uint64
	idx  uint64
}

// busyShift is one busy-core mutation a shard applied to a machine at
// another site (see shard.addBusy): run-scoped, used by the series
// merge to move the sample attribution from the executing shard to the
// machine's site.
type busyShift struct {
	t     float64
	exec  int
	site  int
	delta int32
}

// parShard is the per-shard parallel bookkeeping.
type parShard struct {
	// outbox holds this round's outgoing cross-shard messages, one
	// buffer per destination shard. Buffers are truncated (not freed) at
	// each barrier, so steady-state rounds append into warm storage.
	outbox [][]outMsg
	// outboxN counts the messages currently buffered across all of this
	// shard's outbox buffers, so barriers (and the optimistic engine's
	// per-commit flush) can skip the per-destination walk when nothing
	// was sent.
	outboxN int

	// busyShifts logs cross-site busy mutations for the whole run
	// (NOT cleared per round).
	busyShifts []busyShift
	// roundTimes/roundFin log this round's processed events: the event
	// time and, for completions, the finished job index (-1 otherwise;
	// finPhantom for a sibling sub-shard's surplus refresh events, which
	// the serial engine never runs and the merge must not count).
	// The final round's log is what lets the merge count events exactly
	// the way the serial loop — which dies at the last completion —
	// does.
	roundTimes []float64
	roundFin   []int32
	// phantoms counts this round's finPhantom entries; steals counts the
	// whole run's real events executed by a non-primary sub-shard.
	phantoms int
	steals   int64
	polls    int64
	msgSeq   uint64
}

// finPhantom marks a roundFin entry whose event exists only because a
// skew-split site runs one refresh chain per sub-shard instead of one:
// the primary's refresh is the event the serial engine counts, the
// siblings' are bookkeeping duplicates at the same timestamps.
const finPhantom = int32(-2)

// subShardSteals counts events executed by non-primary sub-shards of a
// skew-split hot site, across every run in the process. Tests assert
// the work-stealing split genuinely engages through deltas of this
// counter.
var subShardSteals atomic.Int64

func (p *parShard) beginRound() {
	p.roundTimes = p.roundTimes[:0]
	p.roundFin = p.roundFin[:0]
	p.phantoms = 0
}

// shardCtl is one shard's published synchronization state. All fields
// are read and written only under the coordinator's mutex.
type shardCtl struct {
	// next is the timestamp of the shard's earliest unclaimed event
	// this round (+inf when the shard has drained its round).
	next     float64
	nextKind int
	// fence is the earliest timestamp at which the shard holds — or,
	// while idle, could ever schedule — a deciding event: the minimum
	// of its decide shadow queue and its next not-yet-chained
	// submission.
	fence float64
	// busy marks an event being processed right now, at busyTime.
	// While a shard is busy with a non-deciding event it may spawn new
	// deciding events, but never earlier than busyTime + minDyn.
	busy       bool
	busyDecide bool
	busyTime   float64
}

// coordinator owns the round synchronization state shared by all
// shard goroutines. The same condvar carries both signals the protocol
// needs: intra-round claim hand-offs, and the round start/finish
// edges that drive the persistent per-shard workers.
type coordinator struct {
	w      *world
	shards []*shard
	mu     sync.Mutex
	cond   *sync.Cond
	ctl    []shardCtl
	minDyn float64

	// kSubmit and kSnapshot are the registry-allocated kinds behind
	// the one structural start-time tie canDecide must not flag.
	kSubmit, kSnapshot int

	// Round sequencing for the persistent shard workers (all under
	// mu): round increments to start a round at horizon, running
	// counts shards still draining it, stop tells workers to exit.
	round   int
	horizon float64
	running int
	stop    bool

	aborted bool
	err     error
	ties    bool

	// gseq counts executed deciding events; it stamps event ranks (see
	// kernel.phase) so cross-shard creation order is reproducible.
	gseq uint64

	// batch is the reusable scratch slice for barrier deliveries.
	batch []eventq.Delivery
}

// refreshFences republishes every shard's fence from its (quiescent)
// queues. Called under the mutex after each deciding event: a decision
// can change a peer's alias-risk state (an alias dispatch marks the
// queue's old owner), which lowers the peer's true fence before the
// peer itself gets to republish it. In a sub-sharded run the decision
// may also have injected events directly into a sibling's kernel —
// possibly earlier than the sibling's stale published head — so next
// is republished too; every peer is idle here (canDecide required it),
// so peeking their queues is safe.
func (c *coordinator) refreshFences() {
	for i, sh := range c.shards {
		c.ctl[i].fence = sh.publishedFence()
		if c.w.subSharded && !c.ctl[i].busy {
			if ev, ok := sh.k.q.Peek(); ok {
				c.ctl[i].next, c.ctl[i].nextKind = ev.Time, ev.Kind
			} else {
				c.ctl[i].next, c.ctl[i].nextKind = inf, 0
			}
		}
	}
}

// siblingsActive reports whether any same-site sibling sub-shard of sh
// still holds or is processing work below the round horizon. Siblings
// are the only shards that can inject events into sh mid-round (via
// serialized deciding dispatches), so once every sibling is
// simultaneously idle and drained, sh's round is provably closed.
func (c *coordinator) siblingsActive(sh *shard, H float64) bool {
	for _, qi := range sh.siblings {
		q := &c.ctl[qi]
		if q.busy || q.next < H {
			return true
		}
	}
	return false
}

func (c *coordinator) fail(err error) {
	if !c.aborted {
		c.aborted = true
		c.err = err
	}
	c.cond.Broadcast()
}

// canDecide reports whether shard p may execute a deciding event at
// time t: every other shard must be idle with nothing pending before
// t. Ties — another shard holding an event at exactly t — are ordered
// decider-first, then by shard index, and flagged as ambiguous unless
// they are the structural start-time tie with an initial snapshot
// refresh (which the serial engine provably orders after the first
// submission).
func (c *coordinator) canDecide(p int, t float64, kd int) bool {
	for qi := range c.ctl {
		if qi == p {
			continue
		}
		q := &c.ctl[qi]
		if q.busy {
			return false
		}
		if q.next < t {
			return false
		}
		if q.fence == t && qi < p && q.next == t && c.kindMayDecide(q.nextKind) {
			// A tied, immediately claimable deciding event in a
			// lower-indexed shard goes first. A fence whose event is
			// buried behind a same-time non-deciding head must NOT defer
			// us: that head is blocked on our own fence, and deferring
			// would deadlock the cycle.
			c.ties = true
			return false
		}
	}
	for qi := range c.ctl {
		if qi == p {
			continue
		}
		q := &c.ctl[qi]
		if q.next == t || q.fence == t {
			structural := t == c.w.start && kd == c.kSubmit &&
				q.nextKind == c.kSnapshot && q.fence > t
			if !structural {
				c.ties = true
			}
		}
	}
	return true
}

// kindMayDecide reports whether an event kind can claim as a deciding
// event: statically deciding kinds always, capacity handoffs under
// alias risk (conservatively assumed here — the owner re-evaluates at
// its own claim). Both bits come from the kind registry.
func (c *coordinator) kindMayDecide(kd int) bool {
	k := c.shards[0].k
	return k.decides(kd) || k.isHandoff(kd)
}

// canLocal reports whether shard p may execute a non-deciding event at
// time t: t must lie strictly below every other shard's effective
// decision fence. A busy shard's fence accounts for deciding events
// its current handler may still spawn (never earlier than busyTime +
// minDyn). A fence exactly at t blocks only while its owner can still
// produce a deciding event at t — an immediately claimable deciding
// head (decider-first), or a pending earlier event that may spawn one;
// a same-time non-deciding head tied with the fence cannot run first
// anyway, so blocking on it would deadlock (the order is then
// ambiguous and flagged).
func (c *coordinator) canLocal(p int, t float64) bool {
	for qi := range c.ctl {
		if qi == p {
			continue
		}
		q := &c.ctl[qi]
		f := q.fence
		if q.busy {
			lim := q.busyTime
			if !q.busyDecide {
				lim += c.minDyn
			}
			if lim < f {
				f = lim
			}
		}
		if t > f {
			return false
		}
		if t == f {
			if q.busy {
				return false
			}
			if q.next == t && c.kindMayDecide(q.nextKind) {
				return false // decider-first
			}
			if q.next < t {
				return false // an earlier event may still spawn a decision at t
			}
			// Tied fence the owner cannot claim before us: ambiguous.
			c.ties = true
		}
	}
	return true
}

// runShardRound drains one shard's events below horizon H under the
// claim protocol.
func (c *coordinator) runShardRound(sh *shard, H float64) {
	ctl := &c.ctl[sh.index]
	w := c.w
	ctx := w.cfg.Context
	// Per-round observability (all nil-safe): the shard's own worker is
	// the only writer of its track, and the deltas are computed on the
	// shard's own counters, so none of this synchronizes anything.
	tk := sh.trace
	rt0 := tk.Now()
	ev0, st0 := len(sh.par.roundTimes), sh.par.steals
	c.mu.Lock()
	// announce marks that this shard's published state changed (initial
	// publish, or an event was processed) and peers must be woken. A
	// fruitless wait republishes identical state and must NOT broadcast:
	// blocked shards would wake each other in a spin loop, starving the
	// shard that holds the actual work.
	announce := true
	for !c.aborted {
		ev, ok := sh.k.q.Peek()
		if !ok || ev.Time >= H {
			if sh.siblings == nil || !c.siblingsActive(sh, H) {
				break
			}
			// Drained below the horizon, but a same-site sibling is
			// still active and one of its deciding dispatches may yet
			// inject events below H into this queue. Exiting now would
			// flush accounting ticks to H prematurely; publish an idle
			// state and wait for the siblings to drain (or for injected
			// work). A fruitless wake republishes identical state and
			// stays silent, like the claim loop below.
			fence := sh.publishedFence()
			if announce || ctl.next != inf || ctl.fence != fence {
				ctl.next, ctl.nextKind = inf, 0
				ctl.fence = fence
				c.cond.Broadcast()
				announce = false
			}
			wt0 := tk.Now()
			c.cond.Wait()
			tk.Span("drain-wait", wt0)
			w.met.fenceWaits.Add(1)
			continue
		}
		t := ev.Time
		if t < sh.k.now {
			c.fail(fmt.Errorf("sim: event time went backwards: %v -> %v", sh.k.now, t))
			break
		}
		// Capacity-handoff events are promoted to deciding while the
		// shard has live alias risk: their wait-queue scans may touch
		// jobs resident at other sites (see shard.aliasRisk).
		deciding := sh.k.decides(ev.Kind) ||
			((sh.aliasRisk > 0 || sh.w.aliasLive > 0) && sh.k.isHandoff(ev.Kind))
		fence := sh.publishedFence()
		if announce || ctl.next != t || ctl.nextKind != ev.Kind || ctl.fence != fence {
			// Peers must be woken when this shard's published state
			// changes — including after a fruitless wait, if a peer's
			// decision canceled our peeked head and moved our queue
			// forward. Only a truly unchanged republish stays silent.
			announce = true
		}
		ctl.next, ctl.nextKind = t, ev.Kind
		ctl.fence = fence
		if announce {
			c.cond.Broadcast()
			announce = false
		}
		canGo := deciding && c.canDecide(sh.index, t, ev.Kind) ||
			!deciding && c.canLocal(sh.index, t)
		if !canGo {
			// Wait once, then re-evaluate from scratch: while this shard
			// was blocked, a peer's serialized decision may have canceled
			// the peeked head (an alias dispatch canceling our wait
			// timer) or flipped our alias-risk state, changing both the
			// head event and its classification.
			wt0 := tk.Now()
			c.cond.Wait()
			tk.Span("fence-wait", wt0)
			w.met.fenceWaits.Add(1)
			continue
		}
		ev, _ = sh.k.q.Pop()
		if sh.k.decides(ev.Kind) {
			sh.k.decideQ.Pop()
		} else if sh.k.isHandoff(ev.Kind) {
			sh.k.handoffQ.Pop()
		}
		if deciding {
			c.gseq++
		}
		sh.k.phase = c.gseq
		ctl.busy, ctl.busyTime, ctl.busyDecide = true, t, deciding
		// Non-deciding events touch only this shard's state and run
		// outside the mutex, concurrently with other shards. Deciding
		// events hold the mutex through dispatch: they may read and
		// write PEER state (remote views, cross-shard wait-timer
		// cancels, alias-risk notes), and although peers cannot claim
		// anything while the decision is in flight, a woken peer still
		// evaluates its own queues under the mutex at its loop top —
		// the mutex is what makes those accesses mutually exclusive.
		// Decisions are globally serialized either way, so this costs
		// no parallelism.
		if !deciding {
			c.mu.Unlock()
		}

		sh.k.now = t
		// Record sample ticks strictly before this event; the shard's
		// sampled signals only change at its own events.
		sh.acct.advanceTo(t)
		err := sh.k.dispatch(ev)
		fin := int32(-1)
		if ev.Kind == int(sh.place.finish) {
			fin = int32(ev.A)
		} else if !sh.primary && ev.Kind == int(sh.snaps.snapshot) {
			fin = finPhantom
		}
		if w.cfg.eventLog != nil {
			// Per-shard append: each worker owns its own slice.
			w.cfg.eventLog.record(sh.index, t, &sh.k.kinds[ev.Kind], ev.A, ev.B, ev.Ref)
		}
		sh.k.releaseRef(ev)

		if !deciding {
			c.mu.Lock()
		}
		ctl.busy = false
		announce = true
		if deciding {
			c.refreshFences()
		}
		sh.par.roundTimes = append(sh.par.roundTimes, t)
		sh.par.roundFin = append(sh.par.roundFin, fin)
		if fin == finPhantom {
			sh.par.phantoms++
		} else if !sh.primary {
			sh.par.steals++
		}
		if err != nil {
			c.fail(fmt.Errorf("sim: t=%v: %w", t, err))
			break
		}
		if sh.par.polls++; ctx != nil && sh.par.polls&63 == 0 {
			if cerr := ctx.Err(); cerr != nil {
				c.fail(fmt.Errorf("sim: canceled at t=%v: %w", t, cerr))
				break
			}
		}
	}
	ctl.next, ctl.nextKind = inf, 0
	ctl.busy = false
	ctl.fence = sh.publishedFence()
	c.cond.Broadcast()
	c.mu.Unlock()
	if tk != nil {
		tk.Span("round", rt0,
			obs.Arg{Key: "events", Val: int64(len(sh.par.roundTimes) - ev0)},
			obs.Arg{Key: "steals", Val: sh.par.steals - st0})
	}
	// Every tick below the horizon is final: no event below H can ever
	// arrive after this round.
	sh.acct.flushTo(H)
}

// publish refreshes every shard's control block from its quiescent
// queues. Called only at round barriers, before shard goroutines
// spawn.
func (c *coordinator) publish(shards []*shard) {
	for i, sh := range shards {
		ctl := &c.ctl[i]
		ctl.busy = false
		ctl.next, ctl.nextKind = inf, 0
		if ev, ok := sh.k.q.Peek(); ok {
			ctl.next, ctl.nextKind = ev.Time, ev.Kind
		}
		ctl.fence = sh.publishedFence()
	}
}

// runParallel executes the simulation on one shard per site,
// conservatively synchronized in closed rounds of width
// Δ = min cross-site RTT. Each shard gets one long-lived worker
// goroutine for the whole run, parked on the coordinator condvar
// between rounds — spawning per round would churn O(rounds × sites)
// goroutines, and small lookaheads make rounds plentiful. Checkpoints
// align to round barriers: there every shard is quiescent and every
// cross-shard message delivered, so the union of shard states is a
// consistent global state with no in-flight residue to capture.
func runParallel(w *world, sn *snapshot) (*Result, error) {
	delta := w.plat.MinCrossRTT()
	if delta <= 0 {
		// Run routes these configurations to the serial engine via
		// parallelizable(); if a future caller reaches this point with
		// a degenerate lookahead anyway, rounds of width zero would
		// spin forever at one timestamp, so fail loudly instead.
		return nil, fmt.Errorf("sim: parallel engine requires positive cross-site lookahead, got %v", delta)
	}
	shards := planShards(w)
	for _, sh := range shards {
		sh.peers = shards
		if len(sh.par.outbox) < len(shards) {
			sh.par.outbox = make([][]outMsg, len(shards))
		}
		if !sameKinds(shards[0].k, sh.k) {
			return nil, fmt.Errorf("sim: shard %d allocated a different event-kind table", sh.index)
		}
	}
	c := &coordinator{
		w:         w,
		shards:    shards,
		ctl:       make([]shardCtl, len(shards)),
		minDyn:    w.minDyn,
		kSubmit:   int(shards[0].place.submit),
		kSnapshot: int(shards[0].snaps.snapshot),
	}
	c.cond = sync.NewCond(&c.mu)
	// Timeline lanes: one coordinator track plus one per shard, created
	// up front in shard order so lane numbering is deterministic. All
	// nil (free no-ops) when tracing is off.
	coordTk := w.cfg.Trace.Track("coordinator")
	for _, sh := range shards {
		sh.trace = w.cfg.Trace.Track(fmt.Sprintf("shard %02d (site %d)", sh.index, sh.sites[0]))
	}
	pm := newProgressMeter(&w.cfg)
	var priorEvents int64
	if sn != nil {
		if err := restoreRun(sn, w, shards, c); err != nil {
			return nil, err
		}
		priorEvents = sn.events
	} else {
		for _, sh := range shards {
			sh.seed()
		}
	}
	ck := newCheckpointer(w, shards, EngineParallel, sn)
	ck.observe(&w.met, coordTk)

	// Persistent round workers: each waits for the round counter to
	// advance, drains its shard below the published horizon, and
	// reports back through running. All transitions ride the one
	// condvar; a worker woken by claim traffic between rounds simply
	// re-checks the round counter.
	var wg sync.WaitGroup
	for _, sh := range shards {
		wg.Add(1)
		go func(sh *shard) {
			defer wg.Done()
			last := 0
			for {
				c.mu.Lock()
				for !c.stop && c.round == last {
					c.cond.Wait()
				}
				if c.stop {
					c.mu.Unlock()
					return
				}
				last = c.round
				h := c.horizon
				c.mu.Unlock()
				c.runShardRound(sh, h)
				c.mu.Lock()
				if c.running--; c.running == 0 {
					c.cond.Broadcast()
				}
				c.mu.Unlock()
			}
		}(sh)
	}
	stopWorkers := func() {
		c.mu.Lock()
		c.stop = true
		c.cond.Broadcast()
		c.mu.Unlock()
		wg.Wait()
	}
	defer stopWorkers()

	total := len(w.specs)
	ctx := w.cfg.Context
	completed := 0
	for _, sh := range shards {
		completed += sh.completed
	}
	for completed < total {
		if ctx != nil {
			if err := ctx.Err(); err != nil {
				return nil, fmt.Errorf("sim: canceled at t=%v: %w", maxNow(shards), err)
			}
		}
		n := inf
		for _, sh := range shards {
			if t, ok := sh.k.q.NextTime(); ok && t < n {
				n = t
			}
		}
		if math.IsInf(n, 1) {
			return nil, fmt.Errorf("sim: deadlock at t=%v: %d of %d jobs completed and no pending events",
				maxNow(shards), completed, total)
		}
		// The serial loop fails on the first popped event beyond MaxTime.
		// Rounds must not apply that check per event — the final round
		// legitimately drains inert events past the last completion that
		// the serial loop never pops — so the cap is enforced at the
		// barriers instead: here, when the globally next event is already
		// beyond it with jobs incomplete, and in mergeParallel, when the
		// run completed later than the cap (the serial loop would have
		// failed at that completion event).
		if n > w.cfg.MaxTime {
			return nil, fmt.Errorf("sim: exceeded MaxTime %v with %d of %d jobs incomplete",
				w.cfg.MaxTime, total-completed, total)
		}
		for _, sh := range shards {
			sh.par.beginRound()
		}
		c.publish(shards)
		horizon := pairHorizon(w, shards, n, delta)
		w.met.rounds.Add(1)
		rt0 := coordTk.Now()

		// Start the round and wait for every worker to drain it. The
		// mutex hand-offs here give the workers release/acquire edges
		// over everything the coordinator wrote between rounds (barrier
		// deliveries, round logs), and vice versa.
		c.mu.Lock()
		c.horizon = horizon
		c.running = len(shards)
		c.round++
		c.cond.Broadcast()
		for c.running > 0 {
			c.cond.Wait()
		}
		err := c.err
		c.mu.Unlock()
		if err != nil {
			return nil, err
		}
		if coordTk != nil {
			var roundEv int64
			for _, sh := range shards {
				roundEv += int64(len(sh.par.roundTimes) - sh.par.phantoms)
			}
			coordTk.Span("round", rt0, obs.Arg{Key: "events", Val: roundEv})
		}

		// Barrier: flush the round's cross-shard messages, one batched
		// delivery per destination. The batch is pre-sorted into firing
		// order — every message's (g, idx) rank is unique because all
		// cross-shard sends originate from globally-serialized deciding
		// events — so the bulk insert is deterministic and equivalent to
		// the per-message deliveries it replaces. The scratch batch and
		// the per-dest buffers are reused across rounds; rounds that sent
		// nothing (the overwhelming majority under any site-local
		// scheduling policy) skip the shards-squared walk entirely.
		pending := 0
		for _, sh := range shards {
			pending += sh.par.outboxN
			sh.par.outboxN = 0
		}
		if pending > 0 {
			dt0 := coordTk.Now()
			for d := range shards {
				batch := c.batch[:0]
				for _, sh := range shards {
					for _, m := range sh.par.outbox[d] {
						batch = append(batch, eventq.Delivery{
							Time: m.t, Kind: int(m.kind), A: m.a, B: m.b, G: m.g, Idx: m.idx,
						})
					}
					sh.par.outbox[d] = sh.par.outbox[d][:0]
				}
				if len(batch) > 1 {
					sort.Slice(batch, func(i, j int) bool {
						if batch[i].Time != batch[j].Time {
							return batch[i].Time < batch[j].Time
						}
						if batch[i].G != batch[j].G {
							return batch[i].G < batch[j].G
						}
						return batch[i].Idx < batch[j].Idx
					})
				}
				if len(batch) > 0 {
					shards[d].k.deliverBatch(batch)
				}
				c.batch = batch[:0]
			}
			if coordTk != nil {
				coordTk.Span("deliver", dt0, obs.Arg{Key: "msgs", Val: int64(pending)})
			}
		}
		completed = 0
		for _, sh := range shards {
			completed += sh.completed
		}
		if completed < total {
			for _, sh := range shards {
				priorEvents += int64(len(sh.par.roundTimes) - sh.par.phantoms)
			}
			// Telemetry reads at the barrier see quiescent shards.
			pm.maybe(horizon, priorEvents, 0)
			w.met.sampleQueues(shards)
			// The barrier is the parallel engine's clean boundary: all
			// events below the horizon processed, all cross-shard
			// messages delivered, every worker parked.
			h := horizon
			if ck.due(h) {
				if err := ck.take(h, priorEvents, c.gseq, c.ties); err != nil {
					return nil, err
				}
			}
			if w.cfg.stopAtEvents > 0 && priorEvents >= w.cfg.stopAtEvents {
				data, err := takeSnapshot(w, shards,
					newSnapParams(w, shards, EngineParallel, 0), h, priorEvents, c.gseq, c.ties)
				if err != nil {
					return nil, err
				}
				*w.cfg.captureAt = data
				return nil, errReplayStop
			}
		}
	}
	res, err := mergeParallel(w, shards, priorEvents, c)
	if err != nil {
		return nil, err
	}
	base := int64(0)
	if sn != nil {
		base = sn.events
	}
	w.met.events.Add(res.Events - base)
	return res, nil
}

// subShardHotSite decides the skew-aware split: when one site holds
// more than half of the platform's pools (and at least two), balanced
// rounds park every other worker behind its queue, so that site is
// split into one sub-shard per pool — per-pool workers steal the hot
// site's event stream from each other through the existing shard
// interface. Sub-shards exchange same-site work by direct injection
// under the decision serialization (zero extra lookahead) rather than
// round barriers. The split stays off for any flow whose machinery
// assumes one shard per site (checkpoints, resume, replay logs, fault
// chains), and the plan depends only on configuration and platform
// shape — never on GOMAXPROCS — so results stay reproducible across
// machines. Returns the hot site, or -1 to keep per-site shards.
func subShardHotSite(w *world) int {
	cfg := &w.cfg
	if cfg.Faults.enabled() || cfg.CheckpointEvery > 0 || len(cfg.ResumeFrom) > 0 ||
		cfg.eventLog != nil || cfg.stopAtEvents > 0 {
		return -1
	}
	// Single-site platforms fall back to the serial kernel before any
	// shard planning; keep the helper total for direct callers anyway.
	if w.nSites < 2 {
		return -1
	}
	for s := 0; s < w.nSites; s++ {
		if n := len(w.plat.Site(s).Pools); n >= 2 && n*2 > len(w.pools) {
			return s
		}
	}
	return -1
}

// planShards builds the conservative engine's shard set: one shard per
// site, except a skew-dominant hot site, which splits into one
// sub-shard per pool (see subShardHotSite).
func planShards(w *world) []*shard {
	hot := subShardHotSite(w)
	if hot < 0 {
		shards := make([]*shard, w.nSites)
		for s := range shards {
			shards[s] = newShard(w, s, []int{s}, true)
		}
		return shards
	}
	w.subSharded = true
	w.partOf = make([]int, len(w.pools))
	var shards []*shard
	var hotIdx []int
	for s := 0; s < w.nSites; s++ {
		if s != hot {
			idx := len(shards)
			for _, p := range w.plat.Site(s).Pools {
				w.partOf[p] = idx
			}
			shards = append(shards, newShard(w, idx, []int{s}, true))
			continue
		}
		for i, p := range w.plat.Site(s).Pools {
			idx := len(shards)
			w.partOf[p] = idx
			hotIdx = append(hotIdx, idx)
			shards = append(shards, newShardPools(w, idx, []int{s}, []int{p}, i == 0, true))
		}
	}
	for _, qi := range hotIdx {
		for _, qj := range hotIdx {
			if qj != qi {
				shards[qi].siblings = append(shards[qi].siblings, qj)
			}
		}
	}
	return shards
}

// pairHorizon computes the round horizon from per-pair lookahead
// bounds instead of the global-minimum lookahead: an event at shard i
// can influence shard d no earlier than n_i + rtt(i, d), where n_i is
// i's earliest pending event, so the earliest possible cross-shard
// influence anywhere is the minimum of that bound over ordered pairs.
// Cross-shard messages only materialize at round barriers, so the
// single-hop bound is already closed under cascading (a chain of
// local events only raises the send time) and no fixpoint iteration
// is needed. The result is never below n + MinCrossRTT — the width
// the engine previously used — and strictly sharper whenever the
// shards clustered around n are far apart in the RTT matrix, which is
// fewer rounds and fewer barriers for the same event order.
func pairHorizon(w *world, shards []*shard, n, delta float64) float64 {
	h := inf
	for _, si := range shards {
		ni, ok := si.k.q.NextTime()
		if !ok {
			continue
		}
		for _, sd := range shards {
			if sd == si || sd.sites[0] == si.sites[0] {
				// Same-site sub-shards exchange no barrier messages —
				// their traffic is injected inline under the decision
				// serialization — so the pair contributes no (zero-width)
				// bound.
				continue
			}
			if b := ni + w.plat.RTT(si.sites[0], sd.sites[0]); b < h {
				h = b
			}
		}
	}
	if math.IsInf(h, 1) {
		// No pair bound exists (at most one shard still holds events);
		// the classic width keeps the round finite.
		h = n + delta
	}
	return h
}

func maxNow(shards []*shard) float64 {
	var m float64
	for _, sh := range shards {
		if sh.k.now > m {
			m = sh.k.now
		}
	}
	return m
}

// mergeParallel recombines per-shard results into one Result
// bit-identical to the serial engine's: counters sum, series recombine
// tick-by-tick with the serial sampler's float operations, and the
// event count truncates the final round at the last completion exactly
// where the serial loop stopped.
func mergeParallel(w *world, shards []*shard, priorEvents int64, c *coordinator) (*Result, error) {
	var res Result
	for _, sh := range shards {
		res.Preemptions += sh.res.Preemptions
		res.Restarts += sh.res.Restarts
		res.Migrations += sh.res.Migrations
		res.WaitMoves += sh.res.WaitMoves
		res.CrossSiteSubmits += sh.res.CrossSiteSubmits
		res.CrossSiteMoves += sh.res.CrossSiteMoves
		res.Kills += sh.res.Kills
		res.Requeues += sh.res.Requeues
	}
	if err := finalizeJobs(w, &res); err != nil {
		return nil, err
	}
	finalizeFaults(w, &res)
	if res.Makespan > w.cfg.MaxTime {
		// The serial loop would have failed at the first event past the
		// cap instead of finishing the run.
		return nil, fmt.Errorf("sim: exceeded MaxTime %v: last completion at t=%v",
			w.cfg.MaxTime, res.Makespan)
	}
	res.ambiguousTies = c.ties

	// Locate the completion that ended the run: the finish event at the
	// makespan. Final-round events the serial loop would have processed
	// after it (later events of the same shard, by local order) are
	// excluded from the event count; a co-timed completion in another
	// shard is an ambiguous tie.
	owner, ownerPos := -1, -1
	for si, sh := range shards {
		for pos, fin := range sh.par.roundFin {
			if fin >= 0 && sh.par.roundTimes[pos] == res.Makespan {
				switch {
				case owner == -1:
					owner, ownerPos = si, pos
				case owner == si:
					ownerPos = pos
				default:
					res.ambiguousTies = true
				}
			}
		}
	}
	events := priorEvents
	for si, sh := range shards {
		for pos, t := range sh.par.roundTimes {
			if sh.par.roundFin[pos] == finPhantom {
				continue
			}
			switch {
			case t < res.Makespan:
				events++
			case t == res.Makespan:
				if si == owner && pos <= ownerPos {
					events++
				} else if si != owner {
					res.ambiguousTies = true
				}
			}
		}
	}
	res.Events = events
	for _, sh := range shards {
		res.SubShardSteals += sh.par.steals
	}
	subShardSteals.Add(res.SubShardSteals)
	res.AliasRetirements = w.aliasRetired
	// Promote the run's execution counters into the metrics registry
	// (no-ops when Config.Metrics is unset).
	w.met.steals.Add(res.SubShardSteals)
	w.met.aliasRet.Add(w.aliasRetired)

	if !w.cfg.DisableSampling {
		mergeSeries(w, shards, &res)
	}
	return &res, nil
}

// mergeSeries rebuilds the global (and per-site) time series from the
// shards' raw per-tick counters, reproducing the serial sampler's
// float operations tick for tick: global utilization divides the
// integer sum of per-site busy cores by the platform total, and the
// series stop strictly before the makespan — the serial loop records a
// tick only when a later event pops, and no event follows the final
// completion.
func mergeSeries(w *world, shards []*shard, res *Result) {
	bin := w.cfg.SeriesBin
	util := stats.NewTimeSeries(bin)
	susp := stats.NewTimeSeries(bin)
	wait := stats.NewTimeSeries(bin)
	siteTS := make([]*stats.TimeSeries, w.nSites)
	for s := range siteTS {
		siteTS[s] = stats.NewTimeSeries(bin)
	}
	// Cross-site busy shifts (serialized mutations of a remote site's
	// machines, possible only after a cross-site alias dispatch): the
	// executing shard's raw samples include them in its own scope, while
	// the serial site series attribute them to the machine's site. corr
	// re-attributes tick by tick: +delta to the machine's site, −delta
	// to the executor's. Shifts of different shards carry distinct
	// timestamps (they happen under global serialization; exact ties are
	// measure-zero and flagged elsewhere), so a stable sort by time
	// reproduces the serial application order.
	var shifts []busyShift
	for _, sh := range shards {
		shifts = append(shifts, sh.par.busyShifts...)
	}
	sort.SliceStable(shifts, func(a, b int) bool { return shifts[a].t < shifts[b].t })
	corr := make([]int, w.nSites)
	next := 0

	// Group shards by site: a skew-split site's sub-shards each sample
	// their own scope, and the site series needs their integer sum —
	// summed before the single float division, so a split site computes
	// the exact float the serial sampler did.
	bySite := make([][]*shard, w.nSites)
	for _, sh := range shards {
		bySite[sh.sites[0]] = append(bySite[sh.sites[0]], sh)
	}

	n := math.MaxInt
	for _, sh := range shards {
		if l := len(sh.acct.rawBusy); l < n {
			n = l
		}
	}
	t := w.start
	for i := 0; i < n && t < res.Makespan; i++ {
		// A tick reads post-event state at its own timestamp, so shifts
		// at exactly t apply to it.
		for next < len(shifts) && shifts[next].t <= t {
			corr[shifts[next].site] += int(shifts[next].delta)
			corr[shifts[next].exec] -= int(shifts[next].delta)
			next++
		}
		busy, suspended, waiting := 0, 0, 0
		for _, sh := range shards {
			busy += int(sh.acct.rawBusy[i])
			suspended += int(sh.acct.rawSusp[i])
			waiting += int(sh.acct.rawWait[i])
		}
		uv := 0.0
		if w.totalCores > 0 {
			uv = float64(busy) / float64(w.totalCores) * 100
		}
		util.Add(t, uv)
		susp.Add(t, float64(suspended))
		wait.Add(t, float64(waiting))
		for s, group := range bySite {
			raw := corr[s]
			for _, sh := range group {
				raw += int(sh.acct.rawBusy[i])
			}
			su := 0.0
			if w.siteCores[s] > 0 {
				su = float64(raw) / float64(w.siteCores[s]) * 100
			}
			siteTS[s].Add(t, su)
		}
		t += w.cfg.SampleEvery
	}
	res.Util, res.Suspended, res.Waiting = util, susp, wait
	res.SiteUtil = siteTS
}
