package sim

// Serial-vs-parallel determinism: the partitioned engine must produce
// results bit-identical to the serial reference loop — same job
// records (hex-float compare), same series, same counters, same event
// count — on random multi-site federations across every policy and
// site selector, plus the single-site fallback path. A cancellation
// test pins prompt return and goroutine hygiene.

import (
	"context"
	"fmt"
	"math/rand/v2"
	"runtime"
	"strings"
	"testing"
	"testing/quick"
	"time"

	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
)

// fingerprint renders every observable float of a Result in hex so
// comparison is bit-exact, not approximate.
func fingerprint(res *Result) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "makespan=%x events=%d pre=%d restarts=%d mig=%d waitmoves=%d xsub=%d xmove=%d\n",
		res.Makespan, res.Events, res.Preemptions, res.Restarts, res.Migrations,
		res.WaitMoves, res.CrossSiteSubmits, res.CrossSiteMoves)
	fmt.Fprintf(&sb, "crashes=%d maint=%d kills=%d requeues=%d worklost=%x downcm=%x\n",
		res.Crashes, res.MaintWindows, res.Kills, res.Requeues, res.WorkLost, res.DownCoreMinutes)
	for _, j := range res.Jobs {
		a := j.Acct()
		fmt.Fprintf(&sb, "job %d: pool=%d mach=%d first=%x done=%x w=%x s=%x we=%x ro=%x e=%x sus=%d re=%d wr=%d k=%d\n",
			j.Spec.ID, j.Pool, j.Machine, j.FirstStart, j.Completed,
			a.Wait, a.Suspend, a.WastedExec, a.RescheduleOverhead, a.Exec,
			a.Suspensions, a.Restarts, a.WaitReschedules, a.Kills)
	}
	series := func(name string, ts *stats.TimeSeries) {
		if ts == nil {
			fmt.Fprintf(&sb, "%s: nil\n", name)
			return
		}
		fmt.Fprintf(&sb, "%s:", name)
		for _, p := range ts.Points() {
			fmt.Fprintf(&sb, " %x/%x", p.X, p.Y)
		}
		sb.WriteString("\n")
	}
	series("util", res.Util)
	series("susp", res.Suspended)
	series("wait", res.Waiting)
	for s, ts := range res.SiteUtil {
		series(fmt.Sprintf("site%d", s), ts)
	}
	return sb.String()
}

// federatedInitial builds the two-level scheduler used by the
// multi-site experiment cells.
func federatedInitial(sel sched.SiteSelector) sched.InitialScheduler {
	return sched.NewFederated(sel, func() sched.InitialScheduler {
		return sched.NewRoundRobin()
	})
}

func multiSitePolicyForIndex(i int, seed uint64) core.Policy {
	switch i % 4 {
	case 0:
		return core.NewNoRes()
	case 1:
		return core.NewResSusWaitUtil()
	case 2:
		return core.NewResSusWaitRand(seed)
	default:
		return core.NewResSusWaitLatency()
	}
}

func TestParallelMatchesSerialRandomFederations(t *testing.T) {
	runs, skips := 0, 0
	cfgQuick := &quick.Config{MaxCount: 24}
	err := quick.Check(func(seed uint64, polPick, selPick uint8, staleness uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		base := Config{
			Platform:          plat,
			Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
			Policy:            multiSitePolicyForIndex(int(polPick), seed),
			UtilStaleness:     float64(staleness % 40),
			CheckConservation: true,
		}
		serialRes, err := Run(base, specs)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}
		par := base
		par.Engine = EngineParallel
		// Fresh scheduler/policy instances: rotation state and RNG
		// streams are per-run.
		par.Initial = federatedInitial(siteSelectorForIndex(int(selPick)))
		par.Policy = multiSitePolicyForIndex(int(polPick), seed)
		parRes, err := Run(par, specs)
		if err != nil {
			t.Logf("parallel: %v", err)
			return false
		}
		runs++
		if parRes.ambiguousTies {
			// Measure-zero for these float-valued traces; if it ever
			// fires the comparison is void but the run must still pass
			// the engine's own invariants (it did: no error). The
			// counter check after quick.Check catches the silent
			// failure mode where every seed skips.
			skips++
			t.Logf("seed %d: ambiguous tie observed, skipping comparison", seed)
			return true
		}
		a, b := fingerprint(serialRes), fingerprint(parRes)
		if a != b {
			t.Logf("seed %d sel %d pol %d: serial and parallel results differ:\n%s",
				seed, selPick%3, polPick%4, firstDiff(a, b))
			return false
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
	if runs > 0 && skips == runs {
		t.Errorf("all %d runs skipped as ambiguous ties: bit-identity was never actually compared", runs)
	}
}

func firstDiff(a, b string) string {
	al, bl := strings.Split(a, "\n"), strings.Split(b, "\n")
	for i := 0; i < len(al) || i < len(bl); i++ {
		var x, y string
		if i < len(al) {
			x = al[i]
		}
		if i < len(bl) {
			y = bl[i]
		}
		if x != y {
			return fmt.Sprintf("line %d:\nserial:   %.200s\nparallel: %.200s", i+1, x, y)
		}
	}
	return "(no diff)"
}

// TestParallelFallbackSingleSite pins the degenerate paths: a
// single-site platform (no partitions to run) must take the serial
// kernel and still produce identical results under Engine=parallel.
func TestParallelFallbackSingleSite(t *testing.T) {
	p := miniPlatform(t, 2, 2)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0, 1),
		lowJob(2, 1.5, 80, 0, 1),
		highJob(3, 2.5, 50, 0),
	}
	base := baseConfig(p)
	serialRes, err := Run(base, specs)
	if err != nil {
		t.Fatal(err)
	}
	par := base
	par.Engine = EngineParallel
	parRes, err := Run(par, specs)
	if err != nil {
		t.Fatal(err)
	}
	if fingerprint(serialRes) != fingerprint(parRes) {
		t.Fatal("single-site parallel fallback differs from serial")
	}
}

// TestParallelMaxTimeParity pins the failure law shared by both
// engines: a run whose makespan fits under MaxTime succeeds on both,
// and one that does not fails on both — even when the cap falls inside
// the final lookahead window, where the parallel engine's last round
// drains inert post-completion events the serial loop never pops.
func TestParallelMaxTimeParity(t *testing.T) {
	for _, seed := range []uint64{57, 58, 59, 7} {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Fatal(err)
		}
		mk := func(engine string, maxTime float64) Config {
			return Config{
				Platform:          plat,
				Initial:           federatedInitial(sched.LocalityFirst{}),
				Policy:            core.NewResSusWaitUtil(),
				Engine:            engine,
				MaxTime:           maxTime,
				CheckConservation: true,
			}
		}
		base, err := Run(mk(EngineSerial, 0), specs)
		if err != nil {
			t.Fatalf("seed %d: baseline: %v", seed, err)
		}
		for _, maxTime := range []float64{
			base.Makespan + 0.15, // inside the final lookahead window
			base.Makespan * 0.75, // clearly too small
		} {
			sres, serr := Run(mk(EngineSerial, maxTime), specs)
			pres, perr := Run(mk(EngineParallel, maxTime), specs)
			if (serr == nil) != (perr == nil) {
				t.Fatalf("seed %d MaxTime %v: engines disagree: serial=%v parallel=%v",
					seed, maxTime, serr, perr)
			}
			if serr == nil && !pres.ambiguousTies && fingerprint(sres) != fingerprint(pres) {
				t.Fatalf("seed %d MaxTime %v: results diverge", seed, maxTime)
			}
		}
	}
}

// TestParallelCancelNoLeak cancels a parallel run mid-flight: Run must
// return the context error promptly and leave no shard goroutines
// behind.
func TestParallelCancelNoLeak(t *testing.T) {
	r := rand.New(rand.NewPCG(7, 11))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	// Enough work per job that the run spans many events.
	for i := range specs {
		specs[i].Work *= 50
	}
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cfg := Config{
		Platform: plat,
		Initial:  federatedInitial(sched.LatencyPenalizedUtil{}),
		Policy:   core.NewResSusWaitUtil(),
		Engine:   EngineParallel,
		Context:  ctx,
	}
	done := make(chan error, 1)
	go func() {
		_, err := Run(cfg, specs)
		done <- err
	}()
	// Let the run get going, then pull the plug.
	time.Sleep(2 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		// A short run may legitimately finish before the cancel lands.
		if err != nil && !strings.Contains(err.Error(), "canceled") {
			t.Fatalf("unexpected error: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("parallel run did not return promptly after cancellation")
	}
	// Shard goroutines are round-scoped; none may survive the run.
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.GC()
		if runtime.NumGoroutine() <= before {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: before=%d after=%d", before, runtime.NumGoroutine())
		}
		time.Sleep(10 * time.Millisecond)
	}
}
