package sim

import (
	"fmt"
	"sort"

	"netbatch/internal/job"
)

// placementSys is the placement/preemption subsystem: the virtual pool
// manager's initial dispatch (submit), arrivals at physical pools
// (arrive), completions (finish), and the capacity-handoff
// mechanics they share (§2.1/§2.2). Submission is a deciding event —
// it consults the initial scheduler, whose rotation state is shared
// across sites; arrivals and completions touch only the owning
// shard's pools and machines.
type placementSys struct {
	sh *shard

	// Allocated event kinds: submission is deciding; arrivals and
	// completions are capacity handoffs (promoted to deciding under
	// alias risk).
	submit, arrive, finish kind
}

func (s *placementSys) register(k *kernel) {
	sh := s.sh
	s.submit = k.registerKind("submit", true, func(a, _ int64, _ any) error { return sh.handleSubmit(int(a)) })
	s.arrive = k.registerHandoffKind("arrive", func(a, b int64, _ any) error {
		return sh.arrival(int(a), int(b))
	})
	s.finish = k.registerHandoffKind("finish", func(a, _ int64, _ any) error { return sh.handleFinish(int(a)) })
	// arrive carries (job idx, destination pool) in (a, b); the encoding
	// is byte-identical to the historical two-int struct codec.
	k.setPayloadCodec(s.arrive,
		func(e *snapEncoder, a, b int64, _ any) {
			e.I64(a)
			e.I64(b)
		},
		func(d *snapDecoder) (int64, int64, any) { return d.I64(), d.I64(), nil },
		func(a, _ int64, _ any) int64 { return a })
	k.registerState("placement", s.save, s.load)
}

// save dumps the placement subsystem's slice of shard state: for every
// in-scope site its busy counter, pool runtime state (class free
// stacks, wait queue with tombstoned slots and exact FIFO layout,
// victim-scan stacks with their stale entries, counters) and machine
// runtime state (capacity, availability, resident job lists), plus the
// full record of every job submitted in scope. FIFO layout and stale
// stack entries are behavior, not bookkeeping — compaction timing
// drives alias-risk accounting and victim pruning — so they are saved
// exactly rather than rebuilt.
func (s *placementSys) save(e *snapEncoder) {
	sh := s.sh
	w := sh.w
	jobIdx := func(rt *jobRT) int {
		if rt == nil {
			return -1
		}
		return rt.idx
	}
	for _, site := range sh.sites {
		e.Int(w.siteBusy[site])
		for _, pid := range w.plat.Site(site).Pools {
			p := w.pools[pid]
			e.Int(p.busyCores)
			e.Int(p.suspendedCnt)
			e.Int(len(p.classes))
			for ci := range p.classes {
				e.Ints(p.classes[ci].free)
			}
			wq := p.waitQ
			e.Int(wq.n)
			e.Int(len(wq.prios))
			for _, prio := range wq.prios {
				e.Int(int(prio))
				f := wq.classes[prio]
				e.Int(f.head)
				e.Int(len(f.items))
				for _, rt := range f.items {
					e.Int(jobIdx(rt))
				}
			}
			prios := make([]int, 0, len(p.running))
			for prio := range p.running {
				prios = append(prios, int(prio))
			}
			sort.Ints(prios)
			e.Int(len(prios))
			for _, prio := range prios {
				e.Int(prio)
				stack := p.running[job.Priority(prio)]
				e.Int(len(stack))
				for _, rt := range stack {
					e.Int(jobIdx(rt))
				}
			}
		}
		for _, pid := range w.plat.Site(site).Pools {
			for _, mid := range w.plat.Pool(pid).Machines {
				m := &w.machines[mid]
				e.Int(m.freeCores)
				e.Int(m.freeMemMB)
				e.Bool(m.inFree)
				e.Bool(m.down)
				e.Int(m.spanIdx)
				e.Int(len(m.suspended))
				for _, rt := range m.suspended {
					e.Int(rt.idx)
				}
				e.Int(len(m.running))
				for _, rt := range m.running {
					e.Int(rt.idx)
				}
			}
		}
	}
	for _, idx := range s.jobScope(e) {
		rt := &w.jobs[idx]
		st := rt.j.ExportState()
		e.Int(int(st.State))
		e.F64(st.StateSince)
		e.Int(st.Pool)
		e.Int(st.Machine)
		e.F64(st.Speed)
		e.F64(st.Progress)
		e.F64(st.AttemptExecWall)
		e.F64(st.Acct.Wait)
		e.F64(st.Acct.Suspend)
		e.F64(st.Acct.WastedExec)
		e.F64(st.Acct.RescheduleOverhead)
		e.F64(st.Acct.Exec)
		e.Int(st.Acct.Suspensions)
		e.Int(st.Acct.Restarts)
		e.Int(st.Acct.WaitReschedules)
		e.Int(st.Acct.Kills)
		e.F64(st.FirstStart)
		e.F64(st.Completed)
		e.F64(rt.enqueuedAt)
		e.Bool(rt.queued)
	}
}

// jobScope returns the job-record indices a save covers. The full
// codec covers every job ever submitted in shard scope (sh.subIdx,
// implicit: save and load both iterate it). Optimistic rollback
// snapshots instead write an explicit list covering exactly the
// records this shard's speculation can mutate: jobs resident at its
// sites (wait-queue slots, running stacks and machine lists — alias
// slots of departed jobs excluded, those records belong to the shard
// the job moved to) plus jobs in transit to it (a pending arrive event
// mutates the record when it fires). Records outside the set cannot
// change between a rollback snapshot and its restore: decisions
// invalidate every snapshot at commit, and other shards' speculation
// touches only their own residents.
func (s *placementSys) jobScope(e *snapEncoder) []int {
	sh := s.sh
	if sh.opt == nil {
		return sh.subIdx
	}
	w := sh.w
	idxs := sh.opt.scopeIdx[:0]
	seen := sh.opt.scopeSeen
	add := func(rt *jobRT) {
		if rt != nil && !sh.away[rt.idx] && !seen[rt.idx] {
			seen[rt.idx] = true
			idxs = append(idxs, rt.idx)
		}
	}
	for _, site := range sh.sites {
		for _, pid := range w.plat.Site(site).Pools {
			p := w.pools[pid]
			for _, prio := range p.waitQ.prios {
				for _, rt := range p.waitQ.classes[prio].items {
					add(rt)
				}
			}
			for _, stack := range p.running {
				for _, rt := range stack {
					add(rt)
				}
			}
			for _, mid := range w.plat.Pool(pid).Machines {
				m := &w.machines[mid]
				for _, rt := range m.suspended {
					add(rt)
				}
				for _, rt := range m.running {
					add(rt)
				}
			}
		}
	}
	for _, idx := range sh.opt.inTransit {
		if !seen[idx] {
			seen[idx] = true
			idxs = append(idxs, idx)
		}
	}
	for _, idx := range idxs {
		seen[idx] = false
	}
	sh.opt.scopeIdx = idxs
	e.Ints(idxs)
	return idxs
}

// load mirrors save field for field into the freshly built runtime
// structures.
func (s *placementSys) load(d *snapDecoder) error {
	sh := s.sh
	w := sh.w
	nJobs := len(w.jobs)
	jobAt := func(idx int) *jobRT {
		if idx == -1 {
			return nil
		}
		if idx < 0 || idx >= nJobs {
			d.fail()
			return nil
		}
		return &w.jobs[idx]
	}
	for _, site := range sh.sites {
		w.siteBusy[site] = d.Int()
		for _, pid := range w.plat.Site(site).Pools {
			p := w.pools[pid]
			p.busyCores = d.Int()
			p.suspendedCnt = d.Int()
			if nc := d.Int(); d.err == nil && nc != len(p.classes) {
				d.fail()
			}
			for ci := range p.classes {
				p.classes[ci].free = d.IntsN(-1)
			}
			wq := p.waitQ
			wq.n = d.Int()
			nPrios := d.Int()
			if d.err != nil || nPrios < 0 {
				d.fail()
				return d.err
			}
			wq.classes = make(map[job.Priority]*fifo, nPrios)
			wq.prios = wq.prios[:0]
			for i := 0; i < nPrios; i++ {
				prio := job.Priority(d.Int())
				f := &fifo{head: d.Int()}
				nItems := d.Int()
				if d.err != nil || nItems < 0 || nItems > 1<<30 {
					d.fail()
					return d.err
				}
				f.items = make([]*jobRT, nItems)
				for it := range f.items {
					f.items[it] = jobAt(d.Int())
				}
				wq.classes[prio] = f
				wq.prios = append(wq.prios, prio)
			}
			nRun := d.Int()
			if d.err != nil || nRun < 0 {
				d.fail()
				return d.err
			}
			p.running = make(map[job.Priority][]*jobRT, nRun)
			for i := 0; i < nRun; i++ {
				prio := job.Priority(d.Int())
				stack := make([]*jobRT, 0, 4)
				nStack := d.Int()
				if d.err != nil || nStack < 0 || nStack > 1<<30 {
					d.fail()
					return d.err
				}
				for it := 0; it < nStack; it++ {
					stack = append(stack, jobAt(d.Int()))
				}
				p.running[prio] = stack
			}
		}
		for _, pid := range w.plat.Site(site).Pools {
			for _, mid := range w.plat.Pool(pid).Machines {
				m := &w.machines[mid]
				m.freeCores = d.Int()
				m.freeMemMB = d.Int()
				m.inFree = d.Bool()
				m.down = d.Bool()
				m.spanIdx = d.Int()
				nSusp := d.Int()
				if d.err != nil || nSusp < 0 || nSusp > nJobs {
					d.fail()
					return d.err
				}
				m.suspended = m.suspended[:0]
				for i := 0; i < nSusp; i++ {
					m.suspended = append(m.suspended, jobAt(d.Int()))
				}
				nRun := d.Int()
				if d.err != nil || nRun < 0 || nRun > nJobs {
					d.fail()
					return d.err
				}
				m.running = m.running[:0]
				for i := 0; i < nRun; i++ {
					m.running = append(m.running, jobAt(d.Int()))
				}
			}
		}
	}
	scope := sh.subIdx
	if sh.opt != nil {
		scope = d.IntsN(len(w.jobs))
		if d.err != nil {
			return d.err
		}
		for _, idx := range scope {
			if idx < 0 || idx >= nJobs {
				d.fail()
				return d.err
			}
		}
	}
	for _, idx := range scope {
		rt := &w.jobs[idx]
		var st job.JobState
		st.State = job.State(d.Int())
		st.StateSince = d.F64()
		st.Pool = d.Int()
		st.Machine = d.Int()
		st.Speed = d.F64()
		st.Progress = d.F64()
		st.AttemptExecWall = d.F64()
		st.Acct.Wait = d.F64()
		st.Acct.Suspend = d.F64()
		st.Acct.WastedExec = d.F64()
		st.Acct.RescheduleOverhead = d.F64()
		st.Acct.Exec = d.F64()
		st.Acct.Suspensions = d.Int()
		st.Acct.Restarts = d.Int()
		st.Acct.WaitReschedules = d.Int()
		st.Acct.Kills = d.Int()
		st.FirstStart = d.F64()
		st.Completed = d.F64()
		if d.err != nil {
			return d.err
		}
		rt.j.RestoreState(st)
		rt.enqueuedAt = d.F64()
		rt.queued = d.Bool()
	}
	return d.err
}

// handleSubmit routes a newly submitted job through the virtual pool
// manager and chains the shard's next submission event. Dispatch to a
// pool at another site pays the one-way inter-site delay before
// arrival (the interval accrues as wait time, c1).
func (sh *shard) handleSubmit(idx int) error {
	if sh.nextSubmit < len(sh.subIdx) {
		next := sh.subIdx[sh.nextSubmit]
		sh.k.schedule(sh.w.specs[next].Submit, sh.place.submit, int64(next), 0)
		sh.nextSubmit++
	}
	rt := &sh.w.jobs[idx]
	sh.view.observe(rt.spec.Site)
	pool, err := sh.w.cfg.Initial.SelectPool(sh.k.now, rt.spec, sh.view)
	if err != nil {
		return err
	}
	if sh.siteOfPool(pool) != rt.spec.Site {
		sh.res.CrossSiteSubmits++
		if d := sh.w.plat.RTT(rt.spec.Site, sh.siteOfPool(pool)); d > 0 {
			sh.send(sh.w.shardOf(pool), sh.k.now+d, sh.place.arrive, int64(idx), int64(pool))
			return nil
		}
	}
	if owner := sh.ownerOf(pool); owner != sh {
		// Sub-sharded hot site: the chosen pool belongs to a same-site
		// sibling sub-shard (cross-site dispatch left through send above —
		// the lookahead guarantees d > 0 there). The submission is a
		// globally-serialized deciding event, so the sibling is quiescent;
		// run the arrival on it inline as part of this event, exactly as
		// the monolithic engine folds a local arrival into the submit.
		sh.noteAway(idx)
		owner.syncTo(sh.k.now, sh.k.phase)
		return owner.arrival(idx, pool)
	}
	return sh.arrival(idx, pool)
}

// arrival lands a job at a physical pool: start it, preempt for it, or
// queue it.
func (sh *shard) arrival(idx, pool int) error {
	rt := &sh.w.jobs[idx]
	sh.noteResident(idx)
	if err := rt.j.Enqueue(sh.k.now, pool); err != nil {
		return err
	}
	return sh.tryPlace(rt, sh.w.pools[pool])
}

// tryPlace implements the physical pool manager's §2.1 dispatch rules.
func (sh *shard) tryPlace(rt *jobRT, p *poolRT) error {
	// (1) First eligible available machine.
	if mid := sh.findFreeMachine(p, rt.spec); mid >= 0 {
		return sh.startOn(rt, mid)
	}
	// (2) Preempt a lower-priority running job.
	if victim := p.findVictim(rt.spec, sh.w.machines, !sh.w.cfg.SuspendHoldsMemory); victim != nil {
		return sh.preempt(rt, victim)
	}
	// (3) Queue and wait.
	sh.enqueue(rt, p)
	return nil
}

// findFreeMachine searches the pool's class free-stacks for the first
// available machine satisfying the spec, returning its ID or -1. Among
// per-class candidates the lowest machine ID wins, approximating the
// paper's "first eligible machine" list order deterministically.
func (sh *shard) findFreeMachine(p *poolRT, spec *job.Spec) int {
	best := -1
	for ci := range p.classes {
		cls := &p.classes[ci]
		if !cls.fits(spec) {
			continue
		}
		if mid := cls.findAvailable(sh.w.machines, spec); mid >= 0 {
			if best == -1 || mid < best {
				best = mid
			}
		}
	}
	return best
}

// ensureFree registers a machine in its class free-stack when it has
// spare cores and is not already listed.
func (sh *shard) ensureFree(p *poolRT, mid int) {
	mach := &sh.w.machines[mid]
	if mach.down || mach.freeCores <= 0 || mach.inFree {
		return
	}
	mach.inFree = true
	p.classes[mach.class].free = append(p.classes[mach.class].free, mid)
}

// startOn begins executing rt on machine mid.
func (sh *shard) startOn(rt *jobRT, mid int) error {
	mach := &sh.w.machines[mid]
	spec := rt.spec
	if mach.down {
		return fmt.Errorf("job %d placed on down machine %d", spec.ID, mid)
	}
	if mach.freeCores < spec.Cores || mach.freeMemMB < spec.MemMB {
		return fmt.Errorf("job %d placed on machine %d without capacity", spec.ID, mid)
	}
	p := sh.w.pools[mach.m.Pool]
	mach.freeCores -= spec.Cores
	mach.freeMemMB -= spec.MemMB
	p.busyCores += spec.Cores
	sh.addBusy(mach.m.Pool, spec.Cores)
	if err := rt.j.Start(sh.k.now, mid, mach.m.Speed); err != nil {
		return err
	}
	rem := rt.j.RemainingAt(sh.k.now)
	rt.finish = sh.k.schedule(sh.k.now+rem, sh.place.finish, int64(rt.idx), 0)
	p.pushRunning(rt)
	mach.running = append(mach.running, rt)
	sh.noteAttach(rt, mach.m.Pool)
	sh.ensureFree(p, mid)
	return nil
}

// preempt suspends victim and installs rt on the freed machine, then
// arms the rescheduling decision for the victim.
func (sh *shard) preempt(rt *jobRT, victim *jobRT) error {
	mid := victim.j.Machine
	mach := &sh.w.machines[mid]
	p := sh.w.pools[mach.m.Pool]

	sh.k.cancel(victim.finish)
	if err := victim.j.Suspend(sh.k.now); err != nil {
		return err
	}
	removeRunning(mach, victim)
	sh.res.Preemptions++
	mach.freeCores += victim.spec.Cores
	if !sh.w.cfg.SuspendHoldsMemory {
		mach.freeMemMB += victim.spec.MemMB
	}
	p.busyCores -= victim.spec.Cores
	sh.addBusy(mach.m.Pool, -victim.spec.Cores)
	mach.suspended = append(mach.suspended, victim)
	p.suspendedCnt++
	sh.scopeSuspended++

	if err := sh.startOn(rt, mid); err != nil {
		return err
	}

	// The rescheduling decision for the fresh suspension (§3.2) happens
	// at the next agent sweep, DecisionDelay later. If the victim has
	// resumed (or been re-suspended and moved) by then, the stale event
	// is ignored.
	sh.k.schedule(sh.k.now+sh.w.cfg.DecisionDelay, sh.dyn.susDecide, int64(victim.idx), 0)

	// The victim may have freed more cores than the preemptor needs.
	return sh.onFree(mid)
}

// enqueue parks a job in the pool's wait queue and arms the policy's
// wait-timeout timer.
func (sh *shard) enqueue(rt *jobRT, p *poolRT) {
	p.waitQ.push(rt)
	sh.noteSlotPush(rt.idx)
	rt.enqueuedAt = sh.k.now
	sh.scopeWaiting++
	if th := sh.w.cfg.Policy.WaitThreshold(); th > 0 {
		rt.waitTO = sh.k.schedule(sh.k.now+th, sh.dyn.waitTimeout, int64(rt.idx), 0)
	}
}

// handleFinish completes a running job and redistributes its capacity.
func (sh *shard) handleFinish(idx int) error {
	rt := &sh.w.jobs[idx]
	mid := rt.j.Machine
	mach := &sh.w.machines[mid]
	p := sh.w.pools[mach.m.Pool]
	if err := rt.j.Complete(sh.k.now); err != nil {
		return err
	}
	if sh.w.cfg.CheckConservation {
		if err := rt.j.CheckConservation(); err != nil {
			return err
		}
	}
	sh.completed++
	removeRunning(mach, rt)
	sh.noteDetach(rt)
	mach.freeCores += rt.spec.Cores
	mach.freeMemMB += rt.spec.MemMB
	p.busyCores -= rt.spec.Cores
	sh.addBusy(mach.m.Pool, -rt.spec.Cores)
	return sh.onFree(mid)
}

// onFree hands freed capacity on machine mid to, by default, the
// host's suspended jobs first (host-level resume, §2.2) and then the
// pool wait queue in priority-FIFO order. With QueueBeatsResume,
// waiting jobs of strictly higher priority win over a resume.
func (sh *shard) onFree(mid int) error {
	mach := &sh.w.machines[mid]
	if mach.down {
		// Crashed or in maintenance: freed capacity is unusable until
		// the repair / window-end event redistributes it.
		return nil
	}
	p := sh.w.pools[mach.m.Pool]
	for mach.freeCores > 0 {
		wrt := p.waitQ.peekFitting(func(rt *jobRT) bool {
			return machineFits(mach, rt.spec)
		})
		srt := bestSuspended(mach, sh.w.cfg.SuspendHoldsMemory)
		if wrt == nil && srt == nil {
			break
		}
		useWaiting := wrt != nil && (srt == nil ||
			(sh.w.cfg.QueueBeatsResume && wrt.j.Spec.Priority > srt.j.Spec.Priority))
		if useWaiting {
			p.waitQ.remove(wrt)
			// A revived slot may hand us a job whose last enqueue was at
			// another partition (see waitQueue); dispatching it makes it
			// resident here, exactly as the serial engine does. This
			// branch only runs under global quiescence (alias risk
			// promotes the event to deciding), so telling the queue's
			// owning shard that the job left is safe. The dispatch also
			// leaves the job's Pool label pointing at the other
			// partition, opening every cross-partition hazard the
			// alias-risk ledger guards against — the startOn below flags
			// the job aliased (label partition != machine partition), and
			// all capacity handoffs serialize until the last such job
			// detaches.
			if sh.away != nil && sh.away[wrt.idx] {
				if owner := sh.peers[sh.w.shardOf(wrt.j.Pool)]; owner != sh {
					owner.noteAway(wrt.idx)
				}
			}
			sh.noteResident(wrt.idx)
			sh.scopeWaiting--
			sh.k.cancel(wrt.waitTO)
			if err := sh.startOn(wrt, mid); err != nil {
				return err
			}
			continue
		}
		if err := sh.resume(srt); err != nil {
			return err
		}
	}
	sh.ensureFree(p, mid)
	return nil
}

// machineFits checks dynamic fit of a spec on a machine.
func machineFits(mach *machineRT, spec *job.Spec) bool {
	if spec.OS != "" && spec.OS != mach.m.OS {
		return false
	}
	return mach.freeCores >= spec.Cores && mach.freeMemMB >= spec.MemMB
}

// bestSuspended returns the suspended job on mach that should resume
// next — highest priority, then earliest suspended — among those that
// fit the free capacity, or nil.
func bestSuspended(mach *machineRT, holdsMem bool) *jobRT {
	var best *jobRT
	for _, s := range mach.suspended {
		if mach.freeCores < s.spec.Cores {
			continue
		}
		// A swapped-out job must re-acquire memory to resume.
		if !holdsMem && mach.freeMemMB < s.spec.MemMB {
			continue
		}
		if best == nil || s.j.Spec.Priority > best.j.Spec.Priority {
			best = s
		}
	}
	return best
}

// resume continues a suspended job on its host.
func (sh *shard) resume(rt *jobRT) error {
	mid := rt.j.Machine
	mach := &sh.w.machines[mid]
	p := sh.w.pools[mach.m.Pool]
	if !removeSuspended(mach, rt) {
		return fmt.Errorf("job %d missing from suspended list on resume", rt.spec.ID)
	}
	p.suspendedCnt--
	sh.scopeSuspended--
	mach.freeCores -= rt.spec.Cores
	if !sh.w.cfg.SuspendHoldsMemory {
		mach.freeMemMB -= rt.spec.MemMB
	}
	p.busyCores += rt.spec.Cores
	sh.addBusy(mach.m.Pool, rt.spec.Cores)
	if err := rt.j.Resume(sh.k.now); err != nil {
		return err
	}
	rem := rt.j.RemainingAt(sh.k.now)
	rt.finish = sh.k.schedule(sh.k.now+rem, sh.place.finish, int64(rt.idx), 0)
	p.pushRunning(rt)
	mach.running = append(mach.running, rt)
	return nil
}

// removeSuspended deletes rt from the machine's suspended list.
func removeSuspended(mach *machineRT, rt *jobRT) bool {
	for i, s := range mach.suspended {
		if s == rt {
			mach.suspended = append(mach.suspended[:i], mach.suspended[i+1:]...)
			return true
		}
	}
	return false
}

// removeRunning deletes rt from the machine's running list. The list
// is bounded by the machine's core count, so the scan is tiny.
func removeRunning(mach *machineRT, rt *jobRT) bool {
	for i, s := range mach.running {
		if s == rt {
			mach.running = append(mach.running[:i], mach.running[i+1:]...)
			return true
		}
	}
	return false
}
