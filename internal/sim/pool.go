package sim

import (
	"sort"

	"netbatch/internal/cluster"
	"netbatch/internal/job"
)

// jobRT is the simulator's per-job runtime record.
type jobRT struct {
	idx  int // index into engine.jobs and the spec slice
	j    *job.Job
	spec *job.Spec

	// finish is the pending completion event, valid while running.
	finish evRef
	// waitTO is the pending wait-timeout event, valid while queued.
	waitTO evRef
	// queued marks live membership in a pool wait queue.
	queued bool
	// aliased marks a job attached to a machine (running or suspended)
	// at a site other than its queue-pool label's site — the product of
	// a cross-site alias dispatch (a revived wait-queue slot, or a
	// preemption installing a remote label on a local machine). Set by
	// shard.noteAttach and cleared by shard.noteDetach; the count of
	// live flags (world.aliasLive) is what promotes capacity handoffs
	// to deciding events in the parallel engines.
	aliased bool
	// enqueuedAt is when the job entered its current wait queue.
	enqueuedAt float64
}

// machineRT is the dynamic state of one machine.
type machineRT struct {
	m *cluster.Machine
	// freeCores and freeMemMB track available capacity.
	freeCores int
	freeMemMB int
	// inFree marks membership in the class free-stack (deduplication).
	inFree bool
	// suspended holds preempted jobs parked on this host, in suspension
	// order (FIFO).
	suspended []*jobRT
	// running holds the jobs currently executing on this host, in start
	// order. Maintained for the fault subsystem's kill sweeps; bounded
	// by the machine's core count.
	running []*jobRT
	// class is the index of the machine's class within its pool.
	class int
	// down marks the machine unavailable (crashed or in a maintenance
	// window): no placements, preemptions or resumes until it comes
	// back. Under the drain victim policy, running jobs continue to
	// completion on a down machine, but their freed capacity stays
	// unusable until the window ends.
	down bool
	// spanIdx indexes the machine's open downtime span in its site's
	// fault log while down.
	spanIdx int
}

// machineClass groups identical machines in a pool for fast
// availability search.
type machineClass struct {
	cores int
	memMB int
	speed float64
	os    string
	// free is a stack of machine IDs of this class with free capacity.
	// Entries may be stale (no free cores when popped); validity is
	// re-checked on pop. Sorted push order keeps selection deterministic.
	free []int
}

// fits reports whether the class's machines can ever run the spec.
func (c *machineClass) fits(spec *job.Spec) bool {
	if spec.OS != "" && spec.OS != c.os {
		return false
	}
	return c.memMB >= spec.MemMB && c.cores >= spec.Cores
}

// poolRT is the dynamic state of one physical pool.
type poolRT struct {
	pool *cluster.Pool
	// classes are the pool's machine classes.
	classes []machineClass
	// waitQ is the pool's wait queue.
	waitQ *waitQueue
	// running holds per-priority stacks of running jobs, most recent
	// last, used for preemption victim selection. Entries may be stale
	// (finished or departed) and are pruned during scans.
	running map[job.Priority][]*jobRT
	// busyCores counts cores currently executing jobs.
	busyCores int
	// suspendedCnt counts jobs suspended within the pool.
	suspendedCnt int
	// capsByOS caches per-OS maximum machine memory and cores for
	// static eligibility ("none of the machines in the list is
	// eligible" → VPM tries the next pool, §2.1).
	capsByOS map[string]caps
	capsAny  caps
}

type caps struct {
	maxMemMB int
	maxCores int
}

// eligible reports whether some machine in the pool can ever run spec.
func (p *poolRT) eligible(spec *job.Spec) bool {
	c := p.capsAny
	if spec.OS != "" {
		var ok bool
		c, ok = p.capsByOS[spec.OS]
		if !ok {
			return false
		}
	}
	return c.maxMemMB >= spec.MemMB && c.maxCores >= spec.Cores
}

// newPoolRT builds runtime state for a pool, grouping machines into
// classes.
func newPoolRT(plat *cluster.Platform, pool *cluster.Pool, machines []machineRT) *poolRT {
	rt := &poolRT{
		pool:     pool,
		waitQ:    newWaitQueue(),
		running:  make(map[job.Priority][]*jobRT),
		capsByOS: make(map[string]caps),
	}
	type classKey struct {
		cores int
		memMB int
		speed float64
		os    string
	}
	index := make(map[classKey]int)
	for _, mid := range pool.Machines {
		m := plat.Machine(mid)
		key := classKey{m.Cores, m.MemMB, m.Speed, m.OS}
		ci, ok := index[key]
		if !ok {
			ci = len(rt.classes)
			index[key] = ci
			rt.classes = append(rt.classes, machineClass{
				cores: m.Cores, memMB: m.MemMB, speed: m.Speed, os: m.OS,
			})
		}
		machines[mid].class = ci
		rt.classes[ci].free = append(rt.classes[ci].free, mid)

		c := rt.capsByOS[m.OS]
		if m.MemMB > c.maxMemMB {
			c.maxMemMB = m.MemMB
		}
		if m.Cores > c.maxCores {
			c.maxCores = m.Cores
		}
		rt.capsByOS[m.OS] = c
		if m.MemMB > rt.capsAny.maxMemMB {
			rt.capsAny.maxMemMB = m.MemMB
		}
		if m.Cores > rt.capsAny.maxCores {
			rt.capsAny.maxCores = m.Cores
		}
	}
	// Free stacks pop from the end; reverse-sort so the lowest machine
	// ID pops first ("the first eligible machine", §2.1).
	for ci := range rt.classes {
		sort.Sort(sort.Reverse(sort.IntSlice(rt.classes[ci].free)))
		for _, mid := range rt.classes[ci].free {
			machines[mid].inFree = true
		}
	}
	return rt
}

// freeScanLimit bounds how many live free-stack entries a class scan
// inspects. Entries below the limit are only missed when many
// partially-occupied machines sit above them, which is rare because the
// stack is dominated by fully-free machines at low utilization and
// empty at high utilization.
const freeScanLimit = 64

// findAvailable returns the topmost machine of the class that can run
// spec right now, or -1. Exhausted entries (no free cores) encountered
// during the scan are dropped from the stack.
func (c *machineClass) findAvailable(machines []machineRT, spec *job.Spec) int {
	scanned := 0
	for i := len(c.free) - 1; i >= 0 && scanned < freeScanLimit; i-- {
		mid := c.free[i]
		mach := &machines[mid]
		if mach.freeCores <= 0 {
			mach.inFree = false
			c.free = append(c.free[:i], c.free[i+1:]...)
			continue
		}
		if mach.down {
			// Down machines leave the stack like exhausted ones (no scan
			// budget spent); the repair / window-end handler re-registers
			// them through ensureFree.
			mach.inFree = false
			c.free = append(c.free[:i], c.free[i+1:]...)
			continue
		}
		scanned++
		if mach.freeCores >= spec.Cores && mach.freeMemMB >= spec.MemMB {
			return mid
		}
	}
	return -1
}

// pushRunning records a job as running in the pool.
func (p *poolRT) pushRunning(rt *jobRT) {
	prio := rt.j.Spec.Priority
	p.running[prio] = append(p.running[prio], rt)
}

// findVictim scans running jobs of priority strictly below prio, most
// recently started first, for one whose preemption would let spec run
// on its machine. It returns nil if none qualifies. Stale entries are
// pruned; the returned victim is removed from the stack.
func (p *poolRT) findVictim(spec *job.Spec, machines []machineRT, releaseMem bool) *jobRT {
	for vp := job.Priority(1); vp < spec.Priority; vp++ {
		stack, ok := p.running[vp]
		if !ok {
			continue
		}
		for i := len(stack) - 1; i >= 0; i-- {
			v := stack[i]
			// Prune entries that are no longer running in this pool. Note
			// the test reads j.Pool — the pool of the job's last enqueue —
			// not the machine's pool: an alias-revived slot (see waitQueue)
			// can dispatch a job onto another pool's machine, and its old
			// entry here then still matches. Preempting such a victim
			// installs this pool's arrival on the other pool's machine —
			// possibly at another site — which is deliberate, preserved
			// seed behavior; the parallel engine serializes it (see the
			// cross-alias promotion in shard.go).
			if v.j.State() != job.StateRunning || v.j.Pool != p.pool.ID {
				stack = append(stack[:i], stack[i+1:]...)
				continue
			}
			mach := &machines[v.j.Machine]
			// A draining machine's jobs run to completion but free no
			// usable capacity, so preempting them is pointless.
			if mach.down || !victimWorks(v, mach, spec, releaseMem) {
				continue
			}
			stack = append(stack[:i], stack[i+1:]...)
			p.running[vp] = stack
			return v
		}
		p.running[vp] = stack
	}
	return nil
}

// victimWorks reports whether suspending v frees enough of its machine
// for spec.
func victimWorks(v *jobRT, mach *machineRT, spec *job.Spec, releaseMem bool) bool {
	if spec.OS != "" && spec.OS != mach.m.OS {
		return false
	}
	if mach.freeCores+v.spec.Cores < spec.Cores {
		return false
	}
	avail := mach.freeMemMB
	if releaseMem {
		// Suspension swaps the victim out, releasing its memory.
		avail += v.spec.MemMB
	}
	return avail >= spec.MemMB
}
