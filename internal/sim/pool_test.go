package sim

import (
	"testing"

	"netbatch/internal/cluster"
	"netbatch/internal/job"
)

// buildPoolRT constructs runtime state for a one-pool platform.
func buildPoolRT(t *testing.T, classes ...cluster.MachineClass) (*poolRT, []machineRT) {
	t.Helper()
	plat, err := cluster.Build([]cluster.PoolConfig{{Classes: classes}})
	if err != nil {
		t.Fatal(err)
	}
	machines := make([]machineRT, plat.NumMachines())
	for i := 0; i < plat.NumMachines(); i++ {
		m := plat.Machine(i)
		machines[i] = machineRT{m: m, freeCores: m.Cores, freeMemMB: m.MemMB}
	}
	return newPoolRT(plat, plat.Pool(0), machines), machines
}

func TestPoolRTClassGrouping(t *testing.T) {
	p, machines := buildPoolRT(t,
		cluster.MachineClass{Count: 3, Cores: 2, MemMB: 4096, Speed: 1.0},
		cluster.MachineClass{Count: 2, Cores: 4, MemMB: 8192, Speed: 1.25},
	)
	if len(p.classes) != 2 {
		t.Fatalf("classes = %d", len(p.classes))
	}
	// Free stacks pop lowest machine ID first.
	spec := &job.Spec{Cores: 1, MemMB: 1024}
	if got := p.classes[0].findAvailable(machines, spec); got != 0 {
		t.Fatalf("first available in class 0 = %d", got)
	}
	if got := p.classes[1].findAvailable(machines, spec); got != 3 {
		t.Fatalf("first available in class 1 = %d", got)
	}
}

func TestPoolRTStaticEligibility(t *testing.T) {
	p, _ := buildPoolRT(t,
		cluster.MachineClass{Count: 1, Cores: 2, MemMB: 4096, Speed: 1.0, OS: "linux"},
		cluster.MachineClass{Count: 1, Cores: 8, MemMB: 16384, Speed: 1.0, OS: "windows"},
	)
	cases := []struct {
		name string
		spec job.Spec
		want bool
	}{
		{"fitsLinux", job.Spec{Cores: 2, MemMB: 4096, OS: "linux"}, true},
		{"fitsAnyOS", job.Spec{Cores: 8, MemMB: 16384}, true},
		{"tooBigForLinux", job.Spec{Cores: 4, MemMB: 1, OS: "linux"}, false},
		{"unknownOS", job.Spec{Cores: 1, MemMB: 1, OS: "plan9"}, false},
		{"tooMuchMemory", job.Spec{Cores: 1, MemMB: 1 << 20}, false},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if got := p.eligible(&c.spec); got != c.want {
				t.Fatalf("eligible = %v, want %v", got, c.want)
			}
		})
	}
}

func TestMachineClassFindAvailableDropsExhausted(t *testing.T) {
	p, machines := buildPoolRT(t,
		cluster.MachineClass{Count: 3, Cores: 1, MemMB: 1024, Speed: 1.0},
	)
	cls := &p.classes[0]
	// Exhaust machine 0 (top of the stack).
	machines[0].freeCores = 0
	spec := &job.Spec{Cores: 1, MemMB: 512}
	if got := cls.findAvailable(machines, spec); got != 1 {
		t.Fatalf("available = %d, want 1", got)
	}
	// The exhausted entry was dropped and unmarked.
	if machines[0].inFree {
		t.Fatal("exhausted machine still marked inFree")
	}
	for _, mid := range cls.free {
		if mid == 0 {
			t.Fatal("exhausted machine still in free stack")
		}
	}
}

func TestMachineClassFindAvailableMemoryBound(t *testing.T) {
	p, machines := buildPoolRT(t,
		cluster.MachineClass{Count: 2, Cores: 4, MemMB: 4096, Speed: 1.0},
	)
	cls := &p.classes[0]
	// Machine 0 has cores but its memory is mostly consumed.
	machines[0].freeMemMB = 100
	spec := &job.Spec{Cores: 1, MemMB: 2048}
	if got := cls.findAvailable(machines, spec); got != 1 {
		t.Fatalf("available = %d, want memory-rich machine 1", got)
	}
	// Machine 0 must remain in the stack (it still has free cores).
	found := false
	for _, mid := range cls.free {
		if mid == 0 {
			found = true
		}
	}
	if !found {
		t.Fatal("partially-occupied machine dropped from free stack")
	}
}

func TestFindVictimPicksMostRecentLowest(t *testing.T) {
	p, machines := buildPoolRT(t,
		cluster.MachineClass{Count: 3, Cores: 1, MemMB: 4096, Speed: 1.0},
	)
	mkRunning := func(id job.ID, prio job.Priority, mid int) *jobRT {
		spec := job.Spec{ID: id, Work: 100, Cores: 1, MemMB: 1024, Priority: prio, Candidates: []int{0}}
		j := job.New(spec)
		rt := &jobRT{j: j, spec: &j.Spec}
		if err := j.Enqueue(0, 0); err != nil {
			t.Fatal(err)
		}
		if err := j.Start(1, mid, 1.0); err != nil {
			t.Fatal(err)
		}
		machines[mid].freeCores--
		machines[mid].freeMemMB -= spec.MemMB
		p.pushRunning(rt)
		return rt
	}
	v1 := mkRunning(1, job.PriorityLow, 0)
	v2 := mkRunning(2, job.PriorityLow, 1) // most recent low
	_ = v1

	newSpec := &job.Spec{ID: 9, Cores: 1, MemMB: 1024, Priority: job.PriorityHigh, Candidates: []int{0}}
	victim := p.findVictim(newSpec, machines, true)
	if victim != v2 {
		t.Fatalf("victim = %v, want most recently started job 2", victim.spec.ID)
	}
	// Victim was removed from the running stack.
	for _, rt := range p.running[job.PriorityLow] {
		if rt == v2 {
			t.Fatal("victim still on running stack")
		}
	}
}

func TestFindVictimRespectsMemoryAndPriority(t *testing.T) {
	p, machines := buildPoolRT(t,
		cluster.MachineClass{Count: 1, Cores: 1, MemMB: 2048, Speed: 1.0},
	)
	spec := job.Spec{ID: 1, Work: 100, Cores: 1, MemMB: 1024, Priority: job.PriorityHigh, Candidates: []int{0}}
	j := job.New(spec)
	rt := &jobRT{j: j, spec: &j.Spec}
	if err := j.Enqueue(0, 0); err != nil {
		t.Fatal(err)
	}
	if err := j.Start(1, 0, 1.0); err != nil {
		t.Fatal(err)
	}
	machines[0].freeCores--
	machines[0].freeMemMB -= 1024
	p.pushRunning(rt)

	// Equal priority: no victim.
	if v := p.findVictim(&job.Spec{Cores: 1, MemMB: 1, Priority: job.PriorityHigh}, machines, true); v != nil {
		t.Fatal("equal-priority job found a victim")
	}
	// Higher priority but memory won't fit even after release.
	huge := &job.Spec{Cores: 1, MemMB: 1 << 20, Priority: job.PriorityHigh + 1}
	if v := p.findVictim(huge, machines, true); v != nil {
		t.Fatal("victim found despite impossible memory")
	}
	// Higher priority, fits with released memory.
	ok := &job.Spec{Cores: 1, MemMB: 2048, Priority: job.PriorityHigh + 1}
	if v := p.findVictim(ok, machines, true); v != rt {
		t.Fatal("expected the running high job as victim of higher priority")
	}
}

func TestVictimWorksMemoryModes(t *testing.T) {
	mach := machineRT{
		m:         &cluster.Machine{Cores: 2, MemMB: 4096, OS: "linux"},
		freeCores: 1,
		freeMemMB: 512,
	}
	vspec := job.Spec{Cores: 1, MemMB: 2048, Priority: job.PriorityLow, Candidates: []int{0}}
	vj := job.New(vspec)
	victim := &jobRT{j: vj, spec: &vj.Spec}
	need := &job.Spec{Cores: 2, MemMB: 2048, Priority: job.PriorityHigh}

	// Swapped-out suspension releases the victim's memory: fits.
	if !victimWorks(victim, &mach, need, true) {
		t.Fatal("want fit when suspension releases memory")
	}
	// Held memory: only 512 free, does not fit.
	if victimWorks(victim, &mach, need, false) {
		t.Fatal("want no fit when suspension holds memory")
	}
	// OS mismatch never fits.
	osSpec := &job.Spec{Cores: 1, MemMB: 1, OS: "windows", Priority: job.PriorityHigh}
	if victimWorks(victim, &mach, osSpec, true) {
		t.Fatal("OS mismatch should not fit")
	}
}
