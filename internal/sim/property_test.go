package sim

// Whole-engine property tests: random workloads across every policy and
// initial scheduler must complete every job, satisfy per-job accounting
// conservation (checked inside the engine), never oversubscribe
// capacity, and be deterministic.

import (
	"math"
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/metrics"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
)

// randomWorkload builds a random small platform and trace.
func randomWorkload(r *rand.Rand) (*cluster.Platform, []job.Spec, error) {
	nPools := 2 + r.IntN(3)
	configs := make([]cluster.PoolConfig, nPools)
	for i := range configs {
		configs[i] = cluster.PoolConfig{
			Classes: []cluster.MachineClass{
				{Count: 1 + r.IntN(3), Cores: 1 + r.IntN(2), MemMB: 4096, Speed: 1.0},
				{Count: 1, Cores: 2, MemMB: 8192, Speed: 0.8 + r.Float64()},
			},
		}
	}
	plat, err := cluster.Build(configs)
	if err != nil {
		return nil, nil, err
	}
	all := make([]int, nPools)
	for i := range all {
		all[i] = i
	}
	n := 30 + r.IntN(120)
	specs := make([]job.Spec, n)
	t := 0.0
	for i := range specs {
		t += r.Float64() * 10
		prio := job.PriorityLow
		cands := all
		if r.IntN(5) == 0 {
			prio = job.PriorityHigh
			cands = all[:1+r.IntN(nPools)]
		}
		specs[i] = job.Spec{
			ID:         job.ID(i + 1),
			Submit:     t,
			Work:       5 + r.Float64()*200,
			Cores:      1 + r.IntN(2),
			MemMB:      512 + r.IntN(4096),
			Priority:   prio,
			Candidates: cands,
		}
	}
	return plat, specs, nil
}

func policyForIndex(i int, seed uint64) core.Policy {
	switch i % 6 {
	case 0:
		return core.NewNoRes()
	case 1:
		return core.NewResSusUtil()
	case 2:
		return core.NewResSusRand(seed)
	case 3:
		return core.NewResSusWaitUtil()
	case 4:
		return core.NewResSusWaitRand(seed)
	default:
		return core.NewResSusMigrate(float64(seed % 20))
	}
}

func initialForIndex(i int, seed uint64) sched.InitialScheduler {
	switch i % 4 {
	case 0:
		return sched.NewRoundRobin()
	case 1:
		return sched.NewPureRoundRobin()
	case 2:
		return sched.NewUtilizationBased()
	default:
		return sched.NewRandomInitial(seed)
	}
}

func TestEngineInvariantsUnderRandomWorkloads(t *testing.T) {
	cfgQuick := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed uint64, polPick, initPick uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x5bd1e995))
		plat, specs, err := randomWorkload(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		cfg := Config{
			Platform:           plat,
			Initial:            initialForIndex(int(initPick), seed),
			Policy:             policyForIndex(int(polPick), seed),
			CheckConservation:  true, // per-job invariant verified inside
			RescheduleOverhead: float64(seed % 7),
			SuspendHoldsMemory: seed%2 == 0,
		}
		res, err := Run(cfg, specs)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		// Every job completed exactly once.
		if len(res.Jobs) != len(specs) {
			return false
		}
		for _, j := range res.Jobs {
			if j.State() != job.StateCompleted {
				return false
			}
			if j.CompletionTime() < 0 {
				return false
			}
		}
		// Sampled utilization never exceeds capacity.
		for _, p := range res.Util.Points() {
			if p.Y < 0 || p.Y > 100+1e-9 {
				return false
			}
		}
		// Metrics layer accepts the run and components add up.
		sum, err := metrics.Summarize(res.Jobs)
		if err != nil {
			t.Logf("summarize: %v", err)
			return false
		}
		return sum.CheckComponents() == nil
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
}

// randomFederation builds a random small multi-site platform (with a
// random delay matrix) and a site-tagged trace.
func randomFederation(r *rand.Rand) (*cluster.Platform, []job.Spec, error) {
	nSites := 2 + r.IntN(2)
	poolsPerSite := 1 + r.IntN(3)
	var configs []cluster.PoolConfig
	for s := 0; s < nSites; s++ {
		for p := 0; p < poolsPerSite; p++ {
			configs = append(configs, cluster.PoolConfig{
				Site: string(rune('A' + s)),
				Classes: []cluster.MachineClass{
					{Count: 1 + r.IntN(3), Cores: 1 + r.IntN(2), MemMB: 4096, Speed: 1.0},
					{Count: 1, Cores: 2, MemMB: 8192, Speed: 0.8 + r.Float64()},
				},
			})
		}
	}
	plat, err := cluster.Build(configs)
	if err != nil {
		return nil, nil, err
	}
	rtt := make([][]float64, nSites)
	for a := range rtt {
		rtt[a] = make([]float64, nSites)
		for b := range rtt[a] {
			if a != b {
				rtt[a][b] = float64(1 + r.IntN(20))
			}
		}
	}
	plat, err = plat.WithRTT(rtt)
	if err != nil {
		return nil, nil, err
	}
	nPools := nSites * poolsPerSite
	all := make([]int, nPools)
	for i := range all {
		all[i] = i
	}
	n := 30 + r.IntN(120)
	specs := make([]job.Spec, n)
	t := 0.0
	for i := range specs {
		t += r.Float64() * 10
		prio := job.PriorityLow
		cands := all
		if r.IntN(5) == 0 {
			prio = job.PriorityHigh
			cands = all[:1+r.IntN(nPools)]
		}
		specs[i] = job.Spec{
			ID:         job.ID(i + 1),
			Submit:     t,
			Work:       5 + r.Float64()*200,
			Cores:      1 + r.IntN(2),
			MemMB:      512 + r.IntN(4096),
			Priority:   prio,
			Candidates: cands,
			Site:       r.IntN(nSites),
		}
	}
	return plat, specs, nil
}

func siteSelectorForIndex(i int) sched.SiteSelector {
	switch i % 3 {
	case 0:
		return sched.LocalityFirst{}
	case 1:
		return sched.LeastUtilizedSite{}
	default:
		return sched.LatencyPenalizedUtil{}
	}
}

// TestJobConservationAcrossRandomScenarios is the whole-run job
// conservation invariant over random single- and multi-site scenarios:
// every submitted job is accounted for at the horizon (the engine has
// no kill path, so submitted = completed and queued/running/suspended
// are all zero once Run returns), each job's per-time-bucket accounting
// conserves its submission-to-completion span, and the sampled
// utilization signals — total and per-site — stay non-negative, bounded
// by capacity, and mutually consistent (site series core-weighted-sum
// to the total).
func TestJobConservationAcrossRandomScenarios(t *testing.T) {
	cfgQuick := &quick.Config{MaxCount: 40}
	err := quick.Check(func(seed uint64, polPick, selPick uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0xa5a5a5a5))
		plat, specs, err := randomFederation(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		var policy core.Policy
		if polPick%2 == 0 {
			policy = core.NewResSusWaitLatency()
		} else {
			policy = policyForIndex(int(polPick), seed)
		}
		cfg := Config{
			Platform: plat,
			Initial: sched.NewFederated(siteSelectorForIndex(int(selPick)), func() sched.InitialScheduler {
				return sched.NewRoundRobin()
			}),
			Policy:            policy,
			UtilStaleness:     float64(seed % 4),
			CheckConservation: true,
		}
		res, err := Run(cfg, specs)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		// Conservation: submitted = completed; nothing in flight.
		if len(res.Jobs) != len(specs) {
			t.Logf("submitted %d != completed %d", len(specs), len(res.Jobs))
			return false
		}
		for _, j := range res.Jobs {
			if j.State() != job.StateCompleted {
				t.Logf("job %d left in state %v", j.Spec.ID, j.State())
				return false
			}
			if err := j.CheckConservation(); err != nil {
				t.Log(err)
				return false
			}
		}
		// Utilization signals non-negative and within capacity.
		for _, p := range res.Util.Points() {
			if p.Y < 0 || p.Y > 100+1e-9 {
				t.Logf("total util %v out of range", p.Y)
				return false
			}
		}
		if len(res.SiteUtil) != plat.NumSites() {
			t.Logf("got %d site series for %d sites", len(res.SiteUtil), plat.NumSites())
			return false
		}
		// Per-site series consistent with the total: the core-weighted
		// mean of site utilizations equals platform utilization bin by
		// bin (both are piecewise aggregates of the same samples).
		totalPts := res.Util.Points()
		var siteCores []float64
		for s := 0; s < plat.NumSites(); s++ {
			siteCores = append(siteCores, float64(plat.Site(s).Cores))
		}
		totalCores := float64(plat.TotalCores())
		sitePts := make([][]stats.Point, len(res.SiteUtil))
		for s, ts := range res.SiteUtil {
			sitePts[s] = ts.Points()
			if len(sitePts[s]) != len(totalPts) {
				t.Logf("site %d series length %d != total %d", s, len(sitePts[s]), len(totalPts))
				return false
			}
			for _, p := range sitePts[s] {
				if p.Y < 0 || p.Y > 100+1e-9 {
					t.Logf("site %d util %v out of range", s, p.Y)
					return false
				}
			}
		}
		for i := range totalPts {
			var weighted float64
			for s := range sitePts {
				weighted += sitePts[s][i].Y * siteCores[s]
			}
			weighted /= totalCores
			if math.Abs(weighted-totalPts[i].Y) > 1e-6 {
				t.Logf("bin %d: site-weighted util %v != total %v", i, weighted, totalPts[i].Y)
				return false
			}
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
}

// TestMultiSiteDeterministic re-runs one random federation and demands
// byte-identical job records.
func TestMultiSiteDeterministic(t *testing.T) {
	r := rand.New(rand.NewPCG(123, 456))
	plat, specs, err := randomFederation(r)
	if err != nil {
		t.Fatal(err)
	}
	mk := func() Config {
		return Config{
			Platform: plat,
			Initial: sched.NewFederated(sched.LatencyPenalizedUtil{}, func() sched.InitialScheduler {
				return sched.NewRoundRobin()
			}),
			Policy: core.NewResSusWaitLatency(),
		}
	}
	a, err := Run(mk(), specs)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(mk(), specs)
	if err != nil {
		t.Fatal(err)
	}
	for k := range a.Jobs {
		if a.Jobs[k].Completed != b.Jobs[k].Completed {
			t.Fatalf("job %d completion differs across identical runs", k)
		}
	}
	if a.CrossSiteSubmits != b.CrossSiteSubmits || a.CrossSiteMoves != b.CrossSiteMoves {
		t.Fatal("cross-site counters differ across identical runs")
	}
}

func TestEngineDeterministicAcrossPolicies(t *testing.T) {
	r := rand.New(rand.NewPCG(99, 7))
	plat, specs, err := randomWorkload(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mk := func() Config {
			return Config{
				Platform: plat,
				Initial:  initialForIndex(i, 5),
				Policy:   policyForIndex(i, 5),
			}
		}
		a, err := Run(mk(), specs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk(), specs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range a.Jobs {
			if a.Jobs[k].Completed != b.Jobs[k].Completed {
				t.Fatalf("policy %d: job %d completion differs", i, k)
			}
		}
	}
}
