package sim

// Whole-engine property tests: random workloads across every policy and
// initial scheduler must complete every job, satisfy per-job accounting
// conservation (checked inside the engine), never oversubscribe
// capacity, and be deterministic.

import (
	"math/rand/v2"
	"testing"
	"testing/quick"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/metrics"
	"netbatch/internal/sched"
)

// randomWorkload builds a random small platform and trace.
func randomWorkload(r *rand.Rand) (*cluster.Platform, []job.Spec, error) {
	nPools := 2 + r.IntN(3)
	configs := make([]cluster.PoolConfig, nPools)
	for i := range configs {
		configs[i] = cluster.PoolConfig{
			Classes: []cluster.MachineClass{
				{Count: 1 + r.IntN(3), Cores: 1 + r.IntN(2), MemMB: 4096, Speed: 1.0},
				{Count: 1, Cores: 2, MemMB: 8192, Speed: 0.8 + r.Float64()},
			},
		}
	}
	plat, err := cluster.Build(configs)
	if err != nil {
		return nil, nil, err
	}
	all := make([]int, nPools)
	for i := range all {
		all[i] = i
	}
	n := 30 + r.IntN(120)
	specs := make([]job.Spec, n)
	t := 0.0
	for i := range specs {
		t += r.Float64() * 10
		prio := job.PriorityLow
		cands := all
		if r.IntN(5) == 0 {
			prio = job.PriorityHigh
			cands = all[:1+r.IntN(nPools)]
		}
		specs[i] = job.Spec{
			ID:         job.ID(i + 1),
			Submit:     t,
			Work:       5 + r.Float64()*200,
			Cores:      1 + r.IntN(2),
			MemMB:      512 + r.IntN(4096),
			Priority:   prio,
			Candidates: cands,
		}
	}
	return plat, specs, nil
}

func policyForIndex(i int, seed uint64) core.Policy {
	switch i % 6 {
	case 0:
		return core.NewNoRes()
	case 1:
		return core.NewResSusUtil()
	case 2:
		return core.NewResSusRand(seed)
	case 3:
		return core.NewResSusWaitUtil()
	case 4:
		return core.NewResSusWaitRand(seed)
	default:
		return core.NewResSusMigrate(float64(seed % 20))
	}
}

func initialForIndex(i int, seed uint64) sched.InitialScheduler {
	switch i % 4 {
	case 0:
		return sched.NewRoundRobin()
	case 1:
		return sched.NewPureRoundRobin()
	case 2:
		return sched.NewUtilizationBased()
	default:
		return sched.NewRandomInitial(seed)
	}
}

func TestEngineInvariantsUnderRandomWorkloads(t *testing.T) {
	cfgQuick := &quick.Config{MaxCount: 60}
	err := quick.Check(func(seed uint64, polPick, initPick uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x5bd1e995))
		plat, specs, err := randomWorkload(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		cfg := Config{
			Platform:           plat,
			Initial:            initialForIndex(int(initPick), seed),
			Policy:             policyForIndex(int(polPick), seed),
			CheckConservation:  true, // per-job invariant verified inside
			RescheduleOverhead: float64(seed % 7),
			SuspendHoldsMemory: seed%2 == 0,
		}
		res, err := Run(cfg, specs)
		if err != nil {
			t.Logf("run: %v", err)
			return false
		}
		// Every job completed exactly once.
		if len(res.Jobs) != len(specs) {
			return false
		}
		for _, j := range res.Jobs {
			if j.State() != job.StateCompleted {
				return false
			}
			if j.CompletionTime() < 0 {
				return false
			}
		}
		// Sampled utilization never exceeds capacity.
		for _, p := range res.Util.Points() {
			if p.Y < 0 || p.Y > 100+1e-9 {
				return false
			}
		}
		// Metrics layer accepts the run and components add up.
		sum, err := metrics.Summarize(res.Jobs)
		if err != nil {
			t.Logf("summarize: %v", err)
			return false
		}
		return sum.CheckComponents() == nil
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
}

func TestEngineDeterministicAcrossPolicies(t *testing.T) {
	r := rand.New(rand.NewPCG(99, 7))
	plat, specs, err := randomWorkload(r)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 6; i++ {
		mk := func() Config {
			return Config{
				Platform: plat,
				Initial:  initialForIndex(i, 5),
				Policy:   policyForIndex(i, 5),
			}
		}
		a, err := Run(mk(), specs)
		if err != nil {
			t.Fatal(err)
		}
		b, err := Run(mk(), specs)
		if err != nil {
			t.Fatal(err)
		}
		for k := range a.Jobs {
			if a.Jobs[k].Completed != b.Jobs[k].Completed {
				t.Fatalf("policy %d: job %d completion differs", i, k)
			}
		}
	}
}
