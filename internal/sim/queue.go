package sim

import (
	"netbatch/internal/job"
)

// waitQueue is a physical pool's wait queue: strict priority order
// between classes, FIFO within a class. Entries removed from the middle
// (wait-timeout reschedules) are tombstoned and skipped lazily.
//
// A deliberate — and deliberately preserved — subtlety: slot liveness
// is the job's queued flag, so a tombstoned slot revives if its job
// re-enters a wait queue anywhere. A job that leaves this pool and is
// enqueued again (the same pool after a restart, or another pool after
// a reschedule) becomes visible to this pool's dispatcher again
// through its old slots, keeping its former FIFO position — and a
// dispatcher can thereby start a job that currently waits in a
// different pool's queue. The parallel engine reproduces this
// behavior exactly; see the alias-risk machinery in shard.go.
type waitQueue struct {
	// classes maps priority -> FIFO ring of entries. Tombstones (entries
	// with queued=false) are compacted as the head advances.
	classes map[job.Priority]*fifo
	// prios caches the priorities present, highest first.
	prios []job.Priority
	// n counts live (non-tombstoned) entries.
	n int
	// onDrop, when set, observes every slot physically discarded by
	// compaction (the parallel engine's alias-risk accounting).
	onDrop func(*jobRT)
}

// fitScanLimit bounds how deep the dispatcher looks past the queue head
// for a job that fits a specific machine. A small window avoids
// head-of-line blocking by memory-hungry jobs without turning every
// dispatch into a full queue scan.
const fitScanLimit = 64

func newWaitQueue() *waitQueue {
	return &waitQueue{classes: make(map[job.Priority]*fifo)}
}

// Len returns the number of live entries.
func (w *waitQueue) Len() int { return w.n }

// push appends the entry to its priority class.
func (w *waitQueue) push(rt *jobRT) {
	prio := rt.j.Spec.Priority
	f, ok := w.classes[prio]
	if !ok {
		f = &fifo{}
		w.classes[prio] = f
		w.insertPrio(prio)
	}
	rt.queued = true
	f.push(rt)
	w.n++
}

// insertPrio keeps prios sorted descending.
func (w *waitQueue) insertPrio(p job.Priority) {
	idx := len(w.prios)
	for i, q := range w.prios {
		if p > q {
			idx = i
			break
		}
	}
	w.prios = append(w.prios, 0)
	copy(w.prios[idx+1:], w.prios[idx:])
	w.prios[idx] = p
}

// remove tombstones an entry (it keeps its slot until compaction).
func (w *waitQueue) remove(rt *jobRT) {
	if !rt.queued {
		return
	}
	rt.queued = false
	w.n--
}

// peekFitting returns the highest-priority, oldest entry whose job fits
// the machine, scanning at most fitScanLimit live entries per priority
// class. It does not remove the entry.
func (w *waitQueue) peekFitting(fits func(*jobRT) bool) *jobRT {
	for _, prio := range w.prios {
		f := w.classes[prio]
		f.compact(w.onDrop)
		scanned := 0
		for i := f.head; i < len(f.items) && scanned < fitScanLimit; i++ {
			rt := f.items[i]
			if rt == nil || !rt.queued {
				continue
			}
			scanned++
			if fits(rt) {
				return rt
			}
		}
	}
	return nil
}

// topPriority returns the priority of the oldest live entry of the
// highest class, or 0 if the queue is empty.
func (w *waitQueue) topPriority() job.Priority {
	for _, prio := range w.prios {
		f := w.classes[prio]
		f.compact(w.onDrop)
		for i := f.head; i < len(f.items); i++ {
			if rt := f.items[i]; rt != nil && rt.queued {
				return prio
			}
		}
	}
	return 0
}

// fifo is a slice-backed FIFO with a moving head and periodic
// compaction.
type fifo struct {
	items []*jobRT
	head  int
}

func (f *fifo) push(rt *jobRT) { f.items = append(f.items, rt) }

// compact advances head past tombstones and reclaims space once the
// dead prefix dominates. Discarded slots are reported to onDrop.
func (f *fifo) compact(onDrop func(*jobRT)) {
	for f.head < len(f.items) {
		rt := f.items[f.head]
		if rt != nil && rt.queued {
			break
		}
		if rt != nil && onDrop != nil {
			onDrop(rt)
		}
		f.items[f.head] = nil
		f.head++
	}
	if f.head > 64 && f.head*2 > len(f.items) {
		n := copy(f.items, f.items[f.head:])
		for i := n; i < len(f.items); i++ {
			f.items[i] = nil
		}
		f.items = f.items[:n]
		f.head = 0
	}
}
