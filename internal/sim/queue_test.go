package sim

import (
	"testing"

	"netbatch/internal/job"
)

func queuedRT(id job.ID, prio job.Priority) *jobRT {
	spec := job.Spec{
		ID: id, Work: 10, Cores: 1, MemMB: 1,
		Priority: prio, Candidates: []int{0},
	}
	j := job.New(spec)
	return &jobRT{j: j, spec: &j.Spec}
}

func TestWaitQueuePriorityThenFIFO(t *testing.T) {
	q := newWaitQueue()
	low1 := queuedRT(1, job.PriorityLow)
	low2 := queuedRT(2, job.PriorityLow)
	high1 := queuedRT(3, job.PriorityHigh)
	q.push(low1)
	q.push(low2)
	q.push(high1)
	if q.Len() != 3 {
		t.Fatalf("Len = %d", q.Len())
	}
	anyFits := func(*jobRT) bool { return true }
	if got := q.peekFitting(anyFits); got != high1 {
		t.Fatalf("peek = job %d, want high-priority job 3", got.spec.ID)
	}
	q.remove(high1)
	if got := q.peekFitting(anyFits); got != low1 {
		t.Fatalf("peek = job %d, want FIFO-first low job 1", got.spec.ID)
	}
	q.remove(low1)
	if got := q.peekFitting(anyFits); got != low2 {
		t.Fatalf("peek = job %d, want job 2", got.spec.ID)
	}
	q.remove(low2)
	if q.Len() != 0 || q.peekFitting(anyFits) != nil {
		t.Fatal("queue should be empty")
	}
}

func TestWaitQueueSkipsUnfitting(t *testing.T) {
	q := newWaitQueue()
	big := queuedRT(1, job.PriorityLow)
	big.spec.MemMB = 1 << 20
	small := queuedRT(2, job.PriorityLow)
	q.push(big)
	q.push(small)
	fitsSmallOnly := func(rt *jobRT) bool { return rt.spec.MemMB < 1000 }
	if got := q.peekFitting(fitsSmallOnly); got != small {
		t.Fatal("should skip past the unfitting head")
	}
	// The skipped head stays queued.
	if q.Len() != 2 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestWaitQueueRemoveIdempotent(t *testing.T) {
	q := newWaitQueue()
	rt := queuedRT(1, job.PriorityLow)
	q.push(rt)
	q.remove(rt)
	q.remove(rt) // second removal is a no-op
	if q.Len() != 0 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestWaitQueueTopPriority(t *testing.T) {
	q := newWaitQueue()
	if q.topPriority() != 0 {
		t.Fatal("empty queue should report zero priority")
	}
	low := queuedRT(1, job.PriorityLow)
	q.push(low)
	if q.topPriority() != job.PriorityLow {
		t.Fatal("want low")
	}
	high := queuedRT(2, job.PriorityHigh)
	q.push(high)
	if q.topPriority() != job.PriorityHigh {
		t.Fatal("want high")
	}
	q.remove(high)
	if q.topPriority() != job.PriorityLow {
		t.Fatal("want low after high removed")
	}
}

func TestWaitQueueCompaction(t *testing.T) {
	q := newWaitQueue()
	var all []*jobRT
	for i := 0; i < 500; i++ {
		rt := queuedRT(job.ID(i+1), job.PriorityLow)
		q.push(rt)
		all = append(all, rt)
	}
	// Remove a large prefix to force head advancement and compaction.
	for _, rt := range all[:400] {
		q.remove(rt)
	}
	anyFits := func(*jobRT) bool { return true }
	if got := q.peekFitting(anyFits); got != all[400] {
		t.Fatalf("peek = job %d, want 401", got.spec.ID)
	}
	f := q.classes[job.PriorityLow]
	f.compact(q.onDrop)
	if len(f.items)-f.head > 150 {
		t.Fatalf("compaction ineffective: %d live slots for 100 entries", len(f.items)-f.head)
	}
	if q.Len() != 100 {
		t.Fatalf("Len = %d", q.Len())
	}
}

func TestWaitQueueScanLimit(t *testing.T) {
	q := newWaitQueue()
	// More unfitting entries than the scan limit, then one that fits:
	// the fitting entry is beyond the window and must NOT be found
	// (documented head-of-line trade-off).
	for i := 0; i < fitScanLimit+10; i++ {
		rt := queuedRT(job.ID(i+1), job.PriorityLow)
		rt.spec.MemMB = 1 << 20
		q.push(rt)
	}
	fitting := queuedRT(999, job.PriorityLow)
	q.push(fitting)
	fitsSmallOnly := func(rt *jobRT) bool { return rt.spec.MemMB < 1000 }
	if got := q.peekFitting(fitsSmallOnly); got != nil {
		t.Fatalf("found job %d beyond the scan window", got.spec.ID)
	}
}
