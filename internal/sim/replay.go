package sim

// Replay-based bisection of determinism regressions. Given two
// snapshots of one recorded run — an earlier one ("from") and a later
// one ("to") — ReplayBisect resumes from the earlier snapshot, replays
// the interval twice with full event logging, and stops each replay at
// the exact boundary the later snapshot was taken at (the processed
// event count recorded in its header). Three comparisons localize a
// regression:
//
//   - replay vs replay: if the two replays disagree, the simulator
//     itself is nondeterministic, and the first diverging event (shard,
//     position, time, kind, argument) is reported exactly;
//   - replay vs recorded: if the replays agree with each other but
//     their state at the target boundary differs from the recorded
//     snapshot, the divergence is between this build/replay and the
//     recorded run, localized to the (from, to] interval — re-running
//     with a finer checkpoint cadence brackets it tighter;
//   - events reached: a replay that completes (or hits a barrier past
//     the target) without matching the recorded event count diverged
//     structurally.
//
// Snapshot states compare bytewise: the encoding is deterministic, so
// equal states always encode to equal bytes (label and cadence metadata
// are excluded from the compared region).

import (
	"bytes"
	"errors"
	"fmt"

	"netbatch/internal/job"
)

// errReplayStop is the internal sentinel the engines return when a
// replay reaches its target event count; the capture buffer then holds
// the boundary snapshot.
var errReplayStop = errors.New("sim: replay reached target boundary")

// EventRecord is one dispatched event in a replay log.
type EventRecord struct {
	// T is the simulated time the event executed at.
	T float64
	// Kind is the event kind's registered name.
	Kind string
	// Arg is the kind-specific integer argument (job index, site,
	// machine — whatever the kind's payload projects to).
	Arg int64
}

// replayRecorder accumulates per-shard event logs. Each shard worker
// appends only to its own slice, so parallel recording needs no locks.
type replayRecorder struct {
	perShard [][]EventRecord
}

func newReplayRecorder(shards int) *replayRecorder {
	return &replayRecorder{perShard: make([][]EventRecord, shards)}
}

func (r *replayRecorder) record(shard int, t float64, info *kindInfo, a, b int64, ref any) {
	r.perShard[shard] = append(r.perShard[shard], EventRecord{T: t, Kind: info.name, Arg: info.argOf(a, b, ref)})
}

// BisectReport is ReplayBisect's finding.
type BisectReport struct {
	// FromTime/ToTime and FromEvents/ToEvents are the recorded
	// boundaries of the replayed interval.
	FromTime, ToTime     float64
	FromEvents, ToEvents int64
	// ReplayedEvents counts events the replay processed in the interval.
	ReplayedEvents int64
	// Deterministic reports that the two independent replays agreed
	// event for event and byte for byte.
	Deterministic bool
	// MatchesRecorded reports that the replayed state at the target
	// boundary is byte-identical to the recorded `to` snapshot.
	MatchesRecorded bool
	// FirstDivergence describes the earliest located divergence, empty
	// when Deterministic && MatchesRecorded.
	FirstDivergence string
}

// Clean reports that the interval replays deterministically and
// reproduces the recorded run exactly.
func (r *BisectReport) Clean() bool { return r.Deterministic && r.MatchesRecorded }

// ReplayBisect replays the interval between two snapshots of one
// recorded run to localize a determinism regression (see the file
// comment for the method). cfg and specs must be the configuration and
// workload that produced the snapshots; mismatches fail with
// ErrSnapshotMismatch.
func ReplayBisect(cfg Config, specs []job.Spec, from, to []byte) (*BisectReport, error) {
	snFrom, err := decodeSnapshot(from)
	if err != nil {
		return nil, fmt.Errorf("from snapshot: %w", err)
	}
	snTo, err := decodeSnapshot(to)
	if err != nil {
		return nil, fmt.Errorf("to snapshot: %w", err)
	}
	if snFrom.configHash != snTo.configHash || snFrom.kindHash != snTo.kindHash {
		return nil, fmt.Errorf("%w: the two snapshots come from different configurations", ErrSnapshotMismatch)
	}
	if snFrom.mode != snTo.mode {
		return nil, fmt.Errorf("%w: snapshots from different engine modes (%q vs %q)",
			ErrSnapshotMismatch, snFrom.mode, snTo.mode)
	}
	if snFrom.events > snTo.events {
		return nil, fmt.Errorf("%w: `from` snapshot (%d events) is later than `to` (%d events)",
			ErrSnapshotMismatch, snFrom.events, snTo.events)
	}

	rep := &BisectReport{
		FromTime: snFrom.time, ToTime: snTo.time,
		FromEvents: snFrom.events, ToEvents: snTo.events,
	}
	shardCount := 1
	if snFrom.mode == EngineParallel {
		shardCount = len(snFrom.shards)
	}
	replay := func() ([]byte, *replayRecorder, error) {
		run := cfg
		run.Engine = snFrom.mode
		run.ResumeFrom = from
		run.CheckpointEvery = 0
		run.CheckpointSink = nil
		run.stopAtEvents = snTo.events
		var captured []byte
		run.captureAt = &captured
		rec := newReplayRecorder(shardCount)
		run.eventLog = rec
		_, err := Run(run, specs)
		switch {
		case errors.Is(err, errReplayStop):
			return captured, rec, nil
		case err != nil:
			return nil, nil, err
		default:
			return nil, rec, nil // run completed before reaching the target
		}
	}

	capA, recA, err := replay()
	if err != nil {
		return nil, fmt.Errorf("replay 1: %w", err)
	}
	capB, recB, err := replay()
	if err != nil {
		return nil, fmt.Errorf("replay 2: %w", err)
	}
	for _, log := range recA.perShard {
		rep.ReplayedEvents += int64(len(log))
	}

	if div := firstLogDivergence(recA, recB); div != "" {
		rep.FirstDivergence = div
		return rep, nil
	}
	if capA == nil || capB == nil {
		rep.Deterministic = capA == nil && capB == nil
		rep.FirstDivergence = fmt.Sprintf(
			"replay completed the run after %d events without reaching the recorded boundary (%d events at t=%v): the replay diverged structurally from the recorded run inside (%v, %v]",
			snFrom.events+rep.ReplayedEvents, snTo.events, snTo.time, snFrom.time, snTo.time)
		return rep, nil
	}
	if !bytes.Equal(capA, capB) {
		rep.FirstDivergence = "the two replays processed identical event streams but captured different states — state outside the event stream is nondeterministic"
		return rep, nil
	}
	rep.Deterministic = true

	snCap, err := decodeSnapshot(capA)
	if err != nil {
		return nil, fmt.Errorf("captured snapshot: %w", err)
	}
	if snCap.events != snTo.events {
		rep.FirstDivergence = fmt.Sprintf(
			"replay stopped at a boundary with %d events, recorded snapshot has %d: event counts diverged inside (%v, %v]",
			snCap.events, snTo.events, snFrom.time, snTo.time)
		return rep, nil
	}
	if !bytes.Equal(snCap.comparable, snTo.comparable) {
		rep.FirstDivergence = fmt.Sprintf(
			"replay is deterministic but its state at t=%v (event %d) differs from the recorded snapshot: this build diverges from the recorded run inside (%v, %v] — re-run the recording with a finer -checkpoint-every to bracket the first diverging event",
			snCap.time, snCap.events, snFrom.time, snTo.time)
		return rep, nil
	}
	rep.MatchesRecorded = true
	return rep, nil
}

// firstLogDivergence compares two replays' per-shard event logs and
// describes the earliest mismatch, or returns "".
func firstLogDivergence(a, b *replayRecorder) string {
	for sh := range a.perShard {
		la, lb := a.perShard[sh], b.perShard[sh]
		n := len(la)
		if len(lb) < n {
			n = len(lb)
		}
		for i := 0; i < n; i++ {
			if la[i] != lb[i] {
				return fmt.Sprintf(
					"first diverging event: shard %d event %d — replay 1 {t=%v kind=%s arg=%d} vs replay 2 {t=%v kind=%s arg=%d}",
					sh, i, la[i].T, la[i].Kind, la[i].Arg, lb[i].T, lb[i].Kind, lb[i].Arg)
			}
		}
		if len(la) != len(lb) {
			return fmt.Sprintf(
				"shard %d processed %d events in replay 1 but %d in replay 2 (first %d identical)",
				sh, len(la), len(lb), n)
		}
	}
	return ""
}
