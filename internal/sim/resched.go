package sim

import (
	"fmt"

	"netbatch/internal/core"
	"netbatch/internal/job"
)

// reschedSys is the dynamic-rescheduling subsystem: the paper's
// primary mechanism (§3). It owns the suspension-decision sweep
// (susDecide) and the wait-queue stall timer (waitTimeout). Both
// are deciding events: they consult the core.Policy — whose random
// streams are order-sensitive — and read the (aged) utilization view,
// so the parallel engine executes them in global timestamp order.
type reschedSys struct {
	sh *shard

	// Allocated event kinds, both deciding.
	susDecide, waitTimeout kind
}

func (s *reschedSys) register(k *kernel) {
	sh := s.sh
	s.susDecide = k.registerKind("susDecide", true, func(a, _ int64, _ any) error { return sh.handleSusDecide(int(a)) })
	s.waitTimeout = k.registerKind("waitTimeout", true, func(a, _ int64, _ any) error { return sh.handleWaitTimeout(int(a)) })
	// The subsystem owns no state beyond its pending events (saved with
	// the kernel queue; the core codec rewires each restored wait-timer
	// handle to its job) and the policy's internals (saved through the
	// Stateful contract). The empty codec records that this is by
	// design, and keeps the registry enumeration complete.
	k.registerState("resched", func(*snapEncoder) {}, func(*snapDecoder) error { return nil })
}

// handleSusDecide consults the rescheduling policy about a job that was
// suspended one decision sweep ago.
func (sh *shard) handleSusDecide(idx int) error {
	rt := &sh.w.jobs[idx]
	if rt.j.State() != job.StateSuspended {
		return nil // resumed or departed meanwhile
	}
	// The deciding agent runs at the job's current site.
	sh.view.observe(sh.siteOfPool(rt.j.Pool))
	if target, move := sh.w.cfg.Policy.OnSuspend(sh.k.now, rt.j, sh.view); move {
		return sh.departSuspended(rt, target)
	}
	return nil
}

// departSuspended removes a suspended job from its host and routes it
// toward target, restarting (progress lost) or migrating (progress
// kept) per the policy.
func (sh *shard) departSuspended(rt *jobRT, target int) error {
	mid := rt.j.Machine
	mach := &sh.w.machines[mid]
	p := sh.w.pools[mach.m.Pool]
	if !removeSuspended(mach, rt) {
		return fmt.Errorf("job %d not found in machine %d suspended list", rt.spec.ID, mid)
	}
	sh.noteDetach(rt)
	p.suspendedCnt--
	sh.scopeSuspended--
	if sh.w.cfg.SuspendHoldsMemory {
		mach.freeMemMB += rt.spec.MemMB
	}

	overhead := sh.w.cfg.RescheduleOverhead
	if from := sh.siteOfPool(rt.j.Pool); from != sh.siteOfPool(target) {
		// Crossing a site boundary pays the inter-site transfer delay on
		// top of any configured reschedule overhead.
		overhead += sh.w.plat.RTT(from, sh.siteOfPool(target))
		sh.res.CrossSiteMoves++
	}
	if mig, ok := sh.w.cfg.Policy.(core.Migrator); ok {
		if err := rt.j.MigrateFrom(sh.k.now); err != nil {
			return err
		}
		sh.res.Migrations++
		overhead += mig.MigrationOverhead()
	} else {
		if err := rt.j.RestartFrom(sh.k.now); err != nil {
			return err
		}
		sh.res.Restarts++
	}
	sh.route(rt, target, overhead)
	return sh.onFree(mid)
}

// route delivers a job in transit to a pool, after overhead minutes.
// The destination may be another shard; cross-site overhead always
// includes the inter-site RTT, preserving the lookahead (a same-site
// sibling sub-shard needs none: route only runs inside deciding
// dispatches, where send may inject directly).
func (sh *shard) route(rt *jobRT, pool int, overhead float64) {
	sh.send(sh.w.shardOf(pool), sh.k.now+overhead, sh.place.arrive, int64(rt.idx), int64(pool))
}

// handleWaitTimeout applies the policy's waiting-job rescheduling
// (§3.3): a job stalled past the threshold may dequeue itself and move
// to an alternate pool; otherwise the timer re-arms.
func (sh *shard) handleWaitTimeout(idx int) error {
	rt := &sh.w.jobs[idx]
	if !rt.queued || rt.j.State() != job.StateWaiting {
		return nil // stale timer: the job was dispatched meanwhile
	}
	th := sh.w.cfg.Policy.WaitThreshold()
	if th <= 0 {
		return nil
	}
	sh.view.observe(sh.siteOfPool(rt.j.Pool))
	target, move := sh.w.cfg.Policy.OnWaitTimeout(sh.k.now, rt.j, sh.view)
	if !move || target == rt.j.Pool {
		rt.waitTO = sh.k.schedule(sh.k.now+th, sh.dyn.waitTimeout, int64(rt.idx), 0)
		return nil
	}
	p := sh.w.pools[rt.j.Pool]
	p.waitQ.remove(rt)
	sh.scopeWaiting--
	overhead := sh.w.cfg.RescheduleOverhead
	if from := sh.siteOfPool(rt.j.Pool); from != sh.siteOfPool(target) {
		overhead += sh.w.plat.RTT(from, sh.siteOfPool(target))
		sh.res.CrossSiteMoves++
	}
	if err := rt.j.RescheduleWait(sh.k.now); err != nil {
		return err
	}
	sh.res.WaitMoves++
	sh.route(rt, target, overhead)
	return nil
}
