package sim

import "fmt"

// runSerial drives the whole simulation through a single shard scoped
// to every site: one global event queue, popped in (time, scheduling
// order), exactly the monolithic engine's loop. This is the reference
// semantics the partitioned engine must reproduce bit for bit. With a
// resume snapshot the shard's state is restored instead of seeded and
// the loop continues mid-run; with checkpointing enabled the loop
// snapshots at the first event boundary past each cadence mark.
func runSerial(w *world, sn *snapshot) (*Result, error) {
	sh := newShard(w, 0, allSites(w), false)
	if sn != nil {
		if err := restoreRun(sn, w, []*shard{sh}, nil); err != nil {
			return nil, err
		}
	} else {
		sh.seed()
	}
	ck := newCheckpointer(w, []*shard{sh}, EngineSerial, sn)
	if err := serialLoop(sh, ck); err != nil {
		return nil, err
	}
	res := sh.res
	res.Events = sh.k.events
	res.AliasRetirements = w.aliasRetired
	w.met.aliasRet.Add(w.aliasRetired)
	if err := finalizeJobs(w, &res); err != nil {
		return nil, err
	}
	finalizeFaults(w, &res)
	res.Util = sh.acct.utilTS
	res.Suspended = sh.acct.suspTS
	res.Waiting = sh.acct.waitTS
	res.SiteUtil = sh.acct.siteTS
	return &res, nil
}

func allSites(w *world) []int {
	sites := make([]int, w.nSites)
	for i := range sites {
		sites[i] = i
	}
	return sites
}

func serialLoop(sh *shard, ck *checkpointer) error {
	total := len(sh.w.specs)
	cfg := &sh.w.cfg
	ctx := cfg.Context
	k := sh.k
	met := &sh.w.met
	pm := newProgressMeter(cfg)
	ck.observe(met, cfg.Trace.Track("serial"))
	events0 := k.events
	defer func() { met.events.Add(k.events - events0) }()
	for sh.completed < total {
		ev, ok := k.q.Pop()
		if !ok {
			return fmt.Errorf("sim: deadlock at t=%v: %d of %d jobs completed and no pending events",
				k.now, sh.completed, total)
		}
		if ev.Time < k.now {
			return fmt.Errorf("sim: event time went backwards: %v -> %v", k.now, ev.Time)
		}
		k.now = ev.Time
		if k.now > cfg.MaxTime {
			return fmt.Errorf("sim: exceeded MaxTime %v with %d of %d jobs incomplete",
				cfg.MaxTime, total-sh.completed, total)
		}
		k.events++
		if k.events&255 == 0 {
			if ctx != nil {
				if err := ctx.Err(); err != nil {
					return fmt.Errorf("sim: canceled at t=%v: %w", k.now, err)
				}
			}
			// Observability rides the same stride as the ctx poll: one
			// predicted branch each per 256 events when disabled.
			pm.maybe(k.now, k.events, 0)
			if met.qDepth != nil {
				met.qDepth.Max(int64(k.q.Live()))
				met.qTombs.Max(int64(k.q.Tombstones()))
			}
		}
		// Record sample ticks strictly before this event; ticks that
		// coincide with now are recorded only after every state change
		// at now has been applied (post-event state, see accounting).
		sh.acct.advanceTo(k.now)
		if err := k.dispatch(ev); err != nil {
			return fmt.Errorf("sim: t=%v: %w", k.now, err)
		}
		if cfg.eventLog != nil {
			cfg.eventLog.record(0, k.now, &k.kinds[ev.Kind], ev.A, ev.B, ev.Ref)
		}
		k.releaseRef(ev)
		// Both checkpoint capture points sit at the same boundary: after
		// the event's full effect, before the next pop — where every
		// piece of state is explicit and enumerable.
		if ck.due(k.now) {
			if err := ck.take(k.now, k.events, 0, false); err != nil {
				return err
			}
		}
		if cfg.stopAtEvents > 0 && k.events >= cfg.stopAtEvents {
			data, err := takeSnapshot(sh.w, []*shard{sh},
				newSnapParams(sh.w, []*shard{sh}, EngineSerial, 0), k.now, k.events, 0, false)
			if err != nil {
				return err
			}
			*cfg.captureAt = data
			return errReplayStop
		}
	}
	return nil
}
