package sim

import (
	"fmt"
	"math"
	"sync/atomic"

	"netbatch/internal/cluster"
	"netbatch/internal/job"
	"netbatch/internal/obs"
	"netbatch/internal/stats"
)

var inf = math.Inf(1)

// world is the immutable run-wide context shared by every shard:
// configuration, platform topology, validated specs, and the backing
// arrays whose elements are owned by exactly one shard at a time
// (machines and pools by site, jobs by current residency).
type world struct {
	cfg   Config
	plat  *cluster.Platform
	specs []job.Spec

	nSites     int
	siteOf     []int // pool -> site
	siteCores  []int
	totalCores int

	// start is the first submission time; it anchors the sample-tick
	// grid and the initial snapshot-chain events for every shard.
	start float64

	// minDyn is the smallest offset at which processing any event can
	// spawn a new deciding event (suspension decisions arrive
	// DecisionDelay later, wait timeouts WaitThreshold later; chained
	// submissions are bounded separately through the static submit
	// list). The parallel engine's fences rely on it.
	minDyn float64

	// Shared mutable state, element-ownership partitioned by site.
	machines []machineRT
	pools    []*poolRT
	jobs     []jobRT
	siteBusy []int

	// snap is the stale utilization view storage: snap[obs][pool] is
	// observer site obs's aged view of pool. Nil when every
	// (observer, target) ageing delay is zero (all reads live).
	// snap[obs][p] is written only by the shard owning p's site and
	// read only during globally-serialized deciding events.
	snap [][]float64

	// subBySite[s] lists the indices of specs submitted at site s, in
	// submission order (specs are sorted by submission time).
	subBySite [][]int

	// partOf maps pool -> owning shard index when the conservative
	// engine split a skew-dominant site into per-pool sub-shards (see
	// subShardPlan); nil in every other run, where the partition is
	// exactly the site map. subSharded mirrors partOf != nil and gates
	// the handful of hot-path branches the split needs (siteBusy writes,
	// post-decision next republication).
	partOf     []int
	subSharded bool

	// machBySite[s] lists the machine IDs at site s, and faults[s] is
	// the site's fault/maintenance state (RNG stream, downtime spans,
	// window rotation). Both nil unless cfg.Faults is enabled; each
	// element is owned by the site's shard.
	machBySite [][]int
	faults     []siteFaults

	// aliasLive counts jobs currently attached to a machine at a site
	// other than their queue-pool label's site (jobRT.aliased): the
	// products of cross-site alias dispatches — a revived wait-queue
	// slot handing a shard a job whose current queue pool is at another
	// site, or a preemption chaining off one. While such a job exists,
	// its victim-scan visibility, pending events, and onFree cascades
	// belong to a different partition than its machine state, and any
	// capacity-handoff event anywhere may reach across a partition
	// boundary (e.g. a label-matched victim preemption on a remote
	// machine, or a fault kill canceling a finish event that lives in
	// the remote labeling shard's kernel). While aliasLive > 0 every
	// shard's handoff events are promoted to globally-serialized
	// deciding events, which reproduces the serial order exactly. The
	// risk retires with its cause: when the last aliased job detaches
	// from its machine (completion, departure, or kill), handoffs
	// demote back to shard-local — unlike the run-wide sticky flag this
	// replaces, one early alias dispatch no longer serializes the rest
	// of the run. Every mutation happens inside a dispatch that is
	// itself globally serialized (see noteAttach for why an alias can
	// never be created speculatively), so the parallel engines read a
	// stable value between claims and the optimistic engine never has
	// to roll the counter back.
	aliasLive int

	// aliasRetired counts this run's alias-flag clears for
	// Result.AliasRetirements. Safe as a plain int for the same reason
	// aliasLive is: every mutation happens inside a globally-serialized
	// dispatch.
	aliasRetired int64

	// met holds the run's pre-resolved observability handles; the zero
	// value (Config.Metrics nil) makes every record site a nil check.
	met simMetrics
}

// buildWorld validates the specs against the platform and allocates
// the shared runtime state. cfg must already have defaults applied.
func buildWorld(cfg Config, specs []job.Spec) (*world, error) {
	plat := cfg.Platform
	w := &world{cfg: cfg, plat: plat, specs: specs, met: newSimMetrics(cfg.Metrics)}
	w.machines = make([]machineRT, plat.NumMachines())
	for i := 0; i < plat.NumMachines(); i++ {
		m := plat.Machine(i)
		w.machines[i] = machineRT{m: m, freeCores: m.Cores, freeMemMB: m.MemMB}
		w.totalCores += m.Cores
	}
	w.pools = make([]*poolRT, plat.NumPools())
	for p := 0; p < plat.NumPools(); p++ {
		w.pools[p] = newPoolRT(plat, plat.Pool(p), w.machines)
	}
	w.nSites = plat.NumSites()
	w.siteOf = make([]int, plat.NumPools())
	w.siteBusy = make([]int, w.nSites)
	w.siteCores = make([]int, w.nSites)
	for p := 0; p < plat.NumPools(); p++ {
		s := plat.SiteOf(p)
		w.siteOf[p] = s
		w.siteCores[s] += plat.Pool(p).Cores
	}
	w.jobs = make([]jobRT, len(specs))
	w.subBySite = make([][]int, w.nSites)
	for i := range specs {
		if err := specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("sim: %w", err)
		}
		for _, c := range specs[i].Candidates {
			if c >= plat.NumPools() {
				return nil, fmt.Errorf("sim: job %d references pool %d beyond platform's %d pools",
					specs[i].ID, c, plat.NumPools())
			}
		}
		if s := specs[i].Site; s >= w.nSites {
			return nil, fmt.Errorf("sim: job %d submitted from site %d beyond platform's %d sites",
				specs[i].ID, s, w.nSites)
		}
		w.jobs[i] = jobRT{idx: i, j: job.New(specs[i]), spec: &specs[i]}
		w.subBySite[specs[i].Site] = append(w.subBySite[specs[i].Site], i)
	}
	if len(specs) > 0 {
		w.start = specs[0].Submit
	}
	w.minDyn = cfg.DecisionDelay
	if th := cfg.Policy.WaitThreshold(); th > 0 && th < w.minDyn {
		w.minDyn = th
	}
	if w.stale() {
		w.snap = make([][]float64, w.nSites)
		for obs := range w.snap {
			w.snap[obs] = make([]float64, len(w.pools))
		}
	}
	if cfg.Faults.enabled() {
		w.machBySite = make([][]int, w.nSites)
		for p := 0; p < plat.NumPools(); p++ {
			s := w.siteOf[p]
			w.machBySite[s] = append(w.machBySite[s], plat.Pool(p).Machines...)
		}
		w.faults = make([]siteFaults, w.nSites)
		root := stats.NewRNG(cfg.Faults.Seed)
		for s := range w.faults {
			// Each site gets an independent keyed stream so fault
			// sequences do not depend on site count, engine, or the
			// draws of any other site.
			w.faults[s].rng = root.SplitKey(uint64(s))
			if cfg.Faults.MaintPeriod > 0 {
				// Stagger first windows across sites: offsets of
				// (s+1)/(nSites+1) of a period can never coincide across
				// sites, so windows never produce cross-shard timestamp
				// ties.
				w.faults[s].maintNext = w.start +
					cfg.Faults.MaintPeriod*float64(s+1)/float64(w.nSites+1)
			}
		}
	}
	return w, nil
}

// shardOf maps a pool to the index of the shard that owns it: its
// site, unless the run is sub-sharded and the pool's site was split —
// then the sub-shard the pool was assigned to. Serial and optimistic
// runs never set partOf, so the partition degenerates to the site map.
func (w *world) shardOf(pool int) int {
	if w.partOf != nil {
		return w.partOf[pool]
	}
	return w.siteOf[pool]
}

// ageDelay returns the view-ageing period for observer site obs
// reading a pool at site tgt: the configured staleness plus the
// inter-site delay.
func (w *world) ageDelay(obs, tgt int) float64 {
	return w.cfg.UtilStaleness + w.plat.RTT(obs, tgt)
}

// stale reports whether any (observer, target) pair has a non-zero
// ageing delay, i.e. whether snapshot storage and refresh chains are
// needed at all.
func (w *world) stale() bool {
	if w.cfg.UtilStaleness > 0 {
		return true
	}
	for obs := 0; obs < w.nSites; obs++ {
		for tgt := 0; tgt < w.nSites; tgt++ {
			if w.ageDelay(obs, tgt) > 0 {
				return true
			}
		}
	}
	return false
}

// parallelizable reports whether the partitioned engine can run this
// configuration: at least two sites, a strictly positive delay on
// every cross-site edge (the conservative lookahead), and a decision
// delay within that lookahead — a pending suspension decision must be
// unable to chase its job across a site boundary (the job is still in
// transit, never suspended remotely, when any stale decision fires),
// which is what keeps every event handler's touch set inside its own
// partition. Anything else falls back to the serial kernel, which is
// trivially identical.
func (w *world) parallelizable() bool {
	minRTT := w.plat.MinCrossRTT()
	return w.nSites > 1 && minRTT > 0 && len(w.specs) > 0 &&
		w.cfg.DecisionDelay <= minRTT
}

// shard is one partition of the simulation: a kernel plus the
// subsystem state for a subset of sites. The serial engine runs a
// single shard scoped to every site; the parallel engine runs one
// shard per site. A shard only ever touches machines, pools and
// resident jobs of its own sites — cross-site traffic leaves through
// send and arrives through its kernel queue at round barriers.
type shard struct {
	w     *world
	k     *kernel
	index int
	sites []int

	// pools, when non-nil, restricts the shard to a subset of its
	// (single) site's pools: the shard is one sub-shard of a skew-split
	// hot site. primary marks the first sub-shard of the site — the one
	// that owns the site's submission chain and whose refresh-chain
	// events count toward Result.Events (siblings' are phantoms) — and
	// is true for every non-split shard. siblings lists the other
	// sub-shards of the same site by shard index (nil otherwise): the
	// only peers that can inject events into this shard mid-round.
	pools    []int
	primary  bool
	siblings []int

	// subIdx are the indices of specs submitted inside this shard's
	// scope, in submission order; nextSubmit chains them one event at
	// a time exactly like the monolithic engine did.
	subIdx     []int
	nextSubmit int

	scopeBusy      int
	scopeSuspended int
	scopeWaiting   int
	completed      int

	// The registered subsystems. Each owns the event kinds it
	// allocated from the kernel registry; cross-subsystem scheduling
	// (e.g. placement arming a rescheduling decision) goes through
	// these handles. faults is nil unless cfg.Faults is enabled.
	place  *placementSys
	dyn    *reschedSys
	snaps  *snapshotSys
	faults *faultSys

	view *poolView
	acct *accounting

	// Alias-risk tracking (parallel shards only; see the waitQueue
	// comment for the revival semantics being preserved). A dispatcher
	// scan of this shard's wait queues touches only shard-resident jobs
	// — and is therefore safe to run concurrently with other shards —
	// unless some job that departed this site still has un-compacted
	// slots in a local FIFO: such a slot can revive while its job
	// waits at a remote site, and scanning (or dispatching!) it reads
	// and writes remote-shard state. aliasRisk counts those jobs; while
	// it is non-zero, the shard's capacity-handoff events (finish,
	// arrival) are promoted to globally-serialized deciding events and
	// fence-published, which reproduces the serial engine's ordering
	// for cross-site alias interactions exactly. All three arrays are
	// read and written only by this shard.
	away        []bool  // job departed this site and has not returned
	slotCount   []int32 // this shard's un-compacted FIFO slots per job
	riskCounted []bool  // job currently counted in aliasRisk
	aliasRisk   int

	// peers maps site -> shard in parallel runs (nil otherwise); used
	// only under global quiescence, to tell a queue's owning shard that
	// an alias dispatch took its job.
	peers []*shard

	res Result

	// par holds the parallel-engine bookkeeping; nil in serial runs.
	par *parShard

	// opt holds the optimistic-engine bookkeeping (snapshot stack,
	// speculation horizons); nil outside optimistic runs. Its presence
	// also switches the state codecs into light mode: in-memory
	// rollback snapshots skip append-only logs (saving only lengths to
	// truncate to) and scope the placement job loop to resident and
	// in-transit jobs instead of the whole submission history.
	opt *optShard

	// trace is the shard's timeline lane (nil when tracing is off).
	// Written only by the goroutine currently driving the shard, which
	// every engine already guarantees is unique at any instant.
	trace *obs.Track
}

// newShard builds a shard over the given sites and registers the
// subsystems with its kernel.
func newShard(w *world, index int, sites []int, parallel bool) *shard {
	return newShardPools(w, index, sites, nil, true, parallel)
}

// newShardPools is newShard generalized to sub-shards: when pools is
// non-nil the shard owns only that subset of its (single) site's
// pools, and only the primary sub-shard carries the site's submission
// chain.
func newShardPools(w *world, index int, sites []int, pools []int, primary, parallel bool) *shard {
	sh := &shard{
		w:       w,
		k:       newKernel(parallel),
		index:   index,
		sites:   sites,
		pools:   pools,
		primary: primary,
	}
	if len(sites) == w.nSites {
		sh.subIdx = make([]int, len(w.specs))
		for i := range sh.subIdx {
			sh.subIdx[i] = i
		}
	} else {
		if primary {
			for _, s := range sites {
				sh.subIdx = append(sh.subIdx, w.subBySite[s]...)
			}
		}
		if len(sites) > 1 {
			panic("sim: parallel shards are single-site")
		}
	}
	sh.view = newPoolView(sh)
	sh.acct = newAccounting(sh, parallel)
	if parallel {
		sh.par = &parShard{outbox: make([][]outMsg, w.nSites)}
	}
	// The shard core registers its own state codec (clock, event
	// counters, Result counters, the pending event list) ahead of the
	// subsystems', followed by the accounting sink; subsystem codecs
	// then follow kind-registration order. The combined order is
	// identical across shards and runs, which is what lets snapshots
	// pair saved sections with codecs positionally.
	sh.registerCoreState()
	sh.acct.register(sh.k)
	// Subsystem registration order defines the run's kind numbering;
	// it must be identical in every shard (and is, because this is the
	// only registration site).
	sh.place = &placementSys{sh: sh}
	sh.dyn = &reschedSys{sh: sh}
	sh.snaps = &snapshotSys{sh: sh}
	systems := []subsystem{sh.place, sh.dyn, sh.snaps}
	if w.cfg.Faults.enabled() {
		sh.faults = &faultSys{sh: sh}
		systems = append(systems, sh.faults)
	}
	for _, sys := range systems {
		sys.register(sh.k)
	}
	if parallel {
		sh.away = make([]bool, len(w.jobs))
		sh.slotCount = make([]int32, len(w.jobs))
		sh.riskCounted = make([]bool, len(w.jobs))
		for _, p := range sh.ownPools() {
			w.pools[p].waitQ.onDrop = func(rt *jobRT) {
				sh.slotCount[rt.idx]--
				sh.recountRisk(rt.idx)
			}
		}
	}
	return sh
}

// ownPools returns the pool IDs this shard owns: its explicit subset
// when sub-sharded, otherwise every pool of its sites.
func (sh *shard) ownPools() []int {
	if sh.pools != nil {
		return sh.pools
	}
	if len(sh.sites) == 1 {
		return sh.w.plat.Site(sh.sites[0]).Pools
	}
	var all []int
	for _, s := range sh.sites {
		all = append(all, sh.w.plat.Site(s).Pools...)
	}
	return all
}

// registerCoreState installs the shard-core state codec: the kernel
// clock and counters, the submission-chain cursor, the scope counters,
// the shard's slice of the Result counters, the pending future event
// list (exact tie ranks included — see saveQueue/restoreQueue), and the
// parallel engine's per-shard bookkeeping (departure bitmap, message
// sequence, cross-site busy-shift ledger).
func (sh *shard) registerCoreState() {
	sh.k.registerState("core", func(e *snapEncoder) {
		k := sh.k
		e.F64(k.now)
		e.I64(k.events)
		e.U64(k.phase)
		e.Int(sh.nextSubmit)
		e.Int(sh.scopeBusy)
		e.Int(sh.scopeSuspended)
		e.Int(sh.scopeWaiting)
		e.Int(sh.completed)
		e.I64(sh.res.Preemptions)
		e.I64(sh.res.Restarts)
		e.I64(sh.res.Migrations)
		e.I64(sh.res.WaitMoves)
		e.I64(sh.res.CrossSiteSubmits)
		e.I64(sh.res.CrossSiteMoves)
		e.I64(sh.res.Kills)
		e.I64(sh.res.Requeues)
		sh.saveQueue(e)
		if sh.par != nil {
			e.Bools(sh.away)
			e.U64(sh.par.msgSeq)
			e.Int(len(sh.par.busyShifts))
			for _, bs := range sh.par.busyShifts {
				e.F64(bs.t)
				e.Int(bs.exec)
				e.Int(bs.site)
				e.Int(int(bs.delta))
			}
		}
	}, func(d *snapDecoder) error {
		k := sh.k
		k.now = d.F64()
		k.events = d.I64()
		k.phase = d.U64()
		sh.nextSubmit = d.Int()
		sh.scopeBusy = d.Int()
		sh.scopeSuspended = d.Int()
		sh.scopeWaiting = d.Int()
		sh.completed = d.Int()
		sh.res.Preemptions = d.I64()
		sh.res.Restarts = d.I64()
		sh.res.Migrations = d.I64()
		sh.res.WaitMoves = d.I64()
		sh.res.CrossSiteSubmits = d.I64()
		sh.res.CrossSiteMoves = d.I64()
		sh.res.Kills = d.I64()
		sh.res.Requeues = d.I64()
		if err := sh.restoreQueue(d); err != nil {
			return err
		}
		if sh.par != nil {
			away := d.BoolsN(len(sh.w.jobs))
			if d.err == nil && len(away) != len(sh.away) {
				d.fail()
				return d.err
			}
			copy(sh.away, away)
			sh.par.msgSeq = d.U64()
			n := d.Int()
			if d.err != nil || n < 0 {
				d.fail()
				return d.err
			}
			sh.par.busyShifts = make([]busyShift, n)
			for i := range sh.par.busyShifts {
				sh.par.busyShifts[i] = busyShift{
					t: d.F64(), exec: d.Int(), site: d.Int(), delta: int32(d.Int()),
				}
			}
		}
		return nil
	})
}

// recountRisk re-evaluates whether job idx contributes to aliasRisk:
// it does while it is away from this site with slots still present in
// a local FIFO.
func (sh *shard) recountRisk(idx int) {
	c := sh.away[idx] && sh.slotCount[idx] > 0
	if c == sh.riskCounted[idx] {
		return
	}
	sh.riskCounted[idx] = c
	if c {
		sh.aliasRisk++
	} else {
		sh.aliasRisk--
	}
}

// noteSlotPush records a new local FIFO slot for job idx.
func (sh *shard) noteSlotPush(idx int) {
	if sh.slotCount == nil {
		return
	}
	sh.slotCount[idx]++
	sh.recountRisk(idx)
}

// noteResident marks job idx as present at this site again (it
// arrived, or a revived local slot just dispatched it here).
func (sh *shard) noteResident(idx int) {
	if sh.away == nil || !sh.away[idx] {
		return
	}
	sh.away[idx] = false
	sh.recountRisk(idx)
}

// noteAway marks job idx as departed to another site.
func (sh *shard) noteAway(idx int) {
	if sh.away == nil || sh.away[idx] {
		return
	}
	sh.away[idx] = true
	sh.recountRisk(idx)
}

// aliasRetirements counts alias-flag clears (noteDetach on an aliased
// job) across every run in the process. Tests assert the retirement
// path genuinely engages — that handoffs demote back to local after
// the last aliased job detaches — through deltas of this counter.
var aliasRetirements atomic.Int64

// noteAttach records a job's machine attachment for the alias-risk
// ledger: the job is aliased iff the machine's partition differs from
// the job's queue-pool label's partition (site, or sub-shard when the
// site is skew-split — a same-site cross-sub-shard attach crosses a
// partition boundary exactly like a cross-site one, and must serialize
// handoffs the same way). Called from startOn, the single point where
// a job acquires a machine with a possibly-foreign label (resume
// re-attaches to the same machine with the same label and cannot
// change the flag).
//
// An alias can never be created speculatively: a revived slot handing
// out a departed job requires the slot shard's own aliasRisk > 0, and
// a preemption reaching a remote machine requires an already-aliased
// victim (findVictim matches on the label pool, so a cross-partition
// match implies the victim's label and machine partitions differ),
// i.e. aliasLive > 0 — both of which promote the dispatching handoff
// to a globally-serialized deciding event first. Speculative bursts
// therefore only ever attach label-local jobs, and rollback never
// needs to undo the ledger.
func (sh *shard) noteAttach(rt *jobRT, machPool int) {
	if rt.aliased {
		// Already aliased and re-attaching (kill-and-requeue lands on
		// the machine pool, clearing first): unreachable today, but keep
		// the counter exact if a future path re-attaches without detach.
		return
	}
	if sh.w.shardOf(rt.j.Pool) != sh.w.shardOf(machPool) {
		rt.aliased = true
		sh.w.aliasLive++
	}
}

// noteDetach retires a job's alias flag when it leaves its machine
// (completion, suspended departure, or fault kill). Once the last live
// flag clears, every running or suspended job's label site matches its
// machine site again, so no victim scan, pending event, or onFree
// cascade can cross a partition boundary — capacity handoffs demote
// back to shard-local dispatch until the next alias dispatch.
func (sh *shard) noteDetach(rt *jobRT) {
	if !rt.aliased {
		return
	}
	rt.aliased = false
	sh.w.aliasLive--
	sh.w.aliasRetired++
	aliasRetirements.Add(1)
}

// rebuildAliasLive recomputes the alias-risk ledger from restored job
// and machine state: a job is aliased iff it is attached to a machine
// (running or suspended-on-machine) whose pool's partition differs
// from the job's label pool's partition. Snapshots do not persist the
// ledger — it is a pure function of the state they do persist — so
// checkpoint restore calls this after every shard codec has loaded.
// (Checkpointed runs are never sub-sharded, so the partition here is
// always the site map.)
func rebuildAliasLive(w *world) {
	w.aliasLive = 0
	for i := range w.jobs {
		rt := &w.jobs[i]
		rt.aliased = false
		st := rt.j.State()
		if st != job.StateRunning && st != job.StateSuspended {
			continue
		}
		if w.shardOf(rt.j.Pool) != w.shardOf(w.machines[rt.j.Machine].m.Pool) {
			rt.aliased = true
			w.aliasLive++
		}
	}
}

// seed schedules the shard's initial events: its first local
// submission, and the snapshot refresh chains for every (observer,
// target-site-in-scope) pair with a non-zero ageing delay — both at
// the run's global start time, submission first, matching the
// monolithic engine's initialization order. One refresh chain runs per
// pair; on a single-site platform with UtilStaleness > 0 that is
// exactly one chain, reproducing the historical single-snapshot
// behavior.
func (sh *shard) seed() {
	if len(sh.w.specs) == 0 {
		return
	}
	if len(sh.subIdx) > 0 {
		first := sh.subIdx[0]
		sh.k.schedule(sh.w.specs[first].Submit, sh.place.submit, int64(first), 0)
		sh.nextSubmit = 1
	}
	// Fault chains seed last: they start strictly after the trace
	// start (staggered windows, exponential first-crash gaps), so the
	// relative order here only keeps scheduling-order stable.
	defer func() {
		if sh.faults != nil {
			sh.faults.seed()
		}
	}()
	if sh.w.cfg.DisableSampling {
		return
	}
	// Stale utilization views refresh on the sample-tick grid; only
	// those (rare) refresh points need real events. The chain for pair
	// (obs, tgt) is owned by tgt's shard: the refresh reads tgt's live
	// pool state.
	for obs := 0; obs < sh.w.nSites; obs++ {
		for _, tgt := range sh.sites {
			if sh.w.ageDelay(obs, tgt) > 0 {
				sh.k.schedule(sh.w.start, sh.snaps.snapshot, int64(obs), int64(tgt))
			}
		}
	}
}

// nextChainSubmit returns the submission time of the shard's earliest
// not-yet-scheduled submit event, or +inf. Together with the decide
// shadow queue it lower-bounds every deciding event this shard can
// ever schedule, which is what the parallel engine's fences publish.
func (sh *shard) nextChainSubmit() float64 {
	if sh.nextSubmit < len(sh.subIdx) {
		return sh.w.specs[sh.subIdx[sh.nextSubmit]].Submit
	}
	return inf
}

// decideFence returns the timestamp below which this shard is
// guaranteed not to hold (or later create, while idle) any pending
// deciding event.
func (sh *shard) decideFence() float64 {
	f := sh.k.nextDecide()
	if t := sh.nextChainSubmit(); t < f {
		f = t
	}
	return f
}

// publishedFence is what the shard advertises to its peers: the
// earliest timestamp at which it may execute an event that reads or
// writes another shard's state. Three sources bound it: pending (and
// future chained-submission) deciding events; while alias risk is
// live — locally, or anywhere via a machine-attached aliased job —
// pending capacity handoffs (they are then serialized too); and — crucially —
// decisions that do not exist yet: processing any pending event at
// time u can arm a suspension decision or wait timeout no earlier
// than u + minDyn, so the fence can never exceed the next event's
// time plus that offset.
func (sh *shard) publishedFence() float64 {
	f := sh.decideFence()
	if sh.aliasRisk > 0 || sh.w.aliasLive > 0 {
		if t := sh.k.nextHandoff(); t < f {
			f = t
		}
	}
	if t, ok := sh.k.q.NextTime(); ok && t+sh.w.minDyn < f {
		f = t + sh.w.minDyn
	}
	return f
}

// send schedules an event for the shard dest (a shard index — equal to
// the site index in every run but a sub-sharded one): locally when the
// destination is this shard (always, in the serial engine), otherwise
// into the destination's outbox buffer for batched delivery at the
// next round barrier. Cross-site events always carry at least the
// inter-site RTT of delay, which is what keeps rounds closed under the
// lookahead. A same-site sibling sub-shard is the one destination with
// zero lookahead, so the barrier cannot carry the message; every send
// originates in a globally-serialized deciding dispatch (submission
// routing, reschedule routing), under which all peers are provably
// quiescent, so the event goes straight into the sibling's kernel,
// stamped with the deciding event's tie rank. A job routed away (an
// arrive event crossing shards) is marked departed for the alias-risk
// accounting.
func (sh *shard) send(dest int, t float64, kd kind, a, b int64) {
	if sh.par == nil || dest == sh.index {
		sh.k.schedule(t, kd, a, b)
		return
	}
	if kd == sh.place.arrive {
		sh.noteAway(int(a))
	}
	if peer := sh.peers[dest]; peer.sites[0] == sh.sites[0] {
		peer.k.phase = sh.k.phase
		peer.k.schedule(t, kd, a, b)
		return
	}
	sh.par.msgSeq++
	sh.par.outbox[dest] = append(sh.par.outbox[dest], outMsg{
		t: t, kind: kd, a: a, b: b,
		g: sh.k.phase, idx: sh.par.msgSeq,
	})
	sh.par.outboxN++
}

// siteOfPool is a convenience accessor.
func (sh *shard) siteOfPool(pool int) int { return sh.w.siteOf[pool] }

// ownerOf returns the shard owning pool: this shard outside parallel
// runs, otherwise the peer the partition maps the pool to.
func (sh *shard) ownerOf(pool int) *shard {
	if sh.peers == nil {
		return sh
	}
	return sh.peers[sh.w.shardOf(pool)]
}

// syncTo prepares this shard to execute work injected inline by a
// sibling's deciding dispatch at time t: the clock and tie-rank phase
// adopt the dispatching event's, and accounting ticks strictly below t
// flush before any state mutates (they must read pre-injection state).
// The caller holds the coordinator mutex with every shard quiescent,
// and serialized decisions execute in global timestamp order, so t
// never precedes this shard's clock (exact ties are flagged
// elsewhere).
func (sh *shard) syncTo(t float64, phase uint64) {
	if t > sh.k.now {
		sh.k.now = t
	}
	sh.k.phase = phase
	sh.acct.advanceTo(t)
}

// addBusy applies a busy-core change for a machine of the given pool:
// the executing shard's scope counter (what its raw sample log reads)
// and the machine site's counter (what the serial site series read).
// When a globally-serialized event mutates a machine at another site —
// possible only after a cross-site alias dispatch — the shift is also
// logged so the parallel merge can re-attribute the executing shard's
// samples to the machine's site, keeping per-site series bit-identical
// to the serial engine's.
func (sh *shard) addBusy(pool, delta int) {
	site := sh.w.siteOf[pool]
	sh.scopeBusy += delta
	if !sh.w.subSharded {
		// siteBusy backs the serial sampler and the checkpoint codec,
		// both unreachable in a sub-sharded run — and same-site sibling
		// sub-shards would race on it during concurrent non-deciding
		// events, so it stays untouched there.
		sh.w.siteBusy[site] += delta
	}
	if sh.par != nil && site != sh.sites[0] {
		sh.par.busyShifts = append(sh.par.busyShifts, busyShift{
			t: sh.k.now, exec: sh.sites[0], site: site, delta: int32(delta),
		})
	}
}

// finalize assembles the common parts of a Result from the world's job
// records: completion check, job list, and makespan. Counter and
// series assembly differ per engine and stay with the callers.
func finalizeJobs(w *world, res *Result) error {
	res.Jobs = make([]*job.Job, len(w.jobs))
	for i := range w.jobs {
		res.Jobs[i] = w.jobs[i].j
		if w.jobs[i].j.State() != job.StateCompleted {
			return fmt.Errorf("sim: job %d finished run in state %v",
				w.jobs[i].spec.ID, w.jobs[i].j.State())
		}
		if c := w.jobs[i].j.Completed; c > res.Makespan {
			res.Makespan = c
		}
	}
	return nil
}
