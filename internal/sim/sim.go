// Package sim is the reproduction's ASCA equivalent: a deterministic
// discrete-event simulator of the NetBatch platform. Like the original
// Agent-based Simulator for Compute Allocation (§3.1, [12]), it "models
// the operational capability and semantics of various fine-grained
// components of NetBatch such as sites, pools, queues, job requirements
// and priorities, virtual and physical pool managers, round-robin
// physical pool scheduling", samples system state every simulated
// minute, and feeds the post-analysis metrics layer.
//
// Semantics implemented (with paper references):
//
//   - Virtual pool manager: jobs are queued on submission and sent to a
//     physical pool chosen by the initial scheduler; pools with no
//     eligible machine are skipped (§2.1).
//   - Physical pool manager: dispatch to the first eligible available
//     machine; otherwise preempt a lower-priority running job
//     (host-level suspension, §2.2); otherwise queue (§2.1).
//   - Suspension: the victim stays parked on its host and resumes with
//     progress intact once capacity frees and no higher-priority waiting
//     job wants it; jobs can be suspended repeatedly (§2.2).
//   - Dynamic rescheduling: a core.Policy decides, on each suspension
//     and on each wait-queue timeout, whether to restart the job at an
//     alternate pool (losing progress — NetBatch restarts from the
//     beginning, §2.3/§3.2) or, for migration policies, to move it with
//     progress preserved.
//
// Architecturally the engine is a small policy-free event kernel
// (kernel.go) with an open event-kind registry, plus pluggable
// subsystems — placement/preemption (placement.go), dynamic
// rescheduling (resched.go), stale-view snapshots (snapshot.go),
// machine faults and maintenance windows (faults.go) and series
// accounting (accounting.go) — each of which allocates its event kinds
// from the registry per shard (shard.go). Two engines drive the same
// subsystem code: the serial reference loop (serial.go) and a
// conservatively-synchronized parallel engine that runs one shard per
// site (parallel.go), selected by Config.Engine. See
// docs/ARCHITECTURE.md for the layering and the synchronization
// protocol.
package sim

import (
	"context"
	"fmt"
	"time"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/obs"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
)

// Engine names for Config.Engine.
const (
	// EngineSerial is the single-threaded reference kernel.
	EngineSerial = "serial"
	// EngineParallel partitions the simulation per site and executes
	// the partitions on separate goroutines, synchronized conservatively
	// with lookahead derived from the minimum inter-site RTT. Results
	// are bit-identical to EngineSerial. Configurations the partitioned
	// engine cannot accelerate (single site, a zero cross-site delay, or
	// an empty trace) fall back to the serial kernel.
	EngineParallel = "parallel"
	// EngineOptimistic partitions like EngineParallel but lets shards
	// speculate past the global decision floor, taking cheap per-shard
	// incremental snapshots and rolling back when a committed decision
	// lands below a shard's clock (Time Warp on the snapshot contract;
	// see optimistic.go). Deciding events stay globally serialized, so
	// results remain bit-identical to EngineSerial. Flows the optimistic
	// engine does not support (checkpointing, resume, replay recording)
	// fall back to the conservative engine; non-parallelizable
	// configurations fall back to the serial kernel.
	EngineOptimistic = "optimistic"
)

// Config parameterizes one simulation run.
type Config struct {
	// Platform is the static machine/pool model. Required.
	Platform *cluster.Platform
	// Initial is the virtual pool manager's initial scheduler. Required.
	Initial sched.InitialScheduler
	// Policy is the dynamic rescheduling strategy. Required.
	Policy core.Policy

	// Engine selects the execution engine: EngineSerial (default, also
	// ""), EngineParallel or EngineOptimistic. All produce identical
	// results; see the engine constants.
	Engine string

	// SampleEvery is the state-sampling period in minutes (ASCA samples
	// every minute; default 1).
	SampleEvery float64
	// SeriesBin is the aggregation bin for the output time series in
	// minutes (the paper aggregates per 100 minutes; default 100).
	SeriesBin float64
	// RescheduleOverhead is the transfer delay in minutes charged on
	// every reschedule move (§5 future work: "network delays and other
	// rescheduling associated overheads"). Default 0, matching the
	// paper's evaluation.
	RescheduleOverhead float64
	// SuspendHoldsMemory keeps a suspended job's memory allocated on its
	// host instead of swapping it out. Default false (swapped out).
	SuspendHoldsMemory bool
	// UtilStaleness makes the PoolView's utilization snapshots lag by up
	// to this many minutes, modeling cross-pool propagation delay
	// (§3.2.2's practicality caveat). Default 0 (live view).
	UtilStaleness float64
	// DecisionDelay is how long after a suspension the rescheduling
	// policy is consulted, modeling ASCA's minute-stepped agents (§3.1).
	// A job that resumes within the delay is never offered for
	// rescheduling. Default 1 minute; negative values are rejected.
	DecisionDelay float64
	// Faults enables the fault & maintenance subsystem (faults.go):
	// deterministic per-site machine crashes and scheduled maintenance
	// windows with a configurable victim-job policy. The zero value
	// disables it entirely and leaves every output byte-identical.
	Faults FaultConfig
	// QueueBeatsResume inverts the capacity handoff order. By default a
	// freed core first resumes the host's suspended jobs (NetBatch
	// suspension is host-level, §2.2: the suspended process continues
	// when its host frees, independent of the pool queue) and only then
	// serves the pool wait queue. With QueueBeatsResume, waiting jobs of
	// strictly higher priority preempt the resume (ablation).
	QueueBeatsResume bool
	// MaxTime aborts the run if simulated time passes this cap,
	// indicating livelock. Default 10,000,000 minutes.
	MaxTime float64
	// CheckConservation verifies each job's accounting invariant on
	// completion. Default true; costs almost nothing.
	CheckConservation bool
	// DisableSampling turns off per-minute sampling (for benchmarks
	// that only need job metrics).
	DisableSampling bool
	// Context cooperatively cancels a long run: the engine polls it
	// every few hundred events and aborts with its error. Nil means the
	// run cannot be canceled.
	Context context.Context

	// CheckpointEvery takes a full-state snapshot every this many
	// simulated minutes: the serial engine at the first event boundary
	// past each mark, the parallel engine at the first round barrier
	// past it. 0 disables checkpointing. Resuming from any emitted
	// snapshot reproduces the straight run bit-identically (jobs,
	// series, counters, event counts). Requires CheckpointSink.
	CheckpointEvery float64
	// CheckpointSink receives each encoded snapshot. A sink error
	// aborts the run.
	CheckpointSink func(Checkpoint) error
	// CheckpointLabel is free-form metadata embedded in every emitted
	// snapshot (e.g. the experiment cell that produced it). It does not
	// participate in compatibility checks or snapshot comparison.
	CheckpointLabel string
	// CheckpointKeyframe delta-encodes the periodic snapshot stream:
	// every Nth emitted snapshot is a full keyframe and the snapshots
	// between are binary deltas against the immediately previous
	// snapshot (Checkpoint.Delta marks them). 0 or 1 emits only full
	// snapshots. The first snapshot of any run — including a resumed
	// one — is always full, so every delta chains back to a keyframe
	// in the same run. A delta that would not be smaller than the full
	// encoding is emitted full instead. Resuming from a delta requires
	// reconstructing it first: apply ApplySnapshotDelta along the chain
	// from the nearest keyframe (the experiments runner does this for
	// its checkpoint directories).
	CheckpointKeyframe int
	// Metrics, when non-nil, receives engine execution counters —
	// events dispatched, rounds, fence waits, bursts, speculative
	// snapshots, rollbacks, group-commit sizes, sub-shard steals,
	// alias retirements, checkpoint captures, and event-queue
	// depth/tombstone high-water marks (see internal/obs for names).
	// Handles are resolved once per run; with Metrics nil every record
	// site degenerates to a nil check — no allocation, no atomics.
	// Metrics describe the execution, never the simulated system, and
	// are excluded from the engines' bit-identity contract.
	Metrics *obs.Registry
	// Trace, when non-nil, records a Chrome trace_event timeline of
	// the run into the given process group: one track per shard plus a
	// coordinator track, with spans for rounds, fence waits, bursts,
	// group-commit drains, rollbacks and checkpoint captures.
	// Timestamps are wall-clock — the timeline attributes real
	// execution time. Like Metrics, tracing never affects event order,
	// RNG draws, or results.
	Trace *obs.Process
	// Progress, when non-nil, is invoked from cheap engine sync points
	// (the serial ctx-poll stride, round barriers, commit passes) at
	// most once per ProgressEvery of wall time with the current
	// simulated-time frontier. The callback must be fast and must not
	// touch simulation state.
	Progress func(obs.Progress)
	// ProgressEvery throttles Progress callbacks. Default 500ms.
	ProgressEvery time.Duration

	// ResumeFrom is an encoded snapshot (Checkpoint.Data) to resume
	// from instead of starting at t=0. The snapshot must come from a
	// run with the same configuration, workload and engine mode;
	// mismatches fail with ErrSnapshotMismatch before any simulation
	// state is touched. Stateful schedulers/policies are restored
	// through the Stateful contract.
	ResumeFrom []byte

	// stopAtEvents and captureAt are replay-bisect internals (see
	// ReplayBisect): stop the run at the boundary where the processed
	// event count reaches stopAtEvents and capture a snapshot there.
	// eventLog, when set, records every dispatched event.
	stopAtEvents int64
	captureAt    *[]byte
	eventLog     *replayRecorder
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Platform == nil {
		return out, fmt.Errorf("sim: config needs a platform")
	}
	if out.Initial == nil {
		return out, fmt.Errorf("sim: config needs an initial scheduler")
	}
	if out.Policy == nil {
		return out, fmt.Errorf("sim: config needs a rescheduling policy")
	}
	switch out.Engine {
	case "", EngineSerial, EngineParallel, EngineOptimistic:
	default:
		return out, fmt.Errorf("sim: unknown engine %q (want %q, %q or %q)",
			out.Engine, EngineSerial, EngineParallel, EngineOptimistic)
	}
	if out.SampleEvery <= 0 {
		out.SampleEvery = 1
	}
	if out.SeriesBin <= 0 {
		out.SeriesBin = 100
	}
	if out.RescheduleOverhead < 0 {
		return out, fmt.Errorf("sim: negative reschedule overhead %v", out.RescheduleOverhead)
	}
	if out.UtilStaleness < 0 {
		return out, fmt.Errorf("sim: negative staleness %v", out.UtilStaleness)
	}
	if out.UtilStaleness > 0 && out.DisableSampling {
		return out, fmt.Errorf("sim: UtilStaleness requires sampling (snapshots refresh at sample events)")
	}
	if out.Platform.NumSites() > 1 && out.Platform.MaxRTT() > 0 && out.DisableSampling {
		return out, fmt.Errorf("sim: inter-site RTT requires sampling (view ageing refreshes at sample events)")
	}
	if out.DecisionDelay < 0 {
		return out, fmt.Errorf("sim: negative decision delay %v", out.DecisionDelay)
	}
	if out.CheckpointEvery < 0 {
		return out, fmt.Errorf("sim: negative checkpoint interval %v", out.CheckpointEvery)
	}
	if out.CheckpointEvery > 0 && out.CheckpointSink == nil {
		return out, fmt.Errorf("sim: CheckpointEvery requires a CheckpointSink")
	}
	if out.CheckpointKeyframe < 0 {
		return out, fmt.Errorf("sim: negative checkpoint keyframe interval %d", out.CheckpointKeyframe)
	}
	if err := out.Faults.validate(); err != nil {
		return out, err
	}
	if out.DecisionDelay == 0 {
		out.DecisionDelay = 1
	}
	if out.MaxTime <= 0 {
		out.MaxTime = 1e7
	}
	return out, nil
}

// Result is a completed simulation run.
type Result struct {
	// Jobs are the completed job records, in spec order.
	Jobs []*job.Job
	// Util is the platform utilization (%) time series, binned.
	Util *stats.TimeSeries
	// Suspended is the suspended-job-count time series, binned.
	Suspended *stats.TimeSeries
	// Waiting is the waiting-job-count time series, binned.
	Waiting *stats.TimeSeries
	// SiteUtil holds per-site utilization (%) series, indexed by site
	// ID. Nil on single-site platforms (it would duplicate Util) and
	// when sampling is disabled.
	SiteUtil []*stats.TimeSeries
	// Makespan is when the last job completed, minutes.
	Makespan float64
	// Events is the number of processed simulator events. Per-minute
	// sampling is integrated incrementally and contributes no events;
	// only state transitions (and rare stale-view refreshes) count.
	Events int64
	// Preemptions counts suspension events.
	Preemptions int64
	// Restarts counts rescheduling restarts of suspended jobs.
	Restarts int64
	// Migrations counts progress-preserving moves.
	Migrations int64
	// WaitMoves counts wait-queue reschedules.
	WaitMoves int64
	// CrossSiteSubmits counts initial dispatches to a pool at a site
	// other than the job's submission site.
	CrossSiteSubmits int64
	// CrossSiteMoves counts reschedules (restart, migration or wait
	// move) that crossed a site boundary, paying the inter-site delay.
	CrossSiteMoves int64

	// Fault & maintenance counters (all zero unless Config.Faults is
	// enabled). Crashes, MaintWindows and DownCoreMinutes derive from
	// the downtime logs clamped to the makespan, so serial and parallel
	// engines report identical values.
	//
	// Crashes counts machine-crash events before the makespan.
	Crashes int64
	// MaintWindows counts maintenance-window openings before the
	// makespan.
	MaintWindows int64
	// Kills counts jobs killed by crashes or maintenance.
	Kills int64
	// Requeues counts kill-and-requeue dispatches back through the
	// wait-queue path (equal to Kills today; drain kills nothing).
	Requeues int64
	// WorkLost is the execution wall-clock (minutes) destroyed by
	// kills — the goodput loss attributable to faults.
	WorkLost float64
	// DownCoreMinutes is the capacity lost to downtime: the integral
	// of down cores over the run, in core-minutes.
	DownCoreMinutes float64

	// SubShardSteals counts events executed by non-primary sub-shards
	// when the conservative engine split a skew-dominant site into
	// per-pool sub-shards (skew-aware work stealing): the hot-site work
	// that ran somewhere other than the one worker a per-site partition
	// would have given it. Zero when the split did not activate and on
	// the other engines. Excluded from bit-identity comparisons — it
	// describes the execution, not the simulated system.
	SubShardSteals int64

	// AliasRetirements counts alias-flag clears (the last cross-partition
	// job detaching from its machine, demoting capacity handoffs back to
	// shard-local dispatch; see shard.noteDetach). Like SubShardSteals it
	// describes the execution, not the simulated system: sub-sharded runs
	// cut pools finer and count same-site cross-sub-shard attaches too,
	// and a resumed run counts only its tail. Excluded from bit-identity
	// comparisons and not persisted in snapshots.
	AliasRetirements int64

	// Rollbacks counts optimistic-engine rollbacks: speculative bursts
	// unwound because a committed decision landed below the shard's
	// clock. Zero on the other engines. Purely execution-describing and
	// excluded from bit-identity comparisons.
	Rollbacks int64

	// GroupCommitSize is the optimistic engine's group-commit histogram
	// in log2 buckets: bucket i counts quiescent drains that retired n
	// consecutive committable heads with 2^i <= n < 2^(i+1). Nil for
	// the other engines. A mass concentrated in bucket 0 means every
	// commit paid its own quiescence cycle; mass in higher buckets is
	// the amortization the group-commit drain exists to win.
	GroupCommitSize []int64

	// ambiguousTies records that the parallel engine observed at least
	// one cross-partition pair of events with exactly equal timestamps
	// whose serial order it cannot reconstruct. Such ties are
	// measure-zero for float-valued traces; the fuzz harness skips
	// serial-vs-parallel comparison when the flag is set.
	ambiguousTies bool
}

// AmbiguousTies reports whether the parallel engine observed at least
// one cross-partition pair of events with exactly equal timestamps
// whose serial order it cannot reconstruct. When true, this run's
// serial/parallel bit-identity guarantee is void (the run is still
// internally consistent and deterministic for its engine). Always
// false on serial runs. Callers replicating results across engines
// should surface it to users instead of silently comparing.
func (r *Result) AmbiguousTies() bool { return r.ambiguousTies }

// Run simulates the specs on the configured platform until every job
// completes. Specs must be sorted by submission time (a trace.Trace
// guarantees this). With Config.ResumeFrom set, the run continues from
// the snapshot instead of t=0 and produces results bit-identical to a
// straight run.
func Run(cfg Config, specs []job.Spec) (*Result, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	w, err := buildWorld(full, specs)
	if err != nil {
		return nil, err
	}
	parallel := (full.Engine == EngineParallel || full.Engine == EngineOptimistic) &&
		w.parallelizable()
	// The optimistic engine owns no checkpoint/replay machinery: those
	// flows need the conservative engine's round barriers (a consistent
	// global cut with no speculation to unwind), so they fall back to it.
	optimistic := parallel && full.Engine == EngineOptimistic &&
		full.CheckpointEvery == 0 && len(full.ResumeFrom) == 0 &&
		full.eventLog == nil && full.stopAtEvents == 0
	var sn *snapshot
	if len(full.ResumeFrom) > 0 {
		if IsDeltaSnapshot(full.ResumeFrom) {
			return nil, fmt.Errorf("%w: ResumeFrom is a delta snapshot; reconstruct it with ApplySnapshotDelta from its keyframe chain first", ErrSnapshotMismatch)
		}
		sn, err = decodeSnapshot(full.ResumeFrom)
		if err != nil {
			return nil, err
		}
		mode := EngineSerial
		if parallel {
			mode = EngineParallel
		}
		if err := sn.verify(w, mode); err != nil {
			return nil, err
		}
	}
	if optimistic {
		return runOptimistic(w)
	}
	if parallel {
		return runParallel(w, sn)
	}
	return runSerial(w, sn)
}
