// Package sim is the reproduction's ASCA equivalent: a deterministic
// discrete-event simulator of the NetBatch platform. Like the original
// Agent-based Simulator for Compute Allocation (§3.1, [12]), it "models
// the operational capability and semantics of various fine-grained
// components of NetBatch such as sites, pools, queues, job requirements
// and priorities, virtual and physical pool managers, round-robin
// physical pool scheduling", samples system state every simulated
// minute, and feeds the post-analysis metrics layer.
//
// Semantics implemented (with paper references):
//
//   - Virtual pool manager: jobs are queued on submission and sent to a
//     physical pool chosen by the initial scheduler; pools with no
//     eligible machine are skipped (§2.1).
//   - Physical pool manager: dispatch to the first eligible available
//     machine; otherwise preempt a lower-priority running job
//     (host-level suspension, §2.2); otherwise queue (§2.1).
//   - Suspension: the victim stays parked on its host and resumes with
//     progress intact once capacity frees and no higher-priority waiting
//     job wants it; jobs can be suspended repeatedly (§2.2).
//   - Dynamic rescheduling: a core.Policy decides, on each suspension
//     and on each wait-queue timeout, whether to restart the job at an
//     alternate pool (losing progress — NetBatch restarts from the
//     beginning, §2.3/§3.2) or, for migration policies, to move it with
//     progress preserved.
package sim

import (
	"context"
	"fmt"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/eventq"
	"netbatch/internal/job"
	"netbatch/internal/sched"
	"netbatch/internal/stats"
)

// Config parameterizes one simulation run.
type Config struct {
	// Platform is the static machine/pool model. Required.
	Platform *cluster.Platform
	// Initial is the virtual pool manager's initial scheduler. Required.
	Initial sched.InitialScheduler
	// Policy is the dynamic rescheduling strategy. Required.
	Policy core.Policy

	// SampleEvery is the state-sampling period in minutes (ASCA samples
	// every minute; default 1).
	SampleEvery float64
	// SeriesBin is the aggregation bin for the output time series in
	// minutes (the paper aggregates per 100 minutes; default 100).
	SeriesBin float64
	// RescheduleOverhead is the transfer delay in minutes charged on
	// every reschedule move (§5 future work: "network delays and other
	// rescheduling associated overheads"). Default 0, matching the
	// paper's evaluation.
	RescheduleOverhead float64
	// SuspendHoldsMemory keeps a suspended job's memory allocated on its
	// host instead of swapping it out. Default false (swapped out).
	SuspendHoldsMemory bool
	// UtilStaleness makes the PoolView's utilization snapshots lag by up
	// to this many minutes, modeling cross-pool propagation delay
	// (§3.2.2's practicality caveat). Default 0 (live view).
	UtilStaleness float64
	// DecisionDelay is how long after a suspension the rescheduling
	// policy is consulted, modeling ASCA's minute-stepped agents (§3.1).
	// A job that resumes within the delay is never offered for
	// rescheduling. Default 1 minute; negative values are rejected.
	DecisionDelay float64
	// QueueBeatsResume inverts the capacity handoff order. By default a
	// freed core first resumes the host's suspended jobs (NetBatch
	// suspension is host-level, §2.2: the suspended process continues
	// when its host frees, independent of the pool queue) and only then
	// serves the pool wait queue. With QueueBeatsResume, waiting jobs of
	// strictly higher priority preempt the resume (ablation).
	QueueBeatsResume bool
	// MaxTime aborts the run if simulated time passes this cap,
	// indicating livelock. Default 10,000,000 minutes.
	MaxTime float64
	// CheckConservation verifies each job's accounting invariant on
	// completion. Default true; costs almost nothing.
	CheckConservation bool
	// DisableSampling turns off per-minute sampling (for benchmarks
	// that only need job metrics).
	DisableSampling bool
	// Context cooperatively cancels a long run: the engine polls it
	// every few hundred events and aborts with its error. Nil means the
	// run cannot be canceled.
	Context context.Context
}

func (c *Config) withDefaults() (Config, error) {
	out := *c
	if out.Platform == nil {
		return out, fmt.Errorf("sim: config needs a platform")
	}
	if out.Initial == nil {
		return out, fmt.Errorf("sim: config needs an initial scheduler")
	}
	if out.Policy == nil {
		return out, fmt.Errorf("sim: config needs a rescheduling policy")
	}
	if out.SampleEvery <= 0 {
		out.SampleEvery = 1
	}
	if out.SeriesBin <= 0 {
		out.SeriesBin = 100
	}
	if out.RescheduleOverhead < 0 {
		return out, fmt.Errorf("sim: negative reschedule overhead %v", out.RescheduleOverhead)
	}
	if out.UtilStaleness < 0 {
		return out, fmt.Errorf("sim: negative staleness %v", out.UtilStaleness)
	}
	if out.UtilStaleness > 0 && out.DisableSampling {
		return out, fmt.Errorf("sim: UtilStaleness requires sampling (snapshots refresh at sample events)")
	}
	if out.Platform.NumSites() > 1 && out.Platform.MaxRTT() > 0 && out.DisableSampling {
		return out, fmt.Errorf("sim: inter-site RTT requires sampling (view ageing refreshes at sample events)")
	}
	if out.DecisionDelay < 0 {
		return out, fmt.Errorf("sim: negative decision delay %v", out.DecisionDelay)
	}
	if out.DecisionDelay == 0 {
		out.DecisionDelay = 1
	}
	if out.MaxTime <= 0 {
		out.MaxTime = 1e7
	}
	return out, nil
}

// Result is a completed simulation run.
type Result struct {
	// Jobs are the completed job records, in spec order.
	Jobs []*job.Job
	// Util is the platform utilization (%) time series, binned.
	Util *stats.TimeSeries
	// Suspended is the suspended-job-count time series, binned.
	Suspended *stats.TimeSeries
	// Waiting is the waiting-job-count time series, binned.
	Waiting *stats.TimeSeries
	// SiteUtil holds per-site utilization (%) series, indexed by site
	// ID. Nil on single-site platforms (it would duplicate Util) and
	// when sampling is disabled.
	SiteUtil []*stats.TimeSeries
	// Makespan is when the last job completed, minutes.
	Makespan float64
	// Events is the number of processed simulator events. Per-minute
	// sampling is integrated incrementally and contributes no events;
	// only state transitions (and rare stale-view refreshes) count.
	Events int64
	// Preemptions counts suspension events.
	Preemptions int64
	// Restarts counts rescheduling restarts of suspended jobs.
	Restarts int64
	// Migrations counts progress-preserving moves.
	Migrations int64
	// WaitMoves counts wait-queue reschedules.
	WaitMoves int64
	// CrossSiteSubmits counts initial dispatches to a pool at a site
	// other than the job's submission site.
	CrossSiteSubmits int64
	// CrossSiteMoves counts reschedules (restart, migration or wait
	// move) that crossed a site boundary, paying the inter-site delay.
	CrossSiteMoves int64
}

// Event kinds.
const (
	evSubmit = iota + 1
	evFinish
	evWaitTimeout
	evArrive
	evSnapshot
	evSusDecide
)

// arrivePayload routes a rescheduled job to a destination pool after
// its transfer delay.
type arrivePayload struct {
	idx  int
	pool int
}

// snapPair names one (observer site, target site) utilization-view
// refresh chain: observer obs's view of tgt's pools refreshes every
// UtilStaleness + RTT(obs, tgt) minutes on the sample-tick grid.
type snapPair struct {
	obs, tgt int
}

type engine struct {
	cfg  Config
	plat *cluster.Platform

	q   *eventq.Queue
	now float64

	specs    []job.Spec
	jobs     []jobRT
	machines []machineRT
	pools    []*poolRT

	nextSubmit int
	completed  int

	totalCores     int
	busyCores      int
	suspendedTotal int

	// Site topology, cached from the platform: siteOf maps pool -> site;
	// siteBusy/siteCores track per-site core usage for the site-tagged
	// series and the SiteUtilization view.
	nSites    int
	siteOf    []int
	siteBusy  []int
	siteCores []int

	utilTS, suspTS, waitTS *stats.TimeSeries
	// siteTS holds per-site utilization series; nil on single-site
	// platforms or with sampling disabled.
	siteTS       []*stats.TimeSeries
	waitingTotal int

	// sampleOn and sampleNext drive the incremental sampler: instead of
	// queueing one evSample event per simulated minute (≈525k heap
	// operations for a year-long run), the engine integrates the
	// piecewise-constant utilization/suspension/wait signals whenever
	// simulated time advances past pending sample ticks. sampleNext
	// marches by repeated addition of SampleEvery, exactly like the old
	// event chain did, so tick times (and hence bin boundaries) are
	// float-identical to ASCA's §3.1 every-minute state scan. A tick
	// that coincides exactly with an event timestamp reads the state
	// after every event at that instant — a deterministic rule, where
	// the event-driven sampler resolved such (measure-zero for the
	// float-valued synthetic traces) ties by heap insertion order.
	sampleOn   bool
	sampleNext float64

	view *poolView

	res Result
}

// Run simulates the specs on the configured platform until every job
// completes. Specs must be sorted by submission time (a trace.Trace
// guarantees this).
func Run(cfg Config, specs []job.Spec) (*Result, error) {
	full, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	e := &engine{
		cfg:   full,
		plat:  full.Platform,
		q:     eventq.New(),
		specs: specs,
	}
	if err := e.init(); err != nil {
		return nil, err
	}
	if err := e.loop(); err != nil {
		return nil, err
	}
	return e.finalize()
}

func (e *engine) init() error {
	plat := e.plat
	e.machines = make([]machineRT, plat.NumMachines())
	for i := 0; i < plat.NumMachines(); i++ {
		m := plat.Machine(i)
		e.machines[i] = machineRT{m: m, freeCores: m.Cores, freeMemMB: m.MemMB}
		e.totalCores += m.Cores
	}
	e.pools = make([]*poolRT, plat.NumPools())
	for p := 0; p < plat.NumPools(); p++ {
		e.pools[p] = newPoolRT(plat, plat.Pool(p), e.machines)
	}
	e.nSites = plat.NumSites()
	e.siteOf = make([]int, plat.NumPools())
	e.siteBusy = make([]int, e.nSites)
	e.siteCores = make([]int, e.nSites)
	for p := 0; p < plat.NumPools(); p++ {
		s := plat.SiteOf(p)
		e.siteOf[p] = s
		e.siteCores[s] += plat.Pool(p).Cores
	}
	e.jobs = make([]jobRT, len(e.specs))
	for i := range e.specs {
		if err := e.specs[i].Validate(); err != nil {
			return fmt.Errorf("sim: %w", err)
		}
		for _, c := range e.specs[i].Candidates {
			if c >= plat.NumPools() {
				return fmt.Errorf("sim: job %d references pool %d beyond platform's %d pools",
					e.specs[i].ID, c, plat.NumPools())
			}
		}
		if s := e.specs[i].Site; s >= e.nSites {
			return fmt.Errorf("sim: job %d submitted from site %d beyond platform's %d sites",
				e.specs[i].ID, s, e.nSites)
		}
		e.jobs[i] = jobRT{idx: i, j: job.New(e.specs[i]), spec: &e.specs[i]}
	}
	e.view = newPoolView(e)
	e.utilTS = stats.NewTimeSeries(e.cfg.SeriesBin)
	e.suspTS = stats.NewTimeSeries(e.cfg.SeriesBin)
	e.waitTS = stats.NewTimeSeries(e.cfg.SeriesBin)
	if e.nSites > 1 && !e.cfg.DisableSampling {
		e.siteTS = make([]*stats.TimeSeries, e.nSites)
		for s := range e.siteTS {
			e.siteTS[s] = stats.NewTimeSeries(e.cfg.SeriesBin)
		}
	}

	if len(e.specs) > 0 {
		e.q.Schedule(e.specs[0].Submit, evSubmit, 0)
		e.nextSubmit = 1
		if !e.cfg.DisableSampling {
			e.sampleOn = true
			e.sampleNext = e.specs[0].Submit
			// Stale utilization views refresh on the sample-tick grid;
			// only those (rare) refresh points still need real events.
			// One refresh chain runs per (observer, target) site pair
			// with a non-zero ageing delay; on a single-site platform
			// with UtilStaleness > 0 that is exactly one chain,
			// reproducing the historical single-snapshot behavior.
			for obs := 0; obs < e.nSites; obs++ {
				for tgt := 0; tgt < e.nSites; tgt++ {
					if e.view.delay(obs, tgt) > 0 {
						e.q.Schedule(e.specs[0].Submit, evSnapshot, snapPair{obs, tgt})
					}
				}
			}
		}
	}
	return nil
}

func (e *engine) loop() error {
	total := len(e.specs)
	ctx := e.cfg.Context
	for e.completed < total {
		ev := e.q.Pop()
		if ev == nil {
			return fmt.Errorf("sim: deadlock at t=%v: %d of %d jobs completed and no pending events",
				e.now, e.completed, total)
		}
		if ev.Time < e.now {
			return fmt.Errorf("sim: event time went backwards: %v -> %v", e.now, ev.Time)
		}
		e.now = ev.Time
		if e.now > e.cfg.MaxTime {
			return fmt.Errorf("sim: exceeded MaxTime %v with %d of %d jobs incomplete",
				e.cfg.MaxTime, total-e.completed, total)
		}
		e.res.Events++
		if ctx != nil && e.res.Events&255 == 0 {
			if err := ctx.Err(); err != nil {
				return fmt.Errorf("sim: canceled at t=%v: %w", e.now, err)
			}
		}
		// Record sample ticks strictly before this event; ticks that
		// coincide with e.now are recorded only after every state change
		// at e.now has been applied (post-event state, see advanceSamples).
		if e.sampleOn {
			e.advanceSamples(e.now)
		}
		var err error
		switch ev.Kind {
		case evSubmit:
			err = e.handleSubmit(ev.Payload.(int))
		case evFinish:
			err = e.handleFinish(ev.Payload.(int))
		case evWaitTimeout:
			err = e.handleWaitTimeout(ev.Payload.(int))
		case evArrive:
			p := ev.Payload.(arrivePayload)
			err = e.arrival(p.idx, p.pool)
		case evSnapshot:
			e.handleSnapshot(ev.Payload.(snapPair))
		case evSusDecide:
			err = e.handleSusDecide(ev.Payload.(int))
		default:
			err = fmt.Errorf("sim: unknown event kind %d", ev.Kind)
		}
		if err != nil {
			return fmt.Errorf("sim: t=%v: %w", e.now, err)
		}
	}
	return nil
}

func (e *engine) finalize() (*Result, error) {
	res := e.res
	res.Jobs = make([]*job.Job, len(e.jobs))
	for i := range e.jobs {
		res.Jobs[i] = e.jobs[i].j
		if e.jobs[i].j.State() != job.StateCompleted {
			return nil, fmt.Errorf("sim: job %d finished run in state %v",
				e.jobs[i].spec.ID, e.jobs[i].j.State())
		}
		if c := e.jobs[i].j.Completed; c > res.Makespan {
			res.Makespan = c
		}
	}
	res.Util = e.utilTS
	res.Suspended = e.suspTS
	res.Waiting = e.waitTS
	res.SiteUtil = e.siteTS
	return &res, nil
}

// handleSubmit routes a newly submitted job through the virtual pool
// manager and chains the next submission event. Dispatch to a pool at
// another site pays the one-way inter-site delay before arrival (the
// interval accrues as wait time, c1).
func (e *engine) handleSubmit(idx int) error {
	if e.nextSubmit < len(e.specs) {
		e.q.Schedule(e.specs[e.nextSubmit].Submit, evSubmit, e.nextSubmit)
		e.nextSubmit++
	}
	rt := &e.jobs[idx]
	e.view.observe(rt.spec.Site)
	pool, err := e.cfg.Initial.SelectPool(e.now, rt.spec, e.view)
	if err != nil {
		return err
	}
	if e.siteOf[pool] != rt.spec.Site {
		e.res.CrossSiteSubmits++
		if d := e.plat.RTT(rt.spec.Site, e.siteOf[pool]); d > 0 {
			e.q.Schedule(e.now+d, evArrive, arrivePayload{idx: idx, pool: pool})
			return nil
		}
	}
	return e.arrival(idx, pool)
}

// arrival lands a job at a physical pool: start it, preempt for it, or
// queue it.
func (e *engine) arrival(idx, pool int) error {
	rt := &e.jobs[idx]
	if err := rt.j.Enqueue(e.now, pool); err != nil {
		return err
	}
	return e.tryPlace(rt, e.pools[pool])
}

// tryPlace implements the physical pool manager's §2.1 dispatch rules.
func (e *engine) tryPlace(rt *jobRT, p *poolRT) error {
	// (1) First eligible available machine.
	if mid := e.findFreeMachine(p, rt.spec); mid >= 0 {
		return e.startOn(rt, mid)
	}
	// (2) Preempt a lower-priority running job.
	if victim := p.findVictim(rt.spec, e.machines, !e.cfg.SuspendHoldsMemory); victim != nil {
		return e.preempt(rt, victim)
	}
	// (3) Queue and wait.
	e.enqueue(rt, p)
	return nil
}

// findFreeMachine searches the pool's class free-stacks for the first
// available machine satisfying the spec, returning its ID or -1. Among
// per-class candidates the lowest machine ID wins, approximating the
// paper's "first eligible machine" list order deterministically.
func (e *engine) findFreeMachine(p *poolRT, spec *job.Spec) int {
	best := -1
	for ci := range p.classes {
		cls := &p.classes[ci]
		if !cls.fits(spec) {
			continue
		}
		if mid := cls.findAvailable(e.machines, spec); mid >= 0 {
			if best == -1 || mid < best {
				best = mid
			}
		}
	}
	return best
}

// ensureFree registers a machine in its class free-stack when it has
// spare cores and is not already listed.
func (e *engine) ensureFree(p *poolRT, mid int) {
	mach := &e.machines[mid]
	if mach.freeCores <= 0 || mach.inFree {
		return
	}
	mach.inFree = true
	p.classes[mach.class].free = append(p.classes[mach.class].free, mid)
}

// startOn begins executing rt on machine mid.
func (e *engine) startOn(rt *jobRT, mid int) error {
	mach := &e.machines[mid]
	spec := rt.spec
	if mach.freeCores < spec.Cores || mach.freeMemMB < spec.MemMB {
		return fmt.Errorf("job %d placed on machine %d without capacity", spec.ID, mid)
	}
	p := e.pools[mach.m.Pool]
	mach.freeCores -= spec.Cores
	mach.freeMemMB -= spec.MemMB
	p.busyCores += spec.Cores
	e.busyCores += spec.Cores
	e.siteBusy[e.siteOf[mach.m.Pool]] += spec.Cores
	if err := rt.j.Start(e.now, mid, mach.m.Speed); err != nil {
		return err
	}
	rem := rt.j.RemainingAt(e.now)
	rt.finish = e.q.Schedule(e.now+rem, evFinish, rt.idx)
	p.pushRunning(rt)
	e.ensureFree(p, mid)
	return nil
}

// preempt suspends victim and installs rt on the freed machine, then
// consults the rescheduling policy about the victim's future.
func (e *engine) preempt(rt *jobRT, victim *jobRT) error {
	mid := victim.j.Machine
	mach := &e.machines[mid]
	p := e.pools[mach.m.Pool]

	e.q.Cancel(victim.finish)
	if err := victim.j.Suspend(e.now); err != nil {
		return err
	}
	e.res.Preemptions++
	mach.freeCores += victim.spec.Cores
	if !e.cfg.SuspendHoldsMemory {
		mach.freeMemMB += victim.spec.MemMB
	}
	p.busyCores -= victim.spec.Cores
	e.busyCores -= victim.spec.Cores
	e.siteBusy[e.siteOf[mach.m.Pool]] -= victim.spec.Cores
	mach.suspended = append(mach.suspended, victim)
	p.suspendedCnt++
	e.suspendedTotal++

	if err := e.startOn(rt, mid); err != nil {
		return err
	}

	// The rescheduling decision for the fresh suspension (§3.2) happens
	// at the next agent sweep, DecisionDelay later. If the victim has
	// resumed (or been re-suspended and moved) by then, the stale event
	// is ignored.
	e.q.Schedule(e.now+e.cfg.DecisionDelay, evSusDecide, victim.idx)

	// The victim may have freed more cores than the preemptor needs.
	return e.onFree(mid)
}

// handleSusDecide consults the rescheduling policy about a job that was
// suspended one decision sweep ago.
func (e *engine) handleSusDecide(idx int) error {
	rt := &e.jobs[idx]
	if rt.j.State() != job.StateSuspended {
		return nil // resumed or departed meanwhile
	}
	// The deciding agent runs at the job's current site.
	e.view.observe(e.siteOf[rt.j.Pool])
	if target, move := e.cfg.Policy.OnSuspend(e.now, rt.j, e.view); move {
		return e.departSuspended(rt, target)
	}
	return nil
}

// departSuspended removes a suspended job from its host and routes it
// toward target, restarting (progress lost) or migrating (progress
// kept) per the policy.
func (e *engine) departSuspended(rt *jobRT, target int) error {
	mid := rt.j.Machine
	mach := &e.machines[mid]
	p := e.pools[mach.m.Pool]
	if !removeSuspended(mach, rt) {
		return fmt.Errorf("job %d not found in machine %d suspended list", rt.spec.ID, mid)
	}
	p.suspendedCnt--
	e.suspendedTotal--
	if e.cfg.SuspendHoldsMemory {
		mach.freeMemMB += rt.spec.MemMB
	}

	overhead := e.cfg.RescheduleOverhead
	if from := e.siteOf[rt.j.Pool]; from != e.siteOf[target] {
		// Crossing a site boundary pays the inter-site transfer delay on
		// top of any configured reschedule overhead.
		overhead += e.plat.RTT(from, e.siteOf[target])
		e.res.CrossSiteMoves++
	}
	if mig, ok := e.cfg.Policy.(core.Migrator); ok {
		if err := rt.j.MigrateFrom(e.now); err != nil {
			return err
		}
		e.res.Migrations++
		overhead += mig.MigrationOverhead()
	} else {
		if err := rt.j.RestartFrom(e.now); err != nil {
			return err
		}
		e.res.Restarts++
	}
	e.route(rt, target, overhead)
	return e.onFree(mid)
}

// route delivers a job in transit to a pool, after overhead minutes.
func (e *engine) route(rt *jobRT, pool int, overhead float64) {
	e.q.Schedule(e.now+overhead, evArrive, arrivePayload{idx: rt.idx, pool: pool})
}

// removeSuspended deletes rt from the machine's suspended list.
func removeSuspended(mach *machineRT, rt *jobRT) bool {
	for i, s := range mach.suspended {
		if s == rt {
			mach.suspended = append(mach.suspended[:i], mach.suspended[i+1:]...)
			return true
		}
	}
	return false
}

// enqueue parks a job in the pool's wait queue and arms the policy's
// wait-timeout timer.
func (e *engine) enqueue(rt *jobRT, p *poolRT) {
	p.waitQ.push(rt)
	rt.enqueuedAt = e.now
	e.waitingTotal++
	if th := e.cfg.Policy.WaitThreshold(); th > 0 {
		rt.waitTO = e.q.Schedule(e.now+th, evWaitTimeout, rt.idx)
	}
}

// handleFinish completes a running job and redistributes its capacity.
func (e *engine) handleFinish(idx int) error {
	rt := &e.jobs[idx]
	mid := rt.j.Machine
	mach := &e.machines[mid]
	p := e.pools[mach.m.Pool]
	if err := rt.j.Complete(e.now); err != nil {
		return err
	}
	if e.cfg.CheckConservation {
		if err := rt.j.CheckConservation(); err != nil {
			return err
		}
	}
	e.completed++
	mach.freeCores += rt.spec.Cores
	mach.freeMemMB += rt.spec.MemMB
	p.busyCores -= rt.spec.Cores
	e.busyCores -= rt.spec.Cores
	e.siteBusy[e.siteOf[mach.m.Pool]] -= rt.spec.Cores
	return e.onFree(mid)
}

// onFree hands freed capacity on machine mid to, by default, the
// host's suspended jobs first (host-level resume, §2.2) and then the
// pool wait queue in priority-FIFO order. With QueueBeatsResume,
// waiting jobs of strictly higher priority win over a resume.
func (e *engine) onFree(mid int) error {
	mach := &e.machines[mid]
	p := e.pools[mach.m.Pool]
	for mach.freeCores > 0 {
		wrt := p.waitQ.peekFitting(func(rt *jobRT) bool {
			return machineFits(mach, rt.spec)
		})
		srt := bestSuspended(mach, e.cfg.SuspendHoldsMemory)
		if wrt == nil && srt == nil {
			break
		}
		useWaiting := wrt != nil && (srt == nil ||
			(e.cfg.QueueBeatsResume && wrt.j.Spec.Priority > srt.j.Spec.Priority))
		if useWaiting {
			p.waitQ.remove(wrt)
			e.waitingTotal--
			e.q.Cancel(wrt.waitTO)
			if err := e.startOn(wrt, mid); err != nil {
				return err
			}
			continue
		}
		if err := e.resume(srt); err != nil {
			return err
		}
	}
	e.ensureFree(p, mid)
	return nil
}

// machineFits checks dynamic fit of a spec on a machine.
func machineFits(mach *machineRT, spec *job.Spec) bool {
	if spec.OS != "" && spec.OS != mach.m.OS {
		return false
	}
	return mach.freeCores >= spec.Cores && mach.freeMemMB >= spec.MemMB
}

// bestSuspended returns the suspended job on mach that should resume
// next — highest priority, then earliest suspended — among those that
// fit the free capacity, or nil.
func bestSuspended(mach *machineRT, holdsMem bool) *jobRT {
	var best *jobRT
	for _, s := range mach.suspended {
		if mach.freeCores < s.spec.Cores {
			continue
		}
		// A swapped-out job must re-acquire memory to resume.
		if !holdsMem && mach.freeMemMB < s.spec.MemMB {
			continue
		}
		if best == nil || s.j.Spec.Priority > best.j.Spec.Priority {
			best = s
		}
	}
	return best
}

// resume continues a suspended job on its host.
func (e *engine) resume(rt *jobRT) error {
	mid := rt.j.Machine
	mach := &e.machines[mid]
	p := e.pools[mach.m.Pool]
	if !removeSuspended(mach, rt) {
		return fmt.Errorf("job %d missing from suspended list on resume", rt.spec.ID)
	}
	p.suspendedCnt--
	e.suspendedTotal--
	mach.freeCores -= rt.spec.Cores
	if !e.cfg.SuspendHoldsMemory {
		mach.freeMemMB -= rt.spec.MemMB
	}
	p.busyCores += rt.spec.Cores
	e.busyCores += rt.spec.Cores
	e.siteBusy[e.siteOf[mach.m.Pool]] += rt.spec.Cores
	if err := rt.j.Resume(e.now); err != nil {
		return err
	}
	rem := rt.j.RemainingAt(e.now)
	rt.finish = e.q.Schedule(e.now+rem, evFinish, rt.idx)
	p.pushRunning(rt)
	return nil
}

// handleWaitTimeout applies the policy's waiting-job rescheduling
// (§3.3): a job stalled past the threshold may dequeue itself and move
// to an alternate pool; otherwise the timer re-arms.
func (e *engine) handleWaitTimeout(idx int) error {
	rt := &e.jobs[idx]
	if !rt.queued || rt.j.State() != job.StateWaiting {
		return nil // stale timer: the job was dispatched meanwhile
	}
	th := e.cfg.Policy.WaitThreshold()
	if th <= 0 {
		return nil
	}
	e.view.observe(e.siteOf[rt.j.Pool])
	target, move := e.cfg.Policy.OnWaitTimeout(e.now, rt.j, e.view)
	if !move || target == rt.j.Pool {
		rt.waitTO = e.q.Schedule(e.now+th, evWaitTimeout, rt.idx)
		return nil
	}
	p := e.pools[rt.j.Pool]
	p.waitQ.remove(rt)
	e.waitingTotal--
	overhead := e.cfg.RescheduleOverhead
	if from := e.siteOf[rt.j.Pool]; from != e.siteOf[target] {
		overhead += e.plat.RTT(from, e.siteOf[target])
		e.res.CrossSiteMoves++
	}
	if err := rt.j.RescheduleWait(e.now); err != nil {
		return err
	}
	e.res.WaitMoves++
	e.route(rt, target, overhead)
	return nil
}

// advanceSamples records every pending per-minute state sample (ASCA
// "samples at each minute the current states of all NetBatch
// components", §3.1) with tick time strictly before now. The observed
// signals are piecewise-constant between events, so the current
// counters are exactly what an event-driven sampler would have read at
// each of those ticks. Ticks that land exactly on an event timestamp
// (possible only for hand-built integral workloads; the synthetic
// traces produce irrational-ish float times that never hit the grid)
// are deferred until time moves past them, i.e. they observe the
// post-event state, and a tick coinciding with the final completion is
// not recorded — the event chain it replaces died with the last job.
func (e *engine) advanceSamples(now float64) {
	for e.sampleNext < now {
		util := 0.0
		if e.totalCores > 0 {
			util = float64(e.busyCores) / float64(e.totalCores) * 100
		}
		e.utilTS.Add(e.sampleNext, util)
		e.suspTS.Add(e.sampleNext, float64(e.suspendedTotal))
		e.waitTS.Add(e.sampleNext, float64(e.waitingTotal))
		for s, ts := range e.siteTS {
			su := 0.0
			if e.siteCores[s] > 0 {
				su = float64(e.siteBusy[s]) / float64(e.siteCores[s]) * 100
			}
			ts.Add(e.sampleNext, su)
		}
		e.sampleNext += e.cfg.SampleEvery
	}
}

// handleSnapshot refreshes one (observer, target) slice of the stale
// utilization view (§3.2.2, generalized to site pairs) and schedules
// the pair's next refresh on the sample-tick grid: the first tick at
// least the pair's ageing delay after this one, reproducing the
// refresh times the per-minute sampler produced by checking staleness
// at every tick. (Because the event is enqueued a full period ahead
// rather than one tick ahead, a refresh coinciding exactly with
// another event's timestamp may order differently than the old sampler
// did — the same measure-zero tie caveat as advanceSamples.)
func (e *engine) handleSnapshot(pair snapPair) {
	e.view.refresh(pair)
	if e.completed >= len(e.specs) {
		return
	}
	d := e.view.delay(pair.obs, pair.tgt)
	next := e.now
	for next-e.now < d {
		next += e.cfg.SampleEvery
	}
	e.q.Schedule(next, evSnapshot, pair)
}

// poolView implements sched.SiteView over engine state. Utilization
// reads are aged per (observer site, target site) pair: observer obs
// sees a pool at site t as of the last refresh of the (obs, t) chain,
// which runs every UtilStaleness + RTT(obs, t) minutes. With a zero
// delay (same site, no staleness) reads are live. The engine points
// the observer at the deciding job's site before every scheduler and
// policy callback.
type poolView struct {
	e *engine
	// obs is the current observer site.
	obs int
	// snap[obs][pool] holds the aged utilization; nil when every
	// (observer, target) delay is zero (all reads live).
	snap [][]float64
}

var (
	_ sched.PoolView = (*poolView)(nil)
	_ sched.SiteView = (*poolView)(nil)
)

func newPoolView(e *engine) *poolView {
	v := &poolView{e: e}
	stale := e.cfg.UtilStaleness > 0
	for obs := 0; obs < e.nSites && !stale; obs++ {
		for tgt := 0; tgt < e.nSites; tgt++ {
			if v.delay(obs, tgt) > 0 {
				stale = true
				break
			}
		}
	}
	if stale {
		v.snap = make([][]float64, e.nSites)
		for obs := range v.snap {
			v.snap[obs] = make([]float64, len(e.pools))
		}
	}
	return v
}

// delay returns the view-ageing period for observer obs reading a pool
// at site tgt: the configured staleness plus the inter-site delay.
func (v *poolView) delay(obs, tgt int) float64 {
	return v.e.cfg.UtilStaleness + v.e.plat.RTT(obs, tgt)
}

// observe points the view at the given observer site.
func (v *poolView) observe(site int) { v.obs = site }

// refresh copies live utilization of the target site's pools into the
// observer's snapshot.
func (v *poolView) refresh(pair snapPair) {
	if v.snap == nil {
		return
	}
	for _, p := range v.e.plat.Site(pair.tgt).Pools {
		v.snap[pair.obs][p] = v.liveUtil(p)
	}
}

func (v *poolView) liveUtil(p int) float64 {
	pool := v.e.pools[p]
	if pool.pool.Cores == 0 {
		return 0
	}
	return float64(pool.busyCores) / float64(pool.pool.Cores)
}

// NumPools implements sched.PoolView.
func (v *poolView) NumPools() int { return len(v.e.pools) }

// Utilization implements sched.PoolView.
func (v *poolView) Utilization(p int) float64 {
	if v.snap != nil && v.delay(v.obs, v.e.siteOf[p]) > 0 {
		return v.snap[v.obs][p]
	}
	return v.liveUtil(p)
}

// QueueLen implements sched.PoolView.
func (v *poolView) QueueLen(p int) int { return v.e.pools[p].waitQ.Len() }

// PoolCores implements sched.PoolView.
func (v *poolView) PoolCores(p int) int { return v.e.pools[p].pool.Cores }

// Eligible implements sched.PoolView.
func (v *poolView) Eligible(p int, spec *job.Spec) bool {
	return v.e.pools[p].eligible(spec)
}

// NumSites implements sched.SiteView.
func (v *poolView) NumSites() int { return v.e.nSites }

// SiteOf implements sched.SiteView.
func (v *poolView) SiteOf(pool int) int { return v.e.siteOf[pool] }

// SitePools implements sched.SiteView.
func (v *poolView) SitePools(site int) []int { return v.e.plat.Site(site).Pools }

// SiteUtilization implements sched.SiteView: the core-weighted mean of
// the (aged) per-pool utilizations of the site.
func (v *poolView) SiteUtilization(site int) float64 {
	cores := v.e.siteCores[site]
	if cores == 0 {
		return 0
	}
	var busy float64
	for _, p := range v.e.plat.Site(site).Pools {
		busy += v.Utilization(p) * float64(v.e.pools[p].pool.Cores)
	}
	return busy / float64(cores)
}

// RTT implements sched.SiteView.
func (v *poolView) RTT(a, b int) float64 { return v.e.plat.RTT(a, b) }
