package sim

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// miniPlatform builds pools of identical 1-core machines:
// counts[i] machines in pool i.
func miniPlatform(t *testing.T, counts ...int) *cluster.Platform {
	t.Helper()
	configs := make([]cluster.PoolConfig, len(counts))
	for i, n := range counts {
		configs[i] = cluster.PoolConfig{
			Classes: []cluster.MachineClass{
				{Count: n, Cores: 1, MemMB: 8192, Speed: 1.0},
			},
		}
	}
	p, err := cluster.Build(configs)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func lowJob(id job.ID, submit, work float64, cands ...int) job.Spec {
	return job.Spec{
		ID: id, Submit: submit, Work: work, Cores: 1, MemMB: 1024,
		Priority: job.PriorityLow, Candidates: cands,
	}
}

func highJob(id job.ID, submit, work float64, cands ...int) job.Spec {
	s := lowJob(id, submit, work, cands...)
	s.Priority = job.PriorityHigh
	return s
}

func run(t *testing.T, cfg Config, specs []job.Spec) *Result {
	t.Helper()
	cfg.CheckConservation = true
	res, err := Run(cfg, specs)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func baseConfig(p *cluster.Platform) Config {
	return Config{
		Platform: p,
		Initial:  sched.NewRoundRobin(),
		Policy:   core.NewNoRes(),
	}
}

func TestSingleJobRunsImmediately(t *testing.T) {
	p := miniPlatform(t, 2)
	res := run(t, baseConfig(p), []job.Spec{lowJob(1, 10, 50, 0)})
	j := res.Jobs[0]
	if got := j.CompletionTime(); got != 50 {
		t.Fatalf("completion time = %v, want 50", got)
	}
	a := j.Acct()
	if a.Wait != 0 || a.Suspend != 0 || a.Exec != 50 {
		t.Fatalf("accounting = %+v", a)
	}
	if res.Makespan != 60 {
		t.Fatalf("makespan = %v, want 60", res.Makespan)
	}
}

func TestQueueingOnBusyPool(t *testing.T) {
	p := miniPlatform(t, 1) // single core
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		lowJob(2, 10, 50, 0),
	}
	res := run(t, baseConfig(p), specs)
	j2 := res.Jobs[1]
	// Job 2 waits until t=100, runs 50, completes at 150.
	if got := j2.Acct().Wait; got != 90 {
		t.Fatalf("wait = %v, want 90", got)
	}
	if got := j2.CompletionTime(); got != 140 {
		t.Fatalf("completion = %v, want 140", got)
	}
}

func TestFIFOWithinPriority(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		lowJob(2, 10, 10, 0),
		lowJob(3, 20, 10, 0),
	}
	res := run(t, baseConfig(p), specs)
	if !(res.Jobs[1].Completed < res.Jobs[2].Completed) {
		t.Fatal("FIFO violated within priority class")
	}
}

func TestPreemptionSuspendsLowPriority(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		highJob(2, 30, 50, 0),
	}
	res := run(t, baseConfig(p), specs)
	low, high := res.Jobs[0], res.Jobs[1]
	// High runs immediately by preempting low.
	if got := high.Acct().Wait; got != 0 {
		t.Fatalf("high prio waited %v", got)
	}
	if got := high.CompletionTime(); got != 50 {
		t.Fatalf("high completion = %v", got)
	}
	// Low: ran 30, suspended 50 (while high runs), resumes, 70 left.
	if !low.EverSuspended() {
		t.Fatal("low job was not suspended")
	}
	a := low.Acct()
	if a.Suspensions != 1 || math.Abs(a.Suspend-50) > 1e-9 {
		t.Fatalf("low accounting = %+v", a)
	}
	if got := low.CompletionTime(); math.Abs(got-150) > 1e-9 {
		t.Fatalf("low completion = %v, want 150", got)
	}
	if res.Preemptions != 1 {
		t.Fatalf("preemptions = %d", res.Preemptions)
	}
}

func TestHighPriorityQueuesWhenAllHigh(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{
		highJob(1, 0, 100, 0),
		highJob(2, 10, 10, 0), // cannot preempt an equal-priority job
	}
	res := run(t, baseConfig(p), specs)
	if res.Preemptions != 0 {
		t.Fatal("equal priority must not preempt")
	}
	if got := res.Jobs[1].Acct().Wait; got != 90 {
		t.Fatalf("second high wait = %v, want 90", got)
	}
}

func TestVictimIsMostRecentLowestPriority(t *testing.T) {
	p := miniPlatform(t, 2)
	specs := []job.Spec{
		lowJob(1, 0, 200, 0),  // starts on machine 0
		lowJob(2, 10, 200, 0), // starts on machine 1 (most recent)
		highJob(3, 20, 10, 0),
	}
	res := run(t, baseConfig(p), specs)
	j1, j2 := res.Jobs[0], res.Jobs[1]
	if j1.EverSuspended() {
		t.Fatal("older job preempted; victim should be most recently started")
	}
	if !j2.EverSuspended() {
		t.Fatal("most recent low job was not the victim")
	}
}

func TestSuspendedResumesBeforeWaitingLow(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		highJob(2, 10, 50, 0), // preempts job 1
		lowJob(3, 20, 10, 0),  // queues
	}
	res := run(t, baseConfig(p), specs)
	j1, j3 := res.Jobs[0], res.Jobs[2]
	// When high finishes at 60, suspended job 1 resumes (90 left),
	// completing at 150; job 3 runs after, completing 160.
	if math.Abs(j1.Completed-150) > 1e-9 {
		t.Fatalf("suspended job completed at %v, want 150", j1.Completed)
	}
	if math.Abs(j3.Completed-160) > 1e-9 {
		t.Fatalf("waiting job completed at %v, want 160", j3.Completed)
	}
}

func TestHostLevelResumeBeatsWaitingHigh(t *testing.T) {
	p := miniPlatform(t, 1)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		highJob(2, 10, 50, 0), // preempts job 1
		highJob(3, 20, 10, 0), // queues (can't preempt high)
	}
	res := run(t, baseConfig(p), specs)
	j1, j3 := res.Jobs[0], res.Jobs[2]
	// Default host-level semantics: when job 2 finishes at t=60, the
	// suspended job resumes on its host (90 left, completing at 150)...
	if math.Abs(j1.Completed-150) > 1e-9 {
		t.Fatalf("low job completed at %v, want 150", j1.Completed)
	}
	// ...and the queued high job waits for it: 150+10 = 160.
	if math.Abs(j3.Completed-160) > 1e-9 {
		t.Fatalf("high job completed at %v, want 160", j3.Completed)
	}
}

func TestQueueBeatsResumeOption(t *testing.T) {
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.QueueBeatsResume = true
	specs := []job.Spec{
		lowJob(1, 0, 100, 0),
		highJob(2, 10, 50, 0), // preempts job 1
		highJob(3, 20, 10, 0), // queues (can't preempt high)
	}
	res := run(t, cfg, specs)
	j1, j3 := res.Jobs[0], res.Jobs[2]
	// With the ablation flag, the waiting HIGH job beats the suspended
	// low: j3 runs 60-70, then j1 resumes at 70 with 90 left -> 160.
	if math.Abs(j3.Completed-70) > 1e-9 {
		t.Fatalf("high job completed at %v, want 70", j3.Completed)
	}
	if math.Abs(j1.Completed-160) > 1e-9 {
		t.Fatalf("low job completed at %v, want 160", j1.Completed)
	}
}

func TestResSusUtilMovesSuspendedJob(t *testing.T) {
	p := miniPlatform(t, 1, 1) // two pools, one core each; pool 1 idle
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusUtil()
	specs := []job.Spec{
		lowJob(1, 0, 100, 0, 1),
		highJob(2, 30, 500, 0), // long preemptor pinned to pool 0
	}
	res := run(t, cfg, specs)
	j1 := res.Jobs[0]
	// Suspended at 30 (30 executed, wasted); the decision sweep fires
	// at 31, restarting it at idle pool 1 for a full 100 re-run.
	if !j1.EverSuspended() {
		t.Fatal("job 1 was not suspended")
	}
	a := j1.Acct()
	if a.Restarts != 1 {
		t.Fatalf("restarts = %d", a.Restarts)
	}
	if math.Abs(a.WastedExec-30) > 1e-9 {
		t.Fatalf("wasted exec = %v, want 30", a.WastedExec)
	}
	if math.Abs(j1.Completed-131) > 1e-9 {
		t.Fatalf("completion = %v, want 131", j1.Completed)
	}
	if math.Abs(a.Suspend-1) > 1e-9 {
		t.Fatalf("suspend = %v, want the 1-minute decision sweep", a.Suspend)
	}
	if res.Restarts != 1 {
		t.Fatalf("res.Restarts = %d", res.Restarts)
	}
	if j1.Pool != 1 {
		t.Fatalf("final pool = %d, want 1", j1.Pool)
	}
}

func TestResSusUtilRetainsWhenAlternatesBusy(t *testing.T) {
	p := miniPlatform(t, 1, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusUtil()
	specs := []job.Spec{
		lowJob(1, 0, 1000, 1),   // fills pool 1 fully (util 1.0)
		lowJob(2, 1, 100, 0, 1), // runs in pool 0
		highJob(3, 30, 50, 0),   // preempts job 2 in pool 0
	}
	res := run(t, cfg, specs)
	j2 := res.Jobs[1]
	// Pool 1 util = 1.0 > pool 0's; job stays suspended and resumes.
	if j2.Acct().Restarts != 0 {
		t.Fatal("job moved despite alternate being fully utilized")
	}
	if math.Abs(j2.Acct().Suspend-50) > 1e-9 {
		t.Fatalf("suspend = %v, want 50", j2.Acct().Suspend)
	}
}

func TestWaitReschedulingMovesStalledJob(t *testing.T) {
	p := miniPlatform(t, 1, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusWaitUtil() // 30-minute threshold
	specs := []job.Spec{
		highJob(1, 0, 500, 0),  // occupies pool 0 (high: unpreemptable)
		lowJob(2, 0, 50, 0, 1), // RR sends it to pool 0; stalls
	}
	// Force initial selection to pool 0 via candidates order + pure RR.
	cfg.Initial = sched.NewPureRoundRobin()
	res := run(t, cfg, specs)
	j2 := res.Jobs[1]
	if j2.Acct().WaitReschedules == 0 {
		t.Fatal("stalled job was never rescheduled")
	}
	// Moves at t=30 to idle pool 1, runs 50: completes at 80.
	if math.Abs(j2.Completed-80) > 1e-9 {
		t.Fatalf("completion = %v, want 80", j2.Completed)
	}
	if got := j2.Acct().Wait; math.Abs(got-30) > 1e-9 {
		t.Fatalf("wait = %v, want 30 (the threshold)", got)
	}
	if res.WaitMoves == 0 {
		t.Fatal("res.WaitMoves = 0")
	}
}

func TestWaitTimerRearmsWhenStaying(t *testing.T) {
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusWaitUtil()
	specs := []job.Spec{
		highJob(1, 0, 100, 0),
		lowJob(2, 0, 10, 0), // single candidate: nowhere to go
	}
	res := run(t, cfg, specs)
	j2 := res.Jobs[1]
	if j2.Acct().WaitReschedules != 0 {
		t.Fatal("job moved with no alternate pool")
	}
	if math.Abs(j2.Completed-110) > 1e-9 {
		t.Fatalf("completion = %v, want 110", j2.Completed)
	}
}

func TestRescheduleOverheadCharged(t *testing.T) {
	p := miniPlatform(t, 1, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusUtil()
	cfg.RescheduleOverhead = 12
	specs := []job.Spec{
		lowJob(1, 0, 100, 0, 1),
		highJob(2, 30, 500, 0),
	}
	res := run(t, cfg, specs)
	a := res.Jobs[0].Acct()
	if math.Abs(a.RescheduleOverhead-12) > 1e-9 {
		t.Fatalf("overhead = %v, want 12", a.RescheduleOverhead)
	}
	// 30 run + 1 sweep + 12 transfer + 100 rerun = completes at 143.
	if math.Abs(res.Jobs[0].Completed-143) > 1e-9 {
		t.Fatalf("completion = %v, want 143", res.Jobs[0].Completed)
	}
}

func TestMigrationPreservesProgress(t *testing.T) {
	p := miniPlatform(t, 1, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusMigrate(5)
	specs := []job.Spec{
		lowJob(1, 0, 100, 0, 1),
		highJob(2, 30, 500, 0),
	}
	res := run(t, cfg, specs)
	j1 := res.Jobs[0]
	a := j1.Acct()
	if a.WastedExec != 0 {
		t.Fatalf("migration destroyed progress: %+v", a)
	}
	if math.Abs(a.RescheduleOverhead-5) > 1e-9 {
		t.Fatalf("migration overhead = %v, want 5", a.RescheduleOverhead)
	}
	// 30 run + 1 sweep + 5 migrate + 70 remaining = completes at 106.
	if math.Abs(j1.Completed-106) > 1e-9 {
		t.Fatalf("completion = %v, want 106", j1.Completed)
	}
	if res.Migrations != 1 || res.Restarts != 0 {
		t.Fatalf("migrations=%d restarts=%d", res.Migrations, res.Restarts)
	}
}

func TestSpeedScaling(t *testing.T) {
	plat, err := cluster.Build([]cluster.PoolConfig{{
		Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 4096, Speed: 2.0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	res := run(t, baseConfig(plat), []job.Spec{lowJob(1, 0, 100, 0)})
	if got := res.Jobs[0].CompletionTime(); math.Abs(got-50) > 1e-9 {
		t.Fatalf("completion on 2x machine = %v, want 50", got)
	}
}

func TestMemoryConstraintDelaysJob(t *testing.T) {
	plat, err := cluster.Build([]cluster.PoolConfig{{
		Classes: []cluster.MachineClass{
			{Count: 1, Cores: 4, MemMB: 4096, Speed: 1.0},
		},
	}})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 1, Submit: 0, Work: 100, Cores: 1, MemMB: 3000, Priority: job.PriorityLow, Candidates: []int{0}},
		{ID: 2, Submit: 10, Work: 50, Cores: 1, MemMB: 3000, Priority: job.PriorityLow, Candidates: []int{0}},
	}
	res := run(t, baseConfig(plat), specs)
	// Machine has 4 cores but only 4 GB: job 2 must wait for memory.
	j2 := res.Jobs[1]
	if got := j2.Acct().Wait; got != 90 {
		t.Fatalf("wait = %v, want 90 (memory-bound)", got)
	}
}

func TestOSConstraint(t *testing.T) {
	plat, err := cluster.Build([]cluster.PoolConfig{
		{Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 4096, Speed: 1.0, OS: "windows"}}},
		{Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 4096, Speed: 1.0, OS: "linux"}}},
	})
	if err != nil {
		t.Fatal(err)
	}
	spec := lowJob(1, 0, 50, 0, 1)
	spec.OS = "linux"
	res := run(t, baseConfig(plat), []job.Spec{spec})
	if got := res.Jobs[0].Pool; got != 1 {
		t.Fatalf("job landed in pool %d, want linux pool 1", got)
	}
	if got := res.Jobs[0].Acct().Wait; got != 0 {
		t.Fatalf("wait = %v (should skip ineligible pool statically)", got)
	}
}

func TestMultiCoreJob(t *testing.T) {
	plat, err := cluster.Build([]cluster.PoolConfig{{
		Classes: []cluster.MachineClass{{Count: 1, Cores: 4, MemMB: 8192, Speed: 1.0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	specs := []job.Spec{
		{ID: 1, Submit: 0, Work: 100, Cores: 3, MemMB: 1024, Priority: job.PriorityLow, Candidates: []int{0}},
		{ID: 2, Submit: 0, Work: 100, Cores: 2, MemMB: 1024, Priority: job.PriorityLow, Candidates: []int{0}},
	}
	res := run(t, baseConfig(plat), specs)
	// Only 4 cores: 3-core and 2-core jobs cannot overlap.
	j2 := res.Jobs[1]
	if got := j2.Acct().Wait; got != 100 {
		t.Fatalf("wait = %v, want 100", got)
	}
}

func TestSuspendHoldsMemoryBlocksPreemption(t *testing.T) {
	plat, err := cluster.Build([]cluster.PoolConfig{{
		Classes: []cluster.MachineClass{{Count: 1, Cores: 2, MemMB: 4096, Speed: 1.0}},
	}})
	if err != nil {
		t.Fatal(err)
	}
	cfg := baseConfig(plat)
	cfg.SuspendHoldsMemory = true
	specs := []job.Spec{
		{ID: 1, Submit: 0, Work: 100, Cores: 2, MemMB: 3000, Priority: job.PriorityLow, Candidates: []int{0}},
		{ID: 2, Submit: 10, Work: 20, Cores: 1, MemMB: 3000, Priority: job.PriorityHigh, Candidates: []int{0}},
	}
	res := run(t, cfg, specs)
	// With memory held by the suspended victim, the high job cannot fit:
	// no preemption happens and it waits for completion at t=100.
	if res.Preemptions != 0 {
		t.Fatal("preemption happened despite held memory")
	}
	if got := res.Jobs[1].Acct().Wait; got != 90 {
		t.Fatalf("high wait = %v, want 90", got)
	}
}

func TestDeterminism(t *testing.T) {
	p := miniPlatform(t, 2, 2, 2)
	mkSpecs := func() []job.Spec {
		var specs []job.Spec
		for i := 0; i < 60; i++ {
			s := lowJob(job.ID(i+1), float64(i), 25+float64(i%7)*10, 0, 1, 2)
			if i%5 == 0 {
				s.Priority = job.PriorityHigh
				s.Candidates = []int{0, 1}
			}
			specs = append(specs, s)
		}
		return specs
	}
	mkCfg := func() Config {
		cfg := baseConfig(p)
		cfg.Policy = core.NewResSusWaitRand(77)
		return cfg
	}
	a := run(t, mkCfg(), mkSpecs())
	b := run(t, mkCfg(), mkSpecs())
	for i := range a.Jobs {
		if a.Jobs[i].Completed != b.Jobs[i].Completed {
			t.Fatalf("job %d completion differs: %v vs %v", i, a.Jobs[i].Completed, b.Jobs[i].Completed)
		}
	}
	if a.Preemptions != b.Preemptions || a.Restarts != b.Restarts || a.WaitMoves != b.WaitMoves {
		t.Fatal("run counters differ across identical runs")
	}
}

func TestSamplingSeries(t *testing.T) {
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.SeriesBin = 10
	res := run(t, cfg, []job.Spec{lowJob(1, 0, 100, 0)})
	if res.Util.Len() == 0 {
		t.Fatal("no utilization samples")
	}
	// Single 1-core machine fully busy: near-100% bins while running.
	if got := res.Util.Points()[5].Y; math.Abs(got-100) > 1e-9 {
		t.Fatalf("mid-run utilization = %v, want 100", got)
	}
}

func TestDisableSampling(t *testing.T) {
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.DisableSampling = true
	res := run(t, cfg, []job.Spec{lowJob(1, 0, 100, 0)})
	if res.Util.Len() != 0 {
		t.Fatal("sampling happened despite DisableSampling")
	}
}

func TestConfigErrors(t *testing.T) {
	p := miniPlatform(t, 1)
	cases := map[string]Config{
		"noPlatform": {Initial: sched.NewRoundRobin(), Policy: core.NewNoRes()},
		"noInitial":  {Platform: p, Policy: core.NewNoRes()},
		"noPolicy":   {Platform: p, Initial: sched.NewRoundRobin()},
		"negOverhead": {
			Platform: p, Initial: sched.NewRoundRobin(), Policy: core.NewNoRes(),
			RescheduleOverhead: -1,
		},
		"stalenessNoSampling": {
			Platform: p, Initial: sched.NewRoundRobin(), Policy: core.NewNoRes(),
			UtilStaleness: 5, DisableSampling: true,
		},
	}
	for name, cfg := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := Run(cfg, []job.Spec{lowJob(1, 0, 10, 0)}); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestInvalidSpecRejected(t *testing.T) {
	p := miniPlatform(t, 1)
	if _, err := Run(baseConfig(p), []job.Spec{{ID: 1}}); err == nil {
		t.Fatal("invalid spec accepted")
	}
	if _, err := Run(baseConfig(p), []job.Spec{lowJob(1, 0, 10, 7)}); err == nil ||
		!strings.Contains(err.Error(), "beyond platform") {
		t.Fatalf("out-of-range pool accepted: %v", err)
	}
}

func TestNoEligiblePoolError(t *testing.T) {
	p := miniPlatform(t, 1)
	spec := lowJob(1, 0, 10, 0)
	spec.MemMB = 1 << 30 // fits nowhere
	if _, err := Run(baseConfig(p), []job.Spec{spec}); err == nil {
		t.Fatal("want error for unrunnable job")
	}
}

func TestStaleUtilizationView(t *testing.T) {
	// With a very stale view, ResSusUtil sees pool 1 as idle even after
	// it fills, so it still moves the job there.
	p := miniPlatform(t, 1, 1)
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusUtil()
	cfg.UtilStaleness = 10000
	specs := []job.Spec{
		lowJob(1, 0, 1, 0),    // triggers the t=0 snapshot epoch
		lowJob(2, 5, 1000, 1), // fills pool 1 after the snapshot
		lowJob(3, 6, 100, 0, 1),
		highJob(4, 30, 500, 0),
	}
	res := run(t, cfg, specs)
	j2 := res.Jobs[2]
	// Live view would retain (pool 1 busy); stale view moves it into
	// pool 1's queue where it waits behind the 1000-minute job.
	if j2.Acct().Restarts != 1 {
		t.Fatalf("restarts = %d; stale view should have moved the job", j2.Acct().Restarts)
	}
	if j2.Pool != 1 {
		t.Fatalf("moved to pool %d, want stale-believed-idle pool 1", j2.Pool)
	}
}

func TestManyJobsConservationAndCompletion(t *testing.T) {
	p := miniPlatform(t, 3, 3, 3, 3)
	var specs []job.Spec
	for i := 0; i < 500; i++ {
		s := lowJob(job.ID(i+1), float64(i)*2, 20+float64(i%13)*15, 0, 1, 2, 3)
		if i%7 == 0 {
			s.Priority = job.PriorityHigh
			s.Candidates = []int{0, 1}
		}
		specs = append(specs, s)
	}
	cfg := baseConfig(p)
	cfg.Policy = core.NewResSusWaitUtil()
	res := run(t, cfg, specs) // CheckConservation on: every job verified
	if len(res.Jobs) != 500 {
		t.Fatalf("jobs = %d", len(res.Jobs))
	}
	for _, j := range res.Jobs {
		if j.State() != job.StateCompleted {
			t.Fatalf("job %d not completed", j.Spec.ID)
		}
	}
}

func TestSamplingTickGridExact(t *testing.T) {
	// One job, submit 0, work 100 on a single core: the sampler must
	// record exactly the ticks 0..99 (the tick at the makespan itself is
	// never recorded, exactly like the event-driven sampler whose chain
	// died with the final completion), all at 100% utilization.
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.SeriesBin = 10
	res := run(t, cfg, []job.Spec{lowJob(1, 0, 100, 0)})
	if got := res.Util.Len(); got != 10 {
		t.Fatalf("util bins = %d, want 10 (ticks 0..99 only)", got)
	}
	for i, pt := range res.Util.Points() {
		if math.Abs(pt.Y-100) > 1e-9 {
			t.Fatalf("bin %d utilization = %v, want 100", i, pt.Y)
		}
	}
}

func TestSamplingPreemptionTimeline(t *testing.T) {
	// Preemption scenario with hand-computable signals: low job (work
	// 100) from t=0, high job (work 50) preempts at t=30, finishes at 80,
	// low resumes and completes at 150. Suspended count is 1 exactly on
	// ticks 30..79; a tick coinciding with a state change reads the
	// post-change state.
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.SeriesBin = 10
	res := run(t, cfg, []job.Spec{
		lowJob(1, 0, 100, 0),
		highJob(2, 30, 50, 0),
	})
	susp := res.Suspended.Points()
	if len(susp) != 15 {
		t.Fatalf("suspended bins = %d, want 15 (ticks 0..149)", len(susp))
	}
	for i, pt := range susp {
		want := 0.0
		if i >= 3 && i < 8 { // bins covering ticks 30..79
			want = 1.0
		}
		if math.Abs(pt.Y-want) > 1e-9 {
			t.Fatalf("suspended bin %d = %v, want %v", i, pt.Y, want)
		}
	}
	// The single core is always busy (victim swaps with preemptor).
	for i, pt := range res.Util.Points() {
		if math.Abs(pt.Y-100) > 1e-9 {
			t.Fatalf("util bin %d = %v, want 100", i, pt.Y)
		}
	}
}

func TestSamplingIdleGap(t *testing.T) {
	// A long idle gap between two jobs must still emit zero-valued ticks
	// for every minute of the gap (the event-driven chain ticked through
	// idle time too).
	p := miniPlatform(t, 1)
	cfg := baseConfig(p)
	cfg.SeriesBin = 10
	res := run(t, cfg, []job.Spec{
		lowJob(1, 0, 5, 0),
		lowJob(2, 200, 10, 0),
	})
	// Ticks 0..209: 21 bins.
	if got := res.Util.Len(); got != 21 {
		t.Fatalf("util bins = %d, want 21", got)
	}
	pts := res.Util.Points()
	for i := 1; i < 20; i++ {
		if pts[i].Y != 0 {
			t.Fatalf("idle bin %d utilization = %v, want 0", i, pts[i].Y)
		}
	}
	if pts[0].Y != 50 { // ticks 0..4 busy, 5..9 idle
		t.Fatalf("first bin = %v, want 50", pts[0].Y)
	}
	if pts[20].Y != 100 { // ticks 200..209 busy
		t.Fatalf("last bin = %v, want 100", pts[20].Y)
	}
}

func TestContextCancellation(t *testing.T) {
	p := miniPlatform(t, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	cfg := baseConfig(p)
	cfg.Context = ctx
	// Enough work to guarantee the engine crosses a poll boundary.
	var specs []job.Spec
	for i := 0; i < 2000; i++ {
		specs = append(specs, lowJob(job.ID(i+1), float64(i), 5, 0))
	}
	_, err := Run(cfg, specs)
	if err == nil || !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

func TestNilContextRuns(t *testing.T) {
	p := miniPlatform(t, 1)
	res := run(t, baseConfig(p), []job.Spec{lowJob(1, 0, 10, 0)})
	if res.Makespan != 10 {
		t.Fatalf("makespan = %v", res.Makespan)
	}
}
