package sim

import (
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// snapshotSys is the stale-view subsystem (§3.2.2, generalized to site
// pairs): it owns the snapshot refresh chains that age the utilization
// view every UtilStaleness + RTT(observer, target) minutes. The chain
// for pair (obs, tgt) runs in tgt's shard — a refresh reads tgt's live
// pool counters and publishes them into the shared snapshot row that
// obs's deciding events read. Refreshes are not deciding events: their
// writes land in snapshot cells owned by tgt's sites, which other
// shards only read while tgt is quiescent (during globally-serialized
// decisions).
type snapshotSys struct {
	sh *shard

	// snapshot is the allocated refresh kind: partition-local, never
	// deciding.
	snapshot kind
}

func (s *snapshotSys) register(k *kernel) {
	sh := s.sh
	s.snapshot = k.registerKind("snapshot", false, func(a, b int64, _ any) error {
		sh.handleSnapshot(snapPair{obs: int(a), tgt: int(b)})
		return nil
	})
	// snapshot carries (observer, target) in (a, b); the encoding is
	// byte-identical to the historical two-int struct codec.
	k.setPayloadCodec(s.snapshot,
		func(e *snapEncoder, a, b int64, _ any) {
			e.I64(a)
			e.I64(b)
		},
		func(d *snapDecoder) (int64, int64, any) { return d.I64(), d.I64(), nil },
		func(_, b int64, _ any) int64 { return b })
	k.registerState("views", s.save, s.load)
}

// save dumps the stale-view subsystem's slice of shard state: every
// observer's snapshot cells for the pools this shard owns (the cells
// its refresh chains write). The refresh chains themselves are pending
// events, saved with the kernel queue.
func (s *snapshotSys) save(e *snapEncoder) {
	sh := s.sh
	if sh.w.snap == nil {
		return // no ageing configured; nothing allocated (config-determined)
	}
	for obs := 0; obs < sh.w.nSites; obs++ {
		for _, site := range sh.sites {
			for _, p := range sh.w.plat.Site(site).Pools {
				e.F64(sh.w.snap[obs][p])
			}
		}
	}
}

func (s *snapshotSys) load(d *snapDecoder) error {
	sh := s.sh
	if sh.w.snap == nil {
		return nil
	}
	for obs := 0; obs < sh.w.nSites; obs++ {
		for _, site := range sh.sites {
			for _, p := range sh.w.plat.Site(site).Pools {
				sh.w.snap[obs][p] = d.F64()
			}
		}
	}
	return d.err
}

// snapPair names one (observer site, target site) utilization-view
// refresh chain: observer obs's view of tgt's pools refreshes every
// UtilStaleness + RTT(obs, tgt) minutes on the sample-tick grid.
type snapPair struct {
	obs, tgt int
}

// handleSnapshot refreshes one (observer, target) slice of the stale
// utilization view and schedules the pair's next refresh on the
// sample-tick grid: the first tick at least the pair's ageing delay
// after this one, reproducing the refresh times the per-minute sampler
// produced by checking staleness at every tick. (Because the event is
// enqueued a full period ahead rather than one tick ahead, a refresh
// coinciding exactly with another event's timestamp may order
// differently than the old sampler did — the same measure-zero tie
// caveat as the incremental sampler.)
func (sh *shard) handleSnapshot(pair snapPair) {
	sh.view.refresh(pair)
	// A serial shard sees global completion and lets the chain die with
	// the run; a parallel shard cannot know global completion mid-round,
	// so it keeps the chain armed — the surplus refreshes are inert and
	// die at the final round barrier.
	if sh.par == nil && sh.completed >= len(sh.w.specs) {
		return
	}
	d := sh.w.ageDelay(pair.obs, pair.tgt)
	next := sh.k.now
	for next-sh.k.now < d {
		next += sh.w.cfg.SampleEvery
	}
	sh.k.schedule(next, sh.snaps.snapshot, int64(pair.obs), int64(pair.tgt))
}

// poolView implements sched.SiteView over shard state. Utilization
// reads are aged per (observer site, target site) pair: observer obs
// sees a pool at site t as of the last refresh of the (obs, t) chain,
// which runs every UtilStaleness + RTT(obs, t) minutes. With a zero
// delay (same site, no staleness) reads are live. The engine points
// the observer at the deciding job's site before every scheduler and
// policy callback. Each shard holds its own view (private observer
// field) over the shared platform state and snapshot storage.
type poolView struct {
	sh *shard
	// obs is the current observer site.
	obs int
}

var (
	_ sched.PoolView = (*poolView)(nil)
	_ sched.SiteView = (*poolView)(nil)
)

func newPoolView(sh *shard) *poolView {
	return &poolView{sh: sh}
}

// observe points the view at the given observer site.
func (v *poolView) observe(site int) { v.obs = site }

// refresh copies live utilization of the target site's pools into the
// observer's snapshot row. A sub-shard refreshes only its own pools:
// each sub-shard of a split site runs its own chain for the pair, so
// together they cover the site at the same refresh instants with the
// same values the site shard would have written, while never touching
// a sibling's pool state concurrently.
func (v *poolView) refresh(pair snapPair) {
	snap := v.sh.w.snap
	if snap == nil {
		return
	}
	pools := v.sh.w.plat.Site(pair.tgt).Pools
	if v.sh.pools != nil {
		pools = v.sh.pools
	}
	for _, p := range pools {
		snap[pair.obs][p] = v.liveUtil(p)
	}
}

func (v *poolView) liveUtil(p int) float64 {
	pool := v.sh.w.pools[p]
	if pool.pool.Cores == 0 {
		return 0
	}
	return float64(pool.busyCores) / float64(pool.pool.Cores)
}

// NumPools implements sched.PoolView.
func (v *poolView) NumPools() int { return len(v.sh.w.pools) }

// Utilization implements sched.PoolView.
func (v *poolView) Utilization(p int) float64 {
	if v.sh.w.snap != nil && v.sh.w.ageDelay(v.obs, v.sh.w.siteOf[p]) > 0 {
		return v.sh.w.snap[v.obs][p]
	}
	return v.liveUtil(p)
}

// QueueLen implements sched.PoolView.
func (v *poolView) QueueLen(p int) int { return v.sh.w.pools[p].waitQ.Len() }

// PoolCores implements sched.PoolView.
func (v *poolView) PoolCores(p int) int { return v.sh.w.pools[p].pool.Cores }

// Eligible implements sched.PoolView.
func (v *poolView) Eligible(p int, spec *job.Spec) bool {
	return v.sh.w.pools[p].eligible(spec)
}

// NumSites implements sched.SiteView.
func (v *poolView) NumSites() int { return v.sh.w.nSites }

// SiteOf implements sched.SiteView.
func (v *poolView) SiteOf(pool int) int { return v.sh.w.siteOf[pool] }

// SitePools implements sched.SiteView.
func (v *poolView) SitePools(site int) []int { return v.sh.w.plat.Site(site).Pools }

// SiteUtilization implements sched.SiteView: the core-weighted mean of
// the (aged) per-pool utilizations of the site.
func (v *poolView) SiteUtilization(site int) float64 {
	cores := v.sh.w.siteCores[site]
	if cores == 0 {
		return 0
	}
	var busy float64
	for _, p := range v.sh.w.plat.Site(site).Pools {
		busy += v.Utilization(p) * float64(v.sh.w.pools[p].pool.Cores)
	}
	return busy / float64(cores)
}

// RTT implements sched.SiteView.
func (v *poolView) RTT(a, b int) float64 { return v.sh.w.plat.RTT(a, b) }
