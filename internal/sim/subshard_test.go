package sim

// Skew-aware work stealing: when one site dominates the pool count,
// the conservative engine splits it into per-pool sub-shards behind
// the shard interface. These tests pin three properties: (1) skewed
// federations stay bit-identical across serial, sub-sharded parallel,
// and optimistic runs (under -race, with real concurrency forced);
// (2) the split genuinely engages — non-primary sub-shards execute
// events (steals) and same-partition alias dispatches retire through
// the ledger; (3) the activation heuristic keeps every incompatible or
// balanced configuration on the per-site path.

import (
	"math"
	"math/rand/v2"
	"runtime"
	"testing"
	"testing/quick"

	"netbatch/internal/cluster"
	"netbatch/internal/core"
	"netbatch/internal/job"
	"netbatch/internal/sched"
)

// skewedFederation builds a platform where site 0 holds 8 of 10 pools
// and draws ~80% of the submissions — the shape the per-site partition
// serializes behind one worker and the sub-shard split exists to
// parallelize.
func skewedFederation(r *rand.Rand) (*cluster.Platform, []job.Spec, error) {
	const nSites = 3
	poolsAt := [nSites]int{8, 1, 1}
	var configs []cluster.PoolConfig
	for s := 0; s < nSites; s++ {
		for p := 0; p < poolsAt[s]; p++ {
			configs = append(configs, cluster.PoolConfig{
				Site: string(rune('A' + s)),
				Classes: []cluster.MachineClass{
					{Count: 1 + r.IntN(3), Cores: 1 + r.IntN(2), MemMB: 4096, Speed: 1.0},
					{Count: 1, Cores: 2, MemMB: 8192, Speed: 0.8 + r.Float64()},
				},
			})
		}
	}
	plat, err := cluster.Build(configs)
	if err != nil {
		return nil, nil, err
	}
	rtt := make([][]float64, nSites)
	for a := range rtt {
		rtt[a] = make([]float64, nSites)
		for b := range rtt[a] {
			if a != b {
				rtt[a][b] = float64(1 + r.IntN(20))
			}
		}
	}
	plat, err = plat.WithRTT(rtt)
	if err != nil {
		return nil, nil, err
	}
	nPools := plat.NumPools()
	all := make([]int, nPools)
	for i := range all {
		all[i] = i
	}
	n := 40 + r.IntN(100)
	specs := make([]job.Spec, n)
	t := 0.0
	for i := range specs {
		t += r.Float64() * 8
		site := 0
		if r.IntN(5) == 0 {
			site = 1 + r.IntN(nSites-1)
		}
		prio := job.PriorityLow
		cands := all
		if r.IntN(5) == 0 {
			prio = job.PriorityHigh
			cands = all[:1+r.IntN(nPools)]
		}
		specs[i] = job.Spec{
			ID:         job.ID(i + 1),
			Submit:     t,
			Work:       5 + r.Float64()*200,
			Cores:      1 + r.IntN(2),
			MemMB:      512 + r.IntN(4096),
			Priority:   prio,
			Candidates: cands,
			Site:       site,
		}
	}
	return plat, specs, nil
}

// TestSubShardSkewedFederationEngines is the skewed-federation
// property test: serial, parallel (sub-sharded) and optimistic results
// must be bit-identical, and across the sampled seeds the sub-shard
// steal counter and the alias-retirement counter must both actually
// move — a split that never steals (or an alias ledger that never
// retires) would make the bit-identity assertions vacuous.
func TestSubShardSkewedFederationEngines(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	runs, skips := 0, 0
	stealsBefore := subShardSteals.Load()
	retireBefore := aliasRetirements.Load()
	cfgQuick := &quick.Config{MaxCount: 16}
	err := quick.Check(func(seed uint64, polPick, selPick uint8, staleness uint8) bool {
		r := rand.New(rand.NewPCG(seed, seed^0x9e3779b9))
		plat, specs, err := skewedFederation(r)
		if err != nil {
			t.Logf("workload: %v", err)
			return false
		}
		mk := func(engine string) Config {
			return Config{
				Platform:          plat,
				Initial:           federatedInitial(siteSelectorForIndex(int(selPick))),
				Policy:            multiSitePolicyForIndex(int(polPick), seed),
				UtilStaleness:     float64(staleness % 40),
				Engine:            engine,
				CheckConservation: true,
			}
		}
		serialRes, err := Run(mk(EngineSerial), specs)
		if err != nil {
			t.Logf("serial: %v", err)
			return false
		}
		parRes, err := Run(mk(EngineParallel), specs)
		if err != nil {
			t.Logf("parallel: %v", err)
			return false
		}
		optRes, err := Run(mk(EngineOptimistic), specs)
		if err != nil {
			t.Logf("optimistic: %v", err)
			return false
		}
		if parRes.SubShardSteals == 0 {
			// 8 of 10 pools sit at the hot site; with round-robin
			// per-site inner scheduling some job always lands on a
			// non-primary pool.
			t.Logf("seed %d: skewed run recorded no sub-shard steals", seed)
			return false
		}
		runs++
		if parRes.ambiguousTies || optRes.ambiguousTies {
			skips++
			t.Logf("seed %d: ambiguous tie observed, skipping comparison", seed)
			return true
		}
		a, b, c := fingerprint(serialRes), fingerprint(parRes), fingerprint(optRes)
		if a != b {
			t.Logf("seed %d sel %d pol %d: serial and parallel results differ:\n%s",
				seed, selPick%3, polPick%4, firstDiff(a, b))
			return false
		}
		if a != c {
			t.Logf("seed %d sel %d pol %d: serial and optimistic results differ:\n%s",
				seed, selPick%3, polPick%4, firstDiff(a, c))
			return false
		}
		return true
	}, cfgQuick)
	if err != nil {
		t.Fatal(err)
	}
	if runs > 0 && skips == runs {
		t.Errorf("all %d runs skipped as ambiguous ties: bit-identity was never actually compared", runs)
	}
	if d := subShardSteals.Load() - stealsBefore; d <= 0 {
		t.Errorf("sub-shard steal counter never moved (delta %d): split did not engage", d)
	}
	if d := aliasRetirements.Load() - retireBefore; d <= 0 {
		t.Errorf("alias retirement counter never moved (delta %d) across skewed runs", d)
	}
}

// moveWaitPolicy reschedules any job stalled in pool from's queue to
// pool to, and leaves every other waiting job in place.
type moveWaitPolicy struct {
	from, to int
	th       float64
}

func (moveWaitPolicy) Name() string { return "move-wait-test" }
func (moveWaitPolicy) OnSuspend(float64, *job.Job, sched.PoolView) (int, bool) {
	return 0, false
}
func (m moveWaitPolicy) WaitThreshold() float64 { return m.th }
func (m moveWaitPolicy) OnWaitTimeout(_ float64, j *job.Job, _ sched.PoolView) (int, bool) {
	if j.Pool == m.from {
		return m.to, true
	}
	return 0, false
}

// TestSubShardForcedAliasDemote constructs the alias lifecycle
// deterministically on a sub-sharded platform: a job waits at pool 0,
// is wait-moved to sibling pool 1 (same site — the move travels by
// direct injection, not a round barrier), and its tombstoned pool-0
// slot revives when pool 0's machine frees — dispatching the job onto
// pool 0's machine while its queue label points at pool 1. That attach
// crosses a sub-shard partition boundary, so the parallel run must
// flag it aliased (serializing handoffs), and the job's completion
// must retire the flag through the ledger. Serial and optimistic runs
// never split the site, see no partition crossing, and must still
// produce bit-identical results.
func TestSubShardForcedAliasDemote(t *testing.T) {
	if prev := runtime.GOMAXPROCS(0); prev < 2 {
		runtime.GOMAXPROCS(2)
		defer runtime.GOMAXPROCS(prev)
	}
	configs := []cluster.PoolConfig{
		{Site: "A", Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 8192, Speed: 1.0}}},
		{Site: "A", Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 8192, Speed: 1.0}}},
		{Site: "B", Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 8192, Speed: 1.0}}},
	}
	plat, err := cluster.Build(configs)
	if err != nil {
		t.Fatal(err)
	}
	plat, err = plat.WithRTT([][]float64{{0, 5}, {5, 0}})
	if err != nil {
		t.Fatal(err)
	}
	spec := func(id job.ID, submit, work float64, site int, cands ...int) job.Spec {
		return job.Spec{
			ID: id, Submit: submit, Work: work, Cores: 1, MemMB: 1024,
			Priority: job.PriorityLow, Candidates: cands, Site: site,
		}
	}
	specs := []job.Spec{
		spec(1, 0, 20.3, 0, 0),   // occupies pool 0's machine until t=20.3
		spec(2, 0.4, 31.7, 0, 1), // occupies pool 1's machine until t=32.1
		spec(3, 0.7, 5.9, 0, 0),  // waits at 0, moves to 1 at t=3.0, revived at t=20.3
		spec(4, 1.3, 10.1, 1, 2), // keeps the remote site non-trivial
	}
	mk := func(engine string) Config {
		return Config{
			Platform:          plat,
			Initial:           sched.NewRoundRobin(),
			Policy:            moveWaitPolicy{from: 0, to: 1, th: 2.3},
			Engine:            engine,
			CheckConservation: true,
		}
	}
	serialRes, err := Run(mk(EngineSerial), specs)
	if err != nil {
		t.Fatal(err)
	}
	stealsBefore := subShardSteals.Load()
	retireBefore := aliasRetirements.Load()
	parRes, err := Run(mk(EngineParallel), specs)
	if err != nil {
		t.Fatal(err)
	}
	optRes, err := Run(mk(EngineOptimistic), specs)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.ambiguousTies || optRes.ambiguousTies {
		t.Fatal("forced-alias scenario hit an ambiguous tie; timestamps need adjusting")
	}
	a, b, c := fingerprint(serialRes), fingerprint(parRes), fingerprint(optRes)
	if a != b {
		t.Fatalf("serial and parallel results differ:\n%s", firstDiff(a, b))
	}
	if a != c {
		t.Fatalf("serial and optimistic results differ:\n%s", firstDiff(a, c))
	}
	// The revived dispatch must have produced the alias: job 3 starts on
	// pool 0's machine the moment job 1 frees it (t=20.3) even though
	// its queue label moved to pool 1, so it completes at 26.2 — not at
	// 38.0, which is what running behind job 2 on pool 1's own machine
	// would give.
	j3 := parRes.Jobs[2]
	if want := 20.3 + 5.9; math.Abs(j3.Completed-want) > 1e-9 {
		t.Fatalf("job 3 completed at %v; want %v (revived onto pool 0's machine at t=20.3)",
			j3.Completed, want)
	}
	if d := subShardSteals.Load() - stealsBefore; d <= 0 {
		t.Errorf("sub-shard steal counter delta %d; the split site's sibling ran no events", d)
	}
	if d := aliasRetirements.Load() - retireBefore; d < 1 {
		t.Errorf("alias retirement delta %d; want >= 1 (job 3's detach must retire its partition alias)", d)
	}
	if parRes.SubShardSteals == 0 {
		t.Error("Result.SubShardSteals is zero on a sub-sharded run")
	}
	if serialRes.SubShardSteals != 0 || optRes.SubShardSteals != 0 {
		t.Error("SubShardSteals leaked into a non-sub-sharded engine's Result")
	}
}

// TestSubShardActivationGating pins the heuristic: the split needs a
// site with at least two pools holding a strict majority, and turns
// itself off for every flow that assumes one shard per site.
func TestSubShardActivationGating(t *testing.T) {
	build := func(poolsAt ...int) *world {
		var configs []cluster.PoolConfig
		for s, n := range poolsAt {
			for p := 0; p < n; p++ {
				configs = append(configs, cluster.PoolConfig{
					Site:    string(rune('A' + s)),
					Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 4096, Speed: 1.0}},
				})
			}
		}
		plat, err := cluster.Build(configs)
		if err != nil {
			t.Fatal(err)
		}
		base := Config{Platform: plat, Initial: sched.NewRoundRobin(), Policy: core.NewNoRes()}
		cfg, err := base.withDefaults()
		if err != nil {
			t.Fatal(err)
		}
		w, err := buildWorld(cfg, []job.Spec{lowJob(1, 0, 10, 0)})
		if err != nil {
			t.Fatal(err)
		}
		return w
	}
	if got := subShardHotSite(build(3, 1)); got != 0 {
		t.Errorf("3-vs-1 pools: hot site = %d, want 0", got)
	}
	if got := subShardHotSite(build(1, 3)); got != 1 {
		t.Errorf("1-vs-3 pools: hot site = %d, want 1", got)
	}
	for name, w := range map[string]*world{
		"balanced":     build(2, 2),
		"bare-hot":     build(1, 1), // majority site has just one pool
		"even-split":   build(2, 1, 1),
		"three-way":    build(3, 3, 3),
		"single-site":  build(4),
		"no-majority5": build(2, 2, 1),
	} {
		if got := subShardHotSite(w); got != -1 {
			t.Errorf("%s: hot site = %d, want -1", name, got)
		}
	}
	// Feature gates: the same skewed platform must refuse to split
	// under any flow that assumes one shard per site.
	w := build(3, 1)
	w.cfg.CheckpointEvery = 100
	if got := subShardHotSite(w); got != -1 {
		t.Errorf("checkpointing enabled: hot site = %d, want -1", got)
	}
	w = build(3, 1)
	w.cfg.ResumeFrom = []byte{1}
	if got := subShardHotSite(w); got != -1 {
		t.Errorf("resume configured: hot site = %d, want -1", got)
	}
	w = build(3, 1)
	w.cfg.stopAtEvents = 5
	if got := subShardHotSite(w); got != -1 {
		t.Errorf("replay stop configured: hot site = %d, want -1", got)
	}
	w = build(3, 1)
	w.cfg.eventLog = &replayRecorder{}
	if got := subShardHotSite(w); got != -1 {
		t.Errorf("event log configured: hot site = %d, want -1", got)
	}
	w = build(3, 1)
	w.cfg.Faults = FaultConfig{MTBF: 1000, MTTR: 10}
	if !w.cfg.Faults.enabled() {
		t.Fatal("fault config not enabled; gate test is vacuous")
	}
	if got := subShardHotSite(w); got != -1 {
		t.Errorf("faults enabled: hot site = %d, want -1", got)
	}
}

// TestSubShardSingleHotSiteAllLocal pins the degenerate-but-important
// case of a two-site platform whose hot site holds every job: all
// parallelism must come from the split itself.
func TestSubShardSingleHotSiteAllLocal(t *testing.T) {
	r := rand.New(rand.NewPCG(99, 7))
	var configs []cluster.PoolConfig
	for p := 0; p < 5; p++ {
		configs = append(configs, cluster.PoolConfig{
			Site:    "A",
			Classes: []cluster.MachineClass{{Count: 2, Cores: 1, MemMB: 4096, Speed: 1.0}},
		})
	}
	configs = append(configs, cluster.PoolConfig{
		Site:    "B",
		Classes: []cluster.MachineClass{{Count: 1, Cores: 1, MemMB: 4096, Speed: 1.0}},
	})
	plat, err := cluster.Build(configs)
	if err != nil {
		t.Fatal(err)
	}
	plat, err = plat.WithRTT([][]float64{{0, 7}, {7, 0}})
	if err != nil {
		t.Fatal(err)
	}
	hotPools := []int{0, 1, 2, 3, 4}
	var specs []job.Spec
	tm := 0.0
	for i := 0; i < 60; i++ {
		tm += r.Float64() * 4
		specs = append(specs, job.Spec{
			ID: job.ID(i + 1), Submit: tm, Work: 5 + r.Float64()*90,
			Cores: 1, MemMB: 1024, Priority: job.PriorityLow,
			Candidates: hotPools, Site: 0,
		})
	}
	mk := func(engine string) Config {
		return Config{
			Platform:          plat,
			Initial:           sched.NewRoundRobin(),
			Policy:            core.NewResSusWaitUtil(),
			Engine:            engine,
			CheckConservation: true,
		}
	}
	serialRes, err := Run(mk(EngineSerial), specs)
	if err != nil {
		t.Fatal(err)
	}
	parRes, err := Run(mk(EngineParallel), specs)
	if err != nil {
		t.Fatal(err)
	}
	if parRes.SubShardSteals == 0 {
		t.Error("no steals recorded with every job on the 5-pool hot site")
	}
	if parRes.ambiguousTies {
		t.Skip("ambiguous tie observed")
	}
	if a, b := fingerprint(serialRes), fingerprint(parRes); a != b {
		t.Fatalf("serial and sub-sharded parallel results differ:\n%s", firstDiff(a, b))
	}
}
