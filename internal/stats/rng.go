// Package stats provides the statistical substrate for the NetBatch
// reproduction: a seedable deterministic random number generator,
// the workload distributions the synthetic trace generator draws from
// (lognormal, Pareto, exponential, bounded uniforms), and the summary
// machinery used by the metrics layer (online moments, quantiles,
// empirical CDFs, histogram binning).
//
// Everything in this package is deterministic given a seed, which is
// what makes every experiment in the repository reproducible.
package stats

import (
	"math"
	"math/rand/v2"
)

// RNG is a deterministic, seedable source of random variates.
//
// It wraps math/rand/v2's PCG generator with explicit, exportable state:
// ExportState captures the generator mid-stream and ImportState resumes
// it so that a straight run and a save/restore run draw identical
// streams (the checkpoint/restore contract). RNG is not safe for
// concurrent use; the simulator is single-threaded by design, and
// parallel experiment runners each own a distinct RNG.
type RNG struct {
	src  *rand.Rand
	pcg  *rand.PCG
	seed uint64
}

// RNGState is the explicit serializable state of an RNG: the seed its
// keyed forks derive from (SplitKey/ForkSeed are pure functions of it)
// plus the PCG generator's marshaled position in its stream.
type RNGState struct {
	Seed uint64 `json:"seed"`
	PCG  []byte `json:"pcg"`
}

// NewRNG returns a generator seeded with seed. Two RNGs created with the
// same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	pcg := rand.NewPCG(seed, seed^0x9e3779b97f4a7c15)
	return &RNG{src: rand.New(pcg), pcg: pcg, seed: seed}
}

// ExportState snapshots the generator. The result is a pure value:
// exporting consumes no draws and the generator continues unaffected.
func (r *RNG) ExportState() RNGState {
	data, err := r.pcg.MarshalBinary()
	if err != nil {
		// rand.PCG.MarshalBinary cannot fail; keep the signature clean.
		panic("stats: PCG marshal failed: " + err.Error())
	}
	return RNGState{Seed: r.seed, PCG: data}
}

// ImportState repositions the generator to a previously exported state:
// subsequent draws (and keyed forks) are identical to those the
// exporting generator produced after the export.
func (r *RNG) ImportState(st RNGState) error {
	if err := r.pcg.UnmarshalBinary(st.PCG); err != nil {
		return err
	}
	r.seed = st.Seed
	return nil
}

// RestoreRNG reconstructs a generator from an exported state.
func RestoreRNG(st RNGState) (*RNG, error) {
	r := NewRNG(st.Seed)
	if err := r.ImportState(st); err != nil {
		return nil, err
	}
	return r, nil
}

// Split derives an independent generator from the current stream. It is
// used to give each subsystem (arrival process, runtime sampler, burst
// process, ...) its own stream so that adding draws to one subsystem
// does not perturb the others. Split consumes parent state: use SplitKey
// when the fork must not depend on how many draws preceded it.
func (r *RNG) Split() *RNG {
	a, b := r.src.Uint64(), r.src.Uint64()
	pcg := rand.NewPCG(a, b)
	return &RNG{src: rand.New(pcg), pcg: pcg, seed: a}
}

// SplitKey derives an independent generator identified by key without
// consuming any state from r: the child stream is a pure function of
// r's seed and the key. Distinct keys yield independent streams, and
// the result does not depend on draw or fork order — which is what lets
// a parallel experiment runner hand each matrix cell its own stream and
// still produce results identical to a serial run.
func (r *RNG) SplitKey(key uint64) *RNG {
	return NewRNG(ForkSeed(r.seed, key))
}

// ForkSeed deterministically derives a child seed from a parent seed
// and a sequence of keys using the splitmix64 finalizer. It is pure:
// the same (seed, keys...) always yields the same child, independent of
// call order, so keyed forks commute across goroutines.
func ForkSeed(seed uint64, keys ...uint64) uint64 {
	out := splitmix64(seed + 0x9e3779b97f4a7c15)
	for _, k := range keys {
		out = splitmix64(out ^ splitmix64(k+0x9e3779b97f4a7c15))
	}
	return out
}

// splitmix64 is the finalizer from Steele et al.'s SplitMix generator,
// a strong 64-bit mixer with no fixed point at zero inputs once offset.
func splitmix64(z uint64) uint64 {
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Float64 returns a uniform variate in [0, 1).
func (r *RNG) Float64() float64 { return r.src.Float64() }

// IntN returns a uniform integer in [0, n). It panics if n <= 0, mirroring
// math/rand/v2.
func (r *RNG) IntN(n int) int { return r.src.IntN(n) }

// Uint64 returns a uniform 64-bit value.
func (r *RNG) Uint64() uint64 { return r.src.Uint64() }

// NormFloat64 returns a standard normal variate.
func (r *RNG) NormFloat64() float64 { return r.src.NormFloat64() }

// Exp returns an exponential variate with the given mean. It panics if
// mean <= 0.
func (r *RNG) Exp(mean float64) float64 {
	if mean <= 0 {
		panic("stats: Exp requires mean > 0")
	}
	return r.src.ExpFloat64() * mean
}

// Lognormal returns a lognormal variate parameterized by the mu and sigma
// of the underlying normal distribution.
func (r *RNG) Lognormal(mu, sigma float64) float64 {
	return math.Exp(mu + sigma*r.src.NormFloat64())
}

// Pareto returns a Pareto variate with minimum xm and shape alpha.
// It panics if xm <= 0 or alpha <= 0.
func (r *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic("stats: Pareto requires xm > 0 and alpha > 0")
	}
	// Inverse transform sampling; 1-U avoids a zero denominator.
	u := 1 - r.src.Float64()
	return xm / math.Pow(u, 1/alpha)
}

// Uniform returns a uniform variate in [lo, hi). It panics if hi < lo.
func (r *RNG) Uniform(lo, hi float64) float64 {
	if hi < lo {
		panic("stats: Uniform requires hi >= lo")
	}
	return lo + (hi-lo)*r.src.Float64()
}

// Bool returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bool(p float64) bool {
	return r.src.Float64() < p
}

// Perm returns a random permutation of [0, n).
func (r *RNG) Perm(n int) []int { return r.src.Perm(n) }

// PickWeighted returns an index in [0, len(weights)) with probability
// proportional to weights[i]. It panics if weights is empty or the total
// weight is not positive.
func (r *RNG) PickWeighted(weights []float64) int {
	if len(weights) == 0 {
		panic("stats: PickWeighted requires at least one weight")
	}
	var total float64
	for _, w := range weights {
		if w < 0 {
			panic("stats: PickWeighted requires non-negative weights")
		}
		total += w
	}
	if total <= 0 {
		panic("stats: PickWeighted requires positive total weight")
	}
	x := r.src.Float64() * total
	for i, w := range weights {
		x -= w
		if x < 0 {
			return i
		}
	}
	return len(weights) - 1
}
