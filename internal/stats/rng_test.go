package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("draw %d: %d != %d — same seed must produce same stream", i, av, bv)
		}
	}
}

func TestNewRNGDistinctSeeds(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("streams from different seeds collided %d/100 times", same)
	}
}

func TestSplitIndependence(t *testing.T) {
	// Drawing from a split stream must not perturb the parent relative
	// to a parent that split but never used the child.
	a := NewRNG(7)
	b := NewRNG(7)
	ac := a.Split()
	_ = b.Split()
	for i := 0; i < 100; i++ {
		ac.Float64() // consume child draws
	}
	for i := 0; i < 100; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("parent stream perturbed by child draws at %d", i)
		}
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(3)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %v", v)
		}
	}
}

func TestExpMean(t *testing.T) {
	r := NewRNG(11)
	var m Mean
	const want = 250.0
	for i := 0; i < 200000; i++ {
		m.Add(r.Exp(want))
	}
	if got := m.Mean(); math.Abs(got-want)/want > 0.02 {
		t.Fatalf("Exp mean = %v, want ~%v", got, want)
	}
}

func TestExpPanicsOnNonPositiveMean(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Exp(0) did not panic")
		}
	}()
	NewRNG(1).Exp(0)
}

func TestLognormalMedian(t *testing.T) {
	r := NewRNG(13)
	mu := math.Log(100.0)
	xs := make([]float64, 0, 100000)
	for i := 0; i < 100000; i++ {
		xs = append(xs, r.Lognormal(mu, 1.2))
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	// Median of lognormal is exp(mu) = 100.
	if math.Abs(med-100)/100 > 0.05 {
		t.Fatalf("lognormal median = %v, want ~100", med)
	}
}

func TestParetoTail(t *testing.T) {
	r := NewRNG(17)
	const xm, alpha = 10.0, 1.5
	over := 0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto variate %v below xm %v", v, xm)
		}
		if v > 100 { // P(X > 100) = (xm/100)^alpha = 0.1^1.5 ~ 0.0316
			over++
		}
	}
	frac := float64(over) / n
	if math.Abs(frac-0.0316) > 0.005 {
		t.Fatalf("Pareto tail fraction = %v, want ~0.0316", frac)
	}
}

func TestParetoPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"xm=0":    func() { NewRNG(1).Pareto(0, 1) },
		"alpha=0": func() { NewRNG(1).Pareto(1, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(19)
	for i := 0; i < 10000; i++ {
		v := r.Uniform(5, 9)
		if v < 5 || v >= 9 {
			t.Fatalf("Uniform(5,9) out of range: %v", v)
		}
	}
	if got := r.Uniform(4, 4); got != 4 {
		t.Fatalf("Uniform(4,4) = %v, want 4", got)
	}
}

func TestBoolProbability(t *testing.T) {
	r := NewRNG(23)
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bool(0.3) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) hit rate = %v", frac)
	}
}

func TestPickWeighted(t *testing.T) {
	r := NewRNG(29)
	weights := []float64{1, 0, 3}
	counts := make([]int, 3)
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.PickWeighted(weights)]++
	}
	if counts[1] != 0 {
		t.Fatalf("zero-weight index picked %d times", counts[1])
	}
	if frac := float64(counts[2]) / n; math.Abs(frac-0.75) > 0.01 {
		t.Fatalf("weight-3 index frac = %v, want ~0.75", frac)
	}
}

func TestPickWeightedPanics(t *testing.T) {
	cases := map[string][]float64{
		"empty":    {},
		"allZero":  {0, 0},
		"negative": {1, -1},
	}
	for name, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("PickWeighted(%s) did not panic", name)
				}
			}()
			NewRNG(1).PickWeighted(w)
		}()
	}
}

func TestIntNCoverage(t *testing.T) {
	r := NewRNG(31)
	seen := make(map[int]bool)
	for i := 0; i < 1000; i++ {
		v := r.IntN(5)
		if v < 0 || v >= 5 {
			t.Fatalf("IntN(5) = %v", v)
		}
		seen[v] = true
	}
	if len(seen) != 5 {
		t.Fatalf("IntN(5) covered only %d values", len(seen))
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(37)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%32) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSplitKeyOrderIndependent(t *testing.T) {
	// Keyed forks must not depend on parent draws or fork order.
	a := NewRNG(99)
	b := NewRNG(99)
	for i := 0; i < 17; i++ {
		a.Float64() // perturb a's stream only
	}
	childA := a.SplitKey(7)
	_ = b.SplitKey(3) // fork in a different order
	childB := b.SplitKey(7)
	for i := 0; i < 100; i++ {
		if childA.Uint64() != childB.Uint64() {
			t.Fatal("SplitKey stream depends on parent draws or fork order")
		}
	}
}

func TestSplitKeyDistinctKeys(t *testing.T) {
	r := NewRNG(1)
	x, y := r.SplitKey(1), r.SplitKey(2)
	same := 0
	for i := 0; i < 64; i++ {
		if x.Uint64() == y.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("distinct keys collided on %d of 64 draws", same)
	}
}

func TestForkSeedPure(t *testing.T) {
	if ForkSeed(42, 1, 2) != ForkSeed(42, 1, 2) {
		t.Fatal("ForkSeed not deterministic")
	}
	if ForkSeed(42, 1, 2) == ForkSeed(42, 2, 1) {
		t.Fatal("ForkSeed ignores key order")
	}
	if ForkSeed(42, 1) == ForkSeed(42, 2) {
		t.Fatal("ForkSeed collided on distinct keys")
	}
	if ForkSeed(42) == ForkSeed(43) {
		t.Fatal("ForkSeed collided on distinct seeds")
	}
}

func TestRNGExportImportIdenticalStreams(t *testing.T) {
	r := NewRNG(12345)
	for i := 0; i < 100; i++ {
		r.Float64() // advance mid-stream
	}
	st := r.ExportState()
	want := make([]float64, 64)
	for i := range want {
		// Mix variate kinds so any hidden transform state would surface.
		switch i % 4 {
		case 0:
			want[i] = r.Float64()
		case 1:
			want[i] = float64(r.IntN(1 << 30))
		case 2:
			want[i] = r.NormFloat64()
		default:
			want[i] = r.Exp(7)
		}
	}
	wantFork := r.SplitKey(99).Uint64()

	restored, err := RestoreRNG(st)
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		var got float64
		switch i % 4 {
		case 0:
			got = restored.Float64()
		case 1:
			got = float64(restored.IntN(1 << 30))
		case 2:
			got = restored.NormFloat64()
		default:
			got = restored.Exp(7)
		}
		if got != want[i] {
			t.Fatalf("draw %d: restored %v != straight %v", i, got, want[i])
		}
	}
	if gotFork := restored.SplitKey(99).Uint64(); gotFork != wantFork {
		t.Fatalf("SplitKey after restore diverged: %d != %d", gotFork, wantFork)
	}
}

func TestRNGExportIsPureRead(t *testing.T) {
	a, b := NewRNG(7), NewRNG(7)
	a.ExportState()
	for i := 0; i < 32; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("ExportState perturbed the stream at draw %d", i)
		}
	}
}

func TestRNGImportRejectsGarbage(t *testing.T) {
	r := NewRNG(1)
	if err := r.ImportState(RNGState{Seed: 1, PCG: []byte("nonsense")}); err == nil {
		t.Fatal("ImportState accepted garbage")
	}
}
