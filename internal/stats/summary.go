package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean is an online accumulator of count, mean, and variance using
// Welford's algorithm. The zero value is ready to use.
type Mean struct {
	n    int64
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (m *Mean) Add(x float64) {
	m.n++
	if m.n == 1 {
		m.min, m.max = x, x
	} else {
		if x < m.min {
			m.min = x
		}
		if x > m.max {
			m.max = x
		}
	}
	delta := x - m.mean
	m.mean += delta / float64(m.n)
	m.m2 += delta * (x - m.mean)
}

// N returns the number of observations.
func (m *Mean) N() int64 { return m.n }

// Mean returns the running mean, or 0 with no observations.
func (m *Mean) Mean() float64 { return m.mean }

// Sum returns the total of all observations.
func (m *Mean) Sum() float64 { return m.mean * float64(m.n) }

// Var returns the sample variance, or 0 with fewer than two observations.
func (m *Mean) Var() float64 {
	if m.n < 2 {
		return 0
	}
	return m.m2 / float64(m.n-1)
}

// Stddev returns the sample standard deviation.
func (m *Mean) Stddev() float64 { return math.Sqrt(m.Var()) }

// Min returns the smallest observation, or 0 with no observations.
func (m *Mean) Min() float64 { return m.min }

// Max returns the largest observation, or 0 with no observations.
func (m *Mean) Max() float64 { return m.max }

// tCrit95 holds two-sided Student-t critical values at the 0.95 level
// for 1..30 degrees of freedom; beyond 30 the normal approximation
// (1.96) is within ~2% and is used instead.
var tCrit95 = [...]float64{
	12.706, 4.303, 3.182, 2.776, 2.571, 2.447, 2.365, 2.306, 2.262, 2.228,
	2.201, 2.179, 2.160, 2.145, 2.131, 2.120, 2.110, 2.101, 2.093, 2.086,
	2.080, 2.074, 2.069, 2.064, 2.060, 2.056, 2.052, 2.048, 2.045, 2.042,
}

// CI95 returns the half-width of the two-sided 95% confidence interval
// for the mean (Student t on n-1 degrees of freedom), or 0 with fewer
// than two observations. The experiment runner reports multi-seed
// replications as Mean() ± CI95().
func (m *Mean) CI95() float64 {
	if m.n < 2 {
		return 0
	}
	t := 1.960
	if df := m.n - 1; df <= int64(len(tCrit95)) {
		t = tCrit95[df-1]
	}
	return t * m.Stddev() / math.Sqrt(float64(m.n))
}

// Merge combines another accumulator into this one (parallel Welford).
func (m *Mean) Merge(o *Mean) {
	if o.n == 0 {
		return
	}
	if m.n == 0 {
		*m = *o
		return
	}
	n := m.n + o.n
	delta := o.mean - m.mean
	m.m2 += o.m2 + delta*delta*float64(m.n)*float64(o.n)/float64(n)
	m.mean += delta * float64(o.n) / float64(n)
	if o.min < m.min {
		m.min = o.min
	}
	if o.max > m.max {
		m.max = o.max
	}
	m.n = n
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between order statistics. It returns an error for an
// empty sample or q outside [0, 1]. xs is not modified.
func Quantile(xs []float64, q float64) (float64, error) {
	if len(xs) == 0 {
		return 0, fmt.Errorf("stats: quantile of empty sample")
	}
	if q < 0 || q > 1 {
		return 0, fmt.Errorf("stats: quantile %v outside [0, 1]", q)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return quantileSorted(sorted, q), nil
}

func quantileSorted(sorted []float64, q float64) float64 {
	if len(sorted) == 1 {
		return sorted[0]
	}
	pos := q * float64(len(sorted)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return sorted[lo]
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// CDF is an empirical cumulative distribution function over a fixed
// sample. Construct it with NewCDF.
type CDF struct {
	sorted []float64
}

// NewCDF builds an empirical CDF from xs. xs is copied; it may be empty,
// in which case all queries return degenerate values.
func NewCDF(xs []float64) *CDF {
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	return &CDF{sorted: sorted}
}

// N returns the sample size.
func (c *CDF) N() int { return len(c.sorted) }

// At returns P(X <= x), the fraction of the sample at or below x.
// It returns 0 for an empty sample.
func (c *CDF) At(x float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	// First index with value > x.
	idx := sort.SearchFloat64s(c.sorted, math.Nextafter(x, math.Inf(1)))
	return float64(idx) / float64(len(c.sorted))
}

// Quantile returns the q-quantile of the sample, or 0 for an empty
// sample. q is clamped to [0, 1].
func (c *CDF) Quantile(q float64) float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	return quantileSorted(c.sorted, q)
}

// Mean returns the sample mean, or 0 for an empty sample.
func (c *CDF) Mean() float64 {
	if len(c.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, x := range c.sorted {
		sum += x
	}
	return sum / float64(len(c.sorted))
}

// Points returns (value, cumulative fraction) pairs suitable for plotting
// the CDF at up to n evenly spaced sample ranks. For n <= 0 or n larger
// than the sample, every sample point is returned.
func (c *CDF) Points(n int) []Point {
	if len(c.sorted) == 0 {
		return nil
	}
	if n <= 0 || n > len(c.sorted) {
		n = len(c.sorted)
	}
	pts := make([]Point, 0, n)
	for i := 0; i < n; i++ {
		rank := i * (len(c.sorted) - 1) / max(n-1, 1)
		pts = append(pts, Point{
			X: c.sorted[rank],
			Y: float64(rank+1) / float64(len(c.sorted)),
		})
	}
	return pts
}

// Point is an (x, y) pair in a rendered distribution or time series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Histogram counts observations into fixed-width bins over [Lo, Hi).
// Out-of-range observations are clamped into the first/last bin so the
// total count always matches the number of Add calls.
type Histogram struct {
	Lo, Hi float64
	counts []int64
	total  int64
}

// NewHistogram creates a histogram with n bins over [lo, hi). It panics
// if n <= 0 or hi <= lo, which are programmer errors.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 {
		panic("stats: NewHistogram requires n > 0")
	}
	if hi <= lo {
		panic("stats: NewHistogram requires hi > lo")
	}
	return &Histogram{Lo: lo, Hi: hi, counts: make([]int64, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	idx := int((x - h.Lo) / (h.Hi - h.Lo) * float64(len(h.counts)))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(h.counts) {
		idx = len(h.counts) - 1
	}
	h.counts[idx]++
	h.total++
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() int64 { return h.total }

// Counts returns a copy of the per-bin counts.
func (h *Histogram) Counts() []int64 {
	out := make([]int64, len(h.counts))
	copy(out, h.counts)
	return out
}

// BinCenter returns the midpoint of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.counts))
	return h.Lo + (float64(i)+0.5)*w
}
