package stats

import (
	"math"
	"sort"
	"testing"
	"testing/quick"
)

func TestMeanBasics(t *testing.T) {
	var m Mean
	if m.N() != 0 || m.Mean() != 0 || m.Var() != 0 {
		t.Fatal("zero-value Mean not neutral")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		m.Add(x)
	}
	if m.N() != 8 {
		t.Fatalf("N = %d", m.N())
	}
	if got := m.Mean(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("Mean = %v, want 5", got)
	}
	// Sample variance of the classic dataset: population var is 4, so
	// sample var is 4 * 8/7.
	if got, want := m.Var(), 4.0*8/7; math.Abs(got-want) > 1e-12 {
		t.Fatalf("Var = %v, want %v", got, want)
	}
	if m.Min() != 2 || m.Max() != 9 {
		t.Fatalf("Min/Max = %v/%v", m.Min(), m.Max())
	}
	if got := m.Sum(); math.Abs(got-40) > 1e-9 {
		t.Fatalf("Sum = %v, want 40", got)
	}
}

func TestMeanMergeMatchesSequential(t *testing.T) {
	r := NewRNG(5)
	err := quick.Check(func(split uint8) bool {
		xs := make([]float64, 200)
		for i := range xs {
			xs[i] = r.Float64()*100 - 50
		}
		k := int(split) % len(xs)
		var whole, left, right Mean
		for _, x := range xs {
			whole.Add(x)
		}
		for _, x := range xs[:k] {
			left.Add(x)
		}
		for _, x := range xs[k:] {
			right.Add(x)
		}
		left.Merge(&right)
		return left.N() == whole.N() &&
			math.Abs(left.Mean()-whole.Mean()) < 1e-9 &&
			math.Abs(left.Var()-whole.Var()) < 1e-6 &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestMeanMergeEmpty(t *testing.T) {
	var a, b Mean
	a.Add(3)
	a.Merge(&b) // merging empty is a no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a) // merging into empty copies
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty did not copy")
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		q, want float64
	}{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got, err := Quantile(xs, c.q)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(got-c.want) > 1e-12 {
			t.Fatalf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestQuantileErrors(t *testing.T) {
	if _, err := Quantile(nil, 0.5); err == nil {
		t.Fatal("empty sample: want error")
	}
	if _, err := Quantile([]float64{1}, -0.1); err == nil {
		t.Fatal("q<0: want error")
	}
	if _, err := Quantile([]float64{1}, 1.1); err == nil {
		t.Fatal("q>1: want error")
	}
}

func TestQuantileDoesNotMutateInput(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Quantile(xs, 0.5); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatal("Quantile mutated its input")
	}
}

func TestCDFAt(t *testing.T) {
	c := NewCDF([]float64{1, 2, 2, 3})
	cases := []struct {
		x, want float64
	}{
		{0.5, 0}, {1, 0.25}, {2, 0.75}, {2.5, 0.75}, {3, 1}, {10, 1},
	}
	for _, cse := range cases {
		if got := c.At(cse.x); math.Abs(got-cse.want) > 1e-12 {
			t.Fatalf("At(%v) = %v, want %v", cse.x, got, cse.want)
		}
	}
}

func TestCDFEmpty(t *testing.T) {
	c := NewCDF(nil)
	if c.N() != 0 || c.At(5) != 0 || c.Quantile(0.5) != 0 || c.Mean() != 0 {
		t.Fatal("empty CDF not degenerate-safe")
	}
	if pts := c.Points(10); pts != nil {
		t.Fatal("empty CDF Points should be nil")
	}
}

func TestCDFMonotonicProperty(t *testing.T) {
	r := NewRNG(101)
	err := quick.Check(func(seedByte uint8) bool {
		n := int(seedByte)%100 + 2
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = r.Float64() * 1000
		}
		c := NewCDF(xs)
		// CDF must be monotone nondecreasing in x.
		prev := -1.0
		for x := 0.0; x <= 1000; x += 50 {
			v := c.At(x)
			if v < prev || v < 0 || v > 1 {
				return false
			}
			prev = v
		}
		// Quantile must be monotone nondecreasing in q and invert At.
		prevQ := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.1 {
			v := c.Quantile(q)
			if v < prevQ {
				return false
			}
			prevQ = v
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestCDFQuantileAtRoundTrip(t *testing.T) {
	r := NewRNG(103)
	xs := make([]float64, 500)
	for i := range xs {
		xs[i] = r.Float64() * 100
	}
	c := NewCDF(xs)
	for _, q := range []float64{0.1, 0.25, 0.5, 0.75, 0.9} {
		x := c.Quantile(q)
		if got := c.At(x); got < q-0.01 {
			t.Fatalf("At(Quantile(%v)) = %v < q", q, got)
		}
	}
}

func TestCDFPoints(t *testing.T) {
	xs := []float64{10, 20, 30, 40, 50}
	c := NewCDF(xs)
	pts := c.Points(5)
	if len(pts) != 5 {
		t.Fatalf("Points(5) len = %d", len(pts))
	}
	if pts[0].X != 10 || pts[len(pts)-1].X != 50 {
		t.Fatalf("Points endpoints = %v, %v", pts[0], pts[len(pts)-1])
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Y < pts[i-1].Y {
			t.Fatal("Points Y not monotone")
		}
	}
	if got := c.Points(0); len(got) != len(xs) {
		t.Fatalf("Points(0) len = %d, want %d", len(got), len(xs))
	}
}

func TestCDFMean(t *testing.T) {
	c := NewCDF([]float64{1, 2, 3})
	if got := c.Mean(); math.Abs(got-2) > 1e-12 {
		t.Fatalf("Mean = %v", got)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 100, 10)
	for _, x := range []float64{-5, 0, 5, 15, 99, 105} {
		h.Add(x)
	}
	counts := h.Counts()
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
	if counts[0] != 3 { // -5 (clamped), 0, 5
		t.Fatalf("bin0 = %d, want 3", counts[0])
	}
	if counts[1] != 1 {
		t.Fatalf("bin1 = %d, want 1", counts[1])
	}
	if counts[9] != 2 { // 99 and 105 (clamped)
		t.Fatalf("bin9 = %d, want 2", counts[9])
	}
	if got := h.BinCenter(0); math.Abs(got-5) > 1e-12 {
		t.Fatalf("BinCenter(0) = %v", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zeroBins":  func() { NewHistogram(0, 1, 0) },
		"badBounds": func() { NewHistogram(1, 1, 4) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestHistogramConservation(t *testing.T) {
	r := NewRNG(201)
	err := quick.Check(func(n uint16) bool {
		h := NewHistogram(0, 50, 7)
		adds := int(n % 500)
		for i := 0; i < adds; i++ {
			h.Add(r.Float64()*200 - 50) // deliberately out of range sometimes
		}
		var sum int64
		for _, c := range h.Counts() {
			sum += c
		}
		return sum == int64(adds) && h.Total() == int64(adds)
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestQuantileMatchesSortDefinition(t *testing.T) {
	r := NewRNG(301)
	xs := make([]float64, 1001)
	for i := range xs {
		xs[i] = r.Float64()
	}
	med, err := Quantile(xs, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sorted := make([]float64, len(xs))
	copy(sorted, xs)
	sort.Float64s(sorted)
	if med != sorted[500] {
		t.Fatalf("median = %v, want middle element %v", med, sorted[500])
	}
}

func TestMeanCI95(t *testing.T) {
	var m Mean
	if m.CI95() != 0 {
		t.Fatal("empty accumulator must report zero CI")
	}
	m.Add(5)
	if m.CI95() != 0 {
		t.Fatal("single observation must report zero CI")
	}
	// {1, 3}: stddev = sqrt(2), df = 1, t = 12.706,
	// CI = 12.706 * sqrt(2) / sqrt(2) = 12.706.
	var two Mean
	two.Add(1)
	two.Add(3)
	if got := two.CI95(); math.Abs(got-12.706) > 1e-9 {
		t.Fatalf("CI95 of {1,3} = %v, want 12.706", got)
	}
	// {1,2,3,4}: stddev = 1.29099..., df = 3, t = 3.182.
	var four Mean
	for _, x := range []float64{1, 2, 3, 4} {
		four.Add(x)
	}
	want := 3.182 * four.Stddev() / 2
	if got := four.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("CI95 of {1..4} = %v, want %v", got, want)
	}
	// Large n falls back to the normal critical value.
	var big Mean
	for i := 0; i < 1000; i++ {
		big.Add(float64(i % 10))
	}
	want = 1.96 * big.Stddev() / math.Sqrt(1000)
	if got := big.CI95(); math.Abs(got-want) > 1e-9 {
		t.Fatalf("large-n CI95 = %v, want %v", got, want)
	}
}
