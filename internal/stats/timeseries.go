package stats

// TimeSeries aggregates per-sample observations into fixed-width time
// bins, producing the averaged series the paper plots in Figure 4
// ("sampled ... every minute and aggregated ... based on a 100 minutes
// interval").
//
// Observations may arrive at any nonnegative time; each falls into bin
// floor(t / BinWidth). Bins with no observations report a zero average
// and are still emitted so series stay aligned.
type TimeSeries struct {
	// BinWidth is the aggregation interval in the same time unit as the
	// observations (minutes throughout this repository).
	BinWidth float64

	sums   []float64
	counts []int64
}

// NewTimeSeries creates a series aggregated into binWidth-wide bins.
// It panics if binWidth <= 0, which is a programmer error.
func NewTimeSeries(binWidth float64) *TimeSeries {
	if binWidth <= 0 {
		panic("stats: NewTimeSeries requires binWidth > 0")
	}
	return &TimeSeries{BinWidth: binWidth}
}

// Add records an observation of value v at time t. Negative times are
// clamped to bin zero.
func (ts *TimeSeries) Add(t, v float64) {
	idx := int(t / ts.BinWidth)
	if idx < 0 {
		idx = 0
	}
	for idx >= len(ts.sums) {
		ts.sums = append(ts.sums, 0)
		ts.counts = append(ts.counts, 0)
	}
	ts.sums[idx] += v
	ts.counts[idx]++
}

// Len returns the number of bins currently covered.
func (ts *TimeSeries) Len() int { return len(ts.sums) }

// Dump exports the accumulator's complete internal state — the per-bin
// sums and observation counts — for checkpointing. The returned slices
// are copies; mutating them does not affect the series.
func (ts *TimeSeries) Dump() (sums []float64, counts []int64) {
	return append([]float64(nil), ts.sums...), append([]int64(nil), ts.counts...)
}

// RestoreTimeSeries rebuilds a series from a Dump, so observations
// added afterwards continue the accumulation bit-identically to a
// series that was never dumped. It panics if binWidth <= 0 or the
// slices disagree in length, which are programmer errors.
func RestoreTimeSeries(binWidth float64, sums []float64, counts []int64) *TimeSeries {
	if len(sums) != len(counts) {
		panic("stats: RestoreTimeSeries sums/counts length mismatch")
	}
	ts := NewTimeSeries(binWidth)
	ts.sums = append([]float64(nil), sums...)
	ts.counts = append([]int64(nil), counts...)
	return ts
}

// Points returns (bin midpoint time, bin average) pairs.
func (ts *TimeSeries) Points() []Point {
	pts := make([]Point, len(ts.sums))
	for i := range ts.sums {
		avg := 0.0
		if ts.counts[i] > 0 {
			avg = ts.sums[i] / float64(ts.counts[i])
		}
		pts[i] = Point{X: (float64(i) + 0.5) * ts.BinWidth, Y: avg}
	}
	return pts
}

// MeanOfBins returns the average of the per-bin averages, ignoring empty
// bins. It returns 0 if every bin is empty.
func (ts *TimeSeries) MeanOfBins() float64 {
	var sum float64
	var n int
	for i := range ts.sums {
		if ts.counts[i] > 0 {
			sum += ts.sums[i] / float64(ts.counts[i])
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// MaxBin returns the largest per-bin average and its bin midpoint.
// It returns (0, 0) if every bin is empty.
func (ts *TimeSeries) MaxBin() (t, v float64) {
	found := false
	for i := range ts.sums {
		if ts.counts[i] == 0 {
			continue
		}
		avg := ts.sums[i] / float64(ts.counts[i])
		if !found || avg > v {
			v = avg
			t = (float64(i) + 0.5) * ts.BinWidth
			found = true
		}
	}
	return t, v
}
