package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeSeriesBinning(t *testing.T) {
	ts := NewTimeSeries(100)
	ts.Add(0, 10)
	ts.Add(50, 20)  // same bin as t=0
	ts.Add(150, 40) // bin 1
	ts.Add(990, 5)  // bin 9
	pts := ts.Points()
	if len(pts) != 10 {
		t.Fatalf("len = %d, want 10", len(pts))
	}
	if got := pts[0].Y; math.Abs(got-15) > 1e-12 {
		t.Fatalf("bin0 avg = %v, want 15", got)
	}
	if got := pts[1].Y; math.Abs(got-40) > 1e-12 {
		t.Fatalf("bin1 avg = %v, want 40", got)
	}
	if got := pts[0].X; math.Abs(got-50) > 1e-12 {
		t.Fatalf("bin0 midpoint = %v, want 50", got)
	}
	// Empty bins report zero.
	if pts[5].Y != 0 {
		t.Fatalf("empty bin avg = %v", pts[5].Y)
	}
}

func TestTimeSeriesNegativeTimeClamped(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(-5, 7)
	pts := ts.Points()
	if len(pts) != 1 || pts[0].Y != 7 {
		t.Fatalf("negative time not clamped into bin 0: %+v", pts)
	}
}

func TestTimeSeriesMeanOfBins(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(5, 10)
	ts.Add(15, 30)
	ts.Add(45, 20) // bins 2, 3 empty, skipped in mean
	if got := ts.MeanOfBins(); math.Abs(got-20) > 1e-12 {
		t.Fatalf("MeanOfBins = %v, want 20", got)
	}
}

func TestTimeSeriesMaxBin(t *testing.T) {
	ts := NewTimeSeries(10)
	ts.Add(5, 10)
	ts.Add(25, 99)
	tm, v := ts.MaxBin()
	if v != 99 || math.Abs(tm-25) > 1e-12 {
		t.Fatalf("MaxBin = (%v, %v)", tm, v)
	}
}

func TestTimeSeriesEmpty(t *testing.T) {
	ts := NewTimeSeries(10)
	if ts.Len() != 0 || ts.MeanOfBins() != 0 {
		t.Fatal("empty series not neutral")
	}
	if tm, v := ts.MaxBin(); tm != 0 || v != 0 {
		t.Fatal("empty MaxBin not zero")
	}
}

func TestTimeSeriesPanicsOnBadWidth(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("NewTimeSeries(0) did not panic")
		}
	}()
	NewTimeSeries(0)
}

func TestTimeSeriesCountConservation(t *testing.T) {
	r := NewRNG(77)
	err := quick.Check(func(n uint16) bool {
		ts := NewTimeSeries(25)
		adds := int(n % 300)
		var want float64
		for i := 0; i < adds; i++ {
			v := r.Float64() * 10
			want += v
			ts.Add(r.Float64()*1000, v)
		}
		// Sum over bins of avg*count must equal total added value.
		var got float64
		for i, p := range ts.Points() {
			got += p.Y * float64(ts.counts[i])
		}
		return math.Abs(got-want) < 1e-6
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestTimeSeriesDumpRestore(t *testing.T) {
	a := NewTimeSeries(100)
	b := NewTimeSeries(100)
	add := func(ts *TimeSeries, lo, hi int) {
		for i := lo; i < hi; i++ {
			ts.Add(float64(i*13%997), float64(i)*0.37)
		}
	}
	add(a, 0, 50)
	add(b, 0, 50)
	sums, counts := a.Dump()
	restored := RestoreTimeSeries(a.BinWidth, sums, counts)
	// Mutating the dump must not affect the restored series.
	if len(sums) > 0 {
		sums[0] += 1e9
	}
	add(restored, 50, 120)
	add(b, 50, 120)
	rp, bp := restored.Points(), b.Points()
	if len(rp) != len(bp) {
		t.Fatalf("restored %d bins, straight %d", len(rp), len(bp))
	}
	for i := range rp {
		if rp[i] != bp[i] {
			t.Fatalf("bin %d: restored %+v != straight %+v", i, rp[i], bp[i])
		}
	}
}
