package trace

import (
	"encoding/json"
	"testing"
)

// FuzzGeneratorConfig guards the generator's untrusted-input surface:
// arbitrary JSON is decoded into a GeneratorConfig and validated, and
// every configuration Validate accepts must generate a well-formed
// trace (Generate re-validates its own output) without panicking —
// Validate is the single gate between external config files and the
// kernel. Expensive configurations (huge horizons, rates or pool
// counts) are skipped after validation so the fuzzer explores the
// validation logic, not the generator's throughput.
func FuzzGeneratorConfig(f *testing.F) {
	// Seed corpus: the real presets plus targeted mutations.
	for _, cfg := range []GeneratorConfig{
		WeekNormal(1),
		HighSuspension(2),
		MultiSiteWeek(3, 3),
		YearLong(4, 0.1),
	} {
		if b, err := json.Marshal(cfg); err == nil {
			f.Add(b)
		}
	}
	f.Add([]byte(`{"horizon":100,"num_pools":2,"low_rate":0.5,` +
		`"mem_classes_mb":[1024],"mem_weights":[1],"cores_classes":[1],"cores_weights":[1]}`))
	f.Add([]byte(`{"horizon":100,"num_pools":2,"cores_classes":[0],"cores_weights":[-1]}`))
	f.Add([]byte(`{"horizon":50,"num_pools":4,"low_rate":1,"subset_size":2,` +
		`"site_pools":[[0,1],[2,3]],"site_local_fraction":0.5,` +
		`"mem_classes_mb":[512],"mem_weights":[1],"cores_classes":[1],"cores_weights":[1]}`))
	f.Add([]byte(`not json`))
	f.Fuzz(func(t *testing.T, data []byte) {
		var cfg GeneratorConfig
		if err := json.Unmarshal(data, &cfg); err != nil {
			return
		}
		if err := cfg.Validate(); err != nil {
			return // rejection is a valid outcome; it must just not panic
		}
		// Bound the work a validated config may demand before generating.
		if cfg.Horizon > 2000 || cfg.NumPools > 32 {
			return
		}
		jobs := cfg.LowRate * (1 + cfg.DiurnalAmplitude) * cfg.Horizon
		for _, b := range cfg.Bursts {
			jobs += b.Rate * b.Duration
		}
		if cfg.Auto != nil {
			jobs += cfg.Auto.Rate * cfg.Horizon
		}
		if jobs > 20000 {
			return
		}
		tr, err := Generate(cfg)
		if err != nil {
			t.Fatalf("Validate accepted a config Generate rejects: %v", err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("generated trace invalid: %v", err)
		}
		for i := range tr.Jobs {
			s := &tr.Jobs[i]
			if s.Submit < 0 || s.Submit >= cfg.Horizon {
				t.Fatalf("job %d submitted at %v outside [0,%v)", s.ID, s.Submit, cfg.Horizon)
			}
			if len(cfg.SitePools) > 0 && s.Site >= len(cfg.SitePools) {
				t.Fatalf("job %d at site %d of %d", s.ID, s.Site, len(cfg.SitePools))
			}
			for _, c := range s.Candidates {
				if c < 0 || c >= cfg.NumPools {
					t.Fatalf("job %d candidate pool %d outside [0,%d)", s.ID, c, cfg.NumPools)
				}
			}
		}
	})
}
