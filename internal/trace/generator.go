package trace

import (
	"fmt"
	"math"
	"sort"

	"netbatch/internal/job"
	"netbatch/internal/stats"
)

// WorkDist describes a job service-demand distribution: a lognormal body
// with an optional Pareto tail, capped. This reproduces the paper's
// long-tailed runtime observation ("a long-tailed distribution of jobs
// that require more than 100k minutes to complete", §2.2).
type WorkDist struct {
	// Median of the lognormal body, in minutes.
	Median float64 `json:"median"`
	// Sigma of the lognormal body (log-space standard deviation).
	Sigma float64 `json:"sigma"`
	// TailFrac is the probability a job is drawn from the Pareto tail.
	TailFrac float64 `json:"tail_frac"`
	// TailMin is the Pareto scale (minimum tail value), minutes.
	TailMin float64 `json:"tail_min"`
	// TailAlpha is the Pareto shape; smaller = heavier tail.
	TailAlpha float64 `json:"tail_alpha"`
	// Cap truncates all draws, minutes. Zero means no cap.
	Cap float64 `json:"cap"`
}

// Sample draws one service demand.
func (w *WorkDist) Sample(r *stats.RNG) float64 {
	var v float64
	if w.TailFrac > 0 && r.Bool(w.TailFrac) {
		v = r.Pareto(w.TailMin, w.TailAlpha)
	} else {
		v = r.Lognormal(math.Log(w.Median), w.Sigma)
	}
	if w.Cap > 0 && v > w.Cap {
		v = w.Cap
	}
	if v < 1 {
		v = 1 // sub-minute jobs round up; the simulator works in minutes
	}
	return v
}

// Mean returns the analytic mean of the (uncapped) distribution; the cap
// makes the true mean slightly smaller. Used for calibration estimates.
func (w *WorkDist) Mean() float64 {
	body := w.Median * math.Exp(w.Sigma*w.Sigma/2)
	tail := 0.0
	if w.TailFrac > 0 && w.TailAlpha > 1 {
		tail = w.TailMin * w.TailAlpha / (w.TailAlpha - 1)
	}
	return (1-w.TailFrac)*body + w.TailFrac*tail
}

// Validate reports configuration errors.
func (w *WorkDist) Validate() error {
	switch {
	case w.Median <= 0:
		return fmt.Errorf("work dist: non-positive median %v", w.Median)
	case w.Sigma < 0:
		return fmt.Errorf("work dist: negative sigma %v", w.Sigma)
	case w.TailFrac < 0 || w.TailFrac > 1:
		return fmt.Errorf("work dist: tail fraction %v outside [0,1]", w.TailFrac)
	case w.TailFrac > 0 && (w.TailMin <= 0 || w.TailAlpha <= 0):
		return fmt.Errorf("work dist: tail requires positive min and alpha")
	}
	return nil
}

// Burst is one episode of high-priority arrivals restricted to a pool
// subset ("latency sensitive jobs with high priority are usually
// configured to only run in specific sets of physical pools", §2.3).
type Burst struct {
	// Start is the burst onset, minutes.
	Start float64 `json:"start"`
	// Duration is the burst length, minutes ("from several hours to a
	// week", §2.3).
	Duration float64 `json:"duration"`
	// Rate is the high-priority arrival rate during the burst, jobs/min.
	Rate float64 `json:"rate"`
	// Pools are the candidate pools of the burst's jobs. Empty means
	// the generator's OwnedPools.
	Pools []int `json:"pools,omitempty"`
}

// AutoBursts parameterizes randomly placed bursts for long (year-scale)
// traces, reproducing Figure 4's recurring suspension spikes.
type AutoBursts struct {
	// MeanGap is the mean minutes between burst onsets (exponential).
	MeanGap float64 `json:"mean_gap"`
	// MeanDuration is the mean burst duration (exponential, capped at
	// MaxDuration).
	MeanDuration float64 `json:"mean_duration"`
	// MaxDuration caps burst length; the paper observes up to a week.
	MaxDuration float64 `json:"max_duration"`
	// Rate is the high-priority arrival rate during bursts, jobs/min.
	Rate float64 `json:"rate"`
	// PoolsPerBurst is how many owned pools each burst targets.
	PoolsPerBurst int `json:"pools_per_burst"`
}

// GeneratorConfig fully parameterizes a synthetic NetBatch trace.
type GeneratorConfig struct {
	// Seed makes generation deterministic.
	Seed uint64 `json:"seed"`
	// Horizon is the trace length in minutes.
	Horizon float64 `json:"horizon"`
	// NumPools is the size of the candidate-pool universe; low-priority
	// jobs may run in any pool.
	NumPools int `json:"num_pools"`
	// OwnedPools are the pools owned by high-priority business groups;
	// burst jobs are restricted to (subsets of) them.
	OwnedPools []int `json:"owned_pools"`

	// LowRate is the base low-priority arrival rate, jobs/min.
	LowRate float64 `json:"low_rate"`
	// DiurnalAmplitude modulates LowRate sinusoidally over DiurnalPeriod
	// (0 disables; 0.3 means ±30%).
	DiurnalAmplitude float64 `json:"diurnal_amplitude"`
	// DiurnalPeriod is the modulation period, minutes (default 1440).
	DiurnalPeriod float64 `json:"diurnal_period"`

	// SubsetSize is the number of candidate pools a restricted
	// low-priority job may run in. Zero means every low-priority job may
	// run anywhere. NetBatch jobs carry configured pool sets ("jobs ...
	// configured to only run in specific sets of physical pools", §2.3);
	// restricted sets are what make poor rescheduling choices sticky.
	SubsetSize int `json:"subset_size"`
	// AllFraction is the probability a low-priority job is unrestricted
	// (candidates = all pools) instead of carrying a SubsetSize subset.
	AllFraction float64 `json:"all_fraction"`
	// OwnedWeight down-weights owned pools when sampling a restricted
	// job's candidate subset: opportunistic low-priority work mostly
	// targets unowned capacity and borrows owned machines only "when
	// they are idle" (§2.2). 1.0 = no down-weighting.
	OwnedWeight float64 `json:"owned_weight"`
	// AffinityGroups partitions pools into locality groups (data
	// placement, site proximity). A restricted job anchors in one group
	// and draws most of its candidate subset from it, so a burst that
	// crushes a group leaves the group's jobs with few cool
	// alternatives — the dynamics behind the paper's ResSusRand
	// backfire (§3.2.1). Empty disables clustering.
	AffinityGroups [][]int `json:"affinity_groups,omitempty"`
	// AffinityStrength is the probability each additional subset member
	// is drawn from the anchor's group rather than platform-wide.
	AffinityStrength float64 `json:"affinity_strength"`

	// SitePools assigns pools to data-center sites (a full partition of
	// the pool universe, site-major). Empty means a single-site trace:
	// every job carries Site 0. With sites configured, each low-priority
	// job is assigned an origin site (weighted by the site's pool count)
	// and burst jobs originate at the site of their first target pool.
	SitePools [][]int `json:"site_pools,omitempty"`
	// SiteLocalFraction is the probability a restricted low-priority
	// job's candidate subset is drawn only from its origin site's pools
	// (data-placement locality); the rest sample platform-wide.
	SiteLocalFraction float64 `json:"site_local_fraction,omitempty"`

	// LowWork and HighWork are the service-demand distributions per
	// priority class.
	LowWork  WorkDist `json:"low_work"`
	HighWork WorkDist `json:"high_work"`

	// MemClassesMB and MemWeights give the job memory-requirement mix.
	MemClassesMB []int     `json:"mem_classes_mb"`
	MemWeights   []float64 `json:"mem_weights"`
	// CoresClasses and CoresWeights give the per-job core-count mix.
	CoresClasses []int     `json:"cores_classes"`
	CoresWeights []float64 `json:"cores_weights"`

	// Bursts are explicit high-priority episodes.
	Bursts []Burst `json:"bursts,omitempty"`
	// Auto, when non-nil, adds randomly placed bursts (year traces).
	Auto *AutoBursts `json:"auto,omitempty"`

	// TaskFraction is the probability a low-priority job belongs to a
	// multi-job task (§2.2); TaskMeanSize is the mean task size
	// (geometric, ≥2).
	TaskFraction float64 `json:"task_fraction"`
	TaskMeanSize float64 `json:"task_mean_size"`

	// Faults describes the failure/maintenance regime the trace is
	// meant to be replayed under. The generator itself never reads it —
	// job arrivals are independent of machine health — but presets
	// carry it here so one config fully describes an environment, and
	// the experiment layer maps it onto the engine's fault subsystem.
	Faults *FaultRegime `json:"faults,omitempty"`
}

// FaultRegime is the environment's failure and maintenance profile:
// the knobs the engine's fault subsystem is configured from. All times
// are minutes.
type FaultRegime struct {
	// MTBF is the mean time between machine crashes per site (0 = no
	// crashes); MTTR the mean repair time.
	MTBF float64 `json:"mtbf"`
	MTTR float64 `json:"mttr"`
	// MaintPeriod is the maintenance-window cadence per site (0 = no
	// windows); MaintDuration each window's length; MaintFraction the
	// fraction of a site's machines down per window.
	MaintPeriod   float64 `json:"maint_period"`
	MaintDuration float64 `json:"maint_duration"`
	MaintFraction float64 `json:"maint_fraction"`
	// Victim is the maintenance victim-job policy: "requeue" (default)
	// or "drain".
	Victim string `json:"victim,omitempty"`
}

// Validate reports configuration errors.
func (f *FaultRegime) Validate() error {
	switch {
	case f.MTBF < 0 || f.MTTR < 0 || f.MaintPeriod < 0 || f.MaintDuration < 0:
		return fmt.Errorf("fault regime: negative parameter %+v", *f)
	case f.MTBF > 0 && f.MTTR <= 0:
		return fmt.Errorf("fault regime: crashes need a positive MTTR")
	case f.MaintPeriod > 0 && (f.MaintDuration <= 0 || f.MaintDuration >= f.MaintPeriod):
		return fmt.Errorf("fault regime: maintenance duration %v outside (0, period %v)",
			f.MaintDuration, f.MaintPeriod)
	case f.MaintFraction < 0 || f.MaintFraction > 1:
		return fmt.Errorf("fault regime: maintenance fraction %v outside [0,1]", f.MaintFraction)
	}
	switch f.Victim {
	case "", "requeue", "drain":
	default:
		return fmt.Errorf("fault regime: unknown victim policy %q", f.Victim)
	}
	return nil
}

// Validate reports configuration errors.
func (c *GeneratorConfig) Validate() error {
	switch {
	case c.Horizon <= 0:
		return fmt.Errorf("generator: non-positive horizon %v", c.Horizon)
	case c.NumPools <= 0:
		return fmt.Errorf("generator: non-positive pool count %d", c.NumPools)
	case c.LowRate < 0:
		return fmt.Errorf("generator: negative low rate %v", c.LowRate)
	case c.DiurnalAmplitude < 0 || c.DiurnalAmplitude >= 1:
		return fmt.Errorf("generator: diurnal amplitude %v outside [0,1)", c.DiurnalAmplitude)
	case len(c.MemClassesMB) == 0 || len(c.MemClassesMB) != len(c.MemWeights):
		return fmt.Errorf("generator: memory classes/weights mismatch")
	case len(c.CoresClasses) == 0 || len(c.CoresClasses) != len(c.CoresWeights):
		return fmt.Errorf("generator: cores classes/weights mismatch")
	case c.DiurnalPeriod < 0:
		return fmt.Errorf("generator: negative diurnal period %v", c.DiurnalPeriod)
	case c.TaskFraction < 0 || c.TaskFraction > 1:
		return fmt.Errorf("generator: task fraction %v outside [0,1]", c.TaskFraction)
	case c.SubsetSize < 0 || c.SubsetSize > c.NumPools:
		return fmt.Errorf("generator: subset size %d outside [0,%d]", c.SubsetSize, c.NumPools)
	case c.AllFraction < 0 || c.AllFraction > 1:
		return fmt.Errorf("generator: all-pools fraction %v outside [0,1]", c.AllFraction)
	case c.SubsetSize > 0 && c.OwnedWeight < 0:
		return fmt.Errorf("generator: negative owned weight %v", c.OwnedWeight)
	case c.AffinityStrength < 0 || c.AffinityStrength > 1:
		return fmt.Errorf("generator: affinity strength %v outside [0,1]", c.AffinityStrength)
	case c.SiteLocalFraction < 0 || c.SiteLocalFraction > 1:
		return fmt.Errorf("generator: site-local fraction %v outside [0,1]", c.SiteLocalFraction)
	}
	if len(c.SitePools) > 0 {
		seen := make(map[int]bool, c.NumPools)
		for si, s := range c.SitePools {
			if len(s) == 0 {
				return fmt.Errorf("generator: site %d has no pools", si)
			}
			for _, p := range s {
				if p < 0 || p >= c.NumPools {
					return fmt.Errorf("generator: site %d pool %d out of range", si, p)
				}
				if seen[p] {
					return fmt.Errorf("generator: pool %d at multiple sites", p)
				}
				seen[p] = true
			}
		}
		if len(seen) != c.NumPools {
			return fmt.Errorf("generator: sites cover %d of %d pools", len(seen), c.NumPools)
		}
	}
	if len(c.AffinityGroups) > 0 {
		seen := make(map[int]bool, c.NumPools)
		for gi, g := range c.AffinityGroups {
			if len(g) == 0 {
				return fmt.Errorf("generator: affinity group %d is empty", gi)
			}
			for _, p := range g {
				if p < 0 || p >= c.NumPools {
					return fmt.Errorf("generator: affinity group %d pool %d out of range", gi, p)
				}
				if seen[p] {
					return fmt.Errorf("generator: pool %d in multiple affinity groups", p)
				}
				seen[p] = true
			}
		}
		if len(seen) != c.NumPools {
			return fmt.Errorf("generator: affinity groups cover %d of %d pools", len(seen), c.NumPools)
		}
	}
	// Class values must be usable as job requirements and the weight
	// vectors must be drawable (PickWeighted rejects negative weights
	// and non-positive totals).
	if err := validateClasses("memory", c.MemClassesMB, c.MemWeights); err != nil {
		return err
	}
	if err := validateClasses("cores", c.CoresClasses, c.CoresWeights); err != nil {
		return err
	}
	if err := c.LowWork.Validate(); err != nil {
		return fmt.Errorf("generator: low work: %w", err)
	}
	if err := c.HighWork.Validate(); err != nil {
		return fmt.Errorf("generator: high work: %w", err)
	}
	for _, p := range c.OwnedPools {
		if p < 0 || p >= c.NumPools {
			return fmt.Errorf("generator: owned pool %d outside [0,%d)", p, c.NumPools)
		}
	}
	for bi, b := range c.Bursts {
		if b.Start < 0 || b.Duration <= 0 || b.Rate <= 0 {
			return fmt.Errorf("generator: burst %d has invalid shape %+v", bi, b)
		}
		for _, p := range b.Pools {
			if p < 0 || p >= c.NumPools {
				return fmt.Errorf("generator: burst %d pool %d out of range", bi, p)
			}
		}
		if len(b.Pools) == 0 && len(c.OwnedPools) == 0 {
			return fmt.Errorf("generator: burst %d has no target pools and no owned pools", bi)
		}
	}
	if c.Auto != nil {
		a := c.Auto
		if a.MeanGap <= 0 || a.MeanDuration <= 0 || a.Rate <= 0 || a.PoolsPerBurst <= 0 {
			return fmt.Errorf("generator: invalid auto-burst config %+v", *a)
		}
		if len(c.OwnedPools) < a.PoolsPerBurst {
			return fmt.Errorf("generator: auto bursts need %d owned pools, have %d",
				a.PoolsPerBurst, len(c.OwnedPools))
		}
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return fmt.Errorf("generator: %w", err)
		}
	}
	return nil
}

// validateClasses checks one (class values, weights) pair: positive
// values, non-negative weights, positive total weight.
func validateClasses(label string, classes []int, weights []float64) error {
	for i, v := range classes {
		if v <= 0 {
			return fmt.Errorf("generator: %s class %d has non-positive value %d", label, i, v)
		}
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			return fmt.Errorf("generator: %s weight %d invalid (%v)", label, i, w)
		}
		total += w
	}
	if total <= 0 {
		return fmt.Errorf("generator: %s weights sum to %v, want positive", label, total)
	}
	return nil
}

// Generate synthesizes a trace from the configuration. Generation is
// deterministic: the same config (including Seed) yields the same trace.
func Generate(cfg GeneratorConfig) (*Trace, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := stats.NewRNG(cfg.Seed)
	arrivalRNG := root.Split()
	workRNG := root.Split()
	attrRNG := root.Split()
	burstRNG := root.Split()
	taskRNG := root.Split()
	subsetRNG := root.Split()
	// siteRNG is split last so single-site traces generated by earlier
	// versions stay byte-identical; it is only drawn from when SitePools
	// is configured.
	siteRNG := root.Split()

	allPools := make([]int, cfg.NumPools)
	for i := range allPools {
		allPools[i] = i
	}
	owned := make(map[int]bool, len(cfg.OwnedPools))
	for _, p := range cfg.OwnedPools {
		owned[p] = true
	}
	poolWeights := make([]float64, cfg.NumPools)
	for p := range poolWeights {
		if owned[p] && cfg.OwnedWeight >= 0 {
			poolWeights[p] = cfg.OwnedWeight
		} else {
			poolWeights[p] = 1.0
		}
	}
	groupOf := make([]int, cfg.NumPools)
	for i := range groupOf {
		groupOf[i] = -1
	}
	for gi, g := range cfg.AffinityGroups {
		for _, p := range g {
			groupOf[p] = gi
		}
	}
	siteOfPool := make([]int, cfg.NumPools)
	siteWeights := make([]float64, len(cfg.SitePools))
	for si, s := range cfg.SitePools {
		siteWeights[si] = float64(len(s))
		for _, p := range s {
			siteOfPool[p] = si
		}
	}
	globalCandidates := func() []int {
		if len(cfg.AffinityGroups) == 0 {
			return sampleSubset(subsetRNG, poolWeights, cfg.SubsetSize)
		}
		return sampleAffinitySubset(subsetRNG, poolWeights, groupOf,
			cfg.AffinityGroups, cfg.AffinityStrength, cfg.SubsetSize)
	}
	// lowJobPlacement draws a low-priority job's origin site and
	// candidate pool set.
	lowJobPlacement := func() (int, []int) {
		if len(cfg.SitePools) == 0 {
			if cfg.SubsetSize == 0 || subsetRNG.Bool(cfg.AllFraction) {
				return 0, allPools
			}
			return 0, globalCandidates()
		}
		site := siteRNG.PickWeighted(siteWeights)
		if cfg.SubsetSize == 0 || subsetRNG.Bool(cfg.AllFraction) {
			return site, allPools
		}
		if subsetRNG.Bool(cfg.SiteLocalFraction) {
			// Mask the sampling weights down to the origin site's pools.
			local := make([]float64, cfg.NumPools)
			for _, p := range cfg.SitePools[site] {
				local[p] = poolWeights[p]
			}
			k := cfg.SubsetSize
			if n := len(cfg.SitePools[site]); k > n {
				k = n
			}
			return site, sampleSubset(subsetRNG, local, k)
		}
		return site, globalCandidates()
	}

	var specs []job.Spec

	// Low-priority base load: nonhomogeneous Poisson via thinning.
	period := cfg.DiurnalPeriod
	if period <= 0 {
		period = 1440
	}
	maxRate := cfg.LowRate * (1 + cfg.DiurnalAmplitude)
	if maxRate > 0 {
		t := 0.0
		for {
			t += arrivalRNG.Exp(1 / maxRate)
			if t >= cfg.Horizon {
				break
			}
			rate := cfg.LowRate * (1 + cfg.DiurnalAmplitude*math.Sin(2*math.Pi*t/period))
			if !arrivalRNG.Bool(rate / maxRate) {
				continue
			}
			site, cands := lowJobPlacement()
			specs = append(specs, job.Spec{
				Submit:     t,
				Work:       cfg.LowWork.Sample(workRNG),
				Cores:      cfg.CoresClasses[attrRNG.PickWeighted(cfg.CoresWeights)],
				MemMB:      cfg.MemClassesMB[attrRNG.PickWeighted(cfg.MemWeights)],
				Priority:   job.PriorityLow,
				Candidates: cands,
				Site:       site,
			})
		}
	}

	// Explicit plus auto-generated bursts of high-priority jobs.
	bursts := append([]Burst(nil), cfg.Bursts...)
	if cfg.Auto != nil {
		bursts = append(bursts, autoBursts(cfg, burstRNG)...)
	}
	for _, b := range bursts {
		pools := b.Pools
		if len(pools) == 0 {
			pools = cfg.OwnedPools
		}
		// Each burst's jobs share a candidate slice; specs are read-only
		// downstream.
		cand := append([]int(nil), pools...)
		sort.Ints(cand)
		// Burst jobs belong to the business group at the site owning the
		// burst's first pool (§2.3: owners submit to the pools they own).
		burstSite := siteOfPool[cand[0]]
		end := math.Min(b.Start+b.Duration, cfg.Horizon)
		t := b.Start
		for {
			t += arrivalRNG.Exp(1 / b.Rate)
			if t >= end {
				break
			}
			specs = append(specs, job.Spec{
				Submit:     t,
				Work:       cfg.HighWork.Sample(workRNG),
				Cores:      cfg.CoresClasses[attrRNG.PickWeighted(cfg.CoresWeights)],
				MemMB:      cfg.MemClassesMB[attrRNG.PickWeighted(cfg.MemWeights)],
				Priority:   job.PriorityHigh,
				Candidates: cand,
				Site:       burstSite,
			})
		}
	}

	sort.SliceStable(specs, func(i, j int) bool { return specs[i].Submit < specs[j].Submit })
	for i := range specs {
		specs[i].ID = job.ID(i + 1)
	}

	assignTasks(specs, cfg, taskRNG)

	tr := &Trace{Jobs: specs}
	if err := tr.Validate(); err != nil {
		return nil, fmt.Errorf("generator: produced invalid trace: %w", err)
	}
	return tr, nil
}

// sampleSubset draws k distinct pool IDs without replacement, with
// per-pool weights, and returns them sorted.
func sampleSubset(r *stats.RNG, weights []float64, k int) []int {
	w := append([]float64(nil), weights...)
	picked := make([]bool, len(w))
	out := make([]int, 0, k)
	for len(out) < k && len(out) < len(w) {
		var total float64
		for _, x := range w {
			total += x
		}
		if total <= 0 {
			// Remaining weights are all zero (fully down-weighted owned
			// pools): fill in pool-ID order.
			for p := range w {
				if !picked[p] && len(out) < k {
					picked[p] = true
					out = append(out, p)
				}
			}
			break
		}
		pick := r.PickWeighted(w)
		picked[pick] = true
		out = append(out, pick)
		w[pick] = 0
	}
	sort.Ints(out)
	return out
}

// sampleAffinitySubset draws a k-pool candidate subset clustered around
// a weighted-random anchor pool's affinity group.
func sampleAffinitySubset(r *stats.RNG, weights []float64, groupOf []int, groups [][]int, strength float64, k int) []int {
	anchor := r.PickWeighted(weights)
	group := groups[groupOf[anchor]]

	w := append([]float64(nil), weights...)
	picked := make([]bool, len(w))
	out := []int{anchor}
	picked[anchor] = true
	w[anchor] = 0

	inGroupWeight := func() float64 {
		var t float64
		for _, p := range group {
			t += w[p]
		}
		return t
	}
	for len(out) < k && len(out) < len(w) {
		// Prefer the anchor's group while it has unpicked weight.
		if r.Bool(strength) && inGroupWeight() > 0 {
			gw := make([]float64, len(group))
			for i, p := range group {
				gw[i] = w[p]
			}
			pick := group[r.PickWeighted(gw)]
			picked[pick] = true
			out = append(out, pick)
			w[pick] = 0
			continue
		}
		var total float64
		for _, x := range w {
			total += x
		}
		if total <= 0 {
			for p := range w {
				if !picked[p] && len(out) < k {
					picked[p] = true
					out = append(out, p)
				}
			}
			break
		}
		pick := r.PickWeighted(w)
		picked[pick] = true
		out = append(out, pick)
		w[pick] = 0
	}
	sort.Ints(out)
	return out
}

// autoBursts lays out random bursts across the horizon.
func autoBursts(cfg GeneratorConfig, r *stats.RNG) []Burst {
	a := cfg.Auto
	var out []Burst
	t := r.Exp(a.MeanGap)
	for t < cfg.Horizon {
		dur := r.Exp(a.MeanDuration)
		if a.MaxDuration > 0 && dur > a.MaxDuration {
			dur = a.MaxDuration
		}
		if dur < 60 {
			dur = 60
		}
		perm := r.Perm(len(cfg.OwnedPools))
		pools := make([]int, a.PoolsPerBurst)
		for i := range pools {
			pools[i] = cfg.OwnedPools[perm[i]]
		}
		out = append(out, Burst{Start: t, Duration: dur, Rate: a.Rate, Pools: pools})
		t += dur + r.Exp(a.MeanGap)
	}
	return out
}

// assignTasks groups consecutive low-priority jobs into tasks. Grouping
// consecutive submissions mirrors how simulation tasks fan out a set of
// jobs at once (§2.2).
func assignTasks(specs []job.Spec, cfg GeneratorConfig, r *stats.RNG) {
	if cfg.TaskFraction <= 0 {
		return
	}
	meanSize := cfg.TaskMeanSize
	if meanSize < 2 {
		meanSize = 2
	}
	var taskID int64
	i := 0
	for i < len(specs) {
		if specs[i].Priority != job.PriorityLow || !r.Bool(cfg.TaskFraction) {
			i++
			continue
		}
		// Geometric size with mean meanSize, at least 2.
		size := 2
		for r.Bool(1 - 1/(meanSize-1)) {
			size++
			if size >= 64 {
				break
			}
		}
		taskID++
		for k := 0; k < size && i < len(specs); i++ {
			if specs[i].Priority != job.PriorityLow {
				continue
			}
			specs[i].TaskID = taskID
			k++
		}
	}
}
