package trace

import (
	"math"
	"testing"

	"netbatch/internal/job"
	"netbatch/internal/stats"
)

func smallConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Seed:             seed,
		Horizon:          2000,
		NumPools:         4,
		OwnedPools:       []int{0, 1},
		LowRate:          2,
		DiurnalAmplitude: 0.3,
		LowWork:          WorkDist{Median: 50, Sigma: 1.0},
		HighWork:         WorkDist{Median: 30, Sigma: 0.8},
		MemClassesMB:     []int{1024, 4096},
		MemWeights:       []float64{0.7, 0.3},
		CoresClasses:     []int{1, 2},
		CoresWeights:     []float64{0.9, 0.1},
		Bursts:           []Burst{{Start: 500, Duration: 300, Rate: 5}},
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(smallConfig(9))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Jobs) != len(b.Jobs) {
		t.Fatalf("lengths differ: %d vs %d", len(a.Jobs), len(b.Jobs))
	}
	for i := range a.Jobs {
		x, y := a.Jobs[i], b.Jobs[i]
		if x.Submit != y.Submit || x.Work != y.Work || x.Priority != y.Priority {
			t.Fatalf("job %d differs across identical seeds", i)
		}
	}
}

func TestGenerateDifferentSeeds(t *testing.T) {
	a, _ := Generate(smallConfig(1))
	b, _ := Generate(smallConfig(2))
	if len(a.Jobs) == len(b.Jobs) {
		same := true
		for i := range a.Jobs {
			if a.Jobs[i].Submit != b.Jobs[i].Submit {
				same = false
				break
			}
		}
		if same {
			t.Fatal("different seeds produced identical traces")
		}
	}
}

func TestGenerateTraceIsValid(t *testing.T) {
	tr, err := Generate(smallConfig(3))
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) == 0 {
		t.Fatal("empty trace")
	}
}

func TestGenerateArrivalRate(t *testing.T) {
	cfg := smallConfig(5)
	cfg.Bursts = nil
	cfg.DiurnalAmplitude = 0
	cfg.Horizon = 50000
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rate := float64(len(tr.Jobs)) / cfg.Horizon
	if math.Abs(rate-cfg.LowRate)/cfg.LowRate > 0.05 {
		t.Fatalf("arrival rate = %v, want ~%v", rate, cfg.LowRate)
	}
}

func TestGenerateBurstShape(t *testing.T) {
	tr, err := Generate(smallConfig(7))
	if err != nil {
		t.Fatal(err)
	}
	var inBurst, outBurst int
	for _, s := range tr.Jobs {
		if s.Priority != job.PriorityHigh {
			continue
		}
		if s.Submit >= 500 && s.Submit < 800 {
			inBurst++
		} else {
			outBurst++
		}
		// Burst jobs default to owned pools.
		if len(s.Candidates) != 2 || s.Candidates[0] != 0 || s.Candidates[1] != 1 {
			t.Fatalf("high-priority candidates = %v, want owned pools", s.Candidates)
		}
	}
	if outBurst != 0 {
		t.Fatalf("%d high-priority jobs outside burst window", outBurst)
	}
	// ~5/min for 300 min ≈ 1500 jobs.
	if inBurst < 1200 || inBurst > 1800 {
		t.Fatalf("burst job count = %d, want ~1500", inBurst)
	}
}

func TestGenerateLowJobsCanRunAnywhere(t *testing.T) {
	tr, err := Generate(smallConfig(11))
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Jobs {
		if s.Priority == job.PriorityLow && len(s.Candidates) != 4 {
			t.Fatalf("low-priority job candidates = %v, want all 4 pools", s.Candidates)
		}
	}
}

func TestGenerateExplicitBurstPools(t *testing.T) {
	cfg := smallConfig(13)
	cfg.Bursts = []Burst{{Start: 100, Duration: 100, Rate: 3, Pools: []int{2, 3}}}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range tr.Jobs {
		if s.Priority == job.PriorityHigh {
			if len(s.Candidates) != 2 || s.Candidates[0] != 2 || s.Candidates[1] != 3 {
				t.Fatalf("burst candidates = %v, want [2 3]", s.Candidates)
			}
		}
	}
}

func TestGenerateTasks(t *testing.T) {
	cfg := smallConfig(17)
	cfg.TaskFraction = 0.5
	cfg.TaskMeanSize = 4
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	taskSizes := map[int64]int{}
	var tasked int
	for _, s := range tr.Jobs {
		if s.TaskID != 0 {
			if s.Priority != job.PriorityLow {
				t.Fatal("high-priority job assigned to a task")
			}
			taskSizes[s.TaskID]++
			tasked++
		}
	}
	if len(taskSizes) == 0 {
		t.Fatal("no tasks formed")
	}
	for id, size := range taskSizes {
		if size < 1 || size > 64 {
			t.Fatalf("task %d has unreasonable size %d", id, size)
		}
	}
	if frac := float64(tasked) / float64(len(tr.Jobs)); frac < 0.2 {
		t.Fatalf("tasked fraction = %v, want substantial", frac)
	}
}

func TestGenerateValidationErrors(t *testing.T) {
	mutations := map[string]func(*GeneratorConfig){
		"zeroHorizon":   func(c *GeneratorConfig) { c.Horizon = 0 },
		"zeroPools":     func(c *GeneratorConfig) { c.NumPools = 0 },
		"negRate":       func(c *GeneratorConfig) { c.LowRate = -1 },
		"badAmp":        func(c *GeneratorConfig) { c.DiurnalAmplitude = 1.5 },
		"memMismatch":   func(c *GeneratorConfig) { c.MemWeights = []float64{1} },
		"coresMismatch": func(c *GeneratorConfig) { c.CoresWeights = []float64{1} },
		"badTaskFrac":   func(c *GeneratorConfig) { c.TaskFraction = 2 },
		"badOwned":      func(c *GeneratorConfig) { c.OwnedPools = []int{99} },
		"badBurst":      func(c *GeneratorConfig) { c.Bursts[0].Rate = 0 },
		"badBurstPool":  func(c *GeneratorConfig) { c.Bursts[0].Pools = []int{77} },
		"orphanBurst": func(c *GeneratorConfig) {
			c.OwnedPools = nil
			c.Bursts[0].Pools = nil
		},
		"badWork": func(c *GeneratorConfig) { c.LowWork.Median = 0 },
		"badTail": func(c *GeneratorConfig) { c.LowWork = WorkDist{Median: 1, TailFrac: 0.5} },
		"badAuto": func(c *GeneratorConfig) {
			c.Auto = &AutoBursts{MeanGap: 0, MeanDuration: 1, Rate: 1, PoolsPerBurst: 1}
		},
		"autoTooManyPools": func(c *GeneratorConfig) {
			c.Auto = &AutoBursts{MeanGap: 1, MeanDuration: 1, Rate: 1, PoolsPerBurst: 10}
		},
	}
	for name, mutate := range mutations {
		t.Run(name, func(t *testing.T) {
			cfg := smallConfig(1)
			mutate(&cfg)
			if _, err := Generate(cfg); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func TestWorkDistSample(t *testing.T) {
	r := stats.NewRNG(21)
	d := WorkDist{Median: 100, Sigma: 1.2, TailFrac: 0.02, TailMin: 1500, TailAlpha: 1.3, Cap: 50000}
	var m stats.Mean
	tail := 0
	for i := 0; i < 100000; i++ {
		v := d.Sample(r)
		if v < 1 {
			t.Fatalf("sample %v below 1-minute floor", v)
		}
		if v > 50000 {
			t.Fatalf("sample %v above cap", v)
		}
		if v >= 1500 {
			tail++
		}
		m.Add(v)
	}
	// Mean should be in the rough vicinity of the analytic estimate.
	if est := d.Mean(); m.Mean() < est*0.5 || m.Mean() > est*1.5 {
		t.Fatalf("sample mean %v far from analytic %v", m.Mean(), est)
	}
	if tail == 0 {
		t.Fatal("no tail samples")
	}
}

func TestAutoBurstsGeneration(t *testing.T) {
	cfg := smallConfig(23)
	cfg.Bursts = nil
	cfg.Horizon = 100000
	cfg.Auto = &AutoBursts{MeanGap: 5000, MeanDuration: 500, MaxDuration: 2000, Rate: 3, PoolsPerBurst: 2}
	tr, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	high := tr.CountByPriority()[job.PriorityHigh]
	if high == 0 {
		t.Fatal("auto bursts produced no high-priority jobs")
	}
	// Expect roughly horizon/(gap+dur) bursts * rate * dur jobs.
	approx := 100000.0 / 5500 * 3 * 500
	if float64(high) < approx*0.3 || float64(high) > approx*3 {
		t.Fatalf("high-priority count = %d, want vaguely ~%v", high, approx)
	}
}

func TestPresetsAreValid(t *testing.T) {
	for name, cfg := range map[string]GeneratorConfig{
		"WeekNormal":     WeekNormal(1),
		"HighSuspension": HighSuspension(1),
		"YearLong":       YearLong(1, 0.1),
	} {
		t.Run(name, func(t *testing.T) {
			if err := cfg.Validate(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

func TestWeekNormalShape(t *testing.T) {
	tr, err := Generate(WeekNormal(42))
	if err != nil {
		t.Fatal(err)
	}
	n := len(tr.Jobs)
	// The paper's week window has 248k jobs; ours should be the same
	// order of magnitude (low base + bursts).
	if n < 150000 || n > 500000 {
		t.Fatalf("week trace job count = %d, want 150k-500k", n)
	}
	counts := tr.CountByPriority()
	if counts[job.PriorityHigh] == 0 {
		t.Fatal("no high-priority jobs in busy week")
	}
	frac := float64(counts[job.PriorityHigh]) / float64(n)
	if frac < 0.05 || frac > 0.6 {
		t.Fatalf("high-priority fraction = %v", frac)
	}
	// Offered load on the default 19,200-core platform should sit in
	// the paper's 20-60%% utilization band.
	util := tr.OfferedUtilization(19200)
	if util < 0.2 || util > 0.7 {
		t.Fatalf("offered utilization = %v, want in the paper's band", util)
	}
}
