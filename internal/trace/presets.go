package trace

// Presets for the paper's scenarios. The constants here were calibrated
// against the published trace statistics (see EXPERIMENTS.md): ~40%
// mean utilization on the default ~19k-core platform in a 20-60% band,
// a suspend rate near 1% under the no-rescheduling baseline in the busy
// week, long-tailed service demands, and suspensions lasting hundreds
// of minutes (median 437 / mean 905 in the paper).
//
// Two structural properties carry the paper's rescheduling dynamics:
//
//  1. High-priority bursts are restricted to the pools their business
//     groups own (§2.3), so bursts crush those pools while others idle.
//  2. Most low-priority jobs carry restricted candidate-pool subsets in
//     which owned pools are under-represented (§2.2-§2.3): restricted
//     sets are what make a random rescheduling choice risky (the bad
//     pools stay in the set) while leaving overall wait time low.

// ownedPools is the default owned-pool set: one big pool and two small
// pools, ~16% of platform capacity (pool IDs follow
// cluster.NewNetBatchPlatform layout: 0-3 big, 4-11 medium, 12-19
// small). A modest owned share is what lets bursts crush "those pools"
// while "the overall system utilization is relatively low" (§2.3) and
// keeps the stalled-job mass — and thus AvgWCT — in check. Including a
// big pool matters for Table 3: the utilization-based initial scheduler
// "tends to send more jobs to larger pools which leads to more
// suspension when high priority jobs burst in those pools" (§3.2.2).
func ownedPools() []int { return []int{0, 12, 13} }

// baseWeekConfig holds the parameters shared by the week presets.
func baseWeekConfig(seed uint64) GeneratorConfig {
	return GeneratorConfig{
		Seed:       seed,
		Horizon:    10080, // one week in minutes
		NumPools:   20,
		OwnedPools: ownedPools(),
		// ~16.5 low-priority jobs/min on ~19.2k cores at ~470 busy-core
		// minutes per job ≈ 40% utilization.
		LowRate:          16.5,
		DiurnalAmplitude: 0.20,
		DiurnalPeriod:    1440,
		// 10% of low-priority jobs may run anywhere; the rest carry a
		// 5-pool subset, clustered in the job's affinity group, with
		// owned pools down-weighted.
		SubsetSize:  5,
		AllFraction: 0.10,
		OwnedWeight: 0.30,
		// Affinity groups model data-placement locality. Group A holds
		// ALL the owned pools the main burst hits plus a single small
		// escape pool: a group-A job that gets suspended mid-burst has
		// almost no cool candidates, which is what makes blind random
		// rescheduling risky (§3.2.1) while utilization-guided
		// rescheduling finds the one cool pool until it fills and then
		// retains.
		AffinityGroups: [][]int{
			{0, 12, 13, 7, 16}, // group A: all owned pools + escapes 7, 16
			{4, 5, 8, 14, 17},  // group B
			{1, 6, 9, 15, 18},  // group C
			{2, 3, 10, 11, 19}, // group D
		},
		AffinityStrength: 0.90,
		LowWork: WorkDist{
			Median: 120, Sigma: 1.3,
			TailFrac: 0.02, TailMin: 1500, TailAlpha: 1.25, Cap: 30000,
		},
		HighWork: WorkDist{
			Median: 60, Sigma: 1.0,
			TailFrac: 0.005, TailMin: 800, TailAlpha: 1.5, Cap: 20000,
		},
		MemClassesMB: []int{2 << 10, 4 << 10, 8 << 10, 24 << 10},
		MemWeights:   []float64{0.40, 0.35, 0.20, 0.05},
		CoresClasses: []int{1, 2, 4},
		CoresWeights: []float64{0.80, 0.15, 0.05},
		TaskFraction: 0.25,
		TaskMeanSize: 6,
	}
}

// WeekNormal returns the configuration for the paper's evaluation
// window: one busy week containing "a typical burst of high-priority
// jobs and as a result, a burst of job suspension" (§3.1). Run on the
// full default platform it is the normal-load scenario (Table 1); run
// on the half-capacity platform it is the high-load scenario (Table 2),
// since the paper keeps the trace unchanged and halves the cores.
func WeekNormal(seed uint64) GeneratorConfig {
	cfg := baseWeekConfig(seed)
	cfg.Bursts = []Burst{
		// The main burst: ~1.7 days of sustained high-priority
		// submissions that keep the owned pools (3,000 cores) saturated:
		// 30 jobs/min at ~103 exec-minutes each ≈ 3.1k busy cores, with
		// preemption absorbing the low-priority incumbents.
		{Start: 2000, Duration: 2500, Rate: 30, Pools: ownedPools()},
		// A shorter secondary burst later in the week hitting the two
		// owned small pools — re-suspension risk for jobs that restarted
		// into them.
		{Start: 6800, Duration: 700, Rate: 7, Pools: []int{12, 13}},
	}
	return cfg
}

// HighSuspension returns the §3.2.1 "High Suspension Scenario"
// configuration: a job trace engineered for a suspend rate around 14%
// via longer, stronger, and broader bursts hitting most of the owned
// capacity repeatedly.
func HighSuspension(seed uint64) GeneratorConfig {
	cfg := baseWeekConfig(seed)
	cfg.OwnedPools = []int{0, 1, 2, 3}
	cfg.OwnedWeight = 1.0 // full low-priority exposure in the big pools
	cfg.AllFraction = 0.30
	cfg.LowRate *= 1.25 // busier baseline keeps the big pools contended
	cfg.Bursts = []Burst{
		// Rolling bursts across the big pools (9.6k cores total): each
		// pair (4.8k cores) is oversubscribed by ~55 jobs/min at ~103
		// exec-minutes, and the ping-pong churn suspends a large
		// fraction of the low-priority jobs passing through.
		{Start: 800, Duration: 2600, Rate: 44, Pools: []int{0, 1}},
		{Start: 3600, Duration: 2600, Rate: 44, Pools: []int{2, 3}},
		{Start: 6400, Duration: 2600, Rate: 88, Pools: []int{0, 1, 2, 3}},
	}
	return cfg
}

// PoolsPerSite is the pool count of the multi-site per-site layout
// (cluster.SiteNetBatchConfig: 1 big, 3 medium, 3 small), used to lay
// out MultiSiteWeek's site-major pool IDs. SitePoolCores is that
// site's core count (1500 machines × 4 cores), used to scale arrival
// rates so per-core load matches the single-site busy week (~40%
// utilization). Both mirror cluster.SiteNetBatchConfig — the trace
// layer stays independent of package cluster, so the pairing is
// asserted by TestMultiSitePresetMatchesPlatform in
// internal/experiments, which imports both.
const (
	PoolsPerSite  = 7
	SitePoolCores = 6000
)

// MultiSiteWeek returns the busy-week configuration for an n-site
// federation built from cluster.SiteNetBatchConfig (7 pools and 6,000
// cores per site, site-major pool IDs). The trace keeps the paper's
// structure — diurnal low-priority load at ~40% offered utilization,
// a main multi-day high-priority burst and a shorter secondary one —
// but distributes it geographically: every job originates at a site,
// most restricted candidate subsets stay site-local (data placement),
// and the bursts crush the owned pools of specific sites, so relief
// capacity exists mostly across a site boundary. That makes the
// cross-site dispatch/rescheduling trade-off (delay vs. load) the
// binding constraint, the multi-site analogue of §3.2.2's staleness
// caveat.
func MultiSiteWeek(seed uint64, nSites int) GeneratorConfig {
	if nSites < 1 {
		nSites = 1
	}
	cfg := baseWeekConfig(seed)
	cfg.NumPools = PoolsPerSite * nSites
	cfg.SitePools = make([][]int, nSites)
	for s := 0; s < nSites; s++ {
		for i := 0; i < PoolsPerSite; i++ {
			cfg.SitePools[s] = append(cfg.SitePools[s], s*PoolsPerSite+i)
		}
	}
	cfg.SiteLocalFraction = 0.85
	// Owned pools: each site's big pool (pool s*7) and first small pool
	// (pool s*7+4) belong to that site's business groups.
	cfg.OwnedPools = nil
	for s := 0; s < nSites; s++ {
		cfg.OwnedPools = append(cfg.OwnedPools, s*PoolsPerSite, s*PoolsPerSite+4)
	}
	// Site-local candidate subsets are 4 of the site's 7 pools; a small
	// fraction of jobs may run anywhere in the federation.
	cfg.SubsetSize = 4
	cfg.AllFraction = 0.05
	cfg.AffinityGroups = nil // locality is carried by SitePools instead
	// Scale the base load to the federation's capacity (the single-site
	// week runs 16.5 jobs/min on ~19.2k cores).
	cfg.LowRate = 16.5 * float64(SitePoolCores*nSites) / 19200.0
	// The main burst saturates site 0's owned pools (2,700 cores) for
	// ~1.7 days; the secondary burst hits the next site's owned pools
	// (or site 0 again in a 1-site federation).
	second := cfg.OwnedPools[:2]
	if nSites > 1 {
		second = []int{PoolsPerSite, PoolsPerSite + 4}
	}
	cfg.Bursts = []Burst{
		{Start: 2000, Duration: 2500, Rate: 26, Pools: []int{0, 4}},
		{Start: 6800, Duration: 700, Rate: 7, Pools: append([]int(nil), second...)},
	}
	return cfg
}

// DefaultFaultRegime is the failure/maintenance profile of the faulty
// busy-week presets: a machine crash per site roughly every 33 hours
// (repaired in ~5 hours on average), and a maintenance window every
// two days taking a fifth of the site's machines down for four hours.
// At those rates downtime claims a few percent of capacity — enough to
// make availability, goodput and requeue churn visible without
// drowning the paper's rescheduling dynamics.
func DefaultFaultRegime() FaultRegime {
	return FaultRegime{
		MTBF:          2000,
		MTTR:          300,
		MaintPeriod:   2880,
		MaintDuration: 240,
		MaintFraction: 0.20,
	}
}

// FaultyMultiSiteWeek is the MultiSiteWeek busy week annotated with
// the default fault regime, meant to be replayed on a federation whose
// machines crash and go down for maintenance. The victim policy is
// left at the engine default (kill-and-requeue); experiments override
// it per cell.
//
// One workload change is forced by the fault model itself: NetBatch
// restarts killed jobs from the beginning (no checkpointing), so a job
// whose service demand exceeds the time between kills of its machine
// can NEVER finish — under the default regime a machine is hit by
// maintenance every MaintPeriod/MaintFraction ≈ 14,400 minutes, and
// the busy week's 30,000-minute tail cap would starve forever. The
// faulty preset therefore caps service demands well below the
// inter-kill horizon; the divergence of restart-based recovery on
// longer jobs is exactly the §2.3 restart-vs-checkpoint trade-off,
// surfaced by machine failures instead of rescheduling policy.
func FaultyMultiSiteWeek(seed uint64, nSites int) GeneratorConfig {
	cfg := MultiSiteWeek(seed, nSites)
	cfg.LowWork.Cap = 4000
	cfg.HighWork.Cap = 2000
	regime := DefaultFaultRegime()
	cfg.Faults = &regime
	return cfg
}

// MultiSiteYear returns the year-scale configuration for an n-site
// federation: the MultiSiteWeek environment — site-major pool layout,
// site-local candidate subsets, per-site owned pools — stretched to
// the 500,000-minute horizon of the year-long runs, with the week's
// two fixed bursts replaced by recurring randomly placed
// high-priority bursts (AutoBursts, as in YearLong: one roughly every
// 11 days, hours to a week long). Rates are full-scale; callers pair
// the trace with an equally scaled platform, exactly as with
// MultiSiteWeek.
func MultiSiteYear(seed uint64, nSites int) GeneratorConfig {
	cfg := MultiSiteWeek(seed, nSites)
	cfg.Horizon = 500000
	cfg.Bursts = nil
	cfg.Auto = &AutoBursts{
		MeanGap:       16000,
		MeanDuration:  1500,
		MaxDuration:   10080,
		Rate:          26,
		PoolsPerBurst: 2,
	}
	return cfg
}

// YearLong returns the configuration for the year-scale runs behind
// Figures 2 and 4: 500,000 minutes with recurring randomly placed
// bursts. scale shrinks the arrival rate to pair with an equally scaled
// platform (cluster.NetBatchConfig.Scale), keeping per-pool load — and
// thus the shape of the series — unchanged while keeping runtime sane.
func YearLong(seed uint64, scale float64) GeneratorConfig {
	cfg := baseWeekConfig(seed)
	cfg.Horizon = 500000
	cfg.LowRate *= scale
	cfg.Auto = &AutoBursts{
		MeanGap:       16000, // a burst roughly every 11 days
		MeanDuration:  1500,  // hours-long typical...
		MaxDuration:   10080, // ...up to a week (§2.3)
		Rate:          30 * scale,
		PoolsPerBurst: 2,
	}
	return cfg
}
