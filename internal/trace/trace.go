// Package trace provides the job-trace substrate for the reproduction:
// the trace record schema (a job specification per line), streaming
// JSONL and CSV readers/writers, and a synthetic workload generator
// that produces NetBatch-shaped traces.
//
// The paper's evaluation is driven by one year of proprietary traces
// from Intel's NetBatch deployment. Those traces are not available, so
// the generator synthesizes workloads that reproduce the trace
// properties the paper documents and that its results depend on:
// ~40% mean utilization in a 20–60% band, bursty pool-restricted
// high-priority arrivals lasting hours to a week, and long-tailed
// runtimes. See DESIGN.md ("Substitutions") for the full argument.
package trace

import (
	"bufio"
	"encoding/csv"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"netbatch/internal/job"
)

// Trace is an ordered collection of job specifications. Jobs are sorted
// by submission time.
type Trace struct {
	// Jobs holds the job specs in nondecreasing submission order.
	Jobs []job.Spec
}

// Validate checks every job spec and the submission-order invariant.
func (t *Trace) Validate() error {
	ids := make(map[job.ID]bool, len(t.Jobs))
	for i := range t.Jobs {
		if err := t.Jobs[i].Validate(); err != nil {
			return fmt.Errorf("trace: %w", err)
		}
		if ids[t.Jobs[i].ID] {
			return fmt.Errorf("trace: duplicate job id %d", t.Jobs[i].ID)
		}
		ids[t.Jobs[i].ID] = true
		if i > 0 && t.Jobs[i].Submit < t.Jobs[i-1].Submit {
			return fmt.Errorf("trace: jobs out of submission order at index %d", i)
		}
	}
	return nil
}

// Window returns the sub-trace of jobs submitted in [from, to), matching
// the paper's selection of "jobs that are submitted during a one week
// busy period in the trace" (§3.1).
func (t *Trace) Window(from, to float64) *Trace {
	lo := sort.Search(len(t.Jobs), func(i int) bool { return t.Jobs[i].Submit >= from })
	hi := sort.Search(len(t.Jobs), func(i int) bool { return t.Jobs[i].Submit >= to })
	out := &Trace{Jobs: make([]job.Spec, hi-lo)}
	copy(out.Jobs, t.Jobs[lo:hi])
	return out
}

// Horizon returns the submission time of the last job, or 0 for an
// empty trace.
func (t *Trace) Horizon() float64 {
	if len(t.Jobs) == 0 {
		return 0
	}
	return t.Jobs[len(t.Jobs)-1].Submit
}

// TotalWork returns the summed service demand of all jobs in minutes
// (at reference machine speed).
func (t *Trace) TotalWork() float64 {
	var sum float64
	for i := range t.Jobs {
		sum += t.Jobs[i].Work
	}
	return sum
}

// CountByPriority returns the number of jobs per priority level.
func (t *Trace) CountByPriority() map[job.Priority]int {
	out := make(map[job.Priority]int)
	for i := range t.Jobs {
		out[t.Jobs[i].Priority]++
	}
	return out
}

// OfferedUtilization estimates the mean fraction of totalCores the trace
// keeps busy over its horizon, assuming jobs run immediately at speed 1:
// sum(work*cores) / (horizon * totalCores). It returns 0 for an empty
// trace or non-positive inputs.
func (t *Trace) OfferedUtilization(totalCores int) float64 {
	horizon := t.Horizon()
	if horizon <= 0 || totalCores <= 0 {
		return 0
	}
	var demand float64
	for i := range t.Jobs {
		demand += t.Jobs[i].Work * float64(t.Jobs[i].Cores)
	}
	return demand / (horizon * float64(totalCores))
}

// WriteJSONL streams the trace to w as one JSON object per line.
func (t *Trace) WriteJSONL(w io.Writer) error {
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for i := range t.Jobs {
		if err := enc.Encode(&t.Jobs[i]); err != nil {
			return fmt.Errorf("trace: encode job %d: %w", t.Jobs[i].ID, err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fmt.Errorf("trace: flush: %w", err)
	}
	return nil
}

// ReadJSONL reads a JSONL trace from r. Blank lines are skipped.
func ReadJSONL(r io.Reader) (*Trace, error) {
	t := &Trace{}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	line := 0
	for sc.Scan() {
		line++
		raw := strings.TrimSpace(sc.Text())
		if raw == "" {
			continue
		}
		var spec job.Spec
		if err := json.Unmarshal([]byte(raw), &spec); err != nil {
			return nil, fmt.Errorf("trace: line %d: %w", line, err)
		}
		t.Jobs = append(t.Jobs, spec)
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("trace: scan: %w", err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// csvHeader is the column layout of the CSV trace format.
var csvHeader = []string{
	"id", "submit", "work", "cores", "mem_mb", "os", "priority", "task_id", "candidates", "site",
}

// WriteCSV writes the trace in CSV form with a header row. The
// candidates column is a space-separated pool-ID list.
func (t *Trace) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(csvHeader); err != nil {
		return fmt.Errorf("trace: write header: %w", err)
	}
	for i := range t.Jobs {
		s := &t.Jobs[i]
		cands := make([]string, len(s.Candidates))
		for ci, c := range s.Candidates {
			cands[ci] = strconv.Itoa(c)
		}
		rec := []string{
			strconv.FormatInt(int64(s.ID), 10),
			strconv.FormatFloat(s.Submit, 'g', -1, 64),
			strconv.FormatFloat(s.Work, 'g', -1, 64),
			strconv.Itoa(s.Cores),
			strconv.Itoa(s.MemMB),
			s.OS,
			strconv.Itoa(int(s.Priority)),
			strconv.FormatInt(s.TaskID, 10),
			strings.Join(cands, " "),
			strconv.Itoa(s.Site),
		}
		if err := cw.Write(rec); err != nil {
			return fmt.Errorf("trace: write job %d: %w", s.ID, err)
		}
	}
	cw.Flush()
	if err := cw.Error(); err != nil {
		return fmt.Errorf("trace: flush csv: %w", err)
	}
	return nil
}

// ReadCSV reads a CSV trace written by WriteCSV.
func ReadCSV(r io.Reader) (*Trace, error) {
	cr := csv.NewReader(r)
	rows, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("trace: read csv: %w", err)
	}
	if len(rows) == 0 {
		return nil, fmt.Errorf("trace: empty csv")
	}
	if strings.Join(rows[0], ",") != strings.Join(csvHeader, ",") {
		return nil, fmt.Errorf("trace: unexpected csv header %v", rows[0])
	}
	t := &Trace{}
	for li, row := range rows[1:] {
		if len(row) != len(csvHeader) {
			return nil, fmt.Errorf("trace: row %d has %d fields, want %d", li+2, len(row), len(csvHeader))
		}
		spec, err := parseCSVRow(row)
		if err != nil {
			return nil, fmt.Errorf("trace: row %d: %w", li+2, err)
		}
		t.Jobs = append(t.Jobs, spec)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

func parseCSVRow(row []string) (job.Spec, error) {
	var s job.Spec
	id, err := strconv.ParseInt(row[0], 10, 64)
	if err != nil {
		return s, fmt.Errorf("id: %w", err)
	}
	s.ID = job.ID(id)
	if s.Submit, err = strconv.ParseFloat(row[1], 64); err != nil {
		return s, fmt.Errorf("submit: %w", err)
	}
	if s.Work, err = strconv.ParseFloat(row[2], 64); err != nil {
		return s, fmt.Errorf("work: %w", err)
	}
	if s.Cores, err = strconv.Atoi(row[3]); err != nil {
		return s, fmt.Errorf("cores: %w", err)
	}
	if s.MemMB, err = strconv.Atoi(row[4]); err != nil {
		return s, fmt.Errorf("mem_mb: %w", err)
	}
	s.OS = row[5]
	prio, err := strconv.Atoi(row[6])
	if err != nil {
		return s, fmt.Errorf("priority: %w", err)
	}
	s.Priority = job.Priority(prio)
	if s.TaskID, err = strconv.ParseInt(row[7], 10, 64); err != nil {
		return s, fmt.Errorf("task_id: %w", err)
	}
	if row[8] != "" {
		for _, f := range strings.Fields(row[8]) {
			c, err := strconv.Atoi(f)
			if err != nil {
				return s, fmt.Errorf("candidates: %w", err)
			}
			s.Candidates = append(s.Candidates, c)
		}
	}
	if s.Site, err = strconv.Atoi(row[9]); err != nil {
		return s, fmt.Errorf("site: %w", err)
	}
	return s, nil
}
