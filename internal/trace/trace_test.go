package trace

import (
	"bytes"
	"strings"
	"testing"

	"netbatch/internal/job"
)

func sampleTrace() *Trace {
	return &Trace{Jobs: []job.Spec{
		{ID: 1, Submit: 0, Work: 10, Cores: 1, MemMB: 1024, Priority: job.PriorityLow, Candidates: []int{0, 1}},
		{ID: 2, Submit: 5, Work: 20, Cores: 2, MemMB: 2048, OS: "linux", Priority: job.PriorityHigh, Candidates: []int{0}, TaskID: 3},
		{ID: 3, Submit: 9.5, Work: 30.25, Cores: 1, MemMB: 512, Priority: job.PriorityLow, Candidates: []int{1}},
	}}
}

func TestValidateOK(t *testing.T) {
	if err := sampleTrace().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestValidateDuplicateID(t *testing.T) {
	tr := sampleTrace()
	tr.Jobs[2].ID = 1
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateOrder(t *testing.T) {
	tr := sampleTrace()
	tr.Jobs[1].Submit = 100
	if err := tr.Validate(); err == nil || !strings.Contains(err.Error(), "order") {
		t.Fatalf("err = %v", err)
	}
}

func TestValidateBadSpec(t *testing.T) {
	tr := sampleTrace()
	tr.Jobs[0].Work = -1
	if err := tr.Validate(); err == nil {
		t.Fatal("want error for bad spec")
	}
}

func TestWindow(t *testing.T) {
	tr := sampleTrace()
	w := tr.Window(1, 9.5)
	if len(w.Jobs) != 1 || w.Jobs[0].ID != 2 {
		t.Fatalf("window = %+v", w.Jobs)
	}
	// Window is a copy; mutating it must not touch the original.
	w.Jobs[0].Work = 999
	if tr.Jobs[1].Work == 999 {
		t.Fatal("Window aliases the source trace")
	}
	if got := len(tr.Window(0, 100).Jobs); got != 3 {
		t.Fatalf("full window = %d jobs", got)
	}
	if got := len(tr.Window(50, 60).Jobs); got != 0 {
		t.Fatalf("empty window = %d jobs", got)
	}
}

func TestHorizonAndTotals(t *testing.T) {
	tr := sampleTrace()
	if got := tr.Horizon(); got != 9.5 {
		t.Fatalf("Horizon = %v", got)
	}
	if got := tr.TotalWork(); got != 60.25 {
		t.Fatalf("TotalWork = %v", got)
	}
	counts := tr.CountByPriority()
	if counts[job.PriorityLow] != 2 || counts[job.PriorityHigh] != 1 {
		t.Fatalf("CountByPriority = %v", counts)
	}
	empty := &Trace{}
	if empty.Horizon() != 0 {
		t.Fatal("empty horizon should be 0")
	}
}

func TestOfferedUtilization(t *testing.T) {
	tr := &Trace{Jobs: []job.Spec{
		{ID: 1, Submit: 0, Work: 50, Cores: 2, MemMB: 1, Priority: job.PriorityLow, Candidates: []int{0}},
		{ID: 2, Submit: 100, Work: 100, Cores: 1, MemMB: 1, Priority: job.PriorityLow, Candidates: []int{0}},
	}}
	// demand = 50*2 + 100 = 200 core-min over horizon 100 on 10 cores.
	if got := tr.OfferedUtilization(10); got != 0.2 {
		t.Fatalf("OfferedUtilization = %v", got)
	}
	if got := tr.OfferedUtilization(0); got != 0 {
		t.Fatalf("zero cores should give 0, got %v", got)
	}
	if got := (&Trace{}).OfferedUtilization(10); got != 0 {
		t.Fatalf("empty trace should give 0, got %v", got)
	}
}

func TestJSONLRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadJSONL(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestJSONLSkipsBlankLines(t *testing.T) {
	input := `{"id":1,"submit":0,"work":5,"cores":1,"mem_mb":1,"priority":1,"candidates":[0]}

{"id":2,"submit":1,"work":5,"cores":1,"mem_mb":1,"priority":1,"candidates":[0]}
`
	tr, err := ReadJSONL(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(tr.Jobs) != 2 {
		t.Fatalf("jobs = %d", len(tr.Jobs))
	}
}

func TestJSONLBadLine(t *testing.T) {
	if _, err := ReadJSONL(strings.NewReader("not json\n")); err == nil {
		t.Fatal("want error")
	}
}

func TestJSONLInvalidTrace(t *testing.T) {
	// Valid JSON, invalid spec (no candidates).
	input := `{"id":1,"submit":0,"work":5,"cores":1,"mem_mb":1,"priority":1}`
	if _, err := ReadJSONL(strings.NewReader(input)); err == nil {
		t.Fatal("want validation error")
	}
}

func TestCSVRoundTrip(t *testing.T) {
	tr := sampleTrace()
	var buf bytes.Buffer
	if err := tr.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertTracesEqual(t, tr, got)
}

func TestCSVErrors(t *testing.T) {
	cases := map[string]string{
		"empty":     "",
		"badHeader": "a,b,c\n",
		"badRow":    strings.Join(csvHeader, ",") + "\nx,y,z,1,1,linux,1,0,0\n",
		"badCands":  strings.Join(csvHeader, ",") + "\n1,0,5,1,1,linux,1,0,zap\n",
	}
	for name, in := range cases {
		t.Run(name, func(t *testing.T) {
			if _, err := ReadCSV(strings.NewReader(in)); err == nil {
				t.Fatal("want error")
			}
		})
	}
}

func assertTracesEqual(t *testing.T, want, got *Trace) {
	t.Helper()
	if len(got.Jobs) != len(want.Jobs) {
		t.Fatalf("job count %d != %d", len(got.Jobs), len(want.Jobs))
	}
	for i := range want.Jobs {
		w, g := want.Jobs[i], got.Jobs[i]
		if w.ID != g.ID || w.Submit != g.Submit || w.Work != g.Work ||
			w.Cores != g.Cores || w.MemMB != g.MemMB || w.OS != g.OS ||
			w.Priority != g.Priority || w.TaskID != g.TaskID {
			t.Fatalf("job %d mismatch:\nwant %+v\ngot  %+v", i, w, g)
		}
		if len(w.Candidates) != len(g.Candidates) {
			t.Fatalf("job %d candidates mismatch", i)
		}
		for ci := range w.Candidates {
			if w.Candidates[ci] != g.Candidates[ci] {
				t.Fatalf("job %d candidate %d mismatch", i, ci)
			}
		}
	}
}
